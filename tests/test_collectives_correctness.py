"""Every collective x every algorithm x assorted communicator sizes,
validated against NumPy references with real payloads."""

import numpy as np
import pytest

from repro.mpi import BXOR, MAX, MIN, PROD, SUM
from repro.mpi.collectives import (
    ALLGATHER_ALGORITHMS,
    ALLREDUCE_ALGORITHMS,
    ALLTOALL_ALGORITHMS,
    BARRIER_ALGORITHMS,
    BCAST_ALGORITHMS,
    REDUCE_ALGORITHMS,
    REDUCE_SCATTER_ALGORITHMS,
)
from tests.conftest import make_test_machine, run_ranks

SIZES = [2, 3, 4, 5, 7, 8, 13, 16]
POW2_SIZES = [2, 4, 8, 16]

M = make_test_machine(cpus_per_node=2, max_cpus=64)


def payload(rank: int, n: int = 12) -> np.ndarray:
    return (np.arange(n, dtype=np.float64) + 1.0) * (rank + 1)


# -- barrier --------------------------------------------------------------------

@pytest.mark.parametrize("algorithm", sorted(BARRIER_ALGORITHMS))
@pytest.mark.parametrize("p", SIZES)
def test_barrier_synchronises(p, algorithm):
    def prog(comm):
        # stagger entries; everyone must leave after the last entry
        yield from comm.elapse(0.001 * comm.rank)
        yield from comm.barrier(algorithm=algorithm)
        return comm.now

    out = run_ranks(M, p, prog)
    latest_entry = 0.001 * (p - 1)
    assert all(t >= latest_entry for t in out.results)


# -- bcast ----------------------------------------------------------------------

@pytest.mark.parametrize("algorithm", sorted(BCAST_ALGORITHMS))
@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("root", [0, 1])
def test_bcast_delivers_root_payload(p, root, algorithm):
    ref = payload(root)

    def prog(comm):
        data = ref.copy() if comm.rank == root else None
        out = yield from comm.bcast(data=data, nbytes=ref.nbytes, root=root,
                                    algorithm=algorithm)
        return out

    out = run_ranks(M, p, prog)
    for r in range(p):
        assert np.array_equal(out.results[r], ref), f"rank {r}"


# -- reduce ----------------------------------------------------------------------

@pytest.mark.parametrize("algorithm", sorted(REDUCE_ALGORITHMS))
@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("root", [0, 2])
def test_reduce_sum(p, root, algorithm):
    if root >= p:
        pytest.skip("root outside communicator")
    ref = np.sum([payload(r) for r in range(p)], axis=0)

    def prog(comm):
        out = yield from comm.reduce(data=payload(comm.rank), op=SUM,
                                     root=root, algorithm=algorithm)
        return out

    out = run_ranks(M, p, prog)
    assert np.allclose(out.results[root], ref)
    for r in range(p):
        if r != root:
            assert out.results[r] is None


@pytest.mark.parametrize("op,npop", [(MAX, np.max), (MIN, np.min),
                                     (PROD, np.prod)])
def test_reduce_other_ops(op, npop):
    p = 5
    ref = npop([payload(r) for r in range(p)], axis=0)

    def prog(comm):
        out = yield from comm.reduce(data=payload(comm.rank), op=op, root=0)
        return out

    out = run_ranks(M, p, prog)
    assert np.allclose(out.results[0], ref)


def test_reduce_bxor_integers():
    p = 6
    bufs = [np.arange(8, dtype=np.uint64) * (r + 3) for r in range(p)]
    ref = bufs[0].copy()
    for b in bufs[1:]:
        ref ^= b

    def prog(comm):
        out = yield from comm.reduce(data=bufs[comm.rank], op=BXOR, root=0)
        return out

    out = run_ranks(M, p, prog)
    assert np.array_equal(out.results[0], ref)


# -- allreduce --------------------------------------------------------------------

@pytest.mark.parametrize("algorithm", sorted(ALLREDUCE_ALGORITHMS))
@pytest.mark.parametrize("p", SIZES)
def test_allreduce_sum_everywhere(p, algorithm):
    ref = np.sum([payload(r) for r in range(p)], axis=0)

    def prog(comm):
        out = yield from comm.allreduce(data=payload(comm.rank), op=SUM,
                                        algorithm=algorithm)
        return out

    out = run_ranks(M, p, prog)
    for r in range(p):
        assert np.allclose(out.results[r], ref), f"rank {r}"


# -- gather / scatter ---------------------------------------------------------------

@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("root", [0, 1])
def test_gather_collects_by_rank(p, root):
    def prog(comm):
        out = yield from comm.gather(data=float(comm.rank * 11), nbytes=8,
                                     root=root)
        return out

    out = run_ranks(M, p, prog)
    assert out.results[root] == [r * 11.0 for r in range(p)]
    for r in range(p):
        if r != root:
            assert out.results[r] is None


@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("root", [0, 1])
def test_scatter_distributes_by_rank(p, root):
    items = [f"item{r}" for r in range(p)]

    def prog(comm):
        datas = items if comm.rank == root else None
        out = yield from comm.scatter(datas=datas, nbytes=16, root=root)
        return out

    out = run_ranks(M, p, prog)
    assert list(out.results) == items


def test_gather_then_scatter_roundtrip():
    p = 7

    def prog(comm):
        gathered = yield from comm.gather(data=comm.rank * 2, nbytes=8, root=0)
        out = yield from comm.scatter(datas=gathered, nbytes=8, root=0)
        return out

    out = run_ranks(M, p, prog)
    assert list(out.results) == [2 * r for r in range(p)]


# -- allgather(v) --------------------------------------------------------------------

@pytest.mark.parametrize("algorithm", sorted(ALLGATHER_ALGORITHMS))
@pytest.mark.parametrize("p", SIZES)
def test_allgather_orders_by_rank(p, algorithm):
    def prog(comm):
        out = yield from comm.allgather(data=payload(comm.rank),
                                        algorithm=algorithm)
        return out

    out = run_ranks(M, p, prog)
    for r in range(p):
        got = out.results[r]
        assert len(got) == p
        for src in range(p):
            assert np.array_equal(got[src], payload(src)), (r, src)


@pytest.mark.parametrize("algorithm", ["ring", "bruck"])
@pytest.mark.parametrize("p", SIZES)
def test_allgatherv_variable_counts(p, algorithm):
    counts = [8 * (r % 3 + 1) for r in range(p)]

    def prog(comm):
        data = np.full(counts[comm.rank] // 8, float(comm.rank))
        out = yield from comm.allgatherv(data=data, counts=counts,
                                         algorithm=algorithm)
        return out

    out = run_ranks(M, p, prog)
    for got in out.results:
        for src in range(p):
            assert np.array_equal(got[src],
                                  np.full(counts[src] // 8, float(src)))


# -- alltoall(v) ---------------------------------------------------------------------

@pytest.mark.parametrize("algorithm", sorted(ALLTOALL_ALGORITHMS))
@pytest.mark.parametrize("p", SIZES)
def test_alltoall_personalised_exchange(p, algorithm):
    def prog(comm):
        # element [s][d] distinctly identifies the (source, dest) pair
        datas = [np.array([comm.rank * 100.0 + d]) for d in range(p)]
        out = yield from comm.alltoall(datas=datas, algorithm=algorithm)
        return out

    out = run_ranks(M, p, prog)
    for d in range(p):
        got = out.results[d]
        for s in range(p):
            assert got[s] is not None and got[s][0] == s * 100.0 + d, (s, d)


@pytest.mark.parametrize("p", [2, 3, 5, 8])
def test_alltoallv_asymmetric_sizes(p):
    def prog(comm):
        datas = [np.full(d + 1, comm.rank * 10.0 + d) for d in range(p)]
        out = yield from comm.alltoallv(datas=datas)
        return out

    out = run_ranks(M, p, prog)
    for d in range(p):
        got = out.results[d]
        for s in range(p):
            assert np.array_equal(got[s], np.full(d + 1, s * 10.0 + d))


# -- reduce_scatter --------------------------------------------------------------------

@pytest.mark.parametrize("p", SIZES)
def test_reduce_scatter_default_algorithm(p):
    n = 4 * p  # evenly divisible blocks

    def prog(comm):
        data = (np.arange(n, dtype=np.float64) + 1.0) * (comm.rank + 1)
        out = yield from comm.reduce_scatter(data=data, op=SUM)
        return out

    out = run_ranks(M, p, prog)
    scale = sum(r + 1 for r in range(p))
    full = (np.arange(n, dtype=np.float64) + 1.0) * scale
    blocks = np.array_split(full, p)
    for r in range(p):
        assert np.allclose(out.results[r], blocks[r]), f"rank {r}"


@pytest.mark.parametrize("algorithm", ["recursive_halving"])
@pytest.mark.parametrize("p", POW2_SIZES)
def test_reduce_scatter_recursive_halving(p, algorithm):
    n = 2 * p

    def prog(comm):
        data = np.ones(n) * (comm.rank + 1)
        out = yield from comm.reduce_scatter(data=data, op=SUM,
                                             algorithm=algorithm)
        return out

    out = run_ranks(M, p, prog)
    total = sum(r + 1 for r in range(p))
    for r in range(p):
        assert np.allclose(out.results[r], total)


@pytest.mark.parametrize("algorithm", ["pairwise", "reduce_scatterv"])
@pytest.mark.parametrize("p", [3, 5, 8])
def test_reduce_scatter_alternative_algorithms(p, algorithm):
    n = 4 * p

    def prog(comm):
        data = np.arange(n, dtype=np.float64) + comm.rank
        out = yield from comm.reduce_scatter(data=data, op=SUM,
                                             algorithm=algorithm)
        return out

    out = run_ranks(M, p, prog)
    full = np.sum([np.arange(n, dtype=np.float64) + r for r in range(p)],
                  axis=0)
    blocks = np.array_split(full, p)
    for r in range(p):
        assert np.allclose(out.results[r], blocks[r])


# -- size-1 edge cases --------------------------------------------------------------------

def test_collectives_on_single_rank():
    def prog(comm):
        yield from comm.barrier()
        b = yield from comm.bcast(data=1.5, nbytes=8)
        r = yield from comm.reduce(data=2.5, nbytes=8)
        a = yield from comm.allreduce(data=3.5, nbytes=8)
        g = yield from comm.allgather(data=4.5, nbytes=8)
        t = yield from comm.alltoall(datas=[5.5])
        return b, r, a, g, t

    out = run_ranks(M, 1, prog)
    assert out.results[0] == (1.5, 2.5, 3.5, [4.5], [5.5])


def test_unknown_algorithm_rejected():
    from repro.core.errors import MPIError

    def prog(comm):
        with pytest.raises(MPIError, match="unknown algorithm"):
            yield from comm.bcast(nbytes=8, algorithm="telepathy")

    run_ranks(M, 2, prog)
