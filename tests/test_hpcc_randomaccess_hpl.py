"""G-RandomAccess and G-HPL tests."""

import numpy as np
import pytest

from repro import get_machine
from repro.core.errors import BenchmarkError
from repro.hpcc.hpl import (
    HPLConfig,
    assemble_lu,
    default_n,
    hpl_flops,
    hpl_lu_program,
    hpl_model_time,
    reference_matrix,
    run_hpl,
    run_hpl_skeleton,
)
from repro.hpcc.randomaccess import (
    RandomAccessConfig,
    randomaccess_program,
    reference_table,
    run_randomaccess,
)
from repro.mpi.cluster import Cluster
from tests.conftest import make_test_machine

M = make_test_machine(cpus_per_node=2, max_cpus=64)


# -- RandomAccess ---------------------------------------------------------------

@pytest.mark.parametrize("p", [1, 2, 4, 8])
def test_randomaccess_table_matches_serial_replay(p):
    cfg = RandomAccessConfig(local_table_words=128, updates_per_word=2,
                             bucket=32, validate=True)
    cl = Cluster(M, p)
    out = cl.run(randomaccess_program, cfg)
    got = np.concatenate([r[2] for r in out.results])
    ref = reference_table(cl.seed, p, cfg)
    assert np.array_equal(got, ref)


def test_randomaccess_all_updates_applied():
    cfg = RandomAccessConfig(local_table_words=64, updates_per_word=4,
                             bucket=16, validate=True)
    cl = Cluster(M, 4)
    out = cl.run(randomaccess_program, cfg)
    applied = sum(r[1] for r in out.results)
    assert applied == 4 * 64 * 4  # every generated update landed somewhere


def test_randomaccess_non_pow2_algorithmic_rejected():
    with pytest.raises(BenchmarkError, match="power-of-two"):
        Cluster(M, 3).run(randomaccess_program, RandomAccessConfig())


def test_randomaccess_macro_handles_any_p():
    res = run_randomaccess(get_machine("sx8"), 24, mode="macro")
    assert res.gups > 0


def test_randomaccess_macro_vs_algorithmic_same_magnitude():
    cfg = RandomAccessConfig(local_table_words=256, updates_per_word=1,
                             bucket=8)
    alg = run_randomaccess(M, 8, cfg, mode="algorithmic")
    mac = run_randomaccess(M, 8, cfg, mode="macro")
    assert 0.2 < mac.gups / alg.gups < 5.0


def test_randomaccess_bad_table_size():
    with pytest.raises(BenchmarkError, match="power of two"):
        Cluster(M, 2).run(randomaccess_program,
                          RandomAccessConfig(local_table_words=100))


def test_scalar_systems_beat_vector_in_gups_per_flop():
    """Paper §4.1.2: RandomAccess is hostile to the vector machines; the
    scalar commodity systems lead it relative to their HPL."""
    flagship = {"opteron": 64, "sx8": 576, "xeon": 512}
    ratios = {}
    for name, p in flagship.items():
        m = get_machine(name)
        res = run_randomaccess(m, p, mode="macro")
        ratios[name] = res.gups / hpl_model_time(m, p).gflops
    assert ratios["opteron"] > ratios["sx8"]
    assert ratios["xeon"] > ratios["sx8"]
    # Table 3 anchor: the maximum sits near 4.9e-5 update/flop.
    assert 1e-5 < max(ratios.values()) < 2e-4


# -- HPL ---------------------------------------------------------------------------

def test_hpl_flops_count():
    assert hpl_flops(1000) == pytest.approx(2e9 / 3 + 1.5e6)


def test_default_n_respects_memory():
    n = default_n(M, 8, fill=0.5, nb=128)
    mem = M.node.memory_bytes / M.node.cpus * 8
    assert 8.0 * n * n <= 0.5 * mem
    assert n % 128 == 0


def test_hpl_model_efficiency_below_spec():
    res = hpl_model_time(M, 16)
    assert 0 < res.efficiency <= M.processor.hpl_eff


def test_hpl_model_efficiency_droops_with_scale():
    e_small = hpl_model_time(M, 2).efficiency
    e_large = hpl_model_time(M, 64).efficiency
    assert e_large < e_small


def test_hpl_single_rank_no_comm():
    res = hpl_model_time(M, 1, HPLConfig(n=4096))
    assert res.efficiency == pytest.approx(M.processor.hpl_eff, rel=1e-6)


def test_hpl_skeleton_requires_n():
    with pytest.raises(BenchmarkError):
        run_hpl_skeleton(M, 4, HPLConfig())


def test_hpl_skeleton_agrees_with_model():
    """The DES skeleton and the analytic model must tell the same story."""
    cfg = HPLConfig(n=8192, nb=512)
    skel = run_hpl_skeleton(M, 16, cfg)
    model = hpl_model_time(M, 16, cfg)
    assert skel.elapsed == pytest.approx(model.elapsed, rel=0.5)


def test_hpl_mode_dispatch():
    assert run_hpl(M, 4, HPLConfig(n=2048), mode="model").n == 2048
    assert run_hpl(M, 4, HPLConfig(nb=128), mode="skeleton").nprocs == 4
    with pytest.raises(BenchmarkError):
        run_hpl(M, 4, mode="teleport")


@pytest.mark.parametrize("p,nb", [(2, 4), (3, 4), (4, 8)])
def test_distributed_lu_factorisation_exact(p, nb):
    n = 8 * nb if p != 3 else 6 * nb
    cl = Cluster(M, p)
    out = cl.run(hpl_lu_program, n, nb)
    lower, upper = assemble_lu(out.results, n, nb)
    a = reference_matrix(cl.seed, n)
    residual = np.abs(lower @ upper - a).max() / np.abs(a).max()
    assert residual < 1e-10


def test_lu_solves_linear_system():
    n, nb, p = 32, 8, 2
    cl = Cluster(M, p)
    out = cl.run(hpl_lu_program, n, nb)
    lower, upper = assemble_lu(out.results, n, nb)
    a = reference_matrix(cl.seed, n)
    b = np.arange(n, dtype=np.float64)
    y = np.linalg.solve(lower, b)
    x = np.linalg.solve(upper, y)
    assert np.allclose(a @ x, b)


def test_sx8_hpl_table3_anchor():
    """G-HPL at 576 CPUs ~ 8.7 TF/s (paper Table 3: 8.729)."""
    res = hpl_model_time(get_machine("sx8"), 576)
    assert res.tflops == pytest.approx(8.7, rel=0.02)


def test_opteron_dgemm_over_hpl_anchor():
    """EP-DGEMM / G-HPL ~ 1.8-1.9 for the Opteron (paper: 1.925)."""
    m = get_machine("opteron")
    hpl = hpl_model_time(m, 64)
    dgemm = m.processor.peak_gflops * m.processor.dgemm_eff
    ratio = dgemm * 64 / hpl.gflops
    assert 1.6 < ratio < 2.1


def test_hpl_explicit_grid():
    from repro.hpcc.hpl import _resolve_grid

    assert _resolve_grid(HPLConfig(grid=(2, 8)), 16) == (2, 8)
    assert _resolve_grid(HPLConfig(), 16) == (4, 4)
    with pytest.raises(BenchmarkError):
        _resolve_grid(HPLConfig(grid=(3, 3)), 16)


def test_hpl_flat_grid_slower_than_square():
    """1 x P grids broadcast every panel to every process (HPL folklore)."""
    m = get_machine("xeon")
    square = run_hpl(m, 16, HPLConfig(n=4096, nb=256), mode="skeleton")
    flat = run_hpl(m, 16, HPLConfig(n=4096, nb=256, grid=(1, 16)),
                   mode="skeleton")
    assert flat.gflops < square.gflops
