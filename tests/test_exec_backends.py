"""Backend-contract tests: every exec backend must be indistinguishable
from serial inline computation except for the wall clock."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigError
from repro.exec import SimPoint, SweepExecutor, compute_point, using_executor
from repro.exec.backends import (
    EXEC_BACKENDS,
    ExecBackend,
    ExecBackendError,
    WorkerContext,
    available_exec_backends,
    decode_point,
    decode_record,
    default_exec_backend_name,
    encode_point,
    encode_record,
    make_exec_backend,
    register_exec_backend,
    set_default_exec_backend,
)
from repro.harness.figures import imb_figure
from repro.harness.report import figure_to_csv
from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics

CAP = 8  # tiny sweeps keep this fast

ALL_BACKENDS = ("inline", "pool", "subprocess")


def _points(nprocs=(2, 4, 8)):
    return [SimPoint.make("imb", "xeon", p, benchmark="Sendrecv",
                          msg_bytes=1024) for p in nprocs]


# ---------------------------------------------------------------------------
# The contract: byte-identical output across backends
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def inline_reference():
    with SweepExecutor(jobs=1, cache=None, backend="inline") as ex, \
            using_executor(ex):
        return imb_figure("fig13", max_cpus=CAP)


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_backend_figure_byte_identical(backend, inline_reference):
    with SweepExecutor(jobs=2, cache=None, backend=backend) as ex, \
            using_executor(ex):
        result = imb_figure("fig13", max_cpus=CAP)
    assert result == inline_reference
    assert figure_to_csv(result) == figure_to_csv(inline_reference)


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_backend_preserves_order_and_stats(backend):
    with SweepExecutor(jobs=2, cache=None, backend=backend) as ex:
        values = ex.run_points(_points())
        assert [v.nprocs for v in values] == [2, 4, 8]
        st = ex.stats()
    assert st["points"] == 3
    assert st["cache_misses"] == 3
    assert st["coalesced"] == 0
    assert st["events"] > 0


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_backend_metrics_merge_matches_inline(backend):
    """The fan-in metrics merge is commutative: engine counters are the
    same whether points ran serially in-process or fanned out."""
    def run(backend_name):
        previous = get_metrics()
        set_metrics(MetricsRegistry(enabled=True))
        try:
            with SweepExecutor(jobs=2, cache=None,
                               backend=backend_name) as ex:
                ex.run_points(_points())
            return get_metrics().snapshot()
        finally:
            set_metrics(previous)

    reference = run("inline")
    snap = run(backend)
    ref_counters = {k: v for k, v in reference["counters"].items()
                    if k.startswith("engine.")}
    got_counters = {k: v for k, v in snap["counters"].items()
                    if k.startswith("engine.")}
    assert ref_counters and got_counters == ref_counters
    assert snap["counters"]["exec.points"] == 3
    assert snap["counters"]["cache.misses"] == 3


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_backend_empty_batch(backend):
    with SweepExecutor(jobs=2, cache=None, backend=backend) as ex:
        assert ex.run_points([]) == []
        assert ex.stats()["points"] == 0


def test_point_error_propagates_not_wrapped():
    bad = SimPoint.make("nope", "xeon", 2)
    with SweepExecutor(jobs=1, cache=None, backend="inline") as ex:
        with pytest.raises(ValueError, match="unknown simulation point"):
            ex.run_points([bad])


# ---------------------------------------------------------------------------
# Registry mechanics
# ---------------------------------------------------------------------------

def test_registry_lists_builtins():
    assert set(ALL_BACKENDS) <= set(available_exec_backends())


def test_make_exec_backend_unknown_name():
    with pytest.raises(ConfigError, match="unknown exec backend"):
        make_exec_backend("warp-drive", jobs=2)


def test_make_exec_backend_passthrough_instance():
    inst = make_exec_backend("inline")
    assert make_exec_backend(inst) is inst


def test_register_custom_backend():
    class Echo(ExecBackend):
        name = "echo-test"

        def __init__(self, jobs=1):
            self.jobs = jobs

        def compute(self, points):
            return [compute_point(pt) for pt in points]

    register_exec_backend("echo-test", Echo)
    try:
        ex = SweepExecutor(jobs=3, cache=None, backend="echo-test")
        assert ex.backend.jobs == 3
        assert len(ex.run_points(_points((2,)))) == 1
    finally:
        EXEC_BACKENDS.pop("echo-test", None)


def test_default_backend_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_EXEC_BACKEND", raising=False)
    assert default_exec_backend_name(jobs=1) == "inline"
    assert default_exec_backend_name(jobs=4) == "pool"
    monkeypatch.setenv("REPRO_EXEC_BACKEND", "subprocess")
    assert default_exec_backend_name(jobs=1) == "subprocess"
    monkeypatch.setenv("REPRO_EXEC_BACKEND", "bogus")
    with pytest.raises(ConfigError, match="REPRO_EXEC_BACKEND"):
        default_exec_backend_name()


def test_set_default_exec_backend_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_EXEC_BACKEND", "pool")
    old = set_default_exec_backend("inline")
    try:
        assert default_exec_backend_name(jobs=8) == "inline"
        with pytest.raises(ConfigError):
            set_default_exec_backend("bogus")
    finally:
        set_default_exec_backend(old)


# ---------------------------------------------------------------------------
# Transport failure: partial results requeue, counted once
# ---------------------------------------------------------------------------

class _CrashOnceBackend(ExecBackend):
    """Completes the first point, then dies — like a killed fleet worker."""

    name = "crash-once"

    def __init__(self, jobs=1):
        self.jobs = jobs
        self.calls = 0

    def compute(self, points):
        self.calls += 1
        if self.calls == 1:
            raise ExecBackendError(
                "worker exited mid-batch",
                done={0: compute_point(points[0])})
        return [compute_point(pt) for pt in points]


def test_transport_failure_requeues_only_missing_points():
    pts = _points()
    backend = _CrashOnceBackend()
    ex = SweepExecutor(jobs=2, cache=None, backend=backend)
    values = ex.run_points(pts)
    assert [v.nprocs for v in values] == [2, 4, 8]
    assert backend.calls == 1          # requeue is inline, not via backend
    assert ex.stats()["requeued"] == 2  # points 1 and 2 were casualties


def test_stats_count_points_once_after_requeue():
    """Regression: the old retry path re-entered run_points on the
    unfinished tail, double-counting them in points_total."""
    pts = _points()
    ex = SweepExecutor(jobs=2, cache=None, backend=_CrashOnceBackend())
    ex.run_points(pts)
    st = ex.stats()
    assert st["points"] == len(pts)          # not len(pts) + casualties
    assert st["cache_misses"] == len(pts)
    assert st["cache_hits"] == 0


def test_requeued_results_match_clean_run():
    pts = _points()
    with SweepExecutor(jobs=1, cache=None, backend="inline") as ex:
        clean = ex.run_points(pts)
    crashed = SweepExecutor(jobs=2, cache=None,
                            backend=_CrashOnceBackend()).run_points(pts)
    assert crashed == clean


# ---------------------------------------------------------------------------
# Wire encoding (the subprocess fleet protocol)
# ---------------------------------------------------------------------------

def test_point_and_record_encode_roundtrip():
    (pt,) = _points((4,))
    assert decode_point(encode_point(pt)) == pt
    rec = compute_point(pt)
    back = decode_record(encode_record(rec))
    assert back.value == rec.value
    assert back.events == rec.events


def test_worker_context_roundtrip():
    ctx = WorkerContext(metrics=True, comm=False, timeline=True,
                        engine_backend="heap")
    assert WorkerContext.from_dict(ctx.to_dict()) == ctx


def test_worker_context_capture_defaults():
    ctx = WorkerContext.capture()
    assert ctx.metrics is False  # ambient registry is disabled in tests
    assert ctx.engine_backend is not None
