"""Tests for the time-resolved run observatory.

Covers the communication-matrix recorder (repro.obs.commviz), the
bucketed utilisation timelines and straggler profiles
(repro.obs.timeline), the append-only run ledger (repro.obs.ledger),
the HTML run report (repro.harness.dashboard), the validation gate's
ledger layer, and the determinism guarantees the ISSUE pins down:
serial, ``--jobs N``, and cache-warm sweeps must produce byte-identical
matrices and timelines, and the report must present the critical-path
analyser's verdict verbatim.
"""

from __future__ import annotations

import json

import pytest

from repro.core import sched
from repro.core.trace import MessageRecord, Tracer
from repro.exec import ResultCache, SimPoint, SweepExecutor
from repro.harness.runner import BENCH_SCHEMA_VERSION
from repro.harness.dashboard import (
    REPORT_SCHEMA_VERSION,
    build_run_doc,
    read_report_doc,
    render_html,
    write_report,
)
from repro.mpi.cluster import Cluster
from repro.obs import (
    CommRecorder,
    LEDGER_SCHEMA_VERSION,
    PhaseMatrix,
    RunLedger,
    TimelineRecorder,
    TimelineSeries,
    critical_path_report,
    get_commviz,
    get_timeline,
    merge_comm_snapshots,
    merge_timeline_snapshots,
    run_key,
    straggler_profile,
    using_commviz,
    using_timeline,
)
from repro.obs.ledger import git_sha
from repro.obs.timeline import COLL_TAGSPAN, RESOLUTION
from tests.conftest import make_test_machine


# -- commviz: phase matrices ---------------------------------------------------

def test_phase_matrix_record_and_views():
    pm = PhaseMatrix()
    pm.record(0, 3, 100, inter=True)
    pm.record(0, 3, 50, inter=True)
    pm.record(1, 0, 7, inter=False)
    assert pm.nprocs == 4
    assert pm.total_msgs == 3
    assert pm.total_bytes == 157
    assert pm.inter_bytes == 150 and pm.intra_bytes == 7
    dense = pm.dense_bytes()
    assert dense[0][3] == 150 and dense[1][0] == 7
    assert pm.row_bytes() == [150, 7, 0, 0]


def test_phase_matrix_snapshot_merge_commutative():
    a, b = PhaseMatrix(), PhaseMatrix()
    a.record(0, 1, 10, inter=True)
    a.record(2, 0, 5, inter=False)
    b.record(0, 1, 3, inter=True)
    b.record(1, 2, 8, inter=True)

    ab, ba = PhaseMatrix(), PhaseMatrix()
    ab.merge(a.to_dict()); ab.merge(b.to_dict())
    ba.merge(b.to_dict()); ba.merge(a.to_dict())
    assert ab.to_dict() == ba.to_dict()
    assert ab.cells[(0, 1)] == [2, 13]
    assert ab.total_bytes == 26


def test_comm_recorder_phases_and_cursor():
    rec = CommRecorder()
    rec.record(0, 1, 10, inter=True)
    with rec.phase("fig12:xeon"):
        assert rec.current_phase == "fig12:xeon"
        rec.record(0, 1, 99, inter=True)
    assert rec.current_phase == "default"
    assert rec.phases() == ["default", "fig12:xeon"]
    assert rec.matrix("fig12:xeon").total_bytes == 99
    assert rec.matrix().total_bytes == 10
    assert rec.total_bytes() == 109


def test_comm_recorder_disabled_and_global_default():
    assert not get_commviz().enabled
    rec = CommRecorder(enabled=False)
    rec.record(0, 1, 10, inter=True)
    assert rec.snapshot() == {"phases": {}}
    with using_commviz(CommRecorder()) as live:
        assert get_commviz() is live
    assert not get_commviz().enabled


def test_merge_comm_snapshots_order_independent():
    def snap(src, dst, nbytes):
        r = CommRecorder()
        with r.phase("p"):
            r.record(src, dst, nbytes, inter=True)
        return r.snapshot()

    snaps = [snap(0, 1, 10), snap(1, 0, 20), snap(0, 1, 5)]
    fwd = merge_comm_snapshots(snaps)
    rev = merge_comm_snapshots(list(reversed(snaps)))
    assert json.dumps(fwd, sort_keys=True) == json.dumps(rev, sort_keys=True)
    assert fwd["phases"]["p"]["cells"]["0,1"] == [2, 15]


# -- timeline: bucketed occupancy series --------------------------------------

def test_timeline_series_buckets_conserve_busy_time():
    s = TimelineSeries()
    s.add(0.0, 1e-6, nbytes=100)
    s.add(2e-6, 3e-6)
    assert s.count == 2 and s.bytes == 100
    assert s.busy_s == pytest.approx(2e-6)
    assert sum(v for _, v in s.series()) == pytest.approx(2e-6)
    # zero-length intervals count but add no busy time
    s.add(1.0e-6, 1.0e-6)
    assert s.count == 3
    assert s.busy_s == pytest.approx(2e-6)


def test_timeline_series_rescales_to_power_of_two_width():
    s = TimelineSeries()
    s.add(0.0, 0.5)
    # width grew until 256 buckets cover 0.5 s: 256 * 2**-9 = 0.5 exactly,
    # and end >= span triggers one more doubling
    assert s.width == 2.0 ** s.exp
    assert RESOLUTION * s.width > 0.5
    assert len(s.buckets) <= RESOLUTION
    assert sum(s.buckets.values()) == pytest.approx(0.5)


def test_timeline_series_merge_folds_to_coarser_width():
    fine, coarse = TimelineSeries(), TimelineSeries()
    fine.add(0.0, 1e-5)
    coarse.add(0.0, 0.3)          # forces a much coarser width
    assert coarse.exp > fine.exp

    merged = TimelineSeries()
    merged.merge(fine.to_dict())
    merged.merge(coarse.to_dict())
    assert merged.exp == coarse.exp
    assert merged.busy_s == pytest.approx(0.3 + 1e-5)
    assert sum(merged.buckets.values()) == pytest.approx(0.3 + 1e-5)


def test_merge_timeline_snapshots_deterministic():
    def snap(t0, t1):
        r = TimelineRecorder()
        with r.phase("p"):
            r.series("egress").add(t0, t1, nbytes=8)
        return r.snapshot()

    snaps = [snap(0.0, 1e-6), snap(1e-6, 4e-6)]
    fwd = merge_timeline_snapshots(snaps)
    rev = merge_timeline_snapshots(list(reversed(snaps)))
    assert json.dumps(fwd, sort_keys=True) == json.dumps(rev, sort_keys=True)
    egress = fwd["phases"]["p"]["egress"]
    assert egress["count"] == 2 and egress["bytes"] == 16


def test_timeline_recorder_phase_scoping_and_global():
    assert not get_timeline().enabled
    rec = TimelineRecorder()
    rec.series("egress").add(0.0, 1e-6)
    with rec.phase("fig6:sx8"):
        rec.series("core").add(0.0, 2e-6)
    assert rec.phases() == ["default", "fig6:sx8"]
    assert rec.kinds("fig6:sx8") == ["core"]
    assert rec.get("fig6:sx8", "core").busy_s == pytest.approx(2e-6)
    with using_timeline(rec) as live:
        assert get_timeline() is live
    assert not get_timeline().enabled


def test_coll_tagspan_matches_collectives():
    # obs must not import the model layers, so the constant is duplicated;
    # this cross-check keeps the two in lock-step.
    from repro.mpi.collectives import _TAGSPAN
    assert COLL_TAGSPAN == _TAGSPAN


def test_straggler_profile_known_skew():
    tr = Tracer()
    # collective 0 (tags < COLL_TAGSPAN): rank 0 exits at 4.0, rank 1 at 2.0
    tr.record_message(MessageRecord(0, 1, 100, 5, 1.0, 2.0, False))
    tr.record_message(MessageRecord(1, 0, 100, 5, 2.0, 4.0, False))
    # collective 1: rank 1 is the straggler
    tr.record_message(MessageRecord(0, 1, 10, COLL_TAGSPAN, 5.0, 6.0, False))
    prof = straggler_profile(tr, nprocs=2)
    c0, c1 = prof["collectives"]
    assert c0["slowest_rank"] == 0
    assert c0["skew"] == pytest.approx(1.0)       # 4.0 - mean(4.0, 2.0)
    assert c1["slowest_rank"] == 1
    assert c1["skew"] == pytest.approx(0.5)
    assert prof["max_skew_s"] == pytest.approx(1.0)
    assert prof["mean_skew_s"] == pytest.approx(0.75)
    assert prof["ranks"]["0"]["slowest"] == 1
    assert prof["ranks"]["1"]["slowest"] == 1
    assert prof["ranks"]["0"]["mean_lag_s"] == pytest.approx(0.25)


def test_straggler_profile_empty_tracer():
    prof = straggler_profile(Tracer(), nprocs=4)
    assert prof["collectives"] == []
    assert prof["max_skew_s"] == 0.0
    assert all(prof["ranks"][str(r)]["slowest"] == 0 for r in range(4))


# -- transport / fabric wiring -------------------------------------------------

def _run_observed(machine, nprocs, program, *args):
    with using_commviz(CommRecorder()) as comm, \
            using_timeline(TimelineRecorder()) as tl:
        cluster = Cluster(machine, nprocs, trace=True)
        cluster.run(program, *args)
    return cluster, comm, tl


def test_transport_records_comm_matrix_and_timeline():
    machine = make_test_machine(cpus_per_node=2, max_cpus=4)

    def exchange(comm):
        if comm.rank == 0:
            yield from comm.send(3, nbytes=1 << 12, tag=1)   # inter-node
            yield from comm.send(1, nbytes=1 << 8, tag=2)    # intra-node
        elif comm.rank == 3:
            yield from comm.recv(0, 1)
        elif comm.rank == 1:
            yield from comm.recv(0, 2)

    cluster, comm, tl = _run_observed(machine, 4, exchange)
    pm = comm.matrix()
    assert pm is not None
    assert pm.cells[(0, 3)] == [1, 1 << 12]
    assert pm.cells[(0, 1)] == [1, 1 << 8]
    assert pm.inter_bytes == 1 << 12 and pm.intra_bytes == 1 << 8
    # matrix totals agree with the tracer's byte counters
    assert pm.total_bytes == cluster.tracer.total_bytes
    # the fabric reserved egress/shm busy intervals into the timeline
    kinds = tl.kinds()
    assert "egress" in kinds and "shm" in kinds
    assert tl.get("default", "egress").busy_s > 0


def test_transport_skips_recorders_when_disabled():
    machine = make_test_machine(cpus_per_node=2, max_cpus=4)

    def ping(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=64, tag=1)
        elif comm.rank == 1:
            yield from comm.recv(0, 1)

    # no recorder installed: the global null recorders stay empty
    cluster = Cluster(machine, 2)
    cluster.run(ping)
    assert get_commviz().snapshot() == {"phases": {}}
    assert get_timeline().snapshot() == {"phases": {}}


# -- obs edge cases (satellite) ------------------------------------------------

def test_critical_path_zero_event_trace():
    machine = make_test_machine()

    def idle(comm):
        return
        yield  # pragma: no cover - makes the program a generator

    cluster = Cluster(machine, 2, trace=True)
    cluster.run(idle)
    report = critical_path_report(cluster)
    assert report.segments == ()
    assert report.breakdown == {}
    assert report.covered == 0.0
    assert report.dominant_window() is None
    d = report.to_dict()
    assert d["dominant_window_us"] is None
    assert d["path_segments"] == 0


def test_empty_histogram_summary_export():
    from repro.obs.metrics import Histogram
    d = Histogram("h").to_dict()
    assert d == {"count": 0, "sum": 0.0, "min": None, "max": None,
                 "buckets": {}}


def test_merge_snapshots_disjoint_metric_names():
    from repro.obs import MetricsRegistry, merge_snapshots
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("only.a").inc(1)
    a.histogram("h.a").observe(2)
    b.counter("only.b").inc(5)
    b.gauge("g.b").set_max(7)
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged["counters"] == {"only.a": 1, "only.b": 5}
    assert merged["gauges"] == {"g.b": 7}
    assert merged["histograms"]["h.a"]["count"] == 1


# -- deprecation shim round-trip (satellite) -----------------------------------

def test_chrome_trace_shim_deprecation_and_round_trip(tmp_path):
    import importlib
    import warnings

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        import repro.analysis.chrome_trace as shim_mod
        shim = importlib.reload(shim_mod)
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)

    machine = make_test_machine(cpus_per_node=2, max_cpus=4)

    def ping(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=1 << 10, tag=1)
        elif comm.rank == 1:
            yield from comm.recv(0, 1)

    cluster = Cluster(machine, 2, trace=True)
    cluster.run(ping)
    # the shim's writer is obs/exporters' writer: identical trace bytes
    p_shim = shim.write_chrome_trace(cluster, tmp_path / "shim.json")
    from repro.obs.exporters import write_chrome_trace as canonical
    p_obs = canonical(cluster, tmp_path / "obs.json")
    assert p_shim.read_text() == p_obs.read_text()
    events = json.loads(p_shim.read_text())["traceEvents"]
    assert events and all("ph" in e for e in events)


# -- run ledger ----------------------------------------------------------------

def _entry(key, wall, eps=1000.0, sha="aaa1111"):
    return {"when": 1.0, "git_sha": sha, "run_key": key, "items": ["fig12"],
            "max_cpus": 16, "wall_s": wall, "events_per_s": eps}


def test_ledger_append_stamps_schema_and_skips_malformed(tmp_path):
    path = tmp_path / "ledger.jsonl"
    led = RunLedger(path)
    led.append(_entry("k", 1.0))
    with path.open("a") as fh:
        fh.write("{truncated json\n")
        fh.write(json.dumps({"no_schema": True}) + "\n")
    led.append(_entry("k", 2.0))
    entries = led.entries()
    assert [e["wall_s"] for e in entries] == [1.0, 2.0]
    assert all(e["schema_version"] == LEDGER_SCHEMA_VERSION for e in entries)
    assert led.skipped == 2


def test_ledger_trend_filters_by_run_key(tmp_path):
    led = RunLedger(tmp_path / "l.jsonl")
    led.append(_entry("k1", 1.0, sha="c1"))
    led.append(_entry("k2", 9.0, sha="c2"))
    led.append(_entry("k1", 1.2, sha="c3"))
    assert led.trend("k1") == [("c1", 1.0), ("c3", 1.2)]
    assert led.trend("k1", limit=1) == [("c3", 1.2)]
    assert led.trend("missing") == []


def test_ledger_regression_needs_history_then_flags(tmp_path):
    led = RunLedger(tmp_path / "l.jsonl")
    # below MIN_HISTORY: unchecked and ok
    led.append(_entry("k", 1.0))
    assert led.check_regression(_entry("k", 99.0)) == {
        "checked": False, "history": 1, "regressions": [], "ok": True}
    led.append(_entry("k", 1.1))
    led.append(_entry("k", 0.9))
    # in tolerance: checked, ok
    v = led.check_regression(_entry("k", 1.2))
    assert v["checked"] and v["ok"]
    # 3x the trailing median: flags wall_s slower (improvements never flag)
    v = led.check_regression(_entry("k", 3.0))
    assert not v["ok"]
    assert [r["field"] for r in v["regressions"]] == ["wall_s"]
    assert led.check_regression(_entry("k", 0.1))["ok"]
    # events/s collapsing flags the throughput field
    v = led.check_regression(_entry("k", 1.0, eps=100.0))
    assert [r["field"] for r in v["regressions"]] == ["events_per_s"]


def test_ledger_appended_entry_does_not_compete_with_itself(tmp_path):
    led = RunLedger(tmp_path / "l.jsonl")
    for w in (1.0, 1.0, 1.0):
        led.append(_entry("k", w))
    fresh = led.append(_entry("k", 5.0))     # appended before checking
    v = led.check_regression(fresh)
    # history excludes the just-appended line: 3 priors, still flagged
    assert v["history"] == 3
    assert v["checked"] and not v["ok"]


def test_run_key_stable_and_order_insensitive():
    assert run_key(["fig12", "fig06"], 16) == run_key(["fig06", "fig12"], 16)
    assert run_key(["fig12"], 16) != run_key(["fig12"], 64)
    assert len(run_key([], None)) == 12


def test_git_sha_shape():
    sha = git_sha()
    assert sha == "unknown" or (1 <= len(sha) <= 40)
    assert git_sha("/nonexistent/dir") == "unknown"


# -- validation gate ledger layer ----------------------------------------------

def test_gate_ledger_layer_lenient_vs_strict(tmp_path):
    from repro.validate import check_ledger
    from repro.validate.report import ValidationReport

    led = RunLedger(tmp_path / "l.jsonl")
    for w in (1.0, 1.0, 1.0):
        led.append(_entry("k", w))
    led.append(_entry("k", 9.0))             # the regressed newest run

    lenient = check_ledger(led.path, strict=False)
    assert lenient["checked"] and lenient["regressions"]
    assert lenient["ok"]                     # warning only
    strict = check_ledger(led.path, strict=True)
    assert not strict["ok"]

    rep = ValidationReport(ledger=strict)
    assert not rep.ok and rep.exit_code() == 3
    assert "ledger:" in rep.summary() and "FAILED: wall_s" in rep.summary()
    rep_ok = ValidationReport(ledger=lenient)
    assert rep_ok.ok
    assert "warning: wall_s" in rep_ok.summary()


def test_gate_ledger_layer_empty_file(tmp_path):
    from repro.validate import check_ledger
    layer = check_ledger(tmp_path / "missing.jsonl")
    assert layer == {"path": str(tmp_path / "missing.jsonl"), "entries": 0,
                     "malformed": 0, "strict": False, "checked": False,
                     "regressions": [], "ok": True}


# -- executor fan-in determinism ----------------------------------------------

def _sweep_observatory(jobs, cache=None):
    points = [SimPoint.make("imb", "xeon", p, benchmark="Sendrecv",
                            msg_bytes=1 << 14) for p in (2, 4, 8)]
    with using_commviz(CommRecorder()) as comm, \
            using_timeline(TimelineRecorder()) as tl:
        with SweepExecutor(jobs=jobs, cache=cache) as ex:
            ex.run_points(points)
    return (json.dumps(comm.snapshot(), sort_keys=True),
            json.dumps(tl.snapshot(), sort_keys=True))


def test_comm_and_timeline_serial_parallel_cache_identical(tmp_path):
    serial = _sweep_observatory(jobs=1)
    parallel = _sweep_observatory(jobs=2)
    assert serial == parallel

    cache = ResultCache(tmp_path / "cache", fingerprint="obs-test")
    cold = _sweep_observatory(jobs=2, cache=cache)
    warm = _sweep_observatory(jobs=2, cache=cache)
    assert cold == serial
    assert warm == serial
    # phases are the per-point names, so figures explain themselves
    comm = json.loads(serial[0])
    assert all(name.startswith("imb:xeon:Sendrecv")
               for name in comm["phases"])


def test_cached_points_upgrade_to_miss_when_recorders_appear(tmp_path):
    cache = ResultCache(tmp_path / "cache", fingerprint="obs-test")
    points = [SimPoint.make("imb", "xeon", 2, benchmark="PingPong",
                            msg_bytes=1024)]
    # first pass: recorders off -> cached record has no comm snapshot
    with SweepExecutor(jobs=1, cache=cache) as ex:
        ex.run_points(points)
    # second pass: recorders on -> the stale hit is recomputed, not empty
    with using_commviz(CommRecorder()) as comm:
        with using_timeline(TimelineRecorder()):
            with SweepExecutor(jobs=1, cache=cache) as ex:
                ex.run_points(points)
                provs = [e["provenance"] for e in ex.point_log]
    assert provs == ["computed"]
    assert comm.total_bytes() > 0
    # third pass: the refreshed cache entry now replays without compute
    with using_commviz(CommRecorder()) as comm2:
        with using_timeline(TimelineRecorder()):
            with SweepExecutor(jobs=1, cache=cache) as ex:
                ex.run_points(points)
                provs = [e["provenance"] for e in ex.point_log]
    assert provs == ["cached"]
    assert comm2.snapshot() == comm.snapshot()


# -- observed runs and the paper narrative ------------------------------------

@pytest.fixture(scope="module")
def observed_fig12():
    from repro.harness.observe import observe_figure
    with using_commviz(CommRecorder()) as comm, \
            using_timeline(TimelineRecorder()) as tl:
        runs = observe_figure("fig12", max_cpus=16)
    return runs, comm, tl


def test_observed_phase_matrix_matches_traced_traffic(observed_fig12):
    runs, comm, tl = observed_fig12
    for machine, run in runs.items():
        pm = comm.matrix(f"fig12:{machine}")
        assert pm is not None, machine
        assert pm.total_bytes == run.traffic["total_bytes"]
        assert sum(pm.row_bytes()) == run.traffic["total_bytes"]
        assert pm.inter_bytes == run.traffic["inter_node_bytes"]
        assert f"fig12:{machine}" in tl.phases()


def test_xeon_uplink_busier_than_altix(observed_fig12):
    """Paper §4: the Xeon cluster's blocking fat-tree uplinks saturate on
    Alltoall where the Altix NUMAlink fabric stays comfortable."""
    runs, _comm, _tl = observed_fig12
    xeon = runs["xeon"].report.utilisation["bisection"]
    altix = runs["altix_nl4"].report.utilisation["bisection"]
    assert xeon > altix


def test_report_names_analyser_dominant_verbatim(observed_fig12):
    runs, comm, tl = observed_fig12
    observed = {"fig12": {m: r.to_dict() for m, r in runs.items()}}
    doc = build_run_doc(
        harness={"git_sha": "test", "wall_s": 0.1, "max_cpus": 16,
                 "jobs": 1, "cache": None, "fingerprint": "x",
                 "schema_version": 1},
        totals={"points": 0, "cache_hits": 0, "cache_misses": 0,
                "events": 0, "compute_wall_s": 0.0},
        items=[], comm=comm.snapshot(), timeline=tl.snapshot(),
        observed=observed, spans=[], ledger=None,
    )
    html = render_html(doc)
    for machine, run in runs.items():
        # the verdict table carries the analyser's dominant kind untouched
        assert f"<b>{run.report.dominant}</b>" in html


# -- dashboard round-trip ------------------------------------------------------

def _tiny_doc():
    comm = CommRecorder()
    with comm.phase("fig12:xeon"):
        comm.record(0, 1, 1 << 20, inter=True)
        comm.record(1, 0, 1 << 19, inter=False)
    tl = TimelineRecorder()
    with tl.phase("fig12:xeon"):
        tl.series("egress").add(0.0, 2e-6, nbytes=64)
        tl.series("core").add(1e-6, 3e-6)
    observed = {"fig12": {"xeon": {
        "critical_path": {
            "machine": "xeon", "nprocs": 16, "elapsed_us": 12.5,
            "dominant": "bisection", "dominant_share": 0.61,
            "dominant_window_us": [1.5, 10.0],
            "breakdown_us": {"bisection": 7.6, "wait": 4.9},
            "utilisation": {"bisection": 0.8, "nic": 0.4,
                            "shm": 0.0, "compute": 0.0},
            "path_segments": 9,
        },
        "straggler": {"collectives": [], "ranks": {},
                      "max_skew_s": 1.5e-6, "mean_skew_s": 1e-6},
        "traffic": {"message_count": 2, "total_bytes": 3 << 19,
                    "inter_node_bytes": 1 << 20},
    }}}
    return build_run_doc(
        harness={"schema_version": 1, "git_sha": "abc1234",
                 "fingerprint": "deadbeef", "max_cpus": 16, "jobs": 2,
                 "cache": None, "wall_s": 1.25},
        totals={"points": 4, "cache_hits": 1, "cache_misses": 3,
                "events": 1000, "compute_wall_s": 0.5},
        items=[{"id": "fig12", "wall_s": 0.5, "points": 4,
                "cache_hits": 1, "cache_misses": 3, "events": 1000,
                "events_per_sec": 2000, "compute_wall_s": 0.5,
                "spans": {"name": "fig12", "cat": "figure",
                          "clock": "wall", "t_start": 0.0, "t_end": 0.5,
                          "duration_s": 0.5, "children": []}}],
        comm=comm.snapshot(), timeline=tl.snapshot(), observed=observed,
        spans=[{"name": "fig12", "cat": "figure", "clock": "wall",
                "t_start": 0.0, "t_end": 0.5, "duration_s": 0.5,
                "children": [{"name": "compute", "cat": "sweep",
                              "clock": "wall", "t_start": 0.0,
                              "t_end": 0.4, "duration_s": 0.4,
                              "children": []}]}],
        ledger={"path": "BENCH_ledger.jsonl", "entries": 4,
                "trend": [["a1", 1.0], ["b2", 1.1], ["c3", 1.05]],
                "regression": {"checked": True, "history": 3,
                               "regressions": [], "ok": True}},
    )


def test_report_write_read_round_trip(tmp_path):
    doc = _tiny_doc()
    assert doc["schema_version"] == REPORT_SCHEMA_VERSION
    path = write_report(doc, tmp_path / "out.html")
    assert read_report_doc(path) == doc


def test_report_html_is_self_contained(tmp_path):
    doc = _tiny_doc()
    html = render_html(doc)
    # inline SVG, no external fetches
    assert "<svg" in html and "<script src" not in html
    assert "http://" not in html.replace("http://www.w3.org", "")
    # heatmap cells and timeline polylines present with tooltips
    assert "<rect" in html and "<polyline" in html and "<title>" in html
    # the verdict table quotes the analyser verbatim
    assert "<b>bisection</b>" in html
    # ledger trend + status rendered
    assert "ledger" in html.lower() and "abc1234" in html


def test_report_blob_survives_script_breaking_strings(tmp_path):
    doc = _tiny_doc()
    doc["harness"]["git_sha"] = "</script><b>&amp;"
    path = write_report(doc, tmp_path / "evil.html")
    back = read_report_doc(path)
    assert back["harness"]["git_sha"] == "</script><b>&amp;"
    # the raw blob must not terminate the script element early
    text = path.read_text()
    start = text.index('id="run-data">')
    end = text.index("</script>", start)
    assert "</script>" not in text[start + len('id="run-data">'):end]


# -- harness CLI end-to-end ----------------------------------------------------

def test_runner_report_and_ledger_cli(tmp_path, capsys):
    from repro.harness.runner import main as runner_main

    report = tmp_path / "run.html"
    bench = tmp_path / "bench.json"
    ledger = tmp_path / "ledger.jsonl"
    args = ["--figure", "12", "--max-cpus", "8", "--no-cache",
            "--report", str(report), "--bench-json", str(bench),
            "--ledger", str(ledger)]
    assert runner_main(args) == 0

    bench_doc = json.loads(bench.read_text())
    assert bench_doc["schema_version"] == BENCH_SCHEMA_VERSION
    assert bench_doc["harness"]["git_sha"]
    assert bench_doc["harness"]["engine_backend"] in sched.available_backends()
    assert bench_doc["totals"]["points"] > 0

    entries = RunLedger(ledger).entries()
    assert len(entries) == 1
    assert entries[0]["items"] == ["fig12"]
    assert entries[0]["schema_version"] == LEDGER_SCHEMA_VERSION
    assert entries[0]["engine_backend"] == bench_doc["harness"]["engine_backend"]

    doc = read_report_doc(report)
    assert doc["schema_version"] == REPORT_SCHEMA_VERSION
    assert doc["ledger"]["entries"] == 1
    # fig12 comm matrices are present and row-sums match the traced bytes
    for machine, run in doc["observed"]["fig12"].items():
        pm = doc["comm"]["phases"][f"fig12:{machine}"]
        total = pm["intra"]["bytes"] + pm["inter"]["bytes"]
        assert total == run["traffic"]["total_bytes"] > 0
        dominant = run["critical_path"]["dominant"]
        assert f"<b>{dominant}</b>" in report.read_text()

    # second run accumulates ledger history
    assert runner_main(args) == 0
    assert len(RunLedger(ledger).entries()) == 2
