"""Fleet worker protocol and crash/restart accounting.

Two layers under test.  The worker side
(:func:`repro.exec.fleet.serve`) is a pure stdin/stdout loop, so it is
driven directly with in-memory streams: malformed lines, unknown ops,
EOF, shutdown, and the optional trace-context round trip.  The parent
side (:class:`repro.exec.backends.SubprocessBackend`) is exercised with
an in-process stand-in for the worker subprocess, so a worker that dies
mid-request or emits garbage exercises the real failure bookkeeping —
partial results surface, lost points requeue exactly once, and the
fleet-health counters (crashes, restarts, requests) add up.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.exec import SimPoint, SweepExecutor, compute_point
from repro.exec.backends import (
    ExecBackendError,
    SubprocessBackend,
    WorkerContext,
    decode_point,
    decode_record,
    encode_point,
    encode_record,
)
from repro.exec.fleet import serve


def _point(nprocs=2):
    return SimPoint.make("imb", "xeon", nprocs, benchmark="Sendrecv",
                         msg_bytes=1024)


def _serve_lines(*msgs: object) -> list[dict]:
    """Feed protocol lines through serve(); returns the parsed replies."""
    lines = []
    for m in msgs:
        lines.append(m if isinstance(m, str) else json.dumps(m))
    stdin = io.StringIO("\n".join(lines) + "\n")
    stdout = io.StringIO()
    assert serve(stdin, stdout) == 0
    return [json.loads(line) for line in stdout.getvalue().splitlines()]


_INIT = {"op": "init", "ctx": WorkerContext(engine_backend="heapq").to_dict()}


# -- worker side: the protocol loop -------------------------------------------


def test_serve_eof_is_a_clean_exit():
    assert serve(io.StringIO(""), io.StringIO()) == 0


def test_serve_shutdown_stops_reading():
    replies = _serve_lines({"op": "shutdown"},
                           {"op": "job", "id": 0})  # never reached
    assert replies == []


def test_serve_malformed_line_replies_error_and_continues():
    replies = _serve_lines("this is not json", {"op": "shutdown"})
    (err,) = replies
    assert err["op"] == "error" and err["id"] is None
    assert "malformed" in err["error"]


def test_serve_unknown_op_replies_error():
    replies = _serve_lines(_INIT, {"op": "dance", "id": 9},
                           {"op": "shutdown"})
    (err,) = replies
    assert err["op"] == "error" and err["id"] == 9
    assert "unknown op" in err["error"]


def test_serve_blank_lines_are_skipped():
    stdin = io.StringIO("\n\n" + json.dumps({"op": "shutdown"}) + "\n")
    stdout = io.StringIO()
    assert serve(stdin, stdout) == 0
    assert stdout.getvalue() == ""


def test_serve_job_round_trip_matches_inline():
    pt = _point()
    replies = _serve_lines(
        _INIT,
        {"op": "job", "id": 3, "point": encode_point(pt)},
        {"op": "shutdown"})
    (reply,) = replies
    assert reply["op"] == "result" and reply["id"] == 3
    assert "spans" not in reply  # untraced job: no telemetry payload
    record = decode_record(reply["record"])
    expect = compute_point(pt)
    assert record.value == expect.value
    assert record.events == expect.events


def test_serve_sim_error_replies_error_with_traceback():
    bad = SimPoint.make("nope", "xeon", 2)
    replies = _serve_lines(
        _INIT,
        {"op": "job", "id": 7, "point": encode_point(bad)},
        {"op": "shutdown"})
    (err,) = replies
    assert err["op"] == "error" and err["id"] == 7
    assert "unknown simulation point" in err["error"]


def test_serve_traced_job_ships_spans_home():
    pt = _point()
    ctx = {"trace_id": "trace-X", "parent_span_id": "span-Y"}
    replies = _serve_lines(
        _INIT,
        {"op": "job", "id": 0, "point": encode_point(pt), "trace": ctx},
        {"op": "shutdown"})
    (reply,) = replies
    spans = reply["spans"]
    assert spans, "traced job must return its spans"
    assert all(s["trace_id"] == "trace-X" for s in spans)
    # The worker's top-level span hangs off the remote parent.
    roots = [s for s in spans if s["parent_id"] == "span-Y"]
    assert [s["name"] for s in roots] == ["point.compute"]
    # Tracing never leaks into the record payload.
    traced = decode_record(reply["record"])
    plain = compute_point(pt)
    assert traced.value == plain.value
    assert traced.events == plain.events


# -- parent side: crash/restart accounting ------------------------------------


class _FakeWorker:
    """In-process stand-in for one fleet subprocess.

    Behaviours (assigned per spawn index from ``plan``):
    ``ok`` answers every job; ``die-after-1`` answers one job then
    simulates worker death (EOF on its stdout); ``garbage`` simulates a
    worker writing a non-JSON line.
    """

    plan: dict[int, str] = {}
    spawned: list["_FakeWorker"] = []

    def __init__(self, ctx) -> None:
        self.behavior = self.plan.get(len(self.spawned), "ok")
        type(self).spawned.append(self)
        self.answered = 0
        self.closed = False
        self._last: dict | None = None

    def send(self, msg: dict) -> None:
        self._last = msg

    def recv(self) -> dict | None:
        msg = self._last
        assert msg is not None and msg["op"] == "job"
        if self.behavior == "die-after-1" and self.answered >= 1:
            return None  # EOF: the process is gone
        if self.behavior == "garbage":
            raise json.JSONDecodeError("Expecting value", "<<<garbage>>>", 0)
        self.answered += 1
        record = compute_point(decode_point(msg["point"]))
        return {"op": "result", "id": msg["id"],
                "record": encode_record(record)}

    def alive(self) -> bool:
        return not self.closed

    def close(self) -> None:
        self.closed = True


@pytest.fixture
def fake_fleet(monkeypatch):
    monkeypatch.setattr("repro.exec.backends._FleetWorker", _FakeWorker)
    _FakeWorker.plan = {}
    _FakeWorker.spawned = []
    return _FakeWorker


def test_worker_death_surfaces_partials_and_counts_one_crash(fake_fleet):
    fake_fleet.plan = {1: "die-after-1"}
    backend = SubprocessBackend(jobs=2)
    pts = [_point(p) for p in (2, 4, 8, 16)]
    with pytest.raises(ExecBackendError) as ei:
        backend.compute(pts)
    err = ei.value
    assert "exited mid-batch" in str(err)
    # Worker 0 finished its share (points 0, 2); worker 1 answered one
    # job (point 1) before dying, losing point 3.
    assert set(err.done) == {0, 1, 2}
    assert backend.health["crashes"] == 1
    assert backend.health["requests"] == 3
    assert all(w.closed for w in fake_fleet.spawned)  # fleet dropped


def test_garbage_from_worker_counts_as_crash(fake_fleet):
    fake_fleet.plan = {0: "garbage"}
    backend = SubprocessBackend(jobs=2)
    with pytest.raises(ExecBackendError, match="worker i/o failed"):
        backend.compute([_point(p) for p in (2, 4)])
    assert backend.health["crashes"] == 1


def test_respawn_after_crash_counts_restarts(fake_fleet):
    fake_fleet.plan = {0: "garbage"}
    backend = SubprocessBackend(jobs=2)
    pts = [_point(p) for p in (2, 4)]
    with pytest.raises(ExecBackendError):
        backend.compute(pts)
    assert backend.health["restarts"] == 0
    fake_fleet.plan = {}
    records = backend.compute(pts)  # fleet respawns lazily, healthy now
    assert len(records) == 2
    assert backend.health["restarts"] == 2  # both workers are respawns
    assert backend.health["workers_spawned"] == 4
    backend.close()


def test_executor_requeues_lost_points_exactly_once(fake_fleet):
    fake_fleet.plan = {1: "die-after-1"}
    backend = SubprocessBackend(jobs=2)
    pts = [_point(p) for p in (2, 4, 8, 16)]
    with SweepExecutor(jobs=1, cache=None, backend="inline") as ref:
        clean = ref.run_points(pts)
    ex = SweepExecutor(jobs=2, cache=None, backend=backend)
    values = ex.run_points(pts)
    assert values == clean  # identical output despite the mid-batch death
    st = ex.stats()
    assert st["points"] == len(pts)       # counted once, not re-counted
    assert st["cache_misses"] == len(pts)
    assert st["requeued"] == 1            # only the lost point recomputed
    assert backend.health["crashes"] == 1
