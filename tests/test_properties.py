"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mpi import BXOR, SUM
from repro.mpi.collectives import balanced_split, split_payload
from repro.network import CrossbarSwitch, FatTree, Hypercube
from repro.network.resources import BandwidthResource
from tests.conftest import make_test_machine, run_ranks

M = make_test_machine(cpus_per_node=2, max_cpus=64)

SLOW = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


# -- balanced_split / split_payload ------------------------------------------------

@given(st.integers(0, 10 ** 9), st.integers(1, 512))
def test_balanced_split_partitions_exactly(nbytes, parts):
    sizes = balanced_split(nbytes, parts)
    assert len(sizes) == parts
    assert sum(sizes) == nbytes
    assert max(sizes) - min(sizes) <= 1
    assert sorted(sizes, reverse=True) == sizes  # larger blocks first


@given(st.integers(0, 200), st.integers(1, 32))
def test_split_payload_concat_roundtrip(n, parts):
    data = np.arange(n, dtype=np.float64)
    chunks = split_payload(data, parts)
    assert len(chunks) == parts
    assert np.array_equal(np.concatenate(chunks) if chunks else data, data)


# -- bandwidth resource ------------------------------------------------------------

@given(st.lists(st.tuples(st.floats(1, 1e6), st.floats(0, 10)), min_size=1,
                max_size=20))
def test_resource_work_conservation(jobs):
    """Total busy time equals total service demand; FIFO never overlaps."""
    r = BandwidthResource("r", 1000.0)
    total = 0.0
    prev_end = 0.0
    for nbytes, earliest in jobs:
        s, e = r.reserve(nbytes, earliest)
        assert s >= prev_end - 1e-12
        assert abs((e - s) - nbytes / 1000.0) < 1e-9
        total += nbytes / 1000.0
        prev_end = e
    assert abs(r.busy_time - total) < 1e-6


# -- topology invariants -------------------------------------------------------------

@given(st.integers(2, 64))
def test_hypercube_hops_symmetric_and_triangle(n):
    t = Hypercube(n)
    for a in range(0, n, max(1, n // 7)):
        for b in range(0, n, max(1, n // 5)):
            assert t.hops(a, b) == t.hops(b, a)
            assert (t.hops(a, b) == 0) == (a == b)


@given(st.integers(2, 60), st.integers(2, 6), st.integers(2, 6))
def test_fattree_analytic_hops_matches_bruteforce(n, g1, g2):
    cap = g1 * g2 * 4
    if n > cap:
        n = cap
    t = FatTree(n, group_sizes=(g1, g2, 4))
    assert abs(t.average_hops_analytic() - t.average_hops()) < 1e-9


@given(st.integers(1, 64))
def test_crossbar_capacity_scales_linearly(n):
    t = CrossbarSwitch(n)
    assert t.level_capacity_links(1) == 2.0 * n


# -- collective correctness under random inputs --------------------------------------

@SLOW
@given(
    p=st.integers(2, 9),
    n=st.integers(1, 40),
    seed=st.integers(0, 2 ** 16),
)
def test_allreduce_equals_numpy_sum(p, n, seed):
    rng = np.random.default_rng(seed)
    bufs = [rng.standard_normal(n) for _ in range(p)]
    ref = np.sum(bufs, axis=0)

    def prog(comm):
        out = yield from comm.allreduce(data=bufs[comm.rank], op=SUM)
        return out

    out = run_ranks(M, p, prog)
    for r in range(p):
        assert np.allclose(out.results[r], ref)


@SLOW
@given(p=st.integers(2, 9), seed=st.integers(0, 2 ** 16))
def test_allreduce_bxor_self_inverse(p, seed):
    """Applying the same XOR allreduce twice over identical inputs gives
    zero when p is even, the buffer itself when odd."""
    rng = np.random.default_rng(seed)
    buf = rng.integers(0, 2 ** 60, size=8, dtype=np.uint64)

    def prog(comm):
        out = yield from comm.allreduce(data=buf, op=BXOR)
        return out

    out = run_ranks(M, p, prog)
    expected = np.zeros_like(buf) if p % 2 == 0 else buf
    assert np.array_equal(out.results[0], expected)


@SLOW
@given(p=st.integers(2, 8), seed=st.integers(0, 2 ** 16))
def test_alltoall_is_transpose(p, seed):
    """alltoall output[j][i] == input[i][j] (matrix transpose semantics)."""
    rng = np.random.default_rng(seed)
    mat = rng.standard_normal((p, p))

    def prog(comm):
        datas = [np.array([mat[comm.rank, d]]) for d in range(p)]
        out = yield from comm.alltoall(datas=datas)
        return [float(x[0]) for x in out]

    out = run_ranks(M, p, prog)
    got = np.array([out.results[r] for r in range(p)])
    assert np.allclose(got, mat.T)


@SLOW
@given(p=st.integers(2, 9), root=st.integers(0, 8), seed=st.integers(0, 99))
def test_bcast_any_root(p, root, seed):
    root %= p
    rng = np.random.default_rng(seed)
    ref = rng.standard_normal(6)

    def prog(comm):
        data = ref if comm.rank == root else None
        out = yield from comm.bcast(data=data, nbytes=48, root=root)
        return out

    out = run_ranks(M, p, prog)
    for r in range(p):
        assert np.array_equal(out.results[r], ref)


@SLOW
@given(p=st.integers(2, 8), n_mult=st.integers(1, 5),
       seed=st.integers(0, 99))
def test_reduce_scatter_blocks_match_reduce(p, n_mult, seed):
    rng = np.random.default_rng(seed)
    n = p * n_mult
    bufs = [rng.standard_normal(n) for _ in range(p)]
    full = np.sum(bufs, axis=0)
    blocks = np.array_split(full, p)

    def prog(comm):
        out = yield from comm.reduce_scatter(data=bufs[comm.rank], op=SUM)
        return out

    out = run_ranks(M, p, prog)
    for r in range(p):
        assert np.allclose(out.results[r], blocks[r])


# -- simulation determinism ------------------------------------------------------------

@SLOW
@given(p=st.integers(2, 8), nbytes=st.integers(1, 10 ** 6))
def test_virtual_time_deterministic(p, nbytes):
    def prog(comm):
        yield from comm.allreduce(nbytes=nbytes)
        yield from comm.barrier()
        res = yield from comm.allgather(nbytes=nbytes)
        return comm.now

    t1 = run_ranks(M, p, prog).elapsed
    t2 = run_ranks(M, p, prog).elapsed
    assert t1 == t2


@SLOW
@given(nbytes=st.integers(1, 4 * 1024 * 1024))
def test_message_time_monotone_in_size(nbytes):
    """Bigger messages never arrive earlier."""
    def prog(comm, nb):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=nb)
        else:
            yield from comm.recv(0)
            return comm.now

    t_small = run_ranks(M, 2, prog, nbytes).results[1]
    t_big = run_ranks(M, 2, prog, nbytes + 4096).results[1]
    assert t_big >= t_small


@SLOW
@given(p=st.integers(2, 9), seed=st.integers(0, 999))
def test_scan_prefix_property(p, seed):
    """scan[r] - scan[r-1] == input[r] for summed scalars."""
    rng = np.random.default_rng(seed)
    vals = rng.standard_normal(p)

    def prog(comm):
        out = yield from comm.scan(data=np.array([vals[comm.rank]]), op=SUM)
        return float(out[0])

    out = run_ranks(M, p, prog)
    prefix = np.cumsum(vals)
    assert np.allclose(list(out.results), prefix)


@SLOW
@given(p=st.integers(2, 8), seed=st.integers(0, 999))
def test_gatherv_roundtrip_property(p, seed):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(1, 6, size=p)
    counts = [int(8 * n) for n in lengths]

    def prog(comm):
        data = np.full(int(lengths[comm.rank]), float(comm.rank))
        gathered = yield from comm.gatherv(data=data, counts=counts, root=0)
        back = yield from comm.scatterv(datas=gathered, counts=counts,
                                        root=0)
        return back

    out = run_ranks(M, p, prog)
    for r in range(p):
        assert np.array_equal(out.results[r],
                              np.full(int(lengths[r]), float(r)))


@SLOW
@given(p=st.integers(2, 8), factor=st.floats(1.0, 16.0))
def test_straggler_never_speeds_up_collectives(p, factor):
    """Monotonicity: degrading a node can only increase collective time."""
    from repro.machine.faults import slow_node

    def driver(comm):
        yield from comm.barrier()
        t0 = comm.now
        yield from comm.allreduce(nbytes=65536)
        return comm.now - t0

    from repro.mpi.cluster import Cluster
    clean = max(Cluster(M, p).run(driver).results)
    hurt = max(Cluster(M, p).run(
        driver, fabric_setup=lambda f: slow_node(f, 0, factor)).results)
    assert hurt >= clean - 1e-12


@SLOW
@given(
    p=st.integers(1, 6),
    sizes=st.lists(st.integers(1, 64), min_size=1, max_size=6),
    seed=st.integers(0, 999),
)
def test_file_writes_reassemble(p, sizes, seed):
    """Arbitrary non-overlapping writes reassemble exactly on read."""
    from repro.io import file_open
    from repro.mpi.cluster import Cluster

    rng = np.random.default_rng(seed)
    # one region per rank per size entry, laid out back to back
    plan = []
    offset = 0
    for i, size in enumerate(sizes):
        owner = int(rng.integers(0, p))
        payload = bytes([((i + 1) * 37) % 256]) * size
        plan.append((owner, offset, payload))
        offset += size

    def prog(comm):
        f = yield from file_open(comm, verify=True)
        for owner, off, payload in plan:
            if comm.rank == owner:
                yield from f.write_at(off, data=payload)
        yield from comm.barrier()
        got = yield from f.read_at(0, offset)
        yield from f.close()
        return got

    out = Cluster(M, p).run(prog)
    expected = b"".join(payload for (_o, _off, payload) in plan)
    assert out.results[0] == expected


@SLOW
@given(p=st.integers(2, 8), nbytes=st.integers(1, 1 << 20),
       seed=st.integers(0, 99))
def test_put_get_roundtrip_property(p, nbytes, seed):
    """RMA put then remote get returns exactly what was put."""
    from repro.mpi.onesided import win_create

    rng = np.random.default_rng(seed)
    n = max(1, nbytes // 8)
    data = rng.standard_normal(min(n, 64))

    def prog(comm):
        win = yield from win_create(comm, len(data))
        if comm.rank == 0:
            win.put(1, data)
        yield from win.fence()
        if comm.rank == 2 % comm.size:
            req = win.get(1, len(data))
            got = yield req
            yield from win.fence()
            return got
        yield from win.fence()

    out = run_ranks(M, p, prog)
    reader = 2 % p
    assert np.array_equal(out.results[reader], data)


# -- metrics registry (validation-gate dependencies) -------------------------------


@given(st.integers(-60, 60))
def test_log2_bucket_exact_powers_land_in_own_bucket(e):
    """2**(e-1) < v <= 2**e: an exact power of two is its bucket's top."""
    from repro.obs.metrics import log2_bucket

    assert log2_bucket(2.0 ** e) == e
    assert log2_bucket(2.0 ** e * 1.0000001) == e + 1


@given(st.floats(min_value=1e-15, max_value=1e15))
def test_log2_bucket_brackets_every_value(v):
    from repro.obs.metrics import log2_bucket

    e = log2_bucket(v)
    assert 2.0 ** (e - 1) < v <= 2.0 ** e


@st.composite
def _snapshots(draw):
    names = st.sampled_from(["a.x", "a.y", "b.z"])
    reg_ops = draw(st.lists(
        st.tuples(st.sampled_from(["counter", "gauge", "hist"]), names,
                  st.floats(0, 1e6, allow_nan=False)),
        max_size=12))
    from repro.obs.metrics import MetricsRegistry

    reg = MetricsRegistry(enabled=True)
    for kind, name, v in reg_ops:
        if kind == "counter":
            reg.counter(name).inc(v)
        elif kind == "gauge":
            reg.gauge(name).set_max(v)
        else:
            reg.histogram(name).observe(v)
    return reg.snapshot()


@given(_snapshots(), _snapshots())
def test_metrics_merge_commutes(snap_a, snap_b):
    """Fan-in order cannot change merged metrics (exact float equality:
    counters add at most two terms per name, and a + b == b + a)."""
    from repro.obs.metrics import merge_snapshots

    assert merge_snapshots([snap_a, snap_b]) == \
        merge_snapshots([snap_b, snap_a])


@given(_snapshots())
def test_metrics_merge_empty_is_identity(snap):
    from repro.obs.metrics import MetricsRegistry, merge_snapshots

    empty = MetricsRegistry(enabled=True).snapshot()
    assert merge_snapshots([snap, empty]) == merge_snapshots([snap])
    assert merge_snapshots([empty, snap]) == merge_snapshots([snap])


@given(st.integers(0, 4096), st.integers(1, 64))
def test_split_payload_sizes_match_balanced_split(n, parts):
    """The array splitter and the byte accountant agree on distribution."""
    data = np.arange(n, dtype=np.float64)
    chunks = split_payload(data, parts)
    assert [len(c) for c in chunks] == balanced_split(n, parts)


# -- timeline series -----------------------------------------------------------------

from repro.obs.timeline import RESOLUTION, TimelineSeries  # noqa: E402

_intervals = st.lists(
    st.tuples(st.floats(0, 1e3), st.floats(0, 10), st.floats(0, 1e6)),
    max_size=40,
)


def _build_series(ivals):
    s = TimelineSeries()
    for start, dur, nbytes in ivals:
        s.add(start, start + dur, nbytes)
    return s


@given(_intervals)
def test_timeline_snapshot_merge_round_trip_exact(ivals):
    """to_dict -> merge into a fresh series -> to_dict is bit-identical,
    whatever order the intervals arrived in."""
    s = _build_series(ivals)
    snap = s.to_dict()
    t = TimelineSeries()
    t.merge(snap)
    assert t.to_dict() == snap


@given(_intervals, _intervals)
def test_timeline_merge_adds_mass_exactly(a_ivals, b_ivals):
    a, b = _build_series(a_ivals), _build_series(b_ivals)
    m = TimelineSeries()
    m.merge(a.to_dict())
    m.merge(b.to_dict())
    # Fold-in starts from 0.0 accumulators, so the totals are the exact
    # float sums, not approximations.
    assert m.count == a.count + b.count
    assert m.busy_s == a.busy_s + b.busy_s
    assert m.bytes == a.bytes + b.bytes


@given(_intervals, st.integers(1, 8))
def test_timeline_halving_preserves_mass(ivals, halvings):
    """Merging into a coarser series (any number of width halvings in
    reverse) keeps busy_s/bytes exact and bucket mass conserved."""
    s = _build_series(ivals)
    coarse = TimelineSeries()
    coarse.exp = s.exp + halvings
    coarse.merge(s.to_dict())
    assert coarse.exp == s.exp + halvings  # coarser side sets the width
    assert coarse.busy_s == s.busy_s
    assert coarse.bytes == s.bytes
    assert coarse.count == s.count
    assert sum(coarse.buckets.values()) == pytest.approx(
        sum(s.buckets.values()), rel=1e-12, abs=1e-12)
    # Every coarse index is a fold of fine indices: i >> halvings.
    want = set(int(k) >> halvings for k in s.buckets)
    assert set(coarse.buckets) == want


@given(_intervals)
def test_timeline_bucket_count_stays_bounded(ivals):
    s = _build_series(ivals)
    assert len(s.buckets) <= RESOLUTION + 1
    assert s.busy_s == pytest.approx(sum(dur for _, dur, _ in ivals))
