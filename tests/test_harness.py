"""Harness integration tests: figures, tables, rendering, CLI."""

from pathlib import Path

import pytest

from repro.analysis.ratios import KIVIAT_COLUMNS
from repro.harness import (
    ALL_FIGURES,
    ALL_TABLES,
    fig05,
    figure_to_csv,
    imb_figure,
    render_figure,
    render_table,
    save_figure,
    save_table,
    table1,
    table2,
    table3,
)
from repro.harness.runner import main as runner_main

CAP = 8  # tiny sweeps keep this fast


def test_all_figures_registered():
    # The paper's fifteen plus the energy kiviat (fig16, not in the paper).
    assert sorted(ALL_FIGURES) == [f"fig{i:02d}" for i in range(1, 17)]


def test_all_tables_registered():
    # The paper's three plus the energy ranking (table4, not in the paper).
    assert sorted(ALL_TABLES) == ["table1", "table2", "table3", "table4"]


@pytest.mark.parametrize("fig_id", ["fig01", "fig02", "fig03", "fig04"])
def test_hpcc_balance_figures_generate(fig_id):
    fig = ALL_FIGURES[fig_id](max_cpus=CAP)
    assert len(fig.series) == 5
    for s in fig.series:
        assert len(s.x) == len(s.y) >= 1
        assert all(v > 0 for v in s.y)


@pytest.mark.parametrize("fig_id", ["fig06", "fig07", "fig12", "fig13"])
def test_imb_figures_generate(fig_id):
    fig = ALL_FIGURES[fig_id](max_cpus=CAP)
    assert {s.machine for s in fig.series} == {
        "sx8", "x1_msp", "x1_ssp", "altix_nl4", "xeon", "opteron",
    }
    for s in fig.series:
        assert all(v > 0 for v in s.y)


def test_fig05_kiviat_normalisation():
    fig, data = fig05(max_cpus=CAP)
    assert data.columns == KIVIAT_COLUMNS
    # HPL column normalised: best system exactly 1.0
    hpl_vals = [row["G-HPL"] for row in data.normalised.values()]
    assert max(hpl_vals) == pytest.approx(1.0)
    # every normalised value in (0, 1]
    for row in data.normalised.values():
        for col, v in row.items():
            if v is not None:
                assert 0 < v <= 1.0 + 1e-12, col


def test_imb_figure_unknown_id():
    with pytest.raises(KeyError):
        imb_figure("fig99")


def test_figure_accessor_by_machine():
    fig = imb_figure("fig06", max_cpus=4)
    assert fig.by_machine("sx8").machine == "sx8"
    with pytest.raises(KeyError):
        fig.by_machine("cray_t3e")


def test_table1_matches_paper_constants():
    t = table1()
    rows = dict(t.rows)
    assert rows["CPUs"] == 512
    assert rows["Routers"] == 128
    assert rows["Memory (Tb)"] == 1


def test_table2_five_platforms():
    t = table2()
    assert len(t.rows) == 5
    names = [r[0] for r in t.rows]
    assert "NEC SX-8" in names
    assert "Dell Xeon Cluster" in names


def test_table3_has_all_ratio_rows():
    t = table3(max_cpus=CAP)
    assert len(t.rows) == len(KIVIAT_COLUMNS)
    assert t.rows[0][0] == "G-HPL"


def test_render_table_ascii():
    text = render_table(table2())
    assert "NEC SX-8" in text
    assert "| Vector" in text


def test_render_and_csv_figure():
    fig = imb_figure("fig06", max_cpus=4)
    text = render_figure(fig)
    assert fig.title in text
    csv_text = figure_to_csv(fig)
    assert csv_text.splitlines()[0].startswith("figure,machine,label")
    assert len(csv_text.splitlines()) > len(fig.series)


def test_save_figure_and_table(tmp_path: Path):
    fig = imb_figure("fig06", max_cpus=4)
    p = save_figure(fig, tmp_path)
    assert p.exists()
    assert (tmp_path / "fig06.txt").exists()
    t = save_table(table2(), tmp_path)
    assert t.exists()
    assert (tmp_path / "table2.txt").read_text().startswith("System")


def test_runner_cli_table(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # bench/ledger artifacts default to cwd
    rc = runner_main(["--table", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "NEC SX-8" in out


def test_runner_cli_figure(capsys, tmp_path):
    rc = runner_main(["--figure", "6", "--max-cpus", "4",
                      "--out", str(tmp_path)])
    assert rc == 0
    assert (tmp_path / "fig06.csv").exists()


def test_runner_cli_no_args_shows_help(capsys):
    assert runner_main([]) == 2


def test_runner_figure_id_normalisation(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    rc = runner_main(["--figure", "fig06", "--max-cpus", "4"])
    assert rc == 0


def test_ascii_plot_renders():
    from repro.harness import render_ascii_plot

    fig = imb_figure("fig06", max_cpus=8)
    text = render_ascii_plot(fig, width=40, height=10)
    lines = text.splitlines()
    assert any(line.startswith("+---") for line in lines)
    assert "A=NEC SX-8" in text
    # the chart body is exactly `height` rows between the borders
    body = [ln for ln in lines if ln.startswith("|")]
    assert len(body) == 10
    assert all(len(ln) == 42 for ln in body)


def test_ascii_plot_empty_series():
    from repro.harness import render_ascii_plot
    from repro.harness.figures import FigureResult, FigureSeries

    fig = FigureResult(
        fig_id="figXX", title="t", xlabel="x", ylabel="y",
        series=(FigureSeries("m", "m", (0.0,), (0.0,)),),
    )
    assert "no positive data" in render_ascii_plot(fig)


def test_runner_cli_plot_flag(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    rc = runner_main(["--figure", "6", "--max-cpus", "4", "--plot"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "+---" in out


def test_json_exports(tmp_path):
    import json

    from repro.harness import figure_to_json, table_to_json

    fig = imb_figure("fig06", max_cpus=4)
    doc = json.loads(figure_to_json(fig))
    assert doc["fig_id"] == "fig06"
    assert len(doc["series"]) == 6
    assert doc["series"][0]["x"]

    t = json.loads(table_to_json(table2()))
    assert t["table_id"] == "table2"
    assert len(t["rows"]) == 5

    save_figure(fig, tmp_path)
    assert (tmp_path / "fig06.json").exists()
