"""Communicator management: split, dup, rank translation."""

import numpy as np
import pytest

from repro.core.errors import MPIError
from repro.mpi import SUM
from repro.mpi.comm import Comm
from tests.conftest import make_test_machine, run_ranks

M = make_test_machine(cpus_per_node=2, max_cpus=64)


def test_split_into_even_odd():
    def prog(comm):
        sub = yield from comm.split(color=comm.rank % 2)
        total = yield from sub.allreduce(data=float(comm.rank), nbytes=8,
                                         op=SUM)
        return sub.rank, sub.size, total

    out = run_ranks(M, 8, prog)
    for r in range(8):
        sub_rank, sub_size, total = out.results[r]
        assert sub_size == 4
        assert sub_rank == r // 2
        expected = sum(x for x in range(8) if x % 2 == r % 2)
        assert total == expected


def test_split_key_reorders():
    def prog(comm):
        # reversed key ordering
        sub = yield from comm.split(color=0, key=-comm.rank)
        return sub.rank

    out = run_ranks(M, 4, prog)
    assert list(out.results) == [3, 2, 1, 0]


def test_split_isolated_channels():
    """Messages in a child comm must not match the parent's."""
    def prog(comm):
        sub = yield from comm.split(color=0)
        if comm.rank == 0:
            yield from sub.send(1, nbytes=8, data="sub", tag=3)
            yield from comm.send(1, nbytes=8, data="parent", tag=3)
        else:
            parent_msg = yield from comm.recv(0, tag=3)
            sub_msg = yield from sub.recv(0, tag=3)
            return parent_msg.data, sub_msg.data

    out = run_ranks(M, 2, prog)
    assert out.results[1] == ("parent", "sub")


def test_nested_split():
    def prog(comm):
        half = yield from comm.split(color=comm.rank // 4)
        quarter = yield from half.split(color=half.rank // 2)
        peers = yield from quarter.allgather(data=comm.rank, nbytes=8)
        return peers

    out = run_ranks(M, 8, prog)
    assert out.results[0] == [0, 1]
    assert out.results[5] == [4, 5]
    assert out.results[7] == [6, 7]


def test_dup_preserves_layout():
    def prog(comm):
        dup = yield from comm.dup()
        return dup.rank, dup.size

    out = run_ranks(M, 5, prog)
    assert [r for r, _s in out.results] == list(range(5))
    assert all(s == 5 for _r, s in out.results)


def test_source_rank_localised_in_subcomm():
    def prog(comm):
        # ranks 2,3 form a subcomm; world rank 3 is sub rank 1
        sub = yield from comm.split(color=comm.rank // 2)
        if sub.rank == 1:
            yield from sub.send(0, nbytes=8, data="x")
        else:
            res = yield from sub.recv(1)
            return res.source

    out = run_ranks(M, 4, prog)
    assert out.results[0] == 1
    assert out.results[2] == 1


def test_node_of_matches_placement():
    def prog(comm):
        yield from comm.barrier()
        return [comm.node_of(r) for r in range(comm.size)]

    out = run_ranks(M, 6, prog)
    assert out.results[0] == [0, 0, 1, 1, 2, 2]


def test_comm_rank_validation():
    cluster_like = None

    def prog(comm):
        with pytest.raises(MPIError):
            comm._global(99)
        yield 0.0

    run_ranks(M, 2, prog)


def test_bad_constructor_rank():
    with pytest.raises(MPIError):
        Comm(cluster=None, rank=3, world_ranks=(0, 1))


def test_now_reflects_virtual_time():
    def prog(comm):
        t0 = comm.now
        yield from comm.elapse(1.25)
        return comm.now - t0

    out = run_ranks(M, 1, prog)
    assert out.results[0] == pytest.approx(1.25)
