"""Distributed-tracing core: recorder, propagation, reassembly, export.

The contract under test is the one the service and fleet rely on: ids
are unique, parentage resolves most-specific-first, a trace context
survives a (simulated) process hop via inject/adopt, trees reassemble
with orphans kept visible, and the ambient lookup mirrors the
thread-local-then-global discipline of the other ``repro.obs``
recorders — with the disabled recorder recording exactly nothing.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.telemetry import (
    TRACE_SCHEMA_VERSION,
    TelemetryRecorder,
    TraceSpan,
    assemble_traces,
    get_telemetry,
    mint_span_id,
    mint_trace_id,
    set_telemetry,
    trace_summary,
    traces_to_spans,
    using_telemetry,
)


def test_schema_version_pinned():
    assert TRACE_SCHEMA_VERSION == 1


def test_minted_ids_unique_and_hexish():
    ids = {mint_trace_id() for _ in range(200)}
    ids |= {mint_span_id() for _ in range(200)}
    assert len(ids) == 400
    assert all(int(i, 16) >= 0 for i in ids)


# -- recording ----------------------------------------------------------------


def test_begin_end_nests_on_thread_stack():
    rec = TelemetryRecorder()
    outer = rec.begin("outer", "service")
    inner = rec.begin("inner", "exec", detail=7)
    rec.end(inner)
    rec.end(outer)
    spans = rec.drain()
    assert [s["name"] for s in spans] == ["inner", "outer"]
    by_name = {s["name"]: s for s in spans}
    assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
    assert by_name["inner"]["trace_id"] == by_name["outer"]["trace_id"]
    assert by_name["inner"]["attrs"] == {"detail": 7}
    assert by_name["outer"]["parent_id"] is None
    assert rec.drain() == []  # drain removed everything


def test_span_context_manager_marks_errors():
    rec = TelemetryRecorder()
    with pytest.raises(RuntimeError):
        with rec.span("doomed", "service"):
            raise RuntimeError("boom")
    (s,) = rec.drain()
    assert s["status"] == "error"
    assert s["t_end"] >= s["t_start"]


def test_record_retroactive_with_preminted_span_id():
    """The service writes a job's root last, under an id minted first —
    children recorded in between must already point at it."""
    rec = TelemetryRecorder()
    tid, root_id = mint_trace_id(), mint_span_id()
    rec.record("queue.wait", "service", t_start=1.0, t_end=2.0,
               parent={"trace_id": tid, "span_id": root_id})
    rec.record("service.job", "service", t_start=1.0, t_end=5.0,
               parent={"trace_id": tid}, span_id=root_id)
    summary = trace_summary(rec.drain())
    t = summary["traces"][tid]
    assert t["roots"] == 1
    assert t["root_name"] == "service.job"
    assert t["spans"] == 2
    assert t["wall_s"] == pytest.approx(4.0)


def test_disabled_recorder_records_nothing():
    rec = TelemetryRecorder(enabled=False)
    assert rec.begin("x") is None
    rec.end(None)
    with rec.span("y") as s:
        assert s is None
    assert rec.record("z", t_start=0.0, t_end=1.0) is None
    assert rec.inject() is None
    assert rec.adopt([{"trace_id": "t", "span_id": "s"}]) == 0
    assert rec.snapshot() == []


def test_threads_get_independent_stacks():
    rec = TelemetryRecorder()
    root = rec.begin("root", "service")
    seen = {}

    def worker():
        # A fresh thread has an empty stack: without an explicit parent
        # its span becomes a new root, not a child of another thread's
        # open span.
        s = rec.begin("thread-span", "exec")
        rec.end(s)
        seen["trace"] = s.trace_id

    t = threading.Thread(target=worker)
    t.start()
    t.join()
    rec.end(root)
    assert seen["trace"] != root.trace_id


# -- propagation --------------------------------------------------------------


def test_inject_adopt_round_trip_is_json_safe():
    parent = TelemetryRecorder()
    dispatch = parent.begin("exec.dispatch", "exec")
    ctx = json.loads(json.dumps(parent.inject()))
    assert ctx == {"trace_id": dispatch.trace_id,
                   "parent_span_id": dispatch.span_id}

    # The worker side: a recorder seeded with the wire context.
    worker = TelemetryRecorder(context=ctx)
    with worker.span("point.compute", "point", point="k"):
        pass
    wire = json.loads(json.dumps(worker.drain()))
    assert parent.adopt(wire) == 1
    parent.end(dispatch)

    trees = assemble_traces(parent.drain())
    (roots,) = trees.values()
    (root,) = roots
    assert root.name == "exec.dispatch"
    assert [c.name for c in root.children] == ["point.compute"]


def test_inject_with_no_open_span_falls_back_to_context():
    ctx = {"trace_id": "t1", "parent_span_id": "p1"}
    rec = TelemetryRecorder(context=ctx)
    assert rec.inject() == ctx
    assert TelemetryRecorder().inject() is None


def test_take_trace_removes_only_that_trace():
    rec = TelemetryRecorder()
    a = rec.record("a", t_start=0.0, t_end=1.0,
                   parent={"trace_id": "trace-a"})
    rec.record("b", t_start=0.0, t_end=1.0, parent={"trace_id": "trace-b"})
    taken = rec.take_trace("trace-a")
    assert [s["span_id"] for s in taken] == [a.span_id]
    assert [s["trace_id"] for s in rec.snapshot()] == ["trace-b"]


# -- reassembly / export ------------------------------------------------------


def test_orphan_spans_stay_visible_as_roots():
    rec = TelemetryRecorder()
    rec.record("lost-child", "point", t_start=1.0, t_end=2.0,
               parent={"trace_id": "t", "span_id": "never-arrived"})
    rec.record("root", "service", t_start=0.0, t_end=3.0,
               parent={"trace_id": "t"})
    summary = trace_summary(rec.drain())
    assert summary["traces"]["t"]["roots"] == 2
    assert summary["traces"]["t"]["root_name"] == "root"


def test_trace_summary_counts_by_cat_and_errors():
    rec = TelemetryRecorder()
    root = rec.begin("job", "service")
    with pytest.raises(ValueError):
        with rec.span("bad-point", "point"):
            raise ValueError()
    rec.end(root)
    (t,) = trace_summary(rec.drain())["traces"].values()
    assert t["by_cat"] == {"point": 1, "service": 1}
    assert t["errors"] == 1


def test_traces_to_spans_rebases_to_zero():
    rec = TelemetryRecorder()
    root = rec.begin("job", "service")
    rec.end(root)
    (span,) = traces_to_spans(rec.drain())
    assert span.t_start == 0.0
    assert span.args["trace_id"] == root.trace_id


def test_trace_span_dict_round_trip():
    s = TraceSpan("t", "s", "p", "name", "cat", t_start=1.5, t_end=2.5,
                  pid=42, attrs={"k": "v"}, status="error")
    back = TraceSpan.from_dict(json.loads(json.dumps(s.to_dict())))
    assert back.to_dict() == s.to_dict()
    assert back.duration == pytest.approx(1.0)


def test_chrome_trace_export(tmp_path):
    from repro.obs.exporters import write_trace_chrome_trace

    rec = TelemetryRecorder()
    with rec.span("job", "service"):
        with rec.span("point", "point"):
            pass
    path = tmp_path / "trace.json"
    write_trace_chrome_trace(rec.drain(), path)
    doc = json.loads(path.read_text())
    names = {e["name"] for e in doc["traceEvents"]}
    assert {"job", "point"} <= names


# -- ambient lookup -----------------------------------------------------------


def test_ambient_default_is_disabled():
    assert get_telemetry().enabled is False


def test_using_telemetry_scopes_per_thread():
    rec = TelemetryRecorder()
    with using_telemetry(rec):
        assert get_telemetry() is rec
        seen = {}

        def other():
            seen["rec"] = get_telemetry()

        t = threading.Thread(target=other)
        t.start()
        t.join()
        # Thread-local scoping: the other thread sees the default.
        assert seen["rec"].enabled is False
    assert get_telemetry().enabled is False


def test_set_telemetry_global_fallback():
    rec = TelemetryRecorder()
    old = set_telemetry(rec)
    try:
        assert get_telemetry() is rec
        local = TelemetryRecorder()
        with using_telemetry(local):
            assert get_telemetry() is local  # thread-local wins
        assert get_telemetry() is rec
    finally:
        set_telemetry(old)
