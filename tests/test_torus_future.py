"""3-D torus topology and the future-work machine projections."""

import pytest

from repro.core.errors import ConfigError
from repro.hpcc import RingConfig, run_ring, run_stream
from repro.imb import run_benchmark
from repro.machine.future import FUTURE_BY_NAME, FUTURE_MACHINES
from repro.network import Torus3D, balanced_dims


# -- torus topology ----------------------------------------------------------

def test_balanced_dims_cover_count():
    for n in (1, 7, 8, 27, 60, 64, 100, 512):
        dims = balanced_dims(n)
        assert dims[0] * dims[1] * dims[2] >= n


def test_torus_hops_wraparound():
    t = Torus3D(64, dims=(4, 4, 4))
    # node 0 = (0,0,0); node 3 = (3,0,0): ring distance 1 (wrap)
    assert t.hops(0, 3) == 1
    assert t.hops(0, 1) == 1
    assert t.hops(0, 2) == 2
    # (0,0,0) -> (2,2,2): 2+2+2
    node = 2 + 2 * 4 + 2 * 16
    assert t.hops(0, node) == 6


def test_torus_self_and_levels():
    t = Torus3D(27, dims=(3, 3, 3))
    assert t.hops(5, 5) == 0
    assert t.path_level(0, 13) == 1
    with pytest.raises(ConfigError):
        t.level_capacity_links(2)


def test_torus_diameter():
    t = Torus3D(64, dims=(4, 4, 4))
    assert t.diameter() == 6  # 2+2+2


def test_torus_analytic_hops_match_bruteforce():
    for n, dims in ((27, (3, 3, 3)), (24, (2, 3, 4)), (64, None)):
        t = Torus3D(n, dims=dims)
        assert t.average_hops_analytic() == pytest.approx(t.average_hops())


def test_torus_partial_fill_falls_back():
    t = Torus3D(30, dims=(4, 4, 2))
    assert t.average_hops_analytic() == pytest.approx(t.average_hops())


def test_torus_bad_dims():
    with pytest.raises(ConfigError):
        Torus3D(100, dims=(2, 2, 2))
    with pytest.raises(ConfigError):
        Torus3D(8, dims=(2, 2, 0))


def test_torus_bisection_scales_with_cross_section():
    small = Torus3D(64, dims=(4, 4, 4))
    long = Torus3D(64, dims=(2, 2, 16))
    # the long thin torus has a smaller cross-section to cut
    assert long.bisection_links() < small.bisection_links()


# -- future machines ----------------------------------------------------------

def test_five_future_systems_present():
    assert set(FUTURE_BY_NAME) == {
        "bluegene_p", "cray_xt4", "cray_x1e", "power5", "gige",
    }


@pytest.mark.parametrize("m", FUTURE_MACHINES, ids=lambda m: m.name)
def test_future_machines_run_imb(m):
    p = min(16, m.max_cpus)
    res = run_benchmark(m, "Allreduce", p, 65536)
    assert res.time_us > 0


@pytest.mark.parametrize("m", FUTURE_MACHINES, ids=lambda m: m.name)
def test_future_machines_marked_as_projections(m):
    assert "projection" in m.label or "projection" in m.notes


def test_x1e_extends_the_x1():
    from repro.machine import get_machine

    x1 = get_machine("x1_msp")
    x1e = FUTURE_BY_NAME["cray_x1e"]
    assert x1e.processor.peak_gflops > x1.processor.peak_gflops
    assert x1e.processor.is_vector


def test_gige_cluster_is_the_slow_network_baseline():
    """The GigE projection trails every 2005 testbed network."""
    from repro.machine import get_machine

    gige = run_ring(FUTURE_BY_NAME["gige"], 16, RingConfig(n_rings=3))
    myrinet = run_ring(get_machine("opteron"), 16, RingConfig(n_rings=3))
    assert gige.bandwidth_gbs < myrinet.bandwidth_gbs
    assert gige.latency_us > myrinet.latency_us


def test_bgp_alltoall_on_torus_runs():
    res = run_benchmark(FUTURE_BY_NAME["bluegene_p"], "Alltoall", 32, 65536)
    assert res.time_us > 0


def test_xt4_outpaces_opteron_cluster():
    """The sequel question: does SeaStar fix the Myrinet cluster's
    communication balance?  (It should — that is why Cray built it.)"""
    from repro.machine import get_machine

    xt4 = run_ring(FUTURE_BY_NAME["cray_xt4"], 64, RingConfig(n_rings=3))
    opteron = run_ring(get_machine("opteron"), 64, RingConfig(n_rings=3))
    assert xt4.bandwidth_gbs > 2 * opteron.bandwidth_gbs


def test_power5_fat_nodes_help_stream():
    res = run_stream(FUTURE_BY_NAME["power5"], 16)
    assert res.copy_gbs == pytest.approx(5.0 * 0.9, rel=0.02)
