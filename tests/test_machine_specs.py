"""Unit tests for machine specifications and the paper catalog."""

import math

import pytest

from repro.core.errors import ConfigError
from repro.machine import (
    ALL_MACHINES,
    PAPER_FIVE,
    MACHINES,
    NodeSpec,
    ProcessorSpec,
    get_machine,
)
from tests.conftest import make_test_machine


# -- spec validation -----------------------------------------------------------

def test_processor_validation():
    kw = dict(name="p", clock_ghz=1.0, peak_gflops=1.0, is_vector=False,
              dgemm_eff=0.9, hpl_eff=0.8, fft_eff=0.1,
              stream_copy_gbs=1.0, stream_triad_gbs=1.0,
              random_update_gups=0.01)
    ProcessorSpec(**kw)
    with pytest.raises(ConfigError):
        ProcessorSpec(**{**kw, "peak_gflops": 0.0})
    with pytest.raises(ConfigError):
        ProcessorSpec(**{**kw, "dgemm_eff": 1.5})
    with pytest.raises(ConfigError):
        ProcessorSpec(**{**kw, "stream_copy_gbs": -1})
    with pytest.raises(ConfigError):
        ProcessorSpec(**{**kw, "is_vector": True})  # needs scalar_gflops


def test_node_validation():
    kw = dict(cpus=2, memory_gb=4.0, shm_flow_gbs=1.0, shm_node_gbs=2.0,
              shm_latency_us=0.5, memcpy_gbs=2.0)
    NodeSpec(**kw)
    with pytest.raises(ConfigError):
        NodeSpec(**{**kw, "cpus": 0})
    with pytest.raises(ConfigError):
        NodeSpec(**{**kw, "shm_flow_gbs": 3.0})  # flow > aggregate
    with pytest.raises(ConfigError):
        NodeSpec(**{**kw, "stream_node_scale": 0.0})


def test_machine_max_cpus_within_network():
    with pytest.raises(ConfigError):
        make_test_machine(max_cpus=10 ** 12, topology_kind="multistage")


# -- placement -------------------------------------------------------------------

def test_block_placement():
    m = make_test_machine(cpus_per_node=4)
    assert m.placement(10) == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]
    assert m.n_nodes(10) == 3
    assert m.n_nodes(8) == 2


def test_placement_bounds():
    m = make_test_machine(max_cpus=8)
    with pytest.raises(ConfigError):
        m.n_nodes(9)
    with pytest.raises(ConfigError):
        m.n_nodes(0)


def test_cpu_counts_powers_of_two_plus_max():
    m = make_test_machine(max_cpus=48)
    assert m.cpu_counts(start=4) == [4, 8, 16, 32, 48]
    assert m.cpu_counts(start=4, maximum=16) == [4, 8, 16]


def test_peak_gflops():
    m = make_test_machine()
    assert m.peak_gflops(10) == pytest.approx(40.0)
    assert m.peak_node_gflops == pytest.approx(8.0)


# -- the paper catalog -----------------------------------------------------------

def test_catalog_has_all_seven_configurations():
    assert len(ALL_MACHINES) == 7
    assert len(PAPER_FIVE) == 5
    assert set(MACHINES) == {
        "altix_nl4", "altix_nl3", "x1_msp", "x1_ssp",
        "opteron", "xeon", "sx8",
    }


def test_get_machine_unknown():
    with pytest.raises(ConfigError, match="unknown machine"):
        get_machine("cray_t3e")


@pytest.mark.parametrize("name", sorted(MACHINES))
def test_every_machine_builds_a_fabric(name):
    m = get_machine(name)
    fab = m.build_fabric(min(8, m.max_cpus))
    assert fab.n_nodes >= 1


def test_paper_table2_peaks():
    """Table 2's peak-per-node column."""
    assert get_machine("altix_nl4").peak_node_gflops == pytest.approx(12.8)
    assert get_machine("x1_msp").peak_node_gflops == pytest.approx(51.2)
    assert get_machine("opteron").peak_node_gflops == pytest.approx(8.0)
    assert get_machine("xeon").peak_node_gflops == pytest.approx(14.4)
    assert get_machine("sx8").peak_node_gflops == pytest.approx(128.0)


def test_paper_clock_rates():
    clocks = {m.name: m.processor.clock_ghz for m in PAPER_FIVE}
    assert clocks == {"altix_nl4": 1.6, "x1_msp": 0.8, "opteron": 2.0,
                      "xeon": 3.6, "sx8": 2.0}


def test_paper_cpus_per_node():
    assert get_machine("sx8").node.cpus == 8
    assert get_machine("x1_msp").node.cpus == 4
    assert get_machine("x1_ssp").node.cpus == 16
    assert get_machine("altix_nl4").node.cpus == 2


def test_paper_system_sizes():
    assert get_machine("sx8").max_cpus == 576
    assert get_machine("altix_nl4").max_cpus == 2024
    assert get_machine("altix_nl3").max_cpus == 440
    assert get_machine("opteron").max_cpus == 126


def test_paper_network_names():
    nets = {m.name: m.network.name for m in PAPER_FIVE}
    assert nets["sx8"] == "IXS"
    assert nets["altix_nl4"] == "NUMALINK4"
    assert "Myrinet" in nets["opteron"]
    assert nets["xeon"] == "InfiniBand"


def test_single_stream_anchors():
    """MPI peak bandwidth anchors from paper section 2.4."""
    xeon = get_machine("xeon").fabric_params().effective_point_bw
    opteron = get_machine("opteron").fabric_params().effective_point_bw
    assert xeon == pytest.approx(841e6, rel=0.02)     # 841 MB/s InfiniBand
    assert opteron == pytest.approx(771e6, rel=0.02)  # 771 MB/s Myrinet


def test_vector_machines_flagged():
    assert get_machine("sx8").processor.is_vector
    assert get_machine("x1_msp").processor.is_vector
    assert not get_machine("xeon").processor.is_vector


def test_altix_table1_metadata():
    t1 = get_machine("altix_nl4").extra["table1"]
    assert t1["CPUs"] == 512
    assert t1["C-Bricks"] == 64
    assert t1["L3-cache (MB)"] == 9


def test_sx8_hpl_anchor():
    """576 CPUs x 16 GF x 94.5% ~ the paper's 8.729 TF/s G-HPL."""
    m = get_machine("sx8")
    peak_tf = m.peak_gflops(576) / 1e3
    assert peak_tf * m.processor.hpl_eff == pytest.approx(8.729, rel=0.01)


def test_fabric_params_unit_conversion():
    m = make_test_machine(link_gbs=2.0, base_latency_us=3.0)
    p = m.fabric_params()
    assert p.link_bw == pytest.approx(2e9)
    assert p.base_latency == pytest.approx(3e-6)
    assert not math.isnan(p.shm_bw)
