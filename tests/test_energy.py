"""Energy accounting: power models, recorder determinism, surfaces.

The load-bearing contract is the same one the exec backends sign:
energy totals must be byte-identical across serial, parallel, every
exec backend, and cache-warm sweeps — and with ``--energy`` off the
hot paths must not even look at the recorder.
"""

from __future__ import annotations

import json

import pytest

from repro.exec import ResultCache, SimPoint, SweepExecutor, using_executor
from repro.harness.figures import imb_figure
from repro.machine import ALL_MACHINES, get_machine
from repro.machine.future import FUTURE_MACHINES
from repro.obs.energy import (
    EnergyRecorder,
    PowerModel,
    get_energy,
    integrate_energy,
    merge_energy_snapshots,
    set_energy,
    using_energy,
)

CAP = 8  # tiny sweeps keep this fast

PM = PowerModel(cpu_busy_w=100.0, cpu_idle_w=40.0, nic_active_w=8.0,
                nic_idle_w=3.0, link_active_w=5.0, mem_w=20.0,
                provenance="synthetic test numbers")


def _points(nprocs=(2, 4, 8)):
    return [SimPoint.make("imb", "xeon", p, benchmark="Sendrecv",
                          msg_bytes=1024) for p in nprocs]


def _energy_blob(rec: EnergyRecorder) -> str:
    return json.dumps({"phases": rec.snapshot()["phases"],
                       "totals": rec.totals()}, sort_keys=True)


# ---------------------------------------------------------------------------
# PowerModel
# ---------------------------------------------------------------------------

def test_power_model_validation():
    with pytest.raises(ValueError):
        PowerModel(cpu_busy_w=-1, cpu_idle_w=0, nic_active_w=1,
                   nic_idle_w=0, link_active_w=0, mem_w=0)
    with pytest.raises(ValueError):  # busy below idle is nonsense
        PowerModel(cpu_busy_w=10, cpu_idle_w=20, nic_active_w=1,
                   nic_idle_w=0, link_active_w=0, mem_w=0)
    with pytest.raises(ValueError):
        PowerModel(cpu_busy_w=10, cpu_idle_w=1, nic_active_w=1,
                   nic_idle_w=2, link_active_w=0, mem_w=0)


def test_power_model_round_trip_and_node_views():
    assert PowerModel.from_dict(PM.to_dict()) == PM
    assert PM.node_busy_w(4) == 100.0 * 4 + 20.0 + 3.0
    assert PM.node_idle_w(4) == 40.0 * 4 + 20.0 + 3.0


def test_every_registered_machine_has_a_power_model():
    for m in tuple(ALL_MACHINES) + tuple(FUTURE_MACHINES):
        assert m.power is not None, m.name
        assert m.power.provenance, f"{m.name} power model lacks provenance"


# ---------------------------------------------------------------------------
# Integration arithmetic
# ---------------------------------------------------------------------------

def test_integrate_energy_closed_form():
    busy = {"egress": {"busy_s": 1.0, "bytes": 10.0},
            "ingress": {"busy_s": 2.0, "bytes": 10.0},
            "core": {"busy_s": 3.0, "bytes": 10.0},
            "shm": {"busy_s": 0.5, "bytes": 4.0}}
    run = integrate_energy(PM, nprocs=4, n_nodes=2, elapsed_s=10.0,
                           cpu_busy_s=6.0, busy=busy)
    assert run["cpu_j"] == pytest.approx(40.0 * 4 * 10.0 + 60.0 * 6.0)
    assert run["mem_j"] == pytest.approx(20.0 * 2 * 10.0)
    assert run["nic_j"] == pytest.approx(3.0 * 2 * 10.0 + 5.0 * 3.0)
    assert run["link_j"] == pytest.approx(5.0 * 3.0)
    assert run["total_j"] == pytest.approx(
        run["cpu_j"] + run["mem_j"] + run["nic_j"] + run["link_j"])
    assert run["nic_busy_s"] == 3.0 and run["shm_busy_s"] == 0.5


def test_recorder_disabled_records_nothing():
    rec = EnergyRecorder(enabled=False)
    rec.record_run(PM, machine="m", nprocs=2, n_nodes=1, elapsed_s=1.0,
                   cpu_busy_s=0.5, busy={})
    assert rec.snapshot() == {"phases": {}}
    assert rec.totals()["runs"] == 0


def test_recorder_per_run_fan_in_equals_direct():
    """One child recorder per run, merged in input order, is bit-exact
    against direct accumulation — the executor's actual fan-in shape
    (one PointRecord snapshot per point, folded in input order)."""
    runs = [dict(machine="m", nprocs=p, n_nodes=1, elapsed_s=0.1 * p,
                 cpu_busy_s=0.01 * p,
                 busy={"egress": {"busy_s": 0.001 * p, "bytes": 1.0 * p}})
            for p in (2, 4, 8, 16)]
    direct = EnergyRecorder()
    for r in runs:
        direct.record_run(PM, **r)
    snaps = []
    for r in runs:
        child = EnergyRecorder()
        child.record_run(PM, **r)
        snaps.append(child.snapshot())
    merged = EnergyRecorder()
    merged.merge(merge_energy_snapshots(snaps))
    assert _energy_blob(merged) == _energy_blob(direct)


def test_totals_add_average_power_and_edp():
    rec = EnergyRecorder()
    rec.record_run(PM, machine="m", nprocs=1, n_nodes=1, elapsed_s=2.0,
                   cpu_busy_s=1.0, busy={})
    tot = rec.totals()
    assert tot["avg_power_w"] == pytest.approx(tot["total_j"] / 2.0)
    assert tot["edp_js"] == pytest.approx(tot["total_j"] * 2.0)


# ---------------------------------------------------------------------------
# Ambient recorder: thread-local over process-global
# ---------------------------------------------------------------------------

def test_ambient_default_is_shared_disabled_recorder():
    assert get_energy() is get_energy()
    assert not get_energy().enabled


def test_thread_local_scope_shadows_global():
    g, t = EnergyRecorder(), EnergyRecorder()
    previous = set_energy(g)
    try:
        assert get_energy() is g
        with using_energy(t):
            assert get_energy() is t
        assert get_energy() is g
    finally:
        set_energy(previous)


def test_concurrent_threads_see_their_own_recorder():
    import threading

    seen = {}

    def worker(name, rec, gate):
        with using_energy(rec):
            gate.wait(5.0)
            seen[name] = get_energy()

    gate = threading.Barrier(2)
    ra, rb = EnergyRecorder(), EnergyRecorder()
    ts = [threading.Thread(target=worker, args=("a", ra, gate)),
          threading.Thread(target=worker, args=("b", rb, gate))]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    assert seen == {"a": ra, "b": rb}


# ---------------------------------------------------------------------------
# The contract: byte-identical energy across execution modes
# ---------------------------------------------------------------------------

def _sweep_energy(*, jobs, backend, cache=None):
    rec = EnergyRecorder()
    with using_energy(rec), \
            SweepExecutor(jobs=jobs, cache=cache, backend=backend) as ex, \
            using_executor(ex):
        imb_figure("fig13", max_cpus=CAP)
    return _energy_blob(rec)


@pytest.fixture(scope="module")
def serial_energy():
    return _sweep_energy(jobs=1, backend="inline")


@pytest.mark.parametrize("backend", ("inline", "pool", "subprocess"))
def test_energy_byte_identical_across_exec_backends(backend, serial_energy):
    assert _sweep_energy(jobs=2, backend=backend) == serial_energy


def test_energy_byte_identical_cache_warm(tmp_path, serial_energy):
    cold = _sweep_energy(jobs=1, backend="inline",
                         cache=ResultCache(tmp_path / "cache"))
    warm = _sweep_energy(jobs=1, backend="inline",
                         cache=ResultCache(tmp_path / "cache"))
    assert cold == serial_energy
    assert warm == serial_energy


def test_cached_energyless_record_upgrades_to_miss(tmp_path):
    """Records cached before ``--energy`` existed (or with it off) must
    not silently zero the joules of an energy-accounted sweep."""
    pts = _points((2, 4))
    with SweepExecutor(jobs=1, cache=ResultCache(tmp_path / "c")) as ex, \
            using_executor(ex):
        ex.run_points(pts)  # energy off: cached records carry no snapshot

    rec = EnergyRecorder()
    with using_energy(rec), \
            SweepExecutor(jobs=1, cache=ResultCache(tmp_path / "c")) as ex, \
            using_executor(ex):
        ex.run_points(pts)
        assert ex.cache_misses == 2  # energyless hits degrade to misses
    assert rec.totals()["runs"] == 2


def test_transport_skips_cpu_accounting_when_off():
    """Zero-overhead discipline: with energy off the transport's
    pre-fetched flag is False and its CPU clock accumulator never moves,
    so the hot path costs one bool test — same twin-path contract as
    metrics/timeline."""
    from repro.mpi.cluster import Cluster

    m = get_machine("xeon")

    def pingpong(comm):
        import numpy as np
        payload = np.zeros(128)
        if comm.rank == 0:
            yield from comm.send(1, payload)
        elif comm.rank == 1:
            yield from comm.recv(0)

    cl = Cluster(m, 2)
    cl.run(pingpong)
    assert cl.transport._energy_on is False
    assert cl.transport.cpu_busy_s == 0.0

    with using_energy(EnergyRecorder()):
        cl_on = Cluster(m, 2)
        cl_on.run(pingpong)
        assert cl_on.transport._energy_on is True
        assert cl_on.transport.cpu_busy_s > 0.0


def test_energy_off_leaves_no_trace():
    """With energy off the sweep records nothing anywhere (twin-path)."""
    assert not get_energy().enabled
    with SweepExecutor(jobs=1, cache=None) as ex, using_executor(ex):
        recs = ex.run_points(_points((2,)))
    assert get_energy().snapshot() == {"phases": {}}
    assert getattr(recs[0], "energy", None) is None


# ---------------------------------------------------------------------------
# Physical sanity on a real machine model
# ---------------------------------------------------------------------------

def test_sweep_energy_is_physically_plausible():
    m = get_machine("xeon")
    rec = EnergyRecorder()
    with using_energy(rec), \
            SweepExecutor(jobs=1, cache=None) as ex, using_executor(ex):
        imb_figure("fig13", max_cpus=CAP)
    tot = rec.totals()
    assert tot["runs"] > 0 and tot["total_j"] > 0
    # Average power must land between one idle rank and every swept
    # machine's full-tilt draw; anything outside is an accounting bug.
    floor = min(mm.power.cpu_idle_w for mm in ALL_MACHINES)
    assert tot["avg_power_w"] > floor
    assert tot["cpu_j"] + tot["mem_j"] + tot["nic_j"] + tot["link_j"] == \
        pytest.approx(tot["total_j"])
    assert m.power is not None  # the machine the sweep priced


# ---------------------------------------------------------------------------
# Analytic ranking (table4 / fig16 feedstock)
# ---------------------------------------------------------------------------

def test_energy_ranking_covers_all_machines_and_is_sorted():
    from repro.analysis.energy import RANKED_MACHINES, energy_ranking

    ranking = energy_ranking()
    assert len(ranking) == len(RANKED_MACHINES)
    effs = [e.mflops_per_w for e in ranking]
    assert effs == sorted(effs, reverse=True)
    assert ranking[0].machine == "bluegene_p"  # the efficiency landmark
    for e in ranking:
        assert e.energy_j == pytest.approx(e.power_w * e.elapsed_s)
        assert e.edp_js == pytest.approx(e.energy_j * e.elapsed_s)


@pytest.mark.requires_full
def test_fig16_matches_committed_golden():
    """fig16 is analytic, so the full-scale golden is cheap to enforce
    here even though the capped CI golden gate must skip it."""
    from repro.harness.figures import ALL_FIGURES
    from repro.harness.report import figure_to_csv

    regenerated = figure_to_csv(ALL_FIGURES["fig16"](max_cpus=None))
    committed = open("results/fig16.csv", newline="").read()
    assert regenerated == committed


@pytest.mark.requires_full
def test_table4_matches_committed_golden():
    from repro.harness.report import table_to_csv
    from repro.harness.tables import table4

    assert table_to_csv(table4()) == open("results/table4.csv",
                                          newline="").read()
