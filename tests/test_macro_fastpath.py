"""The macro fast-path: gating, pricing, cache isolation, scale studies.

The analytic fast-path (:mod:`repro.imb.fastpath`) may replace a
message-level IMB collective simulation only when BOTH gates pass: the
process-default scheduler backend is ``macro`` AND the rank count is
strictly above ``REPRO_MACRO_THRESHOLD`` (default: one past the paper's
largest 2024-CPU configuration).  Inside the paper range every backend
must therefore produce byte-identical results; above the threshold the
fast-path must return exactly what the pricers compute, in microseconds
of host time rather than minutes, and its results must never share
cache entries with exact-mode results.
"""

from __future__ import annotations

import math

import pytest

from repro import get_machine
from repro.core import sched
from repro.exec import ResultCache, SimPoint
from repro.imb import fastpath
from repro.imb.framework import BENCHMARKS, get_benchmark

COLLECTIVES = ["Barrier", "Bcast", "Reduce", "Allreduce", "Reduce_scatter",
               "Allgather", "Allgatherv", "Alltoall"]


@pytest.fixture(autouse=True)
def _clean_default():
    previous = sched.set_default_backend(None)
    yield
    sched.set_default_backend(previous)


# -- gating --------------------------------------------------------------------

def test_fastpath_needs_both_gates(monkeypatch):
    monkeypatch.delenv(sched.THRESHOLD_ENV, raising=False)
    thr = sched.DEFAULT_MACRO_THRESHOLD
    sched.set_default_backend("macro")
    assert not fastpath.fastpath_active(thr)        # strictly above only
    assert fastpath.fastpath_active(thr + 1)
    for exact in ("heapq", "calendar"):
        sched.set_default_backend(exact)
        assert not fastpath.fastpath_active(1 << 20)


def test_default_threshold_covers_paper_range():
    """Every configuration the paper measured must simulate exactly."""
    from repro.machine import MACHINES

    largest = max(m.max_cpus for m in MACHINES.values())
    assert largest <= sched.DEFAULT_MACRO_THRESHOLD


def test_paper_range_results_identical_across_backends():
    m = get_machine("xeon")

    def measure(backend):
        sched.set_default_backend(backend)
        r = get_benchmark("Allreduce").run(m, 16)
        return r.time_us, r.bandwidth_mbs

    ref = measure("heapq")
    assert measure("calendar") == ref
    assert measure("macro") == ref   # below threshold: macro is exact too


# -- pricing -------------------------------------------------------------------

def test_every_collective_has_a_pricer():
    for name in COLLECTIVES:
        assert name in fastpath.PRICERS


def test_transfer_benchmarks_have_no_pricer():
    m = get_machine("xeon")
    for name in BENCHMARKS:
        if name not in fastpath.PRICERS:
            assert fastpath.price(name, m, 4096, 1024) is None


@pytest.mark.parametrize("name", COLLECTIVES)
@pytest.mark.parametrize("p", [4096, 65536, 65537])
def test_prices_are_finite_positive_and_scale(name, p):
    m = get_machine("xeon").scaled(1 << 17)
    t = fastpath.price(name, m, p, 1024 * 1024)
    assert t is not None and math.isfinite(t) and t > 0
    if name != "Barrier":
        bigger = fastpath.price(name, m, p, 2 * 1024 * 1024)
        assert bigger > t


def test_run_above_threshold_returns_priced_time(monkeypatch):
    """Above the threshold, IMBBenchmark.run must short-circuit to the
    pricer — same value, no cluster construction at 8192 ranks."""
    monkeypatch.setenv(sched.THRESHOLD_ENV, "1024")
    sched.set_default_backend("macro")
    m = get_machine("xeon").scaled(8192)
    for name in COLLECTIVES:
        r = get_benchmark(name).run(m, 8192)
        want = fastpath.price(name, m, 8192, 1024 * 1024)
        assert r.time_us == pytest.approx(want * 1e6)
        assert r.check() == []


def test_lowered_threshold_prices_close_to_simulation(monkeypatch):
    """With the threshold lowered into simulable range, the fast-path
    must stay within the same tolerance band the macro agreement suite
    licenses for the closed forms."""
    m = get_machine("xeon")
    sched.set_default_backend("calendar")
    exact = get_benchmark("Allreduce").run(m, 32).time_us
    monkeypatch.setenv(sched.THRESHOLD_ENV, "16")
    sched.set_default_backend("macro")
    fast = get_benchmark("Allreduce").run(m, 32).time_us
    assert fast == pytest.approx(exact, rel=0.6)


# -- cache isolation -----------------------------------------------------------

def test_fastpath_results_never_alias_exact_cache_entries(monkeypatch):
    monkeypatch.delenv(sched.THRESHOLD_ENV, raising=False)
    cache = ResultCache("unused-dir", fingerprint="fixed")
    pt = SimPoint.make("imb", "xeon", 4096, benchmark="Allreduce")
    sched.set_default_backend("heapq")
    p_heapq = cache._path(pt)
    sched.set_default_backend("calendar")
    p_cal = cache._path(pt)
    sched.set_default_backend("macro")
    p_macro = cache._path(pt)
    # exact backends share entries (that's what makes cache-warm
    # cross-backend runs byte-identical); fast-path mode never does
    assert p_heapq == p_cal
    assert p_macro != p_heapq
    # and the threshold is part of the salt
    monkeypatch.setenv(sched.THRESHOLD_ENV, "512")
    assert cache._path(pt) != p_macro


# -- scale-study machine scaling ----------------------------------------------

def test_scaled_machine_widens_topology():
    m = get_machine("xeon")                  # fat tree, 1296-node capacity
    big = m.scaled(1 << 20)
    assert big.max_cpus == 1 << 20
    assert big.n_nodes(1 << 20) == (1 << 20) // m.node.cpus
    assert big.node == m.node                # per-node physics untouched
    assert big.network.link_gbs == m.network.link_gbs
    sx8 = get_machine("sx8").scaled(4096)    # multistage: ports double
    assert sx8.network.ports >= sx8.n_nodes(4096)


def test_scaled_within_capacity_keeps_network():
    m = get_machine("xeon")                  # 2592-CPU network capacity
    big = m.scaled(2048)
    assert big.network == m.network
    assert big.max_cpus == 2048
