"""The declarative scenario registry: discovery, parity, TOML, CLIs.

The headline battery regenerates every registered paper item twice at a
capped scale — once through the legacy ``run_figure``/``run_table``
adapters and once through ``run_scenario`` — and asserts the rendered
CSV output is byte-identical.  The adapters are thin wrappers over the
same scenario objects, so this pins the glue (shared sweep memos,
point ordering, assembly) rather than re-deriving the physics.
"""

import json

import pytest

from repro.api import run_figure, run_item, run_scenario, run_table
from repro.exec.cache import ResultCache
from repro.exec.executor import SweepExecutor, using_executor
from repro.harness.report import figure_to_csv, table_to_csv
from repro.harness.runner import main as runner_main
from repro.scenarios import (
    Reference,
    ScenarioError,
    check_scenario,
    get_scenario,
    has_scenario,
    reload_scenarios,
    scenario_ids,
)
from repro.scenarios.__main__ import main as scenarios_main
from repro.scenarios.builtin import (
    PAPER_FIGURE_IDS,
    PAPER_TABLE_IDS,
    clear_scenario_caches,
)
from repro.scenarios.registry import SCENARIO_PATH_ENV

CAP = 64  # the battery's capped scale, per the acceptance criteria

#: Ids of the committed scenarios/*.toml examples.
REPO_TOML_IDS = ("app_amr", "app_cg", "app_spectral",
                 "fat_xeon_alltoall", "fault_slow_node")


@pytest.fixture(scope="module")
def shared_executor(tmp_path_factory):
    """One cached executor for the whole module: the second pass over any
    item (legacy vs scenario) is a cache/memo hit, not a recompute."""
    cache = ResultCache(tmp_path_factory.mktemp("scenario_cache"))
    executor = SweepExecutor(jobs=4, cache=cache)
    clear_scenario_caches()
    with using_executor(executor):
        yield executor
    executor.close()
    clear_scenario_caches()


@pytest.fixture
def scenario_dir(tmp_path, monkeypatch):
    """A temp dir on REPRO_SCENARIO_PATH; registry restored afterwards."""
    monkeypatch.setenv(SCENARIO_PATH_ENV, str(tmp_path))
    reload_scenarios()
    yield tmp_path
    monkeypatch.delenv(SCENARIO_PATH_ENV)
    reload_scenarios()


# -- discovery ---------------------------------------------------------------

def test_registry_lists_exactly_the_expected_ids():
    expected = PAPER_FIGURE_IDS + PAPER_TABLE_IDS + REPO_TOML_IDS
    assert scenario_ids() == expected


def test_builtin_scenarios_carry_the_paper_tag():
    for sid in PAPER_FIGURE_IDS + PAPER_TABLE_IDS:
        assert "paper" in get_scenario(sid).tags


def test_get_scenario_unknown_id_names_the_registry():
    with pytest.raises(ScenarioError, match="unknown scenario 'fig99'"):
        get_scenario("fig99")


def test_describe_is_json_able():
    doc = get_scenario("fig02").describe()
    json.dumps(doc)
    assert doc["id"] == "fig02"
    assert doc["machines"]
    assert "sx8" in doc["references"]


# -- the byte-identity battery ----------------------------------------------

@pytest.mark.parametrize("fig_id", PAPER_FIGURE_IDS)
def test_figure_scenario_matches_legacy_path(shared_executor, fig_id):
    via_scenario = figure_to_csv(run_scenario(fig_id, max_cpus=CAP))
    via_legacy = figure_to_csv(run_figure(fig_id, max_cpus=CAP))
    assert via_scenario == via_legacy


@pytest.mark.parametrize("table_id", PAPER_TABLE_IDS)
def test_table_scenario_matches_legacy_path(shared_executor, table_id):
    via_scenario = table_to_csv(run_scenario(table_id, max_cpus=CAP))
    via_legacy = table_to_csv(run_table(table_id, max_cpus=CAP))
    assert via_scenario == via_legacy


@pytest.mark.parametrize("sid", REPO_TOML_IDS)
def test_committed_toml_scenarios_execute(shared_executor, sid):
    fig = run_scenario(sid, max_cpus=16)
    assert fig.fig_id == sid
    for s in fig.series:
        assert len(s.x) == len(s.y) >= 1
        assert all(v >= 0 for v in s.y)


def test_run_item_routes_scenario_names(shared_executor):
    fig = run_item("app_cg", max_cpus=8)
    assert fig.fig_id == "app_cg"
    assert {s.machine for s in fig.series} == {"xeon", "altix_nl3"}


# -- reference checks --------------------------------------------------------

def test_check_scenario_no_references_is_uncovered(shared_executor):
    verdict = check_scenario("app_cg", max_cpus=8)
    assert verdict.status == "uncovered"
    assert verdict.ok


def test_check_scenario_requires_full_refs_uncovered_under_cap():
    # fig02's endpoint references only exist at full scale; capped runs
    # must report uncovered without computing anything.
    verdict = check_scenario("fig02", max_cpus=8)
    assert verdict.status == "uncovered"
    assert "full-scale" in verdict.detail


def test_check_scenario_table4_references_hold(shared_executor):
    # table4 is analytic (never capped), so its references check for real.
    verdict = check_scenario("table4", max_cpus=8)
    assert verdict.status == "ok"
    machines = {c["machine"] for c in verdict.checks}
    assert "bluegene_p" in machines
    for c in verdict.checks:
        assert c["status"] == "ok"
        assert "actual" in c


def test_check_scenario_failure_reports_the_bound(shared_executor):
    s = get_scenario("table4")
    bad = dict(s.references)
    bad["bluegene_p"] = {"mflops_per_w": Reference(1.0, 0.1, 0.1)}
    patched = type(s)(
        "table4_bad", build=s._build, tolerance=s.tolerance,
        references=bad,
    )
    verdict = check_scenario(patched)
    assert verdict.status == "fail"
    failing = [c for c in verdict.checks if c["status"] == "fail"]
    assert failing and "above the upper bound" in failing[0]["detail"]


# -- TOML discovery: the zero-edit extension point ---------------------------

SAMPLE_TOML = """\
[scenario]
id = "tiny_bcast"
title = "Bcast on a shrunken Xeon"

[machines.tiny_xeon]
base = "xeon"
max_cpus = 16
label = "Tiny Xeon"

[workload]
kind = "imb"
benchmark = "Bcast"
msg_bytes = 4096

[grid]
counts = [4, 16]
"""


def test_toml_scenario_discovered_and_runs(scenario_dir, shared_executor):
    (scenario_dir / "tiny_bcast.toml").write_text(SAMPLE_TOML)
    reload_scenarios()
    assert has_scenario("tiny_bcast")
    fig = run_scenario("tiny_bcast")
    (series,) = fig.series
    assert series.machine == "tiny_xeon"
    assert series.label == "Tiny Xeon"
    assert series.x == (4.0, 16.0)
    assert all(v > 0 for v in series.y)


def test_toml_scenario_points_salt_the_cache_key(scenario_dir):
    (scenario_dir / "tiny_bcast.toml").write_text(SAMPLE_TOML)
    reload_scenarios()
    from repro.exec.points import SimPoint

    points = get_scenario("tiny_bcast").plan()
    assert all(p.param("machine_base") == "xeon" for p in points)
    assert all(p.param("machine_cpus") == 16 for p in points)
    # A different projection of the same base must never share entries.
    other = SimPoint.make("imb", "tiny_xeon", 4, benchmark="Bcast",
                          msg_bytes=4096, machine_base="xeon",
                          machine_cpus=64)
    assert other.key() != points[0].key()


def test_duplicate_scenario_id_is_an_error(scenario_dir):
    clash = SAMPLE_TOML.replace('id = "tiny_bcast"', 'id = "fig01"')
    (scenario_dir / "clash.toml").write_text(clash)
    reload_scenarios()
    with pytest.raises(ScenarioError, match="duplicate scenario id 'fig01'"):
        scenario_ids()


def test_missing_scenario_path_dir_is_an_error(monkeypatch, tmp_path):
    monkeypatch.setenv(SCENARIO_PATH_ENV, str(tmp_path / "nope"))
    reload_scenarios()
    try:
        with pytest.raises(ScenarioError, match="does not exist"):
            scenario_ids()
    finally:
        monkeypatch.delenv(SCENARIO_PATH_ENV)
        reload_scenarios()


def test_unknown_catalog_machine_fails_at_load_time(scenario_dir):
    bad = SAMPLE_TOML.replace('base = "xeon"', 'base = "deep_thought"')
    (scenario_dir / "bad_machine.toml").write_text(bad)
    reload_scenarios()
    with pytest.raises(ScenarioError, match="bad_machine.toml"):
        scenario_ids()


# -- fault-injected and user-machine exec paths ------------------------------

def test_fault_scenario_is_slower_than_healthy(shared_executor):
    fig = run_scenario("fault_slow_node", max_cpus=16)
    from repro.imb.suite import run_benchmark
    from repro.machine import get_machine

    faulty = fig.by_machine("xeon")
    healthy = run_benchmark(get_machine("xeon"), "Allreduce", 16,
                            msg_bytes=65536)
    # Same benchmark/size/ranks: the straggler must cost extra time.
    assert faulty.y[faulty.x.index(16.0)] > healthy.time_us


def test_worker_rebuilds_user_defined_machines():
    from repro.exec.points import SimPoint
    from repro.exec.worker import point_machine

    point = SimPoint.make("imb", "my_fat_xeon", 64, benchmark="Bcast",
                          msg_bytes=1024, machine_base="xeon",
                          machine_cpus=4096, machine_label="Fat")
    m = point_machine(point)
    assert m.name == "my_fat_xeon"
    assert m.max_cpus == 4096
    assert m.label == "Fat"


def test_worker_fault_setup_absent_for_healthy_points():
    from repro.exec.points import SimPoint
    from repro.exec.worker import _fault_setup

    healthy = SimPoint.make("imb", "xeon", 8, benchmark="Bcast",
                            msg_bytes=1024)
    assert _fault_setup(healthy) is None
    faulty = SimPoint.make("imb", "xeon", 8, benchmark="Bcast",
                           msg_bytes=1024, fault="slow_node",
                           fault_node=0, fault_factor=4.0)
    setup = _fault_setup(faulty)
    assert callable(setup)


# -- scenario CLI ------------------------------------------------------------

def test_scenarios_cli_list(capsys):
    assert scenarios_main(["list"]) == 0
    out = capsys.readouterr().out
    for sid in ("fig01", "table4", "app_cg", "fault_slow_node"):
        assert sid in out


def test_scenarios_cli_list_tag_filter(capsys):
    assert scenarios_main(["list", "--tag", "app"]) == 0
    out = capsys.readouterr().out
    assert "app_cg" in out and "fig01" not in out


def test_scenarios_cli_unknown_id_exits_2(capsys):
    assert scenarios_main(["run", "fig99"]) == 2
    assert "unknown scenario 'fig99'" in capsys.readouterr().err


def test_scenarios_cli_run_writes_artifacts(tmp_path, capsys):
    rc = scenarios_main(["run", "app_cg", "--max-cpus", "8",
                         "--out", str(tmp_path), "--no-cache"])
    assert rc == 0
    assert (tmp_path / "app_cg.csv").exists()
    assert "app_cg" in capsys.readouterr().out


def test_scenarios_cli_manifest_roundtrip(tmp_path, capsys):
    path = tmp_path / "TOLERANCES.json"
    assert scenarios_main(["emit-manifest", "--path", str(path)]) == 0
    assert scenarios_main(["check-manifest", "--path", str(path)]) == 0
    doc = json.loads(path.read_text())
    doc["items"]["fig02"]["rtol"] = 0.5
    path.write_text(json.dumps(doc))
    capsys.readouterr()
    assert scenarios_main(["check-manifest", "--path", str(path)]) == 3
    assert "fig02" in capsys.readouterr().err


def test_committed_manifest_matches_registry():
    from repro.scenarios.manifest_sync import check_manifest_sync

    ok, msg = check_manifest_sync("results/TOLERANCES.json")
    assert ok, msg


# -- harness CLI: --scenario / --list-scenarios / exit-2 contract ------------

def test_harness_list_scenarios(capsys):
    assert runner_main(["--list-scenarios"]) == 0
    out = capsys.readouterr().out
    assert "fig01" in out and "app_cg" in out


def test_harness_runs_scenario_by_name(tmp_path, capsys):
    rc = runner_main(["--scenario", "app_cg", "--max-cpus", "8",
                      "--out", str(tmp_path), "--no-cache"])
    assert rc == 0
    assert (tmp_path / "app_cg.csv").exists()


def test_harness_bad_figure_id_exits_2(capsys):
    assert runner_main(["--figure", "99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_harness_bad_scenario_name_exits_2(capsys):
    assert runner_main(["--scenario", "not_a_scenario"]) == 2
    err = capsys.readouterr().err
    assert "unknown scenario 'not_a_scenario'" in err
    assert "registered:" in err


def test_harness_scenario_name_under_figure_flag_gets_a_hint(capsys):
    assert runner_main(["--figure", "app_cg"]) == 2
    err = capsys.readouterr().err
    assert "--scenario app_cg" in err


# -- service integration -----------------------------------------------------

def test_normalize_item_id_accepts_scenario_names():
    from repro.api import normalize_item_id

    assert normalize_item_id("app_cg") == "app_cg"
    assert normalize_item_id("6") == "fig06"
    assert normalize_item_id("table2") == "table2"
    with pytest.raises(ValueError, match="not a figure/table id or a "
                                         "registered scenario"):
        normalize_item_id("not_a_scenario")


def test_job_queue_runs_scenario_and_saves_artifacts(tmp_path):
    from repro.config import ReproConfig
    from repro.service.queue import JobQueue

    config = ReproConfig.from_env_and_args(
        jobs=1, cache_dir=str(tmp_path / "cache"))
    with JobQueue(config, workers=1,
                  artifacts_dir=tmp_path / "artifacts") as q:
        job_id = q.submit(["app_cg"], max_cpus=8)
        doc = q.result(job_id, timeout=120)
    assert doc["state"] == "done", doc["error"]
    assert any(p.endswith("app_cg.csv") for p in doc["artifacts"])
