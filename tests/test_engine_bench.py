"""Engine hot-path regression guard: counters plus a micro-benchmark.

The micro-benchmark runs once per scheduler backend; the sweep-level
guard renders one real figure under every backend and requires the
output text to be byte-identical — the determinism contract that lets
``--engine-backend`` be a pure performance knob inside the paper range.
"""

from __future__ import annotations

from time import perf_counter

import pytest

from repro.core import sched
from repro.core.engine import EVENT_STATS, Engine, events_processed_total

#: Fixed micro-benchmark workload: 8 processes x 10k sleep yields.
N_PROCS = 8
N_YIELDS = 10_000

#: Generous wall-clock budget (seconds).  The loop runs this workload in
#: well under a second on any modern host; the budget only catches order-
#: of-magnitude regressions (e.g. an accidental O(n log n) -> O(n^2)).
BUDGET_S = 10.0


def _sleeper(n):
    for _ in range(n):
        yield 1.0


def test_engine_counts_events():
    eng = Engine()
    before_total = events_processed_total()
    eng.spawn(_sleeper(5))
    eng.run()
    # one event per _step call: the start step plus one per yield
    assert eng.events_processed == 6
    assert events_processed_total() - before_total == 6
    assert EVENT_STATS["processed"] == events_processed_total()


def test_engine_counts_accumulate_across_runs():
    eng = Engine()
    eng.spawn(_sleeper(3))
    eng.run()
    eng.spawn(_sleeper(3))
    eng.run()
    assert eng.events_processed == 8


@pytest.mark.parametrize("backend", sorted(sched.BACKENDS))
def test_engine_event_loop_micro_benchmark(backend):
    eng = Engine(backend=backend)
    for i in range(N_PROCS):
        eng.spawn(_sleeper(N_YIELDS), name=f"p{i}")
    t0 = perf_counter()
    eng.run()
    elapsed = perf_counter() - t0
    expected = N_PROCS * (N_YIELDS + 1)
    assert eng.events_processed == expected
    assert elapsed < BUDGET_S, (
        f"[{backend}] engine processed {expected} events in {elapsed:.2f}s "
        f"({expected / elapsed:,.0f} ev/s); budget is {BUDGET_S}s"
    )


def test_sweep_output_byte_identical_across_backends():
    """Figure 12 at a small cap, rendered under each backend, must agree
    to the byte — including under ``macro``, whose fast-path only fires
    above the rank threshold and so never inside the paper range."""
    from repro.harness.figures import ALL_FIGURES
    from repro.harness.report import render_figure

    def render(backend):
        previous = sched.set_default_backend(backend)
        try:
            return render_figure(ALL_FIGURES["fig12"](max_cpus=8))
        finally:
            sched.set_default_backend(previous)

    ref = render("heapq")
    assert render("calendar") == ref
    assert render("macro") == ref


def test_engine_mixed_yields_still_supported():
    """The fast path must not change semantics for the slow yield types."""
    eng = Engine()

    def child():
        yield 0.5
        return "child-done"

    def parent():
        ev = eng.event("sig")
        eng.schedule(1.0, ev.trigger, "sig-value")
        got_sig = yield ev                      # Event wait
        got_child = yield eng.spawn(child())    # Process join
        yield None                              # cooperative reschedule
        yield True                              # bool: int subclass, 1s sleep
        return (got_sig, got_child, eng.now)

    proc = eng.spawn(parent())
    eng.run()
    sig, child_res, now = proc.result
    assert sig == "sig-value"
    assert child_res == "child-done"
    assert now == 2.5  # 1.0 (event) + 0.5 (child) + 1.0 (bool sleep)
