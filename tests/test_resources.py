"""Unit tests for bandwidth resources and joint reservation."""

import math

import pytest

from repro.core.errors import ConfigError
from repro.network.resources import BandwidthResource, reserve_joint


def test_service_time():
    r = BandwidthResource("r", 100.0)
    assert r.service_time(50.0) == pytest.approx(0.5)


def test_infinite_bandwidth_is_free():
    r = BandwidthResource("r", math.inf)
    start, end = r.reserve(1e9, 1.0)
    assert (start, end) == (1.0, 1.0)


def test_fifo_serialisation():
    r = BandwidthResource("r", 10.0)
    s1, e1 = r.reserve(10.0, 0.0)
    s2, e2 = r.reserve(10.0, 0.0)
    assert (s1, e1) == (0.0, 1.0)
    assert (s2, e2) == (1.0, 2.0)


def test_reserve_after_idle_gap():
    r = BandwidthResource("r", 10.0)
    r.reserve(10.0, 0.0)   # busy until 1.0
    s, e = r.reserve(10.0, 5.0)
    assert (s, e) == (5.0, 6.0)


def test_utilisation_accounting():
    r = BandwidthResource("r", 10.0)
    r.reserve(10.0, 0.0)
    r.reserve(20.0, 0.0)
    assert r.busy_time == pytest.approx(3.0)
    assert r.bytes_served == pytest.approx(30.0)


def test_reset_clears_state():
    r = BandwidthResource("r", 10.0)
    r.reserve(10.0, 0.0)
    r.reset()
    assert r.next_free == 0.0
    assert r.busy_time == 0.0
    assert r.bytes_served == 0.0


def test_nonpositive_bandwidth_rejected():
    with pytest.raises(ConfigError):
        BandwidthResource("bad", 0.0)
    with pytest.raises(ConfigError):
        BandwidthResource("bad", -1.0)


def test_reserve_joint_completion_is_slowest():
    fast = BandwidthResource("fast", 100.0)
    slow = BandwidthResource("slow", 10.0)
    start, end = reserve_joint([fast, slow], 10.0, 0.0)
    assert start == 0.0
    assert end == pytest.approx(1.0)


def test_reserve_joint_independent_queues():
    """A busy resource must not idle the others (no convoy)."""
    a = BandwidthResource("a", 10.0)
    b = BandwidthResource("b", 10.0)
    a.reserve(100.0, 0.0)  # a busy until 10
    start, end = reserve_joint([a, b], 10.0, 0.0)
    # b served 0..1 even though a only frees at 10
    assert b.next_free == pytest.approx(1.0)
    assert end == pytest.approx(11.0)
    # aggregate throughput on b unaffected by a's queue
    assert b.busy_time == pytest.approx(1.0)


def test_reserve_joint_aggregate_fair_share():
    """n messages through one resource take n * service total."""
    r = BandwidthResource("r", 10.0)
    ends = [reserve_joint([r], 10.0, 0.0)[1] for _ in range(5)]
    assert ends[-1] == pytest.approx(5.0)
