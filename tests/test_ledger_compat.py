"""Ledger backward compatibility: old rows must outlive schema bumps.

``tests/data/ledger_legacy_rows.jsonl`` is a committed sample of one
history file as it accumulates across repository eras — schema v1
(no engine backend), v2, a v3-stamped row, one malformed merge scar,
a v4 energy-accounted row, and a v5 traced row.  Readers are
version-lenient by contract: every well-formed row parses whatever its
vintage, trend and regression queries span the eras, and only rows
that actually carry energy/trace fields have them.
"""

from __future__ import annotations

import shutil

from repro.obs.ledger import LEDGER_SCHEMA_VERSION, MIN_HISTORY, RunLedger
from repro.validate.gate import check_ledger

SAMPLE = "tests/data/ledger_legacy_rows.jsonl"
KEY = "feedfacecafe"


def _ledger(tmp_path):
    path = tmp_path / "ledger.jsonl"
    shutil.copy(SAMPLE, path)
    return RunLedger(path)


def test_legacy_rows_all_parse_and_scar_is_skipped(tmp_path):
    ledger = _ledger(tmp_path)
    entries = ledger.entries()
    assert [e["schema_version"] for e in entries] == [1, 2, 2, 3, 4, 5]
    assert ledger.skipped == 1  # the merge scar, counted never fatal


def test_energy_fields_only_on_energy_rows(tmp_path):
    entries = _ledger(tmp_path).entries()
    with_energy = [e for e in entries if "energy_total_j" in e]
    assert [e["schema_version"] for e in with_energy] == [4]
    assert with_energy[0]["energy_avg_power_w"] > 0
    assert with_energy[0]["energy_edp_js"] > 0


def test_trace_fields_only_on_traced_rows(tmp_path):
    entries = _ledger(tmp_path).entries()
    traced = [e for e in entries if "trace_id" in e]
    assert [e["schema_version"] for e in traced] == [5]
    assert traced[0]["trace_spans"] > 0


def test_trend_spans_schema_versions(tmp_path):
    rows = _ledger(tmp_path).trend(KEY, "wall_s")
    assert len(rows) == 6  # v1 through v5 all contribute
    assert rows[0] == ("aaaa111", 10.5)
    assert rows[-1] == ("ffff666", 10.4)


def test_regression_gates_fresh_entry_against_legacy_history(tmp_path):
    ledger = _ledger(tmp_path)
    assert len(ledger.entries()) > MIN_HISTORY
    slow = {"run_key": KEY, "wall_s": 40.0, "events_per_s": 20000}
    verdict = ledger.check_regression(slow)
    assert verdict["checked"] and not verdict["ok"]
    assert {r["field"] for r in verdict["regressions"]} == \
        {"wall_s", "events_per_s"}

    fine = {"run_key": KEY, "wall_s": 10.2, "events_per_s": 100000}
    assert ledger.check_regression(fine)["ok"]


def test_appending_after_the_bump_stamps_current_version(tmp_path):
    ledger = _ledger(tmp_path)
    stamped = ledger.append({"run_key": KEY, "wall_s": 9.9,
                             "events_per_s": 103000})
    assert stamped["schema_version"] == LEDGER_SCHEMA_VERSION == 5
    versions = [e["schema_version"] for e in ledger.entries()]
    assert versions == [1, 2, 2, 3, 4, 5, 5]


def test_validation_gate_accepts_mixed_era_ledger(tmp_path):
    ledger = _ledger(tmp_path)
    report = check_ledger(ledger.path)
    assert report["ok"]
    assert report["entries"] == 6
    assert report["malformed"] == 1
    assert report["checked"]  # enough same-key history to compare
