"""Proxy-application tests: numerics and communication character."""

import numpy as np
import pytest

from repro import get_machine
from repro.apps import (
    AMRConfig,
    CGConfig,
    SpectralConfig,
    cg_program,
    reference_solution,
    run_amr,
    run_cg,
    run_spectral,
)
from repro.core.errors import BenchmarkError
from repro.mpi.cluster import Cluster
from tests.conftest import make_test_machine

M = make_test_machine(cpus_per_node=2)


# -- CG numerics --------------------------------------------------------------

@pytest.mark.parametrize("p", [1, 2, 3, 4])
def test_cg_solves_poisson(p):
    cfg = CGConfig(n_local=12, validate=True, tol=1e-12)
    cluster = Cluster(M, p)
    out = cluster.run(cg_program, cfg)
    x = np.concatenate([r[4] for r in out.results])
    ref = reference_solution(p, cfg)
    assert np.allclose(x, ref, atol=1e-8)


def test_cg_converges_to_sine():
    """The discrete solution approximates u(x) = sin(pi x)."""
    cfg = CGConfig(n_local=32, validate=True, tol=1e-12)
    cluster = Cluster(M, 2)
    out = cluster.run(cg_program, cfg)
    x = np.concatenate([r[4] for r in out.results])
    total = 64
    xs = (np.arange(total) + 1) / (total + 1)
    assert np.allclose(x, np.sin(np.pi * xs), atol=5e-3)


def test_cg_residual_reported():
    res = run_cg(M, 4, CGConfig(n_local=16, validate=True, tol=1e-10))
    assert res.residual < 1e-10
    assert res.iterations <= 10 * 64


def test_cg_timing_mode_fixed_iterations():
    res = run_cg(M, 4, CGConfig(n_local=1000, iterations=10))
    assert res.iterations == 10
    assert 0 < res.comm_fraction < 1
    assert res.time_per_iteration_us > 0


def test_cg_config_validation():
    with pytest.raises(BenchmarkError):
        run_cg(M, 2, CGConfig(n_local=1))


def test_cg_single_rank_no_comm_loss():
    res = run_cg(M, 1, CGConfig(n_local=64, validate=True))
    assert res.residual < 1e-10


# -- spectral ------------------------------------------------------------------

def test_spectral_runs_and_reports():
    res = run_spectral(M, 4, SpectralConfig(total_elements=1 << 12, steps=2))
    assert res.elapsed > 0
    assert 0 < res.comm_fraction < 1


def test_spectral_divisibility():
    with pytest.raises(BenchmarkError):
        run_spectral(M, 3, SpectralConfig(total_elements=1 << 12))


def test_spectral_is_communication_heavy_on_slow_network():
    opt = run_spectral(get_machine("opteron"), 8,
                       SpectralConfig(total_elements=1 << 14, steps=2))
    sx8 = run_spectral(get_machine("sx8"), 8,
                       SpectralConfig(total_elements=1 << 14, steps=2))
    assert opt.comm_fraction > sx8.comm_fraction


# -- AMR exchange ----------------------------------------------------------------

def test_amr_runs_and_reports():
    res = run_amr(M, 8, AMRConfig(steps=3))
    assert res.elapsed > 0
    assert 0 < res.comm_fraction < 1
    assert res.time_per_step_us > 0


def test_amr_ghost_layer_validation():
    with pytest.raises(BenchmarkError):
        run_amr(M, 2, AMRConfig(cells_per_rank=10, ghost_cells=100))


def test_amr_half_duplex_penalty():
    """The bidirectional ghost exchange punishes the Myrinet cluster."""
    opt = run_amr(get_machine("opteron"), 16, AMRConfig(steps=2))
    xeon = run_amr(get_machine("xeon"), 16, AMRConfig(steps=2))
    assert opt.comm_fraction > xeon.comm_fraction
