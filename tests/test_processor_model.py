"""Unit tests for the processor roofline model."""

import pytest

from repro.core.errors import ConfigError
from repro.machine import ProcessorSpec
from repro.machine.processor import KERNELS


def scalar_proc(**kw) -> ProcessorSpec:
    base = dict(
        name="scalar",
        clock_ghz=2.0,
        peak_gflops=4.0,
        is_vector=False,
        dgemm_eff=0.9,
        hpl_eff=0.5,
        fft_eff=0.1,
        stream_copy_gbs=2.0,
        stream_triad_gbs=1.5,
        random_update_gups=0.01,
    )
    base.update(kw)
    return ProcessorSpec(**base)


def vector_proc(**kw) -> ProcessorSpec:
    return scalar_proc(
        name="vector",
        peak_gflops=16.0,
        is_vector=True,
        scalar_gflops=2.0,
        stream_copy_gbs=40.0,
        stream_triad_gbs=40.0,
        **kw,
    )


def test_dgemm_rate():
    p = scalar_proc()
    # 2e9 flops at 3.6 GF/s
    assert p.compute_time(2e9, kernel="dgemm") == pytest.approx(2e9 / 3.6e9)


def test_hpl_rate_uses_hpl_eff():
    p = scalar_proc()
    assert p.compute_time(2e9, kernel="hpl") == pytest.approx(1.0)  # 2 GF/s


def test_stream_kernels_bandwidth_bound():
    p = scalar_proc()
    assert p.compute_time(0, 2e9, "stream_copy") == pytest.approx(1.0)
    assert p.compute_time(0, 1.5e9, "stream_triad") == pytest.approx(1.0)


def test_roofline_takes_max():
    p = scalar_proc()
    # flops-bound case
    t1 = p.compute_time(3.6e9, 1.0, "dgemm")
    assert t1 == pytest.approx(1.0)
    # bandwidth-bound case
    t2 = p.compute_time(1.0, 1.5e9, "reduction")
    assert t2 == pytest.approx(1.0)


def test_random_access_rate():
    p = scalar_proc()
    # 0.01 GUP/s at 8 B/update = 80 MB/s effective
    assert p.compute_time(0, 8e7, "random_access") == pytest.approx(1.0)


def test_fft_penalised_on_vector_cpu():
    """The paper: HPCC's FFT 'does not completely vectorize'."""
    v, s = vector_proc(), scalar_proc(peak_gflops=16.0)
    assert v.kernel_flops("fft") < s.kernel_flops("fft")


def test_vector_scalar_unit_for_nonvector_code():
    v = vector_proc()
    assert v.kernel_flops("random_access") == pytest.approx(2.0e9)
    assert v.scalar_flops == pytest.approx(2.0e9)


def test_unknown_kernel_rejected():
    with pytest.raises(ConfigError):
        scalar_proc().compute_time(1.0, kernel="quantum")


def test_negative_work_rejected():
    with pytest.raises(ConfigError):
        scalar_proc().compute_time(-1.0)
    with pytest.raises(ConfigError):
        scalar_proc().compute_time(0.0, -5.0)


def test_zero_work_is_free():
    assert scalar_proc().compute_time(0.0, 0.0) == 0.0


@pytest.mark.parametrize("kernel", KERNELS)
def test_all_kernels_have_positive_rates(kernel):
    for p in (scalar_proc(), vector_proc()):
        assert p.kernel_flops(kernel) > 0
        assert p.kernel_mem_bw(kernel) > 0


def test_generic_kernel_slower_than_dgemm():
    p = scalar_proc()
    assert p.kernel_flops("generic") < p.kernel_flops("dgemm")
