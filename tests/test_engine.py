"""Unit tests for the discrete-event engine."""

import pytest

from repro.core.engine import Engine, Event, Process, wait_all
from repro.core.errors import DeadlockError, SimulationError


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_schedule_runs_in_time_order():
    eng = Engine()
    order = []
    eng.schedule(2.0, order.append, "b")
    eng.schedule(1.0, order.append, "a")
    eng.schedule(3.0, order.append, "c")
    eng.run()
    assert order == ["a", "b", "c"]
    assert eng.now == 3.0


def test_ties_break_by_insertion_order():
    eng = Engine()
    order = []
    for tag in "abc":
        eng.schedule(1.0, order.append, tag)
    eng.run()
    assert order == ["a", "b", "c"]


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule(-0.1, lambda: None)


def test_run_until_stops_clock():
    eng = Engine()
    eng.schedule(10.0, lambda: None)
    assert eng.run(until=5.0) == 5.0
    # remaining event still runs on a subsequent call
    assert eng.run() == 10.0


def test_process_sleep_advances_time():
    eng = Engine()

    def prog():
        yield 1.5
        yield 2.5
        return "done"

    p = eng.spawn(prog())
    eng.run()
    assert p.finished
    assert p.result == "done"
    assert eng.now == 4.0


def test_process_yield_none_resumes_same_time():
    eng = Engine()
    times = []

    def prog():
        times.append(eng.now)
        yield None
        times.append(eng.now)

    eng.spawn(prog())
    eng.run()
    assert times == [0.0, 0.0]


def test_event_wakes_waiter_with_value():
    eng = Engine()
    ev = eng.event("data")
    got = []

    def waiter():
        value = yield ev
        got.append((eng.now, value))

    eng.spawn(waiter())
    eng.schedule(3.0, ev.trigger, 42)
    eng.run()
    assert got == [(3.0, 42)]


def test_event_latches_for_late_waiters():
    eng = Engine()
    ev = eng.event()
    got = []

    def late():
        yield 5.0
        value = yield ev
        got.append((eng.now, value))

    eng.spawn(late())
    eng.schedule(1.0, ev.trigger, "early")
    eng.run()
    assert got == [(5.0, "early")]


def test_event_multiple_waiters_all_wake():
    eng = Engine()
    ev = eng.event()
    woke = []

    def waiter(i):
        yield ev
        woke.append(i)

    for i in range(3):
        eng.spawn(waiter(i))
    eng.schedule(1.0, ev.trigger, None)
    eng.run()
    assert sorted(woke) == [0, 1, 2]


def test_event_double_trigger_raises():
    eng = Engine()
    ev = eng.event()
    ev.trigger(1)
    with pytest.raises(SimulationError):
        ev.trigger(2)


def test_event_value_before_trigger_raises():
    eng = Engine()
    with pytest.raises(SimulationError):
        _ = eng.event().value


def test_join_process_returns_child_result():
    eng = Engine()

    def child():
        yield 2.0
        return "payload"

    def parent():
        c = eng.spawn(child())
        value = yield c
        return (eng.now, value)

    p = eng.spawn(parent())
    eng.run()
    assert p.result == (2.0, "payload")


def test_join_finished_process_immediate():
    eng = Engine()

    def child():
        yield 1.0
        return 7

    def parent():
        c = eng.spawn(child())
        yield 5.0
        v = yield c  # child long done; resumes immediately
        return (eng.now, v)

    p = eng.spawn(parent())
    eng.run()
    assert p.result == (5.0, 7)


def test_wait_all_collects_in_order():
    eng = Engine()
    evs = [eng.event(str(i)) for i in range(3)]

    def prog():
        vals = yield from wait_all(evs)
        return (eng.now, vals)

    p = eng.spawn(prog())
    # trigger out of order at different times
    eng.schedule(3.0, evs[0].trigger, "a")
    eng.schedule(1.0, evs[1].trigger, "b")
    eng.schedule(2.0, evs[2].trigger, "c")
    eng.run()
    assert p.result == (3.0, ["a", "b", "c"])


def test_deadlock_detected_with_process_names():
    eng = Engine()
    ev = eng.event()

    def stuck():
        yield ev

    eng.spawn(stuck(), name="stuck_proc")
    with pytest.raises(DeadlockError, match="stuck_proc"):
        eng.run()


def test_non_generator_process_rejected():
    eng = Engine()
    with pytest.raises(SimulationError, match="generator"):
        Process(eng, lambda: None)  # type: ignore[arg-type]


def test_bad_yield_value_raises():
    eng = Engine()

    def prog():
        yield "nonsense"

    eng.spawn(prog())
    with pytest.raises(SimulationError, match="unsupported"):
        eng.run()


def test_negative_sleep_raises():
    eng = Engine()

    def prog():
        yield -1.0

    eng.spawn(prog())
    with pytest.raises(SimulationError, match="negative"):
        eng.run()


def test_exception_in_process_propagates():
    eng = Engine()

    def prog():
        yield 1.0
        raise ValueError("boom")

    eng.spawn(prog())
    with pytest.raises(ValueError, match="boom"):
        eng.run()


def test_run_all_returns_results():
    eng = Engine()

    def prog(i):
        yield float(i)
        return i * i

    assert eng.run_all(prog(i) for i in range(4)) == [0, 1, 4, 9]


def test_run_not_reentrant():
    eng = Engine()

    def prog():
        with pytest.raises(SimulationError, match="reentrant"):
            eng.run()
        yield 0.1

    eng.spawn(prog())
    eng.run()


def test_determinism_same_structure_same_times():
    def build():
        eng = Engine()
        log = []

        def prog(i):
            yield 0.5 * (i + 1)
            log.append((eng.now, i))
            yield 0.25
            log.append((eng.now, i))

        for i in range(5):
            eng.spawn(prog(i))
        eng.run()
        return log

    assert build() == build()
