"""Structural assertions on collective algorithms via the message tracer:
the simulated algorithms must schedule exactly the messages the textbook
algorithms describe."""

import math

import numpy as np
import pytest

from tests.conftest import make_test_machine, run_ranks

M = make_test_machine(cpus_per_node=2, max_cpus=64)


def traced(p, prog):
    return run_ranks(M, p, prog, trace=True).tracer


@pytest.mark.parametrize("p", [2, 4, 8, 16])
def test_dissemination_barrier_message_count(p):
    def prog(comm):
        yield from comm.barrier(algorithm="dissemination")

    tr = traced(p, prog)
    assert tr.message_count == p * math.ceil(math.log2(p))


@pytest.mark.parametrize("p", [3, 5, 6])
def test_dissemination_barrier_non_pow2(p):
    def prog(comm):
        yield from comm.barrier(algorithm="dissemination")

    tr = traced(p, prog)
    assert tr.message_count == p * math.ceil(math.log2(p))


@pytest.mark.parametrize("p", [2, 5, 8, 13])
def test_binomial_bcast_sends_p_minus_1(p):
    def prog(comm):
        yield from comm.bcast(nbytes=64, root=0, algorithm="binomial")

    tr = traced(p, prog)
    assert tr.message_count == p - 1


@pytest.mark.parametrize("p", [2, 5, 8, 13])
def test_binomial_reduce_sends_p_minus_1(p):
    def prog(comm):
        yield from comm.reduce(nbytes=64, root=0, algorithm="binomial")

    tr = traced(p, prog)
    assert tr.message_count == p - 1


@pytest.mark.parametrize("p", [4, 8, 16])
def test_recursive_doubling_allreduce_count(p):
    def prog(comm):
        yield from comm.allreduce(nbytes=64, algorithm="recursive_doubling")

    tr = traced(p, prog)
    assert tr.message_count == p * int(math.log2(p))


@pytest.mark.parametrize("p", [5, 6, 7])
def test_allreduce_fold_adds_messages_non_pow2(p):
    def prog(comm):
        yield from comm.allreduce(nbytes=64, algorithm="recursive_doubling")

    tr = traced(p, prog)
    p2 = 1 << (p.bit_length() - 1)
    rem = p - p2
    expected = p2 * int(math.log2(p2)) + 2 * rem  # fold + unfold
    assert tr.message_count == expected


@pytest.mark.parametrize("p", [3, 4, 8, 9])
def test_ring_allgather_message_count(p):
    def prog(comm):
        yield from comm.allgather(nbytes=1024, algorithm="ring")

    tr = traced(p, prog)
    assert tr.message_count == p * (p - 1)


@pytest.mark.parametrize("p", [4, 6, 8])
def test_bruck_allgather_log_rounds(p):
    def prog(comm):
        yield from comm.allgather(nbytes=64, algorithm="bruck")

    tr = traced(p, prog)
    assert tr.message_count == p * math.ceil(math.log2(p))


@pytest.mark.parametrize("p", [3, 4, 8])
def test_pairwise_alltoall_message_count(p):
    def prog(comm):
        yield from comm.alltoall(nbytes=1024, algorithm="pairwise")

    tr = traced(p, prog)
    assert tr.message_count == p * (p - 1)


@pytest.mark.parametrize("p", [4, 8])
def test_bruck_alltoall_fewer_messages_than_pairwise(p):
    def bruck(comm):
        yield from comm.alltoall(nbytes=8, algorithm="bruck")

    def pairwise(comm):
        yield from comm.alltoall(nbytes=8, algorithm="pairwise")

    assert traced(p, bruck).message_count < traced(p, pairwise).message_count


def test_bruck_alltoall_total_bytes_exceed_pairwise():
    """Bruck trades bandwidth (log-factor inflation) for latency."""
    p, n = 8, 100

    def bruck(comm):
        yield from comm.alltoall(nbytes=n, algorithm="bruck")

    def pairwise(comm):
        yield from comm.alltoall(nbytes=n, algorithm="pairwise")

    assert traced(p, bruck).total_bytes > traced(p, pairwise).total_bytes


def test_scatter_ring_bcast_wire_volume():
    """van de Geijn bcast: scatter moves n*log2(p)/2, the ring n*(p-1)."""
    p, n = 8, 8192

    def prog(comm):
        yield from comm.bcast(nbytes=n, root=0, algorithm="scatter_ring")

    tr = traced(p, prog)
    expected = n * math.log2(p) / 2 + n * (p - 1)
    assert tr.total_bytes == pytest.approx(expected, rel=0.05)


def test_binomial_bcast_volume_is_payload_times_p_minus_1():
    p, n = 8, 8192

    def prog(comm):
        yield from comm.bcast(nbytes=n, root=0, algorithm="binomial")

    tr = traced(p, prog)
    assert tr.total_bytes == n * (p - 1)


def test_tuning_small_bcast_picks_binomial():
    p = 16

    def small(comm):
        yield from comm.bcast(nbytes=256, root=0)

    tr = traced(p, small)
    assert tr.message_count == p - 1  # binomial signature


def test_tuning_large_bcast_picks_scatter_ring():
    p = 16

    def large(comm):
        yield from comm.bcast(nbytes=1024 * 1024, root=0)

    tr = traced(p, large)
    assert tr.message_count > p - 1  # scatter+ring sends more messages


def test_intra_node_flag_in_trace():
    def prog(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=64)   # same node (2 cpus/node)
            yield from comm.send(2, nbytes=64)   # other node
        elif comm.rank in (1, 2):
            yield from comm.recv(0)

    tr = traced(4, prog)
    flags = {(m.src, m.dst): m.intra_node for m in tr.messages}
    assert flags[(0, 1)] is True
    assert flags[(0, 2)] is False


def test_compute_records_traced():
    def prog(comm):
        yield from comm.compute(flops=1e6, nbytes=0, kernel="dgemm")

    res = run_ranks(M, 2, prog, trace=True)
    assert len(res.tracer.computes) == 2
    assert all(c.kernel == "dgemm" for c in res.tracer.computes)
    assert res.tracer.compute_time(0) > 0
