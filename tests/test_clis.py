"""CLI entry points: repro.imb, repro.hpcc, repro.harness."""

import pytest

from repro.hpcc.__main__ import main as hpcc_main
from repro.imb.__main__ import main as imb_main


def test_imb_cli_single_size(capsys):
    rc = imb_main(["Sendrecv", "--machine", "xeon", "-p", "4",
                   "--msg", "4096"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Sendrecv on Dell Xeon Cluster" in out
    assert "4096" in out


def test_imb_cli_size_schedule(capsys):
    rc = imb_main(["PingPong", "--machine", "opteron", "-p", "2",
                   "--sizes", "--max-size", "1024"])
    assert rc == 0
    lines = capsys.readouterr().out.splitlines()
    # header + column row + sizes 0..1024 (12 rows)
    assert len(lines) == 2 + 12


def test_imb_cli_list(capsys):
    rc = imb_main(["--list"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Alltoall" in out and "Unidir_Put" in out


def test_imb_cli_no_benchmark_is_usage_error(capsys):
    assert imb_main([]) == 2


def test_imb_cli_unknown_machine():
    from repro.core.errors import ConfigError

    with pytest.raises(ConfigError):
        imb_main(["Barrier", "--machine", "deep_thought"])


def test_hpcc_cli_full_suite(capsys):
    rc = hpcc_main(["--machine", "opteron", "-p", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "G-HPL" in out
    assert "RandomRing latency" in out
    assert "STREAM Byte/Flop" in out


def test_hpcc_cli_hpl_only(capsys):
    rc = hpcc_main(["--machine", "sx8", "-p", "64", "--hpl-only"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "G-HPL" in out and "% of peak" in out


# -- harness output-path validation (fails fast, before any simulation) -----------


def test_harness_metrics_path_is_directory_usage_error(tmp_path, capsys):
    from repro.harness.runner import main as runner_main

    rc = runner_main(["--figure", "6", "--max-cpus", "4",
                      "--metrics", str(tmp_path)])
    assert rc == 2
    err = capsys.readouterr().err
    assert "--metrics" in err and "directory" in err


def test_harness_trace_dir_is_file_usage_error(tmp_path, capsys):
    from repro.harness.runner import main as runner_main

    f = tmp_path / "not_a_dir"
    f.write_text("occupied")
    rc = runner_main(["--figure", "6", "--max-cpus", "4",
                      "--trace-dir", str(f)])
    assert rc == 2
    assert "--trace-dir" in capsys.readouterr().err


def test_harness_metrics_parent_blocked_by_file_usage_error(tmp_path, capsys):
    from repro.harness.runner import main as runner_main

    blocker = tmp_path / "file"
    blocker.write_text("occupied")
    rc = runner_main(["--figure", "6", "--max-cpus", "4",
                      "--metrics", str(blocker / "deep" / "m.json")])
    assert rc == 2
    assert "cannot create" in capsys.readouterr().err


def test_harness_validate_report_path_checked_up_front(tmp_path, capsys):
    from repro.harness.runner import main as runner_main

    rc = runner_main(["--validate", "--figure", "6", "--max-cpus", "4",
                      "--validate-report", str(tmp_path)])
    assert rc == 2
    assert "directory" in capsys.readouterr().err
