"""Fault-injection tests: stragglers, degraded cores, latency faults."""

import pytest

from repro.core.errors import ConfigError
from repro.machine.faults import add_latency, degrade_core, slow_node
from repro.mpi.cluster import Cluster
from tests.conftest import make_test_machine

M = make_test_machine(cpus_per_node=2, max_cpus=64)
MB = 1024 * 1024


def timed_collective(prog, p=16, setup=None):
    cluster = Cluster(M, p)

    def driver(comm):
        yield from comm.barrier()
        t0 = comm.now
        yield from prog(comm)
        return comm.now - t0

    res = cluster.run(driver, fabric_setup=setup)
    return max(res.results)


def allreduce(comm):
    yield from comm.allreduce(nbytes=MB)


def alltoall(comm):
    yield from comm.alltoall(nbytes=MB // 4)


def test_one_straggler_slows_every_collective():
    clean = timed_collective(allreduce)
    hurt = timed_collective(allreduce,
                            setup=lambda f: slow_node(f, node=3, factor=8.0))
    assert hurt > 1.5 * clean


def test_straggler_cost_independent_of_which_node():
    t2 = timed_collective(allreduce,
                          setup=lambda f: slow_node(f, node=2, factor=8.0))
    t5 = timed_collective(allreduce,
                          setup=lambda f: slow_node(f, node=5, factor=8.0))
    assert t2 == pytest.approx(t5, rel=0.25)


def test_straggler_hits_alltoall_proportionally_less():
    """Alltoall already serialises on every NIC; one slow NIC hurts, but
    the healthy nodes' pairwise steps proceed — the slowdown is milder
    than the collective's 8x component."""
    clean = timed_collective(alltoall)
    hurt = timed_collective(alltoall,
                            setup=lambda f: slow_node(f, node=3, factor=8.0))
    assert 1.1 < hurt / clean < 8.0


def test_degrade_core_hurts_alltoall_not_pingpong():
    def pingpong(comm):
        if comm.rank == 0:
            yield from comm.send(2, nbytes=MB)
        elif comm.rank == 2:
            yield from comm.recv(0)

    clean_a2a = timed_collective(alltoall)
    hurt_a2a = timed_collective(
        alltoall, setup=lambda f: degrade_core(f, 1, 16.0))
    assert hurt_a2a > 1.3 * clean_a2a

    clean_pp = timed_collective(pingpong)
    hurt_pp = timed_collective(
        pingpong, setup=lambda f: degrade_core(f, 1, 16.0))
    assert hurt_pp == pytest.approx(clean_pp, rel=0.3)


def test_add_latency_hits_barrier_hardest():
    def barrier(comm):
        yield from comm.barrier()

    clean = timed_collective(barrier)
    hurt = timed_collective(barrier,
                            setup=lambda f: add_latency(f, 50e-6))
    assert hurt > clean + 40e-6


def test_fault_validation():
    cluster = Cluster(M, 4)
    fabric = cluster.machine.build_fabric(4)
    with pytest.raises(ConfigError):
        slow_node(fabric, node=0, factor=0.5)
    with pytest.raises(ConfigError):
        slow_node(fabric, node=99, factor=2.0)
    with pytest.raises(ConfigError):
        add_latency(fabric, -1e-6)


def test_faults_do_not_leak_across_runs():
    """Each run builds a fresh fabric: injected faults are run-scoped."""
    hurt = timed_collective(allreduce,
                            setup=lambda f: slow_node(f, node=0, factor=8.0))
    clean_after = timed_collective(allreduce)
    assert clean_after < hurt
