"""One-sided communication (RMA) tests."""

import numpy as np
import pytest

from repro.core.errors import MPIError
from repro.mpi.onesided import win_create
from tests.conftest import make_test_machine, run_ranks

M = make_test_machine(cpus_per_node=2, max_cpus=64)


def test_put_lands_after_fence():
    def prog(comm):
        win = yield from win_create(comm, 8)
        if comm.rank == 0:
            win.put(1, np.full(8, 42.0))
        yield from win.fence()
        return win.buffer.copy()

    out = run_ranks(M, 2, prog)
    assert np.all(out.results[1] == 42.0)
    assert np.all(out.results[0] == 0.0)


def test_put_with_offset():
    def prog(comm):
        win = yield from win_create(comm, 8)
        if comm.rank == 0:
            win.put(1, np.array([7.0, 8.0]), offset=3)
        yield from win.fence()
        return win.buffer.copy()

    out = run_ranks(M, 2, prog)
    assert list(out.results[1]) == [0, 0, 0, 7.0, 8.0, 0, 0, 0]


def test_get_reads_remote_window():
    def prog(comm):
        buf = np.arange(8, dtype=np.float64) * (comm.rank + 1)
        win = yield from win_create(comm, 8, buffer=buf)
        yield from win.fence()
        if comm.rank == 0:
            req = win.get(2, 4, offset=2)
            data = yield req
            yield from win.fence()
            return data
        yield from win.fence()

    out = run_ranks(M, 3, prog)
    assert np.array_equal(out.results[0], np.array([6.0, 9.0, 12.0, 15.0]))


def test_all_to_one_puts():
    p = 6

    def prog(comm):
        win = yield from win_create(comm, p)
        if comm.rank != 0:
            win.put(0, np.array([float(comm.rank)]), offset=comm.rank)
        yield from win.fence()
        return win.buffer.copy()

    out = run_ranks(M, p, prog)
    assert list(out.results[0]) == [0.0] + [float(r) for r in range(1, p)]


def test_fence_synchronises_epochs():
    """A put issued in epoch 1 must not be visible before the fence,
    and must be visible after, even for a late-arriving target."""
    def prog(comm):
        win = yield from win_create(comm, 1)
        if comm.rank == 0:
            win.put(1, np.array([5.0]))
        before = win.buffer[0]
        yield from win.fence()
        after = win.buffer[0]
        return before, after

    out = run_ranks(M, 2, prog)
    # rank 1 enters the fence immediately; visibility only after it
    assert out.results[1] == (0.0, 5.0)


def test_put_bounds_checked():
    def prog(comm):
        win = yield from win_create(comm, 4)
        with pytest.raises(MPIError):
            win.put(0, np.zeros(8))
        with pytest.raises(MPIError):
            win.put(5, np.zeros(1))
        with pytest.raises(MPIError):
            win.get(0, 2, offset=3)
        yield from win.fence()

    run_ranks(M, 2, prog)


def test_put_does_not_charge_target_cpu():
    """RDMA: the target's CPU timeline is untouched by an incoming put."""
    nbytes_elems = 1 << 16

    def prog(comm):
        win = yield from win_create(comm, nbytes_elems)
        if comm.rank == 0:
            win.put(1, np.ones(nbytes_elems))
        yield from win.fence()
        return comm.cluster.transport.cpu_free_at(comm.world_rank)

    out = run_ranks(M, 2, prog)
    # target CPU time = barriers' small-message overheads only, far less
    # than the 512 KiB transfer's wire time
    transfer_time = 8 * nbytes_elems / 1e9
    assert out.results[1] < transfer_time


def test_origin_buffer_reusable_after_local_event():
    def prog(comm):
        win = yield from win_create(comm, 4)
        if comm.rank == 0:
            buf = np.full(4, 3.0)
            req = win.put(1, buf)
            yield req
            buf[:] = -1.0  # mutate after local completion
        yield from win.fence()
        return win.buffer.copy()

    out = run_ranks(M, 2, prog)
    assert np.all(out.results[1] == 3.0)


def test_window_with_mismatched_buffer_rejected():
    def prog(comm):
        with pytest.raises(MPIError):
            yield from win_create(comm, 8, buffer=np.zeros(4))

    run_ranks(M, 2, prog)


def test_two_windows_are_independent():
    def prog(comm):
        w1 = yield from win_create(comm, 2)
        w2 = yield from win_create(comm, 2)
        if comm.rank == 0:
            w1.put(1, np.array([1.0]), offset=0)
            w2.put(1, np.array([2.0]), offset=0)
        yield from w1.fence()
        yield from w2.fence()
        return w1.buffer[0], w2.buffer[0]

    out = run_ranks(M, 2, prog)
    assert out.results[1] == (1.0, 2.0)
