"""The closed-form (macro) collective models must agree with the
message-level simulation within tolerance — this is what licenses using
them for the paper's largest configurations."""

import pytest

from repro import get_machine
from repro.imb import run_benchmark
from repro.network import macro
from repro.network.macro import MacroContext
from tests.conftest import make_test_machine

MB = 1024 * 1024

MACHINES = ["sx8", "altix_nl4", "xeon", "opteron"]


def _alg_time_us(machine, bench, p, nbytes):
    return run_benchmark(machine, bench, p, nbytes).time_us


@pytest.mark.parametrize("name", MACHINES)
@pytest.mark.parametrize("p", [8, 16, 32])
def test_alltoall_macro_agreement(name, p):
    m = get_machine(name)
    if p > m.max_cpus:
        pytest.skip("machine too small")
    ctx = MacroContext.from_machine(m, p)
    mac = macro.alltoall_time(ctx, MB) * 1e6
    alg = _alg_time_us(m, "Alltoall", p, MB)
    assert mac == pytest.approx(alg, rel=0.5)


@pytest.mark.parametrize("name", MACHINES)
@pytest.mark.parametrize("p", [8, 32])
def test_allreduce_macro_agreement(name, p):
    m = get_machine(name)
    if p > m.max_cpus:
        pytest.skip("machine too small")
    ctx = MacroContext.from_machine(m, p)
    mac = macro.allreduce_rabenseifner_time(ctx, MB) * 1e6
    alg = _alg_time_us(m, "Allreduce", p, MB)
    assert mac == pytest.approx(alg, rel=0.6)


@pytest.mark.parametrize("name", MACHINES)
def test_barrier_macro_agreement(name):
    m = get_machine(name)
    p = min(32, m.max_cpus)
    ctx = MacroContext.from_machine(m, p)
    mac = macro.barrier_dissemination_time(ctx) * 1e6
    alg = _alg_time_us(m, "Barrier", p, 0)
    assert mac == pytest.approx(alg, rel=0.7)


@pytest.mark.parametrize("p", [8, 16])
def test_allgather_ring_macro_agreement(p):
    m = make_test_machine(cpus_per_node=2)
    ctx = MacroContext.from_machine(m, p)
    mac = macro.allgather_ring_time(ctx, MB) * 1e6
    alg = _alg_time_us(m, "Allgather", p, MB)
    assert mac == pytest.approx(alg, rel=0.5)


@pytest.mark.parametrize("p", [8, 16])
def test_bcast_macro_agreement(p):
    m = make_test_machine(cpus_per_node=2)
    ctx = MacroContext.from_machine(m, p)
    mac = macro.bcast_scatter_ring_time(ctx, MB) * 1e6
    alg = _alg_time_us(m, "Bcast", p, MB)
    assert mac == pytest.approx(alg, rel=0.6)


def test_macro_context_single_node():
    m = make_test_machine(cpus_per_node=8)
    ctx = MacroContext.from_machine(m, 4)
    assert ctx.n_nodes == 1
    assert macro.alltoall_time(ctx, 1024) > 0  # all-shm path works


def test_macro_monotone_in_message_size():
    ctx = MacroContext.from_machine(get_machine("xeon"), 32)
    assert macro.alltoall_time(ctx, 2 * MB) > macro.alltoall_time(ctx, MB)
    assert (macro.allreduce_rabenseifner_time(ctx, 2 * MB)
            > macro.allreduce_rabenseifner_time(ctx, MB))


def test_macro_monotone_in_ranks():
    m = get_machine("xeon")
    small = macro.alltoall_time(MacroContext.from_machine(m, 16), MB)
    large = macro.alltoall_time(MacroContext.from_machine(m, 64), MB)
    assert large > small


def test_macro_reduce_vs_allreduce_structure():
    ctx = MacroContext.from_machine(get_machine("xeon"), 32)
    red = macro.reduce_rabenseifner_time(ctx, MB)
    allred = macro.allreduce_rabenseifner_time(ctx, MB)
    # same reduce-scatter phase; gather-to-one vs allgather are comparable
    assert red == pytest.approx(allred, rel=0.5)


def test_macro_context_validates():
    from repro.core.errors import ConfigError

    with pytest.raises(ConfigError):
        MacroContext.from_machine(get_machine("xeon"), 0)
