"""Scheduler backends: registry, determinism contract, batched dispatch.

Every backend must execute events in ``(time, global insertion order)``
— the determinism contract the golden oracle relies on — and the engine
must behave identically on top of any of them: same execution order,
same counters, same error paths.  These tests pin that contract per
backend, plus the seams the refactor introduced: the process-default
selection (flag > env > fallback), the bounded-run twin loop's
instrumentation, the mid-batch exception re-queue, and the live-process
bookkeeping on raising exits.
"""

from __future__ import annotations

import pytest

from repro.core import sched
from repro.core.engine import Engine, events_processed_total
from repro.core.errors import ConfigError, SimulationError
from repro.obs.metrics import MetricsRegistry, using_metrics

EXACT_BACKENDS = ["heapq", "calendar"]
ALL_BACKENDS = ["heapq", "calendar", "macro"]


@pytest.fixture(autouse=True)
def _clean_default():
    """Never leak an explicit process default out of a test."""
    previous = sched.set_default_backend(None)
    yield
    sched.set_default_backend(previous)


# -- registry and default selection -------------------------------------------

def test_registry_lists_all_backends():
    names = sched.available_backends()
    for name in ALL_BACKENDS:
        assert name in names


def test_make_backend_resolves_names_and_instances():
    be = sched.make_backend("heapq")
    assert be.name == "heapq"
    assert sched.make_backend(be) is be
    assert sched.make_backend(None).name == sched.default_backend_name()


def test_make_backend_unknown_name_raises():
    with pytest.raises(ConfigError, match="unknown engine backend"):
        sched.make_backend("quantum")


def test_set_default_backend_unknown_raises():
    with pytest.raises(ConfigError, match="unknown engine backend"):
        sched.set_default_backend("quantum")


def test_default_resolution_order(monkeypatch):
    monkeypatch.delenv(sched.BACKEND_ENV, raising=False)
    assert sched.default_backend_name() == sched.FALLBACK_BACKEND
    monkeypatch.setenv(sched.BACKEND_ENV, "heapq")
    assert sched.default_backend_name() == "heapq"
    # explicit default outranks the environment
    sched.set_default_backend("macro")
    assert sched.default_backend_name() == "macro"
    # clearing restores env resolution
    sched.set_default_backend(None)
    assert sched.default_backend_name() == "heapq"


def test_env_backend_typo_raises(monkeypatch):
    monkeypatch.setenv(sched.BACKEND_ENV, "heapd")
    with pytest.raises(ConfigError, match="REPRO_ENGINE_BACKEND"):
        sched.default_backend_name()


def test_engine_reports_backend_name():
    for name in ALL_BACKENDS:
        assert Engine(backend=name).backend_name == name


# -- queue discipline, per backend --------------------------------------------

@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_pop_batch_returns_whole_tie_in_insertion_order(name):
    be = sched.make_backend(name)
    be.push(2.0, "b1", ())
    be.push(1.0, "a1", ())
    be.push(2.0, "b2", ())
    be.push(1.0, "a2", ())
    assert len(be) == 4
    assert be.peek_time() == 1.0
    assert be.pop_batch() == (1.0, [("a1", ()), ("a2", ())])
    assert be.pop_batch() == (2.0, [("b1", ()), ("b2", ())])
    assert be.pop_batch() is None
    assert be.peek_time() is None
    assert len(be) == 0


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_push_at_popped_time_forms_later_batch(name):
    """Events pushed at time t while t's batch runs must not join it —
    they carry larger insertion seqs than anything already in flight."""
    be = sched.make_backend(name)
    be.push(1.0, "first", ())
    t, batch = be.pop_batch()
    assert (t, batch) == (1.0, [("first", ())])
    be.push(1.0, "second", ())
    assert be.pop_batch() == (1.0, [("second", ())])


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_engine_tie_order_and_times(name):
    eng = Engine(backend=name)
    order = []
    eng.schedule(2.0, order.append, "c")
    for tag in "ab":
        eng.schedule(1.0, order.append, tag)
    eng.schedule(0.0, order.append, "z")
    eng.run()
    assert order == ["z", "a", "b", "c"]
    assert eng.now == 2.0
    assert eng.events_processed == 4


def test_execution_order_identical_across_backends():
    """One interleaved workload — sleeps, events, joins, same-time
    re-schedules — must produce the identical execution log under every
    backend."""

    def trace(backend):
        eng = Engine(backend=backend)
        log = []

        def child(i):
            yield 0.25 * i
            log.append(("child", i, eng.now))
            return i * 10

        def prog(i):
            ev = eng.event()
            eng.schedule(0.5, ev.trigger, i)
            got = yield ev
            log.append(("event", got, eng.now))
            yield None
            v = yield eng.spawn(child(i))
            log.append(("join", v, eng.now))
            yield 0.125
            log.append(("done", i, eng.now))

        for i in range(4):
            eng.spawn(prog(i))
        eng.run()
        return log, eng.now, eng.events_processed

    ref = trace("heapq")
    for name in ALL_BACKENDS[1:]:
        assert trace(name) == ref


# -- bounded runs and instrumentation -----------------------------------------

@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_run_until_stops_and_resumes(name):
    eng = Engine(backend=name)
    ran = []
    eng.schedule(1.0, ran.append, "early")
    eng.schedule(10.0, ran.append, "late")
    assert eng.run(until=5.0) == 5.0
    assert ran == ["early"]
    assert eng.run() == 10.0
    assert ran == ["early", "late"]


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_bounded_run_counts_events_and_high_water(name):
    """The instrumented twin of the until-loop must see the queue's
    high-water mark and count exactly the executed events."""
    registry = MetricsRegistry(enabled=True)
    with using_metrics(registry):
        eng = Engine(backend=name)
        for i in range(6):
            eng.schedule(float(i), lambda: None)
        eng.schedule(100.0, lambda: None)
        assert eng.run(until=50.0) == 50.0
    assert eng.events_processed == 6          # the t=100 event did not run
    assert eng.heap_high_water == 7           # sampled before the first pop
    assert registry.counter("engine.events").value == 6
    assert registry.gauge("engine.heap_max").value == 7


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_unbounded_instrumented_run_matches_fast_loop(name):
    """Metrics-on and metrics-off runs execute identically; only the
    bookkeeping differs."""

    def run(track):
        registry = MetricsRegistry(enabled=track)
        with using_metrics(registry):
            eng = Engine(backend=name)
            order = []
            for i in range(5):
                eng.schedule(float(i % 2), order.append, i)
            eng.run()
        return order, eng.now, eng.events_processed, eng.heap_high_water

    order_on, now_on, n_on, hw_on = run(True)
    order_off, now_off, n_off, hw_off = run(False)
    assert (order_on, now_on, n_on) == (order_off, now_off, n_off)
    assert hw_on == 5 and hw_off == 0  # high-water only tracked when enabled


def test_engine_global_counter_accumulates():
    before = events_processed_total()
    eng = Engine(backend="calendar")
    eng.schedule(1.0, lambda: None)
    eng.schedule(1.0, lambda: None)
    eng.run()
    assert events_processed_total() - before == 2


# -- exception paths -----------------------------------------------------------

@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_mid_batch_exception_requeues_remainder(name):
    """If an event raises mid-batch, the unexecuted tail returns to the
    queue at the same time; a later run() executes it exactly once."""
    eng = Engine(backend=name)
    ran = []

    def boom():
        raise RuntimeError("boom")

    eng.schedule(1.0, ran.append, "before")
    eng.schedule(1.0, boom)
    eng.schedule(1.0, ran.append, "after")
    with pytest.raises(RuntimeError, match="boom"):
        eng.run()
    assert ran == ["before"]
    eng.run()
    assert ran == ["before", "after"]


@pytest.mark.parametrize("bad_yield, match", [
    (-1.0, "negative delay"),
    (-3, "negative delay"),
    ("nonsense", "unsupported"),
])
def test_raising_step_discards_live_process(bad_yield, match):
    """Regression: a process that dies on a bad yield must leave the
    live set before the exception propagates, so a caller that catches
    the error does not then face a ghost in the deadlock report."""
    eng = Engine()

    def prog():
        yield bad_yield

    proc = eng.spawn(prog())
    with pytest.raises(SimulationError, match=match):
        eng.run()
    assert proc not in eng._live_processes
    # the engine is still usable and deadlock-clean afterwards
    assert eng.run() == eng.now


def test_generator_exception_discards_live_process():
    eng = Engine()

    def prog():
        yield 1.0
        raise ValueError("body blew up")

    proc = eng.spawn(prog())
    with pytest.raises(ValueError, match="body blew up"):
        eng.run()
    assert proc not in eng._live_processes
    assert eng.run() == eng.now


def test_numpy_scalar_negative_delay_discards_live_process():
    np = pytest.importorskip("numpy")
    eng = Engine()

    def prog():
        yield np.float64(-0.5)

    proc = eng.spawn(prog())
    with pytest.raises(SimulationError, match="negative"):
        eng.run()
    assert proc not in eng._live_processes


# -- event wakeups ride the backend -------------------------------------------

@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_event_wakeups_preserve_waiter_order(name):
    """Trigger pushes every waiter through the backend; wakeup order is
    registration order under all of them."""
    eng = Engine(backend=name)
    ev = eng.event()
    woke = []

    def waiter(i):
        yield ev
        woke.append(i)

    for i in range(5):
        eng.spawn(waiter(i))
    eng.schedule(1.0, ev.trigger, None)
    eng.run()
    assert woke == [0, 1, 2, 3, 4]


# -- executor determinism per backend ------------------------------------------

@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_serial_parallel_and_cache_warm_identical(name, tmp_path):
    """Inside the paper range, every backend must produce identical sweep
    values serially, under ``--jobs 2``, and from a warm cache."""
    from repro.exec import ResultCache, SimPoint, SweepExecutor

    sched.set_default_backend(name)
    points = [SimPoint.make("imb", "xeon", p, benchmark="Sendrecv",
                            msg_bytes=4096) for p in (2, 4, 8)]
    serial = SweepExecutor(jobs=1, cache=None).run_points(points)
    with SweepExecutor(jobs=2, cache=None) as ex:
        parallel = ex.run_points(points)
    cold = SweepExecutor(
        jobs=1, cache=ResultCache(tmp_path / "c")).run_points(points)
    warm_ex = SweepExecutor(jobs=1, cache=ResultCache(tmp_path / "c"))
    warm = warm_ex.run_points(points)
    assert warm_ex.cache_hits == len(points)
    assert serial == parallel == cold == warm


# -- macro fast-path switches --------------------------------------------------

def test_macro_fastpath_flag_per_backend(monkeypatch):
    monkeypatch.delenv(sched.BACKEND_ENV, raising=False)
    for name in EXACT_BACKENDS:
        sched.set_default_backend(name)
        assert not sched.macro_fastpath_active()
        assert sched.backend_result_tag() is None
    sched.set_default_backend("macro")
    assert sched.macro_fastpath_active()
    assert sched.backend_result_tag() == (
        f"macro-fastpath>{sched.DEFAULT_MACRO_THRESHOLD}"
    )


def test_macro_threshold_env(monkeypatch):
    monkeypatch.delenv(sched.THRESHOLD_ENV, raising=False)
    assert sched.macro_fastpath_threshold() == sched.DEFAULT_MACRO_THRESHOLD
    monkeypatch.setenv(sched.THRESHOLD_ENV, "64")
    assert sched.macro_fastpath_threshold() == 64
    monkeypatch.setenv(sched.THRESHOLD_ENV, "not-a-number")
    with pytest.raises(ConfigError, match="REPRO_MACRO_THRESHOLD"):
        sched.macro_fastpath_threshold()
    monkeypatch.setenv(sched.THRESHOLD_ENV, "-1")
    with pytest.raises(ConfigError, match=">= 0"):
        sched.macro_fastpath_threshold()
