"""Tests for the parallel sweep executor and result cache (repro.exec)."""

from __future__ import annotations

import json

import pytest

from repro.exec import (
    PointRecord,
    ResultCache,
    SimPoint,
    SweepExecutor,
    compute_point,
    default_jobs,
    get_executor,
    source_fingerprint,
    using_executor,
)
from repro.harness.figures import imb_figure
from repro.harness.report import figure_to_csv
from repro.harness.runner import main as runner_main

CAP = 8  # tiny sweeps keep this fast


# ---------------------------------------------------------------------------
# SimPoint
# ---------------------------------------------------------------------------

def test_simpoint_key_stable_under_param_order():
    a = SimPoint.make("imb", "xeon", 4, benchmark="Alltoall", msg_bytes=1024)
    b = SimPoint.make("imb", "xeon", 4, msg_bytes=1024, benchmark="Alltoall")
    assert a == b
    assert a.key() == b.key()
    assert a.param("msg_bytes") == 1024
    assert a.param("missing", "dflt") == "dflt"


def test_compute_point_unknown_kind():
    with pytest.raises(ValueError, match="unknown simulation point kind"):
        compute_point(SimPoint.make("nope", "xeon", 2))


def test_compute_point_returns_metadata():
    rec = compute_point(
        SimPoint.make("imb", "xeon", 2, benchmark="Sendrecv",
                      msg_bytes=1024))
    assert isinstance(rec, PointRecord)
    assert rec.value.nprocs == 2
    assert rec.events > 0
    assert rec.wall_s >= 0


# ---------------------------------------------------------------------------
# Serial vs parallel determinism
# ---------------------------------------------------------------------------

def test_serial_and_parallel_runs_are_byte_identical():
    with using_executor(SweepExecutor(jobs=1, cache=None)):
        serial = imb_figure("fig13", max_cpus=CAP)
    with SweepExecutor(jobs=2, cache=None) as ex, using_executor(ex):
        parallel = imb_figure("fig13", max_cpus=CAP)
    assert serial == parallel
    assert figure_to_csv(serial) == figure_to_csv(parallel)


def test_executor_preserves_point_order():
    points = [
        SimPoint.make("imb", "xeon", p, benchmark="Sendrecv", msg_bytes=1024)
        for p in (2, 4, 8)
    ]
    ex = SweepExecutor(jobs=1, cache=None)
    values = ex.run_points(points)
    assert [v.nprocs for v in values] == [2, 4, 8]
    assert ex.stats()["points"] == 3
    assert ex.stats()["events"] > 0


# ---------------------------------------------------------------------------
# Cache behaviour
# ---------------------------------------------------------------------------

def test_cache_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    pts = [SimPoint.make("imb", "xeon", p, benchmark="Sendrecv",
                         msg_bytes=1024) for p in (2, 4)]

    ex1 = SweepExecutor(jobs=1, cache=cache)
    first = ex1.run_points(pts)
    assert ex1.cache_misses == 2 and ex1.cache_hits == 0
    assert cache.stores == 2

    cache2 = ResultCache(tmp_path / "cache")
    ex2 = SweepExecutor(jobs=1, cache=cache2)
    second = ex2.run_points(pts)
    assert ex2.cache_hits == 2 and ex2.cache_misses == 0
    assert first == second


def test_cache_fingerprint_change_invalidates(tmp_path):
    root = tmp_path / "cache"
    pt = SimPoint.make("imb", "xeon", 2, benchmark="Sendrecv",
                       msg_bytes=1024)
    rec = compute_point(pt)

    old = ResultCache(root, fingerprint="fp-old")
    old.put(pt, rec)
    assert old.get(pt) is not None

    fresh = ResultCache(root, fingerprint="fp-new")
    assert fresh.get(pt) is None  # busted by the fingerprint change
    assert fresh.misses == 1


def test_cache_clear(tmp_path):
    cache = ResultCache(tmp_path / "cache", fingerprint="fp")
    pt = SimPoint.make("imb", "xeon", 2, benchmark="Sendrecv",
                       msg_bytes=1024)
    cache.put(pt, compute_point(pt))
    assert (tmp_path / "cache").exists()
    cache.clear()
    assert not (tmp_path / "cache").exists()
    assert cache.get(pt) is None


def test_cache_ignores_corrupt_entry(tmp_path):
    cache = ResultCache(tmp_path / "cache", fingerprint="fp")
    pt = SimPoint.make("imb", "xeon", 2, benchmark="Sendrecv",
                       msg_bytes=1024)
    cache.put(pt, compute_point(pt))
    path = cache._path(pt)
    path.write_bytes(b"not a pickle")
    assert cache.get(pt) is None  # treated as a miss, not an error


def test_source_fingerprint_tracks_content(tmp_path):
    tree = tmp_path / "pkg"
    tree.mkdir()
    (tree / "a.py").write_text("x = 1\n")
    fp1 = source_fingerprint(tree)
    (tree / "a.py").write_text("x = 2\n")
    # memoised per root-string: use a distinct tree to observe the change
    tree2 = tmp_path / "pkg2"
    tree2.mkdir()
    (tree2 / "a.py").write_text("x = 2\n")
    fp2 = source_fingerprint(tree2)
    assert fp1 != fp2
    assert len(fp1) == 64


def test_default_executor_is_serial_and_uncached():
    ex = get_executor()
    assert ex.jobs == 1
    assert ex.cache is None


def test_default_jobs_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert default_jobs() == 3
    monkeypatch.setenv("REPRO_JOBS", "zero")
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        default_jobs()


# ---------------------------------------------------------------------------
# Runner CLI integration
# ---------------------------------------------------------------------------

def test_runner_rejects_unknown_figure(capsys):
    rc = runner_main(["--figure", "0"])
    assert rc == 2
    assert "unknown figure" in capsys.readouterr().err


def test_runner_rejects_unknown_table(capsys):
    rc = runner_main(["--table", "9"])
    assert rc == 2
    assert "unknown table" in capsys.readouterr().err


def test_runner_rejects_bad_repro_jobs(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_JOBS", "lots")
    rc = runner_main(["--figure", "13", "--max-cpus", "4", "--no-cache"])
    assert rc == 2
    assert "REPRO_JOBS" in capsys.readouterr().err


def test_runner_rejects_garbage_id(capsys):
    rc = runner_main(["--figure", "abc"])
    assert rc == 2
    assert "invalid figure id" in capsys.readouterr().err


def test_runner_cache_roundtrip_and_bench_json(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    bench1 = tmp_path / "b1.json"
    bench2 = tmp_path / "b2.json"
    base = ["--figure", "13", "--max-cpus", "4", "--cache-dir", cache_dir]

    assert runner_main(base + ["--bench-json", str(bench1)]) == 0
    doc1 = json.loads(bench1.read_text())
    assert doc1["totals"]["cache_misses"] > 0
    assert doc1["totals"]["cache_hits"] == 0

    assert runner_main(base + ["--bench-json", str(bench2)]) == 0
    doc2 = json.loads(bench2.read_text())
    assert doc2["totals"]["cache_misses"] == 0
    assert doc2["totals"]["cache_hits"] == doc1["totals"]["cache_misses"]

    (item,) = doc2["items"]
    assert item["id"] == "fig13"
    assert item["events"] == doc1["items"][0]["events"]
    assert {"wall_s", "points", "events_per_sec"} <= set(item)


def test_runner_cache_clear_flag(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)  # bench/ledger artifacts default to cwd
    cache_dir = tmp_path / "cache"
    base = ["--figure", "13", "--max-cpus", "4", "--cache-dir",
            str(cache_dir)]
    assert runner_main(base) == 0
    assert cache_dir.exists()
    assert runner_main(["--cache-clear", "--cache-dir", str(cache_dir)]) == 0
    assert not cache_dir.exists()


def test_runner_no_cache_flag(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    cache_dir = tmp_path / "cache"
    rc = runner_main(["--figure", "13", "--max-cpus", "4", "--no-cache",
                      "--cache-dir", str(cache_dir)])
    assert rc == 0
    assert not cache_dir.exists()
