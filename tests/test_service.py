"""Tests for the sweep service: job queue, coalescing, spool CLI."""

from __future__ import annotations

import json
import threading

import pytest

from repro.config import ReproConfig
from repro.exec import ResultCache, SweepExecutor, using_executor
from repro.harness.figures import imb_figure
from repro.harness.report import figure_to_csv
from repro.service import JobQueue, PointCoalescer, Spool
from repro.service.__main__ import main as service_main

CAP = 8  # tiny sweeps keep this fast
FIG = "fig13"


def _config(tmp_path, **over):
    return ReproConfig.from_env_and_args(
        jobs=1, exec_backend="inline",
        cache_dir=str(tmp_path / "cache"), **over)


def _serial_points():
    """How many simulation points one FIG sweep costs, computed serially."""
    with SweepExecutor(jobs=1, cache=None, backend="inline") as ex, \
            using_executor(ex):
        imb_figure(FIG, max_cpus=CAP)
        return ex.stats()["points"]


# ---------------------------------------------------------------------------
# PointCoalescer unit behaviour
# ---------------------------------------------------------------------------

def test_coalescer_single_flight():
    co = PointCoalescer()
    first = co.claim("k1")
    second = co.claim("k1")
    other = co.claim("k2")
    assert first.owner and other.owner and not second.owner
    assert co.inflight() == 2
    first.publish("the-record")
    assert second.wait(timeout=1) == "the-record"
    assert co.inflight() == 1
    other.publish("other")
    assert co.stats() == {"owned": 2, "joined": 1, "inflight": 0}


def test_coalescer_owner_failure_wakes_waiters_empty():
    co = PointCoalescer()
    owner = co.claim("k")
    waiter = co.claim("k")
    owner.fail(RuntimeError("boom"))
    assert waiter.wait(timeout=1) is None
    # The key is free again: the next claimant owns a fresh flight.
    assert co.claim("k").owner


def test_coalescer_waiters_block_until_publish():
    co = PointCoalescer()
    owner = co.claim("k")
    waiter = co.claim("k")
    got = []

    def wait():
        got.append(waiter.wait(timeout=5))

    t = threading.Thread(target=wait)
    t.start()
    owner.publish(42)
    t.join(timeout=5)
    assert got == [42]


# ---------------------------------------------------------------------------
# JobQueue lifecycle
# ---------------------------------------------------------------------------

def test_job_lifecycle_and_artifacts(tmp_path):
    with JobQueue(_config(tmp_path), workers=1,
                  artifacts_dir=tmp_path / "art",
                  ledger_path=tmp_path / "ledger.jsonl") as q:
        job_id = q.submit(["13"], max_cpus=CAP)
        doc = q.result(job_id, timeout=120)
    assert doc["state"] == "done"
    assert doc["items"] == [FIG]  # "13" was normalised at submit
    assert doc["error"] is None
    assert doc["stats"]["points"] > 0
    (item,) = doc["item_results"]
    assert item["id"] == FIG and item["points"] == doc["stats"]["points"]
    assert doc["artifacts"], "artifacts were saved"
    assert any(p.endswith(f"{FIG}.csv") for p in doc["artifacts"])
    rows = [json.loads(line)
            for line in (tmp_path / "ledger.jsonl").read_text().splitlines()]
    (row,) = rows
    assert row["service"] == job_id
    assert row["exec_backend"] == "inline"
    assert row["points"] == doc["stats"]["points"]


def test_submit_normalises_and_validates(tmp_path):
    with JobQueue(_config(tmp_path, no_cache=True), workers=1) as q:
        with pytest.raises(ValueError, match="at least one"):
            q.submit([])
        with pytest.raises(ValueError):
            q.submit(["not-an-id"])
        job = q.submit(figures=[13], tables=["2"], max_cpus=CAP)
        doc = q.result(job, timeout=120)
    assert sorted(doc["items"]) == [FIG, "table2"]
    assert doc["state"] == "done"


def test_unknown_job_id(tmp_path):
    with JobQueue(_config(tmp_path, no_cache=True), workers=1) as q:
        with pytest.raises(KeyError, match="unknown job id"):
            q.status("job-9999")


def test_job_failure_is_terminal_not_fatal(tmp_path):
    with JobQueue(_config(tmp_path, no_cache=True), workers=1) as q:
        bad = q.submit(["fig99"], max_cpus=CAP)  # parses, but unregistered
        good = q.submit(["13"], max_cpus=CAP)
        bad_doc = q.result(bad, timeout=120)
        good_doc = q.result(good, timeout=120)
    assert bad_doc["state"] == "failed"
    assert "unknown figure" in bad_doc["error"]
    assert good_doc["state"] == "done"  # the worker survived the failure


def test_stream_ends_at_terminal_event(tmp_path):
    with JobQueue(_config(tmp_path, no_cache=True), workers=1) as q:
        job = q.submit(["13"], max_cpus=CAP)
        kinds = [ev["type"] for ev in q.stream(job, timeout=120)]
    assert kinds[0] == "queued"
    assert kinds[-1] == "done"
    assert "item" in kinds


def test_submit_after_close_rejected(tmp_path):
    q = JobQueue(_config(tmp_path, no_cache=True), workers=1)
    q.close()
    with pytest.raises(RuntimeError, match="closed"):
        q.submit(["13"])


# ---------------------------------------------------------------------------
# Coalescing: concurrent identical jobs cost one computation
# ---------------------------------------------------------------------------

def test_concurrent_identical_jobs_share_one_computation(tmp_path):
    serial_points = _serial_points()
    with JobQueue(_config(tmp_path), workers=2,
                  artifacts_dir=tmp_path / "art") as q:
        a = q.submit([FIG], max_cpus=CAP)
        b = q.submit([FIG], max_cpus=CAP)
        doc_a = q.result(a, timeout=300)
        doc_b = q.result(b, timeout=300)
        stats = q.stats()
    assert doc_a["state"] == doc_b["state"] == "done"
    # Both jobs saw every point...
    assert stats["points"] == 2 * serial_points
    # ...but between the shared cache and in-flight coalescing, the
    # figure was simulated exactly once in total.
    assert stats["computed"] == serial_points
    assert stats["cache_hits"] + stats["coalesced"] == serial_points
    # And both tenants got byte-identical artifacts.
    csv_a = (tmp_path / "art" / a / f"{FIG}.csv").read_bytes()
    csv_b = (tmp_path / "art" / b / f"{FIG}.csv").read_bytes()
    assert csv_a == csv_b


def test_cache_warm_second_job_all_hits(tmp_path):
    cfg = _config(tmp_path)
    with JobQueue(cfg, workers=1) as q:
        q.result(q.submit([FIG], max_cpus=CAP), timeout=120)
    with JobQueue(cfg, workers=1) as q:  # fresh queue, same store
        doc = q.result(q.submit([FIG], max_cpus=CAP), timeout=120)
    assert doc["stats"]["cache_hits"] == doc["stats"]["points"]
    assert doc["stats"]["cache_misses"] == 0


def test_service_output_matches_direct_api(tmp_path):
    with using_executor(SweepExecutor(jobs=1, cache=None)):
        direct = figure_to_csv(imb_figure(FIG, max_cpus=CAP))
    with JobQueue(_config(tmp_path), workers=1,
                  artifacts_dir=tmp_path / "art") as q:
        job = q.submit([FIG], max_cpus=CAP)
        q.result(job, timeout=120)
    served = (tmp_path / "art" / job / f"{FIG}.csv").read_text()
    assert served.replace("\r\n", "\n") == direct.replace("\r\n", "\n")


# ---------------------------------------------------------------------------
# Spool + CLI (python -m repro.service)
# ---------------------------------------------------------------------------

def test_spool_submit_serve_once_status(tmp_path, capsys):
    root = str(tmp_path / "svc")
    args = ["--root", root]
    assert service_main(args + ["submit", "13", "--max-cpus", str(CAP)]) == 0
    request_id = capsys.readouterr().out.strip()

    rc = service_main(args + ["serve", "--once", "--workers", "1",
                              "--jobs", "1", "--exec-backend", "inline",
                              "--cache-dir", str(tmp_path / "cache")])
    assert rc == 0
    assert "[served 1 requests, 0 failed]" in capsys.readouterr().out

    assert service_main(args + ["status", request_id]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["state"] == "done"
    assert doc["items"] == [FIG]
    assert doc["stats"]["points"] > 0
    assert doc["config"]["exec_backend"] == "inline"
    # Artifacts landed under the spool.
    job_dir = tmp_path / "svc" / "artifacts" / doc["job"]
    assert (job_dir / f"{FIG}.csv").is_file()
    # One ledger row for the job.
    ledger = (tmp_path / "svc" / "service_ledger.jsonl").read_text()
    assert len(ledger.splitlines()) == 1


def test_spool_status_listing_and_unknown(tmp_path, capsys):
    root = str(tmp_path / "svc")
    assert service_main(["--root", root, "status"]) == 0
    assert "no jobs" in capsys.readouterr().out
    rc = service_main(["--root", root, "status", "nope"])
    assert rc == 2
    assert "unknown request id" in capsys.readouterr().err


def test_spool_serve_reports_failed_jobs(tmp_path, capsys):
    root = str(tmp_path / "svc")
    assert service_main(["--root", root, "submit", "fig99"]) == 0
    rc = service_main(["--root", root, "serve", "--once", "--workers", "1",
                       "--jobs", "1", "--no-cache"])
    assert rc == 1
    assert "1 failed" in capsys.readouterr().out


def test_spool_serve_rejects_bad_backend(tmp_path, capsys):
    rc = service_main(["--root", str(tmp_path / "svc"), "serve", "--once",
                       "--exec-backend", "bogus"])
    assert rc == 2
    assert "unknown exec backend" in capsys.readouterr().err


def test_spool_gc_collects_terminal_jobs(tmp_path, capsys):
    root = str(tmp_path / "svc")
    cache_dir = str(tmp_path / "cache")
    assert service_main(["--root", root, "submit", "13",
                         "--max-cpus", str(CAP)]) == 0
    assert service_main(["--root", root, "serve", "--once", "--workers",
                         "1", "--jobs", "1",
                         "--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    rc = service_main(["--root", root, "gc", "--older-than-days", "0",
                       "--cache-dir", cache_dir])
    assert rc == 0
    out = capsys.readouterr().out
    assert "removed 1 jobs" in out
    spool = Spool(root)
    assert spool.statuses() == []
    assert not list(spool.artifacts_dir.iterdir())
    # The live cache generation survives gc.
    assert ResultCache(cache_dir).generations()


def test_spool_wait_roundtrip(tmp_path):
    spool = Spool(tmp_path / "svc")
    rid = spool.submit([FIG], max_cpus=CAP)
    assert spool.read_status(rid) is None  # not picked up yet
    with pytest.raises(TimeoutError):
        spool.wait(rid, timeout=0.2, poll_s=0.05)
    assert service_main(["--root", str(tmp_path / "svc"), "serve", "--once",
                         "--workers", "1", "--jobs", "1",
                         "--no-cache"]) == 0
    doc = spool.wait(rid, timeout=5)
    assert doc["state"] == "done"


# ---------------------------------------------------------------------------
# Per-job energy accounting
# ---------------------------------------------------------------------------

def test_job_energy_present_only_when_enabled(tmp_path):
    with JobQueue(_config(tmp_path, no_cache=True), workers=1) as q:
        off = q.result(q.submit([FIG], max_cpus=CAP), timeout=60)
    assert off["state"] == "done"
    assert "energy" not in off  # energy-off jobs never null-pad the field

    with JobQueue(_config(tmp_path, no_cache=True, energy=True),
                  workers=1) as q:
        on = q.result(q.submit([FIG], max_cpus=CAP), timeout=60)
    assert on["state"] == "done"
    assert on["energy"]["runs"] > 0
    assert on["energy"]["total_j"] > 0
    assert on["energy"]["avg_power_w"] > 0


def test_concurrent_jobs_isolate_energy(tmp_path):
    """Two identical energy jobs draining in parallel worker threads must
    each account exactly one sweep — no cross-job joule bleed."""
    with JobQueue(_config(tmp_path, no_cache=True, energy=True),
                  workers=2) as q:
        ids = [q.submit([FIG], max_cpus=CAP) for _ in range(2)]
        docs = [q.result(i, timeout=120) for i in ids]
    assert all(d["state"] == "done" for d in docs)
    blobs = [json.dumps(d["energy"], sort_keys=True) for d in docs]
    assert blobs[0] == blobs[1]  # same work -> byte-identical joules


def test_service_ledger_rows_carry_energy_only_when_enabled(tmp_path):
    ledger = tmp_path / "svc_ledger.jsonl"
    with JobQueue(_config(tmp_path, no_cache=True), workers=1,
                  ledger_path=ledger) as q:
        q.result(q.submit([FIG], max_cpus=CAP), timeout=60)
    with JobQueue(_config(tmp_path, no_cache=True, energy=True), workers=1,
                  ledger_path=ledger) as q:
        q.result(q.submit([FIG], max_cpus=CAP), timeout=60)
    rows = [json.loads(line) for line in ledger.read_text().splitlines()]
    assert len(rows) == 2
    assert "energy_total_j" not in rows[0]
    assert rows[1]["energy_total_j"] > 0
    assert rows[1]["energy_avg_power_w"] > 0


def test_status_listing_prints_unknown_schema_fields(tmp_path, capsys):
    """The plain listing must surface fields it does not know about —
    a newer server's energy stamp shows up instead of vanishing."""
    spool = Spool(tmp_path / "svc").ensure()
    spool.write_status("20260809-000000-abc123", {
        "schema_version": 1, "id": "20260809-000000-abc123",
        "items": [FIG], "state": "done", "wall_s": 1.5,
        "energy": {"total_j": 42.0},
        "novel_field": "from-the-future",
    })
    assert service_main(["--root", str(tmp_path / "svc"), "status"]) == 0
    out = capsys.readouterr().out
    assert 'energy={"total_j": 42.0}' in out
    assert 'novel_field="from-the-future"' in out
