"""Synchronous send and probe semantics."""

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG
from tests.conftest import make_test_machine, run_ranks

M = make_test_machine()


def test_ssend_blocks_until_recv_even_when_small():
    """A 64-byte ssend must synchronise; a plain send would not."""
    def prog(comm, use_ssend):
        if comm.rank == 0:
            if use_ssend:
                yield from comm.ssend(1, nbytes=64)
            else:
                yield from comm.send(1, nbytes=64)
            return comm.now
        yield 1.0  # receive posted late
        yield from comm.recv(0)

    t_ssend = run_ranks(M, 2, prog, True).results[0]
    t_send = run_ranks(M, 2, prog, False).results[0]
    assert t_ssend > 1.0
    assert t_send < 0.1


def test_ssend_delivers_payload():
    def prog(comm):
        if comm.rank == 0:
            yield from comm.ssend(1, data=123.0, nbytes=8, tag=4)
        else:
            res = yield from comm.recv(0, tag=4)
            return res.data

    assert run_ranks(M, 2, prog).results[1] == 123.0


def test_iprobe_reports_envelope_without_consuming():
    def prog(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=256, data="x", tag=9)
        else:
            yield 0.01  # envelope has long arrived
            first = comm.iprobe(0, 9)
            second = comm.iprobe(0, 9)     # still there: non-consuming
            res = yield from comm.recv(0, tag=9)
            after = comm.iprobe(0, 9)      # consumed now
            return first, second, res.data, after

    first, second, data, after = run_ranks(M, 2, prog).results[1]
    assert first == (0, 9, 256)
    assert second == first
    assert data == "x"
    assert after is None


def test_iprobe_none_when_nothing_queued():
    def prog(comm):
        yield from comm.barrier()
        return comm.iprobe(ANY_SOURCE, ANY_TAG)

    assert run_ranks(M, 2, prog).results[0] is None


def test_iprobe_sees_rendezvous_envelope():
    """An RTS counts as a probe-able envelope even before any recv."""
    def prog(comm):
        if comm.rank == 0:
            req = comm.isend(1, nbytes=4 * 1024 * 1024, tag=2)
            yield from comm.recv(1, tag=99)   # wait for the probe report
            yield req
        else:
            yield 0.01
            hit = comm.iprobe(0, 2)
            yield from comm.send(0, nbytes=8, tag=99)
            yield from comm.recv(0, tag=2)
            return hit

    hit = run_ranks(M, 2, prog).results[1]
    assert hit == (0, 2, 4 * 1024 * 1024)


def test_blocking_probe_waits_for_message():
    def prog(comm):
        if comm.rank == 0:
            yield 0.5
            yield from comm.send(1, nbytes=64, tag=3)
        else:
            hit = yield from comm.probe(0, tag=3, poll_interval=1e-3)
            t = comm.now
            yield from comm.recv(0, tag=3)
            return hit, t

    hit, t = run_ranks(M, 2, prog).results[1]
    assert hit[2] == 64
    assert t >= 0.5


def test_probe_ordering_oldest_first():
    def prog(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=10, tag=1)
            yield from comm.send(1, nbytes=20, tag=1)
        else:
            yield 0.01
            hit = comm.iprobe(0, 1)
            return hit

    assert run_ranks(M, 2, prog).results[1] == (0, 1, 10)
