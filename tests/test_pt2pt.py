"""Point-to-point MPI semantics: matching, ordering, protocols."""

import numpy as np
import pytest

from repro.core.errors import DeadlockError, MPIError
from repro.mpi import ANY_SOURCE, ANY_TAG
from tests.conftest import arange_payload, make_test_machine, run_ranks


@pytest.fixture
def m():
    return make_test_machine()


def test_send_recv_delivers_payload(m):
    def prog(comm):
        if comm.rank == 0:
            yield from comm.send(1, data=arange_payload(0), tag=5)
        else:
            res = yield from comm.recv(0, tag=5)
            return res.data, res.source, res.tag, res.nbytes

    out = run_ranks(m, 2, prog)
    data, source, tag, nbytes = out.results[1]
    assert np.array_equal(data, arange_payload(0))
    assert (source, tag, nbytes) == (0, 5, 64)


def test_payload_is_copied_not_aliased(m):
    def prog(comm):
        if comm.rank == 0:
            buf = arange_payload(0)
            req = comm.isend(1, data=buf, tag=0)
            buf[:] = -1.0  # mutate after isend; receiver must see original
            yield req
        else:
            res = yield from comm.recv(0)
            return res.data

    out = run_ranks(m, 2, prog)
    assert np.array_equal(out.results[1], arange_payload(0))


def test_tag_matching_selects_correct_message(m):
    def prog(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=8, data=1.0, tag=10)
            yield from comm.send(1, nbytes=8, data=2.0, tag=20)
        else:
            second = yield from comm.recv(0, tag=20)
            first = yield from comm.recv(0, tag=10)
            return first.data, second.data

    out = run_ranks(m, 2, prog)
    assert out.results[1] == (1.0, 2.0)


def test_non_overtaking_same_tag(m):
    def prog(comm):
        if comm.rank == 0:
            for i in range(4):
                yield from comm.send(1, nbytes=8, data=float(i), tag=7)
        else:
            got = []
            for _ in range(4):
                res = yield from comm.recv(0, tag=7)
                got.append(res.data)
            return got

    out = run_ranks(m, 2, prog)
    assert out.results[1] == [0.0, 1.0, 2.0, 3.0]


def test_any_source_any_tag(m):
    def prog(comm):
        if comm.rank == 0:
            got = []
            for _ in range(2):
                res = yield from comm.recv(ANY_SOURCE, ANY_TAG)
                got.append((res.source, res.data))
            return sorted(got)
        else:
            yield from comm.send(0, nbytes=8, data=float(comm.rank),
                                 tag=comm.rank)

    out = run_ranks(m, 3, prog)
    assert out.results[0] == [(1, 1.0), (2, 2.0)]


def test_unexpected_message_buffered(m):
    """Eager message arrives before the receive is posted."""
    def prog(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=64, data=3.5, tag=1)
        else:
            yield 1.0  # make sure the message arrived long ago
            res = yield from comm.recv(0, tag=1)
            return res.data, comm.now

    out = run_ranks(m, 2, prog)
    data, t = out.results[1]
    assert data == 3.5
    assert t >= 1.0  # completed at post time, not arrival time


def test_rendezvous_sender_blocks_until_recv_posted(m):
    nbytes = 10 * 1024 * 1024  # far above eager threshold

    def prog(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=nbytes)
            return comm.now
        yield 2.0  # delay posting the receive
        yield from comm.recv(0)
        return comm.now

    out = run_ranks(m, 2, prog)
    send_done = out.results[0]
    assert send_done > 2.0  # could not complete before the recv existed


def test_eager_sender_completes_before_recv_posted(m):
    def prog(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=64)
            return comm.now
        yield 2.0
        yield from comm.recv(0)
        return comm.now

    out = run_ranks(m, 2, prog)
    assert out.results[0] < 0.1  # sender long gone


def test_isend_allows_compute_overlap(m):
    nbytes = 1024 * 1024

    def overlapped(comm):
        if comm.rank == 0:
            req = comm.isend(1, nbytes=nbytes)
            yield from comm.elapse(0.5)   # overlapped compute
            yield req
            return comm.now
        yield from comm.recv(0)

    def serial(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=nbytes)
            yield from comm.elapse(0.5)
            return comm.now
        yield from comm.recv(0)

    t_overlap = run_ranks(m, 2, overlapped).results[0]
    t_serial = run_ranks(m, 2, serial).results[0]
    assert t_overlap < t_serial


def test_sendrecv_exchanges(m):
    def prog(comm):
        other = 1 - comm.rank
        res = yield from comm.sendrecv(other, other,
                                       data=float(comm.rank), nbytes=8)
        return res.data

    out = run_ranks(m, 2, prog)
    assert out.results == [1.0, 0.0]


def test_recv_without_send_deadlocks(m):
    def prog(comm):
        if comm.rank == 1:
            yield from comm.recv(0, tag=9)

    with pytest.raises(DeadlockError):
        run_ranks(m, 2, prog)


def test_bad_ranks_rejected(m):
    def prog(comm):
        with pytest.raises(MPIError):
            comm.isend(5, nbytes=8)
        with pytest.raises(MPIError):
            comm.irecv(source=7)
        yield 0.0

    run_ranks(m, 2, prog)


def test_negative_user_tag_rejected(m):
    def prog(comm):
        with pytest.raises(MPIError):
            comm.isend(0, nbytes=8, tag=-3)
        yield 0.0

    run_ranks(m, 2, prog)


def test_nbytes_inference_and_override(m):
    def prog(comm):
        if comm.rank == 0:
            yield from comm.send(1, data=np.zeros(16))          # 128 B
            yield from comm.send(1, data=np.zeros(16), nbytes=4096)
        else:
            a = yield from comm.recv(0)
            b = yield from comm.recv(0)
            return a.nbytes, b.nbytes

    out = run_ranks(m, 2, prog)
    assert out.results[1] == (128, 4096)


def test_missing_nbytes_rejected(m):
    def prog(comm):
        with pytest.raises(MPIError):
            comm.isend(0)  # no data, no nbytes
        yield 0.0

    run_ranks(m, 2, prog)


def test_send_cpu_overheads_serialise(m):
    """N isends from one rank cost at least N * send_overhead of CPU."""
    n = 16
    o_send = m.network.send_overhead_us * 1e-6

    def prog(comm):
        if comm.rank == 0:
            reqs = [comm.isend(1, nbytes=0, tag=i) for i in range(n)]
            t_cpu = comm.cluster.transport.cpu_free_at(comm.world_rank)
            yield from comm.waitall(reqs)
            return t_cpu
        for i in range(n):
            yield from comm.recv(0, tag=i)

    t_cpu = run_ranks(m, 2, prog).results[0]
    assert t_cpu >= n * o_send * 0.999


def test_wildcard_source_reported_correctly(m):
    def prog(comm):
        if comm.rank == 0:
            res = yield from comm.recv(ANY_SOURCE)
            return res.source
        elif comm.rank == 2:
            yield from comm.send(0, nbytes=8)

    out = run_ranks(m, 3, prog)
    assert out.results[0] == 2


def test_intra_node_faster_than_inter_node():
    m = make_test_machine(cpus_per_node=2)
    nbytes = 1024 * 1024

    def prog(comm, partner):
        if comm.rank == 0:
            t0 = comm.now
            yield from comm.send(partner, nbytes=nbytes)
            res = yield from comm.recv(partner)
            return comm.now - t0
        elif comm.rank == partner:
            res = yield from comm.recv(0)
            yield from comm.send(0, nbytes=nbytes)

    t_intra = run_ranks(m, 4, prog, 1).results[0]   # same node
    t_inter = run_ranks(m, 4, prog, 2).results[0]   # across nodes
    assert t_intra < t_inter


def test_non_overtaking_across_protocols_queued(m):
    """A rendezvous message sent before an eager one (same src/tag) must
    be received first even though its payload takes longer to move."""
    def prog(comm):
        if comm.rank == 0:
            r1 = comm.isend(1, nbytes=1 << 20, data="LARGE", tag=5)
            r2 = comm.isend(1, nbytes=64, data="small", tag=5)
            yield from comm.waitall([r1, r2])
        else:
            yield 0.01  # both envelopes queue before the receives post
            a = yield from comm.recv(0, tag=5)
            b = yield from comm.recv(0, tag=5)
            return a.data, b.data

    assert run_ranks(m, 2, prog).results[1] == ("LARGE", "small")


def test_non_overtaking_across_protocols_posted(m):
    """Same rule when the receives are posted before the sends land."""
    def prog(comm):
        if comm.rank == 0:
            yield 0.001
            r1 = comm.isend(1, nbytes=1 << 20, data="LARGE", tag=5)
            r2 = comm.isend(1, nbytes=64, data="small", tag=5)
            yield from comm.waitall([r1, r2])
        else:
            a = yield from comm.recv(0, tag=5)
            b = yield from comm.recv(0, tag=5)
            return a.data, b.data

    assert run_ranks(m, 2, prog).results[1] == ("LARGE", "small")


def test_eager_recv_waits_for_payload_not_just_envelope(m):
    """Matching happens at envelope time, completion at payload time."""
    nbytes = 4 * 1024 * 1024
    import dataclasses
    net = dataclasses.replace(m.network, eager_threshold=1 << 30)
    eager_m = dataclasses.replace(m, network=net)

    def prog(comm):
        if comm.rank == 0:
            yield from comm.send(2, nbytes=nbytes)
        elif comm.rank == 2:
            res = yield from comm.recv(0)
            return comm.now

    t = run_ranks(eager_m, 4, prog).results[2]
    wire_time = nbytes / eager_m.fabric_params().effective_point_bw
    assert t >= wire_time  # cannot complete before the bytes moved
