"""Property-based tests (hypothesis) on the scenario layer.

Three families, per the scenario subsystem's contracts:

* asymmetric reference comparison is *order-correct*: the classification
  ("below" / "ok" / "above") always agrees with the interval arithmetic,
  including negative reference values and one-sided (``None``) bounds;
* the tolerance manifest round trip is lossless: references written into
  the generated ``TOLERANCES.json`` document parse back equal, even
  through an actual JSON encode/decode;
* malformed scenario TOML always surfaces as :class:`ScenarioError`
  naming the offending file — never a raw traceback from the parser.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import Reference, ScenarioError
from repro.scenarios.manifest_sync import (
    generate_manifest_doc,
    parse_manifest_references,
    render_manifest,
)
from repro.scenarios.toml_loader import load_toml_scenario

finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e12, max_value=1e12)
tol = st.one_of(st.none(), st.floats(min_value=0, max_value=10,
                                     allow_nan=False))


# -- reference comparison order-correctness ----------------------------------

@given(value=finite, lower=tol, upper=tol, actual=finite)
def test_reference_check_agrees_with_bounds(value, lower, upper, actual):
    ref = Reference(value, lower, upper)
    lo, hi = ref.bounds()
    verdict = ref.check(actual)
    if verdict == "below":
        assert lo is not None and actual < lo
    elif verdict == "above":
        assert hi is not None and actual > hi
    else:
        assert verdict == "ok"
        assert lo is None or actual >= lo
        assert hi is None or actual <= hi


@given(value=finite, lower=tol, upper=tol)
def test_reference_interval_is_ordered_and_contains_value(value, lower, upper):
    """|value| scaling keeps lo <= value <= hi even for negative values,
    so the reference itself always passes its own check."""
    ref = Reference(value, lower, upper)
    lo, hi = ref.bounds()
    if lo is not None:
        assert lo <= value
    if hi is not None:
        assert hi >= value
    assert ref.check(value) == "ok"


@given(value=finite, lower=tol, upper=tol, actual=finite)
def test_reference_bounds_are_inclusive(value, lower, upper, actual):
    ref = Reference(value, lower, upper)
    lo, hi = ref.bounds()
    if lo is not None:
        assert ref.check(lo) != "below"
    if hi is not None:
        assert ref.check(hi) != "above"


@given(value=finite, lower=st.floats(min_value=0, max_value=10,
                                     allow_nan=False))
def test_one_sided_reference_is_unbounded_on_the_none_side(value, lower):
    ref = Reference(value, lower_tol=lower, upper_tol=None)
    assert ref.check(value + 10 * abs(value) + 1e15) == "ok"


@given(value=finite, bad=st.floats(max_value=-1e-9, allow_nan=False))
def test_negative_tolerance_rejected(value, bad):
    with pytest.raises(ScenarioError):
        Reference(value, lower_tol=bad)


# -- manifest round trip -----------------------------------------------------

@given(value=finite, lower=tol, upper=tol)
def test_reference_json_roundtrip_is_lossless(value, lower, upper):
    ref = Reference(value, lower, upper)
    assert Reference.from_obj(ref.to_json()) == ref
    # ... and through an actual JSON encode/decode.
    assert Reference.from_obj(json.loads(json.dumps(ref.to_json()))) == ref


def test_manifest_roundtrip_recovers_scenario_references():
    from repro.scenarios import paper_scenarios

    doc = json.loads(render_manifest(generate_manifest_doc()))
    parsed = parse_manifest_references(doc)
    declared = {s.scenario_id: s.references
                for s in paper_scenarios() if s.references}
    assert parsed == declared


# -- malformed TOML is a usage error, never a traceback ----------------------

VALID = """\
[scenario]
id = "prop_check"

[machines.xeon]

[workload]
kind = "imb"
benchmark = "Bcast"
"""

#: Structured corruptions: each must fail, and fail as ScenarioError.
CORRUPTIONS = [
    "",                                              # empty file
    "not toml at all [",                             # TOML syntax error
    "[scenario]\nid = 3",                            # wrong id type
    VALID.replace('id = "prop_check"', ""),          # missing id
    VALID.replace("[workload]", "[payload]"),        # unknown root table
    VALID.replace('kind = "imb"', 'kind = "mpi"'),   # unknown workload kind
    VALID.replace('benchmark = "Bcast"',
                  'benchmark = "Telepathy"'),        # unknown benchmark
    VALID.replace("[machines.xeon]",
                  "[machines.bad]\nbase = \"xeon\""),  # base without max_cpus
    VALID + "[grid]\ncounts = [0]\n",                # non-positive count
    VALID + "[tolerance]\nmode = \"vibes\"\n",       # unknown tolerance mode
    VALID + "[references]\nxeon = 3\n",              # non-table references
    VALID + "[workload.fault]\nkind = \"slow_node\"\n",  # fault w/o factor
    VALID + "unknown_key = 1\n",                     # unknown scenario key
]


@pytest.mark.parametrize("text", CORRUPTIONS)
def test_malformed_toml_raises_scenario_error_naming_the_file(tmp_path, text):
    path = tmp_path / "broken.toml"
    path.write_text(text)
    with pytest.raises(ScenarioError) as exc:
        load_toml_scenario(path)
    assert "broken.toml" in str(exc.value)


@settings(max_examples=50, deadline=None)
@given(st.text(max_size=200))
def test_arbitrary_text_never_escapes_scenario_error(tmp_path_factory, text):
    path = tmp_path_factory.mktemp("fuzz") / "fuzz.toml"
    path.write_text(text, encoding="utf-8")
    try:
        load_toml_scenario(path)
    except ScenarioError as e:
        assert "fuzz.toml" in str(e)
    # Anything else propagating (TOMLDecodeError, KeyError, ...) fails.
