"""HPCC EP-STREAM, EP-DGEMM and random-ring benchmark tests."""

import numpy as np
import pytest

from repro import get_machine
from repro.core.errors import BenchmarkError
from repro.hpcc import (
    DgemmConfig,
    RingConfig,
    StreamConfig,
    run_dgemm,
    run_ring,
    run_stream,
)
from tests.conftest import make_test_machine

M = make_test_machine()


# -- STREAM -----------------------------------------------------------------------

def test_stream_copy_matches_machine_spec():
    res = run_stream(M, 4)
    # test machine: 2.0 GB/s copy, full-node scale 1.0
    assert res.copy_gbs == pytest.approx(2.0, rel=0.01)
    assert res.system_copy_gbs == pytest.approx(8.0, rel=0.01)


def test_stream_triad_slower_or_equal_than_copy_rate_basis():
    res = run_stream(M, 2)
    assert res.triad_gbs <= res.copy_gbs * 1.5 + 1e-9
    assert res.add_gbs > 0 and res.scale_gbs > 0


def test_stream_node_scale_applied():
    m = make_test_machine()
    import dataclasses
    node = dataclasses.replace(m.node, stream_node_scale=0.5)
    m2 = dataclasses.replace(m, node=node)
    assert run_stream(m2, 2).copy_gbs == pytest.approx(1.0, rel=0.01)


def test_stream_validate_mode_runs_real_kernels():
    res = run_stream(M, 2, StreamConfig(validate=True, n_elements=1000,
                                        validate_elements=256))
    assert res.copy_gbs > 0


def test_stream_rejects_empty_arrays():
    with pytest.raises(BenchmarkError):
        run_stream(M, 2, StreamConfig(n_elements=0))


def test_sx8_stream_anchor():
    """Paper Fig 4: NEC SX-8 sustains > 2.67 Byte per HPL flop."""
    m = get_machine("sx8")
    res = run_stream(m, 8)
    hpl_flops = m.processor.peak_gflops * m.processor.hpl_eff
    assert res.copy_gbs / hpl_flops > 2.67


def test_stream_vector_vs_scalar_gap():
    """An order of magnitude between SX-8 and the scalar systems."""
    sx8 = run_stream(get_machine("sx8"), 8).copy_gbs
    xeon = run_stream(get_machine("xeon"), 8).copy_gbs
    assert sx8 / xeon > 10


# -- DGEMM ------------------------------------------------------------------------

def test_dgemm_rate_matches_spec():
    res = run_dgemm(M, 4)
    assert res.gflops_per_proc == pytest.approx(4.0 * 0.9, rel=0.01)
    assert res.system_gflops == pytest.approx(4 * 3.6, rel=0.01)


def test_dgemm_validate_mode():
    res = run_dgemm(M, 2, DgemmConfig(validate=True, validate_n=16))
    assert res.gflops_per_proc > 0


def test_dgemm_rejects_bad_n():
    with pytest.raises(BenchmarkError):
        run_dgemm(M, 2, DgemmConfig(n=0))


@pytest.mark.parametrize("name,expected", [
    ("sx8", 16.0 * 0.96),
    ("opteron", 4.0 * 0.90),
    ("altix_nl4", 6.4 * 0.92),
])
def test_dgemm_paper_machines(name, expected):
    res = run_dgemm(get_machine(name), 4)
    assert res.gflops_per_proc == pytest.approx(expected, rel=0.01)


# -- random ring ---------------------------------------------------------------------

def test_ring_single_rank_trivial():
    res = run_ring(M, 1)
    assert res.latency_us == 0.0


def test_ring_bandwidth_below_link_rate():
    res = run_ring(M, 8, RingConfig(n_rings=3))
    # per-CPU send bandwidth cannot exceed the per-node NIC rate
    assert 0 < res.bandwidth_gbs < 1.0


def test_ring_latency_exceeds_base_latency():
    res = run_ring(M, 8, RingConfig(n_rings=3))
    assert res.latency_us > M.network.base_latency_us


def test_natural_ring_beats_random_ring():
    """Natural rings keep one neighbour on-node: more bandwidth."""
    mach = make_test_machine(cpus_per_node=4)
    natural = run_ring(mach, 16, RingConfig(n_rings=3, random_order=False))
    random_ = run_ring(mach, 16, RingConfig(n_rings=3, random_order=True))
    assert natural.bandwidth_gbs >= random_.bandwidth_gbs


def test_ring_deterministic_across_runs():
    a = run_ring(M, 8, RingConfig(n_rings=2))
    b = run_ring(M, 8, RingConfig(n_rings=2))
    assert a.bandwidth_gbs == b.bandwidth_gbs
    assert a.latency_us == b.latency_us


def test_ring_accumulated_scales():
    res = run_ring(M, 8, RingConfig(n_rings=2))
    assert res.accumulated_gbs == pytest.approx(8 * res.bandwidth_gbs)


def test_altix_best_ring_latency_among_paper_machines():
    """Paper Table 3: the Altix has the lowest random-ring latency."""
    lats = {}
    for name in ("altix_nl4", "sx8", "xeon", "opteron"):
        m = get_machine(name)
        lats[name] = run_ring(m, 16, RingConfig(n_rings=3)).latency_us
    assert min(lats, key=lats.get) == "altix_nl4"
