"""Moderate-scale smoke tests: the engine must handle thousands of ranks."""

import pytest

from repro import Cluster, get_machine
from repro.imb import run_benchmark
from tests.conftest import make_test_machine


def test_thousand_rank_barrier():
    m = make_test_machine(max_cpus=1024)

    def prog(comm):
        yield from comm.barrier()
        return comm.now

    res = Cluster(m, 1024).run(prog)
    # everyone leaves the barrier at a single, positive instant
    assert len(set(res.results)) <= 3
    assert res.elapsed > 0


def test_altix_full_machine_allreduce():
    """2024 ranks on the four-box Altix — the paper's largest run."""
    m = get_machine("altix_nl4")
    res = run_benchmark(m, "Allreduce", 2024, 8 * 1024)
    assert res.time_us > 0


def test_sx8_full_machine_bcast():
    m = get_machine("sx8")
    res = run_benchmark(m, "Bcast", 576, 64 * 1024)
    assert res.time_us > 0


def test_large_run_deterministic():
    m = make_test_machine(max_cpus=512)

    def prog(comm):
        yield from comm.allreduce(nbytes=4096)
        yield from comm.bcast(nbytes=65536, root=3)
        return comm.now

    a = Cluster(m, 512).run(prog).elapsed
    b = Cluster(m, 512).run(prog).elapsed
    assert a == b


def test_many_sequential_runs_do_not_leak_state():
    m = make_test_machine()
    cluster = Cluster(m, 8)

    def prog(comm):
        yield from comm.barrier()
        return comm.now

    times = [cluster.run(prog).elapsed for _ in range(5)]
    assert len(set(times)) == 1  # identical fresh runs every time
