"""scan/exscan and gatherv/scatterv correctness."""

import numpy as np
import pytest

from repro.core.errors import MPIError
from repro.mpi import MAX, SUM
from tests.conftest import make_test_machine, run_ranks

M = make_test_machine(cpus_per_node=2, max_cpus=64)

SIZES = [1, 2, 3, 4, 5, 7, 8, 13, 16]


@pytest.mark.parametrize("p", SIZES)
def test_scan_inclusive_prefix_sums(p):
    def prog(comm):
        out = yield from comm.scan(data=np.array([float(comm.rank + 1)]),
                                   op=SUM)
        return float(out[0])

    out = run_ranks(M, p, prog)
    for r in range(p):
        assert out.results[r] == sum(range(1, r + 2)), r


@pytest.mark.parametrize("p", SIZES)
def test_exscan_exclusive_prefix_sums(p):
    def prog(comm):
        out = yield from comm.exscan(data=np.array([float(comm.rank + 1)]),
                                     op=SUM)
        return None if out is None else float(out[0])

    out = run_ranks(M, p, prog)
    assert out.results[0] is None
    for r in range(1, p):
        assert out.results[r] == sum(range(1, r + 1)), r


def test_scan_with_max_operator():
    p = 9
    vals = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0]

    def prog(comm):
        out = yield from comm.scan(data=np.array([vals[comm.rank]]), op=MAX)
        return float(out[0])

    out = run_ranks(M, p, prog)
    running = np.maximum.accumulate(vals)
    assert list(out.results) == list(running)


def test_scan_vector_payload():
    p = 6

    def prog(comm):
        data = np.arange(4.0) * (comm.rank + 1)
        out = yield from comm.scan(data=data, op=SUM)
        return out

    out = run_ranks(M, p, prog)
    for r in range(p):
        scale = sum(range(1, r + 2))
        assert np.allclose(out.results[r], np.arange(4.0) * scale)


@pytest.mark.parametrize("p", [2, 3, 5, 8])
@pytest.mark.parametrize("root", [0, 1])
def test_gatherv_variable_sizes(p, root):
    counts = [8 * (r + 1) for r in range(p)]

    def prog(comm):
        data = np.full(comm.rank + 1, float(comm.rank))
        out = yield from comm.gatherv(data=data, counts=counts, root=root)
        return out

    out = run_ranks(M, p, prog)
    gathered = out.results[root]
    for r in range(p):
        assert np.array_equal(gathered[r], np.full(r + 1, float(r)))
    for r in range(p):
        if r != root:
            assert out.results[r] is None


@pytest.mark.parametrize("p", [2, 3, 5, 8])
@pytest.mark.parametrize("root", [0, 1])
def test_scatterv_variable_sizes(p, root):
    counts = [8 * (r + 1) for r in range(p)]

    def prog(comm):
        datas = None
        if comm.rank == root:
            datas = [np.full(r + 1, float(r * 7)) for r in range(p)]
        out = yield from comm.scatterv(datas=datas, counts=counts, root=root)
        return out

    out = run_ranks(M, p, prog)
    for r in range(p):
        assert np.array_equal(out.results[r], np.full(r + 1, float(r * 7)))


def test_gatherv_scatterv_roundtrip():
    p = 7
    counts = [8 * ((r % 3) + 1) for r in range(p)]

    def prog(comm):
        data = np.full((comm.rank % 3) + 1, float(comm.rank))
        gathered = yield from comm.gatherv(data=data, counts=counts, root=0)
        back = yield from comm.scatterv(datas=gathered, counts=counts, root=0)
        return back

    out = run_ranks(M, p, prog)
    for r in range(p):
        assert np.array_equal(out.results[r],
                              np.full((r % 3) + 1, float(r)))


def test_gatherv_requires_counts():
    def prog(comm):
        with pytest.raises(MPIError, match="counts"):
            yield from comm.gatherv(data=np.zeros(2))

    run_ranks(M, 2, prog)


def test_scatterv_wrong_count_length():
    def prog(comm):
        with pytest.raises(MPIError):
            yield from comm.scatterv(datas=None, counts=[8])

    run_ranks(M, 3, prog)


def test_scan_traffic_structure():
    """Recursive-doubling scan: ~P*log2(P) messages."""
    import math
    p = 8

    def prog(comm):
        yield from comm.scan(nbytes=64)

    res = run_ranks(M, p, prog, trace=True)
    assert res.tracer.message_count == p * math.log2(p)
