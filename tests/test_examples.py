"""Smoke-run every example script as a subprocess."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))

#: Examples that sweep larger configurations get a longer leash.
TIMEOUTS = {"future_systems.py": 600, "climate_fft_workload.py": 300,
            "hpl_tuning.py": 600, "checkpoint_io.py": 300}


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script: Path):
    timeout = TIMEOUTS.get(script.name, 180)
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "compare_interconnects.py",
            "custom_machine.py", "climate_fft_workload.py",
            "rma_halo_exchange.py", "future_systems.py"} <= names
