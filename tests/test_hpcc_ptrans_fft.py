"""G-PTRANS and G-FFTE tests: numeric validation and timing sanity."""

import numpy as np
import pytest

from repro import get_machine
from repro.core.errors import BenchmarkError
from repro.hpcc.fft import FFTConfig, fft_program, run_fft
from repro.hpcc.ptrans import (
    PtransConfig,
    _block_starts,
    process_grid,
    ptrans_program,
    reference_ptrans,
    run_ptrans,
)
from repro.mpi.cluster import Cluster
from tests.conftest import make_test_machine

M = make_test_machine(cpus_per_node=2, max_cpus=64)


# -- process grid -------------------------------------------------------------------

@pytest.mark.parametrize("p,grid", [
    (1, (1, 1)), (2, (1, 2)), (4, (2, 2)), (6, (2, 3)),
    (12, (3, 4)), (16, (4, 4)), (64, (8, 8)), (48, (6, 8)),
])
def test_process_grid_near_square(p, grid):
    assert process_grid(p) == grid


def test_block_starts_cover_range():
    starts = _block_starts(10, 3)
    assert starts == [0, 4, 7, 10]


# -- PTRANS -------------------------------------------------------------------------

@pytest.mark.parametrize("p", [1, 2, 4, 6, 9, 12])
def test_ptrans_validates_against_numpy(p):
    n = 36
    cl = Cluster(M, p)
    out = cl.run(ptrans_program, PtransConfig(n=n, validate=True))
    ref = reference_ptrans(n, cl.seed)
    pr, pc = process_grid(p)
    rs, cs = _block_starts(n, pr), _block_starts(n, pc)
    for rank, (_el, a) in enumerate(out.results):
        i, j = divmod(rank, pc)
        assert np.allclose(a, ref[rs[i]:rs[i + 1], cs[j]:cs[j + 1]]), rank


def test_ptrans_square_grid_is_pairwise():
    """On a square grid each rank exchanges with exactly one partner."""
    cl = Cluster(M, 4, trace=True)
    cl.run(ptrans_program, PtransConfig(n=32))
    big = [m for m in cl.tracer.messages if m.nbytes > 100]
    # off-diagonal ranks 1 and 2 exchange; diagonal ranks self-contained
    pairs = {(m.src, m.dst) for m in big}
    assert pairs == {(1, 2), (2, 1)}


def test_ptrans_gbs_positive_and_finite():
    res = run_ptrans(M, 8, PtransConfig(n=256))
    assert 0 < res.gbs < 1e6
    assert res.elapsed > 0


def test_ptrans_needs_enough_rows():
    with pytest.raises(BenchmarkError):
        run_ptrans(M, 8, PtransConfig(n=4))


def test_ptrans_deterministic():
    a = run_ptrans(M, 6, PtransConfig(n=120)).gbs
    b = run_ptrans(M, 6, PtransConfig(n=120)).gbs
    assert a == b


def test_ptrans_sx8_beats_xeon():
    """Paper: SX-8 dominates PTRANS (memory + network bandwidth)."""
    n = 1024
    sx8 = run_ptrans(get_machine("sx8"), 16, PtransConfig(n=n)).gbs
    xeon = run_ptrans(get_machine("xeon"), 16, PtransConfig(n=n)).gbs
    assert sx8 > 5 * xeon


# -- FFT ----------------------------------------------------------------------------

@pytest.mark.parametrize("p", [1, 2, 4, 8])
def test_fft_validates_against_numpy(p):
    n = p * p * 8
    cl = Cluster(M, p)
    out = cl.run(fft_program, FFTConfig(total_elements=n, validate=True))
    rng_seeded = cl.seed
    from repro.core.rng import make_rng
    rng = make_rng(rng_seeded, 333)
    x = rng.random(n) + 1j * rng.random(n)
    ref = np.fft.fft(x)
    n_local = n // p
    for rank, (_el, slice_) in enumerate(out.results):
        assert np.allclose(slice_, ref[rank * n_local:(rank + 1) * n_local])


def test_fft_divisibility_enforced():
    with pytest.raises(BenchmarkError):
        Cluster(M, 3).run(fft_program, FFTConfig(total_elements=64))


def test_fft_gflops_accounting():
    res = run_fft(M, 4, FFTConfig(total_elements=1 << 12))
    import math
    expected_flops = 5 * (1 << 12) * math.log2(1 << 12)
    assert res.gflops == pytest.approx(expected_flops / res.elapsed / 1e9)


def test_fft_macro_close_to_algorithmic():
    cfg = FFTConfig(total_elements=1 << 14)
    alg = run_fft(M, 8, cfg, mode="algorithmic")
    mac = run_fft(M, 8, cfg, mode="macro")
    assert mac.elapsed == pytest.approx(alg.elapsed, rel=0.6)


def test_fft_auto_switches_to_macro_at_scale():
    m = get_machine("xeon")
    res = run_fft(m, 512, FFTConfig(total_elements=512 * 512 * 4),
                  mode="auto")
    assert res.gflops > 0


def test_fft_alltoall_dominated_on_slow_network():
    """G-FFT tracks alltoall performance (paper Fig 12 discussion)."""
    n = 1 << 14
    sx8 = run_fft(get_machine("sx8"), 8, FFTConfig(total_elements=n))
    opt = run_fft(get_machine("opteron"), 8, FFTConfig(total_elements=n))
    assert sx8.gflops > opt.gflops
