"""Filesystem model and MPI-IO tests."""

import pytest

from repro import Cluster, get_machine
from repro.core.errors import ConfigError, MPIError
from repro.imb import run_benchmark
from repro.imb.io_benchmarks import IO_BENCHMARKS
from repro.io import (
    DEFAULT_FILESYSTEM,
    HLRS_FILESYSTEM,
    FileSystemModel,
    FileSystemSpec,
    file_open,
)
from tests.conftest import make_test_machine

M = make_test_machine(cpus_per_node=2)
MB = 1024 * 1024


# -- filesystem model -----------------------------------------------------------

def test_spec_validation():
    with pytest.raises(ConfigError):
        FileSystemSpec(n_servers=0)
    with pytest.raises(ConfigError):
        FileSystemSpec(server_mbs=-1)
    with pytest.raises(ConfigError):
        FileSystemSpec(stripe_size=0)


def test_hlrs_spec_matches_paper():
    """16 file systems at 400-600 MB/s each (paper section 2.5)."""
    assert HLRS_FILESYSTEM.n_servers == 16
    assert 400 <= HLRS_FILESYSTEM.server_mbs <= 600
    assert 6400 <= HLRS_FILESYSTEM.aggregate_mbs <= 9600


def test_single_stream_capped_by_client():
    fs = FileSystemModel(DEFAULT_FILESYSTEM, n_nodes=2)
    end = fs.transfer(0, 0, 400 * MB, 0.0)
    client_time = 400 * MB / (DEFAULT_FILESYSTEM.client_gbs * 1e9)
    assert end == pytest.approx(client_time, rel=0.05)


def test_aggregate_capped_by_servers():
    spec = FileSystemSpec(n_servers=2, server_mbs=100.0, client_gbs=10.0)
    fs = FileSystemModel(spec, n_nodes=8)
    ends = [fs.transfer(n, n * 64 * MB, 64 * MB, 0.0) for n in range(8)]
    total = 8 * 64 * MB
    ideal = total / (spec.aggregate_mbs * 1e6)
    assert max(ends) == pytest.approx(ideal, rel=0.1)


def test_striping_spreads_over_servers():
    spec = FileSystemSpec(n_servers=4, server_mbs=100.0, client_gbs=100.0,
                          stripe_size=MB)
    fs = FileSystemModel(spec, n_nodes=1)
    fs.transfer(0, 0, 4 * MB, 0.0)
    assert all(s.bytes_served == MB for s in fs.servers)


# -- MPI-IO -----------------------------------------------------------------------

def test_write_read_roundtrip_contents():
    def prog(comm):
        f = yield from file_open(comm, verify=True)
        payload = bytes([comm.rank + 1]) * 16
        yield from f.write_at(comm.rank * 16, data=payload)
        yield from comm.barrier()
        got = yield from f.read_at(0, 16 * comm.size)
        yield from f.close()
        return got

    out = Cluster(M, 3).run(prog)
    expect = b"\x01" * 16 + b"\x02" * 16 + b"\x03" * 16
    assert out.results[0] == expect


def test_collective_write_contents():
    def prog(comm):
        f = yield from file_open(comm, verify=True)
        payload = bytes([comm.rank + 65]) * 4   # 'A', 'B', ...
        yield from f.write_at_all(comm.rank * 4, data=payload)
        got = yield from f.read_at_all(comm.rank * 4, 4)
        yield from f.close()
        return got

    out = Cluster(M, 4).run(prog)
    assert [r for r in out.results] == [b"AAAA", b"BBBB", b"CCCC", b"DDDD"]


def test_io_on_closed_file_rejected():
    def prog(comm):
        f = yield from file_open(comm)
        yield from f.close()
        with pytest.raises(MPIError, match="closed"):
            yield from f.write_at(0, nbytes=8)

    Cluster(M, 2).run(prog)


def test_negative_offset_rejected():
    def prog(comm):
        f = yield from file_open(comm)
        with pytest.raises(MPIError):
            yield from f.write_at(-1, nbytes=8)
        yield from f.close()

    Cluster(M, 2).run(prog)


def test_open_close_cost_metadata_latency():
    def prog(comm):
        t0 = comm.now
        f = yield from file_open(comm)
        yield from f.close()
        return comm.now - t0

    t = Cluster(M, 2).run(prog).results[0]
    assert t >= 2 * DEFAULT_FILESYSTEM.metadata_latency_us * 1e-6


# -- IMB-IO benchmarks ---------------------------------------------------------------

@pytest.mark.parametrize("name", IO_BENCHMARKS)
def test_io_benchmarks_run(name):
    res = run_benchmark(M, name, 4, MB)
    assert res.time_us > 0
    assert res.bandwidth_mbs > 0


def test_single_writer_hits_client_cap():
    res = run_benchmark(get_machine("sx8"), "S_Write_indv", 8, 16 * MB)
    cap = HLRS_FILESYSTEM.client_gbs * 1000  # MB/s
    assert res.bandwidth_mbs == pytest.approx(cap, rel=0.15)


def test_parallel_write_aggregate_exceeds_single():
    single = run_benchmark(M, "S_Write_indv", 8, 4 * MB)
    parallel = run_benchmark(M, "P_Write_indv", 8, 4 * MB)
    aggregate = parallel.bandwidth_mbs * 8
    assert aggregate > 1.5 * single.bandwidth_mbs


def test_parallel_write_saturates_at_server_total():
    spec = DEFAULT_FILESYSTEM
    res = run_benchmark(M, "P_Write_indv", 32, 4 * MB)
    aggregate = res.bandwidth_mbs * 32
    cap = min(spec.aggregate_mbs,
              16 * spec.client_gbs * 1000)  # 16 nodes at 2 cpus/node
    assert aggregate <= cap * 1.1
