"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import NetworkSpec, NodeSpec, ProcessorSpec
from repro.machine.system import MachineSpec
from repro.mpi.cluster import Cluster


def make_test_machine(
    *,
    cpus_per_node: int = 2,
    max_cpus: int = 64,
    link_gbs: float = 1.0,
    nic_gbs: float = 1.0,
    base_latency_us: float = 2.0,
    eager_threshold: int = 8192,
    duplex_factor: float = 2.0,
    topology_kind: str = "crossbar",
    **net_kw,
) -> MachineSpec:
    """A small synthetic machine with round numbers for exact assertions."""
    proc = ProcessorSpec(
        name="TestProc",
        clock_ghz=1.0,
        peak_gflops=4.0,
        is_vector=False,
        dgemm_eff=0.9,
        hpl_eff=0.8,
        fft_eff=0.1,
        stream_copy_gbs=2.0,
        stream_triad_gbs=2.0,
        random_update_gups=0.01,
    )
    node = NodeSpec(
        cpus=cpus_per_node,
        memory_gb=4.0,
        shm_flow_gbs=2.0,
        shm_node_gbs=4.0,
        shm_latency_us=0.5,
        memcpy_gbs=4.0,
    )
    net = NetworkSpec(
        name="TestNet",
        topology_kind=topology_kind,
        link_gbs=link_gbs,
        nic_gbs=nic_gbs,
        base_latency_us=base_latency_us,
        per_hop_latency_us=0.1,
        send_overhead_us=0.2,
        recv_overhead_us=0.2,
        eager_threshold=eager_threshold,
        bw_efficiency=1.0,
        duplex_factor=duplex_factor,
        **net_kw,
    )
    return MachineSpec(
        name="testbox",
        label="Test Box",
        system_type="Scalar",
        processor=proc,
        node=node,
        network=net,
        max_cpus=max_cpus,
    )


@pytest.fixture
def test_machine() -> MachineSpec:
    return make_test_machine()


def run_ranks(machine: MachineSpec, nprocs: int, program, *args,
              trace: bool = False, seed: int | None = None, **kwargs):
    """Run a rank program and return the RunResult."""
    return Cluster(machine, nprocs, trace=trace, seed=seed).run(
        program, *args, **kwargs
    )


def arange_payload(rank: int, n: int = 8) -> np.ndarray:
    """A distinct, recognisable payload per rank."""
    return np.arange(n, dtype=np.float64) + 100.0 * rank
