"""The tutorial's code snippets must actually work as written."""

import dataclasses

import numpy as np
import pytest

from repro import Cluster, SUM, get_machine
from repro.analysis import (
    fit_report,
    format_report,
    utilization_report,
    write_chrome_trace,
)
from repro.hpcc import run_hpcc
from repro.imb import run_benchmark
from repro.machine.faults import slow_node


def dot_product(comm, n):
    rng = comm.cluster.rng(comm.rank)
    a, b = rng.random(n), rng.random(n)
    yield from comm.compute(flops=2 * n, nbytes=16 * n, kernel="stream_add")
    partial = np.array([float(a @ b)])
    total = yield from comm.allreduce(partial, op=SUM)
    return float(total[0])


def test_section1_run_program():
    cluster = Cluster(get_machine("sx8"), nprocs=32)
    result = cluster.run(dot_product, 10_000)
    assert result.elapsed_us > 0
    # all ranks agree on the reduced value
    assert len(set(result.results)) == 1


def test_section2_measure():
    r = run_benchmark(get_machine("altix_nl4"), "Alltoall", 8, 1 << 16)
    assert r.time_us > 0
    suite = run_hpcc(get_machine("opteron"), 8)
    assert suite.ring_bw_b_per_kflop > 0


def test_section3_trace(tmp_path):
    cluster = Cluster(get_machine("xeon"), 8, trace=True)
    cluster.run(dot_product, 10_000)
    text = format_report(utilization_report(cluster))
    assert "messages:" in text
    path = write_chrome_trace(cluster, tmp_path / "run.json")
    assert path.exists()


def test_section4_custom_machine():
    opteron = get_machine("opteron")
    ib = dataclasses.replace(get_machine("xeon").network, name="IB (what-if)")
    hybrid = dataclasses.replace(opteron, name="opteron_ib", network=ib)
    assert "inter-node" in fit_report(hybrid)


def test_section5_fault_injection():
    opteron = get_machine("opteron")

    def barrier_bench(comm):
        yield from comm.barrier()
        t0 = comm.now
        yield from comm.allreduce(nbytes=1 << 20)
        return comm.now - t0

    clean = max(Cluster(opteron, 16).run(barrier_bench).results)
    hurt = max(Cluster(opteron, 16).run(
        barrier_bench,
        fabric_setup=lambda f: slow_node(f, node=7, factor=8.0)).results)
    assert hurt > clean


def test_section7_read_a_run_report(tmp_path):
    from repro.harness import read_report_doc
    from repro.harness.runner import main as runner_main

    report = tmp_path / "run.html"
    rc = runner_main(["--figure", "6", "--max-cpus", "4", "--no-cache",
                      "--report", str(report),
                      "--bench-json", str(tmp_path / "bench.json"),
                      "--no-ledger"])
    assert rc == 0
    doc = read_report_doc(report)
    # the access pattern the tutorial shows
    for machine, run in doc["observed"]["fig06"].items():
        assert run["critical_path"]["dominant"], machine
