"""Unit tests for the interconnect topologies."""

import pytest

from repro.core.errors import ConfigError
from repro.network import CrossbarSwitch, FatTree, Hypercube, MultistageCrossbar


# -- fat tree ----------------------------------------------------------------

def test_fattree_same_leaf_hops():
    t = FatTree(16, group_sizes=(4, 4))
    assert t.hops(0, 1) == 1          # same leaf switch
    assert t.hops(0, 4) == 3          # up-over-down across leaves
    assert t.path_level(0, 1) == 1
    assert t.path_level(0, 4) == 2


def test_fattree_self_path():
    t = FatTree(8, group_sizes=(4, 2))
    assert t.hops(3, 3) == 0
    assert t.path_level(3, 3) == 0


def test_fattree_three_tiers():
    t = FatTree(64, group_sizes=(4, 4, 4))
    assert t.path_level(0, 3) == 1
    assert t.path_level(0, 15) == 2
    assert t.path_level(0, 63) == 3
    assert t.hops(0, 63) == 5


def test_fattree_capacity_nonblocking():
    t = FatTree(16, group_sizes=(4, 4))
    assert t.level_capacity_links(1) == 32.0     # 2 * n
    assert t.level_capacity_links(2) == 32.0


def test_fattree_capacity_with_blocking():
    t = FatTree(16, group_sizes=(4, 4), level_blocking=(1.0, 4.0))
    assert t.level_capacity_links(1) == 32.0
    assert t.level_capacity_links(2) == 8.0      # 2 * n / 4


def test_fattree_blocking_compounds():
    t = FatTree(64, group_sizes=(4, 4, 4), level_blocking=(2.0, 2.0, 2.0))
    assert t.level_capacity_links(1) == 64.0
    assert t.level_capacity_links(2) == 32.0
    assert t.level_capacity_links(3) == 16.0


def test_fattree_overfull_rejected():
    with pytest.raises(ConfigError):
        FatTree(17, group_sizes=(4, 4))


def test_fattree_validation_errors():
    with pytest.raises(ConfigError):
        FatTree(4, group_sizes=())
    with pytest.raises(ConfigError):
        FatTree(4, group_sizes=(0, 4))
    with pytest.raises(ConfigError):
        FatTree(4, group_sizes=(2, 2), level_blocking=(1.0,))
    with pytest.raises(ConfigError):
        FatTree(4, group_sizes=(2, 2), level_blocking=(0.5, 1.0))


def test_fattree_analytic_avg_hops_matches_exact():
    for n in (5, 16, 23, 32):
        t = FatTree(n, group_sizes=(4, 4, 2))
        assert t.average_hops_analytic() == pytest.approx(t.average_hops())


# -- hypercube ---------------------------------------------------------------

def test_hypercube_hamming_hops():
    t = Hypercube(8)
    assert t.hops(0, 1) == 1
    assert t.hops(0, 7) == 3
    assert t.hops(5, 6) == 2
    assert t.hops(4, 4) == 0


def test_hypercube_dim_inference():
    assert Hypercube(8).dim == 3
    assert Hypercube(9).dim == 4
    assert Hypercube(2).dim == 1


def test_hypercube_explicit_dim_too_small():
    with pytest.raises(ConfigError):
        Hypercube(8, dim=2)


def test_hypercube_single_core_level():
    t = Hypercube(8)
    assert t.n_levels == 1
    assert t.path_level(0, 5) == 1
    with pytest.raises(ConfigError):
        t.level_capacity_links(2)


def test_hypercube_bisection():
    t = Hypercube(16)
    assert t.bisection_links() == 8.0  # n/2


def test_hypercube_analytic_avg_hops():
    for n in (4, 8, 16):
        t = Hypercube(n)
        assert t.average_hops_analytic() == pytest.approx(t.average_hops())


def test_hypercube_diameter():
    assert Hypercube(16).diameter() == 4


# -- crossbars ----------------------------------------------------------------

def test_crossbar_one_hop():
    t = CrossbarSwitch(8)
    assert t.hops(0, 7) == 1
    assert t.hops(2, 2) == 0
    assert t.average_hops_analytic() == 1.0


def test_crossbar_port_limit():
    with pytest.raises(ConfigError):
        CrossbarSwitch(9, ports=8)


def test_multistage_constant_hops():
    t = MultistageCrossbar(72, ports=128, stage_hops=2)
    assert t.hops(0, 71) == 2
    assert t.average_hops_analytic() == 2.0
    assert t.level_capacity_links(1) == 144.0


def test_multistage_port_limit():
    with pytest.raises(ConfigError):
        MultistageCrossbar(129, ports=128)


def test_multistage_analytic_matches_exact():
    t = MultistageCrossbar(16, ports=128, stage_hops=2)
    assert t.average_hops_analytic() == pytest.approx(t.average_hops())


# -- shared behaviour ----------------------------------------------------------

@pytest.mark.parametrize("topo", [
    FatTree(16, group_sizes=(4, 4)),
    Hypercube(16),
    CrossbarSwitch(16),
    MultistageCrossbar(16),
])
def test_out_of_range_pairs_rejected(topo):
    with pytest.raises(ConfigError):
        topo.hops(0, 16)
    with pytest.raises(ConfigError):
        topo.hops(-1, 3)


def test_topology_needs_a_node():
    with pytest.raises(ConfigError):
        CrossbarSwitch(0)
