"""Tests for the unified run configuration (repro.config)."""

from __future__ import annotations

import argparse
import dataclasses

import pytest

from repro.config import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    EXEC_BACKEND_ENV,
    JOBS_ENV,
    NO_CACHE_ENV,
    ReproConfig,
    default_jobs,
)
from repro.core import sched
from repro.core.errors import ConfigError


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    """Every test starts from an unconfigured environment."""
    for var in (JOBS_ENV, EXEC_BACKEND_ENV, CACHE_DIR_ENV, NO_CACHE_ENV,
                sched.BACKEND_ENV):
        monkeypatch.delenv(var, raising=False)


# ---------------------------------------------------------------------------
# Resolution precedence: explicit > env > default
# ---------------------------------------------------------------------------

def test_defaults():
    cfg = ReproConfig.from_env_and_args(jobs=1)
    assert cfg.jobs == 1
    assert cfg.engine_backend == sched.FALLBACK_BACKEND
    assert cfg.exec_backend == "inline"
    assert cfg.cache_dir == DEFAULT_CACHE_DIR
    assert cfg.cache is True


def test_jobs_gt_one_defaults_to_pool():
    assert ReproConfig.from_env_and_args(jobs=4).exec_backend == "pool"


def test_env_layer(monkeypatch, tmp_path):
    monkeypatch.setenv(JOBS_ENV, "3")
    monkeypatch.setenv(EXEC_BACKEND_ENV, "subprocess")
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "c"))
    monkeypatch.setenv(NO_CACHE_ENV, "1")
    cfg = ReproConfig.from_env_and_args()
    assert cfg.jobs == 3
    assert cfg.exec_backend == "subprocess"
    assert cfg.cache_dir == str(tmp_path / "c")
    assert cfg.cache is False


def test_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "3")
    monkeypatch.setenv(EXEC_BACKEND_ENV, "subprocess")
    cfg = ReproConfig.from_env_and_args(jobs=1, exec_backend="inline",
                                        no_cache=False)
    assert cfg.jobs == 1
    assert cfg.exec_backend == "inline"
    assert cfg.cache is True


def test_namespace_args_supply_explicit_layer(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "7")
    args = argparse.Namespace(jobs=2, engine_backend=None,
                              exec_backend="inline", cache_dir=None,
                              no_cache=None)
    cfg = ReproConfig.from_env_and_args(args)
    assert cfg.jobs == 2           # Namespace beats env
    assert cfg.exec_backend == "inline"
    assert cfg.cache_dir == DEFAULT_CACHE_DIR


def test_keyword_beats_namespace():
    args = argparse.Namespace(jobs=2)
    assert ReproConfig.from_env_and_args(args, jobs=5).jobs == 5


# ---------------------------------------------------------------------------
# Validation failures
# ---------------------------------------------------------------------------

def test_unknown_engine_backend():
    with pytest.raises(ConfigError, match="unknown engine backend"):
        ReproConfig.from_env_and_args(engine_backend="nope")


def test_unknown_exec_backend():
    with pytest.raises(ConfigError, match="unknown exec backend"):
        ReproConfig.from_env_and_args(exec_backend="nope")


def test_bad_jobs_env(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "lots")
    with pytest.raises(ValueError, match=JOBS_ENV):
        ReproConfig.from_env_and_args()
    with pytest.raises(ValueError, match=JOBS_ENV):
        default_jobs()


def test_bad_no_cache_env(monkeypatch):
    monkeypatch.setenv(NO_CACHE_ENV, "maybe")
    with pytest.raises(ConfigError, match=NO_CACHE_ENV):
        ReproConfig.from_env_and_args()


# ---------------------------------------------------------------------------
# Derived objects & immutability
# ---------------------------------------------------------------------------

def test_frozen():
    cfg = ReproConfig.from_env_and_args(jobs=1)
    with pytest.raises(dataclasses.FrozenInstanceError):
        cfg.jobs = 9


def test_with_overrides():
    cfg = ReproConfig.from_env_and_args(jobs=1)
    other = cfg.with_overrides(jobs=4, exec_backend="pool")
    assert (other.jobs, other.exec_backend) == (4, "pool")
    assert cfg.jobs == 1  # original untouched


def test_make_cache_respects_no_cache(tmp_path):
    off = ReproConfig.from_env_and_args(jobs=1, no_cache=True)
    assert off.make_cache() is None
    on = ReproConfig.from_env_and_args(jobs=1,
                                       cache_dir=str(tmp_path / "c"))
    cache = on.make_cache()
    assert cache is not None and str(cache.root) == str(tmp_path / "c")


def test_make_executor_wires_everything(tmp_path):
    cfg = ReproConfig.from_env_and_args(
        jobs=2, exec_backend="inline", cache_dir=str(tmp_path / "c"))
    ex = cfg.make_executor()
    assert ex.jobs == 2
    assert ex.backend.name == "inline"
    assert ex.cache is not None


def test_to_dict_roundtrips_fields():
    cfg = ReproConfig.from_env_and_args(jobs=2, exec_backend="pool")
    doc = cfg.to_dict()
    assert doc == {"jobs": 2, "engine_backend": cfg.engine_backend,
                   "exec_backend": "pool", "cache_dir": cfg.cache_dir,
                   "cache": True, "energy": False, "telemetry": False}
