"""Service health surfaces: metrics, event log, exposition, traced jobs.

Unit coverage for :mod:`repro.service.health` (ServiceMetrics folding,
the schema-versioned event log, Prometheus text rendering) plus the
integration contract the ops surface depends on: a telemetry-enabled
``JobQueue`` emits submitted/started/finished events, builds one
complete trace per job with coalesced followers linking to the owner's
trace, exposes non-zero latency histograms — and, with telemetry off,
still answers ``stats()`` with per-state counts and queue depth while
producing byte-identical artifacts.
"""

from __future__ import annotations

import json

import pytest

from repro.config import ReproConfig
from repro.obs.telemetry import assemble_traces
from repro.service import JobQueue
from repro.service.health import (
    EVENTS_SCHEMA_VERSION,
    ServiceEventLog,
    ServiceMetrics,
    render_prometheus,
)

CAP = 8
FIG = "fig13"


def _config(tmp_path, **over):
    return ReproConfig.from_env_and_args(
        jobs=1, exec_backend="inline",
        cache_dir=str(tmp_path / "cache"), **over)


# ---------------------------------------------------------------------------
# ServiceMetrics
# ---------------------------------------------------------------------------

def test_metrics_job_lifecycle_counts_and_latency():
    m = ServiceMetrics()
    m.job_submitted()
    m.job_submitted()
    m.job_started(queue_wait_s=0.5)
    m.job_finished("done", submit_done_s=2.0)
    snap = m.snapshot()
    assert snap["counters"]["service.jobs.submitted"] == 2
    assert snap["counters"]["service.jobs.started"] == 1
    assert snap["counters"]["service.jobs.done"] == 1
    assert snap["histograms"]["service.latency.submit_start_s"]["count"] == 1
    assert snap["histograms"]["service.latency.submit_done_s"]["sum"] == \
        pytest.approx(2.0)


def test_metrics_queue_high_water_is_sticky():
    m = ServiceMetrics()
    m.observe_queue(3, {"queued": 2, "running": 1})
    m.observe_queue(1, {"queued": 0, "running": 1})
    g = m.snapshot()["gauges"]
    assert g["service.queue.depth"] == 1       # instantaneous
    assert g["service.queue.depth_hwm"] == 3   # high-water sticks
    assert g["service.jobs.state.queued"] == 0
    assert g["service.jobs.state.running"] == 1


def test_metrics_cache_hit_ratio_derived_in_snapshot():
    m = ServiceMetrics()
    assert m.cache_hit_ratio() is None
    assert "service.cache.hit_ratio" not in m.snapshot()["gauges"]
    m.fold_job_stats({"points": 4, "cache_hits": 3, "cache_misses": 1})
    assert m.cache_hit_ratio() == pytest.approx(0.75)
    assert m.snapshot()["gauges"]["service.cache.hit_ratio"] == \
        pytest.approx(0.75)


def test_metrics_fold_backend_health_accumulates():
    m = ServiceMetrics()
    m.fold_backend_health({"workers_spawned": 2, "requests": 9, "crashes": 1})
    m.fold_backend_health({"requests": 3, "restarts": 2})
    m.fold_backend_health(None)  # inline backend: nothing to fold
    c = m.snapshot()["counters"]
    assert c["service.fleet.workers_spawned"] == 2
    assert c["service.fleet.requests"] == 12
    assert c["service.fleet.crashes"] == 1
    assert c["service.fleet.restarts"] == 2


def test_metrics_coalescer_mirrors_cumulative_totals():
    m = ServiceMetrics()
    m.set_coalescer({"owned": 5, "joined": 2, "inflight": 1})
    m.set_coalescer({"owned": 6, "joined": 2, "inflight": 0})  # set, not inc
    snap = m.snapshot()
    assert snap["counters"]["service.coalesce.owned"] == 6
    assert snap["counters"]["service.coalesce.joined"] == 2
    assert snap["gauges"]["service.coalesce.inflight"] == 0


# ---------------------------------------------------------------------------
# ServiceEventLog
# ---------------------------------------------------------------------------

def test_event_log_round_trip_stamps_schema(tmp_path):
    log = ServiceEventLog(tmp_path / "deep" / "service_events.jsonl")
    log.append("submitted", job="j-1")
    log.append("finished", job="j-1", state="done")
    entries = log.entries()
    assert [e["event"] for e in entries] == ["submitted", "finished"]
    for e in entries:
        assert e["schema_version"] == EVENTS_SCHEMA_VERSION
        assert e["when"] > 0 and e["pid"] > 0
    # Every line on disk is standalone JSON (tail -f friendly).
    for line in log.path.read_text().splitlines():
        assert json.loads(line)["job"] == "j-1"


def test_event_log_reader_is_lenient(tmp_path):
    path = tmp_path / "service_events.jsonl"
    path.write_text('{"event": "submitted", "schema_version": 1}\n'
                    "merge scar, not json\n"
                    '{"event": "finished", "schema_version": 99}\n')
    entries = ServiceEventLog(path).entries()
    assert [e["event"] for e in entries] == ["submitted", "finished"]
    assert ServiceEventLog(tmp_path / "absent.jsonl").entries() == []


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------

def test_render_prometheus_counters_gauges_histograms():
    m = ServiceMetrics()
    m.job_submitted()
    m.observe_queue(2, {"queued": 2})
    m.job_started(queue_wait_s=0.3)
    text = render_prometheus(m.snapshot())
    assert "# TYPE repro_service_jobs_submitted counter" in text
    assert "repro_service_jobs_submitted 1" in text
    assert "# TYPE repro_service_queue_depth gauge" in text
    assert "repro_service_queue_depth_hwm 2" in text
    # Histogram: cumulative buckets, +Inf, _sum/_count.
    assert '# TYPE repro_service_latency_submit_start_s histogram' in text
    assert 'repro_service_latency_submit_start_s_bucket{le="0.5"} 1' in text
    assert 'repro_service_latency_submit_start_s_bucket{le="+Inf"} 1' in text
    assert "repro_service_latency_submit_start_s_count 1" in text


def test_render_prometheus_is_deterministic_and_terminated():
    m = ServiceMetrics()
    m.fold_backend_health({"requests": 4, "crashes": 1})
    m.observe_queue(1, {"running": 1})
    a, b = render_prometheus(m.snapshot()), render_prometheus(m.snapshot())
    assert a == b            # equal state -> byte-equal exposition
    assert a.endswith("\n")  # exposition format requires a final newline
    assert render_prometheus({}) == ""


# ---------------------------------------------------------------------------
# JobQueue integration: the ops surface end to end
# ---------------------------------------------------------------------------

def test_traced_queue_emits_events_metrics_and_full_traces(tmp_path):
    events = tmp_path / "service_events.jsonl"
    cfg = _config(tmp_path, telemetry=True)
    with JobQueue(cfg, workers=2, events_path=events) as q:
        a = q.submit([FIG], max_cpus=CAP)
        b = q.submit([FIG], max_cpus=CAP)
        doc_a = q.result(a, timeout=300)
        doc_b = q.result(b, timeout=300)

        # Each job carries its own complete trace summary.
        for doc in (doc_a, doc_b):
            assert doc["state"] == "done"
            trace = doc["trace"]
            assert trace["trace_id"] == doc["trace_id"]
            assert trace["roots"] == 1
            assert trace["root_name"] == "service.job"
            assert trace["errors"] == 0

        # The span trees reassemble: one root per job, queue.wait under it.
        spans_a = q.job_trace(a)
        (roots,) = assemble_traces(spans_a).values()
        (root,) = roots
        child_names = {c.name for c in root.children}
        assert "queue.wait" in child_names

        # Identical overlapping submits: exactly one computed the points,
        # the other's spans say they were coalesced away.
        names_a = {s["name"] for s in spans_a}
        names_b = {s["name"] for s in q.job_trace(b)}
        assert {"point.compute", "point.coalesced"} <= (names_a | names_b)
        assert not ({"point.compute"} <= names_a
                    and {"point.compute"} <= names_b)
        follower = names_a if "point.coalesced" in names_a else names_b
        assert "point.compute" not in follower

        # Metrics: latency histograms observed, coalescer savings visible.
        snap = q.metrics_snapshot()
        assert snap["counters"]["service.jobs.submitted"] == 2
        assert snap["counters"]["service.jobs.done"] == 2
        assert snap["counters"]["service.coalesce.joined"] >= 1
        assert snap["histograms"]["service.latency.submit_done_s"]["count"] \
            == 2
        assert snap["gauges"]["service.queue.depth_hwm"] >= 1
        text = render_prometheus(snap)
        assert "repro_service_latency_submit_done_s_count 2" in text

    # Event log: submitted/started/finished per job, in a sane order.
    kinds = [e["event"] for e in ServiceEventLog(events).entries()]
    assert kinds.count("submitted") == 2
    assert kinds.count("started") == 2
    assert kinds.count("finished") == 2
    assert kinds[0] == "submitted"


def test_follower_trace_links_to_owner(tmp_path):
    cfg = _config(tmp_path, telemetry=True)
    with JobQueue(cfg, workers=2, events_path=None) as q:
        a = q.submit([FIG], max_cpus=CAP)
        b = q.submit([FIG], max_cpus=CAP)
        q.result(a, timeout=300)
        q.result(b, timeout=300)
        all_spans = q.job_trace(a) + q.job_trace(b)
        coalesced = [s for s in all_spans if s["name"] == "point.coalesced"]
        computed = [s for s in all_spans if s["name"] == "point.compute"]
        if not coalesced:
            pytest.skip("jobs did not overlap on this run")
        owner_tids = {s["attrs"]["owner_trace_id"] for s in coalesced}
        assert owner_tids == {computed[0]["trace_id"]}
        assert owner_tids != {coalesced[0]["trace_id"]}


def test_stats_by_state_and_depth_work_with_telemetry_off(tmp_path):
    with JobQueue(_config(tmp_path), workers=1) as q:
        assert q.telemetry is None
        assert q.metrics_snapshot() is None
        st = q.stats()
        assert st["by_state"] == {"queued": 0, "running": 0,
                                  "done": 0, "failed": 0}
        assert st["queue_depth"] == 0
        job = q.submit([FIG], max_cpus=CAP)
        doc = q.result(job, timeout=300)
        assert "trace_id" not in doc and "trace" not in doc
        st = q.stats()
        assert st["by_state"]["done"] == 1
        assert st["queue_depth"] == 0


def test_traced_and_untraced_artifacts_are_byte_identical(tmp_path):
    def run(tag, telemetry):
        art = tmp_path / tag
        cfg = _config(tmp_path / f"ws-{tag}", telemetry=telemetry)
        with JobQueue(cfg, workers=1, artifacts_dir=art) as q:
            doc = q.result(q.submit([FIG], max_cpus=CAP), timeout=300)
        assert doc["state"] == "done"
        return {p.name: p.read_bytes() for p in sorted(art.rglob("*"))
                if p.is_file()}

    plain = run("off", False)
    traced = run("on", True)
    assert plain.keys() == traced.keys() and plain
    assert all(plain[k] == traced[k] for k in plain)
