"""Unit tests for the fabric model (message timing + contention)."""

import pytest

from repro.core.errors import ConfigError
from repro.network import CrossbarSwitch, Fabric, FabricParams


def make_params(**kw) -> FabricParams:
    defaults = dict(
        link_bw=1e9,
        nic_bw=1e9,
        base_latency=2e-6,
        per_hop_latency=1e-7,
        send_overhead=2e-7,
        recv_overhead=2e-7,
        eager_threshold=8192,
        bw_efficiency=1.0,
        shm_bw=4e9,
        shm_flow_bw=2e9,
        shm_latency=5e-7,
        memcpy_bw=4e9,
    )
    defaults.update(kw)
    return FabricParams(**defaults)


def make_fabric(n_nodes=4, **kw) -> Fabric:
    return Fabric(CrossbarSwitch(n_nodes), make_params(**kw))


def test_intra_node_uses_shm_flow():
    f = make_fabric()
    t = f.message_timing(0, 0, 2e9, 0.0)
    # 2 GB at 2 GB/s per-flow cap (node aggregate 4 GB/s not binding)
    assert t.inject_end == pytest.approx(1.0)
    assert t.arrival == pytest.approx(1.0 + 5e-7)


def test_intra_node_aggregate_binds_concurrent_flows():
    f = make_fabric()
    # two concurrent 2 GB flows through a 4 GB/s node: each serialised on
    # the aggregate for 0.5 s, flow cap 1 s from own start
    t1 = f.message_timing(0, 0, 2e9, 0.0)
    t2 = f.message_timing(0, 0, 2e9, 0.0)
    assert t1.inject_start == 0.0
    assert t2.inject_start == pytest.approx(0.5)
    assert t2.inject_end == pytest.approx(1.5)


def test_inter_node_bandwidth_and_latency():
    f = make_fabric()
    t = f.message_timing(0, 1, 1e9, 0.0)
    assert t.inject_end == pytest.approx(1.0)      # 1 GB at 1 GB/s
    # crossbar: 1 hop
    assert t.arrival == pytest.approx(1.0 + 2e-6 + 1e-7)


def test_egress_serialises_two_sends():
    f = make_fabric()
    t1 = f.message_timing(0, 1, 1e9, 0.0)
    t2 = f.message_timing(0, 2, 1e9, 0.0)
    assert t2.inject_end == pytest.approx(2.0)


def test_ingress_serialises_two_receives():
    f = make_fabric()
    t1 = f.message_timing(1, 0, 1e9, 0.0)
    t2 = f.message_timing(2, 0, 1e9, 0.0)
    assert max(t1.arrival, t2.arrival) == pytest.approx(2.0 + 2.1e-6)


def test_full_duplex_send_and_recv_overlap():
    f = make_fabric()  # duplex_factor defaults to 2
    out = f.message_timing(0, 1, 1e9, 0.0)
    inc = f.message_timing(1, 0, 1e9, 0.0)
    assert out.inject_end == pytest.approx(1.0)
    assert inc.inject_end == pytest.approx(1.0)


def test_half_duplex_bus_serialises_directions():
    f = make_fabric(duplex_factor=1.0)
    out = f.message_timing(0, 1, 1e9, 0.0)
    inc = f.message_timing(1, 0, 1e9, 0.0)
    # the shared bus at node 0 (and 1) carries 2 GB at 1 GB/s
    assert max(out.inject_end, inc.inject_end) == pytest.approx(2.0)


def test_single_stream_capped_at_link_rate():
    f = make_fabric(nic_bw=4e9)  # fat NIC, thin link
    t = f.message_timing(0, 1, 1e9, 0.0)
    assert t.inject_end == pytest.approx(1.0)  # still 1 GB/s link


def test_control_timing_skips_bandwidth_queues():
    f = make_fabric()
    f.message_timing(0, 1, 1e9, 0.0)          # deep bulk queue
    c = f.control_timing(0, 1, 0.0)
    assert c.arrival == pytest.approx(2.1e-6)  # latency only


def test_eager_threshold():
    f = make_fabric(eager_threshold=100)
    assert f.is_eager(100)
    assert not f.is_eager(101)


def test_memcpy_time():
    f = make_fabric()
    assert f.memcpy_time(4e9) == pytest.approx(1.0)


def test_latency_intra_vs_inter():
    f = make_fabric()
    assert f.latency(0, 0) == pytest.approx(5e-7)
    assert f.latency(0, 1) == pytest.approx(2.1e-6)


def test_reset_clears_contention():
    f = make_fabric()
    f.message_timing(0, 1, 1e9, 0.0)
    f.reset()
    t = f.message_timing(0, 1, 1e9, 0.0)
    assert t.inject_start == 0.0


def test_param_validation():
    with pytest.raises(ConfigError):
        make_params(link_bw=0)
    with pytest.raises(ConfigError):
        make_params(base_latency=-1e-6)
    with pytest.raises(ConfigError):
        make_params(bw_efficiency=1.5)
    with pytest.raises(ConfigError):
        make_params(duplex_factor=0.5)
    with pytest.raises(ConfigError):
        make_params(duplex_factor=2.5)
    with pytest.raises(ConfigError):
        make_params(eager_threshold=-1)
    with pytest.raises(ConfigError):
        make_params(shm_flow_bw=-2.0)


def test_bw_efficiency_derates_link():
    f = make_fabric(bw_efficiency=0.5)
    t = f.message_timing(0, 1, 1e9, 0.0)
    assert t.inject_end == pytest.approx(2.0)
