"""Utilization/communication-matrix analysis tests."""

import numpy as np
import pytest

from repro.analysis.utilization import (
    comm_matrix,
    format_report,
    message_size_histogram,
    utilization_report,
)
from repro.mpi.cluster import Cluster
from tests.conftest import make_test_machine

M = make_test_machine(cpus_per_node=2, max_cpus=64)


def traced_cluster(p, prog):
    cl = Cluster(M, p, trace=True)
    cl.run(prog)
    return cl


def test_comm_matrix_alltoall_uniform():
    p, n = 6, 4096

    def prog(comm):
        yield from comm.alltoall(nbytes=n, algorithm="pairwise")

    cl = traced_cluster(p, prog)
    mat = comm_matrix(cl.tracer, p)
    off_diag = mat[~np.eye(p, dtype=bool)]
    assert np.all(off_diag == n)
    assert np.all(np.diag(mat) == 0)


def test_comm_matrix_bcast_tree_shape():
    p = 8

    def prog(comm):
        yield from comm.bcast(nbytes=1024, root=0, algorithm="binomial")

    cl = traced_cluster(p, prog)
    mat = comm_matrix(cl.tracer, p)
    # root sends log2(p) messages; total tree edges = p-1
    assert np.count_nonzero(mat[0]) == 3
    assert np.count_nonzero(mat) == p - 1


def test_size_histogram_buckets():
    def prog(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=0)
            yield from comm.send(1, nbytes=5)      # bucket 4
            yield from comm.send(1, nbytes=1000)   # bucket 512
        else:
            for _ in range(3):
                yield from comm.recv(0)

    cl = traced_cluster(2, prog)
    hist = message_size_histogram(cl.tracer)
    assert hist == {0: 1, 4: 1, 512: 1}


def test_utilization_report_fields():
    p = 8

    def prog(comm):
        yield from comm.alltoall(nbytes=1 << 16)
        yield from comm.compute(flops=1e7, kernel="dgemm")

    cl = traced_cluster(p, prog)
    rep = utilization_report(cl)
    assert rep.message_count == p * (p - 1)
    assert 0 < rep.intra_node_fraction < 1
    assert all(0 <= u <= 1.0001 for u in rep.egress_utilization.values())
    assert all(0 <= u for u in rep.core_utilization.values())
    assert all(f > 0 for f in rep.compute_fraction.values())
    assert rep.comm_matrix.shape == (p, p)


def test_intra_fraction_single_node_is_one():
    m = make_test_machine(cpus_per_node=8)

    def prog(comm):
        yield from comm.allgather(nbytes=4096)

    cl = Cluster(m, 4, trace=True)
    cl.run(prog)
    rep = utilization_report(cl)
    assert rep.intra_node_fraction == pytest.approx(1.0)
    assert all(u == 0 for u in rep.egress_utilization.values())


def test_format_report_readable():
    def prog(comm):
        yield from comm.alltoall(nbytes=8192)

    cl = traced_cluster(4, prog)
    text = format_report(utilization_report(cl))
    assert "messages:" in text
    assert "busiest NICs:" in text
    assert "core level 1:" in text


# -- scaling-series helpers -----------------------------------------------------

def test_build_series_and_ratio():
    from repro.analysis import build_series, ratio_series

    series = build_series(
        "Test Box", "testbox",
        cpu_counts=[2, 4, 8],
        hpl_fn=lambda p: p * 0.001,          # TFlop/s
        value_fn=lambda p, hpl: p * 2.0,     # accumulated GB/s
    )
    assert [p.cpus for p in series.points] == [2, 4, 8]
    assert series.final.value == 16.0
    xs, ys = series.xy()
    assert xs == [0.002, 0.004, 0.008]

    ratios = ratio_series(series)
    # value / (hpl_tflops * 1e3 GFlop/s): 4 GB/s over 2 GF/s = 2 B/F
    assert all(abs(p.value - 2.0) < 1e-12 for p in ratios.points)
    assert ratios.label.endswith("(ratio)")


def test_scaling_series_x_axis_choice():
    from repro.analysis import build_series

    s = build_series("m", "m", [2, 4], lambda p: 1.0, lambda p, h: p)
    xs, ys = s.xy(x="cpus")
    assert xs == [2, 4] and ys == [2, 4]
