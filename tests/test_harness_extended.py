"""Extended-harness tests: size sweeps, one-sided comparison, sequel."""

import pytest

from repro import get_machine
from repro.harness.extended import (
    SWEEP_MAX_BYTES,
    message_size_sweep,
    onesided_comparison,
    sequel_study,
    size_sweep_figure,
    sweep_sizes,
)


def test_sweep_sizes_range():
    sizes = sweep_sizes()
    assert sizes[0] == 1
    assert sizes[-1] == SWEEP_MAX_BYTES
    assert all(b == 2 * a for a, b in zip(sizes, sizes[1:]))


def test_message_size_sweep_monotone_time():
    m = get_machine("xeon")
    pts = message_size_sweep(m, "Sendrecv", 4, sizes=[64, 4096, 262144])
    times = [t for (_s, t, _bw) in pts]
    assert times == sorted(times)


def test_message_size_sweep_bandwidth_saturates():
    """Small messages are latency-bound; large ones approach link rate."""
    m = get_machine("xeon")
    pts = message_size_sweep(m, "PingPong", 2,
                             sizes=[64, 65536, 2 * 1024 * 1024])
    bws = [bw for (_s, _t, bw) in pts]
    assert bws[0] < bws[1] < bws[2]
    # large-message PingPong on ranks 0/1 rides shared memory
    shm = m.node.shm_flow_gbs * 1024  # MB/s-ish ceiling
    assert bws[2] < shm * 1.2


def test_size_sweep_figure_structure():
    fig = size_sweep_figure("Allreduce", nprocs=8,
                            machines=("sx8", "xeon"), sizes=[64, 65536])
    assert {s.machine for s in fig.series} == {"sx8", "xeon"}
    for s in fig.series:
        assert len(s.x) == len(s.y) == 2
        assert s.y[1] > s.y[0]


def test_size_sweep_vector_lead_grows_with_size():
    """At 1 B the vector machines' latency handicap shows; by 2 MB the
    SX-8's bandwidth dominates — the crossover the sweep exists to show."""
    fig = size_sweep_figure("Allreduce", nprocs=8,
                            machines=("sx8", "xeon"),
                            sizes=[1, 2 * 1024 * 1024])
    sx8 = fig.by_machine("sx8")
    xeon = fig.by_machine("xeon")
    small_ratio = xeon.y[0] / sx8.y[0]
    large_ratio = xeon.y[1] / sx8.y[1]
    assert large_ratio > 2 * small_ratio


def test_onesided_comparison_rdma_competitive():
    out = onesided_comparison(nprocs=4)
    for name, row in out.items():
        # one-sided put should be within ~2x of the two-sided transfer
        assert row["Unidir_Put"] < 2.5 * row["PingPong"], name
        assert row["Unidir_Get"] > 0


def test_sequel_study_rows():
    rows = sequel_study(nprocs=32)
    names = {r["machine"] for r in rows}
    assert names == {"bluegene_p", "cray_xt4", "cray_x1e", "power5", "gige"}
    by = {r["machine"]: r for r in rows}
    # GigE is the weakest network of the sequel set
    assert by["gige"]["b_per_kflop"] == min(
        r["b_per_kflop"] for r in rows)
    # every efficiency in (0, 1)
    assert all(0 < r["hpl_efficiency"] < 1 for r in rows)
