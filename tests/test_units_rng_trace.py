"""Unit tests for the formatting helpers, RNG utilities and tracer."""

import numpy as np
import pytest

from repro.core import units
from repro.core.rng import (
    DEFAULT_SEED,
    make_rng,
    random_derangement_ring,
    spawn_rngs,
)
from repro.core.trace import NULL_TRACER, ComputeRecord, MessageRecord, Tracer


# -- units -------------------------------------------------------------------

def test_time_constants():
    assert units.US == 1e-6
    assert units.seconds_to_us(2e-6) == pytest.approx(2.0)
    assert units.us_to_seconds(5.0) == pytest.approx(5e-6)


def test_fmt_time_adaptive():
    assert units.fmt_time(0) == "0 s"
    assert "ns" in units.fmt_time(5e-9)
    assert "us" in units.fmt_time(3.2e-6)
    assert "ms" in units.fmt_time(1.5e-3)
    assert units.fmt_time(2.0).endswith(" s")


def test_fmt_bytes_binary():
    assert units.fmt_bytes(512) == "512 B"
    assert units.fmt_bytes(2048) == "2 KiB"
    assert units.fmt_bytes(3 * 1024 ** 2) == "3 MiB"
    assert "GiB" in units.fmt_bytes(5 * 1024 ** 3)


def test_fmt_bandwidth_decimal():
    assert units.fmt_bandwidth(500) == "500 B/s"
    assert units.fmt_bandwidth(2.5e9) == "2.5 GB/s"
    assert "MB/s" in units.fmt_bandwidth(8e6)


def test_fmt_flops():
    assert "TF/s" in units.fmt_flops(8.7e12)
    assert "GF/s" in units.fmt_flops(6.4e9)
    assert "MF/s" in units.fmt_flops(5e6)


# -- rng ------------------------------------------------------------------------

def test_make_rng_deterministic():
    a = make_rng(7, 1).random(4)
    b = make_rng(7, 1).random(4)
    assert np.array_equal(a, b)


def test_make_rng_streams_independent():
    a = make_rng(7, 1).random(4)
    b = make_rng(7, 2).random(4)
    assert not np.array_equal(a, b)


def test_make_rng_default_seed():
    a = make_rng(None, 3).random(2)
    b = make_rng(DEFAULT_SEED, 3).random(2)
    assert np.array_equal(a, b)


def test_spawn_rngs_per_rank():
    rngs = spawn_rngs(4, seed=11)
    vals = [r.random() for r in rngs]
    assert len(set(vals)) == 4


def test_random_ring_is_permutation():
    rng = make_rng(5)
    perm = random_derangement_ring(16, rng)
    assert sorted(perm) == list(range(16))


# -- tracer -------------------------------------------------------------------

def _msg(src=0, dst=1, nbytes=100, intra=False, t0=0.0, t1=1.0):
    return MessageRecord(src=src, dst=dst, nbytes=nbytes, tag=0,
                         t_inject=t0, t_deliver=t1, intra_node=intra)


def test_tracer_accumulates():
    tr = Tracer()
    tr.record_message(_msg(nbytes=100))
    tr.record_message(_msg(nbytes=50, intra=True))
    assert tr.message_count == 2
    assert tr.total_bytes == 150
    assert tr.inter_node_bytes == 100


def test_tracer_messages_between():
    tr = Tracer()
    tr.record_message(_msg(src=0, dst=1))
    tr.record_message(_msg(src=1, dst=0))
    assert len(tr.messages_between(0, 1)) == 1
    assert len(tr.messages_between(1, 0)) == 1
    assert tr.messages_between(0, 2) == []


def test_tracer_compute_time_per_rank():
    tr = Tracer()
    tr.record_compute(ComputeRecord(rank=0, flops=1, bytes_moved=0,
                                    kernel="dgemm", t_start=0.0, t_end=2.0))
    tr.record_compute(ComputeRecord(rank=1, flops=1, bytes_moved=0,
                                    kernel="dgemm", t_start=0.0, t_end=3.0))
    assert tr.compute_time(0) == 2.0
    assert tr.compute_time() == 5.0


def test_disabled_tracer_records_nothing():
    tr = Tracer(enabled=False)
    tr.record_message(_msg())
    tr.record_compute(ComputeRecord(0, 1, 0, "dgemm", 0.0, 1.0))
    assert tr.message_count == 0
    assert tr.computes == []


def test_null_tracer_is_disabled():
    assert not NULL_TRACER.enabled


def test_tracer_clear():
    tr = Tracer()
    tr.record_message(_msg())
    tr.clear()
    assert tr.message_count == 0
