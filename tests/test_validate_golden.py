"""Golden regression gate: manifest, seed-tree pass, perturbation fail."""

import json
from pathlib import Path

import pytest

from repro.exec import worker
from repro.harness.figures import FigureResult, FigureSeries
from repro.harness.runner import main as runner_main
from repro.validate import (
    EXIT_REGRESSION,
    ToleranceRule,
    compare_figure,
    load_manifest,
    manifest_path_for,
    run_invariants,
)
from repro.core.errors import ConfigError

REPO = Path(__file__).parents[1]


@pytest.fixture(autouse=True)
def _from_repo_root(monkeypatch):
    """The gate resolves results/ relative to the repo root."""
    monkeypatch.chdir(REPO)


# -- manifest ---------------------------------------------------------------------

def test_manifest_loads_and_covers_every_golden_item():
    manifest = load_manifest(manifest_path_for(REPO / "results"))
    # v2 = generated from the scenario registry (adds "references");
    # the gate's loader stays version-lenient and reads the same rules.
    assert manifest.version == 2
    # Flagship-only items are excluded from capped comparisons.
    assert manifest.rule_for("fig05").requires_full
    assert manifest.rule_for("table3").requires_full
    # Static tables are byte-exact; figures default to 2% headroom.
    assert manifest.rule_for("table1").mode == "exact"
    assert manifest.rule_for("fig06").mode == "rel"
    assert manifest.rule_for("fig06").rtol == 0.02
    # Machine-specific anchors resolve ahead of generic ones.
    rule = manifest.rule_for("fig02")
    assert "SX-8" in rule.anchor_for("sx8").name
    assert rule.anchor_for("nonexistent_machine") is None


def test_missing_manifest_refuses_to_run(tmp_path):
    with pytest.raises(ConfigError, match="tolerance manifest not found"):
        load_manifest(tmp_path / "TOLERANCES.json")


def test_bad_mode_rejected():
    with pytest.raises(ConfigError, match="unknown tolerance mode"):
        ToleranceRule("fig01", mode="fuzzy")


# -- the gate on the seed tree ----------------------------------------------------

def test_gate_passes_on_seed_tree(tmp_path):
    report_path = tmp_path / "report.json"
    rc = runner_main([
        "--validate", "--figure", "1", "--figure", "6", "--table", "1",
        "--max-cpus", "16", "--jobs", "1", "--no-cache",
        "--validate-report", str(report_path),
    ])
    assert rc == 0
    doc = json.loads(report_path.read_text())
    assert doc["status"] == "pass"
    items = {i["item"]: i for i in doc["golden"]["items"]}
    assert items["fig01"]["status"] == "ok"
    assert items["fig01"]["cells_failed"] == 0
    # Capped regeneration is an exact prefix of the committed full run.
    assert items["fig01"]["worst_rel_err"] == 0.0
    assert all(r["passed"] for r in doc["invariants"])


def test_gate_reports_table3_uncovered_under_cap(capsys):
    rc = runner_main(["--validate", "--table", "3",
                      "--max-cpus", "16", "--jobs", "1", "--no-cache"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "uncovered" in out
    assert "VALIDATION PASSED" in out


def test_gate_fails_on_perturbed_calibration(tmp_path, monkeypatch, capsys):
    """A 10% shift in ring bandwidth must break fig02's paper anchors."""
    orig = worker._COMPUTE["ring_hpl"]

    def perturbed(point):
        hpl, acc = orig(point)
        return (hpl, acc * 1.10)

    # jobs=1 keeps the computation in-process, where the patch is visible;
    # --no-cache stops a fingerprint-matched cache from replaying truth.
    monkeypatch.setitem(worker._COMPUTE, "ring_hpl", perturbed)
    report_path = tmp_path / "report.json"
    rc = runner_main([
        "--validate", "--figure", "2", "--max-cpus", "16",
        "--jobs", "1", "--no-cache", "--validate-report", str(report_path),
    ])
    assert rc == EXIT_REGRESSION
    doc = json.loads(report_path.read_text())
    assert doc["status"] == "fail"
    (item,) = doc["golden"]["items"]
    assert item["status"] == "fail"
    assert item["cells_failed"] > 0
    assert 0.08 < item["worst_rel_err"] < 0.10
    assert any("SX-8" in a for a in item["broken_anchors"])
    assert "paper anchor broken" in capsys.readouterr().out


def test_gate_survives_perturbation_then_passes_again(monkeypatch):
    """The perturbed run must not leak memoised values into a clean run."""
    orig = worker._COMPUTE["ring_hpl"]
    monkeypatch.setitem(worker._COMPUTE, "ring_hpl",
                        lambda pt: tuple(v * 2 for v in orig(pt)))
    assert runner_main(["--validate", "--figure", "1", "--max-cpus", "16",
                        "--jobs", "1", "--no-cache"]) == EXIT_REGRESSION
    monkeypatch.setitem(worker._COMPUTE, "ring_hpl", orig)
    assert runner_main(["--validate", "--figure", "1", "--max-cpus", "16",
                        "--jobs", "1", "--no-cache"]) == 0


# -- compare_figure unit behaviour ------------------------------------------------

def _fig(xs, ys, machine="m1"):
    return FigureResult(
        fig_id="figXX", title="t", xlabel="x", ylabel="y",
        series=(FigureSeries(machine=machine, label="M", x=tuple(xs),
                             y=tuple(ys)),),
    )


GOLDEN = {"m1": [(2.0, 10.0), (4.0, 20.0), (8.0, 40.0), (16.0, 80.0)]}


def test_compare_figure_prefix_match_ok():
    rep = compare_figure(_fig([2.0, 4.0], [10.0, 20.0]), GOLDEN,
                         ToleranceRule("figXX"), full=False)
    assert rep.status == "ok"


def test_compare_figure_off_schedule_tail_is_uncovered():
    # --max-cpus 6: the final point (x=6) has no golden counterpart.
    rep = compare_figure(_fig([2.0, 4.0, 6.0], [10.0, 20.0, 30.0]), GOLDEN,
                         ToleranceRule("figXX"), full=False)
    assert rep.status == "ok"
    assert any(c.status == "uncovered" and c.index == 2 for c in rep.cells)


def test_compare_figure_value_drift_fails():
    rep = compare_figure(_fig([2.0, 4.0], [10.0, 21.0]), GOLDEN,
                         ToleranceRule("figXX", rtol=0.02), full=False)
    assert rep.status == "fail"
    (bad,) = rep.failed_cells
    assert bad.index == 1 and bad.column == "y"
    assert bad.rel_err == pytest.approx(1 / 21)


def test_compare_figure_full_run_length_mismatch_fails():
    rep = compare_figure(_fig([2.0, 4.0], [10.0, 20.0]), GOLDEN,
                         ToleranceRule("figXX"), full=True)
    assert rep.status == "fail"
    assert any(c.column == "length" for c in rep.failed_cells)


def test_compare_figure_missing_series_fails():
    rep = compare_figure(_fig([2.0], [10.0], machine="ghost"), GOLDEN,
                         ToleranceRule("figXX"), full=False)
    assert rep.status == "fail"
    assert rep.cells[0].status == "missing"


def test_compare_figure_ordering_mode_tracks_ranking():
    golden = {"a": [(2.0, 5.0)], "b": [(2.0, 3.0)]}
    fig = FigureResult(
        fig_id="figXX", title="t", xlabel="x", ylabel="y",
        series=(FigureSeries("a", "A", (2.0,), (1.0,)),
                FigureSeries("b", "B", (2.0,), (2.0,))),
    )
    rep = compare_figure(fig, golden, ToleranceRule("figXX", mode="ordering"),
                         full=False)
    assert rep.status == "fail"
    assert rep.cells[0].expected == "a>b"
    assert rep.cells[0].actual == "b>a"


# -- metamorphic invariants -------------------------------------------------------

def test_invariants_pass_at_small_scale():
    results = run_invariants(max_cpus=8, jobs=2)
    assert [r.name for r in results] == [
        "kiviat_normalisation", "balance_monotone", "determinism",
        "hpcc_verification",
    ]
    for r in results:
        assert r.passed, f"{r.name}: {r.detail}"
