"""Cheap versions of the paper's headline claims (moderate CPU counts).

The benchmarks/ directory re-asserts these at the paper's full scales;
these tests keep the claims from regressing during development.
"""

import pytest

from repro import get_machine
from repro.imb import run_benchmark

MB = 1024 * 1024
P = 8  # every machine (even X1 MSP at 12) can field this


def times(bench, p=P, msg=MB):
    out = {}
    for name in ("sx8", "x1_msp", "altix_nl4", "xeon", "opteron"):
        m = get_machine(name)
        if p <= m.max_cpus:
            out[name] = run_benchmark(m, bench, p, msg).time_us
    return out


def test_fig12_alltoall_full_ordering():
    """NEC SX-8 > Cray X1 > Altix BX2 > Xeon > Opteron (conclusions §5.2)."""
    t = times("Alltoall")
    assert t["sx8"] < t["x1_msp"] < t["altix_nl4"] < t["xeon"] < t["opteron"]


def test_fig7_allreduce_vector_systems_win():
    t = times("Allreduce")
    assert t["sx8"] < min(t["altix_nl4"], t["xeon"], t["opteron"])
    assert t["x1_msp"] < min(t["altix_nl4"], t["xeon"], t["opteron"])
    assert t["sx8"] < t["x1_msp"]  # NEC superior to X1 in both modes
    assert max(t, key=t.get) == "opteron"  # worst: Myrinet cluster


def test_fig8_reduce_order_of_magnitude_clustering():
    """Vector systems an order of magnitude better than scalar (Fig 8)."""
    t = times("Reduce")
    fastest_scalar = min(t["altix_nl4"], t["xeon"], t["opteron"])
    # the SX-8 sits a full order of magnitude ahead of every scalar
    assert fastest_scalar > 10 * t["sx8"]
    # the X1 clusters with the vector side (clearly ahead of the scalars)
    assert fastest_scalar > 2.5 * t["x1_msp"]


def test_fig10_allgather_nec_dominates():
    t = times("Allgather")
    assert t["sx8"] * 5 < min(v for k, v in t.items() if k != "sx8")


def test_fig11_allgatherv_tracks_allgather():
    for name in ("sx8", "xeon"):
        m = get_machine(name)
        a = run_benchmark(m, "Allgather", P, MB).time_us
        v = run_benchmark(m, "Allgatherv", P, MB).time_us
        assert v == pytest.approx(a, rel=0.1)


def test_fig6_barrier_altix_fastest_small_p():
    """'For less than 16 processors, SGI Altix BX2 is the fastest.'"""
    t = times("Barrier", p=8, msg=0)
    assert min(t, key=t.get) == "altix_nl4"


def test_fig13_sendrecv_nec_best_then_altix():
    bw = {}
    for name in ("sx8", "altix_nl4", "xeon", "opteron"):
        m = get_machine(name)
        bw[name] = run_benchmark(m, "Sendrecv", 16, MB).bandwidth_mbs
    assert bw["sx8"] > bw["altix_nl4"] > max(bw["xeon"], bw["opteron"])
    # paper: Xeon and Opteron "almost the same" (same small-cluster tier)
    assert 0.2 < bw["xeon"] / bw["opteron"] < 5.0


def test_fig13_sx8_intranode_sendrecv_anchor():
    """47.4 GB/s for a 2-CPU Sendrecv on the SX-8 (paper text)."""
    bw = run_benchmark(get_machine("sx8"), "Sendrecv", 2, MB).bandwidth_mbs
    assert bw / 1024 == pytest.approx(47.4, rel=0.15)


def test_fig13_x1_ssp_pair_anchor():
    """7.6 GB/s for a 2-SSP Sendrecv on the Cray X1 (paper text)."""
    bw = run_benchmark(get_machine("x1_ssp"), "Sendrecv", 2, MB).bandwidth_mbs
    assert bw / 1024 == pytest.approx(7.6, rel=0.15)


def test_fig14_exchange_opteron_lowest():
    t = times("Exchange")
    assert max(t, key=t.get) == "opteron"


def test_fig14_exchange_bandwidth_sane():
    """Exchange moves twice Sendrecv's volume; reported bandwidth stays
    within 2x of Sendrecv's on every machine.  (The paper's surprising
    Xeon-second-place in Fig 14 is NOT reproduced by this model — see
    EXPERIMENTS.md.)"""
    for name in ("sx8", "altix_nl4", "xeon", "opteron"):
        m = get_machine(name)
        sr = run_benchmark(m, "Sendrecv", 16, MB).bandwidth_mbs
        ex = run_benchmark(m, "Exchange", 16, MB).bandwidth_mbs
        assert 0.4 < ex / sr < 2.5, name


def test_fig15_bcast_ordering():
    """'Best systems with respect to broadcast time in decreasing order:
    NEC SX-8, SGI Altix BX2, Cray X1, Xeon Cluster, Cray Opteron.'"""
    t = times("Bcast")
    assert t["sx8"] < t["altix_nl4"] < t["xeon"] < t["opteron"]
    assert t["x1_msp"] < t["xeon"]


def test_pingpong_latency_anchors():
    """Zero-byte inter-node latencies: IB 6.8 us, Myrinet 6.7 us (§2.4)."""
    for name, target in (("xeon", 6.8), ("opteron", 6.7)):
        m = get_machine(name)
        # use ranks 0 and 2 (different nodes) via a 4-rank Sendrecv probe;
        # PingPong itself runs on ranks 0/1 which share a node, so check
        # the one-way fabric estimate instead.
        p = m.fabric_params()
        topo = m.network.build_topology(2)
        one_way = (p.send_overhead + p.latency(topo.hops(0, 1))
                   + p.recv_overhead) * 1e6
        assert one_way == pytest.approx(target, rel=0.25)
