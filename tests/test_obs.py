"""Tests for the unified observability layer (repro.obs).

Covers the metrics registry semantics, span nesting and Chrome-trace
round-trips, the critical-path analyser on a hand-built 4-rank scenario
with a known bottleneck, serial-vs-parallel metrics-merge determinism,
and the deprecation shim / Tracer consistency satellites.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.core.trace import NULL_TRACER, ComputeRecord, MessageRecord, Tracer
from repro.exec import SimPoint, SweepExecutor
from repro.mpi.cluster import Cluster
from repro.obs import (
    MetricsRegistry,
    SpanRecorder,
    critical_path_report,
    format_critical_path,
    get_metrics,
    merge_snapshots,
    spans_from_tracer,
    spans_to_chrome_events,
    summary_table,
    using_metrics,
    write_chrome_trace,
    write_ndjson,
    write_spans_chrome_trace,
)
from repro.obs.metrics import log2_bucket
from tests.conftest import make_test_machine


# -- metrics registry ---------------------------------------------------------

def test_counter_gauge_semantics():
    reg = MetricsRegistry()
    reg.counter("a.b").inc()
    reg.counter("a.b").inc(2.5)
    reg.gauge("g").set(3)
    reg.gauge("g").set_max(2)   # lower: ignored
    reg.gauge("g").set_max(7)   # higher: taken
    assert reg.value("a.b") == 3.5
    assert reg.value("g") == 7
    assert reg.value("missing", default=-1) == -1
    # create-or-get returns the same instrument
    assert reg.counter("a.b") is reg.counter("a.b")


def test_histogram_log2_buckets():
    assert log2_bucket(0) == log2_bucket(-1)      # zero/negative bucket
    assert log2_bucket(1) == 0                    # 2**0 == 1 -> e=0
    assert log2_bucket(2) == 1
    assert log2_bucket(3) == 2                    # 2 < 3 <= 4
    assert log2_bucket(0.5) == -1
    reg = MetricsRegistry()
    h = reg.histogram("h")
    for v in (1, 2, 3, 1024):
        h.observe(v)
    d = h.to_dict()
    assert d["count"] == 4
    assert d["sum"] == 1030
    assert d["min"] == 1 and d["max"] == 1024
    assert d["buckets"] == {"0": 1, "1": 1, "2": 1, "10": 1}
    assert h.mean == pytest.approx(257.5)


def test_disabled_registry_is_noop():
    reg = MetricsRegistry(enabled=False)
    c = reg.counter("x")
    c.inc(5)
    reg.gauge("y").set(1)
    reg.histogram("z").observe(1)
    snap = reg.snapshot()
    assert snap == {"counters": {}, "gauges": {}, "histograms": {}}
    # shared no-op instruments, no per-name allocation
    assert reg.counter("x") is reg.counter("other")


def test_global_registry_default_disabled():
    assert not get_metrics().enabled
    with using_metrics(MetricsRegistry()) as reg:
        assert get_metrics() is reg
    assert not get_metrics().enabled


def test_snapshot_merge_commutative():
    def make(seed):
        r = MetricsRegistry()
        r.counter("c").inc(seed)
        r.gauge("hw").set_max(seed * 10)
        r.histogram("h").observe(seed)
        return r.snapshot()

    snaps = [make(1), make(2), make(3)]
    fwd = merge_snapshots(snaps)
    rev = merge_snapshots(list(reversed(snaps)))
    assert fwd == rev
    assert fwd["counters"]["c"] == 6
    assert fwd["gauges"]["hw"] == 30
    assert fwd["histograms"]["h"]["count"] == 3
    assert fwd["histograms"]["h"]["min"] == 1
    assert fwd["histograms"]["h"]["max"] == 3


# -- spans --------------------------------------------------------------------

def _fake_clock():
    t = [0.0]

    def clock():
        t[0] += 1.0
        return t[0]

    return clock


def test_span_nesting_and_durations():
    rec = SpanRecorder(clock=_fake_clock())
    with rec.span("outer") as outer:
        with rec.span("inner", cat="sweep", detail=42) as inner:
            pass
    assert rec.depth == 0
    assert rec.roots == [outer]
    assert outer.children == [inner]
    assert inner.args == {"detail": 42}
    # fake clock ticks once per begin/end call
    assert inner.duration == 1.0
    assert outer.duration == 3.0
    d = outer.to_dict()
    assert d["children"][0]["name"] == "inner"
    assert d["duration_s"] == 3.0


def test_span_end_order_enforced():
    rec = SpanRecorder(clock=_fake_clock())
    a = rec.begin("a")
    rec.begin("b")
    with pytest.raises(ValueError):
        rec.end(a)


def test_span_chrome_export_round_trip(tmp_path):
    rec = SpanRecorder(clock=_fake_clock())
    with rec.span("root"):
        with rec.span("child"):
            pass
    path = write_spans_chrome_trace(rec.roots, tmp_path / "spans.json")
    data = json.loads(path.read_text())
    events = data["traceEvents"]
    assert [e["name"] for e in events] == ["root", "child"]
    # all complete events, non-negative, zero-based timestamps
    assert all(e["ph"] == "X" and e["dur"] > 0 for e in events)
    assert min(e["ts"] for e in events) == 0


def test_summary_table_renders_shares():
    rec = SpanRecorder(clock=_fake_clock())
    with rec.span("root"):
        with rec.span("child"):
            pass
    text = summary_table(rec.roots)
    assert "root" in text and "  child" in text
    assert "100.0%" in text


def test_spans_from_tracer_virtual_clock():
    tr = Tracer()
    tr.record_compute(ComputeRecord(0, 1e6, 0, "dgemm", 0.0, 2.0))
    tr.record_message(MessageRecord(0, 1, 100, 0, 1.0, 3.0, False))
    spans = spans_from_tracer(tr)
    assert [s.clock for s in spans] == ["virtual", "virtual"]
    assert spans[0].cat == "compute" and spans[0].tid == 0
    assert spans[1].cat == "message" and spans[1].tid == 1
    events = spans_to_chrome_events(spans)
    assert all(e["ph"] == "X" for e in events)


def test_ndjson_writer(tmp_path):
    path = write_ndjson([{"a": 1}, {"b": 2}], tmp_path / "out.ndjson")
    lines = path.read_text().splitlines()
    assert [json.loads(ln) for ln in lines] == [{"a": 1}, {"b": 2}]


# -- critical path ------------------------------------------------------------

def _run_traced(machine, nprocs, program, *args):
    cluster = Cluster(machine, nprocs, trace=True)
    cluster.run(program, *args)
    return cluster


def test_critical_path_known_bottleneck_link():
    """4 ranks on 4 one-CPU nodes over a starved network core.

    A heavily blocked fat-tree apex (100:1) makes the bisection capacity
    far below NIC and link rates, so the analyser must blame the
    bisection for an all-to-all exchange.
    """
    machine = make_test_machine(
        cpus_per_node=1, max_cpus=4, link_gbs=10.0, nic_gbs=10.0,
        topology_kind="fattree",
        group_sizes=(2, 2), level_blocking=(1.0, 100.0),
    )

    def alltoall(comm):
        reqs = [comm.irecv(src, 7) for src in range(comm.size)
                if src != comm.rank]
        sends = [comm.isend(dst, nbytes=1 << 20, tag=7)
                 for dst in range(comm.size) if dst != comm.rank]
        yield from comm.waitall(reqs + sends)

    cluster = _run_traced(machine, 4, alltoall)
    report = critical_path_report(cluster)
    assert report.dominant == "bisection"
    assert report.breakdown["bisection"] > 0
    assert report.utilisation["bisection"] > 0.5
    assert report.elapsed > 0
    text = format_critical_path(report)
    assert "bisection dominates" in text
    d = report.to_dict()
    assert d["dominant"] == "bisection"
    assert d["elapsed_us"] == pytest.approx(report.elapsed * 1e6)


def test_critical_path_compute_bound():
    machine = make_test_machine()

    def crunch(comm):
        yield from comm.compute(flops=1e9, kernel="dgemm")

    cluster = _run_traced(machine, 2, crunch)
    report = critical_path_report(cluster)
    assert report.dominant == "compute"
    assert report.segments[0].kind == "compute"


def test_critical_path_covers_most_of_elapsed():
    machine = make_test_machine(cpus_per_node=2)

    def pingpong(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=1 << 16, tag=1)
            yield from comm.recv(1, 1)
        elif comm.rank == 1:
            yield from comm.recv(0, 1)
            yield from comm.send(0, nbytes=1 << 16, tag=1)

    cluster = _run_traced(machine, 4, pingpong)
    report = critical_path_report(cluster)
    # The walked chain should explain the bulk of end-to-end time.
    assert report.covered > 0.5


# -- engine / fabric instrumentation -----------------------------------------

def test_engine_metrics_and_heap_high_water():
    with using_metrics(MetricsRegistry()) as reg:
        machine = make_test_machine()
        cluster = Cluster(machine, 4)

        def prog(comm):
            yield from comm.barrier()
            yield from comm.allreduce(nbytes=1 << 16)

        cluster.run(prog)
        assert reg.value("engine.events") > 0
        assert reg.value("engine.events") == cluster.engine.events_processed
        assert reg.value("engine.heap_max") >= 1
        assert cluster.engine.heap_high_water >= 1
        assert reg.value("mpi.messages.inter") > 0
        assert reg.counter("net.egress.bytes").value > 0
        snap = reg.snapshot()
        assert snap["histograms"]["net.egress.queue_wait"]["count"] > 0


def test_engine_untracked_without_registry():
    machine = make_test_machine()
    cluster = Cluster(machine, 2)

    def prog(comm):
        yield from comm.barrier()

    cluster.run(prog)
    # high-water tracking only runs under an enabled registry
    assert cluster.engine.heap_high_water == 0
    assert cluster.engine.events_processed > 0


# -- executor merge determinism ----------------------------------------------

def _sweep_metrics(jobs):
    points = [SimPoint.make("imb", "xeon", p, benchmark="Sendrecv",
                            msg_bytes=1 << 16) for p in (2, 4, 8, 16)]
    with using_metrics(MetricsRegistry()) as reg:
        with SweepExecutor(jobs=jobs, cache=None) as ex:
            ex.run_points(points)
            log = list(ex.point_log)
    snap = reg.snapshot()
    # wall-clock-derived metrics are legitimately nondeterministic
    snap["histograms"].pop("exec.point_wall_s", None)
    return snap, log


def test_serial_vs_parallel_metrics_merge_deterministic():
    serial, log_s = _sweep_metrics(jobs=1)
    parallel, log_p = _sweep_metrics(jobs=2)
    assert serial["counters"] == parallel["counters"]
    assert serial["gauges"] == parallel["gauges"]
    assert serial["histograms"] == parallel["histograms"]
    assert [(e["point"], e["provenance"]) for e in log_s] == \
           [(e["point"], e["provenance"]) for e in log_p]
    assert serial["counters"]["cache.misses"] == 4
    assert serial["counters"]["engine.events"] > 0


def test_executor_point_log_provenance(tmp_path):
    from repro.exec import ResultCache
    cache = ResultCache(tmp_path / "cache", fingerprint="test")
    points = [SimPoint.make("imb", "xeon", 2, benchmark="PingPong",
                            msg_bytes=1024)]
    with SweepExecutor(jobs=1, cache=cache) as ex:
        ex.run_points(points)
        ex.run_points(points)
        provs = [e["provenance"] for e in ex.point_log]
    assert provs == ["computed", "cached"]


# -- satellite: tracer consistency and deprecation shim -----------------------

def test_tracer_disable_clears_records():
    tr = Tracer()
    tr.record_message(MessageRecord(0, 1, 10, 0, 0.0, 1.0, False))
    tr.enabled = False
    assert tr.messages == [] and tr.message_count == 0
    tr.record_message(MessageRecord(0, 1, 10, 0, 0.0, 1.0, False))
    assert tr.message_count == 0  # still disabled
    tr.enabled = True
    tr.record_message(MessageRecord(0, 1, 10, 0, 0.0, 1.0, False))
    assert tr.message_count == 1


def test_null_tracer_cannot_be_enabled():
    with pytest.raises(ValueError):
        NULL_TRACER.enabled = True
    assert not NULL_TRACER.enabled


def test_chrome_trace_shim_warns_and_forwards():
    import importlib
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        import repro.analysis.chrome_trace as shim_mod
        shim = importlib.reload(shim_mod)
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)
    assert shim.write_chrome_trace is write_chrome_trace


def test_analysis_reexports_obs_exporters():
    from repro.analysis import write_chrome_trace as legacy
    assert legacy is write_chrome_trace
