"""IMB framework and benchmark semantics."""

import pytest

from repro import get_machine
from repro.core.errors import BenchmarkError
from repro.imb import (
    BENCHMARKS,
    PAPER_BENCHMARKS,
    get_benchmark,
    imb_message_sizes,
    run_benchmark,
    run_suite,
    sweep_benchmark,
)
from tests.conftest import make_test_machine

M = make_test_machine(cpus_per_node=2, max_cpus=64)
MB = 1024 * 1024


def test_all_twelve_paper_benchmarks_registered():
    assert set(PAPER_BENCHMARKS) <= set(BENCHMARKS)
    assert len(PAPER_BENCHMARKS) == 12


def test_unknown_benchmark_rejected():
    with pytest.raises(BenchmarkError, match="unknown IMB benchmark"):
        get_benchmark("Gossip")


def test_message_size_schedule():
    sizes = imb_message_sizes(16)
    assert sizes == [0, 1, 2, 4, 8, 16]
    full = imb_message_sizes()
    assert full[-1] == 4 * 1024 * 1024
    assert full[0] == 0


@pytest.mark.parametrize("name", sorted(PAPER_BENCHMARKS))
def test_each_benchmark_runs_and_reports(name):
    res = run_benchmark(M, name, 8, 4096)
    assert res.time_us > 0
    assert res.nprocs == 8
    assert res.benchmark == name


def test_min_procs_enforced():
    with pytest.raises(BenchmarkError, match=">= 2"):
        run_benchmark(M, "PingPong", 1)


def test_bad_iterations_rejected():
    with pytest.raises(BenchmarkError):
        get_benchmark("Barrier").run(M, 4, iterations=0)


def test_pingpong_reports_half_round_trip():
    res = run_benchmark(M, "PingPong", 2, 0)
    # one-way zero-byte time ~ overheads + shm latency (ranks share a node)
    p = M.fabric_params()
    one_way = (p.send_overhead + p.shm_latency + p.recv_overhead) * 1e6
    assert res.time_us == pytest.approx(one_way, rel=0.3)


def test_pingping_slower_than_pingpong():
    pp = run_benchmark(M, "PingPong", 2, MB).time_us
    ping2 = run_benchmark(M, "PingPing", 2, MB).time_us
    assert ping2 > pp  # obstructed by the oncoming message


def test_sendrecv_bandwidth_accounting():
    res = run_benchmark(M, "Sendrecv", 4, MB)
    expected = 2 * MB / (res.time_us * 1e-6) / MB
    assert res.bandwidth_mbs == pytest.approx(expected)


def test_exchange_counts_4x_bytes():
    res = run_benchmark(M, "Exchange", 4, MB)
    expected = 4 * MB / (res.time_us * 1e-6) / MB
    assert res.bandwidth_mbs == pytest.approx(expected)


def test_collectives_report_no_bandwidth():
    res = run_benchmark(M, "Allreduce", 4, 4096)
    assert res.bandwidth_mbs is None


def test_barrier_time_grows_with_ranks():
    t4 = run_benchmark(M, "Barrier", 4, 0).time_us
    t32 = run_benchmark(M, "Barrier", 32, 0).time_us
    assert t32 > t4


def test_alltoall_grows_superlinearly_with_ranks():
    t4 = run_benchmark(M, "Alltoall", 4, 65536).time_us
    t16 = run_benchmark(M, "Alltoall", 16, 65536).time_us
    assert t16 > 3 * t4


def test_allgather_equals_allgatherv_at_uniform_sizes():
    a = run_benchmark(M, "Allgather", 8, 65536).time_us
    v = run_benchmark(M, "Allgatherv", 8, 65536).time_us
    assert v == pytest.approx(a, rel=0.05)


def test_iterations_average_consistently():
    one = run_benchmark(M, "Sendrecv", 4, 65536, iterations=1).time_us
    four = run_benchmark(M, "Sendrecv", 4, 65536, iterations=4).time_us
    assert four == pytest.approx(one, rel=0.25)


def test_sweep_covers_cpu_counts():
    sweep = sweep_benchmark(M, "Bcast", cpu_counts=[2, 4, 8], msg_bytes=4096)
    assert [p for p, _t in sweep.series()] == [2, 4, 8]
    assert all(t > 0 for _p, t in sweep.series())


def test_sweep_default_counts_respect_machine():
    sweep = sweep_benchmark(M, "Barrier", msg_bytes=0, max_cpus=16)
    assert [p for p, _ in sweep.series()] == [2, 4, 8, 16]


def test_run_suite_returns_all():
    out = run_suite(M, 4, benchmarks=("Barrier", "Bcast", "Alltoall"),
                    msg_bytes=8192)
    assert set(out) == {"Barrier", "Bcast", "Alltoall"}


def test_deterministic_measurements():
    a = run_benchmark(M, "Allreduce", 8, MB).time_us
    b = run_benchmark(M, "Allreduce", 8, MB).time_us
    assert a == b


def test_result_str_contains_key_fields():
    res = run_benchmark(M, "Sendrecv", 4, 4096)
    s = str(res)
    assert "Sendrecv" in s and "P=4" in s
