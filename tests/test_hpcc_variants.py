"""Single/Star/Global HPCC variant tests."""

import pytest

from repro import get_machine
from repro.hpcc.variants import (
    dgemm_variants,
    fft_variants,
    full_variant_table,
    randomaccess_variants,
    stream_variants,
)
from tests.conftest import make_test_machine

M = make_test_machine(cpus_per_node=2)


def test_stream_star_no_worse_than_single_on_private_memory():
    """Test machine has no node sharing: Star == Single."""
    v = stream_variants(M, 4)
    assert v.star == pytest.approx(v.single, rel=0.01)
    assert v.unit == "GB/s"


def test_stream_star_penalty_on_shared_fsb():
    """The Xeon pair shares a front-side bus: Star < Single."""
    v = stream_variants(get_machine("xeon"), 8)
    assert v.star < v.single
    assert v.star_efficiency == pytest.approx(0.85, rel=0.02)


def test_dgemm_star_equals_single():
    """DGEMM is cache-resident: node sharing is free."""
    v = dgemm_variants(get_machine("xeon"), 8)
    assert v.star == pytest.approx(v.single, rel=0.01)


def test_fft_global_below_star_aggregate():
    """The distributed FFT pays alltoalls the Star mode does not."""
    v = fft_variants(get_machine("opteron"), 8)
    assert v.global_ is not None
    assert v.global_ < v.star * 8


def test_randomaccess_global_far_below_local():
    """Remote updates are orders slower than the local update rate."""
    v = randomaccess_variants(get_machine("opteron"), 8)
    assert v.global_ is not None
    assert v.global_ < 0.2 * v.star * 8


def test_full_variant_table_rows():
    rows = full_variant_table(M, 4)
    assert [r.benchmark for r in rows] == [
        "STREAM_Triad", "DGEMM", "FFT", "RandomAccess",
    ]
    for r in rows:
        assert r.single > 0 and r.star > 0


def test_vector_machine_fft_star_is_slow():
    """The SX-8's scalar unit throttles Star-FFT (paper: HPCC's FFT does
    not vectorise), even though its STREAM Star is enormous."""
    sx8 = full_variant_table(get_machine("sx8"), 8)
    xeon = full_variant_table(get_machine("xeon"), 8)
    by = lambda rows, b: next(r for r in rows if r.benchmark == b)  # noqa: E731
    assert by(sx8, "STREAM_Triad").star > 10 * by(xeon, "STREAM_Triad").star
    assert by(sx8, "FFT").star < 20 * by(xeon, "FFT").star


def test_verification_battery_passes_everywhere():
    from repro.hpcc.verification import run_verification

    for name in ("sx8", "xeon", "x1_msp"):
        report = run_verification(get_machine(name), 4)
        assert report.all_passed, str(report)


def test_verification_report_rendering():
    from repro.hpcc.verification import run_verification

    report = run_verification(M, 4)
    text = str(report)
    assert "PASSED" in text and "overall:" in text
    assert len(report.items) == 4
