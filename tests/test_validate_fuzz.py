"""Config fuzzer: determinism, battery soundness, shrinker minimality."""

from pathlib import Path

import pytest

from repro.validate.__main__ import main as validate_main
from repro.validate.fuzz import (
    FuzzCase,
    base_machine,
    build_machine,
    check_case,
    run_fuzz,
    sample_case,
    shrink,
)

REPO = Path(__file__).parents[1]


# -- determinism ------------------------------------------------------------------

def test_same_seed_same_configs_same_verdicts():
    a = run_fuzz(seed=7, n_configs=8)
    b = run_fuzz(seed=7, n_configs=8)
    assert a.to_dict() == b.to_dict()
    assert [v.case for v in a.verdicts] == [v.case for v in b.verdicts]


def test_different_seeds_sample_different_configs():
    a = run_fuzz(seed=1, n_configs=8)
    b = run_fuzz(seed=2, n_configs=8)
    assert [v.case.perturbations for v in a.verdicts] != \
           [v.case.perturbations for v in b.verdicts]


def test_case_roundtrips_through_dict():
    import random

    case = sample_case(random.Random(5), seed=5, index=3)
    assert FuzzCase.from_dict(case.to_dict()) == case


# -- the battery on real configs --------------------------------------------------

def test_battery_passes_on_sampled_configs():
    report = run_fuzz(seed=42, n_configs=10)
    assert report.ok, [v.to_dict() for v in report.failures]
    assert report.configs == 10
    assert report.to_dict()["passed"] == 10


def test_baseline_machine_is_valid_and_passes():
    case = FuzzCase(seed=0, index=0, perturbations=())
    assert build_machine(case) == base_machine()
    verdict = check_case(case)
    assert verdict.passed, verdict.violations


def test_spec_perturbations_apply_and_clamp():
    case = FuzzCase(seed=0, index=0, perturbations=(
        ("network.link_gbs", 2.0),
        ("node.cpus", 4),
        ("node.shm_flow_gbs", 4.0),   # pushes flow past the node aggregate
        ("topology", "fattree"),
    ))
    m = build_machine(case)
    base = base_machine()
    assert m.network.link_gbs == pytest.approx(base.network.link_gbs * 2.0)
    assert m.node.cpus == 4
    # Clamped back into validity instead of raising.
    assert m.node.shm_node_gbs >= m.node.shm_flow_gbs
    assert m.network.topology_kind == "fattree"
    assert m.network.group_sizes  # fattree needs group sizes


def test_fault_perturbations_slow_the_machine_down():
    clean = FuzzCase(seed=0, index=0, perturbations=())
    # slow_node degrades node 0's NIC and shm; a bandwidth-bound message
    # between its two ranks must get slower.
    faulty = FuzzCase(seed=0, index=0, perturbations=(
        ("fault.slow_node", 4.0),))
    from repro.mpi.cluster import Cluster
    from repro.validate.fuzz import _pingpong_prog, fabric_setup_for

    m = build_machine(clean)
    t_clean = Cluster(m, 2).run(_pingpong_prog, 1 << 20).results[0]
    t_faulty = Cluster(m, 2).run(
        _pingpong_prog, 1 << 20,
        fabric_setup=fabric_setup_for(faulty)).results[0]
    assert t_faulty > t_clean


# -- shrinking --------------------------------------------------------------------

def _synthetic_checks(machine, case):
    """Fails iff BOTH a slow link and a slow shm latency are present."""
    lk = case.get("network.link_gbs")
    sl = case.get("node.shm_latency_us")
    if lk is not None and lk < 0.5 and sl is not None and sl > 2:
        return ["synthetic failure"]
    return []


def test_shrinker_reaches_minimal_failing_set():
    case = FuzzCase(seed=0, index=0, perturbations=(
        ("fault.extra_latency_us", 5.0),
        ("network.link_gbs", 0.3),
        ("node.shm_latency_us", 3.0),
        ("processor.peak_gflops", 2.0),
    ))
    assert not check_case(case, _synthetic_checks).passed
    small = shrink(case, _synthetic_checks)
    assert dict(small.perturbations) == {
        "network.link_gbs": 0.3, "node.shm_latency_us": 3.0}
    # 1-minimality: removing either remaining perturbation makes it pass.
    for key, _ in small.perturbations:
        assert check_case(small.without(key), _synthetic_checks).passed


def test_shrunk_failures_reported_with_replay_line():
    report = run_fuzz(seed=3, n_configs=4, checks=_synthetic_checks)
    doc = report.to_dict()
    for failure in doc["failures"]:
        assert failure["replay"] == "--fuzz 4 --fuzz-seed 3"
        assert set(failure["shrunk"]) <= set(failure["perturbations"])


# -- CLI --------------------------------------------------------------------------

def test_validate_cli_fuzz_only(tmp_path, capsys):
    report_path = tmp_path / "fuzz.json"
    rc = validate_main(["--skip-golden", "--skip-invariants",
                        "--fuzz", "3", "--fuzz-seed", "1",
                        "--report", str(report_path)])
    assert rc == 0
    assert report_path.exists()
    out = capsys.readouterr().out
    assert "fuzz: 3 configs, 0 failures (seed 1)" in out
    assert "VALIDATION PASSED" in out


def test_validate_cli_all_layers_disabled_is_usage_error(capsys):
    rc = validate_main(["--skip-golden", "--skip-invariants"])
    assert rc == 2
    assert "every validation layer is disabled" in capsys.readouterr().err


def test_validate_cli_unknown_figure_is_usage_error(capsys):
    rc = validate_main(["--figure", "99"])
    assert rc == 2
    assert "unknown figure" in capsys.readouterr().err
