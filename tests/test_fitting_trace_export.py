"""LogGP fitting and Chrome-trace export tests."""

import json

import pytest

from repro import get_machine
from repro.analysis.fitting import fit_loggp, fit_report, measure_one_way
from repro.obs.exporters import chrome_trace_events, write_chrome_trace
from repro.mpi.cluster import Cluster
from tests.conftest import make_test_machine

M = make_test_machine(cpus_per_node=2)


# -- fitting ----------------------------------------------------------------

def test_fit_recovers_configured_bandwidth():
    """The regression must recover the catalog's burst bandwidth."""
    fit = fit_loggp(M, intra_node=False)
    configured = M.fabric_params().effective_point_bw / 1e9
    assert fit.bandwidth_gbs == pytest.approx(configured, rel=0.1)
    assert fit.r_squared > 0.999


def test_fit_recovers_intra_node_flow():
    fit = fit_loggp(M, intra_node=True)
    configured = M.node.shm_flow_gbs
    assert fit.bandwidth_gbs == pytest.approx(configured, rel=0.15)


def test_fit_latency_positive_and_ordered():
    inter = fit_loggp(M, intra_node=False)
    intra = fit_loggp(M, intra_node=True)
    assert 0 < intra.latency_us < inter.latency_us


def test_fit_paper_bandwidth_anchors():
    """Fitting the simulated Xeon recovers the 841 MB/s IB anchor."""
    fit = fit_loggp(get_machine("xeon"), intra_node=False)
    assert fit.bandwidth_gbs * 1000 == pytest.approx(841, rel=0.1)


def test_n_half_reasonable():
    fit = fit_loggp(get_machine("opteron"), intra_node=False)
    # latency ~us, bandwidth ~GB/s => n_1/2 in the KiB-tens-of-KiB range
    assert 512 < fit.n_half < 128 * 1024


def test_measure_one_way_monotone():
    t_small = measure_one_way(M, 64)
    t_big = measure_one_way(M, 1 << 20)
    assert t_big > t_small


def test_fit_report_text():
    text = fit_report(M)
    assert "inter-node" in text and "intra-node" in text
    assert "n_1/2" in text


# -- chrome trace export ------------------------------------------------------

def _traced_cluster():
    cluster = Cluster(M, 4, trace=True)

    def prog(comm):
        yield from comm.compute(flops=1e6, kernel="dgemm")
        yield from comm.allreduce(nbytes=4096)

    cluster.run(prog)
    return cluster


def test_trace_events_structure():
    cluster = _traced_cluster()
    events = chrome_trace_events(cluster)
    phases = {e["ph"] for e in events}
    assert {"M", "X", "s", "f"} <= phases
    # one metadata row per rank
    assert sum(1 for e in events if e["ph"] == "M") == 4
    # every flow start has a matching finish with the same id
    starts = {e["id"] for e in events if e["ph"] == "s"}
    ends = {e["id"] for e in events if e["ph"] == "f"}
    assert starts == ends and starts


def test_trace_timestamps_non_negative_and_ordered():
    cluster = _traced_cluster()
    by_id = {}
    for e in chrome_trace_events(cluster):
        assert e.get("ts", 0) >= 0
        if e["ph"] in ("s", "f"):
            by_id.setdefault(e["id"], {})[e["ph"]] = e["ts"]
    for pair in by_id.values():
        assert pair["f"] >= pair["s"]


def test_write_chrome_trace_valid_json(tmp_path):
    cluster = _traced_cluster()
    path = write_chrome_trace(cluster, tmp_path / "run.json")
    data = json.loads(path.read_text())
    assert "traceEvents" in data
    assert len(data["traceEvents"]) > 10
