"""b_eff effective-bandwidth benchmark tests."""

import pytest

from repro import get_machine
from repro.core.errors import BenchmarkError
from repro.hpcc.beff import (
    BeffConfig,
    beff_message_sizes,
    run_beff,
)
from tests.conftest import make_test_machine

M = make_test_machine(cpus_per_node=2)

CFG = BeffConfig(l_max=1 << 16, n_sizes=9, n_random_rings=2)


def test_size_ladder_geometric():
    sizes = beff_message_sizes(1 << 20, 21)
    assert sizes[0] == 1
    assert sizes[-1] == 1 << 20
    assert sizes == sorted(set(sizes))
    # roughly geometric: consecutive ratios within a factor band
    ratios = [b / a for a, b in zip(sizes[5:], sizes[6:])]
    assert all(1.3 < r < 3.5 for r in ratios)


def test_size_ladder_validation():
    with pytest.raises(BenchmarkError):
        beff_message_sizes(1, 21)
    with pytest.raises(BenchmarkError):
        beff_message_sizes(1024, 1)


def test_beff_runs_and_is_positive():
    res = run_beff(M, 8, CFG)
    assert res.beff_mbs > 0
    assert res.total_gbs == pytest.approx(res.beff_mbs * 8 / 1e3)


def test_beff_needs_two_ranks():
    with pytest.raises(BenchmarkError):
        run_beff(M, 1, CFG)


def test_beff_below_peak_bandwidth():
    """The log-size average sits far below the large-message peak."""
    res = run_beff(M, 8, CFG)
    peak = M.fabric_params().effective_point_bw / 1e6
    assert res.beff_mbs < peak


def test_natural_ring_at_least_random():
    """Neighbour traffic exploits intra-node links; random does not."""
    res = run_beff(M, 16, CFG)
    assert res.ring_mbs >= 0.9 * res.random_mbs


def test_beff_deterministic():
    a = run_beff(M, 8, CFG)
    b = run_beff(M, 8, CFG)
    assert a.beff_mbs == b.beff_mbs


def test_beff_machine_ordering_latency_weighted():
    """The log-size average is latency-weighted: the low-latency Altix
    leads b_eff even though the SX-8 owns the bandwidth benchmarks."""
    vals = {}
    for name in ("sx8", "altix_nl4", "opteron"):
        vals[name] = run_beff(get_machine(name), 16, CFG).beff_mbs
    assert vals["altix_nl4"] > vals["sx8"] > vals["opteron"]


def test_beff_latency_sensitivity():
    """Halving latency lifts b_eff noticeably (small sizes dominate the
    log average), while barely moving the 64 KiB ring bandwidth."""
    import dataclasses

    fast = make_test_machine(base_latency_us=1.0)
    slow = make_test_machine(base_latency_us=8.0)
    b_fast = run_beff(fast, 8, CFG).beff_mbs
    b_slow = run_beff(slow, 8, CFG).beff_mbs
    assert b_fast > 1.3 * b_slow
