"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP-517 editable installs fail; this shim lets ``pip install -e .`` fall
back to ``setup.py develop``.  Metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Simulated reproduction of 'Performance evaluation of "
        "supercomputers using HPCC and IMB Benchmarks' (Saini et al.)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
