#!/usr/bin/env python
"""A spectral-workload study: distributed FFTs across the five systems.

The paper motivates MPI_Alltoall with "spectral methods, signal
processing and climate modeling using Fast Fourier Transforms" (§3.2.3)
and observes that G-FFT tracks alltoall performance.  This example runs
the G-FFTE transpose algorithm over a sweep of transform lengths and
reports sustained Gflop/s per system — the producer/consumer view a
climate-model developer would actually want.

Run:  python examples/climate_fft_workload.py
"""

from repro import get_machine
from repro.hpcc import FFTConfig, run_fft

MACHINES = ("sx8", "x1_msp", "altix_nl4", "xeon", "opteron")
NPROCS = 8
SIZES = (1 << 14, 1 << 17, 1 << 20)  # transform lengths (complex points)


def main() -> None:
    print(f"Distributed 1-D complex FFT, {NPROCS} CPUs "
          "(sustained Gflop/s; higher is better)\n")
    header = f"{'N':>10s}" + "".join(
        f"{get_machine(m).label.split('(')[0].strip():>24s}"
        for m in MACHINES
    )
    print(header)
    print("-" * len(header))
    for n in SIZES:
        cells = []
        for name in MACHINES:
            machine = get_machine(name)
            res = run_fft(machine, NPROCS, FFTConfig(total_elements=n))
            cells.append(f"{res.gflops:24.3f}")
        print(f"{n:>10d}" + "".join(cells))

    print(
        "\nNote how the ordering follows the IMB Alltoall figure, not the "
        "processors' peak Gflop/s: the transform is transpose-bound, and "
        "'performance is directly proportional to the randomly ordered "
        "ring bandwidth' (paper section 4.2)."
    )


if __name__ == "__main__":
    main()
