#!/usr/bin/env python
"""The sequel the paper promised: five more architectures (§5.2).

"In the future we plan to ... include five more architectures — Linux
clusters with different networks, IBM Blue Gene/P, Cray XT4, Cray X1E
and a cluster of IBM POWER5+."  The sequel was never published; this
example runs it on the simulator's projected machine models (see
repro/machine/future.py — constants from public architecture documents,
NOT calibrated against the paper's measurements).

Run:  python examples/future_systems.py
"""

from repro import get_machine
from repro.harness.extended import sequel_study
from repro.imb import run_benchmark
from repro.machine.future import FUTURE_MACHINES

MB = 1024 * 1024


def balance_table() -> None:
    print("HPCC balance metrics at 64 CPUs (projections)\n")
    print(f"{'system':<34s} {'HPL GF/s':>10s} {'eff':>6s} "
          f"{'ring GB/s':>10s} {'lat us':>8s} {'B/KFlop':>9s}")
    print("-" * 82)
    for row in sequel_study(nprocs=64):
        print(f"{row['label']:<34s} {row['hpl_gflops']:>10.1f} "
              f"{row['hpl_efficiency'] * 100:>5.1f}% "
              f"{row['ring_bw_gbs']:>10.3f} {row['ring_latency_us']:>8.1f} "
              f"{row['b_per_kflop']:>9.1f}")


def alltoall_next_to_2005() -> None:
    print("\nIMB Alltoall, 1 MB, 32 CPUs: 2005 testbed vs the sequel set\n")
    machines = [get_machine("sx8"), get_machine("xeon"),
                get_machine("opteron")] + list(FUTURE_MACHINES)
    rows = []
    for m in machines:
        if m.max_cpus < 32:
            continue
        rows.append((m.label, run_benchmark(m, "Alltoall", 32, MB).time_us))
    for label, t in sorted(rows, key=lambda r: r[1]):
        print(f"{label:<36s} {t:>12.0f} us/call")


def main() -> None:
    balance_table()
    alltoall_next_to_2005()
    print(
        "\nReading: the torus machines (BG/P, XT4) trade per-link speed "
        "for scalable wiring; the GigE cluster shows why none of the "
        "paper's five systems used commodity Ethernet."
    )


if __name__ == "__main__":
    main()
