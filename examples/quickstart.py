#!/usr/bin/env python
"""Quickstart: run a program on a simulated supercomputer.

The library simulates the five systems of Saini et al.'s HPCC/IMB study.
A *rank program* is a generator taking a ``Comm``; blocking MPI calls are
``yield from`` expressions.  Virtual time comes from the machine model,
so the same script reports NEC SX-8 timings on your laptop.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Cluster, SUM, get_machine


def pi_by_reduction(comm, samples_per_rank: int):
    """Estimate pi: every rank integrates a slice, allreduce sums it."""
    rng = comm.cluster.rng(comm.rank)

    # Local numerical work costs virtual time on the simulated CPU...
    yield from comm.compute(flops=4.0 * samples_per_rank,
                            nbytes=8.0 * samples_per_rank)
    # ...and real arithmetic keeps the answer honest.
    x = rng.random(samples_per_rank)
    y = rng.random(samples_per_rank)
    hits = float(np.count_nonzero(x * x + y * y <= 1.0))

    total = yield from comm.allreduce(data=np.array([hits]), op=SUM)
    n_total = samples_per_rank * comm.size
    return 4.0 * float(total[0]) / n_total


def main() -> None:
    for machine_name in ("sx8", "altix_nl4", "opteron"):
        machine = get_machine(machine_name)
        cluster = Cluster(machine, nprocs=16)
        result = cluster.run(pi_by_reduction, 100_000)
        pi = result.results[0]
        print(
            f"{machine.label:28s}  pi ~ {pi:.4f}   "
            f"virtual time: {result.elapsed_us:9.1f} us"
        )


if __name__ == "__main__":
    main()
