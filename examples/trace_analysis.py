#!/usr/bin/env python
"""Post-mortem performance analysis of a simulated run.

Runs a 1 MB alltoall on the Dell Xeon cluster with tracing on, prints
the utilisation report (NIC busy fractions, communication matrix,
intra-node share) and exports a Chrome-trace JSON you can open in
chrome://tracing or Perfetto.

Also demonstrates the LogGP fitting loop: measure the simulator the way
you would a real machine and recover the catalog's 841 MB/s InfiniBand
anchor from the outside.

Run:  python examples/trace_analysis.py
"""

from pathlib import Path

import numpy as np

from repro import Cluster, get_machine
from repro.analysis import (
    fit_report,
    format_report,
    utilization_report,
    write_chrome_trace,
)

MB = 1024 * 1024


def workload(comm):
    """A small app phase: compute, exchange, reduce."""
    yield from comm.compute(flops=5e7, nbytes=1e7, kernel="dgemm")
    yield from comm.alltoall(nbytes=MB // 4)
    yield from comm.allreduce(nbytes=8 * 1024)


def main() -> None:
    machine = get_machine("xeon")
    cluster = Cluster(machine, 16, trace=True)
    cluster.run(workload)

    report = utilization_report(cluster)
    print(f"Workload on {machine.label}, 16 CPUs\n")
    print(format_report(report))

    hot = np.unravel_index(np.argmax(report.comm_matrix),
                           report.comm_matrix.shape)
    print(f"hottest pair:       rank {hot[0]} -> rank {hot[1]} "
          f"({report.comm_matrix[hot] / 1e6:.2f} MB)")

    out_dir = Path("traces")   # gitignored: generated artifacts stay out of git
    out_dir.mkdir(exist_ok=True)
    path = write_chrome_trace(cluster, out_dir / "trace_xeon_alltoall.json")
    print(f"\nChrome trace written to {path} "
          "(open in chrome://tracing or ui.perfetto.dev)")

    print("\n" + fit_report(machine))


if __name__ == "__main__":
    main()
