#!/usr/bin/env python
"""Generate and read an HTML run report (the run observatory).

Drives the harness end to end for Fig 12 (Alltoall) at a small CPU cap
with ``--report``: the run records rank×rank communication matrices and
per-resource utilisation timelines, replays one traced representative
scenario per machine for the critical-path verdicts, appends the run to
the ledger, and renders everything into one self-contained HTML page.

The page is also a machine-readable artifact — ``read_report_doc``
parses the embedded run document back out, which is how this script
(and CI) asserts the report against the traced byte counters.

Run:  python examples/run_report.py
Then open traces/run_report.html in a browser.
"""

from pathlib import Path

from repro.harness import read_report_doc
from repro.harness.runner import main as harness_main


def main() -> None:
    out = Path("traces")   # gitignored: generated artifacts stay out of git
    out.mkdir(exist_ok=True)
    report = out / "run_report.html"

    rc = harness_main([
        "--figure", "12", "--max-cpus", "8", "--no-cache",
        "--report", str(report),
        "--bench-json", str(out / "BENCH_harness.json"),
        "--ledger", str(out / "BENCH_ledger.jsonl"),
    ])
    assert rc == 0, f"harness exited {rc}"

    doc = read_report_doc(report)
    print(f"\nreport written to {report} (open it in a browser)")
    print(f"run document schema v{doc['schema_version']}, "
          f"{doc['totals']['points']} points, "
          f"{doc['ledger']['entries']} ledger entries\n")

    print("critical-path verdicts embedded in the report:")
    for machine, run in sorted(doc["observed"]["fig12"].items()):
        cp = run["critical_path"]
        pm = doc["comm"]["phases"][f"fig12:{machine}"]
        matrix_bytes = pm["intra"]["bytes"] + pm["inter"]["bytes"]
        traced = run["traffic"]["total_bytes"]
        assert matrix_bytes == traced, (machine, matrix_bytes, traced)
        print(f"  {machine:10s} {cp['dominant']:9s} "
              f"{cp['dominant_share'] * 100:3.0f}% of "
              f"{cp['elapsed_us']:6.1f} us   "
              f"matrix == traced bytes: {matrix_bytes:>11,d}")
    print("\nevery comm-matrix row-sum matches the transport's traced "
          "byte counters.")


if __name__ == "__main__":
    main()
