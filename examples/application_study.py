#!/usr/bin/env python
"""The paper's thesis, demonstrated with proxy applications.

Section 1 claims every real application is bounded by the four HPCC
locality classes.  This example runs three proxy apps with genuinely
different communication characters across the five machines and shows
which benchmark class predicts each one:

* CG (big blocks)       -> EP-STREAM   (memory bandwidth)
* spectral stepping     -> Alltoall    (Fig 12 / G-FFT)
* AMR ghost exchange    -> Exchange    (Fig 14)

Run:  python examples/application_study.py
"""

from repro import get_machine
from repro.apps import (
    AMRConfig,
    CGConfig,
    SpectralConfig,
    run_amr,
    run_cg,
    run_spectral,
)

MACHINES = ("sx8", "x1_msp", "altix_nl4", "xeon", "opteron")
P = 8


def main() -> None:
    print(f"Proxy applications at {P} CPUs "
          "(time per step/iteration, us; lower is better)\n")
    header = (f"{'system':<28s} {'CG':>10s} {'spectral':>10s} "
              f"{'AMR':>10s} {'AMR comm%':>10s}")
    print(header)
    print("-" * len(header))
    for name in MACHINES:
        m = get_machine(name)
        cg = run_cg(m, P, CGConfig(n_local=100_000, iterations=5))
        sp = run_spectral(m, P, SpectralConfig(total_elements=1 << 16,
                                               steps=2))
        amr = run_amr(m, P, AMRConfig(cells_per_rank=40_000,
                                      ghost_cells=32_768, steps=4))
        print(f"{m.label:<28s} {cg.time_per_iteration_us:>10.1f} "
              f"{sp.time_per_step_us:>10.1f} {amr.time_per_step_us:>10.1f} "
              f"{amr.comm_fraction * 100:>9.0f}%")
    print(
        "\nCG orders by STREAM bandwidth, the spectral code by Alltoall, "
        "and the ghost exchange by the Exchange figure — three different "
        "winners' podiums from one machine set, which is precisely why "
        "the paper reports the full HPCC/IMB matrix instead of one number."
    )


if __name__ == "__main__":
    main()
