#!/usr/bin/env python
"""Design-space exploration: what if the Opteron cluster had InfiniBand?

The paper's balance analysis (Figs 1-4) asks how well a system's network
keeps up with its processors.  Because machines here are plain
dataclasses, you can answer counterfactuals: below we re-run the HPCC
balance metrics for the real Myrinet-based Cray Opteron cluster and for
a hypothetical variant with the Dell cluster's InfiniBand fabric.

Run:  python examples/custom_machine.py
"""

import dataclasses

from repro import get_machine
from repro.hpcc import RingConfig, hpl_model_time, run_ring, run_stream


def build_hypothetical():
    """The Opteron nodes behind the Xeon cluster's InfiniBand network."""
    opteron = get_machine("opteron")
    xeon = get_machine("xeon")
    infiniband = dataclasses.replace(
        xeon.network, name="InfiniBand (hypothetical)"
    )
    return dataclasses.replace(
        opteron,
        name="opteron_ib",
        label="Cray Opteron + InfiniBand",
        network=infiniband,
        notes="Counterfactual: same nodes, swapped fabric.",
    )


def balance_report(machine, nprocs: int) -> None:
    hpl = hpl_model_time(machine, nprocs)
    ring = run_ring(machine, nprocs, RingConfig(n_rings=4))
    stream = run_stream(machine, min(nprocs, 8))
    b_kflop = ring.accumulated_gbs * 1e9 / (hpl.gflops * 1e6)
    byte_flop = stream.copy_gbs * nprocs / hpl.gflops
    print(f"{machine.label:30s} P={nprocs:3d}  "
          f"HPL {hpl.tflops * 1e3:7.1f} GF/s  "
          f"ring {b_kflop:6.1f} B/KFlop  "
          f"stream {byte_flop:5.2f} B/F")


def main() -> None:
    print("HPCC balance metrics (paper Figs 2 and 4 style):\n")
    for machine in (get_machine("opteron"), build_hypothetical()):
        for p in (16, 32, 64):
            balance_report(machine, p)
        print()
    print("The fabric swap lifts the communication balance (B/KFlop) "
          "while the memory balance (B/F) stays put - network and memory "
          "subsystems are independent axes, which is exactly why the "
          "paper reports both.")


if __name__ == "__main__":
    main()
