#!/usr/bin/env python
"""HPL.dat tuning on a simulated machine: panel width and grid shape.

Anyone who has run LINPACK knows the ritual: sweep NB and the P x Q
process grid until the Gflop/s stop improving.  The message-accurate
HPL skeleton makes the ritual free — every configuration is one
deterministic simulation.

Run:  python examples/hpl_tuning.py
"""

from repro import get_machine
from repro.hpcc import HPLConfig, run_hpl

MACHINE = "xeon"
NPROCS = 64
N = 16384


def sweep_nb() -> None:
    print(f"Panel width sweep on {NPROCS} CPUs, N={N} "
          "(near-square grid):\n")
    print(f"{'NB':>6s} {'GFlop/s':>10s} {'efficiency':>12s}")
    machine = get_machine(MACHINE)
    for nb in (32, 64, 128, 256, 512, 1024):
        res = run_hpl(machine, NPROCS, HPLConfig(n=N, nb=nb),
                      mode="skeleton")
        print(f"{nb:>6d} {res.gflops:>10.1f} {res.efficiency * 100:>11.1f}%")


def sweep_grid() -> None:
    print(f"\nProcess grid sweep on {NPROCS} CPUs, N={N}, NB=256:\n")
    print(f"{'P x Q':>8s} {'GFlop/s':>10s} {'efficiency':>12s}")
    machine = get_machine(MACHINE)
    for pr, pc in ((1, 64), (2, 32), (4, 16), (8, 8), (16, 4), (64, 1)):
        res = run_hpl(machine, NPROCS,
                      HPLConfig(n=N, nb=256, grid=(pr, pc)),
                      mode="skeleton")
        print(f"{pr:>3d}x{pc:<4d} {res.gflops:>10.1f} "
              f"{res.efficiency * 100:>11.1f}%")


def main() -> None:
    sweep_nb()
    sweep_grid()
    print(
        "\nThe familiar HPL folklore drops out of the simulation: huge "
        "panels serialise the factorisation and starve the update, flat "
        "1 x Q grids broadcast every panel to every process, and the "
        "near-square grids sit at the top of the table."
    )


if __name__ == "__main__":
    main()
