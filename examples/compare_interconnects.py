#!/usr/bin/env python
"""The paper's core exercise: compare five interconnects head-to-head.

Runs a subset of the IMB suite at 1 MB on all five systems (plus the
Cray X1's SSP mode) at a fixed CPU count and prints the comparison the
paper draws in its conclusions: NEC IXS > Cray X1 > NUMALINK4 >
InfiniBand > Myrinet for collective operations.

Run:  python examples/compare_interconnects.py [nprocs]
"""

import sys

from repro import get_machine
from repro.imb import run_benchmark

BENCHES = ("Barrier", "Allreduce", "Alltoall", "Bcast", "Sendrecv")
MACHINES = ("sx8", "x1_msp", "altix_nl4", "xeon", "opteron")
MB = 1024 * 1024


def main() -> None:
    nprocs = int(sys.argv[1]) if len(sys.argv) > 1 else 8

    header = f"{'benchmark':<12s}" + "".join(
        f"{get_machine(m).network.name:>18s}" for m in MACHINES
    )
    print(f"IMB at 1 MB messages, {nprocs} CPUs (us/call; Sendrecv: MB/s)")
    print(header)
    print("-" * len(header))
    for bench in BENCHES:
        cells = []
        for name in MACHINES:
            machine = get_machine(name)
            if nprocs > machine.max_cpus:
                cells.append(f"{'-':>18s}")
                continue
            res = run_benchmark(machine, bench, nprocs,
                                0 if bench == "Barrier" else MB)
            value = (res.bandwidth_mbs if bench == "Sendrecv"
                     else res.time_us)
            cells.append(f"{value:18.1f}")
        print(f"{bench:<12s}" + "".join(cells))

    print(
        "\nExpected ordering (paper section 5.2): "
        "NEC SX-8 > Cray X1 > SGI Altix BX2 > Dell Xeon > Cray Opteron"
    )


if __name__ == "__main__":
    main()
