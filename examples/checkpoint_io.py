#!/usr/bin/env python
"""Checkpoint I/O study on the HLRS storage the paper describes.

§2.5 quotes the NEC SX-8 installation's file systems: "16 1-TB file
systems ... Each file system can sustain 400-600 MB/s throughputs for
large block I/O."  This example asks the question every application
group asked: how long does a checkpoint take, and does collective I/O
help?  It sweeps writer counts for a fixed 8 GiB checkpoint.

Run:  python examples/checkpoint_io.py
"""

from repro import Cluster, get_machine
from repro.io import HLRS_FILESYSTEM, file_open

GIB = 1 << 30
CHECKPOINT = 8 * GIB


def checkpoint(comm, collective: bool):
    """Every rank dumps its share of the checkpoint."""
    share = CHECKPOINT // comm.size
    f = yield from file_open(comm, name="ckpt")
    yield from comm.barrier()
    t0 = comm.now
    if collective:
        yield from f.write_at_all(comm.rank * share, nbytes=share)
    else:
        yield from f.write_at(comm.rank * share, nbytes=share)
        yield from comm.barrier()
    elapsed = comm.now - t0
    yield from f.close()
    return elapsed


def main() -> None:
    machine = get_machine("sx8")
    agg = HLRS_FILESYSTEM.aggregate_mbs
    print(f"8 GiB checkpoint on {machine.label} "
          f"(storage: {HLRS_FILESYSTEM.n_servers} servers, "
          f"{agg:.0f} MB/s aggregate)\n")
    print(f"{'writers':>8s} {'independent':>14s} {'collective':>14s} "
          f"{'GB/s':>8s}")
    for p in (8, 32, 128, 512):
        t_ind = max(Cluster(machine, p).run(checkpoint, False).results)
        t_col = max(Cluster(machine, p).run(checkpoint, True).results)
        gbs = CHECKPOINT / min(t_ind, t_col) / 1e9
        print(f"{p:>8d} {t_ind:>12.2f} s {t_col:>12.2f} s {gbs:>8.2f}")
    print(
        "\nThe sweep shows the classic saturation curve: a few writers "
        "are client-limited, many writers pin the servers' aggregate "
        "bandwidth, and beyond that adding writers buys nothing."
    )


if __name__ == "__main__":
    main()
