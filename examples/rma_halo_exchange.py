#!/usr/bin/env python
"""One-sided halo exchange: the paper's future-work item, working.

A 1-D domain decomposition exchanges boundary strips ("halos") every
step — the Exchange pattern from IMB (§3.2.2), reimplemented with MPI-2
one-sided Put + fence, the mode the paper planned to measure next (§5.2).
On InfiniBand the puts ride RDMA and never touch the target CPU.

Run:  python examples/rma_halo_exchange.py
"""

import numpy as np

from repro import Cluster, get_machine
from repro.mpi.onesided import win_create

STEPS = 4
INTERIOR = 1 << 14   # interior cells per rank
HALO = 1 << 10       # halo strip (elements)


def halo_exchange_rma(comm):
    """Jacobi-style sweep: compute interior, put halos, fence, repeat."""
    left = (comm.rank - 1) % comm.size
    right = (comm.rank + 1) % comm.size
    # window layout: [left halo | right halo]
    win = yield from win_create(comm, 2 * HALO)
    field = np.full(INTERIOR, float(comm.rank))
    yield from win.fence()

    t0 = comm.now
    for step in range(STEPS):
        # interior update (roofline-charged virtual compute)
        yield from comm.compute(flops=5.0 * INTERIOR,
                                nbytes=16.0 * INTERIOR,
                                kernel="stream_triad")
        # expose my boundary strips in the neighbours' windows
        win.put(left, field[:HALO], offset=HALO)       # their right halo
        win.put(right, field[-HALO:], offset=0)        # their left halo
        yield from win.fence()
        if step == 0:
            # first sweep: halos must hold the neighbours' initial values
            assert win.buffer[0] == float(left)
            assert win.buffer[HALO] == float(right)
        field[0] = win.buffer[:HALO].mean()
        field[-1] = win.buffer[HALO:].mean()
    return (comm.now - t0) / STEPS


def main() -> None:
    print(f"RMA halo exchange, {INTERIOR} interior cells, "
          f"{HALO}-element halos, {STEPS} steps\n")
    for name in ("xeon", "sx8", "opteron"):
        machine = get_machine(name)
        for nprocs in (8, 32):
            res = Cluster(machine, nprocs).run(halo_exchange_rma)
            per_step = max(res.results) * 1e6
            print(f"{machine.label:24s} P={nprocs:3d}  "
                  f"{per_step:9.1f} us/step")
        print()


if __name__ == "__main__":
    main()
