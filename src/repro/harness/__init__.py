"""Experiment harness: regenerate the paper's tables and figures."""

from .dashboard import (
    REPORT_SCHEMA_VERSION,
    build_run_doc,
    read_report_doc,
    render_html,
    write_report,
)
from .figures import (
    ALL_FIGURES,
    FLAGSHIP_CPUS,
    HPCC_SWEEP_MACHINES,
    IMB_FIGURES,
    IMB_MACHINES,
    FigureResult,
    FigureSeries,
    fig01,
    fig02,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    flagship_results,
    imb_figure,
)
from .extended import (
    message_size_sweep,
    onesided_comparison,
    sequel_study,
    size_sweep_figure,
    sweep_sizes,
)
from .plot import render_ascii_plot
from .report import (
    figure_to_csv,
    figure_to_json,
    render_figure,
    render_table,
    save_figure,
    save_table,
    table_to_csv,
    table_to_json,
)
from .tables import ALL_TABLES, TableResult, table1, table2, table3

__all__ = [
    "FigureResult",
    "FigureSeries",
    "TableResult",
    "ALL_FIGURES",
    "ALL_TABLES",
    "IMB_FIGURES",
    "IMB_MACHINES",
    "HPCC_SWEEP_MACHINES",
    "FLAGSHIP_CPUS",
    "fig01", "fig02", "fig03", "fig04", "fig05", "fig06", "fig07",
    "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
    "imb_figure",
    "flagship_results",
    "table1", "table2", "table3",
    "render_figure", "render_table", "render_ascii_plot",
    "figure_to_csv", "table_to_csv", "figure_to_json", "table_to_json",
    "message_size_sweep", "size_sweep_figure", "sweep_sizes",
    "onesided_comparison", "sequel_study",
    "save_figure", "save_table",
    "REPORT_SCHEMA_VERSION", "build_run_doc", "read_report_doc",
    "render_html", "write_report",
]
