"""ASCII plotting for figure results.

Renders a :class:`~repro.harness.figures.FigureResult` as a log-log
scatter chart in plain text — enough to eyeball the orderings and
crossovers the paper's figures show, without any plotting dependency.

Each series gets a letter marker; collisions show the later series'
marker with a ``*``.
"""

from __future__ import annotations

import math

from .figures import FigureResult

MARKERS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _log_positions(values: list[float], lo: float, hi: float,
                   cells: int) -> list[int]:
    if hi <= lo:
        return [0 for _ in values]
    span = math.log10(hi) - math.log10(lo)
    out = []
    for v in values:
        frac = (math.log10(v) - math.log10(lo)) / span
        out.append(min(cells - 1, max(0, int(round(frac * (cells - 1))))))
    return out


def render_ascii_plot(fig: FigureResult, width: int = 64,
                      height: int = 18) -> str:
    """Log-log ASCII chart of every series in the figure."""
    pts = [(x, y, i) for i, s in enumerate(fig.series)
           for x, y in zip(s.x, s.y) if x > 0 and y > 0]
    if not pts:
        return f"{fig.fig_id}: no positive data to plot"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)

    grid = [[" "] * width for _ in range(height)]
    cols = _log_positions(xs, x_lo, x_hi, width)
    rows = _log_positions(ys, y_lo, y_hi, height)
    for (x, y, i), c, r in zip(pts, cols, rows):
        r = height - 1 - r  # origin bottom-left
        mark = MARKERS[i % len(MARKERS)]
        grid[r][c] = mark if grid[r][c] == " " else "*"

    out = [f"{fig.fig_id}: {fig.title}"]
    out.append(f"y: {fig.ylabel}  [{y_lo:.3g} .. {y_hi:.3g}] (log)")
    border = "+" + "-" * width + "+"
    out.append(border)
    for row in grid:
        out.append("|" + "".join(row) + "|")
    out.append(border)
    out.append(f"x: {fig.xlabel}  [{x_lo:.3g} .. {x_hi:.3g}] (log)")
    legend = "  ".join(
        f"{MARKERS[i % len(MARKERS)]}={s.label}"
        for i, s in enumerate(fig.series)
    )
    out.append(legend)
    return "\n".join(out)
