"""Extended experiments beyond the paper's figures.

Implements the measurement campaigns the paper announces as future work
(§5.2):

* :func:`message_size_sweep` — one IMB benchmark as a function of
  message size, 1 B to 2 MB (the paper only plots 1 MB);
* :func:`size_sweep_figure` — the sweep across all five systems, in the
  same :class:`~repro.harness.figures.FigureResult` form the regular
  harness uses (so rendering/CSV export work unchanged);
* :func:`onesided_comparison` — IMB-EXT Unidir_Put/Unidir_Get next to
  the two-sided PingPong, per machine;
* :func:`sequel_study` — the announced five extra architectures
  (Blue Gene/P, Cray XT4, Cray X1E, POWER5+, GigE cluster; projections,
  see :mod:`repro.machine.future`) on the paper's headline metrics.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..hpcc import RingConfig, run_ring
from ..hpcc.hpl import hpl_model_time
from ..imb.framework import imb_message_sizes
from ..imb.suite import run_benchmark
from ..machine import MachineSpec, get_machine
from ..machine.future import FUTURE_MACHINES
from .figures import IMB_MACHINES, FigureResult, FigureSeries

#: Future-work sweep upper bound: "from 1 byte to 2 MB" (§5.2).
SWEEP_MAX_BYTES = 2 * 1024 * 1024


def sweep_sizes(max_bytes: int = SWEEP_MAX_BYTES) -> list[int]:
    """1, 2, 4, ... 2 MiB (IMB schedule without the zero-size probe)."""
    return [s for s in imb_message_sizes(max_bytes) if s > 0]


def message_size_sweep(
    machine: MachineSpec,
    benchmark: str,
    nprocs: int,
    sizes: Sequence[int] | None = None,
) -> list[tuple[int, float, float | None]]:
    """Run one benchmark over a size ladder.

    Returns ``[(msg_bytes, time_us, bandwidth_mbs | None), ...]``.
    """
    sizes = list(sizes) if sizes is not None else sweep_sizes()
    out = []
    for nbytes in sizes:
        res = run_benchmark(machine, benchmark, nprocs, nbytes)
        out.append((nbytes, res.time_us, res.bandwidth_mbs))
    return out


def size_sweep_figure(
    benchmark: str,
    nprocs: int = 16,
    machines: tuple[str, ...] = IMB_MACHINES,
    sizes: Sequence[int] | None = None,
    field: str = "time_us",
) -> FigureResult:
    """The future-work plot: benchmark vs message size, all machines."""
    series = []
    for name in machines:
        m = get_machine(name)
        if nprocs > m.max_cpus:
            continue
        pts = message_size_sweep(m, benchmark, nprocs, sizes)
        idx = 1 if field == "time_us" else 2
        xs = tuple(float(p[0]) for p in pts)
        ys = tuple(float(p[idx]) for p in pts if p[idx] is not None)
        series.append(FigureSeries(machine=name, label=m.label,
                                   x=xs[:len(ys)], y=ys))
    return FigureResult(
        fig_id=f"sweep_{benchmark.lower()}",
        title=f"IMB {benchmark} vs message size at {nprocs} CPUs "
              "(paper future work)",
        xlabel="message size (bytes)",
        ylabel="time (us/call)" if field == "time_us" else "bandwidth (MB/s)",
        series=tuple(series),
    )


def onesided_comparison(nprocs: int = 4,
                        msg_bytes: int = 1024 * 1024) -> dict[str, dict]:
    """GET/PUT vs two-sided transfer times per machine (§5.2 plan)."""
    out = {}
    for name in ("sx8", "altix_nl4", "xeon", "opteron"):
        m = get_machine(name)
        out[name] = {
            "PingPong": run_benchmark(m, "PingPong", nprocs, msg_bytes).time_us,
            "Unidir_Put": run_benchmark(m, "Unidir_Put", nprocs,
                                        msg_bytes).time_us,
            "Unidir_Get": run_benchmark(m, "Unidir_Get", nprocs,
                                        msg_bytes).time_us,
        }
    return out


def sequel_study(nprocs: int = 64) -> list[dict]:
    """The five announced extra systems on the paper's balance metrics."""
    rows = []
    for m in FUTURE_MACHINES:
        p = min(nprocs, m.max_cpus)
        hpl = hpl_model_time(m, p)
        ring = run_ring(m, p, RingConfig(n_rings=3))
        rows.append({
            "machine": m.name,
            "label": m.label,
            "cpus": p,
            "hpl_gflops": hpl.gflops,
            "hpl_efficiency": hpl.efficiency,
            "ring_bw_gbs": ring.bandwidth_gbs,
            "ring_latency_us": ring.latency_us,
            # per-CPU ring bytes/s over per-CPU HPL kflop/s
            "b_per_kflop": (ring.bandwidth_gbs * 1e9)
            / (hpl.gflops / p * 1e6),
        })
    return rows
