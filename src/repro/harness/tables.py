"""Regeneration of the paper's Tables 1-3, plus the energy ranking.

Table 4 is not in the paper: it ranks every simulated machine (the
paper's systems and the future-work projections) by modelled HPL energy
efficiency — the dimension the 2006 study could not measure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.energy import energy_ranking
from ..analysis.ratios import TABLE3_UNITS, kiviat_normalise
from ..machine import PAPER_FIVE, get_machine
from .figures import flagship_results


@dataclass(frozen=True)
class TableResult:
    table_id: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    notes: str = ""


def table1() -> TableResult:
    """Architecture parameters of SGI Altix BX2 (static configuration)."""
    params = get_machine("altix_nl4").extra["table1"]
    return TableResult(
        table_id="table1",
        title="Architecture parameters of SGI Altix BX2",
        headers=("Characteristics", "SGI Altix BX2"),
        rows=tuple((k, v) for k, v in params.items()),
    )


def table2() -> TableResult:
    """System characteristics of the five computing platforms."""
    headers = (
        "Platform", "Type", "CPUs/node", "Clock (GHz)", "Peak/node (Gflop/s)",
        "Network", "Network topology", "Operating system", "Location",
        "Processor vendor", "System vendor",
    )
    rows = []
    for m in PAPER_FIVE:
        rows.append((
            m.label,
            m.system_type,
            m.node.cpus,
            m.processor.clock_ghz,
            m.peak_node_gflops,
            m.network.name,
            m.topology_label,
            m.operating_system,
            m.location,
            m.processor_vendor,
            m.system_vendor,
        ))
    return TableResult(
        table_id="table2",
        title="System characteristics of the five computing platforms",
        headers=headers,
        rows=tuple(rows),
    )


def table3(max_cpus: int | None = None) -> TableResult:
    """Ratio values corresponding to the Fig 5 maxima (measured)."""
    results = flagship_results(max_cpus)
    data = kiviat_normalise(results)
    rows = []
    for col in data.columns:
        unit = TABLE3_UNITS[col]
        rows.append((col, f"{data.maxima[col]:.4g}" + (f" {unit}" if unit else "")))
    return TableResult(
        table_id="table3",
        title="Ratio values corresponding to 1 in Fig 5",
        headers=("Ratio", "Maximum value"),
        rows=tuple(rows),
        notes="Paper values: 8.729 TF/s; 1.925; 0.020; 0.039 B/F; "
              "2.893 B/F; 0.094 B/F; 0.197 1/us; 4.9e-5 Update/F.",
    )


def table4() -> TableResult:
    """Energy-efficiency ranking of all simulated machines (modelled).

    Fully analytic (closed-form HPL + power models), so it never
    sweeps CPUs; each machine is profiled at its own maximum
    configuration, Green500 style.
    """
    headers = ("Rank", "Platform", "CPUs", "HPL (Gflop/s)", "Power (kW)",
               "Mflop/s per W", "Energy (MJ)", "EDP (MJ*s)")
    rows = []
    for rank, prof in enumerate(energy_ranking(), start=1):
        rows.append((
            rank,
            prof.label,
            prof.nprocs,
            f"{prof.hpl_gflops:.4g}",
            f"{prof.power_kw:.4g}",
            f"{prof.mflops_per_w:.4g}",
            f"{prof.energy_j / 1e6:.4g}",
            f"{prof.edp_js / 1e6:.4g}",
        ))
    return TableResult(
        table_id="table4",
        title="Modelled HPL energy efficiency of all simulated machines",
        headers=headers,
        rows=tuple(rows),
        notes="Not in the paper. Sustained HPL at each machine's maximum "
              "CPUs; power = busy cores + per-node memory/NIC floors "
              "(see docs/MODEL.md section 13 for the watt provenance).",
    )


ALL_TABLES = {"table1": table1, "table2": table2, "table3": table3,
              "table4": table4}
