"""Regeneration of the paper's Tables 1-3, plus the energy ranking.

Thin adapters over the declarative scenario registry
(:mod:`repro.scenarios.builtin`), which holds the actual table
construction; the legacy call surface (``table3(max_cpus=...)``) is
preserved.  Table 4 is not in the paper: it ranks every simulated
machine by modelled HPL energy efficiency — the dimension the 2006
study could not measure.
"""

from __future__ import annotations

from .figures import flagship_results  # noqa: F401  (compat re-export)
from .results import TableResult  # noqa: F401  (compat re-export)


def _run(table_id: str, max_cpus=None):
    from ..scenarios import get_scenario
    return get_scenario(table_id).run(max_cpus=max_cpus)


def table1() -> TableResult:
    """Architecture parameters of SGI Altix BX2 (static configuration)."""
    return _run("table1")


def table2() -> TableResult:
    """System characteristics of the five computing platforms."""
    return _run("table2")


def table3(max_cpus: int | None = None) -> TableResult:
    """Ratio values corresponding to the Fig 5 maxima (measured)."""
    return _run("table3", max_cpus)


def table4() -> TableResult:
    """Energy-efficiency ranking of all simulated machines (modelled)."""
    return _run("table4")


ALL_TABLES = {"table1": table1, "table2": table2, "table3": table3,
              "table4": table4}
