"""Rendering of figures/tables: ASCII for the terminal, CSV/JSON for files."""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from pathlib import Path

from .figures import FigureResult
from .tables import TableResult


def render_table(table: TableResult) -> str:
    """Fixed-width ASCII rendering of a TableResult."""
    headers = [str(h) for h in table.headers]
    rows = [[str(c) for c in row] for row in table.rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)

    def fmt(cells):
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = [table.title, "=" * len(table.title), fmt(headers), sep]
    out += [fmt(row) for row in rows]
    if table.notes:
        out += ["", f"note: {table.notes}"]
    return "\n".join(out)


def render_figure(fig: FigureResult, x_fmt: str = "{:.4g}",
                  y_fmt: str = "{:.4g}") -> str:
    """Series-table rendering of a FigureResult."""
    out = [f"{fig.fig_id}: {fig.title}",
           "=" * (len(fig.fig_id) + len(fig.title) + 2),
           f"x = {fig.xlabel}; y = {fig.ylabel}", ""]
    for s in fig.series:
        out.append(f"-- {s.label}")
        xs = "  ".join(x_fmt.format(x) for x in s.x)
        ys = "  ".join(y_fmt.format(y) for y in s.y)
        out.append(f"   x: {xs}")
        out.append(f"   y: {ys}")
    if fig.notes:
        out += ["", f"note: {fig.notes}"]
    return "\n".join(out)


def figure_to_csv(fig: FigureResult) -> str:
    """Long-format CSV (machine, label, x, y)."""
    buf = io.StringIO()
    w = csv.writer(buf)
    w.writerow(["figure", "machine", "label", fig.xlabel, fig.ylabel])
    for s in fig.series:
        for x, y in zip(s.x, s.y):
            w.writerow([fig.fig_id, s.machine, s.label, x, y])
    return buf.getvalue()


def table_to_csv(table: TableResult) -> str:
    buf = io.StringIO()
    w = csv.writer(buf)
    w.writerow(table.headers)
    w.writerows(table.rows)
    return buf.getvalue()


def figure_to_json(fig: FigureResult) -> str:
    """JSON document with full series data and metadata."""
    doc = {
        "fig_id": fig.fig_id,
        "title": fig.title,
        "xlabel": fig.xlabel,
        "ylabel": fig.ylabel,
        "notes": fig.notes,
        "series": [dataclasses.asdict(s) for s in fig.series],
    }
    return json.dumps(doc, indent=1)


def table_to_json(table: TableResult) -> str:
    doc = {
        "table_id": table.table_id,
        "title": table.title,
        "headers": list(table.headers),
        "rows": [list(r) for r in table.rows],
        "notes": table.notes,
    }
    return json.dumps(doc, indent=1)


def save_figure(fig: FigureResult, out_dir: str | Path) -> Path:
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"{fig.fig_id}.csv"
    path.write_text(figure_to_csv(fig))
    (out / f"{fig.fig_id}.txt").write_text(render_figure(fig) + "\n")
    (out / f"{fig.fig_id}.json").write_text(figure_to_json(fig) + "\n")
    return path


def save_table(table: TableResult, out_dir: str | Path) -> Path:
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"{table.table_id}.csv"
    path.write_text(table_to_csv(table))
    (out / f"{table.table_id}.txt").write_text(render_table(table) + "\n")
    (out / f"{table.table_id}.json").write_text(table_to_json(table) + "\n")
    return path
