"""Entry point for ``python -m repro.harness``."""

import sys

from .runner import main

sys.exit(main())
