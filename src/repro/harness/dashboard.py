"""Self-contained HTML run report: matrices, timelines, trends, verdicts.

``python -m repro.harness --report out.html`` funnels one run's
observability into a single file with zero external dependencies — no
JS frameworks, no CDN fonts, just inline SVG:

* per-figure **critical-path verdicts** (the analyser's own dominant
  resource, share, and binding window — the report never re-derives a
  verdict, so it cannot disagree with the analyser);
* rank×rank **communication heatmaps** per observed (figure, machine)
  phase, with intra/inter-node splits and per-phase traffic totals;
* **utilisation timelines** per resource kind from the time-bucketed
  busy series;
* the harness **span waterfall** and the **ledger trend** of wall time
  across recorded runs.

The full run document is also embedded verbatim in a
``<script type="application/json" id="run-data">`` block, so CI jobs and
notebooks can parse the numbers straight out of the HTML artifact.

Colors follow the repo's validated reference palette: one blue
sequential ramp for magnitude (heatmaps), fixed categorical slots per
resource kind (identity — a kind keeps its hue in every chart), and all
text in text tokens, never series colors.
"""

from __future__ import annotations

import html
import json
import math
from pathlib import Path

#: Bump when the embedded run-document layout changes incompatibly.
#: v2: optional ``energy`` section (per-phase joules + totals) when the
#: run had energy accounting on; absent key means accounting was off.
#: v3: optional ``telemetry`` (distributed-trace summary) and
#: ``service`` (service-metrics snapshot) sections when the run had
#: ``--telemetry`` on; they feed the service-health panel.
REPORT_SCHEMA_VERSION = 3

# Sequential blue ramp (steps 100..700) — magnitude encoding, light = near zero.
_SEQ_RAMP = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
)

#: Fixed categorical slot per resource kind (identity never cycles).
_KIND_COLORS = {
    "egress": "#2a78d6",   # slot 1 blue
    "ingress": "#eb6834",  # slot 2 orange
    "core": "#1baf7a",     # slot 3 aqua
    "shm": "#eda100",      # slot 4 yellow
    "nicbus": "#e87ba4",   # slot 5 magenta
}
_KIND_ORDER = ("egress", "ingress", "core", "shm", "nicbus")

#: Fixed categorical slot per energy component (stacked bars, power panel).
_COMPONENT_COLORS = {
    "cpu_j": "#2a78d6",    # slot 1 blue
    "mem_j": "#eb6834",    # slot 2 orange
    "nic_j": "#1baf7a",    # slot 3 aqua
    "link_j": "#eda100",   # slot 4 yellow
}
_COMPONENT_LABELS = {
    "cpu_j": "cpu", "mem_j": "memory", "nic_j": "nic", "link_j": "links",
}

#: Span categories reuse the same fixed slots (identity per category).
_CAT_COLORS = {
    "figure": "#2a78d6",
    "table": "#eb6834",
    "observe": "#1baf7a",
    "sweep": "#86b6ef",
    "report": "#9ec5f4",
    "harness": "#6da7ec",
}

_GRID = "#f0efec"       # neutral grid / empty heatmap cell
_TEXT = "#0b0b0b"
_TEXT_2 = "#52514e"


def _esc(s: object) -> str:
    return html.escape(str(s), quote=True)


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} GiB"  # pragma: no cover - loop always returns


def _fmt_j(j: float) -> str:
    if abs(j) >= 1e6:
        return f"{j / 1e6:.2f} MJ"
    if abs(j) >= 1e3:
        return f"{j / 1e3:.2f} kJ"
    if abs(j) >= 1:
        return f"{j:.2f} J"
    return f"{j * 1e3:.2f} mJ"


def _fmt_s(sec: float) -> str:
    if sec >= 1:
        return f"{sec:.2f} s"
    if sec >= 1e-3:
        return f"{sec * 1e3:.2f} ms"
    return f"{sec * 1e6:.1f} us"


def _seq_color(frac: float) -> str:
    """Ramp color for ``frac`` in [0, 1]."""
    if frac <= 0:
        return _GRID
    i = min(len(_SEQ_RAMP) - 1, int(frac * len(_SEQ_RAMP)))
    return _SEQ_RAMP[i]


# -- document assembly ---------------------------------------------------------


def build_run_doc(*, harness: dict, totals: dict, items: list[dict],
                  comm: dict | None, timeline: dict | None,
                  observed: dict | None, spans: list[dict],
                  ledger: dict | None, energy: dict | None = None,
                  telemetry: dict | None = None,
                  service: dict | None = None) -> dict:
    """Assemble the machine-readable run document the report renders.

    ``observed`` is ``{fig_id: {machine: {"critical_path", "straggler",
    "traffic"}}}`` from :mod:`repro.harness.observe`; ``ledger`` is
    ``{"path", "entries", "trend", "regression"}`` or None; ``energy``
    is ``{"totals", "phases"}`` from the energy recorder, or None when
    accounting was off (the key is still present so readers need no
    version probing).  ``telemetry`` is a
    :func:`~repro.obs.telemetry.trace_summary` document and ``service``
    a :class:`~repro.service.health.ServiceMetrics` snapshot — both
    None when the run was untraced.
    """
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "harness": harness,
        "totals": totals,
        "items": items,
        "comm": comm or {"phases": {}},
        "timeline": timeline or {"phases": {}},
        "observed": observed or {},
        "spans": spans,
        "ledger": ledger,
        "energy": energy,
        "telemetry": telemetry,
        "service": service,
    }


# -- SVG building blocks -------------------------------------------------------


def _heatmap_svg(pm: dict, caption: str) -> str:
    """One rank×rank byte heatmap (log color scale) from a PhaseMatrix dict."""
    n = max(1, pm["nprocs"])
    cell = max(6, min(22, 352 // n))
    pad_l, pad_t = 34, 18
    w, h = pad_l + n * cell + 8, pad_t + n * cell + 26
    vmax = max((v[1] for v in pm["cells"].values()), default=0)
    lmax = math.log1p(vmax) or 1.0
    parts = [
        f'<svg role="img" width="{w}" height="{h}" '
        f'viewBox="0 0 {w} {h}" aria-label="{_esc(caption)}">',
        f'<rect x="{pad_l}" y="{pad_t}" width="{n * cell}" '
        f'height="{n * cell}" fill="{_GRID}"/>',
    ]
    for key, (msgs, nbytes) in pm["cells"].items():
        src, dst = (int(x) for x in key.split(","))
        frac = math.log1p(nbytes) / lmax
        x, y = pad_l + dst * cell, pad_t + src * cell
        parts.append(
            f'<rect x="{x}" y="{y}" width="{cell - 1}" height="{cell - 1}" '
            f'fill="{_seq_color(frac)}">'
            f"<title>rank {src} → {dst}: {msgs} msgs, "
            f"{_esc(_fmt_bytes(nbytes))}</title></rect>"
        )
    step = max(1, n // 4)
    for r in range(0, n, step):
        parts.append(
            f'<text x="{pad_l - 4}" y="{pad_t + r * cell + cell * 0.75}" '
            f'text-anchor="end" class="tick">{r}</text>'
        )
        parts.append(
            f'<text x="{pad_l + r * cell + cell / 2}" y="{pad_t - 5}" '
            f'text-anchor="middle" class="tick">{r}</text>'
        )
    parts.append(
        f'<text x="{pad_l + n * cell / 2}" y="{h - 8}" '
        f'text-anchor="middle" class="axis">destination rank → '
        f"(rows: source)</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


def _timeline_svg(kinds: dict[str, dict], caption: str) -> str:
    """Occupancy lines (mean busy resources) per kind over virtual time."""
    width, height, pad_l, pad_b, pad_t = 560, 150, 44, 26, 8
    t_max = 0.0
    y_max = 0.0
    series: list[tuple[str, list[tuple[float, float]]]] = []
    for kind in _KIND_ORDER:
        sdict = kinds.get(kind)
        if not sdict or not sdict["buckets"]:
            continue
        w = sdict["width_s"]
        pts = [(int(i) * w, v / w)
               for i, v in sorted(sdict["buckets"].items(),
                                  key=lambda kv: int(kv[0]))]
        series.append((kind, pts))
        t_max = max(t_max, max(t for t, _ in pts) + w)
        y_max = max(y_max, max(v for _, v in pts))
    if not series:
        return '<p class="muted">no timeline data</p>'
    y_max = y_max or 1.0
    t_max = t_max or 1.0

    def sx(t: float) -> float:
        return pad_l + (t / t_max) * (width - pad_l - 8)

    def sy(v: float) -> float:
        return pad_t + (1 - v / y_max) * (height - pad_t - pad_b)

    parts = [
        f'<svg role="img" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" aria-label="{_esc(caption)}">'
    ]
    for frac in (0.0, 0.5, 1.0):
        y = sy(frac * y_max)
        parts.append(
            f'<line x1="{pad_l}" y1="{y:.1f}" x2="{width - 8}" y2="{y:.1f}" '
            f'stroke="{_GRID}" stroke-width="1"/>'
            f'<text x="{pad_l - 4}" y="{y + 3:.1f}" text-anchor="end" '
            f'class="tick">{frac * y_max:.2g}</text>'
        )
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        t = frac * t_max
        parts.append(
            f'<text x="{sx(t):.1f}" y="{height - 10}" text-anchor="middle" '
            f'class="tick">{t * 1e6:.0f}</text>'
        )
    parts.append(
        f'<text x="{(pad_l + width) / 2}" y="{height - 1}" '
        f'text-anchor="middle" class="axis">virtual time (us) — '
        f"y: mean busy resources</text>"
    )
    for kind, pts in series:
        path = " ".join(f"{sx(t):.1f},{sy(v):.1f}" for t, v in pts)
        parts.append(
            f'<polyline points="{path}" fill="none" '
            f'stroke="{_KIND_COLORS[kind]}" stroke-width="2" '
            f'stroke-linejoin="round"><title>{_esc(kind)}</title></polyline>'
        )
    # Direct labels at line ends, nudged apart when they collide.
    ends = sorted(((pts[-1][1], kind, pts[-1][0]) for kind, pts in series),
                  reverse=True)
    last_y = -1e9
    for v, kind, t in ends:
        y = max(sy(v), last_y + 11)
        last_y = y
        parts.append(
            f'<text x="{min(sx(t) + 4, width - 4):.1f}" y="{y + 3:.1f}" '
            f'text-anchor="end" class="dlabel">{_esc(kind)}</text>'
        )
    parts.append("</svg>")
    legend = "".join(
        f'<span class="key"><span class="swatch" '
        f'style="background:{_KIND_COLORS[k]}"></span>{_esc(k)}</span>'
        for k, _ in series
    )
    return f'{parts[0]}{"".join(parts[1:])}<div class="legend">{legend}</div>'


def _spans_svg(spans: list[dict]) -> str:
    """Waterfall of harness wall spans (two levels deep)."""
    rows: list[tuple[int, dict]] = []
    for root in spans:
        rows.append((0, root))
        for child in root.get("children", ()):
            rows.append((1, child))
    if not rows:
        return '<p class="muted">no spans recorded</p>'
    t0 = min(s["t_start"] for _, s in rows)
    t1 = max(s["t_end"] or s["t_start"] for _, s in rows)
    span_total = (t1 - t0) or 1.0
    width, row_h, pad_l = 560, 16, 120
    height = len(rows) * row_h + 20
    parts = [
        f'<svg role="img" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" aria-label="harness span waterfall">'
    ]
    for i, (depth, s) in enumerate(rows):
        x = pad_l + (s["t_start"] - t0) / span_total * (width - pad_l - 8)
        bw = max(1.5, s["duration_s"] / span_total * (width - pad_l - 8))
        y = i * row_h + 4
        color = _CAT_COLORS.get(s.get("cat", "harness"), _CAT_COLORS["harness"])
        label = (" " * depth) + s["name"]
        parts.append(
            f'<text x="{pad_l - 6}" y="{y + 10}" text-anchor="end" '
            f'class="tick">{_esc(label)}</text>'
            f'<rect x="{x:.1f}" y="{y}" width="{bw:.1f}" height="{row_h - 5}" '
            f'rx="2" fill="{color}">'
            f'<title>{_esc(s["name"])}: {_esc(_fmt_s(s["duration_s"]))}'
            f"</title></rect>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _trend_svg(trend: list) -> str:
    """Wall-time trend over ledger entries for this run's work."""
    if len(trend) < 2:
        return ('<p class="muted">not enough comparable ledger entries yet '
                "for a trend line</p>")
    width, height, pad_l, pad_b = 560, 130, 44, 22
    vals = [float(v) for _sha, v in trend]
    y_max = max(vals) or 1.0
    n = len(vals)

    def sx(i: int) -> float:
        return pad_l + i / (n - 1) * (width - pad_l - 10)

    def sy(v: float) -> float:
        return 8 + (1 - v / y_max) * (height - 8 - pad_b)

    pts = " ".join(f"{sx(i):.1f},{sy(v):.1f}" for i, v in enumerate(vals))
    parts = [
        f'<svg role="img" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" aria-label="ledger wall-time trend">',
        f'<line x1="{pad_l}" y1="{sy(0):.1f}" x2="{width - 10}" '
        f'y2="{sy(0):.1f}" stroke="{_GRID}"/>',
        f'<text x="{pad_l - 4}" y="{sy(y_max) + 3:.1f}" text-anchor="end" '
        f'class="tick">{y_max:.3g}s</text>',
        f'<polyline points="{pts}" fill="none" stroke="{_SEQ_RAMP[7]}" '
        f'stroke-width="2" stroke-linejoin="round"/>',
    ]
    for i, (sha, v) in enumerate(trend):
        parts.append(
            f'<circle cx="{sx(i):.1f}" cy="{sy(float(v)):.1f}" r="4" '
            f'fill="{_SEQ_RAMP[7]}" stroke="#fcfcfb" stroke-width="2">'
            f"<title>{_esc(sha)}: {float(v):.3f}s</title></circle>"
        )
    parts.append(
        f'<text x="{(pad_l + width) / 2}" y="{height - 6}" '
        f'text-anchor="middle" class="axis">runs with identical work, '
        f"oldest → newest (wall seconds)</text></svg>"
    )
    return "".join(parts)


def _power_svg(kinds: dict, ph: dict, caption: str) -> str:
    """Modelled power vs virtual time for one energy phase.

    Prices the time-bucketed network occupancy with the phase's power
    model: egress/ingress/NIC-bus busy seconds at the NIC active-idle
    delta, switch-core busy at the link transfer power.  CPU busy is
    accounted in the joule totals but not time-bucketed, so the curve
    shows *network* dynamic power; the dashed line is the phase's
    average total power (all components) for scale.
    """
    power = ph.get("power")
    if not power or not kinds:
        return '<p class="muted">no bucketed occupancy to price</p>'
    nic_delta = power["nic_active_w"] - power["nic_idle_w"]
    weights = {"egress": nic_delta, "ingress": nic_delta,
               "nicbus": nic_delta, "core": power["link_active_w"]}
    series = [(k, kinds[k]) for k in ("egress", "ingress", "nicbus", "core")
              if kinds.get(k, {}).get("buckets")]
    if not series:
        return '<p class="muted">no bucketed occupancy to price</p>'
    # Kinds bucket independently; rebin everything onto the coarsest
    # width (all widths are powers of two, so bins nest exactly).
    width_s = max(s["width_s"] for _k, s in series)
    joules: dict[int, float] = {}
    for k, s in series:
        w = s["width_s"]
        for i, v in s["buckets"].items():
            j = int(int(i) * w / width_s)
            joules[j] = joules.get(j, 0.0) + v * weights[k]
    pts = [(j * width_s, joules[j] / width_s) for j in sorted(joules)]
    t_max = (max(j for j in joules) + 1) * width_s
    avg_w = (ph["total_j"] / ph["elapsed_s"]) if ph.get("elapsed_s") else 0.0
    y_max = max([v for _t, v in pts] + [avg_w]) or 1.0

    width, height, pad_l, pad_b, pad_t = 560, 150, 50, 26, 8

    def sx(t: float) -> float:
        return pad_l + (t / t_max) * (width - pad_l - 8)

    def sy(v: float) -> float:
        return pad_t + (1 - v / y_max) * (height - pad_t - pad_b)

    parts = [
        f'<svg role="img" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" aria-label="{_esc(caption)}">'
    ]
    for frac in (0.0, 0.5, 1.0):
        y = sy(frac * y_max)
        parts.append(
            f'<line x1="{pad_l}" y1="{y:.1f}" x2="{width - 8}" y2="{y:.1f}" '
            f'stroke="{_GRID}" stroke-width="1"/>'
            f'<text x="{pad_l - 4}" y="{y + 3:.1f}" text-anchor="end" '
            f'class="tick">{frac * y_max:.3g}</text>'
        )
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        t = frac * t_max
        parts.append(
            f'<text x="{sx(t):.1f}" y="{height - 10}" text-anchor="middle" '
            f'class="tick">{t * 1e6:.0f}</text>'
        )
    parts.append(
        f'<text x="{(pad_l + width) / 2}" y="{height - 1}" '
        f'text-anchor="middle" class="axis">virtual time (us) — '
        f"y: modelled network power (W)</text>"
    )
    path = " ".join(f"{sx(t):.1f},{sy(v):.1f}" for t, v in pts)
    parts.append(
        f'<polyline points="{path}" fill="none" '
        f'stroke="{_COMPONENT_COLORS["nic_j"]}" stroke-width="2" '
        f'stroke-linejoin="round"><title>network dynamic power</title>'
        f"</polyline>"
    )
    if avg_w > 0:
        y = sy(avg_w)
        parts.append(
            f'<line x1="{pad_l}" y1="{y:.1f}" x2="{width - 8}" y2="{y:.1f}" '
            f'stroke="{_TEXT_2}" stroke-width="1.5" stroke-dasharray="6 4">'
            f"<title>average total power {avg_w:.1f} W</title></line>"
            f'<text x="{width - 10}" y="{y - 4:.1f}" text-anchor="end" '
            f'class="dlabel">avg {avg_w:.3g} W</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _energy_bars_svg(phases: dict) -> str:
    """Horizontal stacked bars: joules per component for each phase."""
    rows = sorted(phases.items(), key=lambda kv: -kv[1]["total_j"])
    if not rows:
        return '<p class="muted">no energy recorded</p>'
    vmax = max(ph["total_j"] for _name, ph in rows) or 1.0
    width, row_h, pad_l = 560, 20, 210
    bar_span = width - pad_l - 70
    height = len(rows) * row_h + 8
    parts = [
        f'<svg role="img" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" '
        f'aria-label="energy per phase by component">'
    ]
    for i, (name, ph) in enumerate(rows):
        y = i * row_h + 3
        parts.append(
            f'<text x="{pad_l - 6}" y="{y + 11}" text-anchor="end" '
            f'class="tick">{_esc(name)}</text>'
        )
        x = float(pad_l)
        for comp in _COMPONENT_COLORS:
            val = ph.get(comp, 0.0)
            bw = val / vmax * bar_span
            if bw <= 0:
                continue
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{max(bw, 0.8):.1f}" '
                f'height="{row_h - 6}" fill="{_COMPONENT_COLORS[comp]}">'
                f"<title>{_esc(name)} {_COMPONENT_LABELS[comp]}: "
                f"{_esc(_fmt_j(val))}</title></rect>"
            )
            x += bw
        parts.append(
            f'<text x="{min(x + 4, width - 4):.1f}" y="{y + 11}" '
            f'class="tick">{_esc(_fmt_j(ph["total_j"]))}</text>'
        )
    parts.append("</svg>")
    legend = "".join(
        f'<span class="key"><span class="swatch" '
        f'style="background:{_COMPONENT_COLORS[c]}"></span>'
        f"{_COMPONENT_LABELS[c]}</span>"
        for c in _COMPONENT_COLORS
    )
    return f'{"".join(parts)}<div class="legend">{legend}</div>'


# -- page assembly -------------------------------------------------------------

_CSS = """
:root { color-scheme: light; }
body { font: 14px/1.45 system-ui, sans-serif; margin: 0 auto; padding: 20px;
       max-width: 980px; background: #fcfcfb; color: #0b0b0b; }
h1 { font-size: 20px; } h2 { font-size: 16px; margin-top: 28px; }
h3 { font-size: 13px; color: #52514e; font-weight: 600; }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; }
.tile { border: 1px solid #e5e4e0; border-radius: 6px; padding: 8px 14px; }
.tile .v { font-size: 20px; font-weight: 700; }
.tile .k { font-size: 11px; color: #52514e; }
table { border-collapse: collapse; margin: 8px 0; }
th, td { text-align: left; padding: 3px 10px; border-bottom: 1px solid #eee; }
th { font-size: 11px; color: #52514e; text-transform: uppercase; }
svg { display: block; margin: 6px 0; }
svg .tick { font: 10px system-ui, sans-serif; fill: #52514e; }
svg .axis { font: 11px system-ui, sans-serif; fill: #52514e; }
svg .dlabel { font: 11px system-ui, sans-serif; fill: #0b0b0b; }
.legend { display: flex; gap: 14px; font-size: 12px; color: #0b0b0b; }
.key { display: inline-flex; align-items: center; gap: 5px; }
.swatch { width: 10px; height: 10px; border-radius: 2px; display: inline-block; }
.muted { color: #52514e; }
.grid { display: flex; flex-wrap: wrap; gap: 22px; }
.cell { max-width: 440px; }
.flag { color: #d03b3b; font-weight: 600; }
.ok { color: #0ca30c; font-weight: 600; }
details summary { cursor: pointer; color: #52514e; font-size: 12px; }
"""


def _verdict_rows(observed: dict) -> str:
    rows = []
    for fig in sorted(observed):
        for machine in sorted(observed[fig]):
            o = observed[fig][machine]
            cp = o["critical_path"]
            win = cp.get("dominant_window_us")
            when = ("-" if not win
                    else f"{win[0]:.1f}–{win[1]:.1f} us")
            str_ = o.get("straggler") or {}
            util = cp.get("utilisation", {})
            rows.append(
                f"<tr><td>{_esc(fig)}</td><td>{_esc(machine)}</td>"
                f"<td><b>{_esc(cp['dominant'])}</b></td>"
                f"<td>{cp['dominant_share'] * 100:.0f}%</td>"
                f"<td>{_esc(when)}</td>"
                f"<td>{util.get('bisection', 0) * 100:.0f}%</td>"
                f"<td>{util.get('nic', 0) * 100:.0f}%</td>"
                f"<td>{str_.get('max_skew_s', 0) * 1e6:.2f} us</td></tr>"
            )
    return "".join(rows)


def _phase_totals_rows(comm: dict) -> str:
    rows = []
    for name, pm in sorted(comm.get("phases", {}).items()):
        rows.append(
            f"<tr><td>{_esc(name)}</td><td>{pm['nprocs']}</td>"
            f"<td>{pm['intra']['msgs'] + pm['inter']['msgs']}</td>"
            f"<td>{_esc(_fmt_bytes(pm['intra']['bytes'] + pm['inter']['bytes']))}</td>"
            f"<td>{_esc(_fmt_bytes(pm['intra']['bytes']))}</td>"
            f"<td>{_esc(_fmt_bytes(pm['inter']['bytes']))}</td></tr>"
        )
    return "".join(rows)


def _trace_rows(telemetry: dict) -> str:
    """One table row per reassembled trace in the telemetry summary."""
    rows = []
    for tid, t in sorted(telemetry.get("traces", {}).items()):
        cats = ", ".join(f"{c}:{n}" for c, n in
                         sorted(t.get("by_cat", {}).items()))
        errs = t.get("errors", 0)
        err_html = (f'<span class="flag">{errs}</span>' if errs
                    else f'<span class="ok">0</span>')
        rows.append(
            f"<tr><td><code>{_esc(tid)}</code></td>"
            f"<td>{_esc(t.get('root_name', '?'))}</td>"
            f"<td>{t.get('spans', 0)}</td>"
            f"<td>{_esc(_fmt_s(t.get('wall_s', 0.0)))}</td>"
            f"<td>{err_html}</td><td>{_esc(cats)}</td></tr>"
        )
    return "".join(rows)


def _service_health_html(telemetry: dict | None,
                         service: dict | None) -> str:
    """The service-health panel: fleet/queue tiles + per-trace summaries."""
    if telemetry is None and service is None:
        return ('<p class="muted">telemetry off for this run '
                "(enable with <code>--telemetry</code>)</p>")
    parts = []
    if service is not None:
        counters = service.get("counters", {})
        gauges = service.get("gauges", {})

        def v(name: str):
            return counters.get(name, gauges.get(name, 0))

        ratio = gauges.get("service.cache.hit_ratio")
        tiles = [
            ("jobs done", v("service.jobs.done")),
            ("jobs failed", v("service.jobs.failed")),
            ("queue depth hwm", v("service.queue.depth_hwm")),
            ("coalesce owned", v("service.coalesce.owned")),
            ("coalesce joined", v("service.coalesce.joined")),
            ("fleet requests", v("service.fleet.requests")),
            ("fleet crashes", v("service.fleet.crashes")),
            ("fleet restarts", v("service.fleet.restarts")),
            ("cache hit ratio",
             "-" if ratio is None else f"{ratio * 100:.0f}%"),
        ]
        parts.append('<div class="tiles">' + "".join(
            f'<div class="tile"><div class="v">{_esc(val)}</div>'
            f'<div class="k">{_esc(k)}</div></div>' for k, val in tiles
        ) + "</div>")
    if telemetry is not None:
        n = len(telemetry.get("traces", {}))
        parts.append(
            f'<p class="muted">{telemetry.get("spans", 0)} spans across '
            f'{n} reassembled trace{"s" if n != 1 else ""}</p>'
            "<table><tr><th>trace</th><th>root</th><th>spans</th>"
            "<th>wall</th><th>errors</th><th>spans by category</th></tr>"
            f"{_trace_rows(telemetry)}</table>"
        )
    return "".join(parts)


def render_html(doc: dict) -> str:
    """Render the run document into one self-contained HTML page."""
    h = doc["harness"]
    totals = doc["totals"]
    observed = doc["observed"]
    comm_phases = doc["comm"].get("phases", {})
    tl_phases = doc["timeline"].get("phases", {})
    ledger = doc.get("ledger")
    energy = doc.get("energy")

    tiles = [
        ("git", h.get("git_sha", "unknown")),
        ("wall", _fmt_s(h.get("wall_s", 0.0))),
        ("points", totals.get("points", 0)),
        ("cache hits", totals.get("cache_hits", 0)),
        ("cache misses", totals.get("cache_misses", 0)),
        ("engine events", f"{totals.get('events', 0):,}"),
    ]
    if energy is not None:
        et = energy["totals"]
        tiles.append(("energy", _fmt_j(et.get("total_j", 0.0))))
        tiles.append(("avg power", f"{et.get('avg_power_w', 0.0):.3g} W"))
    tiles_html = "".join(
        f'<div class="tile"><div class="v">{_esc(v)}</div>'
        f'<div class="k">{_esc(k)}</div></div>' for k, v in tiles
    )

    # Heatmap + timeline per observed (figure, machine) phase.
    obs_cells = []
    for fig in sorted(observed):
        for machine in sorted(observed[fig]):
            phase = f"{fig}:{machine}"
            pm = comm_phases.get(phase)
            cell = [f"<h3>{_esc(phase)}</h3>"]
            if pm and pm["cells"]:
                cell.append(_heatmap_svg(pm, f"comm matrix {phase}"))
                cell.append(
                    f'<p class="muted">{pm["inter"]["msgs"]} inter-node / '
                    f'{pm["intra"]["msgs"]} intra-node msgs, '
                    f'{_esc(_fmt_bytes(pm["inter"]["bytes"] + pm["intra"]["bytes"]))}'
                    f" total</p>"
                )
            else:
                cell.append('<p class="muted">no traffic recorded</p>')
            kinds = tl_phases.get(phase)
            if kinds:
                cell.append(_timeline_svg(kinds, f"utilisation {phase}"))
            obs_cells.append(f'<div class="cell">{"".join(cell)}</div>')

    ledger_html = '<p class="muted">ledger disabled for this run</p>'
    if ledger is not None:
        reg = ledger.get("regression") or {}
        if not reg.get("checked"):
            verdict = (f'<p class="muted">regression check idle: '
                       f'{reg.get("history", 0)} comparable prior runs '
                       f"(need 3)</p>")
        elif reg.get("ok"):
            verdict = '<p class="ok">no regression vs trailing median</p>'
        else:
            flags = "; ".join(
                f"{r['field']} {r['ratio']:.2f}x median" for r in
                reg.get("regressions", ())
            )
            verdict = f'<p class="flag">regression flagged: {_esc(flags)}</p>'
        ledger_html = (
            f'<p class="muted">{ledger.get("entries", 0)} entries in '
            f'{_esc(ledger.get("path", "?"))}</p>'
            + _trend_svg(ledger.get("trend", [])) + verdict
        )

    energy_html = ('<p class="muted">energy accounting off for this run '
                   "(enable with <code>--energy</code>)</p>")
    if energy is not None:
        et = energy["totals"]
        ph_docs = energy.get("phases", {})
        power_cells = []
        # Power-vs-time panels for the heaviest phases that also have
        # bucketed occupancy; capped for page weight, and the cap is
        # stated rather than silent.
        cap = 8
        priced = [(name, ph) for name, ph in
                  sorted(ph_docs.items(), key=lambda kv: -kv[1]["total_j"])
                  if tl_phases.get(name)]
        for name, ph in priced[:cap]:
            power_cells.append(
                f'<div class="cell"><h3>{_esc(name)}</h3>'
                f'{_power_svg(tl_phases[name], ph, f"power {name}")}</div>'
            )
        cap_note = ""
        if len(priced) > cap:
            cap_note = (f'<p class="muted">showing the {cap} highest-energy '
                        f"phases of {len(priced)} with occupancy data</p>")
        elif not priced:
            cap_note = ('<p class="muted">no power-vs-time panels: bucketed '
                        "occupancy needs <code>--report</code>'s timeline "
                        "recorder (it was off or empty)</p>")
        energy_html = (
            f'<p class="muted">{_esc(_fmt_j(et["total_j"]))} total '
            f'({et["avg_power_w"]:.3g} W average over '
            f'{_esc(_fmt_s(et["elapsed_s"]))} of virtual time); '
            f'energy-delay product {et["edp_js"]:.4g} J·s</p>'
            + _energy_bars_svg(ph_docs)
            + cap_note + f'<div class="grid">{"".join(power_cells)}</div>'
        )

    blob = json.dumps(doc, sort_keys=True).replace("</", "<\\/")
    return f"""<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>repro run report</title>
<style>{_CSS}</style></head>
<body>
<h1>repro run report</h1>
<div class="tiles">{tiles_html}</div>

<h2>Critical-path verdicts</h2>
<p class="muted">Dominant resource per observed (figure, machine), straight
from the critical-path analyser; "binding" is when it sat on the path.</p>
<table><tr><th>figure</th><th>machine</th><th>dominant</th><th>share</th>
<th>binding</th><th>bisection util</th><th>nic util</th>
<th>max skew</th></tr>{_verdict_rows(observed)}</table>

<h2>Communication matrices &amp; utilisation timelines</h2>
<div class="grid">{"".join(obs_cells) or '<p class="muted">run with figures selected to populate observed phases</p>'}</div>

<h2>Traffic by phase</h2>
<table><tr><th>phase</th><th>ranks</th><th>msgs</th><th>bytes</th>
<th>intra-node</th><th>inter-node</th></tr>{_phase_totals_rows(doc["comm"])}</table>

<h2>Harness span waterfall</h2>
{_spans_svg(doc["spans"])}

<h2>Energy</h2>
{energy_html}

<h2>Service telemetry &amp; health</h2>
{_service_health_html(doc.get("telemetry"), doc.get("service"))}

<h2>Run ledger</h2>
{ledger_html}

<details><summary>machine-readable run document</summary>
<p class="muted">Everything above, as JSON (also readable by CI straight
from this file).</p></details>
<script type="application/json" id="run-data">{blob}</script>
</body></html>
"""


def write_report(doc: dict, path: str | Path) -> Path:
    """Render and write the report; returns the path written."""
    p = Path(path)
    if str(p.parent):
        p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(render_html(doc), encoding="utf-8")
    return p


def read_report_doc(path: str | Path) -> dict:
    """Parse the embedded run document back out of a written report."""
    text = Path(path).read_text(encoding="utf-8")
    marker = 'id="run-data">'
    start = text.index(marker) + len(marker)
    end = text.index("</script>", start)
    return json.loads(text[start:end].replace("<\\/", "</"))
