"""Result containers shared by the harness and the scenario registry.

These are the leaf dataclasses every layer above the executor speaks:
figures are labelled series, tables are header+rows.  They live in
their own module (rather than ``figures.py``/``tables.py``) so that
``repro.scenarios`` can build them without importing the harness —
keeping the import graph acyclic now that the harness figure/table
functions are thin adapters over the scenario registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class FigureSeries:
    """One machine's curve within a figure."""

    machine: str
    label: str
    x: tuple[float, ...]
    y: tuple[float, ...]


@dataclass(frozen=True)
class FigureResult:
    """A regenerated paper figure: labelled series plus metadata."""

    fig_id: str
    title: str
    xlabel: str
    ylabel: str
    series: tuple[FigureSeries, ...]
    notes: str = ""
    extra: dict = field(default_factory=dict)

    def by_machine(self, name: str) -> FigureSeries:
        for s in self.series:
            if s.machine == name:
                return s
        raise KeyError(name)


@dataclass(frozen=True)
class TableResult:
    table_id: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    notes: str = ""
