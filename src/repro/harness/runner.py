"""Command-line harness: regenerate any table/figure of the paper.

Examples::

    python -m repro.harness --table 2
    python -m repro.harness --figure 12 --max-cpus 128
    python -m repro.harness --all --max-cpus 64 --out results/ --jobs 8
    python -m repro.harness --figure 12 --metrics m.json --trace-dir traces/
    python -m repro.harness --validate --max-cpus 64 --jobs 4
    python -m repro.harness --cache-clear

Sweeps are decomposed into independent simulation points and run through
:class:`repro.exec.SweepExecutor`: ``--jobs N`` (or ``REPRO_JOBS``) fans
points out over worker processes, and results are cached on disk under
``--cache-dir`` (default ``.repro_cache/``, keyed by a source-tree
fingerprint) so repeated runs skip already-computed points.  Output is
byte-identical regardless of job count or cache state.

Observability: ``--metrics out.json`` enables the metrics registry for
the run (engine/network/MPI/cache counters, merged deterministically
across worker processes, plus per-point cache provenance and per-machine
critical-path summaries); ``--trace-dir DIR`` additionally writes Chrome
``traceEvents`` files for representative traced runs — open them in
``chrome://tracing`` or https://ui.perfetto.dev; ``--report out.html``
renders communication matrices, utilisation timelines, span waterfalls,
ledger trends, and the critical-path verdicts into one self-contained
HTML file (see :mod:`repro.harness.dashboard`).

Every run that produces items also appends a line to the run ledger
(``BENCH_ledger.jsonl`` next to the bench stats file) — an append-only,
schema-versioned performance history keyed by git SHA and the source
fingerprint, with trailing-median regression flagging.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import time
from pathlib import Path
from time import perf_counter

from ..api import normalize_figure_id, normalize_table_id
from ..config import ReproConfig
from ..core import sched
from ..core.errors import ConfigError
from ..exec import (
    ResultCache,
    available_exec_backends,
    source_fingerprint,
    using_executor,
)
from ..obs import (
    TRACE_SCHEMA_VERSION,
    CommRecorder,
    EnergyRecorder,
    MetricsRegistry,
    RunLedger,
    SpanRecorder,
    TelemetryRecorder,
    TimelineRecorder,
    format_critical_path,
    git_sha,
    run_key,
    trace_summary,
    using_commviz,
    using_energy,
    using_metrics,
    using_telemetry,
    using_timeline,
    write_spans_chrome_trace,
    write_trace_chrome_trace,
)
from .dashboard import build_run_doc, write_report
from .figures import ALL_FIGURES
from .observe import observe_figures
from .plot import render_ascii_plot
from .report import render_figure, render_table, save_figure, save_table
from .tables import ALL_TABLES

#: Bump when the BENCH_harness.json layout changes incompatibly.
#: v2: ``harness.engine_backend`` records the scheduler backend the run
#: used (and joins the ledger ``run_key``).
#: v3: ``harness.exec_backend`` records the executor backend.
#: v4: optional top-level ``energy`` section (per-component joules and
#: totals, present only when the run had ``--energy`` on).
#: v5: optional top-level ``telemetry`` section (distributed-trace
#: summary, present only when the run had ``--telemetry`` on).
BENCH_SCHEMA_VERSION = 5

# Id normalisation moved to the stable API surface; these aliases keep
# the historical (internal) names importable.
_norm_fig = normalize_figure_id
_norm_table = normalize_table_id


class _BadId(Exception):
    """Raised for an unknown/invalid --figure/--table/--scenario id."""


def _scenario_hint(arg: str) -> str:
    """A pointer at the scenario registry when a bad id names a scenario."""
    from ..scenarios import has_scenario

    if has_scenario(str(arg)):
        return (f"; {arg!r} is a registered scenario — "
                f"use --scenario {arg}")
    return ""


def _resolve_ids(raw: list[str], norm, known: dict, what: str) -> list[str]:
    """Normalise CLI ids, raising :class:`_BadId` with a clear message.

    Unknown ids are also resolved against the scenario registry so a
    scenario name passed to ``--figure`` points at ``--scenario``
    instead of dead-ending.
    """
    out = []
    for arg in raw:
        try:
            ident = norm(arg)
        except ValueError:
            raise _BadId(
                f"error: invalid {what} id {arg!r} "
                f"(expected one of: {', '.join(sorted(known))})"
                f"{_scenario_hint(arg)}"
            ) from None
        if ident not in known:
            raise _BadId(
                f"error: unknown {what} {arg!r} "
                f"(expected one of: {', '.join(sorted(known))})"
                f"{_scenario_hint(arg)}"
            )
        out.append(ident)
    return out


def _resolve_scenarios(raw: list[str]) -> list[str]:
    """Validate --scenario names against the registry (exit-2 contract)."""
    from ..scenarios import ScenarioError, get_scenario, scenario_ids

    out = []
    for arg in raw:
        try:
            get_scenario(str(arg))
        except ScenarioError:
            raise _BadId(
                f"error: unknown scenario {arg!r} "
                f"(registered: {', '.join(scenario_ids())})"
            ) from None
        out.append(str(arg))
    return out


def _creation_blocker(path: Path) -> Path | None:
    """First existing ancestor (or ``path`` itself) that is not a directory.

    ``mkdir(parents=True)`` would blow up on it mid-run; catching it up
    front turns an end-of-run traceback into a usage error.
    """
    for p in (path, *path.parents):
        if p.exists():
            return None if p.is_dir() else p
    return None


def check_output_paths(metrics: str | None, trace_dir: str | None,
                       *extra_files: str | None) -> str | None:
    """Validate output-path arguments before any simulation runs.

    Returns a usage-error message, or None when every path is writable.
    ``extra_files`` are additional file outputs (e.g. the validation
    report) checked under the same rules as ``--metrics``.
    """
    for label, raw in (("--metrics", metrics),
                       *(("output file", x) for x in extra_files)):
        if raw is None:
            continue
        p = Path(raw)
        if p.is_dir():
            return f"{label}: {p} is a directory, expected a file path"
        blocker = _creation_blocker(p.parent) if str(p.parent) else None
        if blocker is not None:
            return (f"{label}: cannot create {p.parent}/ "
                    f"({blocker} is not a directory)")
    if trace_dir is not None:
        d = Path(trace_dir)
        blocker = _creation_blocker(d)
        if blocker is not None:
            return (f"--trace-dir: cannot use {d} "
                    f"({blocker} is not a directory)")
    return None


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures on the "
                    "simulated machines.",
    )
    ap.add_argument("--figure", action="append", default=[],
                    help="figure number (1-16); repeatable")
    ap.add_argument("--table", action="append", default=[],
                    help="table number (1-4); repeatable")
    ap.add_argument("--all", action="store_true",
                    help="regenerate every table and figure")
    ap.add_argument("--scenario", action="append", default=[],
                    metavar="NAME",
                    help="run a registered scenario by name (builtin "
                         "paper items, scenarios/*.toml, or "
                         "REPRO_SCENARIO_PATH files); repeatable")
    ap.add_argument("--list-scenarios", action="store_true",
                    help="list every registered scenario and exit")
    ap.add_argument("--max-cpus", type=int, default=None,
                    help="cap CPU sweeps (default: the paper's full ranges)")
    ap.add_argument("--out", default=None,
                    help="directory for CSV/TXT exports")
    ap.add_argument("--plot", action="store_true",
                    help="also render figures as ASCII log-log charts")
    ap.add_argument("--jobs", "-j", type=int, default=None,
                    help="worker processes for sweep points "
                         "(default: REPRO_JOBS env var, else CPU count)")
    ap.add_argument("--engine-backend", default=None, metavar="NAME",
                    help="scheduler backend for every simulation "
                         f"({', '.join(sched.available_backends())}; "
                         f"default: {sched.BACKEND_ENV} env var, else "
                         f"{sched.FALLBACK_BACKEND})")
    ap.add_argument("--exec-backend", default=None, metavar="NAME",
                    help="executor backend for sweep points "
                         f"({', '.join(available_exec_backends())}; "
                         "default: REPRO_EXEC_BACKEND env var, else pool "
                         "for --jobs > 1)")
    ap.add_argument("--no-cache", action="store_true", default=None,
                    help="disable the on-disk result cache")
    ap.add_argument("--cache-dir", default=None,
                    help="result cache directory (default: REPRO_CACHE_DIR "
                         "env var, else .repro_cache)")
    ap.add_argument("--cache-clear", action="store_true",
                    help="delete the result cache before running")
    ap.add_argument("--energy", action="store_true", default=None,
                    help="account energy-to-solution per component "
                         "(machine power models; adds an energy section "
                         "to the bench stats, ledger, and HTML report)")
    ap.add_argument("--telemetry", action="store_true", default=None,
                    help="trace the run (submit/dispatch/compute spans, "
                         "propagated across worker processes; adds a "
                         "telemetry section to the bench stats and a "
                         "trace id to the ledger row; REPRO_TELEMETRY "
                         "env var)")
    ap.add_argument("--bench-json", default=None,
                    help="write per-figure perf/cache stats to this path "
                         "(default: BENCH_harness.json for --all runs)")
    ap.add_argument("--metrics", default=None, metavar="PATH",
                    help="enable the metrics registry and write the "
                         "merged metrics/provenance/critical-path JSON "
                         "to PATH")
    ap.add_argument("--trace-dir", default=None, metavar="DIR",
                    help="write Chrome traceEvents JSON for one traced "
                         "representative run per (figure, machine) plus "
                         "the harness span tree (view in Perfetto)")
    ap.add_argument("--report", default=None, metavar="PATH",
                    help="render a self-contained HTML run report (comm "
                         "matrices, utilisation timelines, span waterfall, "
                         "ledger trends, critical-path verdicts) to PATH")
    ap.add_argument("--ledger", default=None, metavar="PATH",
                    help="run-ledger JSONL path (default: "
                         "BENCH_ledger.jsonl next to the bench stats file)")
    ap.add_argument("--no-ledger", action="store_true",
                    help="skip appending this run to the run ledger")
    ap.add_argument("--validate", action="store_true",
                    help="regenerate the selected items (default: all) and "
                         "diff them against results/ under "
                         "results/TOLERANCES.json, plus the metamorphic "
                         "invariant battery; exit 3 on regression")
    ap.add_argument("--validate-report", default=None, metavar="PATH",
                    help="with --validate: write the machine-readable "
                         "per-cell report JSON to PATH")
    args = ap.parse_args(argv)

    if args.list_scenarios:
        from ..scenarios import all_scenarios

        for s in all_scenarios():
            src = ("builtin" if s.source == "builtin"
                   else Path(s.source).name)
            print(f"{s.scenario_id:24} {s.kind:6} {src:24} {s.title}")
        return 0

    try:
        figures = _resolve_ids(args.figure, _norm_fig, ALL_FIGURES, "figure")
        tables = _resolve_ids(args.table, _norm_table, ALL_TABLES, "table")
        scenarios = _resolve_scenarios(args.scenario)
    except _BadId as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.all:
        figures = list(ALL_FIGURES)
        tables = list(ALL_TABLES)
    # Drop scenarios that are already running as figures/tables (the
    # builtin paper items are reachable under either flag).
    scenarios = [s for s in scenarios if s not in figures and s not in tables]

    err = check_output_paths(args.metrics, args.trace_dir,
                             args.validate_report, args.report,
                             args.bench_json, args.ledger)
    if err is not None:
        print(f"error: {err}", file=sys.stderr)
        return 2

    # One resolver for every knob: explicit flag > env var > default.
    try:
        config = ReproConfig.from_env_and_args(args)
        config.apply_engine_backend()
    except (ConfigError, ValueError) as exc:  # e.g. non-integer REPRO_JOBS
        print(f"error: {exc}", file=sys.stderr)
        return 2
    engine_backend = config.engine_backend

    if args.cache_clear:
        ResultCache(config.cache_dir).clear()
        print(f"[cache cleared: {config.cache_dir}]")
        if not figures and not tables and not scenarios and not args.validate:
            return 0
    if (not figures and not tables and not scenarios and not args.all
            and not args.validate):
        ap.print_help()
        return 2

    cache = config.make_cache()
    executor = config.make_executor()

    if args.validate:
        # Deferred import: repro.validate imports the harness figure/table
        # registries, so the dependency must point this way only at call
        # time to keep the import graph acyclic.
        from ..validate.gate import run_validation

        # The ledger layer joins the gate whenever a ledger exists: an
        # explicit --ledger path, or the default one next to the bench
        # artifact.  Lenient unless REPRO_LEDGER_STRICT=1.
        ledger_path: Path | None = (Path(args.ledger) if args.ledger
                                    else _bench_path(args).with_name(
                                        "BENCH_ledger.jsonl"))
        if not ledger_path.exists():
            ledger_path = None
        strict = os.environ.get("REPRO_LEDGER_STRICT", "") == "1"
        explicit = bool(figures or tables)
        try:
            with using_executor(executor):
                report = run_validation(
                    figures=figures if explicit else None,
                    tables=tables if explicit else None,
                    scenarios=scenarios or None,
                    max_cpus=args.max_cpus,
                    jobs=executor.jobs,
                    report_path=args.validate_report,
                    ledger_path=ledger_path,
                    ledger_strict=strict,
                )
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        finally:
            executor.close()
        print(report.summary())
        if args.validate_report:
            print(f"[validation report -> {args.validate_report}]")
        return report.exit_code()
    want_obs = (args.metrics is not None or args.trace_dir is not None
                or args.report is not None)
    registry = MetricsRegistry(enabled=True) if want_obs else None
    commrec = CommRecorder(enabled=True) if want_obs else None
    tlrec = TimelineRecorder(enabled=True) if want_obs else None
    enrec = EnergyRecorder(enabled=True) if config.energy else None
    telrec = TelemetryRecorder(enabled=True) if config.telemetry else None
    spans = SpanRecorder()
    bench_items = []
    cp_reports: dict[str, dict] = {}
    observed_doc: dict[str, dict] = {}
    t_run0 = perf_counter()

    def _snapshot():
        return executor.stats()

    def _record(ident: str, wall: float, before: dict, span) -> None:
        after = _snapshot()
        delta = {k: after[k] - before[k] for k in after}
        delta["compute_wall_s"] = round(delta["compute_wall_s"], 6)
        events = delta["events"]
        bench_items.append({
            "id": ident,
            "wall_s": round(wall, 6),
            "points": delta["points"],
            "cache_hits": delta["cache_hits"],
            "cache_misses": delta["cache_misses"],
            "events": events,
            "events_per_sec": round(events / wall) if wall > 0 else None,
            "compute_wall_s": delta["compute_wall_s"],
            "spans": span.to_dict(),
        })

    obs_scope = contextlib.ExitStack()
    if registry is not None:
        obs_scope.enter_context(using_metrics(registry))
    if commrec is not None:
        obs_scope.enter_context(using_commviz(commrec))
    if tlrec is not None:
        obs_scope.enter_context(using_timeline(tlrec))
    if enrec is not None:
        obs_scope.enter_context(using_energy(enrec))
    if telrec is not None:
        # One root span covers the whole run; executor/worker spans
        # nest under it (ExitStack closes it LIFO, before the scope
        # that made the recorder ambient is torn down).
        obs_scope.enter_context(using_telemetry(telrec))
        _tel_root = telrec.begin(
            "harness.run", "service",
            items=len(tables) + len(figures) + len(scenarios))
        obs_scope.callback(telrec.end, _tel_root)
    try:
        with obs_scope, using_executor(executor):
            for t in tables:
                fn = ALL_TABLES[t]
                before = _snapshot()
                with spans.span(t, cat="table") as sp:
                    with spans.span("compute", cat="sweep"):
                        t0 = perf_counter()
                        table = (fn() if t != "table3"
                                 else fn(max_cpus=args.max_cpus))
                        dt = perf_counter() - t0
                    with spans.span("render", cat="report"):
                        print(render_table(table))
                        print(f"[{t} in {dt:.1f}s]\n")
                    if args.out:
                        with spans.span("save", cat="report"):
                            save_table(table, args.out)
                _record(t, dt, before, sp)

            for f in figures:
                fn = ALL_FIGURES[f]
                before = _snapshot()
                with spans.span(f, cat="figure") as sp:
                    with spans.span("compute", cat="sweep"):
                        t0 = perf_counter()
                        fig = fn(max_cpus=args.max_cpus)
                        dt = perf_counter() - t0
                    with spans.span("render", cat="report"):
                        print(render_figure(fig))
                        if args.plot:
                            print()
                            print(render_ascii_plot(fig))
                        print(f"[{f} in {dt:.1f}s]\n")
                    if args.out:
                        with spans.span("save", cat="report"):
                            save_figure(fig, args.out)
                _record(f, dt, before, sp)

            for sid in scenarios:
                from ..scenarios import run_scenario

                before = _snapshot()
                with spans.span(sid, cat="scenario") as sp:
                    with spans.span("compute", cat="sweep"):
                        t0 = perf_counter()
                        result = run_scenario(sid, max_cpus=args.max_cpus)
                        dt = perf_counter() - t0
                    with spans.span("render", cat="report"):
                        if hasattr(result, "table_id"):
                            print(render_table(result))
                        else:
                            print(render_figure(result))
                            if args.plot:
                                print()
                                print(render_ascii_plot(result))
                        print(f"[{sid} in {dt:.1f}s]\n")
                    if args.out:
                        with spans.span("save", cat="report"):
                            if hasattr(result, "table_id"):
                                save_table(result, args.out)
                            else:
                                save_figure(result, args.out)
                _record(sid, dt, before, sp)

            if want_obs and figures:
                # Representative traced runs: critical-path verdicts per
                # (figure, machine) and, with --trace-dir, Perfetto files.
                with spans.span("observe", cat="observe"):
                    reports = observe_figures(figures,
                                              max_cpus=args.max_cpus,
                                              trace_dir=args.trace_dir)
                for fig_id, per_machine in reports.items():
                    cp_reports[fig_id] = {
                        m: run.report.to_dict()
                        for m, run in per_machine.items()
                    }
                    observed_doc[fig_id] = {
                        m: run.to_dict() for m, run in per_machine.items()
                    }
                    print(f"[critical path — {fig_id}]")
                    for run in per_machine.values():
                        print(format_critical_path(run.report))
                    print()
    finally:
        executor.close()

    totals = executor.stats()
    wall_s = perf_counter() - t_run0
    print(f"[total {wall_s:.1f}s; {totals['points']} points, "
          f"{totals['cache_hits']} cache hits, "
          f"{totals['cache_misses']} misses, "
          f"{totals['events']} events]")

    telemetry_doc = None
    tel_spans: list[dict] = []
    if telrec is not None:
        tel_spans = telrec.drain()
        telemetry_doc = {"schema_version": TRACE_SCHEMA_VERSION,
                         **trace_summary(tel_spans)}
        n_traces = len(telemetry_doc.get("traces", {}))
        print(f"[telemetry: {telemetry_doc['spans']} spans in "
              f"{n_traces} trace{'s' if n_traces != 1 else ''}]")

    if args.trace_dir is not None:
        trace_dir = Path(args.trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
        write_spans_chrome_trace(spans.roots, trace_dir / "harness_spans.json")
        if tel_spans:
            write_trace_chrome_trace(tel_spans,
                                     trace_dir / "telemetry_trace.json")
        print(f"[traces -> {trace_dir}]")

    if args.metrics is not None:
        snap = registry.snapshot()
        metrics_doc = {
            "harness": {
                "max_cpus": args.max_cpus,
                "jobs": executor.jobs,
                "wall_s": round(wall_s, 6),
            },
            "metrics": registry.flat(),
            "histograms": snap["histograms"],
            "points": executor.point_log,
            "critical_path": cp_reports,
            "comm": commrec.snapshot(),
            "timeline": tlrec.snapshot(),
            "spans": spans.to_dicts(),
        }
        metrics_path = Path(args.metrics)
        if metrics_path.parent != Path(""):
            metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(json.dumps(metrics_doc, indent=1) + "\n")
        print(f"[metrics -> {metrics_path}]")

    energy_doc = None
    if enrec is not None:
        energy_doc = {"totals": enrec.totals(),
                      "phases": enrec.snapshot()["phases"]}
        tot = energy_doc["totals"]
        print(f"[energy: {tot['total_j']:.1f} J total, "
              f"{tot['avg_power_w']:.1f} W avg, "
              f"EDP {tot['edp_js']:.3g} J*s]")

    item_ids = tables + figures + scenarios
    sha = git_sha()
    fingerprint = source_fingerprint()
    harness_doc = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "git_sha": sha,
        "fingerprint": fingerprint,
        "max_cpus": args.max_cpus,
        "jobs": executor.jobs,
        "engine_backend": engine_backend,
        "exec_backend": config.exec_backend,
        "cache": None if cache is None else str(cache.root),
        "wall_s": round(wall_s, 6),
    }
    totals_doc = {**totals,
                  "compute_wall_s": round(totals["compute_wall_s"], 6)}

    bench_path = _bench_path(args)
    doc = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "harness": harness_doc,
        "totals": totals_doc,
        "items": bench_items,
    }
    if energy_doc is not None:
        doc["energy"] = energy_doc
    if telemetry_doc is not None:
        doc["telemetry"] = telemetry_doc
    bench_path.parent.mkdir(parents=True, exist_ok=True)
    bench_path.write_text(json.dumps(doc, indent=1) + "\n")
    print(f"[bench stats -> {bench_path}]")

    ledger_info = None
    if not args.no_ledger:
        ledger_path = (Path(args.ledger) if args.ledger
                       else bench_path.with_name("BENCH_ledger.jsonl"))
        ledger = RunLedger(ledger_path)
        key = run_key(item_ids, args.max_cpus, engine_backend)
        row = {
            "when": round(time.time(), 3),
            "git_sha": sha,
            "fingerprint": fingerprint,
            "run_key": key,
            "items": item_ids,
            "max_cpus": args.max_cpus,
            "jobs": executor.jobs,
            "engine_backend": engine_backend,
            "exec_backend": config.exec_backend,
            "wall_s": round(wall_s, 6),
            "points": totals["points"],
            "cache_hits": totals["cache_hits"],
            "cache_misses": totals["cache_misses"],
            "events": totals["events"],
            "events_per_s": (round(totals["events"] / wall_s)
                             if wall_s > 0 else None),
        }
        if energy_doc is not None:
            # Energy fields ride along only when accounting was on —
            # rows from energy-off runs carry no placeholders.
            tot = energy_doc["totals"]
            row["energy_total_j"] = tot["total_j"]
            row["energy_avg_power_w"] = tot["avg_power_w"]
            row["energy_edp_js"] = tot["edp_js"]
        if telemetry_doc is not None and telemetry_doc.get("traces"):
            # Traced runs link their row to the run's trace; the full
            # span summary lives in the bench stats document.
            row["trace_id"] = next(iter(telemetry_doc["traces"]))
            row["trace_spans"] = telemetry_doc["spans"]
        entry = ledger.append(row)
        verdict = ledger.check_regression(entry)
        ledger_info = {
            "path": str(ledger_path),
            "entries": len(ledger.entries()),
            "trend": ledger.trend(key, "wall_s", limit=30),
            "regression": verdict,
        }
        status = ("unchecked" if not verdict["checked"]
                  else "ok" if verdict["ok"] else "REGRESSION")
        print(f"[ledger -> {ledger_path} ({status}, "
              f"{ledger_info['entries']} entries)]")
        if verdict["checked"] and not verdict["ok"]:
            for r in verdict["regressions"]:
                print(f"  ledger regression: {r['field']} "
                      f"{r['ratio']:.2f}x trailing median "
                      f"({r['value']:.4g} vs {r['median']:.4g})",
                      file=sys.stderr)

    if args.report is not None:
        run_doc = build_run_doc(
            harness=harness_doc,
            totals=totals_doc,
            items=bench_items,
            comm=commrec.snapshot(),
            timeline=tlrec.snapshot(),
            observed=observed_doc,
            spans=spans.to_dicts(),
            ledger=ledger_info,
            energy=energy_doc,
            telemetry=telemetry_doc,
        )
        report_path = write_report(run_doc, args.report)
        print(f"[report -> {report_path}]")
    return 0


def _bench_path(args) -> Path:
    """Where to write BENCH_harness.json (always written)."""
    if args.bench_json:
        return Path(args.bench_json)
    if args.out:
        return Path(args.out) / "BENCH_harness.json"
    return Path("BENCH_harness.json")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
