"""Command-line harness: regenerate any table/figure of the paper.

Examples::

    python -m repro.harness --table 2
    python -m repro.harness --figure 12 --max-cpus 128
    python -m repro.harness --all --max-cpus 64 --out results/
"""

from __future__ import annotations

import argparse
import sys
import time

from .figures import ALL_FIGURES
from .plot import render_ascii_plot
from .report import render_figure, render_table, save_figure, save_table
from .tables import ALL_TABLES


def _norm_fig(arg: str) -> str:
    arg = arg.lower().removeprefix("fig").lstrip("0") or "0"
    return f"fig{int(arg):02d}"


def _norm_table(arg: str) -> str:
    arg = arg.lower().removeprefix("table")
    return f"table{int(arg)}"


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures on the "
                    "simulated machines.",
    )
    ap.add_argument("--figure", action="append", default=[],
                    help="figure number (1-15); repeatable")
    ap.add_argument("--table", action="append", default=[],
                    help="table number (1-3); repeatable")
    ap.add_argument("--all", action="store_true",
                    help="regenerate every table and figure")
    ap.add_argument("--max-cpus", type=int, default=None,
                    help="cap CPU sweeps (default: the paper's full ranges)")
    ap.add_argument("--out", default=None,
                    help="directory for CSV/TXT exports")
    ap.add_argument("--plot", action="store_true",
                    help="also render figures as ASCII log-log charts")
    args = ap.parse_args(argv)

    figures = [_norm_fig(f) for f in args.figure]
    tables = [_norm_table(t) for t in args.table]
    if args.all:
        figures = list(ALL_FIGURES)
        tables = list(ALL_TABLES)
    if not figures and not tables:
        ap.print_help()
        return 2

    for t in tables:
        fn = ALL_TABLES[t]
        t0 = time.time()
        table = fn() if t != "table3" else fn(max_cpus=args.max_cpus)
        print(render_table(table))
        print(f"[{t} in {time.time() - t0:.1f}s]\n")
        if args.out:
            save_table(table, args.out)

    for f in figures:
        fn = ALL_FIGURES[f]
        t0 = time.time()
        fig = fn(max_cpus=args.max_cpus)
        print(render_figure(fig))
        if args.plot:
            print()
            print(render_ascii_plot(fig))
        print(f"[{f} in {time.time() - t0:.1f}s]\n")
        if args.out:
            save_figure(fig, args.out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
