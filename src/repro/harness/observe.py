"""Representative traced runs: Chrome traces + critical-path summaries.

The sweep executor computes figure points in worker processes without
tracing (tracing every point would swamp the sweep).  When the harness
runs with ``--metrics`` / ``--trace-dir``, this module re-runs one
*representative* scenario per (figure, machine) with tracing enabled:

* IMB figures (6-15) replay their own benchmark program;
* the HPCC balance figures (1-5) and tables replay the random-ring
  bandwidth pattern, the paper's own probe of network balance.

Each traced run yields an :class:`ObservedRun` — the
:class:`~repro.obs.critical_path.CriticalPathReport` naming the dominant
resource, a per-rank straggler profile, and the traced traffic totals —
and (with ``--trace-dir``) a Chrome ``traceEvents`` JSON viewable in
Perfetto.  When commviz/timeline recorders are installed (``--report``),
the traced replay runs under the ``"<fig>:<machine>"`` phase, so the
dashboard can show each figure's traffic matrix and utilisation
timeline next to its verdict.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from pathlib import Path

from ..hpcc.ring import RingConfig, ring_program
from ..imb.framework import PAPER_MSG_BYTES, get_benchmark
from ..imb import suite as _imb_suite  # noqa: F401 - benchmark registration
from ..machine import get_machine
from ..mpi.cluster import Cluster
from ..obs.commviz import get_commviz
from ..obs.critical_path import CriticalPathReport, critical_path_report
from ..obs.exporters import write_chrome_trace
from ..obs.timeline import get_timeline, straggler_profile
from .figures import HPCC_SWEEP_MACHINES, IMB_FIGURES, IMB_MACHINES

#: Rank count for representative traced runs — large enough to exercise
#: inter-node contention on every catalogued machine, small enough that
#: tracing P runs per figure stays a sub-second add-on.
OBSERVE_RANKS = 16


@dataclass(frozen=True)
class ObservedRun:
    """One traced representative run, fully digested."""

    report: CriticalPathReport
    straggler: dict       # see repro.obs.timeline.straggler_profile
    traffic: dict         # message_count / total_bytes / inter_node_bytes

    def to_dict(self) -> dict:
        return {
            "critical_path": self.report.to_dict(),
            "straggler": self.straggler,
            "traffic": self.traffic,
        }


def _observe_cluster(fig_id: str, machine_name: str,
                     max_cpus: int | None) -> Cluster:
    """Run the figure's representative program traced; return the cluster.

    The run executes under the ``"<fig>:<machine>"`` commviz/timeline
    phase when those recorders are installed, so its traffic and busy
    intervals land in a phase the dashboard can name.
    """
    machine = get_machine(machine_name)
    cap = machine.max_cpus if max_cpus is None else min(max_cpus,
                                                       machine.max_cpus)
    nprocs = max(2, min(OBSERVE_RANKS, cap))
    tag = f"{fig_id}:{machine_name}"
    commrec, tlrec = get_commviz(), get_timeline()
    comm_ctx = commrec.phase(tag) if commrec.enabled else contextlib.nullcontext()
    tl_ctx = tlrec.phase(tag) if tlrec.enabled else contextlib.nullcontext()
    with comm_ctx, tl_ctx:
        if fig_id in IMB_FIGURES:
            bench_name, _fld, _ylabel = IMB_FIGURES[fig_id]
            bench = get_benchmark(bench_name)
            nprocs = max(nprocs, bench.min_procs)
            msg_bytes = 0 if bench_name == "Barrier" else PAPER_MSG_BYTES
            cluster = Cluster(machine, nprocs, trace=True)
            cluster.run(bench.program, msg_bytes, 1)
        else:
            cluster = Cluster(machine, nprocs, trace=True)
            cluster.run(ring_program, RingConfig(n_rings=1))
    return cluster


def _machines_for(fig_id: str) -> tuple[str, ...]:
    return IMB_MACHINES if fig_id in IMB_FIGURES else HPCC_SWEEP_MACHINES


def observe_figure(
    fig_id: str,
    max_cpus: int | None = None,
    trace_dir: str | Path | None = None,
) -> dict[str, ObservedRun]:
    """Per-machine observed runs (and traces) for one figure."""
    runs: dict[str, ObservedRun] = {}
    for name in _machines_for(fig_id):
        cluster = _observe_cluster(fig_id, name, max_cpus)
        tracer = cluster.tracer
        runs[name] = ObservedRun(
            report=critical_path_report(cluster),
            straggler=straggler_profile(tracer, cluster.nprocs),
            traffic={
                "message_count": tracer.message_count,
                "total_bytes": tracer.total_bytes,
                "inter_node_bytes": tracer.inter_node_bytes,
            },
        )
        if trace_dir is not None:
            out = Path(trace_dir)
            out.mkdir(parents=True, exist_ok=True)
            write_chrome_trace(cluster, out / f"{fig_id}_{name}.json")
    return runs


def observe_figures(
    fig_ids: list[str],
    max_cpus: int | None = None,
    trace_dir: str | Path | None = None,
) -> dict[str, dict[str, ObservedRun]]:
    """``{fig_id: {machine: observed_run}}`` for every requested figure."""
    return {
        fig_id: observe_figure(fig_id, max_cpus=max_cpus,
                               trace_dir=trace_dir)
        for fig_id in fig_ids
    }
