"""Regeneration of the paper's Figures 1-15.

Each ``figNN`` function returns a :class:`FigureResult` holding the same
series the paper plots; the report module renders them as ASCII tables
and CSV.  All functions accept ``max_cpus`` to cap sweeps for quick runs
(tests and benches use 64-128; ``None`` reproduces the paper's full
ranges, which takes a few minutes of host time).

Figure inventory (paper §4):

* Figs 1-2 — accumulated random-ring bandwidth vs HPL, absolute and ratio
* Figs 3-4 — accumulated EP-STREAM Copy vs HPL, absolute and ratio
* Fig 5 — all HPCC results normalised by HPL then by column max (kiviat)
* Figs 6-12, 15 — IMB collectives at 1 MB vs CPU count
* Figs 13-14 — IMB Sendrecv/Exchange bandwidth at 1 MB vs CPU count
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from ..analysis.ratios import KiviatData, kiviat_normalise
from ..exec import SimPoint, get_executor
from ..hpcc import HPCCResult
from ..hpcc.suite import scaled_config
from ..imb.framework import PAPER_MSG_BYTES, get_benchmark
from ..imb import suite as _imb_suite  # noqa: F401 - benchmark registration
from ..machine import get_machine

#: Machines in the HPCC balance sweeps (Figs 1-4), as in the paper.
HPCC_SWEEP_MACHINES = ("altix_nl4", "altix_nl3", "sx8", "xeon", "opteron")

#: Machines in the IMB figures.
IMB_MACHINES = ("sx8", "x1_msp", "x1_ssp", "altix_nl4", "xeon", "opteron")

#: Largest configuration each system contributes to Fig 5 / Table 3
#: (the paper's text quotes 506/440/576/64 CPU runs).
# NOTE: the paper's Fig 5 / Table 3 use the NUMALINK3 Altix numbers
# (its ring-bandwidth maximum 0.094 B/F equals NL3's 93.8 B/KFlop), so
# the NL4 variant is deliberately absent here.
FLAGSHIP_CPUS = {
    "altix_nl3": 440,
    "sx8": 576,
    "xeon": 512,
    "opteron": 64,
    "x1_ssp": 48,
}


@dataclass(frozen=True)
class FigureSeries:
    """One machine's curve within a figure."""

    machine: str
    label: str
    x: tuple[float, ...]
    y: tuple[float, ...]


@dataclass(frozen=True)
class FigureResult:
    """A regenerated paper figure: labelled series plus metadata."""

    fig_id: str
    title: str
    xlabel: str
    ylabel: str
    series: tuple[FigureSeries, ...]
    notes: str = ""
    extra: dict = field(default_factory=dict)

    def by_machine(self, name: str) -> FigureSeries:
        for s in self.series:
            if s.machine == name:
                return s
        raise KeyError(name)


def _cap(machine_name: str, max_cpus: int | None, floor: int = 2) -> int | None:
    m = get_machine(machine_name)
    cap = m.max_cpus if max_cpus is None else min(max_cpus, m.max_cpus)
    return max(cap, floor)


# ---------------------------------------------------------------------------
# Figs 1-4: balance of communication/memory to computation
# ---------------------------------------------------------------------------

def _balance_sweep(kind: str, max_cpus: int | None, **params):
    """(machine -> [(cpus, hpl_tflops, accumulated_GBs)]) via the executor.

    ``kind`` is a worker point kind ("ring_hpl" / "stream_hpl") whose value
    is an (hpl, accumulated) pair; the points for all machines are batched
    into one executor call so a parallel run overlaps everything.
    """
    plan = []
    points = []
    for name in HPCC_SWEEP_MACHINES:
        m = get_machine(name)
        counts = m.cpu_counts(start=4, maximum=_cap(name, max_cpus))
        plan.append((name, counts))
        points.extend(SimPoint.make(kind, name, p, **params) for p in counts)
    values = iter(get_executor().run_points(points))
    return {
        name: [(p, *next(values)) for p in counts]
        for name, counts in plan
    }


@lru_cache(maxsize=8)
def _ring_hpl_sweep(max_cpus: int | None):
    """(machine -> [(cpus, hpl_tflops, accumulated_ring_GBs)])."""
    return _balance_sweep("ring_hpl", max_cpus, n_rings=4)


def fig01(max_cpus: int | None = None) -> FigureResult:
    """Accumulated random-ring bandwidth versus HPL performance."""
    data = _ring_hpl_sweep(max_cpus)
    series = tuple(
        FigureSeries(
            machine=name,
            label=get_machine(name).label,
            x=tuple(h for (_p, h, _v) in pts),
            y=tuple(v for (_p, _h, v) in pts),
        )
        for name, pts in data.items()
    )
    return FigureResult(
        fig_id="fig01",
        title="Accumulated random ring bandwidth vs HPL performance",
        xlabel="HPL (TFlop/s)",
        ylabel="Accumulated random-ring bandwidth (GB/s)",
        series=series,
        extra={"cpu_counts": {n: [p for (p, _h, _v) in pts]
                              for n, pts in data.items()}},
    )


def fig02(max_cpus: int | None = None) -> FigureResult:
    """Random-ring bandwidth / HPL ratio (B/KFlop) versus HPL."""
    data = _ring_hpl_sweep(max_cpus)
    series = []
    for name, pts in data.items():
        xs, ys = [], []
        for p, hpl, acc in pts:
            xs.append(hpl)
            # B/KFlop: accumulated bytes/s per kflop/s of HPL.
            ys.append(acc * 1e9 / (hpl * 1e12 / 1e3))
        series.append(FigureSeries(machine=name,
                                   label=get_machine(name).label,
                                   x=tuple(xs), y=tuple(ys)))
    return FigureResult(
        fig_id="fig02",
        title="Accumulated random ring bandwidth ratio vs HPL performance",
        xlabel="HPL (TFlop/s)",
        ylabel="Ring bandwidth per HPL (B/KFlop)",
        series=tuple(series),
        notes="Paper anchors: SX-8 ~60 flat 128-576 CPUs; Altix NL4 203 in "
              "one box collapsing to 23 at 2024 CPUs; NL3 ~94; Opteron ~24.",
        extra={"cpu_counts": {n: [p for (p, _h, _v) in pts]
                              for n, pts in data.items()}},
    )


@lru_cache(maxsize=8)
def _stream_hpl_sweep(max_cpus: int | None):
    """(machine -> [(cpus, hpl_tflops, accumulated_stream_copy_GBs)])."""
    return _balance_sweep("stream_hpl", max_cpus)


def fig03(max_cpus: int | None = None) -> FigureResult:
    """Accumulated EP-STREAM Copy versus HPL performance."""
    data = _stream_hpl_sweep(max_cpus)
    series = tuple(
        FigureSeries(
            machine=name,
            label=get_machine(name).label,
            x=tuple(h for (_p, h, _v) in pts),
            y=tuple(v for (_p, _h, v) in pts),
        )
        for name, pts in data.items()
    )
    return FigureResult(
        fig_id="fig03",
        title="Accumulated EP-STREAM Copy vs HPL performance",
        xlabel="HPL (TFlop/s)",
        ylabel="Accumulated STREAM Copy (GB/s)",
        series=series,
    )


def fig04(max_cpus: int | None = None) -> FigureResult:
    """EP-STREAM Copy / HPL ratio (Byte/Flop) versus HPL."""
    data = _stream_hpl_sweep(max_cpus)
    series = []
    for name, pts in data.items():
        xs = [h for (_p, h, _v) in pts]
        ys = [v / (h * 1e3) for (_p, h, v) in pts]  # GB/s over GFlop/s
        series.append(FigureSeries(machine=name,
                                   label=get_machine(name).label,
                                   x=tuple(xs), y=tuple(ys)))
    return FigureResult(
        fig_id="fig04",
        title="Accumulated EP-STREAM Copy ratio vs HPL performance",
        xlabel="HPL (TFlop/s)",
        ylabel="STREAM Copy per HPL (Byte/Flop)",
        series=tuple(series),
        notes="Paper anchors: SX-8 > 2.67 B/F; Altix > 0.36; "
              "Opteron 0.84-1.07.",
    )


# ---------------------------------------------------------------------------
# Fig 5 / Table 3: normalised comparison of all benchmarks
# ---------------------------------------------------------------------------

#: The harness's problem-size rule (moved to repro.hpcc.suite; kept as an
#: alias because downstream code imports it from here).
_suite_config = scaled_config


@lru_cache(maxsize=8)
def flagship_results(max_cpus: int | None = None) -> tuple[HPCCResult, ...]:
    """Full HPCC at each machine's largest measured configuration."""
    points = []
    for name, cpus in FLAGSHIP_CPUS.items():
        p = cpus if max_cpus is None else min(cpus, max_cpus)
        points.append(SimPoint.make("hpcc", name, p))
    return tuple(get_executor().run_points(points))


def fig05(max_cpus: int | None = None) -> tuple[FigureResult, KiviatData]:
    """All benchmarks normalised with the HPL value (kiviat columns)."""
    results = flagship_results(max_cpus)
    data = kiviat_normalise(results)
    series = []
    for m in data.machines:
        row = data.normalised[m]
        xs, ys = [], []
        for i, col in enumerate(data.columns):
            if row[col] is not None:
                xs.append(float(i))
                ys.append(row[col])
        series.append(FigureSeries(machine=m, label=get_machine(m).label,
                                   x=tuple(xs), y=tuple(ys)))
    fig = FigureResult(
        fig_id="fig05",
        title="Comparison of all benchmarks normalised with HPL value",
        xlabel="benchmark column index (see analysis.KIVIAT_COLUMNS)",
        ylabel="normalised ratio (best system = 1)",
        series=tuple(series),
        extra={"columns": data.columns, "maxima": data.maxima},
    )
    return fig, data


# ---------------------------------------------------------------------------
# Figs 6-15: IMB
# ---------------------------------------------------------------------------

#: fig id -> (benchmark, y field, ylabel)
IMB_FIGURES = {
    "fig06": ("Barrier", "time_us", "time (us/call)"),
    "fig07": ("Allreduce", "time_us", "time (us/call)"),
    "fig08": ("Reduce", "time_us", "time (us/call)"),
    "fig09": ("Reduce_scatter", "time_us", "time (us/call)"),
    "fig10": ("Allgather", "time_us", "time (us/call)"),
    "fig11": ("Allgatherv", "time_us", "time (us/call)"),
    "fig12": ("Alltoall", "time_us", "time (us/call)"),
    "fig13": ("Sendrecv", "bandwidth_mbs", "bandwidth (MB/s)"),
    "fig14": ("Exchange", "bandwidth_mbs", "bandwidth (MB/s)"),
    "fig15": ("Bcast", "time_us", "time (us/call)"),
}


def imb_figure(fig_id: str, max_cpus: int | None = None,
               msg_bytes: int = PAPER_MSG_BYTES,
               machines: tuple[str, ...] = IMB_MACHINES) -> FigureResult:
    """Regenerate one IMB figure (figs 6-15) across the machine set."""
    bench, fld, ylabel = IMB_FIGURES[fig_id]
    if bench == "Barrier":
        msg_bytes = 0
    min_procs = get_benchmark(bench).min_procs
    plan = []
    points = []
    for name in machines:
        m = get_machine(name)
        counts = m.cpu_counts(start=min_procs, maximum=_cap(name, max_cpus))
        plan.append((m, counts))
        points.extend(
            SimPoint.make("imb", name, p, benchmark=bench,
                          msg_bytes=msg_bytes)
            for p in counts
        )
    values = iter(get_executor().run_points(points))
    series = []
    for m, counts in plan:
        results = [next(values) for _ in counts]
        series.append(FigureSeries(
            machine=m.name,
            label=m.label,
            x=tuple(float(r.nprocs) for r in results),
            y=tuple(getattr(r, fld) for r in results),
        ))
    size_note = "" if bench == "Barrier" else f", {msg_bytes} B messages"
    return FigureResult(
        fig_id=fig_id,
        title=f"IMB {bench} on varying number of processors{size_note}",
        xlabel="CPUs",
        ylabel=ylabel,
        series=tuple(series),
    )


def fig06(max_cpus=None):
    """Paper Figure 6 (see IMB_FIGURES for the benchmark and units)."""
    return imb_figure("fig06", max_cpus)


def fig07(max_cpus=None):
    """Paper Figure 7 (see IMB_FIGURES for the benchmark and units)."""
    return imb_figure("fig07", max_cpus)


def fig08(max_cpus=None):
    """Paper Figure 8 (see IMB_FIGURES for the benchmark and units)."""
    return imb_figure("fig08", max_cpus)


def fig09(max_cpus=None):
    """Paper Figure 9 (see IMB_FIGURES for the benchmark and units)."""
    return imb_figure("fig09", max_cpus)


def fig10(max_cpus=None):
    """Paper Figure 10 (see IMB_FIGURES for the benchmark and units)."""
    return imb_figure("fig10", max_cpus)


def fig11(max_cpus=None):
    """Paper Figure 11 (see IMB_FIGURES for the benchmark and units)."""
    return imb_figure("fig11", max_cpus)


def fig12(max_cpus=None):
    """Paper Figure 12 (see IMB_FIGURES for the benchmark and units)."""
    return imb_figure("fig12", max_cpus)


def fig13(max_cpus=None):
    """Paper Figure 13 (see IMB_FIGURES for the benchmark and units)."""
    return imb_figure("fig13", max_cpus)


def fig14(max_cpus=None):
    """Paper Figure 14 (see IMB_FIGURES for the benchmark and units)."""
    return imb_figure("fig14", max_cpus)


def fig15(max_cpus=None):
    """Paper Figure 15 (see IMB_FIGURES for the benchmark and units)."""
    return imb_figure("fig15", max_cpus)


# ---------------------------------------------------------------------------
# Fig 16: energy kiviat (not in the paper)
# ---------------------------------------------------------------------------

#: Fig 16 axes, all "higher is better", each normalised by its best
#: machine (1 = best), mirroring the Fig 5 kiviat construction.
ENERGY_KIVIAT_COLUMNS = (
    "HPL Gflop/s",
    "Mflop/s per W",
    "Solutions per MJ",    # 1 / energy-to-solution
    "1 / EDP",
)


def fig16(max_cpus: int | None = None) -> FigureResult:
    """Energy kiviat: efficiency axes normalised to the best machine.

    Analytic companion to the Fig 5 kiviat along the energy dimension
    the paper could not measure.  ``max_cpus`` caps each machine's
    profiled configuration (``None`` profiles every machine at its own
    maximum); no simulation points run, so no lru_cache is needed.
    """
    from ..analysis.energy import energy_ranking

    profiles = energy_ranking(nprocs=max_cpus)
    axes = [
        [p.hpl_gflops for p in profiles],
        [p.mflops_per_w for p in profiles],
        [1e6 / p.energy_j for p in profiles],
        [1.0 / p.edp_js for p in profiles],
    ]
    maxima = [max(col) for col in axes]
    series = tuple(
        FigureSeries(
            machine=p.machine,
            label=p.label,
            x=tuple(float(i) for i in range(len(axes))),
            y=tuple(axes[i][j] / maxima[i] for i in range(len(axes))),
        )
        for j, p in enumerate(profiles)
    )
    return FigureResult(
        fig_id="fig16",
        title="Energy efficiency normalised to the best machine (kiviat)",
        xlabel="energy column index (see ENERGY_KIVIAT_COLUMNS)",
        ylabel="normalised ratio (best system = 1)",
        series=series,
        notes="Not in the paper: modelled HPL energy profiles "
              "(docs/MODEL.md section 13).",
        extra={"columns": list(ENERGY_KIVIAT_COLUMNS),
               "maxima": {c: maxima[i]
                          for i, c in enumerate(ENERGY_KIVIAT_COLUMNS)}},
    )


ALL_FIGURES = {
    "fig01": fig01,
    "fig02": fig02,
    "fig03": fig03,
    "fig04": fig04,
    "fig05": lambda max_cpus=None: fig05(max_cpus)[0],
    "fig06": fig06,
    "fig07": fig07,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
}
