"""Regeneration of the paper's Figures 1-16 (thin adapters).

The figure definitions — machines, rank grids, point fan-out, assembly,
references — live in the declarative scenario registry
(:mod:`repro.scenarios.builtin`); each ``figNN`` function here simply
runs the registered scenario, so the legacy call surface
(``fig01(max_cpus=...)`` etc.) and the scenario path produce the same
object from the same code.

Figure inventory (paper §4):

* Figs 1-2 — accumulated random-ring bandwidth vs HPL, absolute and ratio
* Figs 3-4 — accumulated EP-STREAM Copy vs HPL, absolute and ratio
* Fig 5 — all HPCC results normalised by HPL then by column max (kiviat)
* Figs 6-12, 15 — IMB collectives at 1 MB vs CPU count
* Figs 13-14 — IMB Sendrecv/Exchange bandwidth at 1 MB vs CPU count
* Fig 16 — energy kiviat (not in the paper; modelled watts)
"""

from __future__ import annotations

from ..imb.framework import PAPER_MSG_BYTES
from ..scenarios import builtin as _builtin
from ..scenarios.builtin import (  # noqa: F401  (compat re-exports)
    ENERGY_KIVIAT_COLUMNS,
    FLAGSHIP_CPUS,
    HPCC_SWEEP_MACHINES,
    IMB_FIGURES,
    IMB_MACHINES,
    _balance_sweep,
    _ring_hpl_sweep,
    _stream_hpl_sweep,
    flagship_results,
    scaled_config as _suite_config,
)
from .results import FigureResult, FigureSeries  # noqa: F401  (compat)


def _scenario(fig_id: str):
    from ..scenarios import get_scenario
    return get_scenario(fig_id)


def _run(fig_id: str, max_cpus):
    return _scenario(fig_id).run(max_cpus=max_cpus)


def fig01(max_cpus: int | None = None) -> FigureResult:
    """Accumulated random-ring bandwidth versus HPL performance."""
    return _run("fig01", max_cpus)


def fig02(max_cpus: int | None = None) -> FigureResult:
    """Random-ring bandwidth / HPL ratio (B/KFlop) versus HPL."""
    return _run("fig02", max_cpus)


def fig03(max_cpus: int | None = None) -> FigureResult:
    """Accumulated EP-STREAM Copy versus HPL performance."""
    return _run("fig03", max_cpus)


def fig04(max_cpus: int | None = None) -> FigureResult:
    """EP-STREAM Copy / HPL ratio (Byte/Flop) versus HPL."""
    return _run("fig04", max_cpus)


def fig05(max_cpus: int | None = None):
    """All benchmarks normalised with the HPL value (kiviat columns).

    Returns ``(FigureResult, KiviatData)`` — the historical contract.
    """
    return _scenario("fig05").run_with_data(max_cpus)


def imb_figure(fig_id: str, max_cpus: int | None = None,
               msg_bytes: int = PAPER_MSG_BYTES,
               machines: tuple[str, ...] = IMB_MACHINES) -> FigureResult:
    """Regenerate one IMB figure (figs 6-15) across the machine set.

    With non-default ``msg_bytes``/``machines`` a transient scenario is
    built (same declarative shape, not registered).
    """
    bench, fld, ylabel = IMB_FIGURES[fig_id]  # KeyError on unknown ids
    if msg_bytes == PAPER_MSG_BYTES and machines == IMB_MACHINES:
        return _run(fig_id, max_cpus)
    return _builtin.IMBFigureScenario(
        fig_id, benchmark=bench, field=fld, ylabel=ylabel,
        machines=machines, msg_bytes=msg_bytes).run(max_cpus=max_cpus)


def fig06(max_cpus=None):
    """Paper Figure 6 (see IMB_FIGURES for the benchmark and units)."""
    return imb_figure("fig06", max_cpus)


def fig07(max_cpus=None):
    """Paper Figure 7 (see IMB_FIGURES for the benchmark and units)."""
    return imb_figure("fig07", max_cpus)


def fig08(max_cpus=None):
    """Paper Figure 8 (see IMB_FIGURES for the benchmark and units)."""
    return imb_figure("fig08", max_cpus)


def fig09(max_cpus=None):
    """Paper Figure 9 (see IMB_FIGURES for the benchmark and units)."""
    return imb_figure("fig09", max_cpus)


def fig10(max_cpus=None):
    """Paper Figure 10 (see IMB_FIGURES for the benchmark and units)."""
    return imb_figure("fig10", max_cpus)


def fig11(max_cpus=None):
    """Paper Figure 11 (see IMB_FIGURES for the benchmark and units)."""
    return imb_figure("fig11", max_cpus)


def fig12(max_cpus=None):
    """Paper Figure 12 (see IMB_FIGURES for the benchmark and units)."""
    return imb_figure("fig12", max_cpus)


def fig13(max_cpus=None):
    """Paper Figure 13 (see IMB_FIGURES for the benchmark and units)."""
    return imb_figure("fig13", max_cpus)


def fig14(max_cpus=None):
    """Paper Figure 14 (see IMB_FIGURES for the benchmark and units)."""
    return imb_figure("fig14", max_cpus)


def fig15(max_cpus=None):
    """Paper Figure 15 (see IMB_FIGURES for the benchmark and units)."""
    return imb_figure("fig15", max_cpus)


def fig16(max_cpus: int | None = None) -> FigureResult:
    """Energy kiviat: efficiency axes normalised to the best machine."""
    return _run("fig16", max_cpus)


ALL_FIGURES = {
    "fig01": fig01,
    "fig02": fig02,
    "fig03": fig03,
    "fig04": fig04,
    "fig05": lambda max_cpus=None: fig05(max_cpus)[0],
    "fig06": fig06,
    "fig07": fig07,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
}
