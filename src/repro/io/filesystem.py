"""Parallel filesystem model.

The paper's §2.5 describes the HLRS installation's storage: "a total of
16 1-TB file systems ... Each file system can sustain 400-600 MB/s
throughputs for large block I/O."  This module models that class of
system — a set of striped file servers (OSTs) shared by all compute
nodes — with the same resource machinery as the interconnect:

* each server is a FIFO :class:`BandwidthResource`;
* each compute node's I/O path (NIC to the storage fabric) caps a
  single client's throughput;
* metadata operations (open/close/seek) cost a fixed latency.

Files are striped round-robin across servers in ``stripe_size`` blocks,
so single-client bandwidth is limited by ``min(client_bw, servers it
can keep busy)`` and aggregate bandwidth saturates at the server total —
the behaviour every parallel filesystem of the era exhibited.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigError
from ..core.units import GB_S, MB_S, US
from ..network.resources import BandwidthResource


@dataclass(frozen=True)
class FileSystemSpec:
    """Static description of a machine's storage subsystem."""

    name: str = "shared-fs"
    n_servers: int = 16            # HLRS: 16 file systems
    server_mbs: float = 500.0      # paper: 400-600 MB/s each
    client_gbs: float = 0.4        # one node's I/O path
    metadata_latency_us: float = 250.0
    stripe_size: int = 1 << 20     # striping block

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ConfigError("need at least one file server")
        if self.server_mbs <= 0 or self.client_gbs <= 0:
            raise ConfigError("bandwidths must be positive")
        if self.stripe_size < 1:
            raise ConfigError("stripe size must be >= 1 byte")
        if self.metadata_latency_us < 0:
            raise ConfigError("metadata latency must be >= 0")

    @property
    def aggregate_mbs(self) -> float:
        return self.n_servers * self.server_mbs


#: Default spec used when a machine does not define storage.
DEFAULT_FILESYSTEM = FileSystemSpec()

#: The HLRS storage the paper describes alongside the NEC SX-8.
HLRS_FILESYSTEM = FileSystemSpec(
    name="HLRS workspace",
    n_servers=16,
    server_mbs=500.0,
    client_gbs=0.8,
    metadata_latency_us=300.0,
)


class FileSystemModel:
    """Live storage state for one cluster run."""

    def __init__(self, spec: FileSystemSpec, n_nodes: int) -> None:
        self.spec = spec
        self.servers = [
            BandwidthResource(f"ost[{i}]", spec.server_mbs * MB_S)
            for i in range(spec.n_servers)
        ]
        self.clients = [
            BandwidthResource(f"ioclient[{i}]", spec.client_gbs * GB_S)
            for i in range(n_nodes)
        ]

    def metadata_time(self) -> float:
        return self.spec.metadata_latency_us * US

    def transfer(self, node: int, offset: int, nbytes: int,
                 t_ready: float) -> float:
        """Completion time of one contiguous read/write.

        The request is split into stripe blocks; each block reserves its
        server and the client path independently (work-conserving FIFO,
        as in the network fabric).  Returns the absolute completion time.
        """
        if nbytes <= 0:
            return t_ready
        spec = self.spec
        client = self.clients[node]
        end = t_ready
        pos = offset
        remaining = nbytes
        while remaining > 0:
            in_block = spec.stripe_size - (pos % spec.stripe_size)
            chunk = min(remaining, in_block)
            server = self.servers[(pos // spec.stripe_size)
                                  % spec.n_servers]
            _s0, e0 = client.reserve(chunk, t_ready)
            _s1, e1 = server.reserve(chunk, t_ready)
            end = max(end, e0, e1)
            pos += chunk
            remaining -= chunk
        return end
