"""MPI-IO over the simulated filesystem.

The subset IMB-IO exercises: collective file open/close, independent
``write_at``/``read_at``, and collective ``write_at_all``/``read_at_all``
with two-phase aggregation (ranks on one node merge their requests so
each node issues one contiguous stream — the optimisation every MPI-IO
implementation of the era shipped).

Contents are tracked logically (byte counts only); data integrity of the
transport is covered by the MPI-layer tests, and file *content* checks
live in the bytearray-backed ``verify`` mode of :class:`SimFile`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.errors import MPIError
from .filesystem import FileSystemModel


class SimFile:
    """An open MPI file handle for one rank.

    With ``verify=True`` the file carries a real shared ``bytearray`` so
    tests can check what landed where.
    """

    def __init__(self, comm, fs: FileSystemModel, fid: Any,
                 verify: bool = False) -> None:
        self.comm = comm
        self.fs = fs
        self.fid = fid
        registry = comm.cluster.__dict__.setdefault("_sim_files", {})
        if verify:
            registry.setdefault(fid, bytearray())
        self._store = registry.get(fid)
        self._closed = False

    # -- helpers -----------------------------------------------------------

    def _node(self) -> int:
        return self.comm.cluster.placement[self.comm.world_rank]

    def _io(self, offset: int, nbytes: int):
        """Charge one contiguous transfer (generator)."""
        if self._closed:
            raise MPIError("I/O on a closed file")
        if offset < 0 or nbytes < 0:
            raise MPIError("negative offset/size")
        engine = self.comm.cluster.engine
        end = self.fs.transfer(self._node(), offset, nbytes, engine.now)
        yield max(0.0, end - engine.now)

    def _record(self, offset: int, data: Any, nbytes: int) -> None:
        if self._store is None:
            return
        if isinstance(data, np.ndarray):
            raw = data.tobytes()
        elif isinstance(data, (bytes, bytearray)):
            raw = bytes(data)
        else:
            raw = bytes(nbytes)
        if len(self._store) < offset + len(raw):
            self._store.extend(b"\0" * (offset + len(raw) - len(self._store)))
        self._store[offset:offset + len(raw)] = raw

    # -- independent I/O ------------------------------------------------------

    def write_at(self, offset: int, data: Any = None,
                 nbytes: int | None = None):
        """Independent write (generator)."""
        from ..mpi.datatypes import resolve_nbytes

        n = resolve_nbytes(data, nbytes)
        yield from self._io(offset, n)
        self._record(offset, data, n)

    def read_at(self, offset: int, nbytes: int):
        """Independent read (generator); returns bytes in verify mode."""
        yield from self._io(offset, nbytes)
        if self._store is not None:
            return bytes(self._store[offset:offset + nbytes])
        return None

    # -- collective I/O ----------------------------------------------------------

    def write_at_all(self, offset: int, data: Any = None,
                     nbytes: int | None = None):
        """Collective write: every rank participates (generator).

        Two-phase: ranks sharing a node aggregate into one stream per
        node (the node's lowest rank issues it), then everyone
        synchronises.  ``offset`` is this rank's own file offset.
        """
        from ..mpi.datatypes import resolve_nbytes

        n = resolve_nbytes(data, nbytes)
        comm = self.comm
        placement = comm.cluster.placement
        my_node = self._node()
        node_ranks = [r for r in range(comm.size)
                      if placement[comm._world_ranks[r]] == my_node]
        aggregator = node_ranks[0]
        # gather the node's sizes at the aggregator (tiny shm messages)
        if comm.rank == aggregator:
            total = n * len(node_ranks)
            yield from self._io(offset, total)
        self._record(offset, data, n)
        yield from comm.barrier()

    def read_at_all(self, offset: int, nbytes: int):
        """Collective read (generator)."""
        comm = self.comm
        placement = comm.cluster.placement
        my_node = self._node()
        node_ranks = [r for r in range(comm.size)
                      if placement[comm._world_ranks[r]] == my_node]
        if comm.rank == node_ranks[0]:
            yield from self._io(offset, nbytes * len(node_ranks))
        yield from comm.barrier()
        if self._store is not None:
            return bytes(self._store[offset:offset + nbytes])
        return None

    def close(self):
        """Collective close (generator)."""
        yield self.fs.metadata_time()
        yield from self.comm.barrier()
        self._closed = True


def file_open(comm, name: str = "testfile", verify: bool = False):
    """Collective open (generator); returns a :class:`SimFile`."""
    cluster = comm.cluster
    fs_model = cluster.__dict__.get("_fs_model")
    if fs_model is None or fs_model.spec is not _fs_spec(cluster):
        fs_model = FileSystemModel(_fs_spec(cluster), cluster.n_nodes)
        cluster.__dict__["_fs_model"] = fs_model
    count = comm.__dict__.setdefault("_file_count", 0) + 1
    comm._file_count = count
    handle = SimFile(comm, fs_model, fid=(name, count), verify=verify)
    yield fs_model.metadata_time()
    yield from comm.barrier()
    return handle


def _fs_spec(cluster):
    from .filesystem import DEFAULT_FILESYSTEM

    return cluster.machine.extra.get("filesystem", DEFAULT_FILESYSTEM)
