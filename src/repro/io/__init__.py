"""Storage substrate: parallel filesystem model and MPI-IO."""

from .filesystem import (
    DEFAULT_FILESYSTEM,
    HLRS_FILESYSTEM,
    FileSystemModel,
    FileSystemSpec,
)
from .mpiio import SimFile, file_open

__all__ = [
    "FileSystemSpec",
    "FileSystemModel",
    "DEFAULT_FILESYSTEM",
    "HLRS_FILESYSTEM",
    "SimFile",
    "file_open",
]
