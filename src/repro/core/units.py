"""Unit constants and formatting helpers.

Conventions used throughout the library:

* **time** is kept in seconds (floats).  Reported figures use microseconds
  (``us``) to match the paper's plots.
* **bandwidth** is kept in bytes/second.  Vendor bandwidth figures (GB/s,
  MB/s) are decimal (1 GB/s = 1e9 B/s), matching how the paper quotes them.
* **message sizes** follow IMB conventions and are binary (1 MB message =
  ``2**20`` bytes).
* **compute rates** are kept in flop/s; ``GFLOP`` etc. are decimal.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------
US = 1e-6
MS = 1e-3
SEC = 1.0

# --- sizes (binary, used for message/working-set sizes) ---------------------
KIB = 1024
MIB = 1024 ** 2
GIB = 1024 ** 3

# --- rates (decimal, used for bandwidths and compute rates) -----------------
KB_S = 1e3
MB_S = 1e6
GB_S = 1e9

KFLOP = 1e3
MFLOP = 1e6
GFLOP = 1e9
TFLOP = 1e12


def seconds_to_us(t: float) -> float:
    """Convert seconds to microseconds."""
    return t / US


def us_to_seconds(t: float) -> float:
    """Convert microseconds to seconds."""
    return t * US


def fmt_time(t: float) -> str:
    """Render a duration with an adaptive unit, e.g. ``'3.42 us'``."""
    if t == 0:
        return "0 s"
    at = abs(t)
    if at < 1e-6:
        return f"{t * 1e9:.3g} ns"
    if at < 1e-3:
        return f"{t * 1e6:.4g} us"
    if at < 1.0:
        return f"{t * 1e3:.4g} ms"
    return f"{t:.4g} s"


def fmt_bytes(n: float) -> str:
    """Render a byte count with an adaptive binary unit."""
    n = float(n)
    for unit, div in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if abs(n) >= div:
            return f"{n / div:.4g} {unit}"
    return f"{n:.4g} B"


def fmt_bandwidth(bps: float) -> str:
    """Render a bandwidth (bytes/s) with an adaptive decimal unit."""
    for unit, div in (("GB/s", GB_S), ("MB/s", MB_S), ("KB/s", KB_S)):
        if abs(bps) >= div:
            return f"{bps / div:.4g} {unit}"
    return f"{bps:.4g} B/s"


def fmt_flops(fps: float) -> str:
    """Render a compute rate (flop/s) with an adaptive decimal unit."""
    for unit, div in (("TF/s", TFLOP), ("GF/s", GFLOP), ("MF/s", MFLOP)):
        if abs(fps) >= div:
            return f"{fps / div:.4g} {unit}"
    return f"{fps:.4g} F/s"
