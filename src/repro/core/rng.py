"""Deterministic random-number utilities.

All stochastic elements of the simulation (random-ring permutations,
RandomAccess update streams, payload generation) derive from explicit seeds
so that every experiment is exactly reproducible run-to-run.
"""

from __future__ import annotations

import numpy as np

#: Library-wide default seed.  Experiments may override per-run.
DEFAULT_SEED = 0x5A1D1  # "SAIDI", a nod to the first author.


def make_rng(seed: int | None = None, *streams: int) -> np.random.Generator:
    """Create an independent generator for a named sub-stream.

    ``streams`` are extra integers folded into the seed sequence so that,
    e.g., rank 3's stream differs from rank 4's even under one root seed.
    """
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(np.random.SeedSequence([seed, *streams]))


def spawn_rngs(n: int, seed: int | None = None) -> list[np.random.Generator]:
    """Create ``n`` independent per-rank generators from one root seed."""
    return [make_rng(seed, i) for i in range(n)]


def random_derangement_ring(n: int, rng: np.random.Generator) -> np.ndarray:
    """Return a random permutation of ``0..n-1`` interpreted as a ring.

    Used by the HPCC random-ring benchmarks: position ``i`` in the returned
    array is a rank, and each rank communicates with the ranks before/after
    it in the array (cyclically).  Every permutation defines a valid ring,
    so no derangement constraint is actually required; the name records the
    benchmark's intent that neighbours are "randomly ordered".
    """
    perm = rng.permutation(n)
    return perm
