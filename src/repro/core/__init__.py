"""Discrete-event simulation core: engine, events, processes, tracing."""

from .engine import Engine, Event, Process, ProcessGen, wait_all
from .errors import (
    BenchmarkError,
    ConfigError,
    DeadlockError,
    MPIError,
    ReproError,
    SimulationError,
    TruncationError,
)
from .rng import DEFAULT_SEED, make_rng, random_derangement_ring, spawn_rngs
from .trace import NULL_TRACER, ComputeRecord, MessageRecord, Tracer
from . import units

__all__ = [
    "Engine",
    "Event",
    "Process",
    "ProcessGen",
    "wait_all",
    "ReproError",
    "SimulationError",
    "DeadlockError",
    "MPIError",
    "TruncationError",
    "ConfigError",
    "BenchmarkError",
    "DEFAULT_SEED",
    "make_rng",
    "spawn_rngs",
    "random_derangement_ring",
    "Tracer",
    "MessageRecord",
    "ComputeRecord",
    "NULL_TRACER",
    "units",
]
