"""Discrete-event simulation engine.

The engine owns a virtual clock and a priority queue of scheduled
callbacks.  Simulated activities (MPI ranks, benchmark drivers) are Python
*generator processes* in the SimPy style: a process is a generator that
``yield``\\ s one of

* a ``float``/``int`` — sleep for that many virtual seconds,
* an :class:`Event` — block until the event is triggered; the value passed
  to :meth:`Event.trigger` becomes the result of the ``yield`` expression,
* another :class:`Process` — block until that process finishes (join);
  the child's return value becomes the result of the ``yield``,
* ``None`` — yield control and resume at the same virtual time (a
  cooperative re-schedule).

Processes compose with plain ``yield from`` so higher layers (collectives,
benchmarks) read like straight-line MPI code.

The engine is single-threaded and fully deterministic: ties in the event
queue are broken by insertion order.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Generator, Iterable
from heapq import heappop, heappush
from typing import Any

from ..obs.metrics import get_metrics
from .errors import DeadlockError, SimulationError

#: Type alias for process generators.
ProcessGen = Generator[Any, Any, Any]

#: Process-wide event counter, accumulated by every :meth:`Engine.run`.
#: The sweep executor reads deltas around each simulation point to report
#: events-processed / events-per-second in ``BENCH_harness.json``.
EVENT_STATS = {"processed": 0}


def events_processed_total() -> int:
    """Total events executed by all engines in this process."""
    return EVENT_STATS["processed"]


#: Shared args tuple for self-reschedules — avoids one allocation per event
#: on the dominant sleep path.
_STEP_ARGS = (None,)


class Event:
    """A one-shot latching event that processes can wait on.

    Once triggered the event stays triggered; waiting on a triggered event
    resumes the waiter immediately (at the current virtual time) with the
    stored value.  This latch behaviour is what makes sequential waits on a
    list of events ("waitall") correct.
    """

    __slots__ = ("engine", "name", "_triggered", "_value", "_waiters")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._triggered = False
        self._value: Any = None
        self._waiters: list[Process] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} has not been triggered")
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking all current and future waiters."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        engine = self.engine
        for proc in waiters:
            heappush(engine._heap,
                     (engine._now, next(engine._counter), proc._step, (value,)))

    def _add_waiter(self, proc: "Process") -> None:
        if self._triggered:
            engine = self.engine
            heappush(engine._heap,
                     (engine._now, next(engine._counter), proc._step,
                      (self._value,)))
        else:
            self._waiters.append(proc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "set" if self._triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Process:
    """A running generator process.

    A ``Process`` is itself awaitable (another process may ``yield`` it to
    join on completion and receive its return value).
    """

    __slots__ = ("engine", "gen", "name", "done", "_started")

    def __init__(self, engine: "Engine", gen: ProcessGen, name: str = "") -> None:
        if not isinstance(gen, Generator):
            raise SimulationError(
                f"process body must be a generator, got {type(gen).__name__}; "
                "did you forget a yield?"
            )
        self.engine = engine
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.done = Event(engine, name=f"{self.name}.done")
        self._started = False

    @property
    def finished(self) -> bool:
        return self.done.triggered

    @property
    def result(self) -> Any:
        return self.done.value

    def _start(self) -> None:
        if self._started:
            raise SimulationError(f"process {self.name!r} started twice")
        self._started = True
        self.engine.schedule(0.0, self._step, None)

    def _step(self, value: Any) -> None:
        """Advance the generator by one yield.

        Hot path: this runs once per event.  The dominant yields are plain
        ``float`` sleeps and ``None`` re-schedules, so those are dispatched
        on exact type and pushed straight onto the heap with pre-bound
        locals; ``Event``/``Process`` waits and int/float subclasses
        (``bool``, numpy scalars) take the slower isinstance branches.
        """
        engine = self.engine
        try:
            item = self.gen.send(value)
        except StopIteration as stop:
            engine._live_processes.discard(self)
            self.done.trigger(stop.value)
            return
        except Exception:
            engine._live_processes.discard(self)
            raise
        cls = item.__class__
        if cls is float or cls is int:
            if item < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {item!r}"
                )
            heappush(engine._heap,
                     (engine._now + item, next(engine._counter),
                      self._step, _STEP_ARGS))
        elif item is None:
            heappush(engine._heap,
                     (engine._now, next(engine._counter),
                      self._step, _STEP_ARGS))
        elif isinstance(item, Event):
            item._add_waiter(self)
        elif isinstance(item, Process):
            item.done._add_waiter(self)
        elif isinstance(item, (int, float)):
            if item < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {item!r}"
                )
            engine.schedule(float(item), self._step, None)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {item!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.finished else "live"
        return f"<Process {self.name!r} {state}>"


class Engine:
    """The discrete-event scheduler and virtual clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._counter = itertools.count()
        self._live_processes: set[Process] = set()
        self._running = False
        #: Events executed by this engine across all run() calls.
        self.events_processed = 0
        #: Largest heap size seen while running (only tracked when the
        #: process-global metrics registry is enabled at construction).
        self.heap_high_water = 0
        self._metrics = get_metrics() if get_metrics().enabled else None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._heap, (self._now + delay, next(self._counter), fn, args))

    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self, name=name)

    def spawn(self, gen: ProcessGen, name: str = "") -> Process:
        """Register a generator as a process and schedule its first step."""
        proc = Process(self, gen, name=name)
        self._live_processes.add(proc)
        proc._start()
        return proc

    def run(self, until: float | None = None) -> float:
        """Run the event loop.

        Runs until the queue drains or virtual time would pass ``until``.
        Returns the final virtual time.  Raises :class:`DeadlockError` if
        the queue drains while spawned processes are still unfinished.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        heap = self._heap
        pop = heappop
        n_events = 0
        hw = self.heap_high_water
        track = self._metrics is not None
        try:
            if until is None:
                if track:
                    # Instrumented twin of the fast loop below: the
                    # high-water check must not tax metrics-off runs.
                    while heap:
                        if len(heap) > hw:
                            hw = len(heap)
                        t, _seq, fn, args = pop(heap)
                        self._now = t
                        fn(*args)
                        n_events += 1
                else:
                    while heap:
                        t, _seq, fn, args = pop(heap)
                        self._now = t
                        fn(*args)
                        n_events += 1
            else:
                while heap:
                    t, _seq, fn, args = heap[0]
                    if t > until:
                        self._now = until
                        return self._now
                    if track and len(heap) > hw:
                        hw = len(heap)
                    pop(heap)
                    self._now = t
                    fn(*args)
                    n_events += 1
            if self._live_processes:
                stuck = sorted(p.name for p in self._live_processes)
                raise DeadlockError(
                    "event queue drained with blocked processes: "
                    + ", ".join(stuck[:16])
                    + ("..." if len(stuck) > 16 else "")
                )
            return self._now
        finally:
            self._running = False
            self.events_processed += n_events
            EVENT_STATS["processed"] += n_events
            if track:
                self.heap_high_water = hw
                m = self._metrics
                m.counter("engine.events").inc(n_events)
                m.counter("engine.runs").inc()
                m.gauge("engine.heap_max").set_max(hw)

    def run_all(self, gens: Iterable[ProcessGen]) -> list[Any]:
        """Spawn each generator, run to completion, return their results."""
        procs = [self.spawn(g, name=f"proc{i}") for i, g in enumerate(gens)]
        self.run()
        return [p.result for p in procs]


def wait_all(events: Iterable[Event | Process]) -> ProcessGen:
    """Process helper: wait for every event/process, return their values.

    Because events latch, waiting sequentially is equivalent to waiting
    concurrently; completion time is the max over all events.
    """
    results = []
    for ev in events:
        results.append((yield ev))
    return results
