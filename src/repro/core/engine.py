"""Discrete-event simulation engine.

The engine owns a virtual clock and a pending-event queue provided by a
pluggable scheduler backend (:mod:`repro.core.sched`).  Simulated
activities (MPI ranks, benchmark drivers) are Python *generator
processes* in the SimPy style: a process is a generator that
``yield``\\ s one of

* a ``float``/``int`` — sleep for that many virtual seconds,
* an :class:`Event` — block until the event is triggered; the value passed
  to :meth:`Event.trigger` becomes the result of the ``yield`` expression,
* another :class:`Process` — block until that process finishes (join);
  the child's return value becomes the result of the ``yield``,
* ``None`` — yield control and resume at the same virtual time (a
  cooperative re-schedule).

Processes compose with plain ``yield from`` so higher layers (collectives,
benchmarks) read like straight-line MPI code.

The engine is single-threaded and fully deterministic: ties in the event
queue are broken by insertion order, under every backend.  Events are
dispatched in *batches* — all events at one timestamp are drained in one
inner loop, so the per-event cost of queue maintenance, clock updates and
instrumentation is amortised over the tie width (large in the
bulk-synchronous phases that dominate benchmark traffic).
"""

from __future__ import annotations

from collections.abc import Callable, Generator, Iterable
from typing import Any

from ..obs.metrics import get_metrics
from .errors import DeadlockError, SimulationError
from .sched import SchedulerBackend, make_backend

#: Type alias for process generators.
ProcessGen = Generator[Any, Any, Any]

#: Process-wide event counter, accumulated by every :meth:`Engine.run`.
#: The sweep executor reads deltas around each simulation point to report
#: events-processed / events-per-second in ``BENCH_harness.json``.
EVENT_STATS = {"processed": 0}


def events_processed_total() -> int:
    """Total events executed by all engines in this process."""
    return EVENT_STATS["processed"]


#: Shared args tuple for self-reschedules — avoids one allocation per event
#: on the dominant sleep path.
_STEP_ARGS = (None,)


class Event:
    """A one-shot latching event that processes can wait on.

    Once triggered the event stays triggered; waiting on a triggered event
    resumes the waiter immediately (at the current virtual time) with the
    stored value.  This latch behaviour is what makes sequential waits on a
    list of events ("waitall") correct.
    """

    __slots__ = ("engine", "name", "_triggered", "_value", "_waiters")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._triggered = False
        self._value: Any = None
        # Lazily allocated: most events (send/recv completions) acquire
        # at most one waiter, and many trigger before anyone waits.
        self._waiters: list[Process] | None = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} has not been triggered")
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking all current and future waiters."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        waiters = self._waiters
        if waiters:
            self._waiters = None
            engine = self.engine
            push = engine._push
            now = engine._now
            args = (value,)
            for proc in waiters:
                push(now, proc._step, args)

    def _add_waiter(self, proc: "Process") -> None:
        if self._triggered:
            engine = self.engine
            engine._push(engine._now, proc._step, (self._value,))
        elif self._waiters is None:
            self._waiters = [proc]
        else:
            self._waiters.append(proc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "set" if self._triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Process:
    """A running generator process.

    A ``Process`` is itself awaitable (another process may ``yield`` it to
    join on completion and receive its return value).
    """

    __slots__ = ("engine", "gen", "name", "done", "_started")

    def __init__(self, engine: "Engine", gen: ProcessGen, name: str = "") -> None:
        if not isinstance(gen, Generator):
            raise SimulationError(
                f"process body must be a generator, got {type(gen).__name__}; "
                "did you forget a yield?"
            )
        self.engine = engine
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.done = Event(engine, name=f"{self.name}.done")
        self._started = False

    @property
    def finished(self) -> bool:
        return self.done.triggered

    @property
    def result(self) -> Any:
        return self.done.value

    def _start(self) -> None:
        if self._started:
            raise SimulationError(f"process {self.name!r} started twice")
        self._started = True
        self.engine.schedule(0.0, self._step, None)

    def _step(self, value: Any) -> None:
        """Advance the generator by one yield.

        Hot path: this runs once per event.  The dominant yields are plain
        ``float`` sleeps and ``None`` re-schedules, so those are dispatched
        on exact type and pushed straight onto the scheduler backend with
        pre-bound locals; ``Event``/``Process`` waits and int/float
        subclasses (``bool``, numpy scalars) take the slower isinstance
        branches.  Every raising exit — generator exception, negative
        delay, unsupported yield — discards the process from the live set
        first, so a caught error never leaves a ghost in the deadlock
        report.
        """
        engine = self.engine
        try:
            item = self.gen.send(value)
        except StopIteration as stop:
            engine._live_processes.discard(self)
            self.done.trigger(stop.value)
            return
        except Exception:
            engine._live_processes.discard(self)
            raise
        cls = item.__class__
        if cls is float or cls is int:
            if item < 0:
                engine._live_processes.discard(self)
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {item!r}"
                )
            engine._push(engine._now + item, self._step, _STEP_ARGS)
        elif item is None:
            engine._push(engine._now, self._step, _STEP_ARGS)
        elif isinstance(item, Event):
            item._add_waiter(self)
        elif isinstance(item, Process):
            item.done._add_waiter(self)
        elif isinstance(item, (int, float)):
            if item < 0:
                engine._live_processes.discard(self)
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {item!r}"
                )
            engine.schedule(float(item), self._step, None)
        else:
            engine._live_processes.discard(self)
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {item!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.finished else "live"
        return f"<Process {self.name!r} {state}>"


class Engine:
    """The discrete-event scheduler and virtual clock.

    ``backend`` selects the pending-event queue implementation: a
    registered name (``"heapq"``, ``"calendar"``, ``"macro"``), a
    :class:`~repro.core.sched.SchedulerBackend` instance, or ``None`` for
    the process default (``--engine-backend`` flag /
    ``REPRO_ENGINE_BACKEND`` env var, falling back to ``calendar``).
    Execution order — and therefore every simulated result — is identical
    under every exact backend.
    """

    def __init__(self, backend: str | SchedulerBackend | None = None) -> None:
        self._now = 0.0
        self._sched = make_backend(backend)
        #: Raw absolute-time insert of the active backend.  The single
        #: scheduling funnel: every event — sleeps, event wakeups, process
        #: joins, transport callbacks — goes through this bound method, so
        #: backend selection covers the whole event population.
        self._push = self._sched.push
        self._live_processes: set[Process] = set()
        self._running = False
        #: Events executed by this engine across all run() calls.
        self.events_processed = 0
        #: Largest pending-queue size seen while running (only tracked when
        #: the process-global metrics registry is enabled at construction).
        #: Sampled once per dispatched batch — at the moment the batch is
        #: taken, matching what a per-event loop would see at its first
        #: pop of that timestamp.
        self.heap_high_water = 0
        self._metrics = get_metrics() if get_metrics().enabled else None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def backend_name(self) -> str:
        """Name of the scheduler backend this engine runs on."""
        return self._sched.name

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._push(self._now + delay, fn, args)

    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self, name=name)

    def spawn(self, gen: ProcessGen, name: str = "") -> Process:
        """Register a generator as a process and schedule its first step."""
        proc = Process(self, gen, name=name)
        self._live_processes.add(proc)
        proc._start()
        return proc

    def run(self, until: float | None = None) -> float:
        """Run the event loop.

        Runs until the queue drains or virtual time would pass ``until``.
        Returns the final virtual time.  Raises :class:`DeadlockError` if
        the queue drains while spawned processes are still unfinished.

        Dispatch is batched: every event at the minimum pending timestamp
        runs in one inner loop.  If an event callback raises, the
        unexecuted remainder of its batch is pushed back onto the queue
        (in order, at the same time) before the exception propagates, so
        the pending set stays consistent for post-mortem inspection.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        sched = self._sched
        pop_batch = sched.pop_batch
        n_events = 0
        hw = self.heap_high_water
        track = self._metrics is not None
        try:
            if until is None:
                if track:
                    # Instrumented twin of the fast loop below: the
                    # high-water check must not tax metrics-off runs.
                    while True:
                        pending = len(sched)
                        if pending > hw:
                            hw = pending
                        nxt = pop_batch()
                        if nxt is None:
                            break
                        t, batch = nxt
                        self._now = t
                        it = iter(batch)
                        try:
                            for fn, args in it:
                                fn(*args)
                        except BaseException:
                            self._requeue(t, it)
                            raise
                        n_events += len(batch)
                else:
                    # The hot loop: the same-time batch runs inline with
                    # no per-event bookkeeping at all — the executed
                    # count is the batch length, added once per batch.
                    while True:
                        nxt = pop_batch()
                        if nxt is None:
                            break
                        t, batch = nxt
                        self._now = t
                        it = iter(batch)
                        try:
                            for fn, args in it:
                                fn(*args)
                        except BaseException:
                            self._requeue(t, it)
                            raise
                        n_events += len(batch)
            else:
                peek = sched.peek_time
                while True:
                    t = peek()
                    if t is None:
                        break
                    if t > until:
                        self._now = until
                        return self._now
                    if track:
                        pending = len(sched)
                        if pending > hw:
                            hw = pending
                    _t, batch = pop_batch()
                    self._now = t
                    it = iter(batch)
                    try:
                        for fn, args in it:
                            fn(*args)
                    except BaseException:
                        self._requeue(t, it)
                        raise
                    n_events += len(batch)
            if self._live_processes:
                stuck = sorted(p.name for p in self._live_processes)
                raise DeadlockError(
                    "event queue drained with blocked processes: "
                    + ", ".join(stuck[:16])
                    + ("..." if len(stuck) > 16 else "")
                )
            return self._now
        finally:
            self._running = False
            self.events_processed += n_events
            EVENT_STATS["processed"] += n_events
            if track:
                self.heap_high_water = hw
                m = self._metrics
                m.counter("engine.events").inc(n_events)
                m.counter("engine.runs").inc()
                m.gauge("engine.heap_max").set_max(hw)

    def _requeue(self, t: float, tail) -> None:
        """Re-queue the unexecuted remainder of a batch whose event raised.

        ``tail`` is the batch iterator, resumed past the raising event —
        pushing it back at ``t`` keeps the pending set consistent for
        post-mortem inspection.  (Events executed before the raise stay
        uncounted, matching the pre-batching per-event loop, which also
        never reached its counter update on a raise.)
        """
        push = self._push
        for fn, args in tail:
            push(t, fn, args)

    def run_all(self, gens: Iterable[ProcessGen]) -> list[Any]:
        """Spawn each generator, run to completion, return their results."""
        procs = [self.spawn(g, name=f"proc{i}") for i, g in enumerate(gens)]
        self.run()
        return [p.result for p in procs]


def wait_all(events: Iterable[Event | Process]) -> ProcessGen:
    """Process helper: wait for every event/process, return their values.

    Because events latch, waiting sequentially is equivalent to waiting
    concurrently; completion time is the max over all events.
    """
    results = []
    for ev in events:
        results.append((yield ev))
    return results
