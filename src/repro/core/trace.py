"""Lightweight event tracing.

A :class:`Tracer` can be attached to a cluster to record message transfers
and compute phases.  It is used by tests (to assert on communication
structure, e.g. "binomial bcast sends exactly P-1 messages") and by the
analysis layer (aggregate bytes on the wire, link utilisation).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MessageRecord:
    """One point-to-point message as seen on the network."""

    src: int          # sending rank
    dst: int          # receiving rank
    nbytes: int       # logical payload size
    tag: int
    t_inject: float   # virtual time the sender handed it to the NIC
    t_deliver: float  # virtual time it arrived at the receiver
    intra_node: bool  # True if both ranks share an SMP node


@dataclass(frozen=True)
class ComputeRecord:
    """One compute phase charged to a rank."""

    rank: int
    flops: float
    bytes_moved: float
    kernel: str
    t_start: float
    t_end: float


class Tracer:
    """Accumulates trace records.  Disabled tracers cost one branch.

    ``enabled`` is a managed property: disabling a tracer mid-run also
    clears its records, so the aggregate views below never mix records
    from before and after the switch (a half-populated aggregate is
    strictly worse than an empty one — it looks like a complete run).
    """

    __slots__ = ("_enabled", "messages", "computes")

    def __init__(self, enabled: bool = True,
                 messages: list[MessageRecord] | None = None,
                 computes: list[ComputeRecord] | None = None) -> None:
        self._enabled = bool(enabled)
        self.messages: list[MessageRecord] = messages if messages is not None else []
        self.computes: list[ComputeRecord] = computes if computes is not None else []

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        value = bool(value)
        if self._enabled and not value:
            self.clear()
        self._enabled = value

    def record_message(self, rec: MessageRecord) -> None:
        if self._enabled:
            self.messages.append(rec)

    def record_compute(self, rec: ComputeRecord) -> None:
        if self._enabled:
            self.computes.append(rec)

    def clear(self) -> None:
        self.messages.clear()
        self.computes.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "on" if self._enabled else "off"
        return (f"<Tracer {state} messages={len(self.messages)} "
                f"computes={len(self.computes)}>")

    # -- aggregate views used by tests/analysis ------------------------------

    @property
    def message_count(self) -> int:
        return len(self.messages)

    @property
    def total_bytes(self) -> int:
        return sum(m.nbytes for m in self.messages)

    @property
    def inter_node_bytes(self) -> int:
        return sum(m.nbytes for m in self.messages if not m.intra_node)

    def messages_between(self, src: int, dst: int) -> list[MessageRecord]:
        return [m for m in self.messages if m.src == src and m.dst == dst]

    def compute_time(self, rank: int | None = None) -> float:
        return sum(
            c.t_end - c.t_start
            for c in self.computes
            if rank is None or c.rank == rank
        )


class _NullTracer(Tracer):
    """The shared disabled tracer; enabling it would silently leak
    records between unrelated runs, so the setter refuses."""

    __slots__ = ()

    @Tracer.enabled.setter
    def enabled(self, value: bool) -> None:
        if value:
            raise ValueError(
                "NULL_TRACER is shared and cannot be enabled; "
                "create a Tracer() instead"
            )


#: A shared no-op tracer for when tracing is off.
NULL_TRACER = _NullTracer(enabled=False)
