"""Pluggable scheduler backends for the discrete-event engine.

The engine's pending-event queue is the hottest data structure in the
whole simulator; this module lifts it behind a small backend interface so
the queue discipline can be swapped without touching engine semantics:

* ``heapq`` — the reference backend: one binary heap of
  ``(time, seq, fn, args)`` tuples, ties broken by a global insertion
  counter.  Exactly the pre-refactor engine behaviour.
* ``calendar`` — a calendar-queue-style bucketed backend tuned for the
  engine's near-monotone, heavily tied timestamp distribution: events are
  bucketed by *exact* timestamp (a dict of append-ordered lists) and only
  the set of **distinct** times lives in a heap.  Bulk-synchronous phases
  (collectives, barrier waves) schedule thousands of events at identical
  virtual times, so pushes are mostly O(1) appends and the heap shrinks
  by the tie factor.  No seq counter or per-event tuple is needed —
  bucket order *is* insertion order.
* ``macro`` — the calendar backend plus the **macro fast-path** flag:
  steady-state collective phases whose cost the closed forms in
  :mod:`repro.network.macro` price are short-circuited analytically
  instead of being scheduled message by message (see
  :mod:`repro.imb.fastpath`).  The fast-path only fires at rank counts
  strictly above :func:`macro_fastpath_threshold`, which defaults to
  above the paper's largest configuration — results inside the paper
  range stay byte-identical under every backend.

Every backend yields the exact same execution order: events run in
``(time, global insertion order)`` — the determinism contract the golden
oracle relies on.  Backends hand the engine *batches* (all events at one
timestamp present when the batch is taken), which the engine drains in
one inner loop, amortising pop cost and bookkeeping.

Selection: ``Engine(backend=...)`` takes a name or instance; the
process-wide default comes from :func:`set_default_backend` (wired to the
``--engine-backend`` harness flag) or the ``REPRO_ENGINE_BACKEND``
environment variable, falling back to ``calendar``.
"""

from __future__ import annotations

import itertools
import os
from heapq import heappop, heappush
from typing import Any, Callable

from .errors import ConfigError

#: Environment variable consulted for the process default backend.
BACKEND_ENV = "REPRO_ENGINE_BACKEND"

#: Environment variable for the macro fast-path rank threshold.
THRESHOLD_ENV = "REPRO_MACRO_THRESHOLD"

#: Fast-path fires only strictly above this many ranks by default — one
#: past the paper's largest configuration (2024 CPUs on the four-box
#: Altix), so every figure/table value in the paper range is produced by
#: the exact message-level simulation under *every* backend.
DEFAULT_MACRO_THRESHOLD = 2048

#: Name used when no explicit default has been configured anywhere.
FALLBACK_BACKEND = "calendar"


class SchedulerBackend:
    """Pending-event queue: absolute-time push, batched in-order pop.

    The contract every backend must honour:

    * :meth:`push` inserts ``fn(*args)`` to run at absolute time ``t``.
    * :meth:`pop_batch` removes and returns ``(t, events)`` where ``t``
      is the minimum pending time and ``events`` is **every** event at
      ``t`` currently queued, in insertion order; ``None`` when empty.
      Events pushed at ``t`` *while a batch runs* form a later batch —
      which is exactly where a per-event pop loop would put them, since
      they would carry larger insertion seqs than anything in flight.
    * :meth:`peek_time` returns the minimum pending time without
      removing anything (``None`` when empty) — the bounded-run path.
    * ``len(backend)`` is the number of pending events.

    ``macro_fastpath`` marks backends that additionally license the
    analytic collective fast-path; the scheduler itself stays exact.
    """

    name: str = "?"
    macro_fastpath: bool = False

    def push(self, t: float, fn: Callable[..., None], args: tuple) -> None:
        raise NotImplementedError

    def pop_batch(self) -> tuple[float, list[tuple[Callable, tuple]]] | None:
        raise NotImplementedError

    def peek_time(self) -> float | None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r} pending={len(self)}>"


class HeapqBackend(SchedulerBackend):
    """Reference backend: one binary heap, global tie-break counter."""

    name = "heapq"

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._counter = itertools.count()

    def push(self, t: float, fn: Callable[..., None], args: tuple) -> None:
        heappush(self._heap, (t, next(self._counter), fn, args))

    def pop_batch(self):
        heap = self._heap
        if not heap:
            return None
        t, _seq, fn, args = heappop(heap)
        batch = [(fn, args)]
        while heap and heap[0][0] == t:
            _t, _seq, fn, args = heappop(heap)
            batch.append((fn, args))
        return t, batch

    def peek_time(self) -> float | None:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)


class CalendarQueueBackend(SchedulerBackend):
    """Bucketed calendar queue keyed by exact timestamp.

    ``_buckets`` maps each distinct pending time to its events in
    insertion order; ``_times`` is a heap of the distinct times.  A time
    enters the heap exactly once per bucket generation (a bucket is
    removed whole by :meth:`pop_batch`, and only a later push at the
    same time re-creates it and re-heaps the key), so the heap never
    holds duplicates and each event pays amortised O(1) push cost
    whenever its timestamp is already pending — the common case in the
    engine's bulk-synchronous phases.
    """

    name = "calendar"

    __slots__ = ("_buckets", "_times", "_len")

    def __init__(self) -> None:
        self._buckets: dict[float, list[tuple[Callable, tuple]]] = {}
        self._times: list[float] = []
        self._len = 0

    def push(self, t: float, fn: Callable[..., None], args: tuple) -> None:
        bucket = self._buckets.get(t)
        if bucket is None:
            self._buckets[t] = [(fn, args)]
            heappush(self._times, t)
        else:
            bucket.append((fn, args))
        self._len += 1

    def pop_batch(self):
        if not self._times:
            return None
        t = heappop(self._times)
        batch = self._buckets.pop(t)
        self._len -= len(batch)
        return t, batch

    def peek_time(self) -> float | None:
        return self._times[0] if self._times else None

    def __len__(self) -> int:
        return self._len


class MacroBackend(CalendarQueueBackend):
    """Calendar queue that additionally enables the macro fast-path."""

    name = "macro"
    macro_fastpath = True

    __slots__ = ()


#: Backend registry: name -> zero-arg factory.
BACKENDS: dict[str, Callable[[], SchedulerBackend]] = {
    "heapq": HeapqBackend,
    "calendar": CalendarQueueBackend,
    "macro": MacroBackend,
}


def register_backend(name: str,
                     factory: Callable[[], SchedulerBackend]) -> None:
    """Register a scheduler backend under ``name`` (overwrites allowed)."""
    BACKENDS[name] = factory


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(BACKENDS)


# -- process-wide default -----------------------------------------------------

_default_name: str | None = None


def set_default_backend(name: str | None) -> str | None:
    """Set (or with ``None`` clear) the process default; returns the old.

    The explicit default outranks ``REPRO_ENGINE_BACKEND``; clearing it
    restores env-var resolution.  Raises :class:`ConfigError` for an
    unknown name so CLI typos fail before any simulation runs.
    """
    global _default_name
    if name is not None and name not in BACKENDS:
        raise ConfigError(
            f"unknown engine backend {name!r} "
            f"(registered: {', '.join(available_backends())})"
        )
    previous, _default_name = _default_name, name
    return previous


def default_backend_name() -> str:
    """The backend name new engines use when none is passed explicitly."""
    if _default_name is not None:
        return _default_name
    env = os.environ.get(BACKEND_ENV, "").strip()
    if env:
        if env not in BACKENDS:
            raise ConfigError(
                f"{BACKEND_ENV}={env!r} names no registered backend "
                f"(registered: {', '.join(available_backends())})"
            )
        return env
    return FALLBACK_BACKEND


def make_backend(backend: str | SchedulerBackend | None = None,
                 ) -> SchedulerBackend:
    """Resolve ``backend`` (name, instance, or None = default) to a fresh
    instance ready to be owned by one engine."""
    if backend is None:
        backend = default_backend_name()
    if isinstance(backend, SchedulerBackend):
        return backend
    try:
        factory = BACKENDS[backend]
    except KeyError:
        raise ConfigError(
            f"unknown engine backend {backend!r} "
            f"(registered: {', '.join(available_backends())})"
        ) from None
    return factory()


# -- macro fast-path switches -------------------------------------------------

def macro_fastpath_active() -> bool:
    """Whether the resolved default backend licenses the macro fast-path."""
    name = default_backend_name()
    factory = BACKENDS.get(name)
    if factory is None:  # pragma: no cover - guarded by default_backend_name
        return False
    flag = getattr(factory, "macro_fastpath", None)
    if flag is None:
        flag = getattr(factory(), "macro_fastpath", False)
    return bool(flag)


def macro_fastpath_threshold() -> int:
    """Rank count strictly above which the macro fast-path may fire.

    Read from ``REPRO_MACRO_THRESHOLD`` each call (scale studies lower it
    per run); defaults to :data:`DEFAULT_MACRO_THRESHOLD`, i.e. beyond
    the paper's largest configuration so default sweeps never divert.
    """
    raw = os.environ.get(THRESHOLD_ENV, "").strip()
    if not raw:
        return DEFAULT_MACRO_THRESHOLD
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"{THRESHOLD_ENV} must be an integer, got {raw!r}"
        ) from None
    if value < 0:
        raise ConfigError(f"{THRESHOLD_ENV} must be >= 0, got {value}")
    return value


def backend_result_tag() -> str | None:
    """Cache-key salt for modes that change simulated *values*.

    Exact backends (``heapq``/``calendar``) are proven byte-identical, so
    their points share cache entries — that sharing is what makes
    cache-warm cross-backend runs byte-identical.  A fast-pathing
    backend prices eligible points analytically, so its results must
    never be served to (or from) an exact-mode cache: salt the key with
    the mode and its threshold.
    """
    if not macro_fastpath_active():
        return None
    return f"macro-fastpath>{macro_fastpath_threshold()}"
