"""Exception hierarchy for the simulator."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class SimulationError(ReproError):
    """Raised for malformed use of the discrete-event engine."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while processes are still blocked.

    This is the simulated analogue of an MPI hang: e.g. a ``recv`` whose
    matching ``send`` never arrives.  The message lists the stuck processes
    to aid debugging.
    """


class MPIError(ReproError):
    """Raised for incorrect MPI-level usage (bad rank, size mismatch...)."""


class TruncationError(MPIError):
    """Raised when a received message is larger than the posted buffer."""


class ConfigError(ReproError):
    """Raised for invalid machine/network configuration."""


class BenchmarkError(ReproError):
    """Raised when a benchmark is invoked with unusable parameters."""
