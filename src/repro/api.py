"""The stable public API surface of :mod:`repro`.

User scripts, service workers, and downstream tooling should import from
here (or from :mod:`repro` itself, which re-exports everything in
``__all__``) instead of reaching into deep modules — the deep paths are
implementation detail and may move; this surface is covenanted.

The surface:

* **Running paper items** — :func:`run_figure` / :func:`run_table`
  regenerate any figure or table by id (``"fig06"``, ``6``, ``"table2"``
  all accepted), through whatever executor is ambient.
* **Execution** — :class:`~repro.exec.points.SimPoint`,
  :class:`~repro.exec.executor.SweepExecutor`, :func:`using_executor`,
  :func:`get_executor`, :class:`~repro.exec.cache.ResultCache`.
* **Configuration** — :class:`~repro.config.ReproConfig`, the single
  flag/env/default resolver every entry point shares.
* **Service** — :class:`~repro.service.queue.JobQueue`, the async job
  queue behind ``python -m repro.service``.
* **Validation** — :func:`validate`, the golden/invariant/fuzz gate.

Heavy subsystems (harness registries, the service, the validation gate)
are imported lazily so ``import repro`` stays light.
"""

from __future__ import annotations

from typing import Any

from .config import ReproConfig, default_jobs
from .exec.cache import ResultCache
from .exec.executor import SweepExecutor, get_executor, using_executor
from .exec.points import SimPoint

__all__ = [
    "JobQueue",
    "ReproConfig",
    "ResultCache",
    "SimPoint",
    "SweepExecutor",
    "default_jobs",
    "get_executor",
    "list_scenarios",
    "normalize_figure_id",
    "normalize_item_id",
    "normalize_table_id",
    "run_figure",
    "run_item",
    "run_scenario",
    "run_table",
    "using_executor",
    "validate",
]


# -- id normalisation --------------------------------------------------------

def normalize_figure_id(figure: int | str) -> str:
    """Canonical ``figNN`` id from ``6``, ``"6"``, ``"fig6"``, ``"fig06"``.

    Raises :class:`ValueError` for unparsable input; existence against
    the figure registry is checked by :func:`run_figure`.
    """
    raw = str(figure).lower().removeprefix("fig").lstrip("0") or "0"
    return f"fig{int(raw):02d}"


def normalize_table_id(table: int | str) -> str:
    """Canonical ``tableN`` id from ``2``, ``"2"``, or ``"table2"``."""
    raw = str(table).lower().removeprefix("table")
    return f"table{int(raw)}"


def normalize_item_id(item: int | str) -> str:
    """Canonical id for a mixed figure/table/scenario identifier.

    Bare numbers are figures (matching the CLI's ``--figure`` shorthand);
    anything starting with ``table`` is a table; any other string is
    accepted verbatim when it names a registered scenario (so the
    service can submit e.g. ``app_cg`` by name).
    """
    s = str(item)
    if s.lower().startswith("table"):
        return normalize_table_id(item)
    try:
        return normalize_figure_id(item)
    except ValueError:
        from .scenarios import has_scenario

        if has_scenario(s):
            return s
        raise ValueError(
            f"unknown item {item!r}: not a figure/table id or a "
            "registered scenario name") from None


# -- running paper items -----------------------------------------------------

def run_figure(figure: int | str, max_cpus: int | None = None):
    """Regenerate one paper figure; returns its ``FigureResult``.

    Runs through the ambient executor — install one with
    :func:`using_executor` (or build one from :class:`ReproConfig`) to
    parallelise or cache.
    """
    from .harness.figures import ALL_FIGURES

    ident = normalize_figure_id(figure)
    try:
        fn = ALL_FIGURES[ident]
    except KeyError:
        raise KeyError(
            f"unknown figure {figure!r} "
            f"(known: {', '.join(sorted(ALL_FIGURES))})") from None
    return fn(max_cpus=max_cpus)


def run_table(table: int | str, max_cpus: int | None = None):
    """Regenerate one paper table; returns its ``TableResult``.

    Tables that do not sweep CPUs (1 and 2) ignore ``max_cpus``.
    """
    import inspect

    from .harness.tables import ALL_TABLES

    ident = normalize_table_id(table)
    try:
        fn = ALL_TABLES[ident]
    except KeyError:
        raise KeyError(
            f"unknown table {table!r} "
            f"(known: {', '.join(sorted(ALL_TABLES))})") from None
    if "max_cpus" in inspect.signature(fn).parameters:
        return fn(max_cpus=max_cpus)
    return fn()


def run_item(item: str, max_cpus: int | None = None):
    """Dispatch ``figNN`` / ``tableN`` / scenario ids to the right runner."""
    s = str(item)
    if s.lower().startswith("table"):
        return run_table(item, max_cpus=max_cpus)
    try:
        normalize_figure_id(item)
    except ValueError:
        return run_scenario(s, max_cpus=max_cpus)
    return run_figure(item, max_cpus=max_cpus)


def run_scenario(scenario: str, max_cpus: int | None = None):
    """Regenerate one registered scenario by name.

    Scenarios are the declarative layer behind every figure/table (see
    :mod:`repro.scenarios`): builtins plus any ``scenarios/*.toml`` /
    ``REPRO_SCENARIO_PATH`` files.  Raises
    :class:`~repro.scenarios.ScenarioError` for unknown names.
    """
    from .scenarios import run_scenario as _run

    return _run(scenario, max_cpus=max_cpus)


def list_scenarios() -> tuple[str, ...]:
    """Ids of every registered scenario (builtin + discovered TOML)."""
    from .scenarios import scenario_ids

    return scenario_ids()


# -- validation --------------------------------------------------------------

def validate(**kwargs) -> Any:
    """Run the validation gate; returns its ``ValidationReport``.

    Thin stable wrapper over
    :func:`repro.validate.gate.run_validation` — see there for the
    keyword arguments (``figures``, ``tables``, ``max_cpus``,
    ``golden``, ``invariants``, ``fuzz_configs`` ...).
    """
    from .validate.gate import run_validation

    return run_validation(**kwargs)


# -- lazy attributes ---------------------------------------------------------

def __getattr__(name: str):
    if name == "JobQueue":
        from .service.queue import JobQueue
        return JobQueue
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
