"""3-D torus topology.

The paper's future-work list (§5.2) includes the IBM Blue Gene/P and the
Cray XT4, both 3-D torus machines; the Cray X1's own network is described
as a "modified torus".  Nodes map onto an ``nx x ny x nz`` grid filled
lexicographically; routing is dimension-ordered with wraparound, so the
hop count between two nodes is the sum of per-axis ring distances.
"""

from __future__ import annotations

import math

from ..core.errors import ConfigError
from .topology import Topology


def _axis_distance(a: int, b: int, n: int) -> int:
    d = abs(a - b)
    return min(d, n - d)


def balanced_dims(n_nodes: int) -> tuple[int, int, int]:
    """A near-cubic ``(nx, ny, nz)`` with nx*ny*nz >= n_nodes."""
    c = max(1, round(n_nodes ** (1.0 / 3.0)))
    for nx in range(c, 0, -1):
        rest = math.ceil(n_nodes / nx)
        ny = max(1, round(math.sqrt(rest)))
        while rest % ny:
            ny -= 1
        nz = rest // ny
        if nx * ny * nz >= n_nodes:
            return tuple(sorted((nx, ny, nz)))  # type: ignore[return-value]
    return (1, 1, n_nodes)


class Torus3D(Topology):
    """A 3-D torus over ``dims = (nx, ny, nz)`` grid positions."""

    def __init__(self, n_nodes: int,
                 dims: tuple[int, int, int] | None = None) -> None:
        super().__init__(n_nodes)
        if dims is None:
            dims = balanced_dims(n_nodes)
        if len(dims) != 3 or any(d < 1 for d in dims):
            raise ConfigError(f"torus dims must be three positives: {dims}")
        if dims[0] * dims[1] * dims[2] < n_nodes:
            raise ConfigError(
                f"torus {dims} holds {math.prod(dims)} nodes, "
                f"asked for {n_nodes}"
            )
        self.dims = tuple(int(d) for d in dims)

    def _coords(self, node: int) -> tuple[int, int, int]:
        nx, ny, _nz = self.dims
        x = node % nx
        y = (node // nx) % ny
        z = node // (nx * ny)
        return x, y, z

    @property
    def n_levels(self) -> int:
        return 1

    def path_level(self, a: int, b: int) -> int:
        self.check_pair(a, b)
        return 0 if a == b else 1

    def hops(self, a: int, b: int) -> int:
        self.check_pair(a, b)
        if a == b:
            return 0
        ca, cb = self._coords(a), self._coords(b)
        return max(1, sum(_axis_distance(x, y, n)
                          for x, y, n in zip(ca, cb, self.dims)))

    def level_capacity_links(self, level: int) -> float:
        if level != 1:
            raise ConfigError(f"torus has a single core level, got {level}")
        # Bisection across the longest axis: 2 * (area) link pairs with
        # wraparound, both directions.
        nx, ny, nz = self.dims
        longest = max(self.dims)
        area = (nx * ny * nz) // longest
        # cutting a ring crosses it twice; x2 for both directions
        return 4.0 * area if longest > 1 else 2.0 * self.n_nodes

    def average_hops_analytic(self) -> float:
        """Exact for full grids: per-axis mean ring distances add up."""
        n = self.n_nodes
        if n < 2:
            return 0.0
        if math.prod(self.dims) != n:
            return self.average_hops()  # partial fill: brute force

        def ring_mean(k: int) -> float:
            if k == 1:
                return 0.0
            total = sum(min(d, k - d) for d in range(k))
            return total / k

        mean = sum(ring_mean(k) for k in self.dims)
        # condition on the pair being distinct
        return mean * n / (n - 1)
