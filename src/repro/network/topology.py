"""Abstract interconnect topology.

A topology is defined over *nodes* (SMP boxes with one NIC attachment
each).  It answers three questions the network model needs:

1. ``hops(a, b)`` — how many switch-to-switch hops separate two nodes
   (drives the distance-dependent part of latency);
2. ``path_level(a, b)`` — which hierarchy level a message tops out at
   (selects the shared core resource the message must cross);
3. ``level_capacity_links(level)`` — the aggregate capacity, in units of
   link bandwidths, available at that level (sizes the core resource).

Flat topologies (crossbar, hypercube) expose a single core level 1; the
hierarchical fat tree exposes one level per tier so that, e.g., traffic
confined to an SGI Altix C-brick never contends with inter-box traffic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..core.errors import ConfigError


class Topology(ABC):
    """Base class for interconnect topologies over ``n_nodes`` endpoints."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 1:
            raise ConfigError("topology needs at least one node")
        self.n_nodes = int(n_nodes)

    # -- structure ------------------------------------------------------------

    @abstractmethod
    def hops(self, a: int, b: int) -> int:
        """Switch hops between distinct nodes ``a`` and ``b`` (>= 1)."""

    @abstractmethod
    def path_level(self, a: int, b: int) -> int:
        """Hierarchy level the a→b path crosses (0 = same node, >=1 inter)."""

    @abstractmethod
    def level_capacity_links(self, level: int) -> float:
        """Aggregate fluid capacity at ``level``, in link-bandwidth units.

        Sized as twice the bisection width of the sub-network at that level
        (both directions of every bisection link).
        """

    @property
    @abstractmethod
    def n_levels(self) -> int:
        """Number of inter-node hierarchy levels (>= 1)."""

    # -- derived metrics --------------------------------------------------------

    def diameter(self) -> int:
        """Maximum hop count over all node pairs (O(n^2); fine for tests)."""
        best = 0
        for a in range(self.n_nodes):
            for b in range(a + 1, self.n_nodes):
                h = self.hops(a, b)
                if h > best:
                    best = h
        return best

    def bisection_links(self) -> float:
        """Bisection width in links (top level capacity / 2 directions)."""
        return self.level_capacity_links(self.n_levels) / 2.0

    def average_hops(self) -> float:
        """Mean hops over all ordered distinct pairs (exact, O(n^2))."""
        n = self.n_nodes
        if n < 2:
            return 0.0
        total = 0
        for a in range(n):
            for b in range(n):
                if a != b:
                    total += self.hops(a, b)
        return total / (n * (n - 1))

    def average_hops_analytic(self) -> float:
        """Closed-form/cheap mean hop count; subclasses override.

        The base implementation falls back to the exact O(n^2) scan, which
        is fine for small systems; large topologies provide O(levels)
        formulas (validated against this scan in the tests).
        """
        return self.average_hops()

    def check_pair(self, a: int, b: int) -> None:
        n = self.n_nodes
        if not (0 <= a < n and 0 <= b < n):
            raise ConfigError(f"node pair ({a}, {b}) out of range for n={n}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} n={self.n_nodes}>"
