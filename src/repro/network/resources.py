"""Bandwidth resources: the contention primitives of the network model.

A :class:`BandwidthResource` is a FIFO fluid server: each transfer occupies
the resource for ``nbytes / bandwidth`` seconds, and transfers queue in the
order they arrive.  The network model composes three kinds of resource per
message — source-node egress NIC, a network-core (bisection) aggregate, and
destination-node ingress NIC — which is enough to reproduce the contention
effects the paper discusses (SMP-node NIC sharing on the NEC SX-8, the SGI
Altix multi-box bandwidth collapse, Myrinet oversubscription) without
tracking individual switch ports.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass

from ..core.errors import ConfigError
from ..obs.metrics import MetricsRegistry
from ..obs.timeline import get_timeline


@dataclass(frozen=True)
class ResourceMetrics:
    """Instruments shared by every resource instance of one kind.

    Aggregating per *kind* (egress/ingress/core/shm/nicbus) rather than
    per instance keeps metric cardinality independent of node count;
    per-instance ``busy_time``/``bytes_served`` stay on the resource
    itself for the critical-path analyser and the utilisation report.
    When a timeline recorder is installed, the kind's busy intervals
    additionally stream into its time-bucketed occupancy series.
    """

    queue_wait: object   # Histogram of seconds spent queued before service
    bytes: object        # Counter of bytes served
    busy_s: object       # Counter of busy (serving) virtual seconds
    timeline: object | None = None  # TimelineSeries for this kind, or None

    @classmethod
    def for_kind(cls, registry: MetricsRegistry,
                 kind: str) -> "ResourceMetrics | None":
        """Instruments under ``net.<kind>.*``, or None when disabled.

        The registry hands out no-op instruments when it is disabled, so
        a timeline-only configuration still records busy intervals while
        the counter/histogram calls stay free.
        """
        recorder = get_timeline()
        series = recorder.series(kind) if recorder.enabled else None
        if not registry.enabled and series is None:
            return None
        return cls(
            queue_wait=registry.histogram(f"net.{kind}.queue_wait"),
            bytes=registry.counter(f"net.{kind}.bytes"),
            busy_s=registry.counter(f"net.{kind}.busy_s"),
            timeline=series,
        )


class BandwidthResource:
    """A FIFO bandwidth server.

    ``bandwidth`` is in bytes/second and may be ``math.inf`` for a
    non-constraining resource.  Utilisation accounting is kept for the
    analysis layer; an optional :class:`ResourceMetrics` additionally
    streams queue-wait/bytes/busy into the metrics registry.
    """

    __slots__ = ("name", "bandwidth", "next_free", "busy_time",
                 "bytes_served", "metrics")

    def __init__(self, name: str, bandwidth: float,
                 metrics: ResourceMetrics | None = None) -> None:
        if bandwidth <= 0:
            raise ConfigError(f"resource {name!r}: bandwidth must be > 0")
        self.name = name
        self.bandwidth = float(bandwidth)
        self.next_free = 0.0
        self.busy_time = 0.0
        self.bytes_served = 0.0
        self.metrics = metrics

    def service_time(self, nbytes: float) -> float:
        if self.bandwidth is math.inf:
            return 0.0
        return nbytes / self.bandwidth

    def reserve(self, nbytes: float, earliest: float) -> tuple[float, float]:
        """Reserve the resource for ``nbytes``; returns ``(start, end)``."""
        start = self.next_free
        if start < earliest:
            start = earliest
        # nbytes / inf == 0.0, so an unconstrained resource needs no branch.
        end = start + nbytes / self.bandwidth
        self.next_free = end
        self.busy_time += end - start
        self.bytes_served += nbytes
        m = self.metrics
        if m is not None:
            m.queue_wait.observe(start - earliest)
            m.bytes.inc(nbytes)
            m.busy_s.inc(end - start)
            if m.timeline is not None:
                m.timeline.add(start, end, nbytes)
        return start, end

    def reset(self) -> None:
        self.next_free = 0.0
        self.busy_time = 0.0
        self.bytes_served = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BandwidthResource {self.name!r} bw={self.bandwidth:.3g} B/s>"


def reserve_joint(
    resources: Iterable[BandwidthResource], nbytes: float, earliest: float
) -> tuple[float, float]:
    """Reserve several resources for one cut-through transfer.

    Each resource is reserved *independently* (its own FIFO): the message
    occupies resource ``r`` for ``nbytes / bw_r`` starting when ``r``
    frees up.  Completion is the latest end across resources.  Returns
    ``(first_start, completion)``.

    Independent reservation keeps every resource work-conserving, which
    makes aggregate throughput match the fluid fair-share ideal under
    bulk-synchronous load.  (A common-start coupled reservation was tried
    first and produces convoy dead-time: a busy *remote* ingress would
    idle the local egress, collapsing random-ring bandwidth far below
    the per-resource capacities.)
    """
    first_start = None
    end = earliest
    for r in resources:
        s, e = r.reserve(nbytes, earliest)
        if first_start is None:
            first_start = s
        if e > end:
            end = e
    if first_start is None:
        return earliest, end
    return first_start, end
