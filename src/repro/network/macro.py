"""Closed-form ("macro") collective cost models.

For HPCC sweeps at the paper's largest configurations (2024 CPUs on the
four-box Altix, 576 on the NEC SX-8) scheduling every message of an
alltoall individually is too slow in pure Python.  The functions here
compute the *same* algorithm structure — pairwise exchange, rings,
recursive doubling/halving, binomial trees, dissemination — analytically
from the fabric parameters, including NIC sharing, core/bisection
capacity, intra-node steps and the rendezvous handshake.

A property-based test asserts macro and algorithmic execution agree
within tolerance at small/medium scale (see
``tests/test_macro_agreement.py``); the ablation bench
``benchmarks/test_ablation_macro_model.py`` reports the deviation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import ConfigError
from ..machine.system import MachineSpec

#: Rendezvous control-message size must match repro.mpi.pt2pt._CTRL_BYTES.
_CTRL_BYTES = 64


@dataclass(frozen=True)
class MacroContext:
    """Machine-derived scalars the closed forms need."""

    nprocs: int
    n_nodes: int
    ppn: int                 # CPUs per node (full nodes assumed)
    lat_inter: float         # small-message inter-node time (s)
    lat_shm: float           # small-message intra-node time (s)
    flow_bw: float           # single inter-node stream (B/s)
    egress_bw: float         # per-node NIC (B/s); flows share it
    core_bw: float           # top-level aggregate capacity (B/s)
    shm_flow_bw: float
    shm_node_bw: float
    eager_threshold: int
    duplex_factor: float
    reduce_bw: float         # local reduction streaming bandwidth (B/s)

    @classmethod
    def from_machine(cls, machine: MachineSpec, nprocs: int) -> "MacroContext":
        if nprocs < 1:
            raise ConfigError("nprocs must be >= 1")
        params = machine.fabric_params()
        n_nodes = machine.n_nodes(nprocs)
        topo = machine.network.build_topology(n_nodes)
        if n_nodes > 1:
            avg_hops = topo.average_hops_analytic()
            lat_inter = (
                params.base_latency
                + avg_hops * params.per_hop_latency
                + params.send_overhead
                + params.recv_overhead
            )
            # Traffic only contends on the hierarchy tier the job actually
            # spans: a run confined to one C-brick/leaf switch never sees
            # the inter-box blocking (mirrors Topology.path_level).
            span_level = max(topo.path_level(0, n_nodes - 1), 1)
            core_bw = (
                topo.level_capacity_links(span_level)
                * params.link_bw
                * params.bw_efficiency
            )
        else:
            lat_inter = math.inf
            core_bw = math.inf
        proc = machine.processor
        reduce_bw = (
            proc.stream_triad_bw * machine.node.stream_node_scale
        )
        return cls(
            nprocs=nprocs,
            n_nodes=n_nodes,
            ppn=min(machine.node.cpus, nprocs),
            lat_inter=lat_inter,
            lat_shm=params.shm_latency + params.send_overhead + params.recv_overhead,
            flow_bw=params.effective_point_bw,
            egress_bw=params.effective_nic_bw,
            core_bw=core_bw,
            shm_flow_bw=params.shm_flow_bw,
            shm_node_bw=params.shm_bw,
            eager_threshold=params.eager_threshold,
            duplex_factor=params.duplex_factor,
            reduce_bw=reduce_bw,
        )

    # -- step primitives ------------------------------------------------------

    def rendezvous_extra(self, nbytes: float) -> float:
        """Handshake cost added to each step for rendezvous messages."""
        if nbytes <= self.eager_threshold:
            return 0.0
        return 2.0 * (self.lat_inter if self.n_nodes > 1 else self.lat_shm)

    def inter_step(self, nbytes: float, flows_per_node: float,
                   total_inter_bytes: float) -> float:
        """One bulk-synchronous step where every node pushes
        ``flows_per_node`` streams of ``nbytes`` to other nodes."""
        # Each node both sends and receives flows_per_node streams; the
        # NIC bus carries both directions at duplex_factor x one-way bw.
        bw_time = max(
            nbytes / self.flow_bw,
            flows_per_node * nbytes / self.egress_bw,
            2.0 * flows_per_node * nbytes / (self.egress_bw * self.duplex_factor),
            total_inter_bytes / self.core_bw,
        )
        return self.lat_inter + bw_time + self.rendezvous_extra(nbytes)

    def shm_step(self, nbytes: float, flows_per_node: float) -> float:
        bw_time = max(
            nbytes / self.shm_flow_bw,
            flows_per_node * nbytes / self.shm_node_bw,
        )
        return self.lat_shm + bw_time

    def exchange_step(self, nbytes: float, distance: int) -> float:
        """One step where every rank exchanges ``nbytes`` with a partner
        ``distance`` ranks away (block placement)."""
        if distance % self.nprocs == 0:
            return 0.0
        if self._is_intra(distance):
            return self.shm_step(nbytes, self.ppn)
        total = self.n_nodes * self.ppn * nbytes
        return self.inter_step(nbytes, self.ppn, total)

    def _is_intra(self, distance: int) -> bool:
        """Whether a partner at +-distance is on the same node.

        With block placement, power-of-two aligned exchanges at distance
        < ppn stay in the node; anything else is (almost always) inter.
        """
        d = abs(distance) % self.nprocs
        d = min(d, self.nprocs - d)
        return 0 < d < self.ppn and self.n_nodes > 0 and d < self.ppn

    def reduce_time(self, nbytes: float) -> float:
        """Local cost of folding two nbytes-long buffers together."""
        return 3.0 * nbytes / self.reduce_bw


# ---------------------------------------------------------------------------
# collectives
# ---------------------------------------------------------------------------

def alltoall_time(ctx: MacroContext, nbytes: float) -> float:
    """Pairwise-exchange alltoall: P-1 steps of per-pair ``nbytes``."""
    p = ctx.nprocs
    if p == 1:
        return 0.0
    steps_intra = min(ctx.ppn, p) - 1
    steps_inter = (p - 1) - steps_intra
    t = 0.0
    if steps_intra:
        t += steps_intra * ctx.shm_step(nbytes, ctx.ppn)
    if steps_inter:
        total = ctx.n_nodes * ctx.ppn * nbytes
        t += steps_inter * ctx.inter_step(nbytes, ctx.ppn, total)
    return t


def alltoallv_time(ctx: MacroContext, avg_nbytes: float) -> float:
    """Pairwise alltoallv with mean per-pair size ``avg_nbytes``."""
    return alltoall_time(ctx, avg_nbytes)


def allgather_ring_time(ctx: MacroContext, block_nbytes: float) -> float:
    """Ring allgather: P-1 steps; one inter-node flow per node boundary."""
    p = ctx.nprocs
    if p == 1:
        return 0.0
    if ctx.n_nodes == 1:
        return (p - 1) * ctx.shm_step(block_nbytes, ctx.ppn)
    # Each step: every node has exactly one boundary (inter) send and
    # ppn-1 intra sends; the step completes at the slower of the two.
    total_inter = ctx.n_nodes * block_nbytes
    inter = ctx.inter_step(block_nbytes, 1.0, total_inter)
    intra = ctx.shm_step(block_nbytes, max(ctx.ppn - 1, 0)) if ctx.ppn > 1 else 0.0
    return (p - 1) * max(inter, intra)


def allreduce_recursive_doubling_time(ctx: MacroContext, nbytes: float) -> float:
    p = ctx.nprocs
    if p == 1:
        return 0.0
    p2 = 1 << (p.bit_length() - 1)
    t = 0.0
    if p2 != p:  # fold + unfold
        t += ctx.exchange_step(nbytes, 1) + ctx.reduce_time(nbytes)
        t += ctx.exchange_step(nbytes, 1)
    dist = 1
    while dist < p2:
        t += ctx.exchange_step(nbytes, dist) + ctx.reduce_time(nbytes)
        dist <<= 1
    return t


def allreduce_rabenseifner_time(ctx: MacroContext, nbytes: float) -> float:
    p = ctx.nprocs
    if p == 1:
        return 0.0
    p2 = 1 << (p.bit_length() - 1)
    t = 0.0
    if p2 != p:
        t += ctx.exchange_step(nbytes, 1) + ctx.reduce_time(nbytes)
        t += ctx.exchange_step(nbytes, 1)
    # reduce-scatter by recursive halving: distances p2/2, p2/4, ...;
    # sizes nbytes/2, nbytes/4, ...
    dist = p2 // 2
    size = nbytes / 2.0
    while dist >= 1:
        t += ctx.exchange_step(size, dist) + ctx.reduce_time(size)
        dist //= 2
        size /= 2.0
    # allgather by recursive doubling: the mirror image, no reduction.
    dist = 1
    size = nbytes / p2
    while dist < p2:
        t += ctx.exchange_step(size * dist, dist)
        dist <<= 1
    return t


def reduce_binomial_time(ctx: MacroContext, nbytes: float) -> float:
    """Critical path of a binomial reduce: ceil(log2 P) levels."""
    p = ctx.nprocs
    t = 0.0
    dist = 1
    while dist < p:
        t += ctx.exchange_step(nbytes, dist) + ctx.reduce_time(nbytes)
        dist <<= 1
    return t


def reduce_rabenseifner_time(ctx: MacroContext, nbytes: float) -> float:
    p = ctx.nprocs
    if p == 1:
        return 0.0
    p2 = 1 << (p.bit_length() - 1)
    t = 0.0
    if p2 != p:
        t += ctx.exchange_step(nbytes, 1) + ctx.reduce_time(nbytes)
    dist = p2 // 2
    size = nbytes / 2.0
    while dist >= 1:
        t += ctx.exchange_step(size, dist) + ctx.reduce_time(size)
        dist //= 2
        size /= 2.0
    # binomial gather of segments back to the root: sizes double.
    dist = 1
    size = nbytes / p2
    while dist < p2:
        t += ctx.exchange_step(size * dist, dist)
        dist <<= 1
    return t


def bcast_binomial_time(ctx: MacroContext, nbytes: float) -> float:
    p = ctx.nprocs
    t = 0.0
    dist = 1
    while dist < p:
        t += ctx.exchange_step(nbytes, dist)
        dist <<= 1
    return t


def bcast_scatter_ring_time(ctx: MacroContext, nbytes: float) -> float:
    p = ctx.nprocs
    if p == 1:
        return 0.0
    block = nbytes / p
    # binomial scatter critical path: message halves each level.
    t = 0.0
    dist = 1
    size = nbytes / 2.0
    while dist < p:
        t += ctx.exchange_step(size, dist)
        dist <<= 1
        size = max(size / 2.0, block)
    t += allgather_ring_time(ctx, block)
    return t


def barrier_dissemination_time(ctx: MacroContext) -> float:
    p = ctx.nprocs
    t = 0.0
    dist = 1
    while dist < p:
        t += ctx.exchange_step(1.0, dist)
        dist <<= 1
    return t


def allgather_recursive_doubling_time(ctx: MacroContext,
                                      block_nbytes: float) -> float:
    """Recursive-doubling allgather (power-of-two ranks): log2(P) steps,
    the exchanged block doubling each step."""
    p = ctx.nprocs
    if p == 1:
        return 0.0
    t = 0.0
    dist = 1
    while dist < p:
        t += ctx.exchange_step(block_nbytes * dist, dist)
        dist <<= 1
    return t


def allgather_bruck_time(ctx: MacroContext, block_nbytes: float) -> float:
    """Bruck allgather (any rank count): ceil(log2 P) steps; step k ships
    ``min(2^k, P - 2^k)`` blocks at distance ``2^k``."""
    p = ctx.nprocs
    if p == 1:
        return 0.0
    t = 0.0
    dist = 1
    while dist < p:
        blocks = min(dist, p - dist)
        t += ctx.exchange_step(block_nbytes * blocks, dist)
        dist <<= 1
    return t


def reduce_scatter_halving_time(ctx: MacroContext, nbytes: float) -> float:
    """Recursive-halving reduce_scatter (power-of-two ranks).

    The first phase of Rabenseifner's allreduce, priced on its own:
    distances P/2, P/4, ..., 1 with exchanged sizes nbytes/2, nbytes/4,
    ..., each followed by folding the received half.
    """
    p = ctx.nprocs
    if p == 1:
        return 0.0
    p2 = 1 << (p.bit_length() - 1)
    t = 0.0
    if p2 != p:  # non-pow2 pre-fold as in the message-level algorithm
        t += ctx.exchange_step(nbytes, 1) + ctx.reduce_time(nbytes)
    dist = p2 // 2
    size = nbytes / 2.0
    while dist >= 1:
        t += ctx.exchange_step(size, dist) + ctx.reduce_time(size)
        dist //= 2
        size /= 2.0
    return t


def scatter_binomial_time(ctx: MacroContext, nbytes: float) -> float:
    """Binomial scatter(v) critical path: the shipped slice halves each
    level until it reaches one block of ``nbytes / P``."""
    p = ctx.nprocs
    if p == 1:
        return 0.0
    block = nbytes / p
    t = 0.0
    dist = 1
    size = nbytes / 2.0
    while dist < p:
        t += ctx.exchange_step(size, dist)
        dist <<= 1
        size = max(size / 2.0, block)
    return t
