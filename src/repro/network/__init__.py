"""Interconnect substrate: topologies, contention resources, fabric model."""

from .crossbar import CrossbarSwitch, MultistageCrossbar
from .fattree import FatTree
from .hypercube import Hypercube
from .netmodel import Fabric, FabricParams, MessageTiming
from .resources import BandwidthResource, reserve_joint
from .topology import Topology
from .torus import Torus3D, balanced_dims

__all__ = [
    "Topology",
    "Torus3D",
    "balanced_dims",
    "FatTree",
    "Hypercube",
    "CrossbarSwitch",
    "MultistageCrossbar",
    "Fabric",
    "FabricParams",
    "MessageTiming",
    "BandwidthResource",
    "reserve_joint",
]
