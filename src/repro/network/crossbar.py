"""Crossbar topologies.

* :class:`CrossbarSwitch` — a single-stage full crossbar (small Myrinet
  switches, intra-chassis links): one hop between any pair, full
  bisection.
* :class:`MultistageCrossbar` — the NEC IXS: a central 128x128 multistage
  crossbar giving every node full link bandwidth to every other node with
  a fixed small hop count.
"""

from __future__ import annotations

from ..core.errors import ConfigError
from .topology import Topology


class CrossbarSwitch(Topology):
    """Single-stage full crossbar: 1 hop, non-blocking."""

    def __init__(self, n_nodes: int, ports: int | None = None) -> None:
        super().__init__(n_nodes)
        if ports is not None and n_nodes > ports:
            raise ConfigError(
                f"crossbar has {ports} ports, cannot attach {n_nodes} nodes"
            )
        self.ports = ports if ports is not None else n_nodes

    @property
    def n_levels(self) -> int:
        return 1

    def path_level(self, a: int, b: int) -> int:
        self.check_pair(a, b)
        return 0 if a == b else 1

    def hops(self, a: int, b: int) -> int:
        self.check_pair(a, b)
        return 0 if a == b else 1

    def average_hops_analytic(self) -> float:
        return 1.0 if self.n_nodes > 1 else 0.0

    def level_capacity_links(self, level: int) -> float:
        if level != 1:
            raise ConfigError(f"crossbar has a single core level, got {level}")
        return 2.0 * self.n_nodes  # non-blocking: full injection both ways


class MultistageCrossbar(Topology):
    """Multistage non-blocking crossbar (NEC IXS).

    Constant ``stage_hops`` between any two nodes; full bisection up to
    ``ports`` nodes.
    """

    def __init__(self, n_nodes: int, ports: int = 128, stage_hops: int = 2) -> None:
        super().__init__(n_nodes)
        if n_nodes > ports:
            raise ConfigError(
                f"multistage crossbar has {ports} ports, cannot attach {n_nodes}"
            )
        if stage_hops < 1:
            raise ConfigError("stage_hops must be >= 1")
        self.ports = int(ports)
        self.stage_hops = int(stage_hops)

    @property
    def n_levels(self) -> int:
        return 1

    def path_level(self, a: int, b: int) -> int:
        self.check_pair(a, b)
        return 0 if a == b else 1

    def hops(self, a: int, b: int) -> int:
        self.check_pair(a, b)
        return 0 if a == b else self.stage_hops

    def average_hops_analytic(self) -> float:
        return float(self.stage_hops) if self.n_nodes > 1 else 0.0

    def level_capacity_links(self, level: int) -> float:
        if level != 1:
            raise ConfigError(f"crossbar has a single core level, got {level}")
        return 2.0 * self.n_nodes
