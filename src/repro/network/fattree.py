"""Hierarchical fat-tree topology.

Models both genuine fat trees (SGI NUMALINK4, where bisection bandwidth
scales linearly with node count inside a box) and flat switched clusters
with blocking factors (Dell/InfiniBand 3:1 core blocking, Myrinet Clos).

The tree is described by ``group_sizes``: ``group_sizes[0]`` nodes share a
leaf switch, ``group_sizes[1]`` leaf switches share a level-2 switch, and
so on.  ``level_blocking[l]`` is the oversubscription factor of level
``l+1``'s uplinks (1.0 = full bisection at that tier, 3.0 = 3:1 blocking).
A message between nodes whose lowest common switch sits at level ``l``
crosses ``2*l`` hops (up then down) and consumes the level-``l`` aggregate
core resource.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from ..core.errors import ConfigError
from .topology import Topology


class FatTree(Topology):
    """A fat tree described by per-tier group sizes and blocking factors."""

    def __init__(
        self,
        n_nodes: int,
        group_sizes: Sequence[int],
        level_blocking: Sequence[float] | None = None,
    ) -> None:
        super().__init__(n_nodes)
        if not group_sizes:
            raise ConfigError("fat tree needs at least one tier")
        if any(g < 1 for g in group_sizes):
            raise ConfigError(f"group sizes must be >= 1, got {group_sizes!r}")
        self.group_sizes = tuple(int(g) for g in group_sizes)
        if level_blocking is None:
            level_blocking = [1.0] * len(self.group_sizes)
        if len(level_blocking) != len(self.group_sizes):
            raise ConfigError("level_blocking must match group_sizes length")
        if any(b < 1.0 for b in level_blocking):
            raise ConfigError("blocking factors must be >= 1")
        self.level_blocking = tuple(float(b) for b in level_blocking)
        # Cumulative subtree widths: nodes under one switch at each level.
        widths = []
        w = 1
        for g in self.group_sizes:
            w *= g
            widths.append(w)
        self._widths = tuple(widths)
        cap = math.prod(self.group_sizes)
        if n_nodes > cap:
            raise ConfigError(
                f"fat tree holds at most {cap} nodes, asked for {n_nodes}"
            )

    @property
    def n_levels(self) -> int:
        return len(self.group_sizes)

    def path_level(self, a: int, b: int) -> int:
        self.check_pair(a, b)
        if a == b:
            return 0
        for level, w in enumerate(self._widths, start=1):
            if a // w == b // w:
                return level
        return self.n_levels  # pragma: no cover - widths cover all nodes

    def hops(self, a: int, b: int) -> int:
        lvl = self.path_level(a, b)
        if lvl == 0:
            return 0
        # Up lvl switches and down lvl switches, minus the shared apex.
        return 2 * lvl - 1

    def average_hops_analytic(self) -> float:
        """Exact mean hops over distinct pairs in O(levels * subtrees).

        Counts, per level, the ordered pairs confined to one level-``l``
        subtree under the block fill used by rank placement; the pairs
        whose lowest common switch sits exactly at level ``l`` are the
        difference between consecutive levels.
        """
        n = self.n_nodes
        if n < 2:
            return 0.0

        def pairs_within(width: int) -> int:
            full, rem = divmod(n, width)
            pairs = full * width * (width - 1)
            pairs += rem * (rem - 1)
            return pairs

        total = 0.0
        prev = 0  # pairs within a level-0 "subtree" (a single node)
        for level, w in enumerate(self._widths, start=1):
            cur = pairs_within(w)
            total += (cur - prev) * (2 * level - 1)
            prev = cur
        return total / (n * (n - 1))

    def level_capacity_links(self, level: int) -> float:
        """Aggregate capacity of tier ``level`` in link-bandwidth units.

        In a non-blocking tree every tier can carry all node injection
        bandwidth (capacity ``2 * n``: n flows each way).  Blocking factors
        divide the tiers they apply to, compounding upward.
        """
        if not (1 <= level <= self.n_levels):
            raise ConfigError(f"level {level} out of range")
        blocking = 1.0
        for lvl in range(level):
            blocking *= self.level_blocking[lvl]
        return 2.0 * self.n_nodes / blocking
