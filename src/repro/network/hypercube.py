"""Hypercube / modified-torus topology (Cray X1).

The Cray X1 interconnect is a modified 4-D hypercube built from routing
chips.  We model it as a binary hypercube over the node count rounded up
to a power of two: hop count is the Hamming distance between node ids,
and the network core is a single aggregate resource sized from the
hypercube's bisection (``n/2`` links) boosted by the path diversity of
dimension-ordered routing.
"""

from __future__ import annotations

from ..core.errors import ConfigError
from .topology import Topology


def _ceil_log2(n: int) -> int:
    return max(1, (n - 1).bit_length())


class Hypercube(Topology):
    """Binary hypercube with ``dim = ceil(log2(n_nodes))`` dimensions."""

    def __init__(self, n_nodes: int, dim: int | None = None) -> None:
        super().__init__(n_nodes)
        min_dim = _ceil_log2(n_nodes)
        if dim is None:
            dim = min_dim
        if dim < min_dim:
            raise ConfigError(
                f"hypercube dim {dim} too small for {n_nodes} nodes"
            )
        self.dim = int(dim)

    @property
    def n_levels(self) -> int:
        return 1

    def path_level(self, a: int, b: int) -> int:
        self.check_pair(a, b)
        return 0 if a == b else 1

    def hops(self, a: int, b: int) -> int:
        self.check_pair(a, b)
        if a == b:
            return 0
        return int(a ^ b).bit_count()

    def average_hops_analytic(self) -> float:
        n = self.n_nodes
        if n < 2:
            return 0.0
        if n & (n - 1) == 0:
            # Mean Hamming distance over distinct pairs of a full cube.
            dim = n.bit_length() - 1
            return dim * n / (2 * (n - 1))
        return self.average_hops()

    def level_capacity_links(self, level: int) -> float:
        if level != 1:
            raise ConfigError(f"hypercube has a single core level, got {level}")
        # 2^dim/2 bisection links, both directions.
        return 2.0 * (2 ** self.dim) / 2.0
