"""The fabric model: message timing over a topology with contention.

This is the heart of the simulated interconnect.  It combines

* a LogGP-style parameter set (:class:`FabricParams`) — software overheads,
  base and per-hop latency, link/NIC bandwidths, eager threshold;
* a :class:`~repro.network.topology.Topology` giving hop counts and the
  hierarchy level each message crosses;
* FIFO :class:`~repro.network.resources.BandwidthResource` servers for
  per-node NIC injection/ejection, per-level network core capacity, and
  per-node shared-memory (intra-node) transfers.

The MPI layer asks for :meth:`Fabric.message_timing` and gets back when the
sender's buffer is free and when the payload lands at the receiver; all
queueing from concurrent traffic is reflected in those times.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigError
from ..obs.metrics import get_metrics
from .resources import BandwidthResource, ResourceMetrics, reserve_joint
from .topology import Topology


@dataclass(frozen=True)
class FabricParams:
    """Interconnect + intra-node communication parameters (SI units)."""

    link_bw: float            # per-link, per-direction bandwidth (B/s)
    nic_bw: float             # per-node injection/ejection bandwidth (B/s)
    base_latency: float       # zero-byte end-to-end latency excl. hops (s)
    per_hop_latency: float    # additional latency per switch hop (s)
    send_overhead: float      # sender CPU busy time per message (s)
    recv_overhead: float      # receiver CPU busy time per message (s)
    eager_threshold: int      # messages <= this use the eager protocol (B)
    bw_efficiency: float      # fraction of link bw achievable for payloads
    shm_bw: float             # intra-node aggregate bandwidth per node (B/s)
    shm_flow_bw: float        # intra-node per-message-stream bandwidth (B/s)
    shm_latency: float        # intra-node zero-byte latency (s)
    memcpy_bw: float          # local buffer-copy bandwidth (B/s)
    #: NIC duplex capability: combined send+recv capacity as a multiple of
    #: the single-direction bandwidth.  2.0 = ideal full duplex (InfiniBand),
    #: 1.0 = one shared bus (Myrinet Lanai on PCI-X), values between model
    #: partial bidirectional degradation.
    duplex_factor: float = 2.0

    def __post_init__(self) -> None:
        for name in ("link_bw", "nic_bw", "shm_bw", "shm_flow_bw", "memcpy_bw"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        for name in (
            "base_latency",
            "per_hop_latency",
            "send_overhead",
            "recv_overhead",
            "shm_latency",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if not (0.0 < self.bw_efficiency <= 1.0):
            raise ConfigError("bw_efficiency must be in (0, 1]")
        if not (1.0 <= self.duplex_factor <= 2.0):
            raise ConfigError("duplex_factor must be in [1, 2]")
        if self.eager_threshold < 0:
            raise ConfigError("eager_threshold must be >= 0")

    @property
    def effective_point_bw(self) -> float:
        """Sustainable single-stream inter-node bandwidth (B/s).

        A lone stream rides its link at full burst rate even when the
        node's *sustained* multi-stream NIC throughput (``nic_bw``) is
        lower — the PCI-X-era cards the paper measures show exactly this
        burst-vs-sustained split.
        """
        return self.link_bw * self.bw_efficiency

    @property
    def effective_nic_bw(self) -> float:
        """Sustained per-node injection/ejection bandwidth (B/s)."""
        return self.nic_bw * self.bw_efficiency

    def latency(self, hops: int) -> float:
        """Zero-byte wire latency over ``hops`` switch hops."""
        return self.base_latency + hops * self.per_hop_latency


@dataclass(frozen=True)
class MessageTiming:
    """When a message occupies the sender and reaches the receiver."""

    inject_start: float  # transfer began leaving the source
    inject_end: float    # source buffer free / NIC released
    arrival: float       # last byte at the destination


class Fabric:
    """Topology + parameters + live contention state for one cluster."""

    def __init__(self, topology: Topology, params: FabricParams) -> None:
        self.topology = topology
        self.params = params
        n = topology.n_nodes
        nic_bw = params.effective_nic_bw
        registry = get_metrics()
        mk = ResourceMetrics.for_kind  # None per kind when metrics are off
        egress_m = mk(registry, "egress")
        ingress_m = mk(registry, "ingress")
        self._egress = [
            BandwidthResource(f"egress[{i}]", nic_bw, egress_m)
            for i in range(n)
        ]
        self._ingress = [
            BandwidthResource(f"ingress[{i}]", nic_bw, ingress_m)
            for i in range(n)
        ]
        # The NIC bus carries both directions; with duplex_factor < 2 it
        # becomes the bottleneck under simultaneous send+recv (e.g. the
        # Myrinet Lanai cards behind one PCI-X bus).
        if params.duplex_factor < 2.0:
            bus_m = mk(registry, "nicbus")
            self._bus = [
                BandwidthResource(f"nicbus[{i}]",
                                  nic_bw * params.duplex_factor, bus_m)
                for i in range(n)
            ]
        else:
            self._bus = None
        core_m = mk(registry, "core")
        self._core = {
            level: BandwidthResource(
                f"core[{level}]",
                topology.level_capacity_links(level)
                * params.link_bw
                * params.bw_efficiency,
                core_m,
            )
            for level in range(1, topology.n_levels + 1)
        }
        shm_m = mk(registry, "shm")
        self._shm = [
            BandwidthResource(f"shm[{i}]", params.shm_bw, shm_m)
            for i in range(n)
        ]
        # Lazily filled per-(src, dst) route cache: zero-byte latency and
        # the joint resource list for inter-node transfers.  Topology
        # geometry is immutable for the life of a fabric, and fault
        # injectors mutate the *shared resource objects* in place (so
        # cached lists stay truthful) — except latency faults, which call
        # :meth:`invalidate_route_cache`.
        self._lat_cache: dict[tuple[int, int], float] = {}
        self._route_cache: dict[tuple[int, int], list[BandwidthResource]] = {}

    # -- introspection used by analysis/tests -------------------------------

    @property
    def n_nodes(self) -> int:
        return self.topology.n_nodes

    def core_resource(self, level: int) -> BandwidthResource:
        return self._core[level]

    def egress_resource(self, node: int) -> BandwidthResource:
        return self._egress[node]

    def ingress_resource(self, node: int) -> BandwidthResource:
        return self._ingress[node]

    def shm_resource(self, node: int) -> BandwidthResource:
        return self._shm[node]

    def busy_by_kind(self) -> dict:
        """Cumulative busy seconds and bytes served per resource kind.

        Every :class:`BandwidthResource` tracks its own ``busy_time`` /
        ``bytes_served`` unconditionally, so this end-of-run tally is
        free; the energy accountant prices it in watts.  Kinds appear
        in a fixed order (egress, ingress, nicbus, core, shm) so the
        downstream joule sums are byte-identical run to run.
        """
        def tally(resources) -> dict:
            busy = 0.0
            nbytes = 0.0
            for r in resources:
                busy += r.busy_time
                nbytes += r.bytes_served
            return {"busy_s": busy, "bytes": nbytes}

        out = {"egress": tally(self._egress),
               "ingress": tally(self._ingress)}
        if self._bus is not None:
            out["nicbus"] = tally(self._bus)
        out["core"] = tally(self._core.values())
        out["shm"] = tally(self._shm)
        return out

    def reset(self) -> None:
        """Clear all contention state (used between benchmark repetitions)."""
        for r in self._egress:
            r.reset()
        for r in self._ingress:
            r.reset()
        if self._bus is not None:
            for r in self._bus:
                r.reset()
        for r in self._core.values():
            r.reset()
        for r in self._shm:
            r.reset()

    # -- timing ----------------------------------------------------------------

    def latency(self, src_node: int, dst_node: int) -> float:
        """Zero-byte latency between two nodes (intra-node uses shm).

        Hot path: memoised per node pair — hop counts are pure topology
        geometry, and the paper's machines have at most a few hundred
        nodes, so the cache stays small while removing a topology walk
        from every message and every RTS/CTS control packet.
        """
        cached = self._lat_cache.get((src_node, dst_node))
        if cached is not None:
            return cached
        if src_node == dst_node:
            lat = self.params.shm_latency
        else:
            lat = self.params.latency(self.topology.hops(src_node, dst_node))
        self._lat_cache[(src_node, dst_node)] = lat
        return lat

    def invalidate_route_cache(self) -> None:
        """Drop memoised latencies/routes after a parameter mutation."""
        self._lat_cache.clear()
        self._route_cache.clear()

    def _route(self, src_node: int, dst_node: int) -> list[BandwidthResource]:
        """The joint resource list one inter-node transfer reserves."""
        resources = [
            self._egress[src_node],
            self._core[self.topology.path_level(src_node, dst_node)],
            self._ingress[dst_node],
        ]
        if self._bus is not None:
            resources.append(self._bus[src_node])
            resources.append(self._bus[dst_node])
        return resources

    def message_timing(
        self, src_node: int, dst_node: int, nbytes: float, t_ready: float
    ) -> MessageTiming:
        """Timing for one payload transfer of ``nbytes`` starting ``t_ready``.

        Intra-node messages go through the node's shared-memory resource;
        inter-node messages jointly reserve source egress, the core level
        the path crosses, and destination ingress.
        """
        params = self.params
        if src_node == dst_node:
            # The node-wide shm resource models memory-bus sharing between
            # concurrent intra-node streams; a single stream is additionally
            # capped at shm_flow_bw (per-CPU copy rate).
            start, end = self._shm[src_node].reserve(nbytes, t_ready)
            end = max(end, start + nbytes / params.shm_flow_bw)
            return MessageTiming(start, end, end + params.shm_latency)
        key = (src_node, dst_node)
        resources = self._route_cache.get(key)
        if resources is None:
            resources = self._route_cache[key] = self._route(src_node, dst_node)
        start, end = reserve_joint(resources, nbytes, t_ready)
        # A single stream cannot exceed its link's burst bandwidth.
        end = max(end, start + nbytes / (params.link_bw * params.bw_efficiency))
        return MessageTiming(start, end, end + self.latency(src_node, dst_node))

    def control_timing(self, src_node: int, dst_node: int,
                       t_ready: float) -> MessageTiming:
        """Latency-only path for tiny protocol messages (RTS/CTS).

        Control packets ride a priority lane and never queue behind bulk
        payloads; modelling them through the bandwidth FIFOs would let a
        deep bulk queue inflate every rendezvous handshake (a cascade the
        real NICs do not exhibit).
        """
        arrival = t_ready + self.latency(src_node, dst_node)
        return MessageTiming(t_ready, t_ready, arrival)

    def memcpy_time(self, nbytes: float) -> float:
        """Local buffer copy cost (eager-protocol staging, unexpected recv)."""
        return nbytes / self.params.memcpy_bw

    def is_eager(self, nbytes: float) -> bool:
        return nbytes <= self.params.eager_threshold
