"""Filesystem spool: the durable front end of the sweep service.

``python -m repro.service serve`` and ``submit`` talk through a spool
directory (default ``.repro_service/``, overridable via ``--root`` or
``REPRO_SERVICE_DIR``) instead of a network socket, so the service works
anywhere a shared filesystem does — a laptop, a login node, a CI runner
— with zero extra dependencies.  The layout::

    .repro_service/
      jobs/<request-id>.json      one submitted request (atomic write)
      status/<request-id>.json    server-maintained status document
      artifacts/<job-id>/         CSV/TXT/JSON exports per job
      service_ledger.jsonl        one run-ledger row per finished job
      service_events.jsonl        service event log (telemetry only)
      metrics.prom                Prometheus exposition (telemetry only)
      traces/<request-id>.json    Chrome trace per job (telemetry only)

A request file is the whole client protocol: ``submit`` drops one,
``serve`` picks it up (any request without a status file is new), runs
it through a :class:`~repro.service.queue.JobQueue`, and keeps the
status file fresh until the job is terminal.  ``submit --wait`` just
polls the status file.  The same request/status JSON documents are the
seam where an HTTP front end would plug in — the queue underneath would
not change.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from ..config import ReproConfig
from .queue import TERMINAL_STATES, JobQueue

#: Environment variable naming the spool directory.
SERVICE_DIR_ENV = "REPRO_SERVICE_DIR"

#: Default spool directory (relative to the current working directory).
DEFAULT_SERVICE_DIR = ".repro_service"

#: Bump when the request/status document layout changes incompatibly.
SPOOL_SCHEMA_VERSION = 1


def service_root(root: str | os.PathLike | None = None) -> Path:
    """Resolve the spool root: explicit > ``REPRO_SERVICE_DIR`` > default."""
    if root is not None:
        return Path(root)
    env = os.environ.get(SERVICE_DIR_ENV, "").strip()
    return Path(env) if env else Path(DEFAULT_SERVICE_DIR)


def _write_json_atomic(path: Path, doc: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class Spool:
    """The on-disk request/status store shared by clients and the server."""

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = service_root(root)
        self.jobs_dir = self.root / "jobs"
        self.status_dir = self.root / "status"
        self.artifacts_dir = self.root / "artifacts"
        self.ledger_path = self.root / "service_ledger.jsonl"
        self.events_path = self.root / "service_events.jsonl"
        self.metrics_path = self.root / "metrics.prom"
        self.traces_dir = self.root / "traces"

    def ensure(self) -> "Spool":
        for d in (self.jobs_dir, self.status_dir, self.artifacts_dir):
            d.mkdir(parents=True, exist_ok=True)
        return self

    # -- client side --------------------------------------------------------

    def submit(self, items: list[str], *, max_cpus: int | None = None,
               note: str | None = None) -> str:
        """Drop one request file; returns the request id."""
        self.ensure()
        request_id = (time.strftime("%Y%m%d-%H%M%S")
                      + "-" + os.urandom(3).hex())
        _write_json_atomic(self.jobs_dir / f"{request_id}.json", {
            "schema_version": SPOOL_SCHEMA_VERSION,
            "id": request_id,
            "items": list(items),
            "max_cpus": max_cpus,
            "note": note,
            "submitted_at": round(time.time(), 3),
        })
        return request_id

    def read_status(self, request_id: str) -> dict | None:
        """The server-maintained status document, or None before pickup."""
        path = self.status_dir / f"{request_id}.json"
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def wait(self, request_id: str, *, timeout: float | None = None,
             poll_s: float = 0.2) -> dict:
        """Poll until the request reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            doc = self.read_status(request_id)
            if doc is not None and doc.get("state") in TERMINAL_STATES:
                return doc
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"request {request_id} not finished after {timeout}s "
                    f"(last: {doc.get('state') if doc else 'unclaimed'})")
            time.sleep(poll_s)

    # -- server side --------------------------------------------------------

    def requests(self) -> list[dict]:
        """Every parseable request document, oldest first."""
        if not self.jobs_dir.is_dir():
            return []
        docs = []
        for path in sorted(self.jobs_dir.glob("*.json")):
            try:
                docs.append(json.loads(path.read_text()))
            except (OSError, json.JSONDecodeError):
                continue
        return docs

    def statuses(self) -> list[dict]:
        """Every status document, oldest first."""
        if not self.status_dir.is_dir():
            return []
        docs = []
        for path in sorted(self.status_dir.glob("*.json")):
            try:
                docs.append(json.loads(path.read_text()))
            except (OSError, json.JSONDecodeError):
                continue
        return docs

    def write_status(self, request_id: str, doc: dict) -> None:
        _write_json_atomic(self.status_dir / f"{request_id}.json", doc)

    # -- maintenance --------------------------------------------------------

    def gc(self, *, older_than_s: float = 0.0) -> dict:
        """Remove terminal requests (+status/artifacts) older than the age.

        Only *terminal* requests are touched — queued or running work is
        never collected.  Telemetry droppings follow the same policy:
        each collected request takes its ``traces/<id>.json`` with it,
        and once no statuses remain at all, a sufficiently old
        ``service_events.jsonl`` / ``metrics.prom`` is aged out too
        (they aggregate across requests, so they outlive any single
        one).  Returns ``{removed: [...], kept: int, files: [...]}``.
        """
        now = time.time()
        removed, kept, files = [], 0, []
        for doc in self.statuses():
            rid = doc.get("id")
            state = doc.get("state")
            finished = doc.get("finished_at") or 0.0
            if (rid is None or state not in TERMINAL_STATES
                    or now - finished < older_than_s):
                kept += 1
                continue
            for path in (self.jobs_dir / f"{rid}.json",
                         self.status_dir / f"{rid}.json",
                         self.traces_dir / f"{rid}.json"):
                try:
                    path.unlink()
                except OSError:
                    pass
            job_id = doc.get("job")
            if job_id:
                import shutil
                shutil.rmtree(self.artifacts_dir / job_id,
                              ignore_errors=True)
            removed.append(rid)
        if kept == 0:
            for path in (self.events_path, self.metrics_path):
                try:
                    if now - path.stat().st_mtime >= older_than_s:
                        path.unlink()
                        files.append(path.name)
                except OSError:
                    pass
            try:
                self.traces_dir.rmdir()  # only if empty
            except OSError:
                pass
        return {"removed": removed, "kept": kept, "files": files}


class SpoolServer:
    """Drains a :class:`Spool` through a :class:`JobQueue`."""

    def __init__(self, spool: Spool, config: ReproConfig | None = None, *,
                 workers: int = 2, poll_s: float = 0.2) -> None:
        self.spool = spool.ensure()
        self.poll_s = poll_s
        self.queue = JobQueue(config, workers=workers,
                              artifacts_dir=spool.artifacts_dir,
                              ledger_path=spool.ledger_path,
                              events_path=spool.events_path)
        #: request id -> queue job id, for requests this server accepted.
        self._accepted: dict[str, str] = {}
        self._terminal: set[str] = set()

    def _status_doc(self, request: dict, job_doc: dict | None,
                    error: str | None = None) -> dict:
        doc = {
            "schema_version": SPOOL_SCHEMA_VERSION,
            "id": request["id"],
            "items": request.get("items", []),
            "max_cpus": request.get("max_cpus"),
            "submitted_at": request.get("submitted_at"),
            "config": self.queue.config.to_dict(),
        }
        if error is not None:
            doc.update(state="failed", error=error, job=None,
                       finished_at=round(time.time(), 3))
        else:
            doc.update(state=job_doc["state"], error=job_doc["error"],
                       job=job_doc["id"], wall_s=job_doc["wall_s"],
                       started_at=job_doc["started_at"],
                       finished_at=job_doc["finished_at"],
                       stats=job_doc["stats"],
                       item_results=job_doc["item_results"],
                       artifacts=job_doc["artifacts"])
            if "energy" in job_doc:
                # Only energy-accounted jobs carry the field — no
                # null-padding of energy-off statuses.
                doc["energy"] = job_doc["energy"]
            for key in ("trace_id", "trace"):
                # Likewise only traced jobs carry telemetry fields.
                if key in job_doc:
                    doc[key] = job_doc[key]
        return doc

    def _flush_telemetry(self, rid: str, job_id: str) -> None:
        """Write the per-request Chrome trace once the job is terminal."""
        spans = self.queue.job_trace(job_id)
        if not spans:
            return
        from ..obs.exporters import write_trace_chrome_trace
        self.spool.traces_dir.mkdir(parents=True, exist_ok=True)
        write_trace_chrome_trace(spans, self.spool.traces_dir
                                 / f"{rid}.json")

    def _write_metrics(self) -> None:
        """Refresh ``metrics.prom`` (the scrape file) from the registry."""
        snap = self.queue.metrics_snapshot()
        if snap is None:
            return
        from .health import render_prometheus
        tmp = self.spool.metrics_path.with_suffix(".prom.tmp")
        tmp.write_text(render_prometheus(snap))
        os.replace(tmp, self.spool.metrics_path)

    def step(self) -> int:
        """One server tick: ingest new requests, refresh live statuses.

        Returns the number of accepted-but-not-yet-terminal requests.
        """
        for request in self.spool.requests():
            rid = request.get("id")
            if rid is None or rid in self._accepted or rid in self._terminal:
                continue
            existing = self.spool.read_status(rid)
            if existing is not None and existing.get("state") in \
                    TERMINAL_STATES:
                # Finished in a previous server's lifetime.
                self._terminal.add(rid)
                continue
            # No status, or a non-terminal one left by a dead server:
            # (re-)accept the request.
            try:
                job_id = self.queue.submit(request.get("items", ()),
                                           max_cpus=request.get("max_cpus"))
            except (ValueError, KeyError) as exc:
                self.spool.write_status(rid, self._status_doc(
                    request, None, error=f"rejected: {exc}"))
                self._terminal.add(rid)
                continue
            self._accepted[rid] = job_id
            self.spool.write_status(
                rid, self._status_doc(request, self.queue.status(job_id)))

        live = 0
        for rid, job_id in list(self._accepted.items()):
            request = {"id": rid}
            job_doc = self.queue.status(job_id)
            # Keep the request fields from the original doc if possible.
            existing = self.spool.read_status(rid) or {}
            request = {"id": rid,
                       "items": existing.get("items", job_doc["items"]),
                       "max_cpus": existing.get("max_cpus",
                                                job_doc["max_cpus"]),
                       "submitted_at": existing.get("submitted_at")}
            self.spool.write_status(rid, self._status_doc(request, job_doc))
            if job_doc["state"] in TERMINAL_STATES:
                self._flush_telemetry(rid, job_id)
                self._terminal.add(rid)
                del self._accepted[rid]
            else:
                live += 1
        self._write_metrics()
        return live

    def run(self, *, once: bool = False,
            max_wall_s: float | None = None) -> int:
        """Serve until interrupted (or, with ``once``, until drained).

        Returns the number of requests brought to a terminal state.
        """
        t0 = time.monotonic()
        try:
            while True:
                live = self.step()
                pending = [r for r in self.spool.requests()
                           if r.get("id") not in self._terminal
                           and r.get("id") not in self._accepted]
                if once and not live and not pending:
                    break
                if (max_wall_s is not None
                        and time.monotonic() - t0 > max_wall_s):
                    break
                time.sleep(self.poll_s)
        finally:
            self.queue.close(wait=True)
            self.step()  # final status refresh after the queue drained
        return len(self._terminal)
