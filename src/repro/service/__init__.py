"""Simulation-as-a-service: async job queue over the sweep executor.

The paper's value is its sweep; this package serves that sweep to many
concurrent clients for the price of one simulation.  Three pieces:

* :class:`~repro.service.queue.JobQueue` — bounded-worker async job
  queue (``submit -> job_id``, ``status``/``poll``/``stream``/
  ``result``), one executor per job, all sharing one multi-tenant
  result store;
* :class:`~repro.service.coalesce.PointCoalescer` — single-flight
  request coalescing: concurrent jobs that miss the cache on the same
  simulation-point fingerprint share one computation;
* :class:`~repro.service.spool.Spool` / ``SpoolServer`` — the durable
  filesystem front end behind ``python -m repro.service``
  (``serve`` / ``submit`` / ``status`` / ``gc``).
"""

from .coalesce import PointCoalescer
from .queue import JOB_STATES, TERMINAL_STATES, Job, JobQueue
from .spool import (
    DEFAULT_SERVICE_DIR,
    SERVICE_DIR_ENV,
    Spool,
    SpoolServer,
    service_root,
)

__all__ = [
    "DEFAULT_SERVICE_DIR",
    "JOB_STATES",
    "Job",
    "JobQueue",
    "PointCoalescer",
    "SERVICE_DIR_ENV",
    "Spool",
    "SpoolServer",
    "TERMINAL_STATES",
    "service_root",
]
