"""Async job queue: submit sweeps, poll status, stream progress.

:class:`JobQueue` is the heart of the sweep service.  Jobs (a set of
figure/table ids plus a CPU cap) are queued and drained by a bounded
pool of worker *threads*; each worker thread runs its job through its
own :class:`~repro.exec.executor.SweepExecutor` built from one shared
:class:`~repro.config.ReproConfig`, so process fan-out and the exec
backend stay configurable per service, not per request.

Two layers of deduplication make concurrent identical requests cheap:

* every worker shares one multi-tenant result cache, so anything any
  job has finished computing is a cache hit for the rest;
* every worker shares one
  :class:`~repro.service.coalesce.PointCoalescer`, so points that are
  *currently being computed* by one job are not recomputed by another —
  two concurrent submissions of the same figure cost one figure's worth
  of simulation, total.

Observability: each finished job carries its executor's stats (points,
cache hits/misses, coalesced, requeued, events, compute wall) and, when
the queue has a ledger path, appends one schema-versioned row to the run
ledger — the same append-only history the harness writes, with a
``service`` field naming the job.
"""

from __future__ import annotations

import itertools
import queue as _queue
import threading
import time
from contextlib import nullcontext as _nullcontext
from pathlib import Path
from time import perf_counter

from ..api import normalize_figure_id, normalize_item_id, \
    normalize_table_id, run_item
from ..config import ReproConfig
from ..exec.executor import SweepExecutor, using_executor
from ..obs.energy import EnergyRecorder, using_energy
from ..obs.telemetry import (TelemetryRecorder, mint_span_id, mint_trace_id,
                             trace_summary, using_telemetry)
from .coalesce import PointCoalescer
from .health import ServiceEventLog, ServiceMetrics

#: Job lifecycle states.
JOB_STATES = ("queued", "running", "done", "failed")

#: Terminal job states.
TERMINAL_STATES = ("done", "failed")


class Job:
    """One submitted request and everything known about its execution."""

    def __init__(self, job_id: str, items: tuple[str, ...],
                 max_cpus: int | None) -> None:
        self.id = job_id
        self.items = items
        self.max_cpus = max_cpus
        self.state = "queued"
        self.error: str | None = None
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.wall_s: float | None = None
        self.stats: dict = {}
        self.energy: dict | None = None
        self.item_results: list[dict] = []
        self.artifacts: list[str] = []
        self.cond = threading.Condition()
        self.events: list[dict] = []
        #: Telemetry (present only when the queue runs with --telemetry):
        #: the job's trace id, its pre-minted root span id, and — once
        #: terminal — the complete span list plus a compact summary.
        self.trace_id: str | None = None
        self.root_span_id: str | None = None
        self.trace_spans: list[dict] | None = None
        self.trace: dict | None = None

    def emit(self, kind: str, **data) -> None:
        with self.cond:
            self.events.append({"seq": len(self.events), "type": kind,
                                "job": self.id, **data})
            self.cond.notify_all()

    def snapshot(self) -> dict:
        """JSON-able status document (what ``status``/``poll`` return)."""
        with self.cond:
            doc = {
                "id": self.id,
                "items": list(self.items),
                "max_cpus": self.max_cpus,
                "state": self.state,
                "error": self.error,
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "wall_s": self.wall_s,
                "stats": dict(self.stats),
                "item_results": list(self.item_results),
                "artifacts": list(self.artifacts),
            }
            if self.energy is not None:
                doc["energy"] = dict(self.energy)
            if self.trace_id is not None:
                doc["trace_id"] = self.trace_id
            if self.trace is not None:
                doc["trace"] = dict(self.trace)
            return doc


class JobQueue:
    """Bounded-worker async job queue over the sweep executor."""

    def __init__(self, config: ReproConfig | None = None, *,
                 workers: int = 2,
                 cache=None,
                 artifacts_dir: str | Path | None = None,
                 ledger_path: str | Path | None = None,
                 events_path: str | Path | None = None) -> None:
        self.config = config if config is not None \
            else ReproConfig.from_env_and_args()
        self.config.apply_engine_backend()
        self.cache = cache if cache is not None else self.config.make_cache()
        self.coalescer = PointCoalescer()
        self.artifacts_dir = (Path(artifacts_dir)
                              if artifacts_dir is not None else None)
        self.ledger_path = (Path(ledger_path)
                            if ledger_path is not None else None)
        # Telemetry trio, present only under --telemetry: one shared
        # trace recorder (span stacks are per worker thread, so
        # concurrent jobs do not interleave), one service metrics set,
        # and — when the spool gave us a path — the append-only event
        # log.  With telemetry off all three are None and every call
        # site below pays one `is not None` test.
        if self.config.telemetry:
            self.telemetry: TelemetryRecorder | None = \
                TelemetryRecorder(enabled=True)
            self.metrics: ServiceMetrics | None = ServiceMetrics()
            self.event_log: ServiceEventLog | None = (
                ServiceEventLog(events_path)
                if events_path is not None else None)
        else:
            self.telemetry = None
            self.metrics = None
            self.event_log = None
        self.workers = max(1, int(workers))
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._pending: _queue.Queue = _queue.Queue()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closed = False
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-service-{i}", daemon=True)
            for i in range(self.workers)
        ]
        for t in self._threads:
            t.start()

    # -- submission ---------------------------------------------------------

    def submit(self, items: list[str] | tuple[str, ...] = (), *,
               figures: list | tuple = (), tables: list | tuple = (),
               max_cpus: int | None = None,
               job_id: str | None = None) -> str:
        """Queue a job; returns its id immediately.

        ``items`` mixes raw ids (``"fig06"``, ``"table2"``, ``"6"``);
        ``figures``/``tables`` take explicitly typed ids.  Ids are
        normalised here so ``submit(["6"])`` and ``submit(["fig06"])``
        are the same request.
        """
        if self._closed:
            raise RuntimeError("JobQueue is closed")
        idents = [normalize_item_id(raw) for raw in items]
        idents.extend(normalize_table_id(t) for t in tables)
        idents.extend(normalize_figure_id(f) for f in figures)
        if not idents:
            raise ValueError("job must name at least one figure or table")
        with self._lock:
            if job_id is None:
                job_id = f"job-{next(self._ids):04d}"
            elif job_id in self._jobs:
                raise ValueError(f"duplicate job id {job_id!r}")
            job = Job(job_id, tuple(idents), max_cpus)
            if self.telemetry is not None:
                # The root span id is minted now, written at job end:
                # everything recorded in between names it as parent.
                job.trace_id = mint_trace_id()
                job.root_span_id = mint_span_id()
            self._jobs[job_id] = job
            self._order.append(job_id)
        job.emit("queued", items=list(idents))
        if self.metrics is not None:
            self.metrics.job_submitted()
        if self.event_log is not None:
            self.event_log.append("submitted", job=job_id,
                                  items=list(idents), max_cpus=max_cpus,
                                  trace_id=job.trace_id)
        self._pending.put(job_id)
        self._observe_queue()
        return job_id

    # -- inspection ---------------------------------------------------------

    def _get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job id {job_id!r}") from None

    def status(self, job_id: str) -> dict:
        """Status document for one job."""
        return self._get(job_id).snapshot()

    def poll(self) -> list[dict]:
        """Status documents for every job, in submission order."""
        with self._lock:
            jobs = [self._jobs[i] for i in self._order]
        return [j.snapshot() for j in jobs]

    def result(self, job_id: str, timeout: float | None = None) -> dict:
        """Block until the job is terminal; returns its final status.

        Raises :class:`TimeoutError` if ``timeout`` elapses first.
        """
        job = self._get(job_id)
        deadline = None if timeout is None else time.monotonic() + timeout
        with job.cond:
            # Wait for the terminal *event*, not just the terminal
            # state: the state flips first, but the ledger row and (when
            # telemetry is on) the assembled job trace are only attached
            # when the terminal event is emitted — a result() caller
            # must never observe a finished job without them.
            while not (job.events
                       and job.events[-1]["type"] in TERMINAL_STATES):
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} still {job.state} after {timeout}s")
                job.cond.wait(remaining)
        return job.snapshot()

    def stream(self, job_id: str, timeout: float | None = None):
        """Yield the job's events as they happen, ending at a terminal one.

        ``timeout`` bounds the wait for *each* event, not the whole
        stream; on expiry a :class:`TimeoutError` is raised.
        """
        job = self._get(job_id)
        idx = 0
        while True:
            with job.cond:
                while idx >= len(job.events):
                    if not job.cond.wait(timeout):
                        raise TimeoutError(
                            f"no event from job {job_id} in {timeout}s")
                batch = job.events[idx:]
                idx = len(job.events)
            for event in batch:
                yield event
                if event["type"] in TERMINAL_STATES:
                    return

    def _by_state(self) -> dict[str, int]:
        """Per-state job counts, zero-filled over every lifecycle state."""
        counts = {state: 0 for state in JOB_STATES}
        with self._lock:
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def queue_depth(self) -> int:
        """Jobs accepted but not yet picked up by a worker thread."""
        return self._pending.qsize()

    def _observe_queue(self) -> None:
        if self.metrics is not None:
            self.metrics.observe_queue(self.queue_depth(), self._by_state())

    def stats(self) -> dict:
        """Aggregate queue statistics (jobs by state, dedup totals).

        Always available — per-state counts and queue depth do not
        depend on ``--telemetry``, so the spool ``status`` summary line
        can print them for any server.
        """
        snaps = self.poll()
        by_state = self._by_state()
        totals = {"points": 0, "cache_hits": 0, "cache_misses": 0,
                  "coalesced": 0, "requeued": 0, "events": 0,
                  "computed": 0}
        for s in snaps:
            st = s["stats"]
            for k in ("points", "cache_hits", "cache_misses", "coalesced",
                      "requeued", "events"):
                totals[k] += st.get(k, 0)
        # Fresh computations = misses that were not satisfied by a
        # sibling's in-flight computation.
        totals["computed"] = totals["cache_misses"] - totals["coalesced"]
        return {"jobs": len(snaps), "by_state": by_state,
                "queue_depth": self.queue_depth(),
                "workers": self.workers, **totals,
                "coalescer": self.coalescer.stats()}

    def metrics_snapshot(self) -> dict | None:
        """The service metrics snapshot, or None with telemetry off."""
        if self.metrics is None:
            return None
        self.metrics.set_coalescer(self.coalescer.stats())
        self.metrics.observe_queue(self.queue_depth(), self._by_state())
        return self.metrics.snapshot()

    def job_trace(self, job_id: str) -> list[dict] | None:
        """A terminal job's telemetry spans (wire dicts), if traced."""
        job = self._get(job_id)
        with job.cond:
            return (list(job.trace_spans)
                    if job.trace_spans is not None else None)

    # -- execution ----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job_id = self._pending.get()
            if job_id is None:
                return
            self._run_job(self._get(job_id))

    def _run_job(self, job: Job) -> None:
        executor = SweepExecutor(jobs=self.config.jobs,
                                 cache=self.cache,
                                 backend=self.config.exec_backend,
                                 coalescer=self.coalescer)
        # Per-job energy accounting: the recorder is scoped to this
        # worker *thread* (see repro.obs.energy), so concurrent jobs
        # never mix joules.
        enrec = (EnergyRecorder(enabled=True) if self.config.energy
                 else None)
        en_scope = (using_energy(enrec) if enrec is not None
                    else _nullcontext())
        with job.cond:
            job.state = "running"
            job.started_at = time.time()
        job.emit("running")
        tel = self.telemetry
        root_ctx = run_span = None
        if tel is not None:
            # The trace root (service.job) is written retroactively at
            # job end with the span id minted at submit; meanwhile the
            # queue wait is recorded from its observed boundaries and
            # the live run phase opens here, on this worker thread.
            root_ctx = {"trace_id": job.trace_id,
                        "span_id": job.root_span_id}
            tel.record("queue.wait", "service",
                       t_start=job.submitted_at, t_end=job.started_at,
                       parent=root_ctx, job=job.id)
            run_span = tel.begin("job.run", "service", parent=root_ctx,
                                 job=job.id)
        if self.metrics is not None:
            self.metrics.job_started(job.started_at - job.submitted_at)
        if self.event_log is not None:
            self.event_log.append(
                "started", job=job.id, trace_id=job.trace_id,
                queue_wait_s=round(job.started_at - job.submitted_at, 6))
        self._observe_queue()
        tel_scope = (using_telemetry(tel) if tel is not None
                     else _nullcontext())
        t0 = perf_counter()
        outcome = "failed"
        try:
            with tel_scope, en_scope, using_executor(executor):
                for ident in job.items:
                    before = executor.stats()
                    it0 = perf_counter()
                    result = run_item(ident, max_cpus=job.max_cpus)
                    item_wall = perf_counter() - it0
                    after = executor.stats()
                    if tel is not None and self.artifacts_dir is not None:
                        with tel.span("job.artifact_save", "service",
                                      item=ident):
                            paths = self._save_artifacts(job, ident, result)
                    else:
                        paths = self._save_artifacts(job, ident, result)
                    item_doc = {
                        "id": ident,
                        "wall_s": round(item_wall, 6),
                        **{k: after[k] - before[k]
                           for k in ("points", "cache_hits", "cache_misses",
                                     "coalesced", "events")},
                        "artifacts": paths,
                    }
                    with job.cond:
                        job.item_results.append(item_doc)
                        job.artifacts.extend(paths)
                    job.emit("item", **item_doc)
        except Exception as exc:
            with job.cond:
                job.error = f"{type(exc).__name__}: {exc}"
                job.finished_at = time.time()
                job.wall_s = round(perf_counter() - t0, 6)
                job.stats = executor.stats()
                if enrec is not None:
                    job.energy = enrec.totals()
            if tel is not None:
                tel.end(run_span, status="error")
        else:
            outcome = "done"
            with job.cond:
                job.finished_at = time.time()
                job.wall_s = round(perf_counter() - t0, 6)
                job.stats = executor.stats()
                if enrec is not None:
                    job.energy = enrec.totals()
            if tel is not None:
                tel.end(run_span)
        finally:
            # The public state flip and terminal event (which wake
            # result()/stream() waiters and tell pollers the snapshot is
            # final) are deliberately LAST: by the time anyone observes
            # a terminal state, the ledger row is appended and the trace
            # is assembled onto the job.
            try:
                backend_health = executor.backend_health()
                executor.close()
                if tel is not None:
                    with using_telemetry(tel), \
                            tel.span("job.ledger_append", "service",
                                     parent=root_ctx, job=job.id):
                        self._append_ledger(job, state=outcome)
                    self._finish_telemetry(job, backend_health, outcome)
                else:
                    self._append_ledger(job, state=outcome)
            finally:
                with job.cond:
                    job.state = outcome
                if outcome == "failed":
                    job.emit("failed", error=job.error)
                else:
                    job.emit("done", stats=job.stats)

    def _finish_telemetry(self, job: Job, backend_health: dict | None,
                          outcome: str) -> None:
        """Close out a traced job: totals, event log, trace assembly."""
        tel = self.telemetry
        if self.metrics is not None:
            self.metrics.job_finished(
                outcome, (job.finished_at or job.submitted_at)
                - job.submitted_at)
            self.metrics.fold_job_stats(job.stats)
            self.metrics.fold_backend_health(backend_health)
            self.metrics.set_coalescer(self.coalescer.stats())
        self._observe_queue()
        # Retro-write the trace root now that both endpoints are known,
        # then move the completed trace off the shared recorder.
        tel.record("service.job", "service",
                   t_start=job.submitted_at,
                   t_end=job.finished_at or time.time(),
                   parent={"trace_id": job.trace_id},
                   span_id=job.root_span_id,
                   status="ok" if outcome == "done" else "error",
                   job=job.id, items=list(job.items), state=outcome)
        spans = tel.take_trace(job.trace_id)
        summary = trace_summary(spans)
        doc = summary["traces"].get(job.trace_id, {})
        doc["trace_id"] = job.trace_id
        with job.cond:
            job.trace_spans = spans
            job.trace = doc
        if self.event_log is not None:
            self.event_log.append(
                "finished", job=job.id, state=outcome,
                trace_id=job.trace_id, wall_s=job.wall_s,
                stats=dict(job.stats), error=job.error,
                spans=len(spans),
                fleet=backend_health or {})

    def _save_artifacts(self, job: Job, ident: str, result) -> list[str]:
        if self.artifacts_dir is None:
            return []
        from ..harness.report import save_figure, save_table

        out = self.artifacts_dir / job.id
        # Route on result type, not the identifier: scenario ids carry no
        # fig/table prefix yet still render as one or the other.
        if hasattr(result, "table_id"):
            save_table(result, out)
        else:
            save_figure(result, out)
        return sorted(str(p) for p in out.glob(f"{ident}.*"))

    def _append_ledger(self, job: Job, *, state: str | None = None) -> None:
        """One run-ledger row per finished job (same schema as the harness)."""
        if self.ledger_path is None:
            return
        from ..exec.cache import source_fingerprint
        from ..obs import RunLedger, git_sha, run_key

        stats = job.stats
        wall = job.wall_s or 0.0
        row = {
            "when": round(time.time(), 3),
            "git_sha": git_sha(),
            "fingerprint": source_fingerprint(),
            "run_key": run_key(list(job.items), job.max_cpus,
                               self.config.engine_backend),
            "service": job.id,
            "state": state if state is not None else job.state,
            "items": list(job.items),
            "max_cpus": job.max_cpus,
            "jobs": self.config.jobs,
            "engine_backend": self.config.engine_backend,
            "exec_backend": self.config.exec_backend,
            "wall_s": wall,
            "points": stats.get("points", 0),
            "cache_hits": stats.get("cache_hits", 0),
            "cache_misses": stats.get("cache_misses", 0),
            "coalesced": stats.get("coalesced", 0),
            "events": stats.get("events", 0),
            "events_per_s": (round(stats.get("events", 0) / wall)
                             if wall > 0 else None),
        }
        if job.energy is not None:
            # Present only on energy-accounted jobs — energy-off rows
            # omit the fields rather than null-padding them.
            row["energy_total_j"] = job.energy["total_j"]
            row["energy_avg_power_w"] = job.energy["avg_power_w"]
            row["energy_edp_js"] = job.energy["edp_js"]
        if job.trace_id is not None:
            # Traced jobs link their ledger row to the job trace; the
            # full span summary lives in the status document (the row is
            # appended *inside* the trace, before the root is written).
            row["trace_id"] = job.trace_id
        RunLedger(self.ledger_path).append(row)

    # -- lifecycle ----------------------------------------------------------

    def join(self, timeout: float | None = None) -> bool:
        """Wait until every submitted job is terminal; True on success."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for snap in self.poll():
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            try:
                self.result(snap["id"], timeout=remaining)
            except TimeoutError:
                return False
        return True

    def close(self, wait: bool = True) -> None:
        """Stop accepting jobs and shut the worker threads down."""
        if self._closed:
            return
        self._closed = True
        if wait:
            self.join()
        for _ in self._threads:
            self._pending.put(None)
        for t in self._threads:
            t.join(timeout=30)

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close(wait=not any(exc))
