"""Request coalescing: one computation per in-flight point fingerprint.

Thousands of clients asking for the same figure should pay for one
simulation.  The content-addressed cache already deduplicates across
*time* (a warm entry is never recomputed); :class:`PointCoalescer`
deduplicates across *concurrency*: when several service jobs miss the
cache on the same :class:`~repro.exec.points.SimPoint` fingerprint at
the same moment, exactly one executor computes it (the **owner**) and
the rest (**waiters**) block until the owner publishes the record.

The protocol, enforced by :class:`SweepExecutor`:

1. every cache miss calls :meth:`PointCoalescer.claim` with the point's
   cache-identity key;
2. an owner claim *must* end in :meth:`Claim.publish` (success) or
   :meth:`Claim.fail` (the executor uses try/finally), which wakes every
   waiter and retires the flight;
3. :meth:`Claim.wait` returns the published record, or ``None`` if the
   owner failed — waiters then compute the point themselves rather than
   inheriting someone else's crash.

The coalescer is in-process (shared across the job queue's worker
threads); cross-process tenants are already deduplicated by the shared
cache within one store generation.
"""

from __future__ import annotations

import threading


class _Flight:
    """One in-flight computation: an event plus its eventual outcome."""

    __slots__ = ("event", "record", "failed", "owner_ctx")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.record = None
        self.failed = False
        #: Telemetry trace context of the owner's compute span (or None
        #: when telemetry is off) — waiters link their ``coalesced``
        #: spans to the computation they piggybacked on.
        self.owner_ctx: dict | None = None


class Claim:
    """The result of claiming a key: either the owner or a waiter."""

    __slots__ = ("key", "owner", "_flight", "_coalescer")

    def __init__(self, key: str, owner: bool, flight: _Flight,
                 coalescer: "PointCoalescer") -> None:
        self.key = key
        self.owner = owner
        self._flight = flight
        self._coalescer = coalescer

    def publish(self, record) -> None:
        """Owner only: hand the computed record to every waiter."""
        self._flight.record = record
        self._coalescer._retire(self.key, self._flight)

    def set_owner_ctx(self, ctx: dict | None) -> None:
        """Owner only: attach the owner's telemetry trace context."""
        self._flight.owner_ctx = ctx

    def owner_ctx(self) -> dict | None:
        """The owner's trace context, once published (None before/without)."""
        return self._flight.owner_ctx

    def fail(self, exc: BaseException | None = None) -> None:
        """Owner only: wake waiters empty-handed (they recompute)."""
        self._flight.failed = True
        self._coalescer._retire(self.key, self._flight)

    def wait(self, timeout: float | None = None):
        """Waiter only: block for the owner's record (None on failure)."""
        if not self._flight.event.wait(timeout):
            return None
        if self._flight.failed:
            return None
        return self._flight.record


class PointCoalescer:
    """Single-flight map from point fingerprint to in-flight computation."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[str, _Flight] = {}
        #: Cumulative counters: flights owned vs. joins coalesced onto
        #: an existing flight (monotonic, for service stats).
        self.owned = 0
        self.joined = 0

    def claim(self, key: str) -> Claim:
        """Claim ``key``: owner if no flight is live, else waiter."""
        with self._lock:
            flight = self._inflight.get(key)
            if flight is None:
                flight = _Flight()
                self._inflight[key] = flight
                self.owned += 1
                return Claim(key, True, flight, self)
            self.joined += 1
            return Claim(key, False, flight, self)

    def _retire(self, key: str, flight: _Flight) -> None:
        with self._lock:
            if self._inflight.get(key) is flight:
                del self._inflight[key]
        flight.event.set()

    def inflight(self) -> int:
        """Number of live flights (diagnostics)."""
        with self._lock:
            return len(self._inflight)

    def stats(self) -> dict:
        with self._lock:
            return {"owned": self.owned, "joined": self.joined,
                    "inflight": len(self._inflight)}
