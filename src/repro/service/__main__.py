"""Sweep-service CLI: serve, submit, status, result, metrics, gc.

Examples::

    # one terminal: start the service (2 concurrent jobs, pool backend)
    python -m repro.service serve --workers 2 --jobs 4

    # another terminal: submit work and wait for it
    python -m repro.service submit fig06 --max-cpus 64 --wait
    python -m repro.service submit fig06 table2
    python -m repro.service status
    python -m repro.service status 20260809-101500-a1b2c3
    python -m repro.service result 20260809-101500-a1b2c3

    # CI / batch: submit first, then drain everything in one shot
    python -m repro.service submit fig12 --max-cpus 32
    python -m repro.service submit fig12 --max-cpus 32
    python -m repro.service serve --once --workers 2

    # observe a telemetry-enabled service (see docs/MODEL.md §15)
    python -m repro.service serve --telemetry --workers 2
    python -m repro.service metrics

    # prune stale cache generations and old finished jobs
    python -m repro.service gc --older-than-days 7

Clients and server meet in the spool directory (``--root``,
``REPRO_SERVICE_DIR``, default ``.repro_service/``); results land under
``<root>/artifacts/<job-id>/`` as the same CSV/TXT/JSON exports the
harness writes.  Exit codes: 0 ok, 1 a job failed, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..api import normalize_item_id
from ..config import ReproConfig
from ..core import sched
from ..core.errors import ConfigError
from ..exec.backends import available_exec_backends
from .queue import JOB_STATES, TERMINAL_STATES
from .spool import Spool, SpoolServer

EXIT_OK = 0
EXIT_JOB_FAILED = 1
EXIT_USAGE = 2

#: Status-document fields the plain ``status`` listing already renders
#: (or deliberately summarises); anything else in a document is a newer
#: server's addition and is printed verbatim as ``key=value``.
_STATUS_LISTED_FIELDS = frozenset({
    "schema_version", "id", "items", "max_cpus", "submitted_at",
    "started_at", "finished_at", "config", "state", "error", "job",
    "wall_s", "stats", "item_results", "artifacts", "trace_id", "trace",
})


def _lookup_status(spool: Spool, request_id: str) -> tuple[dict | None, str]:
    """Resolve one request id to (status doc, error message).

    Distinguishes a request the service simply has not picked up yet
    from an id nothing in the spool has ever seen.
    """
    doc = spool.read_status(request_id)
    if doc is not None:
        return doc, ""
    if (spool.jobs_dir / f"{request_id}.json").is_file():
        return None, (f"request {request_id} not yet picked up by a server "
                      f"(is one running against {spool.root}?)")
    return None, f"unknown request id {request_id!r} in {spool.root}"


def _add_config_flags(ap: argparse.ArgumentParser) -> None:
    ap.add_argument("--jobs", "-j", type=int, default=None,
                    help="worker processes per sweep (default: REPRO_JOBS "
                         "env var, else CPU count)")
    ap.add_argument("--engine-backend", default=None, metavar="NAME",
                    help="scheduler backend "
                         f"({', '.join(sched.available_backends())})")
    ap.add_argument("--exec-backend", default=None, metavar="NAME",
                    help="executor backend "
                         f"({', '.join(available_exec_backends())}; "
                         "default: REPRO_EXEC_BACKEND env var, else pool "
                         "for --jobs > 1)")
    ap.add_argument("--cache-dir", default=None,
                    help="result cache directory (default: REPRO_CACHE_DIR "
                         "env var, else .repro_cache)")
    ap.add_argument("--no-cache", action="store_true", default=None,
                    help="disable the on-disk result cache")
    ap.add_argument("--energy", action="store_true", default=None,
                    help="account energy-to-solution per job (machine "
                         "power models; adds energy fields to the "
                         "service ledger rows)")
    ap.add_argument("--telemetry", action="store_true", default=None,
                    help="trace jobs and record service metrics "
                         "(service_events.jsonl, metrics.prom, and "
                         "traces/ in the spool; REPRO_TELEMETRY env var)")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Simulation-as-a-service front end over the sweep "
                    "executor: async job queue, request coalescing, "
                    "multi-tenant result store.",
    )
    ap.add_argument("--root", default=None, metavar="DIR",
                    help="spool directory (default: REPRO_SERVICE_DIR env "
                         "var, else .repro_service)")
    sub = ap.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the service loop")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent jobs (worker slots, default: "
                            "%(default)s)")
    serve.add_argument("--once", action="store_true",
                       help="drain pending requests, then exit")
    serve.add_argument("--poll-interval", type=float, default=0.2,
                       metavar="S", help="spool poll interval in seconds")
    serve.add_argument("--max-wall", type=float, default=None, metavar="S",
                       help="stop serving after S seconds")
    _add_config_flags(serve)

    submit = sub.add_parser("submit",
                            help="submit figures/tables/scenarios as a job")
    submit.add_argument("items", nargs="+", metavar="ITEM",
                        help="figure/table ids (fig06, 6, table2, ...) or "
                             "registered scenario names "
                             "(python -m repro.scenarios list)")
    submit.add_argument("--max-cpus", type=int, default=None,
                        help="cap CPU sweeps")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes; print status")
    submit.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="with --wait: give up after S seconds")

    status = sub.add_parser("status", help="show job status")
    status.add_argument("request_id", nargs="?", default=None,
                        help="one request id (default: list everything)")
    status.add_argument("--json", action="store_true", dest="as_json",
                        help="print raw JSON documents")

    result = sub.add_parser(
        "result", help="print one finished request's results "
                       "(exit 0 done, 1 failed/unfinished, 2 unknown id)")
    result.add_argument("request_id", help="the request id to fetch")
    result.add_argument("--json", action="store_true", dest="as_json",
                        help="print the raw JSON status document")

    metrics = sub.add_parser(
        "metrics", help="print the service's Prometheus text exposition "
                        "(requires a server running with --telemetry)")

    gc = sub.add_parser("gc", help="prune stale cache generations and "
                                   "old finished jobs")
    gc.add_argument("--older-than-days", type=float, default=7.0,
                    help="collect terminal jobs older than this "
                         "(default: %(default)s)")
    gc.add_argument("--cache-dir", default=None,
                    help="result cache to sweep (default: REPRO_CACHE_DIR "
                         "env var, else .repro_cache)")
    gc.add_argument("--no-cache-gc", action="store_true",
                    help="skip the result-store generation sweep")

    args = ap.parse_args(argv)
    spool = Spool(args.root)

    if args.command == "serve":
        try:
            config = ReproConfig.from_env_and_args(args)
            config.apply_engine_backend()
        except (ConfigError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        server = SpoolServer(spool, config, workers=args.workers,
                             poll_s=args.poll_interval)
        tel = " telemetry=on" if config.telemetry else ""
        print(f"[repro.service: spool={spool.root} "
              f"workers={args.workers} jobs={config.jobs} "
              f"exec={config.exec_backend} engine={config.engine_backend}"
              f"{tel}]")
        try:
            n = server.run(once=args.once, max_wall_s=args.max_wall)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            print("[interrupted]", file=sys.stderr)
            return EXIT_OK
        failed = [d for d in spool.statuses() if d.get("state") == "failed"]
        print(f"[served {n} requests, {len(failed)} failed]")
        return EXIT_JOB_FAILED if failed else EXIT_OK

    if args.command == "submit":
        try:
            items = [normalize_item_id(i) for i in args.items]
        except ValueError as exc:
            print(f"error: bad item id: {exc}", file=sys.stderr)
            return EXIT_USAGE
        try:
            request_id = spool.submit(items, max_cpus=args.max_cpus)
        except OSError as exc:
            print(f"error: cannot write spool request: {exc}",
                  file=sys.stderr)
            return EXIT_USAGE
        print(request_id)
        if not args.wait:
            return EXIT_OK
        try:
            doc = spool.wait(request_id, timeout=args.timeout)
        except TimeoutError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_JOB_FAILED
        print(json.dumps(doc, indent=1, sort_keys=True))
        return EXIT_OK if doc.get("state") == "done" else EXIT_JOB_FAILED

    if args.command == "status":
        if args.request_id is not None:
            doc, msg = _lookup_status(spool, args.request_id)
            if doc is None:
                print(f"error: {msg}", file=sys.stderr)
                return EXIT_USAGE
            print(json.dumps(doc, indent=1, sort_keys=True))
            return (EXIT_OK if doc.get("state") != "failed"
                    else EXIT_JOB_FAILED)
        docs = spool.statuses()
        if args.as_json:
            print(json.dumps(docs, indent=1, sort_keys=True))
            return EXIT_OK
        if not docs:
            print(f"[no jobs in {spool.root}]")
            return EXIT_OK
        for doc in docs:
            items = ",".join(doc.get("items", []))
            wall = doc.get("wall_s")
            extra = f" wall={wall:.1f}s" if isinstance(wall, (int, float)) \
                else ""
            err = doc.get("error")
            extra += f" error={err}" if err else ""
            trace = doc.get("trace")
            if isinstance(trace, dict):
                extra += (f" trace={doc.get('trace_id')}"
                          f"({trace.get('spans')} spans)")
            # Forward compatibility: a newer server may stamp status
            # fields this listing does not know about — show them as
            # key=value instead of silently dropping them.
            for key in sorted(set(doc) - _STATUS_LISTED_FIELDS):
                extra += f" {key}={json.dumps(doc[key], sort_keys=True)}"
            print(f"{doc.get('id')}  {doc.get('state'):8s} "
                  f"[{items}]{extra}")
        # Queue-shape summary: per-state counts over every state the
        # queue knows, plus the still-unserved depth (same shape as
        # JobQueue.stats()["by_state"], works with telemetry off).
        by_state = {state: 0 for state in JOB_STATES}
        for doc in docs:
            state = doc.get("state")
            if state in by_state:
                by_state[state] += 1
        depth = sum(by_state[s] for s in JOB_STATES
                    if s not in TERMINAL_STATES)
        shape = " ".join(f"{state}={n}" for state, n in by_state.items())
        print(f"[{len(docs)} requests: {shape} | queue depth {depth}]")
        if spool.metrics_path.is_file():
            # A telemetry-enabled server keeps this fresh each tick.
            print(f"# -- service metrics ({spool.metrics_path}) --")
            print(spool.metrics_path.read_text(), end="")
        return EXIT_OK

    if args.command == "result":
        doc, msg = _lookup_status(spool, args.request_id)
        if doc is None:
            print(f"error: {msg}", file=sys.stderr)
            return EXIT_USAGE
        if doc.get("state") not in TERMINAL_STATES:
            print(f"request {args.request_id} still {doc.get('state')}",
                  file=sys.stderr)
            return EXIT_JOB_FAILED
        if args.as_json:
            print(json.dumps(doc, indent=1, sort_keys=True))
        else:
            for item in doc.get("item_results") or []:
                arts = ", ".join(item.get("artifacts") or []) or "-"
                print(f"{item.get('id')}  wall={item.get('wall_s')}s  "
                      f"points={item.get('points')}  {arts}")
            err = doc.get("error")
            if err:
                print(f"error: {err}", file=sys.stderr)
        return (EXIT_OK if doc.get("state") == "done"
                else EXIT_JOB_FAILED)

    if args.command == "metrics":
        if not spool.metrics_path.is_file():
            print(f"error: no {spool.metrics_path} — is a server running "
                  f"with --telemetry against {spool.root}?",
                  file=sys.stderr)
            return EXIT_USAGE
        print(spool.metrics_path.read_text(), end="")
        return EXIT_OK

    if args.command == "gc":
        report = spool.gc(older_than_s=args.older_than_days * 86400.0)
        aged = (f", aged out {'+'.join(report['files'])}"
                if report.get("files") else "")
        print(f"[spool gc: removed {len(report['removed'])} jobs, "
              f"kept {report['kept']}{aged}]")
        if not args.no_cache_gc:
            try:
                config = ReproConfig.from_env_and_args(
                    cache_dir=args.cache_dir)
            except (ConfigError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return EXIT_USAGE
            cache = config.make_cache()
            if cache is not None:
                cache_report = cache.gc()
                print(f"[cache gc: removed "
                      f"{len(cache_report['removed'])} stale generations "
                      f"({cache_report['bytes']} bytes), kept "
                      f"{len(cache_report['kept'])}]")
        return EXIT_OK

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
