"""Service health: operational metrics, event log, Prometheus exposition.

Three surfaces, one source of truth (a thread-safe wrapper around the
existing :class:`~repro.obs.metrics.MetricsRegistry`):

* :class:`ServiceMetrics` — queue depth (current + high-water), per-state
  job counts, submit→start / submit→done latency histograms, coalescer
  single-flight savings, cache hit/miss totals, and per-fleet worker
  stats (spawned, requests served, crashes, restarts, requeues), all
  under ``service.*`` names so they merge and snapshot exactly like the
  simulation metrics.
* :class:`ServiceEventLog` — a schema-versioned append-only
  ``service_events.jsonl`` in the spool, the service's analogue of the
  run ledger: one JSON object per state transition (submitted, started,
  finished, worker crash, gc), written under a lock so concurrent job
  threads interleave whole lines.
* :func:`render_prometheus` — the metrics snapshot as Prometheus text
  exposition (``# TYPE`` headers, log2 buckets unrolled into cumulative
  ``_bucket{le="..."}`` series), written to ``metrics.prom`` by the
  spool server and printed by ``python -m repro.service metrics`` — the
  file a node-exporter-style scraper would collect.

Everything here is only *instantiated* when ``--telemetry`` /
``REPRO_TELEMETRY`` is on; with telemetry off the queue carries ``None``
and pays a single ``is not None`` test per call site (the
:mod:`repro.obs` zero-overhead discipline).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from ..obs.metrics import MetricsRegistry

#: Bump when the event-log record layout changes incompatibly.
EVENTS_SCHEMA_VERSION = 1


class ServiceMetrics:
    """Thread-safe ``service.*`` instrument set over a MetricsRegistry.

    The underlying registry is not lock-protected (simulation code is
    single-threaded per point); the service updates it from many job
    threads at once, so every mutation here goes through one lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.registry = MetricsRegistry(enabled=True)

    # -- queue lifecycle -----------------------------------------------------

    def job_submitted(self) -> None:
        with self._lock:
            self.registry.counter("service.jobs.submitted").inc()

    def job_started(self, queue_wait_s: float) -> None:
        with self._lock:
            self.registry.counter("service.jobs.started").inc()
            self.registry.histogram(
                "service.latency.submit_start_s").observe(queue_wait_s)

    def job_finished(self, state: str, submit_done_s: float) -> None:
        with self._lock:
            self.registry.counter(f"service.jobs.{state}").inc()
            self.registry.histogram(
                "service.latency.submit_done_s").observe(submit_done_s)

    def observe_queue(self, depth: int, by_state: dict[str, int]) -> None:
        """Record the instantaneous queue shape (depth + per-state counts)."""
        with self._lock:
            self.registry.gauge("service.queue.depth").set(depth)
            self.registry.gauge("service.queue.depth_hwm").set_max(depth)
            for state, n in by_state.items():
                self.registry.gauge(f"service.jobs.state.{state}").set(n)

    # -- dedup / compute accounting ------------------------------------------

    def set_coalescer(self, stats: dict) -> None:
        """Mirror the coalescer's cumulative owned/joined totals."""
        with self._lock:
            self.registry.counter("service.coalesce.owned").value = \
                stats.get("owned", 0)
            self.registry.counter("service.coalesce.joined").value = \
                stats.get("joined", 0)
            self.registry.gauge("service.coalesce.inflight").set(
                stats.get("inflight", 0))

    def fold_job_stats(self, stats: dict) -> None:
        """Fold one finished job's executor-stat deltas into the totals."""
        with self._lock:
            for key, name in (("points", "service.points"),
                              ("cache_hits", "service.cache.hits"),
                              ("cache_misses", "service.cache.misses"),
                              ("requeued", "service.fleet.requeues"),
                              ("events", "service.sim.events")):
                v = stats.get(key, 0)
                if v:
                    self.registry.counter(name).inc(v)

    def fold_backend_health(self, health: dict | None) -> None:
        """Fold an exec backend's worker-health counters (fleet stats)."""
        if not health:
            return
        with self._lock:
            for key, name in (("workers_spawned",
                               "service.fleet.workers_spawned"),
                              ("requests", "service.fleet.requests"),
                              ("crashes", "service.fleet.crashes"),
                              ("restarts", "service.fleet.restarts")):
                v = health.get(key, 0)
                if v:
                    self.registry.counter(name).inc(v)

    # -- views ---------------------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            hits = self.registry.value("service.cache.hits")
            misses = self.registry.value("service.cache.misses")
            if hits + misses:
                self.registry.gauge("service.cache.hit_ratio").set(
                    hits / (hits + misses))
            return self.registry.snapshot()

    def cache_hit_ratio(self) -> float | None:
        with self._lock:
            hits = self.registry.value("service.cache.hits")
            misses = self.registry.value("service.cache.misses")
        total = hits + misses
        return hits / total if total else None


class ServiceEventLog:
    """Append-only JSONL service event log (the queue's flight recorder).

    Same discipline as :class:`~repro.obs.ledger.RunLedger`: every
    record is stamped with ``schema_version``; :meth:`entries` is
    version-lenient, skipping unparseable lines rather than failing, so
    an old reader survives a newer server's log.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()

    def append(self, kind: str, **fields) -> dict:
        record = {"schema_version": EVENTS_SCHEMA_VERSION,
                  "when": round(time.time(), 6),
                  "pid": os.getpid(),
                  "event": kind, **fields}
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a") as fh:
                fh.write(line + "\n")
        return record

    def entries(self) -> list[dict]:
        try:
            text = self.path.read_text()
        except OSError:
            return []
        out = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(doc, dict):
                out.append(doc)
        return out


# -- Prometheus text exposition -----------------------------------------------


def _prom_name(name: str) -> str:
    """``service.queue.depth`` -> ``repro_service_queue_depth``."""
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{safe}"


def _fmt(v: float) -> str:
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    return repr(v) if isinstance(v, float) else str(v)


def render_prometheus(snapshot: dict, *, help_prefix: str = "repro") -> str:
    """A metrics snapshot as Prometheus text exposition format.

    Counters and gauges map directly; log2-bucket histograms unroll into
    the cumulative ``_bucket{le="..."}`` convention (the ``le`` value of
    exponent ``e`` is ``2.0**e``, the bucket's inclusive upper bound),
    plus the standard ``_sum``/``_count`` pair.  Output is sorted by
    metric name, so two expositions of equal state are byte-equal.
    """
    lines: list[str] = []
    for name, v in sorted(snapshot.get("counters", {}).items()):
        p = _prom_name(name)
        lines.append(f"# HELP {p} {help_prefix} counter {name}")
        lines.append(f"# TYPE {p} counter")
        lines.append(f"{p} {_fmt(v)}")
    for name, v in sorted(snapshot.get("gauges", {}).items()):
        p = _prom_name(name)
        lines.append(f"# HELP {p} {help_prefix} gauge {name}")
        lines.append(f"# TYPE {p} gauge")
        lines.append(f"{p} {_fmt(v)}")
    for name, h in sorted(snapshot.get("histograms", {}).items()):
        p = _prom_name(name)
        lines.append(f"# HELP {p} {help_prefix} histogram {name}")
        lines.append(f"# TYPE {p} histogram")
        cum = 0
        for exp, n in sorted(((int(k), v)
                              for k, v in h.get("buckets", {}).items())):
            cum += n
            lines.append(f'{p}_bucket{{le="{2.0 ** exp}"}} {cum}')
        lines.append(f'{p}_bucket{{le="+Inf"}} {h.get("count", 0)}')
        lines.append(f"{p}_sum {_fmt(h.get('sum', 0))}")
        lines.append(f"{p}_count {h.get('count', 0)}")
    return "\n".join(lines) + ("\n" if lines else "")
