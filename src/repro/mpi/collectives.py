"""Collective algorithms over simulated point-to-point messaging.

These are real algorithm implementations — binomial trees, recursive
doubling/halving, Bruck, ring, pairwise exchange, Rabenseifner — whose
cost *emerges* from the message-level fabric model.  This matters for the
paper's IMB section: collective performance reflects "the algorithms used
underneath" (§3.2.3), e.g. local reduction arithmetic is charged per merge
step, which is what separates the vector machines from the scalar ones in
the Reduce/Allreduce figures.

Selection mirrors MPICH-style size/count tuning; every entry point takes
an optional ``algorithm`` override so ablation benchmarks can pin one.

All functions are generators; payloads (NumPy arrays) are optional and,
when present, are actually split/merged/reduced so tests can validate
results against serial references.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..core.errors import MPIError
from .datatypes import Op, payload_nbytes, resolve_nbytes

# Tag packing: one collective call owns tags [seq*_TAGSPAN, (seq+1)*_TAGSPAN).
_TAGSPAN = 8192

# Tuning thresholds (bytes), MPICH-flavoured.
BCAST_SHORT = 12 * 1024
REDUCE_SHORT = 32 * 1024
ALLREDUCE_SHORT = 32 * 1024
ALLGATHER_TOTAL_SHORT = 512 * 1024
ALLTOALL_SHORT = 1024


# ---------------------------------------------------------------------------
# plumbing helpers
# ---------------------------------------------------------------------------

def _isend(comm, dest: int, nbytes: int, tag: int, data: Any = None):
    # Hot funnel: every collective message passes through here.  Peers
    # are computed by the algorithms and always in range, so the public
    # API's bounds check (`comm._global`) is skipped in favour of direct
    # world-rank translation.
    ranks = comm._world_ranks
    return comm.cluster.transport.isend(
        ranks[comm._rank], ranks[dest], int(nbytes), tag, data,
        comm._coll_channel,
    )


def _irecv(comm, source: int, tag: int):
    ranks = comm._world_ranks
    return comm.cluster.transport.irecv(
        ranks[comm._rank], ranks[source], tag, comm._coll_channel
    )


def _sendrecv(comm, dest: int, source: int, nbytes: int, tag: int,
              data: Any = None):
    """Concurrent exchange; returns the received :class:`RecvResult`."""
    rreq = _irecv(comm, source, tag)
    sreq = _isend(comm, dest, nbytes, tag, data)
    res = yield rreq
    yield sreq
    return res


def _reduce_compute(comm, nbytes: float):
    """Charge the local arithmetic of combining two nbytes-long buffers."""
    if nbytes > 0:
        yield from comm.compute(
            flops=nbytes / 8.0, nbytes=3.0 * nbytes, kernel="reduction"
        )


def _combine(op: Op, acc: Any, incoming: Any) -> Any:
    if acc is None or incoming is None:
        return acc if incoming is None else incoming
    return op(acc, incoming)


def balanced_split(nbytes: int, parts: int) -> list[int]:
    """Byte counts of ``parts`` balanced blocks (first blocks larger)."""
    q, r = divmod(int(nbytes), parts)
    return [q + 1] * r + [q] * (parts - r)


def split_payload(data: Any, parts: int) -> list[Any]:
    """Element-wise split of an optional array payload into blocks."""
    if isinstance(data, np.ndarray):
        return list(np.array_split(data, parts))
    return [None] * parts


class _Blocks:
    """Per-rank blocks of one buffer: real slices and/or byte sizes."""

    def __init__(self, data: Any, nbytes: int, parts: int) -> None:
        self.arrs = split_payload(data, parts)
        if isinstance(data, np.ndarray):
            self.sizes = [a.nbytes for a in self.arrs]
        else:
            self.sizes = balanced_split(nbytes, parts)


def _pow2_below(n: int) -> int:
    return 1 << (n.bit_length() - 1)


def _is_pow2(n: int) -> bool:
    return n & (n - 1) == 0


def _pick(algorithm: str | None, table: dict[str, Any], default: str):
    name = algorithm or default
    try:
        return table[name]
    except KeyError:
        known = ", ".join(sorted(table))
        raise MPIError(f"unknown algorithm {name!r}; known: {known}") from None


class _SubGroup:
    """A comm view over a subset of ranks, renumbered 0..len-1.

    Quacks like a Comm for the algorithm helpers: ``rank``/``size`` in the
    subgroup numbering, messaging forwarded to the parent transport.
    """

    def __init__(self, comm, member_local_ranks: Sequence[int]) -> None:
        self._comm = comm
        self._members = list(member_local_ranks)
        self.rank = self._members.index(comm.rank)
        self.size = len(self._members)
        self.cluster = comm.cluster
        self.world_rank = comm.world_rank
        # Mirror the Comm attributes the hot _isend/_irecv funnel reads.
        self._rank = self.rank
        self._world_ranks = tuple(comm._global(m) for m in self._members)
        self._coll_channel = comm._channel("coll")

    def _global(self, sub_rank: int) -> int:
        return self._comm._global(self._members[sub_rank])

    def _channel(self, kind: str):
        return self._comm._channel(kind)

    def compute(self, **kw):
        return self._comm.compute(**kw)


# ---------------------------------------------------------------------------
# barrier
# ---------------------------------------------------------------------------

def _barrier_dissemination(comm, base_tag: int):
    rank, size = comm.rank, comm.size
    step, rnd = 1, 0
    while step < size:
        dst = (rank + step) % size
        src = (rank - step) % size
        rreq = _irecv(comm, src, base_tag + rnd)
        sreq = _isend(comm, dst, 0, base_tag + rnd)
        yield rreq
        yield sreq
        step <<= 1
        rnd += 1


def _barrier_tree(comm, base_tag: int):
    """Binomial gather to 0 then binomial release (two-phase tree)."""
    yield from _reduce_binomial(comm, base_tag, None, 0, None, 0)
    yield from _bcast_binomial(comm, base_tag + 4096, None, 0, 0)


BARRIER_ALGORITHMS = {
    "dissemination": _barrier_dissemination,
    "tree": _barrier_tree,
}


def barrier(comm, seq: int, algorithm: str | None = None):
    if comm.size == 1:
        return None
        yield  # pragma: no cover - generator marker
    fn = _pick(algorithm, BARRIER_ALGORITHMS, "dissemination")
    yield from fn(comm, seq * _TAGSPAN)


# ---------------------------------------------------------------------------
# bcast
# ---------------------------------------------------------------------------

def _bcast_binomial(comm, base_tag: int, data: Any, nbytes: int, root: int):
    rank, size = comm.rank, comm.size
    vr = (rank - root) % size
    mask = 1
    while mask < size:
        if vr & mask:
            src_v = vr - mask
            res = yield _irecv(comm, (src_v + root) % size, base_tag)
            data = res.data
            break
        mask <<= 1
    mask >>= 1
    reqs = []
    while mask > 0:
        if vr + mask < size:
            dst_v = vr + mask
            reqs.append(_isend(comm, (dst_v + root) % size, nbytes, base_tag, data))
        mask >>= 1
    for r in reqs:
        yield r
    return data


def _bcast_scatter_ring(comm, base_tag: int, data: Any, nbytes: int, root: int):
    """van de Geijn large-message bcast: binomial scatter + ring allgatherv.

    Works for any communicator size.  When a real payload is present the
    whole object travels along the scatter edges (receivers cannot
    reconstruct typed chunks); byte counts — and therefore timing — follow
    the true chunked algorithm either way.
    """
    rank, size = comm.rank, comm.size
    vr = (rank - root) % size
    sizes = balanced_split(nbytes, size)
    offsets = [0]
    for s in sizes:
        offsets.append(offsets[-1] + s)

    # --- binomial scatter: vrank v ends up owning block v ------------------
    have_lo, have_hi = (0, size) if vr == 0 else (0, 0)
    mask = 1
    while mask < size:
        if vr & mask:
            src_v = vr - mask
            res = yield _irecv(comm, (src_v + root) % size, base_tag + mask)
            data = res.data if data is None else data
            have_lo, have_hi = vr, min(vr + mask, size)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vr + mask < size and have_hi > vr + mask:
            lo, hi = vr + mask, have_hi
            nb = offsets[hi] - offsets[lo]
            if nb > 0:
                yield _isend(comm, (lo + root) % size, nb, base_tag + mask, data)
            have_hi = lo
        mask >>= 1

    # --- ring allgatherv of the blocks (indexed by vrank) ------------------
    right = (vr + 1) % size
    left = (vr - 1) % size
    for i in range(size - 1):
        send_block = (vr - i) % size
        yield from _sendrecv(
            comm,
            (right + root) % size,
            (left + root) % size,
            sizes[send_block],
            base_tag + 2048 + i,
            data,
        )
    return data


BCAST_ALGORITHMS = {
    "binomial": _bcast_binomial,
    "scatter_ring": _bcast_scatter_ring,
}


def bcast(comm, seq: int, data: Any, nbytes: int | None, root: int,
          algorithm: str | None = None):
    n = resolve_nbytes(data, nbytes)
    if comm.size == 1:
        return data
        yield  # pragma: no cover
    if algorithm is None:
        algorithm = (
            "binomial" if (n < BCAST_SHORT or comm.size < 8) else "scatter_ring"
        )
    fn = _pick(algorithm, BCAST_ALGORITHMS, "binomial")
    out = yield from fn(comm, seq * _TAGSPAN, data, n, root)
    return out


# ---------------------------------------------------------------------------
# reduce
# ---------------------------------------------------------------------------

def _reduce_binomial(comm, base_tag: int, data: Any, nbytes: int,
                     op: Op | None, root: int):
    rank, size = comm.rank, comm.size
    vr = (rank - root) % size
    acc = data
    mask = 1
    while mask < size:
        if vr & mask == 0:
            src_v = vr | mask
            if src_v < size:
                res = yield _irecv(comm, (src_v + root) % size, base_tag + mask)
                if op is not None:
                    yield from _reduce_compute(comm, nbytes)
                    acc = _combine(op, acc, res.data)
        else:
            dst_v = vr & ~mask
            yield _isend(comm, (dst_v + root) % size, nbytes, base_tag + mask, acc)
            return None
        mask <<= 1
    return acc


def _fold_down(comm, base_tag: int, data: Any, nbytes: int, op: Op):
    """Non-power-of-two preamble.

    The first ``2*rem`` ranks pair up; odd ranks ship their contribution
    to the even partner and drop out.  Returns
    ``(active, survivors, folded_data)`` where ``survivors`` is the
    deterministic list of surviving local ranks (length a power of two).
    """
    size = comm.size
    p2 = _pow2_below(size)
    rem = size - p2
    rank = comm.rank
    acc = data
    if rem and rank < 2 * rem:
        if rank % 2 == 1:
            yield _isend(comm, rank - 1, nbytes, base_tag, acc)
            return False, None, None
        res = yield _irecv(comm, rank + 1, base_tag)
        yield from _reduce_compute(comm, nbytes)
        acc = _combine(op, acc, res.data)
    survivors = [r for r in range(size) if r >= 2 * rem or r % 2 == 0]
    return True, survivors, acc


def _unfold_up(comm, base_tag: int, result: Any, nbytes: int):
    """Send the final result back to the folded-out odd ranks."""
    size = comm.size
    rem = size - _pow2_below(size)
    rank = comm.rank
    if not rem or rank >= 2 * rem:
        return result
    if rank % 2 == 1:
        res = yield _irecv(comm, rank - 1, base_tag)
        return res.data
    yield _isend(comm, rank + 1, nbytes, base_tag, result)
    return result


def _reduce_scatter_halving(sub, base_tag: int, blocks: _Blocks, op: Op):
    """Recursive-halving reduce-scatter over a power-of-two (sub)comm.

    On return, subgroup rank ``g`` holds the fully reduced block ``g``:
    returns ``(g, acc_blocks)`` where ``acc_blocks[g]`` is the value.
    """
    vr, p2 = sub.rank, sub.size
    lo, hi = 0, p2
    acc = list(blocks.arrs)
    sizes = blocks.sizes
    step = 0
    while hi - lo > 1:
        half = (hi - lo) // 2
        mid = lo + half
        if vr < mid:
            partner = vr + half
            keep_lo, keep_hi = lo, mid
            give_lo, give_hi = mid, hi
        else:
            partner = vr - half
            keep_lo, keep_hi = mid, hi
            give_lo, give_hi = lo, mid
        send_nb = sum(sizes[give_lo:give_hi])
        recv_nb = sum(sizes[keep_lo:keep_hi])
        payload = None
        if any(a is not None for a in acc[give_lo:give_hi]):
            payload = acc[give_lo:give_hi]
        res = yield from _sendrecv(sub, partner, partner, send_nb,
                                   base_tag + step, payload)
        yield from _reduce_compute(sub, recv_nb)
        if res.data is not None:
            for j, i in enumerate(range(keep_lo, keep_hi)):
                acc[i] = _combine(op, acc[i], res.data[j])
        lo, hi = keep_lo, keep_hi
        step += 1
    return lo, acc


def _gather_segments_binomial(sub, base_tag: int, acc: list,
                              sizes: list[int]):
    """Reverse-halving gather of per-rank segments to subgroup rank 0.

    Returns the full block list at rank 0, ``None`` elsewhere.
    """
    vr, p2 = sub.rank, sub.size
    seg_lo, seg_hi = vr, vr + 1
    mask = 1
    while mask < p2:
        if vr & mask:
            dst = vr - mask
            nb = sum(sizes[seg_lo:seg_hi])
            payload = None
            if any(a is not None for a in acc[seg_lo:seg_hi]):
                payload = (seg_lo, acc[seg_lo:seg_hi])
            yield _isend(sub, dst, nb, base_tag + mask, payload)
            return None
        src = vr + mask
        if src < p2:
            res = yield _irecv(sub, src, base_tag + mask)
            if res.data is not None:
                in_lo, in_blocks = res.data
                for j, i in enumerate(range(in_lo, in_lo + len(in_blocks))):
                    acc[i] = in_blocks[j]
            seg_hi = min(seg_hi + mask, p2)
        mask <<= 1
    return acc


def _reduce_rabenseifner(comm, base_tag: int, data: Any, nbytes: int, op: Op,
                         root: int):
    """Large-message reduce: fold to 2^m, halving reduce-scatter, binomial
    gather to survivor 0, then forward to ``root`` if it differs."""
    active, survivors, acc = yield from _fold_down(comm, base_tag, data,
                                                   nbytes, op)
    result = None
    if active:
        sub = _SubGroup(comm, survivors)
        blocks = _Blocks(acc, nbytes, sub.size)
        seg_lo, accb = yield from _reduce_scatter_halving(
            sub, base_tag + 16, blocks, op
        )
        full = yield from _gather_segments_binomial(
            sub, base_tag + 2048, accb, blocks.sizes
        )
        if sub.rank == 0 and full is not None:
            arrs = [a for a in full if a is not None]
            result = np.concatenate(arrs) if arrs else None
    # survivors is None on folded-out ranks; survivor 0 is always local
    # rank 0 by construction (rank 0 is even), so the gathered result
    # lands at rank 0 and is forwarded when the root differs.
    if root != 0:
        if comm.rank == 0:
            yield _isend(comm, root, nbytes, base_tag + 4096, result)
            return None
        if comm.rank == root:
            res = yield _irecv(comm, 0, base_tag + 4096)
            return res.data
        return None
    return result if comm.rank == 0 else None


REDUCE_ALGORITHMS = {
    "binomial": _reduce_binomial,
    "rabenseifner": _reduce_rabenseifner,
}


def reduce(comm, seq: int, data: Any, nbytes: int | None, op: Op, root: int,
           algorithm: str | None = None):
    n = resolve_nbytes(data, nbytes)
    if comm.size == 1:
        return data
        yield  # pragma: no cover
    if algorithm is None:
        algorithm = "binomial" if n < REDUCE_SHORT else "rabenseifner"
    fn = _pick(algorithm, REDUCE_ALGORITHMS, "binomial")
    out = yield from fn(comm, seq * _TAGSPAN, data, n, op, root)
    return out


# ---------------------------------------------------------------------------
# allreduce
# ---------------------------------------------------------------------------

def _allreduce_recursive_doubling(comm, base_tag: int, data: Any, nbytes: int,
                                  op: Op):
    active, survivors, acc = yield from _fold_down(comm, base_tag, data,
                                                   nbytes, op)
    if active:
        sub = _SubGroup(comm, survivors)
        gidx, p2 = sub.rank, sub.size
        mask, step = 1, 0
        while mask < p2:
            partner = gidx ^ mask
            res = yield from _sendrecv(sub, partner, partner, nbytes,
                                       base_tag + 16 + step, acc)
            yield from _reduce_compute(comm, nbytes)
            acc = _combine(op, acc, res.data)
            mask <<= 1
            step += 1
    else:
        acc = None
    out = yield from _unfold_up(comm, base_tag + 1, acc, nbytes)
    return out


def _allreduce_rabenseifner(comm, base_tag: int, data: Any, nbytes: int,
                            op: Op):
    """Reduce-scatter (recursive halving) + allgather (recursive doubling)."""
    active, survivors, acc = yield from _fold_down(comm, base_tag, data,
                                                   nbytes, op)
    if active:
        sub = _SubGroup(comm, survivors)
        gidx, p2 = sub.rank, sub.size
        blocks = _Blocks(acc, nbytes, p2)
        seg_lo, accb = yield from _reduce_scatter_halving(
            sub, base_tag + 16, blocks, op
        )
        # Recursive-doubling allgather of the reduced blocks: at each step
        # ranks hold an aligned range of width ``mask`` and exchange it
        # with the partner's adjacent aligned range.
        mask, step = 1, 0
        while mask < p2:
            partner = gidx ^ mask
            lo = (gidx // mask) * mask
            other_lo = (partner // mask) * mask
            send_nb = sum(blocks.sizes[lo:lo + mask])
            payload = None
            if any(a is not None for a in accb[lo:lo + mask]):
                payload = accb[lo:lo + mask]
            res = yield from _sendrecv(sub, partner, partner, send_nb,
                                       base_tag + 1024 + step, payload)
            if res.data is not None:
                for j, i in enumerate(range(other_lo, other_lo + mask)):
                    accb[i] = res.data[j]
            mask <<= 1
            step += 1
        arrs = [a for a in accb if a is not None]
        acc = np.concatenate(arrs) if arrs else None
    else:
        acc = None
    out = yield from _unfold_up(comm, base_tag + 1, acc, nbytes)
    return out


ALLREDUCE_ALGORITHMS = {
    "recursive_doubling": _allreduce_recursive_doubling,
    "rabenseifner": _allreduce_rabenseifner,
}


def allreduce(comm, seq: int, data: Any, nbytes: int | None, op: Op,
              algorithm: str | None = None):
    n = resolve_nbytes(data, nbytes)
    if comm.size == 1:
        return data
        yield  # pragma: no cover
    if algorithm is None:
        algorithm = "recursive_doubling" if n < ALLREDUCE_SHORT else "rabenseifner"
    fn = _pick(algorithm, ALLREDUCE_ALGORITHMS, "recursive_doubling")
    out = yield from fn(comm, seq * _TAGSPAN, data, n, op)
    return out


# ---------------------------------------------------------------------------
# gather / scatter
# ---------------------------------------------------------------------------

def gather(comm, seq: int, data: Any, nbytes: int | None, root: int):
    """Binomial gather; root returns the list of contributions by rank."""
    n = resolve_nbytes(data, nbytes)
    rank, size = comm.rank, comm.size
    base_tag = seq * _TAGSPAN
    if size == 1:
        return [data]
        yield  # pragma: no cover
    vr = (rank - root) % size
    bag = {vr: data}
    mask = 1
    while mask < size:
        if vr & mask == 0:
            src_v = vr | mask
            if src_v < size:
                res = yield _irecv(comm, (src_v + root) % size, base_tag + mask)
                if res.data is not None:
                    bag.update(res.data)
        else:
            dst_v = vr & ~mask
            count = min(mask, size - vr)
            yield _isend(comm, (dst_v + root) % size, n * count,
                         base_tag + mask, bag)
            return None
        mask <<= 1
    return [bag.get((r - root) % size) for r in range(size)]


def scatter(comm, seq: int, datas: Sequence[Any] | None, nbytes: int | None,
            root: int):
    """Binomial scatter; returns this rank's piece."""
    rank, size = comm.rank, comm.size
    base_tag = seq * _TAGSPAN
    if nbytes is None:
        if datas is None:
            raise MPIError("scatter needs datas or nbytes")
        nbytes = max((payload_nbytes(d) for d in datas), default=0)
    if size == 1:
        return datas[0] if datas else None
        yield  # pragma: no cover
    vr = (rank - root) % size
    if vr == 0:
        bag = {v: (datas[(v + root) % size] if datas is not None else None)
               for v in range(size)}
        have_hi = size
    else:
        bag = {}
        have_hi = 0
        mask = 1
        while mask < size:
            if vr & mask:
                src_v = vr - mask
                res = yield _irecv(comm, (src_v + root) % size, base_tag + mask)
                if res.data is not None:
                    bag = res.data
                have_hi = min(vr + mask, size)
                break
            mask <<= 1
    # forwarding phase (root enters with the full bag)
    mask = 1
    while mask < size and not (vr & mask):
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vr + mask < size and have_hi > vr + mask:
            lo, hi = vr + mask, have_hi
            sub = {v: bag.get(v) for v in range(lo, hi)}
            yield _isend(comm, (lo + root) % size, nbytes * (hi - lo),
                         base_tag + mask, sub)
            have_hi = lo
        mask >>= 1
    return bag.get(vr)


# ---------------------------------------------------------------------------
# allgather / allgatherv
# ---------------------------------------------------------------------------

def _allgather_ring(comm, base_tag: int, items: list, sizes: list[int]):
    rank, size = comm.rank, comm.size
    right = (rank + 1) % size
    left = (rank - 1) % size
    for i in range(size - 1):
        send_block = (rank - i) % size
        recv_block = (rank - i - 1) % size
        res = yield from _sendrecv(comm, right, left, sizes[send_block],
                                   base_tag + i, items[send_block])
        items[recv_block] = res.data
    return items


def _allgather_recursive_doubling(comm, base_tag: int, items: list,
                                  sizes: list[int]):
    rank, size = comm.rank, comm.size
    if not _is_pow2(size):
        return (yield from _allgather_bruck(comm, base_tag, items, sizes))
    mask, step = 1, 0
    while mask < size:
        partner = rank ^ mask
        lo = (rank // mask) * mask
        other_lo = (partner // mask) * mask
        send_nb = sum(sizes[lo:lo + mask])
        payload = {i: items[i] for i in range(lo, lo + mask)
                   if items[i] is not None} or None
        res = yield from _sendrecv(comm, partner, partner, send_nb,
                                   base_tag + step, payload)
        if res.data is not None:
            for i, v in res.data.items():
                items[i] = v
        mask <<= 1
        step += 1
    return items


def _allgather_bruck(comm, base_tag: int, items: list, sizes: list[int]):
    """Bruck allgather: any size, ceil(log2 P) steps, doubling blocks."""
    rank, size = comm.rank, comm.size
    held = [(rank, items[rank])]
    pof2, step = 1, 0
    while pof2 < size:
        send_to = (rank - pof2) % size
        recv_from = (rank + pof2) % size
        count = min(pof2, size - pof2)
        chunk = held[:count]
        send_nb = sum(sizes[b] for (b, _v) in chunk)
        res = yield from _sendrecv(comm, send_to, recv_from, send_nb,
                                   base_tag + step, chunk)
        held.extend(res.data or [])
        pof2 <<= 1
        step += 1
    for b, v in held[:size]:
        items[b] = v
    return items


ALLGATHER_ALGORITHMS = {
    "ring": _allgather_ring,
    "recursive_doubling": _allgather_recursive_doubling,
    "bruck": _allgather_bruck,
}


def allgather(comm, seq: int, data: Any, nbytes: int | None,
              algorithm: str | None = None):
    n = resolve_nbytes(data, nbytes)
    size = comm.size
    if size == 1:
        return [data]
        yield  # pragma: no cover
    if algorithm is None:
        if n * size <= ALLGATHER_TOTAL_SHORT:
            algorithm = "recursive_doubling" if _is_pow2(size) else "bruck"
        else:
            algorithm = "ring"
    items: list[Any] = [None] * size
    items[comm.rank] = data
    sizes = [n] * size
    fn = _pick(algorithm, ALLGATHER_ALGORITHMS, "ring")
    out = yield from fn(comm, seq * _TAGSPAN, items, sizes)
    return out


def allgatherv(comm, seq: int, data: Any, counts: Sequence[int] | None,
               algorithm: str | None = None):
    size = comm.size
    if counts is None:
        raise MPIError("allgatherv requires per-rank counts")
    if len(counts) != size:
        raise MPIError(f"counts has {len(counts)} entries for size {size}")
    if size == 1:
        return [data]
        yield  # pragma: no cover
    items: list[Any] = [None] * size
    items[comm.rank] = data
    sizes = [int(c) for c in counts]
    if algorithm is None:
        # Same tuning rule as allgather, on the true total volume.
        if sum(sizes) <= ALLGATHER_TOTAL_SHORT:
            algorithm = "recursive_doubling" if _is_pow2(size) else "bruck"
        else:
            algorithm = "ring"
    fn = _pick(algorithm, ALLGATHER_ALGORITHMS, "ring")
    out = yield from fn(comm, seq * _TAGSPAN, items, sizes)
    return out


# ---------------------------------------------------------------------------
# alltoall / alltoallv
# ---------------------------------------------------------------------------

def _alltoall_pairwise(comm, base_tag: int, out_items: list, out_sizes: list):
    rank, size = comm.rank, comm.size
    in_items = [None] * size
    in_items[rank] = out_items[rank]
    for i in range(1, size):
        dst = (rank + i) % size
        src = (rank - i) % size
        res = yield from _sendrecv(comm, dst, src, out_sizes[dst],
                                   base_tag + i, out_items[dst])
        in_items[src] = res.data
    return in_items


def _alltoall_bruck(comm, base_tag: int, out_items: list, out_sizes: list):
    """Bruck alltoall: log steps of aggregated forwarding.

    Items travel as ``(dest, origin, payload)`` triples; carrying the
    origin replaces the index bookkeeping of the buffer-based original
    and has no timing effect.
    """
    rank, size = comm.rank, comm.size
    result = [None] * size
    result[rank] = out_items[rank]
    held = [(d, rank, out_items[d]) for d in range(size) if d != rank]
    pof2, step = 1, 0
    while pof2 < size:
        send_to = (rank + pof2) % size
        recv_from = (rank - pof2) % size
        moving = [t for t in held if ((t[0] - rank) % size) & pof2]
        held = [t for t in held if not ((t[0] - rank) % size) & pof2]
        send_nb = sum(out_sizes[t[0]] for t in moving)
        res = yield from _sendrecv(comm, send_to, recv_from, send_nb,
                                   base_tag + step, moving)
        for d, origin, v in res.data or []:
            if d == rank:
                result[origin] = v
            else:
                held.append((d, origin, v))
        pof2 <<= 1
        step += 1
    return result


ALLTOALL_ALGORITHMS = {
    "pairwise": _alltoall_pairwise,
    "bruck": _alltoall_bruck,
}


def alltoall(comm, seq: int, datas: Sequence[Any] | None, nbytes: int | None,
             algorithm: str | None = None):
    size = comm.size
    if datas is not None and len(datas) != size:
        raise MPIError(f"alltoall needs {size} send items, got {len(datas)}")
    if nbytes is None:
        if datas is None:
            raise MPIError("alltoall needs datas or nbytes")
        nbytes = max((payload_nbytes(d) for d in datas), default=0)
    if size == 1:
        return [datas[0] if datas else None]
        yield  # pragma: no cover
    out_items = list(datas) if datas is not None else [None] * size
    out_sizes = [int(nbytes)] * size
    if algorithm is None:
        algorithm = "bruck" if nbytes <= ALLTOALL_SHORT else "pairwise"
    fn = _pick(algorithm, ALLTOALL_ALGORITHMS, "pairwise")
    out = yield from fn(comm, seq * _TAGSPAN, out_items, out_sizes)
    return out


def alltoallv(comm, seq: int, datas: Sequence[Any] | None,
              counts: Sequence[int] | None, algorithm: str | None = None):
    size = comm.size
    if counts is None:
        if datas is None:
            raise MPIError("alltoallv needs datas or counts")
        counts = [payload_nbytes(d) for d in datas]
    if len(counts) != size:
        raise MPIError(f"counts has {len(counts)} entries for size {size}")
    if size == 1:
        return [datas[0] if datas else None]
        yield  # pragma: no cover
    out_items = list(datas) if datas is not None else [None] * size
    out_sizes = [int(c) for c in counts]
    out = yield from _alltoall_pairwise(comm, seq * _TAGSPAN, out_items,
                                        out_sizes)
    return out


# ---------------------------------------------------------------------------
# reduce_scatter
# ---------------------------------------------------------------------------

def _reduce_scatter_rechalving(comm, base_tag: int, data: Any, nbytes: int,
                               op: Op):
    if not _is_pow2(comm.size):
        raise MPIError("recursive_halving reduce_scatter needs 2^k ranks")
    sub = _SubGroup(comm, list(range(comm.size)))
    blocks = _Blocks(data, nbytes, comm.size)
    seg_lo, acc = yield from _reduce_scatter_halving(sub, base_tag, blocks, op)
    return acc[seg_lo]


def _reduce_scatter_via_reduce(comm, base_tag: int, data: Any, nbytes: int,
                               op: Op):
    """Rabenseifner reduce to 0 + binomial scatterv (any size)."""
    size = comm.size
    sizes = balanced_split(nbytes, size)
    total = yield from _reduce_rabenseifner(comm, base_tag, data, nbytes, op, 0)
    pieces = split_payload(total, size) if comm.rank == 0 else None
    my = yield from scatter(comm, (base_tag // _TAGSPAN) * 2 + 1, pieces,
                            max(sizes), 0)
    return my


def _reduce_scatter_pairwise(comm, base_tag: int, data: Any, nbytes: int,
                             op: Op):
    """P-1 steps; each step exchanges one block and folds it in."""
    rank, size = comm.rank, comm.size
    blocks = _Blocks(data, nbytes, size)
    acc = blocks.arrs[rank]
    for i in range(1, size):
        dst = (rank + i) % size
        src = (rank - i) % size
        res = yield from _sendrecv(comm, dst, src, blocks.sizes[dst],
                                   base_tag + i, blocks.arrs[dst])
        yield from _reduce_compute(comm, blocks.sizes[rank])
        acc = _combine(op, acc, res.data)
    return acc


REDUCE_SCATTER_ALGORITHMS = {
    "recursive_halving": _reduce_scatter_rechalving,
    "reduce_scatterv": _reduce_scatter_via_reduce,
    "pairwise": _reduce_scatter_pairwise,
}


def reduce_scatter(comm, seq: int, data: Any, nbytes: int | None, op: Op,
                   algorithm: str | None = None):
    n = resolve_nbytes(data, nbytes)
    size = comm.size
    if size == 1:
        return data
        yield  # pragma: no cover
    if algorithm is None:
        algorithm = "recursive_halving" if _is_pow2(size) else "reduce_scatterv"
    fn = _pick(algorithm, REDUCE_SCATTER_ALGORITHMS, "recursive_halving")
    out = yield from fn(comm, seq * _TAGSPAN, data, n, op)
    return out


# ---------------------------------------------------------------------------
# scan / exscan
# ---------------------------------------------------------------------------

def _scan_recursive_doubling(comm, base_tag: int, data: Any, nbytes: int,
                             op: Op, inclusive: bool):
    """Prefix reduction by recursive doubling (any communicator size).

    Rank r ends with op over ranks [0, r] (inclusive) or [0, r)
    (exclusive; rank 0 gets ``None``).
    """
    rank, size = comm.rank, comm.size
    acc = data            # running op over a contiguous rank range
    prefix = data if inclusive else None  # op over ranks [0, r] or [0, r)
    if not inclusive:
        prefix = None
    mask, step = 1, 0
    while mask < size:
        partner = rank ^ mask
        if partner < size:
            res = yield from _sendrecv(comm, partner, partner, nbytes,
                                       base_tag + step, acc)
            yield from _reduce_compute(comm, nbytes)
            incoming = res.data
            if partner < rank:
                # partner's range lies entirely below mine
                if inclusive:
                    prefix = _combine(op, incoming, prefix)
                else:
                    prefix = incoming if prefix is None else _combine(
                        op, incoming, prefix)
            acc = _combine(op, acc, incoming)
        mask <<= 1
        step += 1
    return prefix


SCAN_ALGORITHMS = {"recursive_doubling": _scan_recursive_doubling}


def scan(comm, seq: int, data: Any, nbytes: int | None, op: Op,
         algorithm: str | None = None):
    n = resolve_nbytes(data, nbytes)
    if comm.size == 1:
        return data
        yield  # pragma: no cover
    fn = _pick(algorithm, SCAN_ALGORITHMS, "recursive_doubling")
    out = yield from fn(comm, seq * _TAGSPAN, data, n, op, True)
    return out


def exscan(comm, seq: int, data: Any, nbytes: int | None, op: Op,
           algorithm: str | None = None):
    n = resolve_nbytes(data, nbytes)
    if comm.size == 1:
        return None
        yield  # pragma: no cover
    fn = _pick(algorithm, SCAN_ALGORITHMS, "recursive_doubling")
    out = yield from fn(comm, seq * _TAGSPAN, data, n, op, False)
    return out


# ---------------------------------------------------------------------------
# gatherv / scatterv
# ---------------------------------------------------------------------------

def gatherv(comm, seq: int, data: Any, counts: Sequence[int] | None,
            root: int):
    """Variable-count gather (binomial tree carrying per-rank sizes)."""
    rank, size = comm.rank, comm.size
    if counts is None:
        raise MPIError("gatherv requires per-rank counts")
    if len(counts) != size:
        raise MPIError(f"counts has {len(counts)} entries for size {size}")
    base_tag = seq * _TAGSPAN
    if size == 1:
        return [data]
        yield  # pragma: no cover
    vr = (rank - root) % size
    bag = {vr: data}
    vsize = lambda v: int(counts[(v + root) % size])  # noqa: E731
    mask = 1
    while mask < size:
        if vr & mask == 0:
            src_v = vr | mask
            if src_v < size:
                res = yield _irecv(comm, (src_v + root) % size,
                                   base_tag + mask)
                if res.data is not None:
                    bag.update(res.data)
        else:
            dst_v = vr & ~mask
            nb = sum(vsize(v) for v in range(vr, min(vr + mask, size)))
            yield _isend(comm, (dst_v + root) % size, nb, base_tag + mask,
                         bag)
            return None
        mask <<= 1
    return [bag.get((r - root) % size) for r in range(size)]


def scatterv(comm, seq: int, datas: Sequence[Any] | None,
             counts: Sequence[int] | None, root: int):
    """Variable-count scatter (binomial tree carrying per-rank sizes)."""
    rank, size = comm.rank, comm.size
    if counts is None:
        raise MPIError("scatterv requires per-rank counts")
    if len(counts) != size:
        raise MPIError(f"counts has {len(counts)} entries for size {size}")
    base_tag = seq * _TAGSPAN
    if size == 1:
        return datas[0] if datas else None
        yield  # pragma: no cover
    vr = (rank - root) % size
    vsize = lambda v: int(counts[(v + root) % size])  # noqa: E731
    if vr == 0:
        bag = {v: (datas[(v + root) % size] if datas is not None else None)
               for v in range(size)}
        have_hi = size
    else:
        bag = {}
        have_hi = 0
        mask = 1
        while mask < size:
            if vr & mask:
                src_v = vr - mask
                res = yield _irecv(comm, (src_v + root) % size,
                                   base_tag + mask)
                if res.data is not None:
                    bag = res.data
                have_hi = min(vr + mask, size)
                break
            mask <<= 1
    mask = 1
    while mask < size and not (vr & mask):
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vr + mask < size and have_hi > vr + mask:
            lo, hi = vr + mask, have_hi
            sub = {v: bag.get(v) for v in range(lo, hi)}
            nb = sum(vsize(v) for v in range(lo, hi))
            yield _isend(comm, (lo + root) % size, nb, base_tag + mask, sub)
            have_hi = lo
        mask >>= 1
    return bag.get(vr)
