"""Reduction operators and message descriptors for the simulated MPI.

Payloads are optional: a message always has a *logical* byte count (which
drives timing) and may carry a real NumPy array (which lets the test suite
validate algorithm correctness).  Reduction operators behave like their
MPI counterparts on NumPy arrays and on Python scalars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..core.errors import MPIError

#: Wildcards, mirroring MPI.
ANY_SOURCE = -1
ANY_TAG = -1


@dataclass(frozen=True)
class Op:
    """A reduction operator (commutative and associative)."""

    name: str
    fn: Callable[[Any, Any], Any]

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def __repr__(self) -> str:
        return f"<Op {self.name}>"


def _sum(a, b):
    return a + b


def _prod(a, b):
    return a * b


def _max(a, b):
    return np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b)


def _min(a, b):
    return np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b)


def _bxor(a, b):
    return np.bitwise_xor(a, b) if isinstance(a, np.ndarray) else a ^ b


def _band(a, b):
    return np.bitwise_and(a, b) if isinstance(a, np.ndarray) else a & b


def _bor(a, b):
    return np.bitwise_or(a, b) if isinstance(a, np.ndarray) else a | b


SUM = Op("SUM", _sum)
PROD = Op("PROD", _prod)
MAX = Op("MAX", _max)
MIN = Op("MIN", _min)
BXOR = Op("BXOR", _bxor)
BAND = Op("BAND", _band)
BOR = Op("BOR", _bor)

OPS = {op.name: op for op in (SUM, PROD, MAX, MIN, BXOR, BAND, BOR)}


def payload_nbytes(data: Any) -> int:
    """Logical size of a payload object."""
    if data is None:
        return 0
    if isinstance(data, np.ndarray):
        return int(data.nbytes)
    if isinstance(data, (bytes, bytearray, memoryview)):
        return len(data)
    if isinstance(data, (int, float, complex, np.generic)):
        return 8
    raise MPIError(
        f"cannot infer nbytes for payload of type {type(data).__name__}; "
        "pass nbytes explicitly"
    )


def resolve_nbytes(data: Any, nbytes: int | None) -> int:
    """Combine an optional payload and an optional explicit size."""
    if nbytes is None:
        if data is None:
            raise MPIError("either data or nbytes must be given")
        return payload_nbytes(data)
    if nbytes < 0:
        raise MPIError(f"nbytes must be >= 0, got {nbytes}")
    return int(nbytes)


def copy_payload(data: Any) -> Any:
    """Copy semantics for delivered payloads (MPI messages are values)."""
    if isinstance(data, np.ndarray):
        return data.copy()
    return data


@dataclass(frozen=True)
class RecvResult:
    """What a completed receive hands back."""

    data: Any
    source: int
    tag: int
    nbytes: int
