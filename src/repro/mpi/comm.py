"""The communicator: the mpi4py-flavoured face of the simulated MPI.

Rank programs receive a :class:`Comm` bound to their rank.  Blocking calls
are generators (``data = yield from comm.recv(...)``); non-blocking calls
return request events that can be awaited with ``yield from comm.wait(r)``
or ``yield from comm.waitall(rs)``.

Collective operations live in :mod:`repro.mpi.collectives` and are exposed
here as methods; every collective call advances a per-communicator
sequence number used to keep successive collectives' messages from
cross-matching (the simulated analogue of MPI context ids).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..core.engine import Event
from ..core.errors import MPIError
from .datatypes import ANY_SOURCE, ANY_TAG, SUM, Op, RecvResult, resolve_nbytes
from . import collectives as _coll


class Comm:
    """A communicator handle for one rank."""

    def __init__(
        self,
        cluster: Any,
        rank: int,
        world_ranks: tuple[int, ...],
        comm_key: Any = "world",
    ) -> None:
        if rank < 0 or rank >= len(world_ranks):
            raise MPIError(f"rank {rank} outside communicator of size {len(world_ranks)}")
        self.cluster = cluster
        self._rank = rank
        self._world_ranks = world_ranks
        self._comm_key = comm_key
        self._coll_seq = 0
        self._split_count = 0
        # Pre-built channels: the hot messaging paths send one message
        # per call through these, so they must not allocate.
        self._coll_channel = (comm_key, "coll")
        self._p2p_channel = (comm_key, "p2p")
        # World ranks are usually the identity mapping (COMM_WORLD and
        # order-preserving duplicates); then _localise is a no-op and
        # the linear index() scan per received message is skipped.
        self._identity = all(w == i for i, w in enumerate(world_ranks))

    # -- identity -----------------------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's rank within the communicator."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return len(self._world_ranks)

    @property
    def world_rank(self) -> int:
        """This rank's id in the transport (COMM_WORLD) numbering."""
        return self._world_ranks[self._rank]

    def node_of(self, rank: int) -> int:
        """SMP node hosting a (local) rank — used by topology-aware code."""
        return self.cluster.placement[self._world_ranks[rank]]

    def _global(self, rank: int) -> int:
        if not (0 <= rank < self.size):
            raise MPIError(f"rank {rank} outside communicator of size {self.size}")
        return self._world_ranks[rank]

    def _channel(self, kind: str) -> tuple:
        return (self._comm_key, kind)

    # -- point-to-point -----------------------------------------------------------

    def isend(
        self,
        dest: int,
        data: Any = None,
        nbytes: int | None = None,
        tag: int = 0,
    ) -> Event:
        """Non-blocking send; returns the completion request (Event)."""
        n = resolve_nbytes(data, nbytes)
        return self.cluster.transport.isend(
            self._world_ranks[self._rank], self._global(dest), n, tag, data,
            self._p2p_channel
        )

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Event:
        """Non-blocking receive; the request's value is a RecvResult."""
        gsrc = source if source == ANY_SOURCE else self._global(source)
        return self.cluster.transport.irecv(
            self._world_ranks[self._rank], gsrc, tag, self._p2p_channel
        )

    def send(self, dest: int, data: Any = None, nbytes: int | None = None,
             tag: int = 0):
        """Blocking send (generator)."""
        req = self.isend(dest, data, nbytes, tag)
        yield req

    def issend(self, dest: int, data: Any = None, nbytes: int | None = None,
               tag: int = 0) -> Event:
        """Non-blocking synchronous send: always rendezvous, so the
        request only completes once the matching receive exists."""
        n = resolve_nbytes(data, nbytes)
        return self.cluster.transport.isend(
            self.world_rank, self._global(dest), n, tag, data,
            self._channel("p2p"), force_rendezvous=True,
        )

    def ssend(self, dest: int, data: Any = None, nbytes: int | None = None,
              tag: int = 0):
        """Blocking synchronous send (generator; MPI_Ssend)."""
        req = self.issend(dest, data, nbytes, tag)
        yield req

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Non-blocking, non-consuming envelope check (MPI_Iprobe).

        Returns ``(source_local, tag, nbytes)`` or ``None``.  Plain call,
        not a generator — probing costs no virtual time.
        """
        gsrc = source if source == ANY_SOURCE else self._global(source)
        hit = self.cluster.transport.probe(
            self.world_rank, gsrc, tag, self._channel("p2p")
        )
        if hit is None:
            return None
        gsource, t, n = hit
        return self._world_ranks.index(gsource), t, n

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              poll_interval: float = 1e-6):
        """Blocking probe (generator): waits until an envelope matches."""
        while True:
            hit = self.iprobe(source, tag)
            if hit is not None:
                return hit
            yield from self.elapse(poll_interval)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive (generator); returns a :class:`RecvResult`."""
        req = self.irecv(source, tag)
        result: RecvResult = yield req
        return self._localise(result)

    def sendrecv(
        self,
        dest: int,
        source: int,
        data: Any = None,
        nbytes: int | None = None,
        sendtag: int = 0,
        recvtag: int | None = None,
    ):
        """Concurrent send+recv (generator); returns the :class:`RecvResult`."""
        if recvtag is None:
            recvtag = sendtag
        rreq = self.irecv(source, recvtag)
        sreq = self.isend(dest, data, nbytes, sendtag)
        result: RecvResult = yield rreq
        yield sreq
        return self._localise(result)

    def wait(self, request: Event):
        """Wait on one request (generator); returns its value."""
        result = yield request
        if isinstance(result, RecvResult):
            return self._localise(result)
        return result

    def waitall(self, requests: Sequence[Event]):
        """Wait on many requests (generator); returns their values in order."""
        out = []
        for req in requests:
            val = yield req
            if isinstance(val, RecvResult):
                val = self._localise(val)
            out.append(val)
        return out

    def _localise(self, result: RecvResult) -> RecvResult:
        """Map the transport's world source rank back into this comm."""
        if self._identity or result.source == ANY_SOURCE:
            return result
        try:
            local = self._world_ranks.index(result.source)
        except ValueError:  # message from outside this comm cannot happen
            raise MPIError("received message from outside communicator")
        if local == result.source:
            return result
        return RecvResult(result.data, local, result.tag, result.nbytes)

    # -- compute ---------------------------------------------------------------------

    def compute(self, flops: float = 0.0, nbytes: float = 0.0,
                kernel: str = "generic"):
        """Charge roofline compute time to this rank (generator)."""
        t = self.cluster.compute_time(flops, nbytes, kernel)
        engine = self.cluster.engine
        end = self.cluster.transport.charge_cpu(self.world_rank, engine.now, t)
        tracer = self.cluster.tracer
        if tracer.enabled:
            from ..core.trace import ComputeRecord

            tracer.record_compute(ComputeRecord(
                rank=self.world_rank,
                flops=flops,
                bytes_moved=nbytes,
                kernel=kernel,
                t_start=end - t,
                t_end=end,
            ))
        yield end - engine.now

    def elapse(self, seconds: float):
        """Charge a fixed delay to this rank (generator)."""
        end = self.cluster.transport.charge_cpu(
            self.world_rank, self.cluster.engine.now, seconds
        )
        yield end - self.cluster.engine.now

    @property
    def now(self) -> float:
        """Current virtual time (the simulated MPI_Wtime)."""
        return self.cluster.engine.now

    # -- collectives -------------------------------------------------------------

    def _next_seq(self) -> int:
        self._coll_seq += 1
        return self._coll_seq

    def barrier(self, algorithm: str | None = None):
        """Collective barrier (generator)."""
        return _coll.barrier(self, self._next_seq(), algorithm)

    def bcast(self, data: Any = None, nbytes: int | None = None, root: int = 0,
              algorithm: str | None = None):
        """Broadcast from ``root`` (generator); every rank returns the data."""
        return _coll.bcast(self, self._next_seq(), data, nbytes, root, algorithm)

    def reduce(self, data: Any = None, nbytes: int | None = None, op: Op = SUM,
               root: int = 0, algorithm: str | None = None):
        """Reduce to ``root`` (generator); non-roots return ``None``."""
        return _coll.reduce(self, self._next_seq(), data, nbytes, op, root, algorithm)

    def allreduce(self, data: Any = None, nbytes: int | None = None, op: Op = SUM,
                  algorithm: str | None = None):
        """Reduce-to-all (generator); every rank returns the result."""
        return _coll.allreduce(self, self._next_seq(), data, nbytes, op, algorithm)

    def gather(self, data: Any = None, nbytes: int | None = None, root: int = 0):
        """Gather to ``root`` (generator); root returns the list by rank."""
        return _coll.gather(self, self._next_seq(), data, nbytes, root)

    def scatter(self, datas: Sequence[Any] | None = None,
                nbytes: int | None = None, root: int = 0):
        """Scatter from ``root`` (generator); returns this rank's piece."""
        return _coll.scatter(self, self._next_seq(), datas, nbytes, root)

    def allgather(self, data: Any = None, nbytes: int | None = None,
                  algorithm: str | None = None):
        """Gather-to-all (generator); returns the list ordered by rank."""
        return _coll.allgather(self, self._next_seq(), data, nbytes, algorithm)

    def allgatherv(self, data: Any = None, counts: Sequence[int] | None = None,
                   algorithm: str | None = None):
        """Variable-count gather-to-all (generator)."""
        return _coll.allgatherv(self, self._next_seq(), data, counts, algorithm)

    def alltoall(self, datas: Sequence[Any] | None = None,
                 nbytes: int | None = None, algorithm: str | None = None):
        """Personalised all-to-all (generator); returns items by source."""
        return _coll.alltoall(self, self._next_seq(), datas, nbytes, algorithm)

    def alltoallv(self, datas: Sequence[Any] | None = None,
                  counts: Sequence[int] | None = None,
                  algorithm: str | None = None):
        """Variable-size all-to-all (generator)."""
        return _coll.alltoallv(self, self._next_seq(), datas, counts, algorithm)

    def reduce_scatter(self, data: Any = None, nbytes: int | None = None,
                       op: Op = SUM, algorithm: str | None = None):
        """Reduce then scatter blocks (generator); returns my block."""
        return _coll.reduce_scatter(self, self._next_seq(), data, nbytes, op, algorithm)

    def scan(self, data: Any = None, nbytes: int | None = None,
             op: Op = SUM, algorithm: str | None = None):
        """Inclusive prefix reduction (generator)."""
        return _coll.scan(self, self._next_seq(), data, nbytes, op, algorithm)

    def exscan(self, data: Any = None, nbytes: int | None = None,
               op: Op = SUM, algorithm: str | None = None):
        """Exclusive prefix reduction (generator); rank 0 gets ``None``."""
        return _coll.exscan(self, self._next_seq(), data, nbytes, op, algorithm)

    def gatherv(self, data: Any = None, counts: Sequence[int] | None = None,
                root: int = 0):
        """Variable-count gather to ``root`` (generator)."""
        return _coll.gatherv(self, self._next_seq(), data, counts, root)

    def scatterv(self, datas: Sequence[Any] | None = None,
                 counts: Sequence[int] | None = None, root: int = 0):
        """Variable-count scatter from ``root`` (generator)."""
        return _coll.scatterv(self, self._next_seq(), datas, counts, root)

    # -- communicator management ---------------------------------------------------

    def split(self, color: int, key: int | None = None):
        """Collective split (generator); returns the new :class:`Comm`.

        Ranks passing the same ``color`` end up in the same child
        communicator, ordered by ``key`` (then by parent rank).
        """
        if key is None:
            key = self.rank
        self._split_count += 1
        split_id = self._split_count
        members = yield from self.allgather(
            data=(color, key, self.rank), nbytes=24
        )
        mine = sorted(
            (k, r) for (c, k, r) in (m for m in members) if c == color
        )
        ranks = tuple(self._world_ranks[r] for (_k, r) in mine)
        new_rank = [r for (_k, r) in mine].index(self.rank)
        comm_key = (self._comm_key, "split", split_id, color)
        return Comm(self.cluster, new_rank, ranks, comm_key)

    def dup(self):
        """Collective duplicate (generator)."""
        new = yield from self.split(color=0, key=self.rank)
        return new

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Comm rank={self.rank}/{self.size} key={self._comm_key!r}>"
