"""Point-to-point message transport over the fabric model.

Implements MPI send/recv semantics — tag matching with wildcards,
non-overtaking order, unexpected-message queues — with two protocols:

* **eager** (``nbytes <= fabric eager threshold``): the sender stages the
  payload through a local copy and is immediately free; the payload
  travels independently and is buffered at the receiver if no receive is
  posted yet (paying an extra copy on late match, as real MPIs do).
* **rendezvous**: the sender issues a small ready-to-send control message;
  the bulk transfer starts only after the matching receive is posted and
  a clear-to-send returns.  The sender's buffer is held until the bulk
  data has left the NIC.

Per-rank CPU overheads (``send_overhead``/``recv_overhead``) serialise on
a per-rank CPU timeline, so bursts of small messages from one rank cost
linear CPU time even though the calls are non-blocking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.engine import Engine, Event
from ..core.errors import MPIError
from ..core.trace import MessageRecord, Tracer
from ..network.netmodel import Fabric
from ..obs.commviz import get_commviz
from ..obs.energy import get_energy
from ..obs.metrics import get_metrics
from .datatypes import ANY_SOURCE, ANY_TAG, RecvResult, copy_payload

#: Logical size of rendezvous control messages (RTS/CTS).
_CTRL_BYTES = 64


@dataclass
class _PostedRecv:
    source: int
    tag: int
    event: Event
    t_post: float


@dataclass
class _Arrival:
    source: int
    tag: int
    nbytes: int
    data: Any
    t_arrive: float
    seq: int = 0            # per-(src, dst, channel) send order


@dataclass
class _PendingRendezvous:
    """Sender-side state parked at the receiver until the recv posts."""

    source: int
    tag: int
    nbytes: int
    data: Any
    send_done: Event
    recv_done_cb: Any  # callable(recv_event, t_match)
    seq: int = 0            # per-(src, dst, channel) send order


@dataclass
class _Mailbox:
    """Per-(channel, rank) matching state."""

    posted: list[_PostedRecv] = field(default_factory=list)
    unexpected: list[_Arrival] = field(default_factory=list)
    pending_rndv: list[_PendingRendezvous] = field(default_factory=list)


def _match(source_want: int, tag_want: int, source: int, tag: int) -> bool:
    return (source_want in (ANY_SOURCE, source)) and (tag_want in (ANY_TAG, tag))


class Transport:
    """Message matching and timing for one cluster run."""

    def __init__(
        self,
        engine: Engine,
        fabric: Fabric,
        placement: list[int],
        tracer: Tracer,
    ) -> None:
        self.engine = engine
        self.fabric = fabric
        self.placement = placement
        self.tracer = tracer
        self.nprocs = len(placement)
        self._boxes: dict[tuple[Any, int], _Mailbox] = {}
        # Per-rank CPU availability for serialising software overheads.
        self._cpu_free = [0.0] * self.nprocs
        # Per-(src, dst, channel) send sequence: MPI's non-overtaking rule
        # is enforced on this order, not on arrival order (an eager
        # payload can physically land after a later message's RTS).
        self._send_seq: dict[tuple[int, int, Any], int] = {}
        registry = get_metrics()
        if registry.enabled:
            # (intra, inter) instrument pairs, indexed by bool(inter).
            self._m_msgs = (registry.counter("mpi.messages.intra"),
                            registry.counter("mpi.messages.inter"))
            self._m_bytes = (registry.counter("mpi.bytes.intra"),
                             registry.counter("mpi.bytes.inter"))
        else:
            self._m_msgs = None
            self._m_bytes = None
        commrec = get_commviz()
        self._commrec = commrec if commrec.enabled else None
        # Single per-send instrumentation gate: one attribute test on the
        # hot path instead of three when everything is disabled.
        self._instrumented = (self._m_msgs is not None
                              or self._commrec is not None)
        # Energy accounting: cumulative CPU-busy virtual seconds across
        # all ranks, fed to the energy recorder at end of run.  Gated by
        # one flag fetched here (twin-path: zero cost when off).
        self._energy_on = get_energy().enabled
        self.cpu_busy_s = 0.0

    # -- CPU bookkeeping -----------------------------------------------------

    def charge_cpu(self, rank: int, start: float, duration: float) -> float:
        """Occupy rank's CPU for ``duration`` from >= ``start``; returns end."""
        begin = max(start, self._cpu_free[rank])
        end = begin + duration
        self._cpu_free[rank] = end
        if self._energy_on:
            self.cpu_busy_s += duration
        return end

    def cpu_free_at(self, rank: int) -> float:
        return self._cpu_free[rank]

    def _box(self, channel: Any, rank: int) -> _Mailbox:
        key = (channel, rank)
        box = self._boxes.get(key)
        if box is None:
            box = self._boxes[key] = _Mailbox()
        return box

    # -- send ------------------------------------------------------------------

    def probe(self, dst: int, source: int, tag: int, channel: Any):
        """Non-consuming envelope check (MPI_Iprobe).

        Returns ``(source, tag, nbytes)`` of the oldest matching queued
        envelope, or ``None`` if nothing matches yet.
        """
        box = self._box(channel, dst)
        best = None
        for arr in box.unexpected:
            if _match(source, tag, arr.source, arr.tag):
                key = (arr.seq, arr.source)
                if best is None or key < best[0]:
                    best = (key, (arr.source, arr.tag, arr.nbytes))
        for pen in box.pending_rndv:
            if _match(source, tag, pen.source, pen.tag):
                key = (pen.seq, pen.source)
                if best is None or key < best[0]:
                    best = (key, (pen.source, pen.tag, pen.nbytes))
        return None if best is None else best[1]

    def isend(
        self,
        src: int,
        dst: int,
        nbytes: int,
        tag: int,
        data: Any,
        channel: Any,
        force_rendezvous: bool = False,
    ) -> Event:
        """Post a non-blocking send; returns the send-complete event."""
        if not (0 <= dst < self.nprocs):
            raise MPIError(f"destination rank {dst} out of range")
        if tag < 0:
            raise MPIError(f"application tags must be >= 0, got {tag}")
        # Hot path: one isend per simulated message.  Everything below
        # sticks to pre-bound locals, absolute-time pushes (provably not
        # in the past), and plain additions for the latency-only control
        # lane — the generic helpers (`engine.schedule`, `control_timing`,
        # `charge_cpu`) cost a call + allocation each that this path pays
        # millions of times per sweep.
        engine = self.engine
        fabric = self.fabric
        params = fabric.params
        now = engine._now
        send_done = Event(engine)
        cpu = self._cpu_free
        begin = cpu[src]
        if begin < now:
            begin = now
        t_cpu_done = begin + params.send_overhead
        cpu[src] = t_cpu_done

        seq_key = (src, dst, channel)
        seq = self._send_seq.get(seq_key, 0) + 1
        self._send_seq[seq_key] = seq

        placement = self.placement
        src_node = placement[src]
        dst_node = placement[dst]
        if self._instrumented:
            inter = src_node != dst_node
            if self._m_msgs is not None:
                self._m_msgs[inter].inc()
                self._m_bytes[inter].inc(nbytes)
            if self._commrec is not None:
                self._commrec.record(src, dst, nbytes, inter)

        if nbytes <= params.eager_threshold and not force_rendezvous:
            # Stage through a local bounce-buffer copy; the sender is free
            # right after, and the wire transfer starts once the copy is
            # done (this staging cost is what makes eager lose to
            # rendezvous at large sizes).
            t_free = t_cpu_done + nbytes / params.memcpy_bw
            cpu[src] = t_free
            if self._energy_on:
                # Overhead + staging copy occupied the sending CPU.
                self.cpu_busy_s += t_free - begin
            timing = fabric.message_timing(src_node, dst_node, nbytes, t_free)
            engine._push(t_free, send_done.trigger, (None,))
            payload = None if data is None else copy_payload(data)
            # The envelope (header) travels on the control lane and keeps
            # send order; the payload completes at the bandwidth-queued
            # time.  Matching happens at envelope arrival, receive
            # completion waits for the payload.
            env_arrival = t_cpu_done + fabric.latency(src_node, dst_node)
            arrival = _Arrival(src, tag, nbytes, payload, timing.arrival,
                               seq=seq)
            engine._push(env_arrival, self._deliver_eager,
                         (dst, arrival, channel))
            if self.tracer._enabled:
                self._trace(src, dst, nbytes, tag, t_cpu_done, timing.arrival)
        else:
            # Rendezvous: RTS -> (recv posted) -> CTS -> bulk transfer.
            if self._energy_on:
                self.cpu_busy_s += params.send_overhead
            rts_arrival = t_cpu_done + fabric.latency(src_node, dst_node)
            pending = _PendingRendezvous(
                source=src,
                tag=tag,
                nbytes=nbytes,
                data=data,
                send_done=send_done,
                recv_done_cb=None,
                seq=seq,
            )
            engine._push(rts_arrival, self._rts_arrive,
                         (dst, pending, channel))
        return send_done

    def _earlier_queued(self, box: _Mailbox, src: int, seq: int,
                        want_source: int, want_tag: int) -> bool:
        """Is an earlier (lower-seq) message from ``src`` queued that the
        posted pattern would also match?  If so, the newcomer must wait —
        matching it now would violate non-overtaking."""
        for arr in box.unexpected:
            if (arr.source == src and arr.seq < seq
                    and _match(want_source, want_tag, arr.source, arr.tag)):
                return True
        for pen in box.pending_rndv:
            if (pen.source == src and pen.seq < seq
                    and _match(want_source, want_tag, pen.source, pen.tag)):
                return True
        return False

    def _deliver_eager(self, dst: int, arr: _Arrival, channel: Any) -> None:
        now = self.engine._now
        box = self._box(channel, dst)
        for i, pr in enumerate(box.posted):
            if _match(pr.source, pr.tag, arr.source, arr.tag):
                if self._earlier_queued(box, arr.source, arr.seq,
                                        pr.source, pr.tag):
                    break  # an older sibling is queued; join the queue
                del box.posted[i]
                # recv completes once the payload has fully landed
                done = self.charge_cpu(dst, max(now, arr.t_arrive),
                                       self.fabric.params.recv_overhead)
                self._complete_recv(pr.event, arr.data, arr.source, arr.tag,
                                    arr.nbytes, done)
                return
        box.unexpected.append(arr)

    def _rts_arrive(self, dst: int, pending: _PendingRendezvous, channel: Any) -> None:
        box = self._box(channel, dst)
        for i, pr in enumerate(box.posted):
            if _match(pr.source, pr.tag, pending.source, pending.tag):
                if self._earlier_queued(box, pending.source, pending.seq,
                                        pr.source, pr.tag):
                    break
                del box.posted[i]
                self._start_bulk(dst, pending, pr.event)
                return
        box.pending_rndv.append(pending)

    def _start_bulk(self, dst: int, pending: _PendingRendezvous, recv_event: Event) -> None:
        """Matching recv is posted and RTS arrived: CTS + bulk transfer."""
        engine = self.engine
        fabric = self.fabric
        now = engine._now
        src = pending.source
        src_node = self.placement[src]
        dst_node = self.placement[dst]
        # CTS travels back on the latency-only control lane; bulk leaves
        # after it lands at the sender.
        cts_arrival = now + fabric.latency(dst_node, src_node)
        bulk = fabric.message_timing(
            src_node, dst_node, pending.nbytes, cts_arrival
        )
        # Sender's buffer is free once the bulk data has left the NIC.
        engine._push(bulk.inject_end, pending.send_done.trigger, (None,))
        data = pending.data
        payload = None if data is None else copy_payload(data)
        engine._push(bulk.arrival, self._finish_bulk,
                     (dst, pending, recv_event, payload))
        if self.tracer._enabled:
            self._trace(src, dst, pending.nbytes, pending.tag,
                        bulk.inject_start, bulk.arrival)

    def _finish_bulk(self, dst: int, pending: _PendingRendezvous,
                     recv_event: Event, payload: Any) -> None:
        """Bulk payload landed: charge recv overhead, complete the recv."""
        t = self.engine._now
        done = self.charge_cpu(dst, t, self.fabric.params.recv_overhead)
        self._complete_recv(
            recv_event, payload, pending.source, pending.tag,
            pending.nbytes, done
        )

    def _complete_recv(
        self, event: Event, payload: Any, src: int, tag: int, nbytes: int,
        t_done: float
    ) -> None:
        """Trigger ``event`` with the receive result at absolute ``t_done``."""
        result = RecvResult(data=payload, source=src, tag=tag, nbytes=nbytes)
        engine = self.engine
        if t_done < engine._now:
            t_done = engine._now
        engine._push(t_done, event.trigger, (result,))

    # -- receive -----------------------------------------------------------------

    def irecv(self, dst: int, source: int, tag: int, channel: Any) -> Event:
        """Post a non-blocking receive; returns the recv-complete event."""
        if source != ANY_SOURCE and not (0 <= source < self.nprocs):
            raise MPIError(f"source rank {source} out of range")
        engine = self.engine
        now = engine._now
        event = Event(engine)
        box = self._box(channel, dst)

        # Collect every queued envelope (eager arrivals + parked
        # rendezvous) that matches, then take the oldest by send order —
        # per source, the non-overtaking rule; across sources, the
        # earliest sequence is a deterministic legal choice.
        best = None  # (seq, kind, index)
        for i, arr in enumerate(box.unexpected):
            if _match(source, tag, arr.source, arr.tag):
                key = (arr.seq, arr.source)
                if best is None or key < best[0]:
                    best = (key, "eager", i)
        for i, pending in enumerate(box.pending_rndv):
            if _match(source, tag, pending.source, pending.tag):
                key = (pending.seq, pending.source)
                if best is None or key < best[0]:
                    best = (key, "rndv", i)

        if best is not None:
            _key, kind, i = best
            if kind == "eager":
                arr = box.unexpected.pop(i)
                # Pay the unexpected-buffer copy on a late match; a
                # payload still in flight delays completion further.
                cost = (
                    self.fabric.params.recv_overhead
                    + self.fabric.memcpy_time(arr.nbytes)
                )
                done = self.charge_cpu(dst, max(now, arr.t_arrive), cost)
                self._complete_recv(
                    event, arr.data, arr.source, arr.tag, arr.nbytes, done
                )
            else:
                pending = box.pending_rndv.pop(i)
                self._start_bulk(dst, pending, event)
            return event

        box.posted.append(_PostedRecv(source, tag, event, now))
        return event

    # -- tracing ----------------------------------------------------------------

    def _trace(
        self, src: int, dst: int, nbytes: int, tag: int, t0: float, t1: float
    ) -> None:
        if self.tracer.enabled:
            self.tracer.record_message(
                MessageRecord(
                    src=src,
                    dst=dst,
                    nbytes=nbytes,
                    tag=tag,
                    t_inject=t0,
                    t_deliver=t1,
                    intra_node=self.placement[src] == self.placement[dst],
                )
            )
