"""The cluster runtime: run rank programs on a simulated machine.

This is the library's main entry point::

    from repro import Cluster, get_machine

    def program(comm):
        data = yield from comm.allreduce(np.ones(4), op=SUM)
        return data

    cluster = Cluster(get_machine("sx8"), nprocs=16)
    result = cluster.run(program)
    print(result.elapsed, result.results[0])

A rank *program* is a generator function whose first argument is the
rank's :class:`~repro.mpi.comm.Comm`; extra positional/keyword arguments
are forwarded.  ``run`` executes all ranks to completion under the
discrete-event engine and reports the virtual elapsed time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..core.engine import Engine
from ..core.errors import ConfigError
from ..core.rng import DEFAULT_SEED, make_rng
from ..core.trace import Tracer
from ..machine.system import MachineSpec
from ..obs.energy import get_energy
from .comm import Comm
from .pt2pt import Transport

#: Kernel classes whose throughput is shared across a fully packed node.
_NODE_SCALED_KERNELS = frozenset(
    {"stream_copy", "stream_scale", "stream_add", "stream_triad",
     "reduction", "ptrans"}
)


@dataclass
class RunResult:
    """Outcome of one :meth:`Cluster.run`."""

    results: list[Any]       # per-rank program return values
    elapsed: float           # virtual seconds from t=0 to completion
    tracer: Tracer           # message/compute records (if tracing enabled)

    @property
    def elapsed_us(self) -> float:
        return self.elapsed * 1e6


class Cluster:
    """A machine instance populated with ``nprocs`` MPI ranks."""

    def __init__(
        self,
        machine: MachineSpec,
        nprocs: int,
        *,
        trace: bool = False,
        seed: int | None = None,
        placement: str = "block",
    ) -> None:
        if nprocs < 1:
            raise ConfigError("need at least one process")
        self.machine = machine
        self.nprocs = int(nprocs)
        self.placement = machine.placement(nprocs, strategy=placement)
        self.seed = DEFAULT_SEED if seed is None else seed
        self._trace = trace
        # Live per-run state (populated by run()).
        self.engine: Engine | None = None
        self.fabric = None
        self.transport: Transport | None = None
        self.tracer = Tracer(enabled=trace)

    # -- derived info -----------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return self.machine.n_nodes(self.nprocs)

    def rng(self, rank: int) -> np.random.Generator:
        """Deterministic per-rank random generator."""
        return make_rng(self.seed, rank)

    def compute_time(self, flops: float, nbytes: float,
                     kernel: str = "generic") -> float:
        """Roofline compute time on one CPU of this machine.

        Memory-bound kernels are derated by the node's ``stream_node_scale``
        — we assume nodes are fully packed, as in the paper's runs.
        """
        proc = self.machine.processor
        t = 0.0
        if flops:
            t = flops / proc.kernel_flops(kernel)
        if nbytes:
            bw = proc.kernel_mem_bw(kernel)
            if kernel in _NODE_SCALED_KERNELS:
                bw *= self.machine.node.stream_node_scale
            tm = nbytes / bw
            if tm > t:
                t = tm
        return t

    # -- execution ----------------------------------------------------------------

    def run(self, program: Callable, *args: Any,
            fabric_setup: Callable | None = None, **kwargs: Any) -> RunResult:
        """Run ``program(comm, *args, **kwargs)`` on every rank.

        ``fabric_setup``, if given, receives the freshly built fabric
        before any rank starts — the hook used for fault injection
        (see :mod:`repro.machine.faults`).
        """
        self.engine = Engine()
        self.fabric = self.machine.build_fabric(self.nprocs)
        if fabric_setup is not None:
            fabric_setup(self.fabric)
        # RMA window and file registries are per-run state.
        self.__dict__.pop("_rma_windows", None)
        self.__dict__.pop("_rma_arrivals", None)
        self.__dict__.pop("_fs_model", None)
        self.__dict__.pop("_sim_files", None)
        self.tracer = Tracer(enabled=self._trace)
        self.transport = Transport(
            self.engine, self.fabric, self.placement, self.tracer
        )
        world = tuple(range(self.nprocs))
        procs = []
        for r in range(self.nprocs):
            comm = Comm(self, r, world)
            gen = program(comm, *args, **kwargs)
            procs.append(self.engine.spawn(gen, name=f"rank{r}"))
        elapsed = self.engine.run()
        enrec = get_energy()
        if enrec.enabled and self.machine.power is not None:
            # Price the run's busy intervals: per-rank CPU seconds from
            # the transport clocks, per-kind network busy seconds from
            # the fabric's bandwidth servers.
            enrec.record_run(
                self.machine.power,
                machine=self.machine.name,
                nprocs=self.nprocs,
                n_nodes=self.n_nodes,
                elapsed_s=elapsed,
                cpu_busy_s=self.transport.cpu_busy_s,
                busy=self.fabric.busy_by_kind(),
            )
        return RunResult(
            results=[p.result for p in procs],
            elapsed=elapsed,
            tracer=self.tracer,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Cluster {self.machine.name} nprocs={self.nprocs} "
            f"nodes={self.n_nodes}>"
        )
