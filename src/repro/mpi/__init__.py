"""Simulated MPI runtime: communicators, point-to-point, collectives."""

from .cluster import Cluster, RunResult
from .comm import Comm
from .datatypes import (
    ANY_SOURCE,
    ANY_TAG,
    BAND,
    BOR,
    BXOR,
    MAX,
    MIN,
    OPS,
    PROD,
    SUM,
    Op,
    RecvResult,
)
from .onesided import Window, win_create
from .pt2pt import Transport

__all__ = [
    "Window",
    "win_create",
    "Cluster",
    "RunResult",
    "Comm",
    "Transport",
    "RecvResult",
    "Op",
    "OPS",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "BXOR",
    "BAND",
    "BOR",
    "ANY_SOURCE",
    "ANY_TAG",
]
