"""One-sided communication (MPI-2 RMA): Put/Get with fence synchronisation.

The paper's future-work list includes "one-sided (GET/PUT) MPI
communication functions"; InfiniBand's RDMA support (§2.4) is the
hardware substrate.  This module implements the core of that model:

* :func:`win_create` — collective window creation over a communicator,
  optionally exposing a NumPy array;
* :meth:`Window.put` / :meth:`Window.get` — non-blocking RMA that moves
  real data without involving the target's CPU (no ``recv_overhead``);
* :meth:`Window.fence` — collective synchronisation: completes all locally
  issued and all incoming operations, then barriers.

Timing: a put is one fabric transfer; a get is a control-latency request
followed by the data transfer back.  Neither charges target CPU time —
that is precisely the RDMA advantage the paper attributes to IB.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.engine import Event
from ..core.errors import MPIError


class Window:
    """An RMA window handle for one rank."""

    def __init__(self, comm, win_id: Any, n_elements: int,
                 buffer: np.ndarray | None) -> None:
        self.comm = comm
        self.win_id = win_id
        self.n_elements = int(n_elements)
        if buffer is None:
            buffer = np.zeros(self.n_elements, dtype=np.float64)
        if len(buffer) != self.n_elements:
            raise MPIError(
                f"window buffer has {len(buffer)} elements, declared "
                f"{self.n_elements}"
            )
        self.buffer = buffer
        self._pending: list[Event] = []
        # Shared registry: every rank's buffer, keyed by local rank.
        registry = comm.cluster.__dict__.setdefault("_rma_windows", {})
        registry.setdefault(win_id, {})[comm.rank] = buffer
        self._registry = registry[win_id]
        # Incoming-completion tracking for fence semantics.
        arrivals = comm.cluster.__dict__.setdefault("_rma_arrivals", {})
        arrivals.setdefault(win_id, {})
        self._arrivals = arrivals[win_id]

    # -- epoch bookkeeping ------------------------------------------------------

    def _note_incoming(self, target: int, done: Event) -> None:
        self._arrivals.setdefault(target, []).append(done)

    # -- operations ----------------------------------------------------------------

    def put(self, target: int, data: np.ndarray,
            offset: int = 0) -> Event:
        """Write ``data`` into ``target``'s window at element ``offset``.

        Returns a local-completion event (the origin buffer is reusable);
        remote visibility is guaranteed only after :meth:`fence`.
        """
        comm = self.comm
        if not (0 <= target < comm.size):
            raise MPIError(f"target rank {target} out of range")
        if offset < 0 or offset + len(data) > self.n_elements:
            raise MPIError("put outside window bounds")
        cluster = comm.cluster
        fabric = cluster.fabric
        src_node = cluster.placement[comm.world_rank]
        dst_node = cluster.placement[comm._global(target)]
        now = cluster.engine.now
        t_cpu = cluster.transport.charge_cpu(
            comm.world_rank, now, fabric.params.send_overhead
        )
        timing = fabric.message_timing(src_node, dst_node, data.nbytes, t_cpu)
        local_done = cluster.engine.event("put.local")
        remote_done = cluster.engine.event("put.remote")
        cluster.engine.schedule(max(0.0, timing.inject_end - now),
                                local_done.trigger, None)
        payload = data.copy()
        tgt_buffer = self._registry[target]

        def land() -> None:
            tgt_buffer[offset:offset + len(payload)] = payload
            remote_done.trigger(None)

        cluster.engine.schedule(max(0.0, timing.arrival - now), land)
        self._pending.append(local_done)
        self._note_incoming(target, remote_done)
        return local_done

    def get(self, target: int, n: int, offset: int = 0) -> Event:
        """Read ``n`` elements from ``target``'s window; event value is
        the data (fetched remotely without target CPU involvement)."""
        comm = self.comm
        if not (0 <= target < comm.size):
            raise MPIError(f"target rank {target} out of range")
        if offset < 0 or offset + n > self.n_elements:
            raise MPIError("get outside window bounds")
        cluster = comm.cluster
        fabric = cluster.fabric
        src_node = cluster.placement[comm.world_rank]
        dst_node = cluster.placement[comm._global(target)]
        now = cluster.engine.now
        t_cpu = cluster.transport.charge_cpu(
            comm.world_rank, now, fabric.params.send_overhead
        )
        # request travels on the control lane; data returns as a bulk
        req = fabric.control_timing(src_node, dst_node, t_cpu)
        back = fabric.message_timing(dst_node, src_node, 8 * n, req.arrival)
        done = cluster.engine.event("get.done")
        tgt_buffer = self._registry[target]

        def land() -> None:
            done.trigger(tgt_buffer[offset:offset + n].copy())

        cluster.engine.schedule(max(0.0, back.arrival - now), land)
        self._pending.append(done)
        return done

    def fence(self):
        """Collective epoch close (generator).

        Two-phase: complete locally issued operations and barrier (so
        every rank has *issued* everything), then drain the operations
        targeting this rank and barrier again (so every rank has *landed*
        everything).
        """
        comm = self.comm
        for ev in self._pending:
            yield ev
        self._pending.clear()
        yield from comm.barrier()
        incoming = self._arrivals.pop(comm.rank, [])
        for ev in incoming:
            yield ev
        yield from comm.barrier()


def win_create(comm, n_elements: int,
               buffer: np.ndarray | None = None):
    """Collective window creation (generator); returns the Window."""
    if n_elements < 0:
        raise MPIError("window size must be >= 0")
    # Agree on a window id: one counter per communicator, advanced in
    # lockstep on every rank (win_create is collective).
    count = comm.__dict__.setdefault("_win_count", 0) + 1
    comm._win_count = count
    win = Window(comm, (comm._comm_key, "win", count), n_elements, buffer)
    yield from comm.barrier()
    return win
