"""EP-STREAM: embarrassingly parallel sustainable memory bandwidth.

All ranks run the four STREAM kernels simultaneously (McCalpin's rules:
Copy ``c = a``, Scale ``b = q*c``, Add ``c = a + b``, Triad
``a = b + q*c``).  The HPCC suite reports the arithmetic mean across
ranks; the paper's Figs 3-4 use the Copy result.

In ``validate`` mode the kernels actually execute on NumPy arrays and the
results are checked; timing always comes from the machine model's
per-kernel memory bandwidth (derated by the node's full-population
factor), so virtual bandwidth is independent of the host machine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import BenchmarkError
from ..machine.system import MachineSpec
from ..mpi.cluster import Cluster

#: Bytes moved per element for each kernel (read + write traffic).
KERNEL_BYTES_PER_ELEM = {
    "stream_copy": 16,
    "stream_scale": 16,
    "stream_add": 24,
    "stream_triad": 24,
}

#: Flops per element for each kernel.
KERNEL_FLOPS_PER_ELEM = {
    "stream_copy": 0,
    "stream_scale": 1,
    "stream_add": 1,
    "stream_triad": 2,
}


@dataclass(frozen=True)
class StreamConfig:
    n_elements: int = 10_000_000   # logical array length per rank
    validate: bool = False
    validate_elements: int = 4096  # real array length in validate mode


@dataclass(frozen=True)
class StreamResult:
    """Per-rank average bandwidths (GB/s) plus system aggregates."""

    copy_gbs: float
    scale_gbs: float
    add_gbs: float
    triad_gbs: float
    nprocs: int

    @property
    def system_copy_gbs(self) -> float:
        """Accumulated Copy bandwidth (paper Fig 3's y-axis)."""
        return self.copy_gbs * self.nprocs


def stream_program(comm, cfg: StreamConfig):
    """Rank program: run the four kernels, return per-kernel GB/s."""
    n = cfg.n_elements
    if n < 1:
        raise BenchmarkError("STREAM needs at least one element")
    rng = comm.cluster.rng(comm.rank)
    arrays = None
    if cfg.validate:
        m = cfg.validate_elements
        a = rng.random(m)
        b = rng.random(m)
        c = np.zeros(m)
        arrays = (a, b, c)

    yield from comm.barrier()
    rates = {}
    q = 3.0
    for kernel in ("stream_copy", "stream_scale", "stream_add", "stream_triad"):
        nbytes = KERNEL_BYTES_PER_ELEM[kernel] * n
        flops = KERNEL_FLOPS_PER_ELEM[kernel] * n
        t0 = comm.now
        yield from comm.compute(flops=flops, nbytes=nbytes, kernel=kernel)
        dt = comm.now - t0
        rates[kernel] = nbytes / dt / 1e9
        if arrays is not None:
            a, b, c = arrays
            if kernel == "stream_copy":
                c[:] = a
                assert np.array_equal(c, a)
            elif kernel == "stream_scale":
                b[:] = q * c
                assert np.allclose(b, q * a)
            elif kernel == "stream_add":
                c[:] = a + b
                assert np.allclose(c, a + q * a)
            else:
                a[:] = b + q * c
    return rates


def run_stream(machine: MachineSpec, nprocs: int,
               cfg: StreamConfig | None = None) -> StreamResult:
    """Run EP-STREAM on ``nprocs`` CPUs of ``machine``."""
    cfg = cfg or StreamConfig()
    cluster = Cluster(machine, nprocs)
    res = cluster.run(stream_program, cfg)
    mean = {
        k: float(np.mean([r[k] for r in res.results]))
        for k in KERNEL_BYTES_PER_ELEM
    }
    return StreamResult(
        copy_gbs=mean["stream_copy"],
        scale_gbs=mean["stream_scale"],
        add_gbs=mean["stream_add"],
        triad_gbs=mean["stream_triad"],
        nprocs=nprocs,
    )
