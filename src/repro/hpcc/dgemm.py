"""EP-DGEMM: embarrassingly parallel matrix-matrix multiply rate.

Every rank times a local ``C = alpha*A@B + beta*C`` of order ``n`` and the
suite reports the mean Gflop/s.  The paper uses EP-DGEMM/HPL as a
processor-efficiency indicator (Table 3: the Cray Opteron's 1.925 is the
largest because its HPL efficiency is the lowest).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import BenchmarkError
from ..machine.system import MachineSpec
from ..mpi.cluster import Cluster


@dataclass(frozen=True)
class DgemmConfig:
    n: int = 4096                 # logical matrix order
    validate: bool = False
    validate_n: int = 64          # real matrix order in validate mode


@dataclass(frozen=True)
class DgemmResult:
    gflops_per_proc: float
    nprocs: int

    @property
    def system_gflops(self) -> float:
        return self.gflops_per_proc * self.nprocs


def dgemm_flops(n: int) -> float:
    """Flop count of a square DGEMM (multiply-add counted as 2)."""
    return 2.0 * float(n) ** 3


def dgemm_program(comm, cfg: DgemmConfig):
    """Rank program: one timed DGEMM; returns Gflop/s."""
    if cfg.n < 1:
        raise BenchmarkError("DGEMM needs n >= 1")
    yield from comm.barrier()
    flops = dgemm_flops(cfg.n)
    # Cache-blocked: memory traffic ~ 3 matrices, far below the roofline.
    nbytes = 3.0 * 8.0 * cfg.n ** 2
    t0 = comm.now
    yield from comm.compute(flops=flops, nbytes=nbytes, kernel="dgemm")
    dt = comm.now - t0
    if cfg.validate:
        rng = comm.cluster.rng(comm.rank)
        m = cfg.validate_n
        a = rng.random((m, m))
        b = rng.random((m, m))
        c = a @ b
        # spot-check one entry against a manual dot product
        assert np.isclose(c[0, 0], float(np.dot(a[0], b[:, 0])))
    return flops / dt / 1e9


def run_dgemm(machine: MachineSpec, nprocs: int,
              cfg: DgemmConfig | None = None) -> DgemmResult:
    cfg = cfg or DgemmConfig()
    cluster = Cluster(machine, nprocs)
    res = cluster.run(dgemm_program, cfg)
    return DgemmResult(
        gflops_per_proc=float(np.mean(res.results)),
        nprocs=nprocs,
    )
