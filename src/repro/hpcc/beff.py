"""b_eff: the effective bandwidth benchmark (Rabenseifner & Koniges).

The paper's reference [14] and the ancestor of HPCC's ring benchmarks.
b_eff averages per-process bandwidth over

* a set of communication *patterns*: natural rings (neighbourhood
  traffic) and randomly ordered rings (global traffic), and
* a geometric ladder of 21 *message sizes* from 1 B up to ``L_max``
  (1 MiB here; the original uses memory/128),

giving one figure (MB/s per process) that weights latency and bandwidth
the way "average" applications do.  The logarithmic size average means
small-message latency matters as much as peak bandwidth — exactly the
argument the paper makes against quoting zero-byte latency and 4 MB
bandwidth alone (§1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import BenchmarkError
from ..core.rng import make_rng
from ..machine.system import MachineSpec
from ..mpi.cluster import Cluster
from .ring import _ring_exchange

#: Ladder length of the original benchmark.
N_SIZES = 21

#: Largest message in the ladder (the original uses memory/128).
L_MAX = 1 << 20


def beff_message_sizes(l_max: int = L_MAX, n: int = N_SIZES) -> list[int]:
    """Geometric ladder of ``n`` sizes from 1 byte to ``l_max``."""
    if l_max < 2 or n < 2:
        raise BenchmarkError("need l_max >= 2 and n >= 2")
    ratio = l_max ** (1.0 / (n - 1))
    sizes = sorted({max(1, int(round(ratio ** k))) for k in range(n)})
    if sizes[-1] != l_max:
        sizes.append(l_max)
    return sizes


@dataclass(frozen=True)
class BeffConfig:
    l_max: int = L_MAX
    n_sizes: int = N_SIZES
    n_random_rings: int = 3


@dataclass(frozen=True)
class BeffResult:
    beff_mbs: float            # b_eff per process (MB/s, decimal)
    ring_mbs: float            # natural-ring component
    random_mbs: float          # random-ring component
    nprocs: int

    @property
    def total_gbs(self) -> float:
        return self.beff_mbs * self.nprocs / 1e3


def _pattern_rings(size: int, cfg: BeffConfig, seed: int) -> list[np.ndarray]:
    rng = make_rng(seed, 0xBEFF)
    rings = [np.arange(size)]                      # natural ring
    for _ in range(cfg.n_random_rings):
        rings.append(rng.permutation(size))       # random rings
    return rings


def beff_program(comm, cfg: BeffConfig):
    """Rank program; returns (natural_bw, random_bw) in bytes/s."""
    size = comm.size
    sizes = beff_message_sizes(cfg.l_max, cfg.n_sizes)
    rings = _pattern_rings(size, cfg, comm.cluster.seed)
    per_pattern = []
    tag = 0
    for ring in rings:
        pos = int(np.where(ring == comm.rank)[0][0])
        left = int(ring[(pos - 1) % size])
        right = int(ring[(pos + 1) % size])
        bandwidths = []
        for nbytes in sizes:
            yield from comm.barrier()
            t0 = comm.now
            yield from _ring_exchange(comm, left, right, nbytes, tag)
            dt = comm.now - t0
            tag += 8
            bandwidths.append(2.0 * nbytes / dt)
        # logarithmic average over the size ladder (the b_eff rule)
        per_pattern.append(float(np.exp(np.mean(np.log(bandwidths)))))
    natural = per_pattern[0]
    random_ = float(np.mean(per_pattern[1:])) if len(per_pattern) > 1 else natural
    return natural, random_


def run_beff(machine: MachineSpec, nprocs: int,
             cfg: BeffConfig | None = None) -> BeffResult:
    """Run b_eff on ``nprocs`` CPUs of ``machine``."""
    cfg = cfg or BeffConfig()
    if nprocs < 2:
        raise BenchmarkError("b_eff needs at least two processes")
    cluster = Cluster(machine, nprocs)
    res = cluster.run(beff_program, cfg)
    natural = float(np.mean([r[0] for r in res.results]))
    random_ = float(np.mean([r[1] for r in res.results]))
    # b_eff weights rings and random patterns equally
    beff = 0.5 * (natural + random_)
    return BeffResult(
        beff_mbs=beff / 1e6,
        ring_mbs=natural / 1e6,
        random_mbs=random_ / 1e6,
        nprocs=nprocs,
    )
