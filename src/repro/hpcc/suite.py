"""The full HPCC suite driver: one call, all eight reported quantities.

Mirrors what ``hpcc.out`` would give you on a real machine — the numbers
the paper's §4.1 analysis consumes: G-HPL, G-PTRANS, G-RandomAccess,
G-FFTE, EP-STREAM (Copy/Triad), EP-DGEMM, and random-ring bandwidth and
latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.system import MachineSpec
from .dgemm import DgemmConfig, run_dgemm
from .fft import FFTConfig, run_fft
from .hpl import HPLConfig, run_hpl
from .ptrans import PtransConfig, run_ptrans
from .randomaccess import RandomAccessConfig, run_randomaccess
from .ring import RingConfig, run_ring
from .stream import StreamConfig, run_stream


@dataclass(frozen=True)
class HPCCConfig:
    """Problem sizes for one suite run (scaled-down defaults).

    The defaults keep simulation cheap while staying in each benchmark's
    asymptotic regime; the harness overrides per experiment.
    """

    hpl: HPLConfig = field(default_factory=HPLConfig)
    ptrans: PtransConfig = field(default_factory=PtransConfig)
    randomaccess: RandomAccessConfig = field(default_factory=RandomAccessConfig)
    fft: FFTConfig = field(default_factory=FFTConfig)
    stream: StreamConfig = field(default_factory=StreamConfig)
    dgemm: DgemmConfig = field(default_factory=DgemmConfig)
    ring: RingConfig = field(default_factory=RingConfig)


@dataclass(frozen=True)
class HPCCResult:
    """One row of the paper-style results table."""

    machine: str
    nprocs: int
    g_hpl_tflops: float
    g_ptrans_gbs: float
    g_randomaccess_gups: float
    g_ffte_gflops: float
    ep_stream_copy_gbs: float      # per process
    ep_stream_triad_gbs: float     # per process
    ep_dgemm_gflops: float         # per process
    ring_bandwidth_gbs: float      # per process
    ring_latency_us: float

    # -- the paper's derived ratios (Fig 5 / Table 3 columns) ---------------

    @property
    def g_hpl_gflops(self) -> float:
        return self.g_hpl_tflops * 1e3

    @property
    def dgemm_over_hpl(self) -> float:
        return self.ep_dgemm_gflops * self.nprocs / self.g_hpl_gflops

    @property
    def ffte_over_hpl(self) -> float:
        return self.g_ffte_gflops / self.g_hpl_gflops

    @property
    def ptrans_over_hpl(self) -> float:
        """Byte/Flop."""
        return self.g_ptrans_gbs / self.g_hpl_gflops

    @property
    def stream_over_hpl(self) -> float:
        """Accumulated STREAM Copy per HPL flop (Byte/Flop, Fig 4)."""
        return self.ep_stream_copy_gbs * self.nprocs / self.g_hpl_gflops

    @property
    def ring_bw_over_hpl(self) -> float:
        """Accumulated random-ring bandwidth per HPL flop (Byte/Flop)."""
        return self.ring_bandwidth_gbs * self.nprocs / self.g_hpl_gflops

    @property
    def ring_bw_b_per_kflop(self) -> float:
        """The B/KFlop figure quoted in the paper's §4.1.1."""
        return self.ring_bw_over_hpl * 1e3

    @property
    def inv_ring_latency(self) -> float:
        return 1.0 / self.ring_latency_us if self.ring_latency_us else float("inf")

    @property
    def randomaccess_over_hpl(self) -> float:
        """Updates per flop."""
        return self.g_randomaccess_gups / self.g_hpl_gflops


def scaled_config(nprocs: int) -> HPCCConfig:
    """Problem sizes scaled to the rank count (simulation-friendly).

    G-FFTE needs ``total_elements`` divisible by ``nprocs**2``.  HPCC sizes
    the vector to fill memory; aim for ~2^20 elements per rank so the
    alltoall transposes run in the bandwidth-bound regime.  This is the
    sizing rule the harness uses for Fig 5 / Table 3.
    """
    k = max(4, 1 << max(0, ((1 << 20) // nprocs).bit_length() - 1))
    fft_total = nprocs * nprocs * k
    return HPCCConfig(
        ptrans=PtransConfig(n=max(2048, 8 * nprocs)),
        fft=FFTConfig(total_elements=fft_total),
        randomaccess=RandomAccessConfig(local_table_words=4096),
        ring=RingConfig(n_rings=4),
    )


def run_hpcc(machine: MachineSpec, nprocs: int,
             cfg: HPCCConfig | None = None, mode: str = "auto") -> HPCCResult:
    """Run the complete suite on ``nprocs`` CPUs of ``machine``."""
    cfg = cfg or HPCCConfig()
    hpl_res = run_hpl(machine, nprocs, cfg.hpl, mode="model")
    ptrans_res = run_ptrans(machine, nprocs, cfg.ptrans)
    ra_res = run_randomaccess(machine, nprocs, cfg.randomaccess,
                              mode="auto" if mode == "auto" else mode)
    fft_res = run_fft(machine, nprocs, cfg.fft,
                      mode="auto" if mode == "auto" else mode)
    stream_res = run_stream(machine, nprocs, cfg.stream)
    dgemm_res = run_dgemm(machine, nprocs, cfg.dgemm)
    ring_res = run_ring(machine, nprocs, cfg.ring)
    return HPCCResult(
        machine=machine.name,
        nprocs=nprocs,
        g_hpl_tflops=hpl_res.tflops,
        g_ptrans_gbs=ptrans_res.gbs,
        g_randomaccess_gups=ra_res.gups,
        g_ffte_gflops=fft_res.gflops,
        ep_stream_copy_gbs=stream_res.copy_gbs,
        ep_stream_triad_gbs=stream_res.triad_gbs,
        ep_dgemm_gflops=dgemm_res.gflops_per_proc,
        ring_bandwidth_gbs=ring_res.bandwidth_gbs,
        ring_latency_us=ring_res.latency_us,
    )
