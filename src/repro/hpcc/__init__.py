"""The HPC Challenge benchmark suite on the simulated machines."""

from .dgemm import DgemmConfig, DgemmResult, dgemm_program, run_dgemm
from .fft import FFTConfig, FFTResult, fft_program, run_fft
from .hpl import (
    HPLConfig,
    HPLResult,
    default_n,
    hpl_lu_program,
    hpl_model_time,
    hpl_skeleton_program,
    run_hpl,
    run_hpl_skeleton,
)
from .ptrans import PtransConfig, PtransResult, process_grid, ptrans_program, run_ptrans
from .randomaccess import (
    RandomAccessConfig,
    RandomAccessResult,
    randomaccess_program,
    reference_table,
    run_randomaccess,
)
from .ring import RingConfig, RingResult, ring_program, run_ring
from .stream import StreamConfig, StreamResult, run_stream, stream_program
from .suite import HPCCConfig, HPCCResult, run_hpcc

__all__ = [
    "HPCCConfig",
    "HPCCResult",
    "run_hpcc",
    "HPLConfig",
    "HPLResult",
    "run_hpl",
    "run_hpl_skeleton",
    "hpl_model_time",
    "hpl_skeleton_program",
    "hpl_lu_program",
    "default_n",
    "PtransConfig",
    "PtransResult",
    "run_ptrans",
    "ptrans_program",
    "process_grid",
    "RandomAccessConfig",
    "RandomAccessResult",
    "run_randomaccess",
    "randomaccess_program",
    "reference_table",
    "FFTConfig",
    "FFTResult",
    "run_fft",
    "fft_program",
    "StreamConfig",
    "StreamResult",
    "run_stream",
    "stream_program",
    "DgemmConfig",
    "DgemmResult",
    "run_dgemm",
    "dgemm_program",
    "RingConfig",
    "RingResult",
    "run_ring",
    "ring_program",
]
