"""End-to-end numeric verification, HPCC style.

The real HPC Challenge suite ends every run with verification lines
(``...PASSED`` / ``...FAILED``): LU residuals for HPL, element checks
for PTRANS, update-loss counts for RandomAccess, inverse-transform
residuals for FFT.  This module is the simulated analogue — every
benchmark runs in its validated mode with real payloads and is checked
against an independent reference.

Because the simulator's collectives genuinely move and reduce data,
this is a meaningful integrity check of the whole MPI stack, not a
formality: a broken allgather or mis-sliced transpose fails here.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..core.rng import make_rng
from ..machine.system import MachineSpec
from ..mpi.cluster import Cluster
from .fft import FFTConfig, fft_program
from .hpl import assemble_lu, hpl_lu_program, reference_matrix
from .ptrans import (
    PtransConfig,
    _block_starts,
    process_grid,
    ptrans_program,
    reference_ptrans,
)
from .randomaccess import (
    RandomAccessConfig,
    randomaccess_program,
    reference_table,
)


@dataclass(frozen=True)
class VerificationItem:
    benchmark: str
    passed: bool
    residual: float          # scaled residual / error count
    threshold: float
    detail: str = ""

    def __str__(self) -> str:
        status = "PASSED" if self.passed else "FAILED"
        return (f"{self.benchmark:<14s} {status}  "
                f"(residual {self.residual:.3e}, limit {self.threshold:g})")


@dataclass(frozen=True)
class VerificationReport:
    machine: str
    nprocs: int
    items: tuple[VerificationItem, ...]

    @property
    def all_passed(self) -> bool:
        return all(i.passed for i in self.items)

    def __str__(self) -> str:
        head = f"HPCC verification on {self.machine}, {self.nprocs} CPUs"
        lines = [head, "-" * len(head)]
        lines += [str(i) for i in self.items]
        lines.append("overall: " + ("PASSED" if self.all_passed else "FAILED"))
        return "\n".join(lines)


def verify_hpl(machine: MachineSpec, nprocs: int, n: int = 96,
               nb: int = 8) -> VerificationItem:
    """Distributed LU really factorises: ||L@U - A|| / ||A|| small."""
    n = (n // (nb)) * nb
    cluster = Cluster(machine, nprocs)
    out = cluster.run(hpl_lu_program, n, nb)
    lower, upper = assemble_lu(out.results, n, nb)
    a = reference_matrix(cluster.seed, n)
    residual = float(np.abs(lower @ upper - a).max() / np.abs(a).max())
    return VerificationItem("HPL", residual < 1e-9, residual, 1e-9,
                            detail=f"N={n} NB={nb}")


def verify_ptrans(machine: MachineSpec, nprocs: int,
                  n: int = 60) -> VerificationItem:
    """A = A + B^T matches the serial reference exactly."""
    cluster = Cluster(machine, nprocs)
    out = cluster.run(ptrans_program, PtransConfig(n=n, validate=True))
    ref = reference_ptrans(n, cluster.seed)
    pr, pc = process_grid(nprocs)
    rs, cs = _block_starts(n, pr), _block_starts(n, pc)
    worst = 0.0
    for rank, (_el, block) in enumerate(out.results):
        i, j = divmod(rank, pc)
        expect = ref[rs[i]:rs[i + 1], cs[j]:cs[j + 1]]
        worst = max(worst, float(np.abs(block - expect).max()))
    return VerificationItem("PTRANS", worst < 1e-12, worst, 1e-12,
                            detail=f"N={n}")


def verify_randomaccess(machine: MachineSpec,
                        nprocs: int) -> VerificationItem:
    """Zero lost/duplicated updates: the table equals a serial replay.

    (Real HPCC tolerates 1% lost updates from racing; the simulator is
    deterministic so the bar is exact equality.)
    """
    if nprocs & (nprocs - 1):
        # algorithmic routing needs a power of two; verify the largest below
        nprocs = 1 << (nprocs.bit_length() - 1)
    cfg = RandomAccessConfig(local_table_words=256, updates_per_word=2,
                             bucket=32, validate=True)
    cluster = Cluster(machine, nprocs)
    out = cluster.run(randomaccess_program, cfg)
    got = np.concatenate([r[2] for r in out.results])
    ref = reference_table(cluster.seed, nprocs, cfg)
    errors = int(np.count_nonzero(got != ref))
    return VerificationItem("RandomAccess", errors == 0, float(errors), 0.5,
                            detail=f"{nprocs} ranks, "
                                   f"{cfg.local_table_words * 2} updates/rank")


def verify_fft(machine: MachineSpec, nprocs: int) -> VerificationItem:
    """Distributed spectrum slices match numpy.fft.fft."""
    n = nprocs * nprocs * 8
    cluster = Cluster(machine, nprocs)
    out = cluster.run(fft_program, FFTConfig(total_elements=n, validate=True))
    rng = make_rng(cluster.seed, 333)
    x = rng.random(n) + 1j * rng.random(n)
    ref = np.fft.fft(x)
    n_local = n // nprocs
    worst = 0.0
    for rank, (_el, slice_) in enumerate(out.results):
        expect = ref[rank * n_local:(rank + 1) * n_local]
        scale = max(1.0, float(np.abs(expect).max()))
        worst = max(worst, float(np.abs(slice_ - expect).max()) / scale)
    return VerificationItem("FFT", worst < 1e-9, worst, 1e-9,
                            detail=f"N={n}")


def run_verification(machine: MachineSpec,
                     nprocs: int = 4) -> VerificationReport:
    """Run the full verification battery (small sizes, real numerics)."""
    items = (
        verify_hpl(machine, min(nprocs, 4)),
        verify_ptrans(machine, nprocs),
        verify_randomaccess(machine, nprocs),
        verify_fft(machine, nprocs),
    )
    return VerificationReport(machine=machine.name, nprocs=nprocs,
                              items=items)


def verify_machines(machines: Sequence[MachineSpec],
                    nprocs: int = 4) -> list[VerificationReport]:
    """Run the battery over several machine models, serially.

    (The validation gate fans the same work out through the executor as
    ``hpcc_verify`` points; this helper is the direct path for scripts.)
    """
    return [run_verification(m, nprocs=nprocs) for m in machines]
