"""G-PTRANS: parallel matrix transpose, ``A = A + B^T``.

The matrix is block-distributed over a near-square ``Pr x Pc`` process
grid.  Every rank ships the pieces of its ``B`` block to the owners of
the transposed coordinates; with a square grid that is a single partner
per rank (pairwise exchange across the diagonal), the pattern the paper
describes as "pairs of processors communicate with each other
simultaneously", measuring "the total communications capacity of the
network".

We post the exact sparse overlap pattern directly (not a dense
alltoallv), so a 2024-CPU transpose schedules only O(P) messages.

The reported figure follows HPCC: ``GB/s = 8 * N^2 / time / 1e9``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import BenchmarkError
from ..core.rng import make_rng
from ..machine.system import MachineSpec
from ..mpi.cluster import Cluster
from ..mpi.collectives import balanced_split


def process_grid(p: int) -> tuple[int, int]:
    """Near-square grid factorisation with Pr <= Pc."""
    pr = int(np.sqrt(p))
    while p % pr:
        pr -= 1
    return pr, p // pr


def _block_starts(n: int, parts: int) -> list[int]:
    sizes = balanced_split(n, parts)
    starts = [0]
    for s in sizes:
        starts.append(starts[-1] + s)
    return starts


def _overlap(a0: int, a1: int, b0: int, b1: int) -> tuple[int, int]:
    lo, hi = max(a0, b0), min(a1, b1)
    return (lo, hi) if hi > lo else (0, 0)


@dataclass(frozen=True)
class PtransConfig:
    n: int = 4096              # matrix order (logical unless validating)
    validate: bool = False


@dataclass(frozen=True)
class PtransResult:
    gbs: float                 # HPCC PTRANS figure (GB/s)
    elapsed: float
    nprocs: int
    n: int


def ptrans_program(comm, cfg: PtransConfig):
    """Rank program; returns (elapsed, my updated A block | None)."""
    p = comm.size
    n = cfg.n
    if n < p:
        raise BenchmarkError(f"PTRANS needs n >= nprocs (n={n}, p={p})")
    pr, pc = process_grid(p)
    gi, gj = divmod(comm.rank, pc)
    rstarts = _block_starts(n, pr)
    cstarts = _block_starts(n, pc)
    my_r0, my_r1 = rstarts[gi], rstarts[gi + 1]
    my_c0, my_c1 = cstarts[gj], cstarts[gj + 1]

    a = b = None
    if cfg.validate:
        rng = make_rng(comm.cluster.seed, 777)  # same global matrices everywhere
        a_g = rng.random((n, n))
        b_g = rng.random((n, n))
        a = a_g[my_r0:my_r1, my_c0:my_c1].copy()
        b = b_g[my_r0:my_r1, my_c0:my_c1].copy()

    # Destination ranks needing my B^T pieces: owner of rows in [my_c0,
    # my_c1) and cols in [my_r0, my_r1).  Senders to me: the mirror set.
    # The piece destined for this rank itself (diagonal overlap) is applied
    # locally without a message.
    sends = []   # (dest_rank, nbytes, payload)
    local_pieces = []
    for di in range(pr):
        r_lo, r_hi = _overlap(rstarts[di], rstarts[di + 1], my_c0, my_c1)
        if r_hi <= r_lo:
            continue
        for dj in range(pc):
            c_lo, c_hi = _overlap(cstarts[dj], cstarts[dj + 1], my_r0, my_r1)
            if c_hi <= c_lo:
                continue
            nbytes = 8 * (r_hi - r_lo) * (c_hi - c_lo)
            payload = None
            if b is not None:
                # B^T rows r_lo:r_hi are B cols r_lo:r_hi; cols c_lo:c_hi
                # are B rows c_lo:c_hi — all within my block.
                payload = (
                    (r_lo, c_lo),
                    b[c_lo - my_r0:c_hi - my_r0,
                      r_lo - my_c0:r_hi - my_c0].T.copy(),
                )
            dest = di * pc + dj
            if dest == comm.rank:
                local_pieces.append(payload)
            else:
                sends.append((dest, nbytes, payload))

    recv_partners = []
    for si in range(pr):
        s_r0, s_r1 = rstarts[si], rstarts[si + 1]
        for sj in range(pc):
            s_c0, s_c1 = cstarts[sj], cstarts[sj + 1]
            r_lo, r_hi = _overlap(my_r0, my_r1, s_c0, s_c1)
            c_lo, c_hi = _overlap(my_c0, my_c1, s_r0, s_r1)
            if r_hi > r_lo and c_hi > c_lo and si * pc + sj != comm.rank:
                recv_partners.append(si * pc + sj)

    yield from comm.barrier()
    t0 = comm.now
    rreqs = [comm.irecv(src, tag=7) for src in recv_partners]
    sreqs = [comm.isend(dst, data=payload, nbytes=nb, tag=7)
             for (dst, nb, payload) in sends]
    results = yield from comm.waitall(rreqs + sreqs)
    # local accumulate A += (received B^T pieces)
    my_bytes = 8 * (my_r1 - my_r0) * (my_c1 - my_c0)
    yield from comm.compute(flops=my_bytes / 8.0, nbytes=3 * my_bytes,
                            kernel="ptrans")
    elapsed = comm.now - t0
    if a is not None:
        pieces = [res.data for res in results[:len(recv_partners)]
                  if res is not None and res.data is not None]
        pieces.extend(pc_ for pc_ in local_pieces if pc_ is not None)
        for (r_lo, c_lo), piece in pieces:
            a[r_lo - my_r0:r_lo - my_r0 + piece.shape[0],
              c_lo - my_c0:c_lo - my_c0 + piece.shape[1]] += piece
    return elapsed, a


def run_ptrans(machine: MachineSpec, nprocs: int,
               cfg: PtransConfig | None = None) -> PtransResult:
    cfg = cfg or PtransConfig()
    cluster = Cluster(machine, nprocs)
    res = cluster.run(ptrans_program, cfg)
    elapsed = max(r[0] for r in res.results)
    gbs = 8.0 * cfg.n ** 2 / elapsed / 1e9
    return PtransResult(gbs=gbs, elapsed=elapsed, nprocs=nprocs, n=cfg.n)


def reference_ptrans(n: int, seed: int) -> np.ndarray:
    """Serial reference for validation: A + B^T on the same matrices."""
    rng = make_rng(seed, 777)
    a = rng.random((n, n))
    b = rng.random((n, n))
    return a + b.T
