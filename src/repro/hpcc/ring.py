"""Random-ring (and natural-ring) bandwidth and latency.

The HPCC effective-bandwidth benchmarks order all ranks in a ring —
either naturally (0,1,2,...) or by a random permutation — and every rank
exchanges messages with both neighbours simultaneously.  Reported values:

* **bandwidth**: per-CPU bytes *sent* per second at a large message size
  (2,000,000 B in HPCC), averaged over several random permutations.
  Random rings make most partners land on remote SMP nodes, so this is
  the paper's proxy for per-process inter-node bandwidth (§4.1.1).
* **latency**: time per 8-byte both-ways exchange, averaged likewise.

All ranks derive identical permutations from the shared cluster seed, so
the pattern is consistent without extra communication.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.rng import make_rng
from ..machine.system import MachineSpec
from ..mpi.cluster import Cluster

#: HPCC uses 2,000,000-byte messages for ring bandwidth.
RING_BANDWIDTH_BYTES = 2_000_000
RING_LATENCY_BYTES = 8


@dataclass(frozen=True)
class RingConfig:
    nbytes: int = RING_BANDWIDTH_BYTES
    n_rings: int = 8          # random permutations averaged over
    random_order: bool = True


@dataclass(frozen=True)
class RingResult:
    bandwidth_gbs: float      # per-CPU send bandwidth (GB/s)
    latency_us: float         # per-exchange latency (us)
    nprocs: int

    @property
    def accumulated_gbs(self) -> float:
        """Accumulated ring bandwidth (paper Fig 1's y-axis)."""
        return self.bandwidth_gbs * self.nprocs


def _ring_exchange(comm, left: int, right: int, nbytes: int, tag: int):
    """Send to both neighbours, receive from both, concurrently."""
    reqs = [
        comm.irecv(left, tag),
        comm.irecv(right, tag + 1),
    ]
    sreqs = [
        comm.isend(right, nbytes=nbytes, tag=tag),
        comm.isend(left, nbytes=nbytes, tag=tag + 1),
    ]
    yield from comm.waitall(reqs + sreqs)


def ring_program(comm, cfg: RingConfig):
    """Rank program; returns (bandwidth_bytes_per_s, latency_seconds)."""
    size = comm.size
    rng = make_rng(comm.cluster.seed, 9_001)  # shared stream, all ranks
    bw_times = []
    lat_times = []
    for trial in range(cfg.n_rings):
        if cfg.random_order:
            perm = rng.permutation(size)
        else:
            perm = np.arange(size)
        pos = int(np.where(perm == comm.rank)[0][0])
        left = int(perm[(pos - 1) % size])
        right = int(perm[(pos + 1) % size])
        tag = 10 * trial
        yield from comm.barrier()
        t0 = comm.now
        yield from _ring_exchange(comm, left, right, cfg.nbytes, tag)
        bw_times.append(comm.now - t0)
        yield from comm.barrier()
        t0 = comm.now
        yield from _ring_exchange(comm, left, right, RING_LATENCY_BYTES, tag + 4)
        lat_times.append(comm.now - t0)
    # Return raw per-trial times; the driver reduces them b_eff-style
    # (pattern time = slowest rank, since the ring is one global pattern).
    return bw_times, lat_times


def run_ring(machine: MachineSpec, nprocs: int,
             cfg: RingConfig | None = None) -> RingResult:
    cfg = cfg or RingConfig()
    if nprocs == 1:
        return RingResult(bandwidth_gbs=float("inf"), latency_us=0.0, nprocs=1)
    cluster = Cluster(machine, nprocs)
    res = cluster.run(ring_program, cfg)
    # b_eff convention: each trial's pattern time is the slowest rank's;
    # the reported figure averages over the random permutations.
    bw_trials = np.max([r[0] for r in res.results], axis=0)
    lat_trials = np.max([r[1] for r in res.results], axis=0)
    bw = 2.0 * cfg.nbytes / float(np.mean(bw_trials))
    return RingResult(
        bandwidth_gbs=bw / 1e9,
        latency_us=float(np.mean(lat_trials)) * 1e6,
        nprocs=nprocs,
    )
