"""HPCC Single / Star / Global benchmark variants.

The real HPCC suite reports three modes for its local kernels:

* **Single** — one process runs while the rest idle (per-CPU capability
  with the whole node's memory system to itself);
* **Star** — every process runs simultaneously (the "EP" mode the paper
  reports; full-node contention included);
* **Global** — the distributed version (where one exists).

The paper's tables use Star for STREAM/DGEMM and Global for
HPL/PTRANS/FFT/RandomAccess; this module adds the remaining cells so a
complete HPCC output can be produced, and quantifies the Star/Single gap
that node-level sharing causes (e.g. the Xeon's shared front-side bus).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.system import MachineSpec
from ..mpi.cluster import Cluster
from .dgemm import DgemmConfig, dgemm_program
from .fft import FFTConfig, fft_flops, run_fft
from .randomaccess import RandomAccessConfig, run_randomaccess
from .stream import StreamConfig, stream_program


@dataclass(frozen=True)
class VariantResult:
    """Single/Star(/Global) values for one benchmark, one machine."""

    benchmark: str
    machine: str
    nprocs: int
    single: float
    star: float              # per-process, all processes active
    global_: float | None    # suite-level figure where one exists
    unit: str

    @property
    def star_efficiency(self) -> float:
        """Star / Single: how much node sharing costs (1.0 = free)."""
        return self.star / self.single if self.single else 0.0


def _single_rank_run(machine: MachineSpec, nprocs: int, program, *args):
    """Run ``program`` on rank 0 only; other ranks just synchronise.

    Rank 0 gets a solo communicator so any collectives inside the
    program stay self-contained.
    """
    def driver(comm):
        solo = yield from comm.split(color=0 if comm.rank == 0 else 1)
        out = None
        if comm.rank == 0:
            out = yield from program(solo, *args)
        yield from comm.barrier()
        return out

    cluster = Cluster(machine, nprocs)
    return cluster.run(driver).results[0]


def stream_variants(machine: MachineSpec, nprocs: int,
                    cfg: StreamConfig | None = None) -> VariantResult:
    """STREAM Triad in Single and Star modes (no Global variant)."""
    cfg = cfg or StreamConfig()
    # Single: the lone process sees the node's unshared memory system.
    import dataclasses

    unshared = dataclasses.replace(machine.node, stream_node_scale=1.0)
    single_machine = dataclasses.replace(machine, node=unshared)
    single = _single_rank_run(single_machine, nprocs, stream_program, cfg)
    star_cluster = Cluster(machine, nprocs)
    star_res = star_cluster.run(stream_program, cfg)
    star = sum(r["stream_triad"] for r in star_res.results) / nprocs
    return VariantResult(
        benchmark="STREAM_Triad",
        machine=machine.name,
        nprocs=nprocs,
        single=single["stream_triad"],
        star=star,
        global_=None,
        unit="GB/s",
    )


def dgemm_variants(machine: MachineSpec, nprocs: int,
                   cfg: DgemmConfig | None = None) -> VariantResult:
    cfg = cfg or DgemmConfig()
    single = _single_rank_run(machine, nprocs, dgemm_program, cfg)
    star_res = Cluster(machine, nprocs).run(dgemm_program, cfg)
    star = sum(star_res.results) / nprocs
    return VariantResult(
        benchmark="DGEMM",
        machine=machine.name,
        nprocs=nprocs,
        single=single,
        star=star,
        global_=None,
        unit="GFlop/s",
    )


def fft_variants(machine: MachineSpec, nprocs: int,
                 n_local: int = 1 << 16) -> VariantResult:
    """FFT in Single, Star (independent local FFTs) and Global modes."""
    def local_fft(comm):
        t0 = comm.now
        yield from comm.compute(flops=fft_flops(n_local),
                                nbytes=32.0 * n_local, kernel="fft")
        return fft_flops(n_local) / (comm.now - t0) / 1e9

    single = _single_rank_run(machine, nprocs, local_fft)
    star_res = Cluster(machine, nprocs).run(local_fft)
    star = sum(star_res.results) / nprocs
    global_res = run_fft(machine, nprocs,
                         FFTConfig(total_elements=n_local * nprocs)
                         if (n_local * nprocs) % (nprocs * nprocs) == 0
                         else FFTConfig(total_elements=nprocs * nprocs
                                        * max(1, n_local // nprocs)))
    return VariantResult(
        benchmark="FFT",
        machine=machine.name,
        nprocs=nprocs,
        single=single,
        star=star,
        global_=global_res.gflops,
        unit="GFlop/s",
    )


def randomaccess_variants(machine: MachineSpec, nprocs: int,
                          cfg: RandomAccessConfig | None = None
                          ) -> VariantResult:
    """RandomAccess: Single/Star are local GUPS; Global is the routed run."""
    cfg = cfg or RandomAccessConfig(local_table_words=1024)
    updates = cfg.local_table_words * cfg.updates_per_word

    def local_updates(comm):
        t0 = comm.now
        yield from comm.compute(flops=updates, nbytes=8.0 * updates,
                                kernel="random_access")
        return updates / (comm.now - t0) / 1e9

    single = _single_rank_run(machine, nprocs, local_updates)
    star_res = Cluster(machine, nprocs).run(local_updates)
    star = sum(star_res.results) / nprocs
    global_res = run_randomaccess(machine, nprocs, cfg, mode="macro")
    return VariantResult(
        benchmark="RandomAccess",
        machine=machine.name,
        nprocs=nprocs,
        single=single,
        star=star,
        global_=global_res.gups,
        unit="GUP/s",
    )


def full_variant_table(machine: MachineSpec,
                       nprocs: int) -> list[VariantResult]:
    """All four variant rows, HPCC-output style."""
    return [
        stream_variants(machine, nprocs),
        dgemm_variants(machine, nprocs),
        fft_variants(machine, nprocs),
        randomaccess_variants(machine, nprocs),
    ]
