"""G-HPL: the High-Performance LINPACK benchmark.

Three fidelity levels, cross-validated against each other in the tests:

* :func:`hpl_model_time` — an analytic model of block right-looking LU on
  a near-square process grid: roofline compute at the machine's HPL
  efficiency plus per-panel communication (pivot allreduces, pipelined
  row broadcasts of panels, column exchanges of U).  This is the level
  the harness sweeps use (2024-CPU points in milliseconds of host time).
* :func:`hpl_skeleton_program` — the same algorithm executed message-by-
  message on the simulated MPI (compute charged, no numerics).  Used to
  check the analytic model's structure at small/medium scale.
* :func:`hpl_lu_program` — a genuine distributed LU factorisation with
  real NumPy panels (1-D column-block layout, unpivoted on a diagonally
  dominant matrix) whose ``L @ U = A`` residual is checked in the tests.

Reported figure: ``Gflop/s = (2/3 N^3 + 3/2 N^2) / time / 1e9`` (HPL's
official operation count).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.errors import BenchmarkError
from ..core.rng import make_rng
from ..machine.system import MachineSpec
from ..mpi.cluster import Cluster
from ..network import macro
from .ptrans import process_grid


@dataclass(frozen=True)
class HPLConfig:
    n: int | None = None        # matrix order; None = size from memory fill
    nb: int = 128               # panel width
    memory_fill: float = 0.8    # fraction of machine memory for the matrix
    grid: tuple[int, int] | None = None  # (Pr, Pc); None = near-square


@dataclass(frozen=True)
class HPLResult:
    gflops: float
    tflops: float
    elapsed: float
    efficiency: float           # fraction of machine peak
    n: int
    nprocs: int


def hpl_flops(n: float) -> float:
    """HPL's official floating-point operation count."""
    return (2.0 / 3.0) * n ** 3 + 1.5 * n ** 2


def _resolve_grid(cfg: HPLConfig, nprocs: int) -> tuple[int, int]:
    """The HPL.dat P x Q choice: explicit grid or near-square default."""
    if cfg.grid is None:
        return process_grid(nprocs)
    pr, pc = cfg.grid
    if pr * pc != nprocs:
        raise BenchmarkError(
            f"grid {pr}x{pc} does not match {nprocs} processes"
        )
    return int(pr), int(pc)


def default_n(machine: MachineSpec, nprocs: int, fill: float = 0.8,
              nb: int = 128) -> int:
    """Problem size filling ``fill`` of the aggregate memory (HPL custom)."""
    mem = machine.node.memory_bytes / machine.node.cpus * nprocs
    n = int(math.sqrt(fill * mem / 8.0))
    return max((n // nb) * nb, nb)


def _panel_comm_terms(ctx: macro.MacroContext, n: int, nb: int,
                      pr: int, pc: int) -> float:
    """Per-run communication time of the panel loop (analytic)."""
    lat = ctx.lat_inter if ctx.n_nodes > 1 else ctx.lat_shm
    flow = ctx.flow_bw if ctx.n_nodes > 1 else ctx.shm_flow_bw
    t = 0.0
    panels = n // nb
    for k in range(panels):
        rows = n - k * nb
        # pivot search: nb max-allreduces along the column, aggregated by
        # HPL into the panel factorisation; charge nb small messages deep
        # on the critical path of log2(pr) levels.
        t += nb * lat * max(1.0, math.log2(max(pr, 2))) * 0.25
        # panel broadcast along the process row (pipelined ring: depth 2).
        panel_bytes = rows * nb * 8.0 / pr
        t += 2.0 * (lat + panel_bytes / flow)
        # U swap/broadcast along the process column.
        u_bytes = rows * nb * 8.0 / pc
        t += 2.0 * (lat + u_bytes / flow)
    return t


def hpl_model_time(machine: MachineSpec, nprocs: int,
                   cfg: HPLConfig | None = None) -> HPLResult:
    """Analytic HPL estimate (the harness's default path)."""
    cfg = cfg or HPLConfig()
    n = cfg.n or default_n(machine, nprocs, cfg.memory_fill, cfg.nb)
    pr, pc = _resolve_grid(cfg, nprocs)
    proc = machine.processor
    f_update = proc.peak_flops * proc.hpl_eff
    t_compute = hpl_flops(n) / (nprocs * f_update)
    if nprocs > 1:
        ctx = macro.MacroContext.from_machine(machine, nprocs)
        t_comm = _panel_comm_terms(ctx, n, cfg.nb, pr, pc)
    else:
        t_comm = 0.0
    elapsed = t_compute + t_comm
    gflops = hpl_flops(n) / elapsed / 1e9
    return HPLResult(
        gflops=gflops,
        tflops=gflops / 1e3,
        elapsed=elapsed,
        efficiency=gflops / (machine.processor.peak_gflops * nprocs),
        n=n,
        nprocs=nprocs,
    )


# ---------------------------------------------------------------------------
# DES skeleton
# ---------------------------------------------------------------------------

def hpl_skeleton_program(comm, cfg: HPLConfig):
    """Message-accurate skeleton of block right-looking LU; returns elapsed."""
    p = comm.size
    n = cfg.n
    if n is None:
        raise BenchmarkError("skeleton mode needs an explicit n")
    nb = cfg.nb
    pr, pc = _resolve_grid(cfg, p)
    gi, gj = divmod(comm.rank, pc)
    row_comm = yield from comm.split(color=gi, key=gj)
    col_comm = yield from comm.split(color=gj, key=gi)

    yield from comm.barrier()
    t0 = comm.now
    panels = n // nb
    for k in range(panels):
        rows = n - k * nb
        root_col = k % pc
        root_row = k % pr
        if gj == root_col:
            # pivot search + panel factorisation on the panel column
            yield from col_comm.allreduce(nbytes=16 * nb)
            yield from comm.compute(
                flops=rows * nb * nb / pr, nbytes=rows * nb * 8.0 / pr,
                kernel="hpl",
            )
        # broadcast the factored panel across process rows
        yield from row_comm.bcast(nbytes=int(rows * nb * 8 / pr),
                                  root=root_col)
        # U block exchange down the columns
        yield from col_comm.bcast(nbytes=int(rows * nb * 8 / pc),
                                  root=root_row)
        # trailing-matrix update (my share)
        yield from comm.compute(
            flops=2.0 * nb * (rows / pr) * (rows / pc),
            nbytes=8.0 * (rows / pr) * (rows / pc),
            kernel="hpl",
        )
    return comm.now - t0


def run_hpl_skeleton(machine: MachineSpec, nprocs: int,
                     cfg: HPLConfig) -> HPLResult:
    if cfg.n is None:
        raise BenchmarkError("skeleton mode needs an explicit n")
    cluster = Cluster(machine, nprocs)
    res = cluster.run(hpl_skeleton_program, cfg)
    elapsed = max(res.results)
    gflops = hpl_flops(cfg.n) / elapsed / 1e9
    return HPLResult(
        gflops=gflops,
        tflops=gflops / 1e3,
        elapsed=elapsed,
        efficiency=gflops / (machine.processor.peak_gflops * nprocs),
        n=cfg.n,
        nprocs=nprocs,
    )


def run_hpl(machine: MachineSpec, nprocs: int, cfg: HPLConfig | None = None,
            mode: str = "model") -> HPLResult:
    """Run G-HPL.  ``mode``: ``model`` (default) or ``skeleton``."""
    cfg = cfg or HPLConfig()
    if mode == "model":
        return hpl_model_time(machine, nprocs, cfg)
    if mode == "skeleton":
        if cfg.n is None:
            cfg = HPLConfig(n=default_n(machine, nprocs, 0.001, cfg.nb),
                            nb=cfg.nb, memory_fill=cfg.memory_fill,
                            grid=cfg.grid)
        return run_hpl_skeleton(machine, nprocs, cfg)
    raise BenchmarkError(f"unknown HPL mode {mode!r}")


# ---------------------------------------------------------------------------
# real distributed LU (validation)
# ---------------------------------------------------------------------------

def hpl_lu_program(comm, n: int, nb: int):
    """Distributed unpivoted LU with real data; returns my column blocks.

    1-D column-block-cyclic layout: block ``j`` (columns ``j*nb`` ..) lives
    on rank ``j % P``.  The matrix is made diagonally dominant so the
    factorisation is stable without pivoting.
    """
    p = comm.size
    if n % nb:
        raise BenchmarkError("n must be a multiple of nb")
    nblocks = n // nb
    rng = make_rng(comm.cluster.seed, 42)
    a_g = rng.random((n, n)) + np.diag(np.full(n, float(2 * n)))
    mine = {j: a_g[:, j * nb:(j + 1) * nb].copy()
            for j in range(nblocks) if j % p == comm.rank}

    for k in range(nblocks):
        owner = k % p
        k0, k1 = k * nb, (k + 1) * nb
        if owner == comm.rank:
            blk = mine[k]
            # factorise the diagonal sub-block, then compute the L column.
            dk = blk[k0:k1, :]
            lw, uw = _lu_nopivot(dk)
            blk[k0:k1, :] = np.tril(lw, -1) + uw
            if k1 < n:
                blk[k1:, :] = blk[k1:, :] @ np.linalg.inv(uw)
            panel = blk[:, :].copy()
            yield from comm.compute(flops=n * nb * nb, kernel="hpl",
                                    nbytes=8.0 * n * nb)
        else:
            panel = None
        panel = yield from comm.bcast(data=panel, nbytes=8 * n * nb,
                                      root=owner)
        l_col = panel[k1:, :] if k1 < n else None
        u_row_solver = np.linalg.inv(
            np.tril(panel[k0:k1, :], -1) + np.eye(nb)
        )
        for j, blk in mine.items():
            if j <= k:
                continue
            # U block row: solve L11 * U = A
            blk[k0:k1, :] = u_row_solver @ blk[k0:k1, :]
            if k1 < n:
                blk[k1:, :] -= l_col @ blk[k0:k1, :]
            yield from comm.compute(flops=2.0 * (n - k1) * nb * nb,
                                    kernel="hpl", nbytes=8.0 * (n - k1) * nb)
    return mine


def _lu_nopivot(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Dense unpivoted LU; returns (L with unit diagonal, U)."""
    m = a.shape[0]
    lw = np.eye(m)
    uw = a.copy()
    for i in range(m - 1):
        factors = uw[i + 1:, i] / uw[i, i]
        lw[i + 1:, i] = factors
        uw[i + 1:, :] -= np.outer(factors, uw[i, :])
    return lw, np.triu(uw)


def assemble_lu(results: list[dict[int, np.ndarray]], n: int,
                nb: int) -> tuple[np.ndarray, np.ndarray]:
    """Reassemble global L and U from per-rank column blocks."""
    lu = np.zeros((n, n))
    for mine in results:
        for j, blk in mine.items():
            lu[:, j * nb:(j + 1) * nb] = blk
    lower = np.tril(lu, -1) + np.eye(n)
    upper = np.triu(lu)
    return lower, upper


def reference_matrix(seed: int, n: int) -> np.ndarray:
    rng = make_rng(seed, 42)
    return rng.random((n, n)) + np.diag(np.full(n, float(2 * n)))
