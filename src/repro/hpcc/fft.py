"""G-FFTE: global 1-D complex FFT.

Implements the transpose algorithm (the structure of Takahashi's FFTE
used by HPCC): view the length-``N`` vector as an ``n1 x n2`` matrix,
then

1. alltoall transpose,
2. local n1-point FFTs,
3. twiddle multiply,
4. alltoall transpose,
5. local n2-point FFTs,
6. alltoall transpose back to natural order.

Local FFT arithmetic is charged as ``5 N log2 N`` flops under the ``fft``
kernel class — on the vector machines this runs near the *scalar* unit,
reproducing the paper's remark that HPCC's FFT "does not completely
vectorize".  In ``validate`` mode the ranks hold real data and the result
is checked against ``numpy.fft.fft``.

For the harness's large sweeps a ``macro`` path prices the same three
alltoalls with the closed-form model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.errors import BenchmarkError
from ..core.rng import make_rng
from ..machine.system import MachineSpec
from ..mpi.cluster import Cluster
from ..network import macro


@dataclass(frozen=True)
class FFTConfig:
    total_elements: int = 1 << 22   # global vector length N (complex128)
    validate: bool = False


@dataclass(frozen=True)
class FFTResult:
    gflops: float                   # HPCC G-FFTE figure
    elapsed: float
    nprocs: int
    total_elements: int


def fft_flops(n: float) -> float:
    return 5.0 * n * math.log2(max(n, 2))


def _local_fft_cost(comm, n_local: float):
    flops = fft_flops(n_local)
    nbytes = 16.0 * n_local * 2  # one read + one write pass per butterfly set
    yield from comm.compute(flops=flops, nbytes=nbytes, kernel="fft")


def fft_program(comm, cfg: FFTConfig):
    """Rank program; returns (elapsed, local slice of the spectrum | None)."""
    p = comm.size
    n = cfg.total_elements
    if n % (p * p):
        raise BenchmarkError(
            f"G-FFTE needs total_elements divisible by nprocs^2 (n={n}, p={p})"
        )
    n_local = n // p
    chunk = n_local // p            # per-pair alltoall block (elements)
    chunk_bytes = 16 * chunk

    # Four-step decomposition: view x as an (n1, n2) matrix with
    # n1 = P and n2 = N/P; rank r owns row r.  The index algebra:
    # X[k2*P + k1] = FFT_n2 over j2 of [ twiddle(j2, k1)
    #                * FFT_P over j1 of x[j1*n2 + j2] ].
    n1 = p
    n2 = n // p
    rank = comm.rank

    x = None
    if cfg.validate:
        rng = make_rng(comm.cluster.seed, 333)
        x_g = rng.random(n) + 1j * rng.random(n)
        x = x_g[rank * n_local:(rank + 1) * n_local].copy()

    yield from comm.barrier()
    t0 = comm.now

    # Stage A: transpose so each rank holds full columns of its j2-chunk.
    blocks = None
    if x is not None:
        m = x.reshape(p, chunk)  # my row split into P chunks of n2/P
        blocks = [m[i].copy() for i in range(p)]
    got = yield from comm.alltoall(blocks, nbytes=chunk_bytes)
    grid = None
    if x is not None:
        # grid[j2_local, j1] — column j1 came from rank j1's chunk
        grid = np.stack([g for g in got], axis=1).astype(np.complex128)

    # Stage B: length-P FFTs along j1 for every local column.
    yield from _local_fft_cost(comm, n_local)
    if grid is not None:
        grid = np.fft.fft(grid, axis=1)  # grid[j2_local, k1]

    # Stage C: twiddle multiply  e^{-2 pi i j2 k1 / N}.
    yield from comm.compute(flops=6.0 * n_local, nbytes=32.0 * n_local,
                            kernel="fft")
    if grid is not None:
        j2 = (rank * chunk + np.arange(chunk))[:, None]
        k1 = np.arange(p)[None, :]
        grid = grid * np.exp(-2j * np.pi * j2 * k1 / n)

    # Stage D: second transpose — rank k1 collects its full j2 row.
    if grid is not None:
        blocks = [grid[:, k1].copy() for k1 in range(p)]
    got = yield from comm.alltoall(blocks, nbytes=chunk_bytes)
    row = None
    if grid is not None:
        row = np.concatenate([g for g in got])  # h[j2], length n2

    # Stage E: one length-n2 FFT over j2.
    yield from _local_fft_cost(comm, n_local)
    if row is not None:
        row = np.fft.fft(row)  # X[k2*P + rank] for all k2

    # Stage F: unscramble the strided result to natural block order.
    if row is not None:
        m = row.reshape(p, chunk)  # chunk k2-values per destination rank
        blocks = [m[q].copy() for q in range(p)]
    got = yield from comm.alltoall(blocks, nbytes=chunk_bytes)
    if row is not None:
        # out[i*P + s] = recv_from_s[i]
        x = np.stack([g for g in got], axis=1).ravel()
    elapsed = comm.now - t0
    return elapsed, x


def run_fft(machine: MachineSpec, nprocs: int, cfg: FFTConfig | None = None,
            mode: str = "auto") -> FFTResult:
    """Run G-FFTE.  ``mode``: ``algorithmic`` | ``macro`` | ``auto``."""
    cfg = cfg or FFTConfig()
    if mode == "auto":
        mode = "algorithmic" if nprocs <= 128 else "macro"
    n = cfg.total_elements
    if mode == "macro":
        ctx = macro.MacroContext.from_machine(machine, nprocs)
        cluster = Cluster(machine, nprocs)
        n_local = n / nprocs
        chunk_bytes = 16.0 * n_local / nprocs
        t = 3.0 * macro.alltoall_time(ctx, chunk_bytes)
        t += 2.0 * cluster.compute_time(fft_flops(n_local),
                                        32.0 * n_local, "fft")
        t += cluster.compute_time(6.0 * n_local, 32.0 * n_local, "fft")
        elapsed = t
    else:
        cluster = Cluster(machine, nprocs)
        res = cluster.run(fft_program, cfg)
        elapsed = max(r[0] for r in res.results)
    return FFTResult(
        gflops=fft_flops(n) / elapsed / 1e9,
        elapsed=elapsed,
        nprocs=nprocs,
        total_elements=n,
    )
