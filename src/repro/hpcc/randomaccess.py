"""G-RandomAccess: giga-updates per second (GUPS).

A table of ``2^k * P`` 64-bit words is distributed over the ranks; every
rank issues a stream of XOR updates to pseudo-random global locations.
Updates are routed in buckets through the standard hypercube (dimension-
ordered) exchange used by HPCC's MPI implementation, so the benchmark
stresses exactly what the paper says it does: small-message network
throughput with zero locality.

Substitution note (DESIGN.md): HPCC's ``HPCC_starts`` LCG update stream
is replaced by per-rank PCG64 streams — deterministic under the cluster
seed, and XOR updates commute, so the final table is still exactly
verifiable against a serial replay (``reference_table``).

Modes: ``algorithmic`` (messages scheduled; any power-of-two rank count),
``macro`` (closed-form, any rank count), ``auto``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.errors import BenchmarkError
from ..core.rng import make_rng
from ..machine.system import MachineSpec
from ..mpi.cluster import Cluster
from ..network import macro


@dataclass(frozen=True)
class RandomAccessConfig:
    local_table_words: int = 4096      # table words per rank (power of two)
    updates_per_word: int = 4          # HPCC default: 4 * table size updates
    #: Updates aggregated per routing round.  The 2005-era reference
    #: implementation the paper ran keeps only a 1024-update look-ahead
    #: and effectively ships a handful of updates per message, so the
    #: benchmark is per-message-overhead bound; 8 reproduces the measured
    #: GUPS regime (Table 3 anchor ~5e-5 update/flop).
    bucket: int = 8
    validate: bool = False


@dataclass(frozen=True)
class RandomAccessResult:
    gups: float
    elapsed: float
    nprocs: int
    total_updates: int


def _rank_updates(seed: int, rank: int, count: int) -> np.ndarray:
    """The deterministic update stream a rank issues (uint64 values)."""
    rng = make_rng(seed, 0x5A, rank)
    return rng.integers(0, 2 ** 63, size=count, dtype=np.uint64)


def randomaccess_program(comm, cfg: RandomAccessConfig):
    """Rank program; returns (elapsed, applied_count, table | None)."""
    p = comm.size
    if p & (p - 1):
        raise BenchmarkError(
            "algorithmic G-RandomAccess needs a power-of-two rank count; "
            "use mode='macro' otherwise"
        )
    local = cfg.local_table_words
    if local & (local - 1):
        raise BenchmarkError("local_table_words must be a power of two")
    total_words = local * p
    my_updates = local * cfg.updates_per_word
    table = None
    if cfg.validate:
        table = (np.arange(local, dtype=np.uint64)
                 + np.uint64(comm.rank * local))

    stream = _rank_updates(comm.cluster.seed, comm.rank, my_updates)
    mask = np.uint64(total_words - 1)
    dims = int(math.log2(p))
    applied = 0

    yield from comm.barrier()
    t0 = comm.now
    if not cfg.validate:
        # Timing-only fast path.  Without validation ``held`` stays the
        # full bucket through every dimension (arrivals mirror departures
        # in expectation, see below), so the per-dimension message sizes
        # are a pure function of the update stream — compute them all up
        # front with one vectorised pass instead of four tiny-array numpy
        # ops per sendrecv (which dominate the benchmark's host time).
        bucket_n = cfg.bucket
        rounds = -(-my_updates // bucket_n)
        shift = np.uint64(local.bit_length() - 1)  # // local, local pow2
        dest = (stream & mask) >> shift
        moves = np.zeros((dims, rounds * bucket_n), dtype=bool)
        for k in range(dims):
            go = (dest >> np.uint64(k)) & np.uint64(1)
            moves[k, :my_updates] = go != np.uint64((comm.rank >> k) & 1)
        counts = moves.reshape(dims, rounds, bucket_n).sum(axis=2).tolist()
        partners = [comm.rank ^ (1 << k) for k in range(dims)]
        sendrecv = comm.sendrecv
        for r in range(rounds):
            for k in range(dims):
                partner = partners[k]
                yield from sendrecv(partner, partner,
                                    nbytes=counts[k][r] * 8, sendtag=k)
            count = min(bucket_n, my_updates - r * bucket_n)
            yield from comm.compute(nbytes=8.0 * count, flops=count,
                                    kernel="random_access")
            applied += count
        elapsed = comm.now - t0
        return elapsed, applied, table
    pos = 0
    while pos < my_updates:
        bucket = stream[pos:pos + cfg.bucket]
        pos += cfg.bucket
        held = bucket
        # dimension-ordered hypercube routing
        for k in range(dims):
            dest = (held & mask) // np.uint64(local)
            mine_bit = np.uint64((comm.rank >> k) & 1)
            go = (dest >> np.uint64(k)) & np.uint64(1)
            moving = held[go != mine_bit]
            partner = comm.rank ^ (1 << k)
            res = yield from comm.sendrecv(
                partner, partner,
                data=moving,
                nbytes=int(moving.nbytes),
                sendtag=k,
            )
            held = held[go == mine_bit]
            if res.data is not None and len(res.data):
                held = np.concatenate([held, res.data])
        count = len(held)
        if count:
            yield from comm.compute(nbytes=8.0 * count, flops=count,
                                    kernel="random_access")
            idx = (held & mask) - np.uint64(comm.rank * local)
            np.bitwise_xor.at(table, idx.astype(np.int64), held)
            applied += count
    elapsed = comm.now - t0
    return elapsed, applied, table


def reference_table(seed: int, nprocs: int, cfg: RandomAccessConfig) -> np.ndarray:
    """Serial replay of every rank's update stream (validation oracle)."""
    local = cfg.local_table_words
    total = local * nprocs
    table = np.arange(total, dtype=np.uint64)
    mask = np.uint64(total - 1)
    for r in range(nprocs):
        stream = _rank_updates(seed, r, local * cfg.updates_per_word)
        idx = (stream & mask).astype(np.int64)
        np.bitwise_xor.at(table, idx, stream)
    return table


def run_randomaccess(machine: MachineSpec, nprocs: int,
                     cfg: RandomAccessConfig | None = None,
                     mode: str = "auto") -> RandomAccessResult:
    cfg = cfg or RandomAccessConfig()
    total_updates = cfg.local_table_words * cfg.updates_per_word * nprocs
    if mode == "auto":
        pow2 = nprocs & (nprocs - 1) == 0
        mode = "algorithmic" if (pow2 and nprocs <= 64) else "macro"
    if mode == "macro":
        elapsed = _macro_time(machine, nprocs, cfg)
    else:
        cluster = Cluster(machine, nprocs)
        res = cluster.run(randomaccess_program, cfg)
        elapsed = max(r[0] for r in res.results)
    return RandomAccessResult(
        gups=total_updates / elapsed / 1e9,
        elapsed=elapsed,
        nprocs=nprocs,
        total_updates=total_updates,
    )


def _macro_time(machine: MachineSpec, nprocs: int,
                cfg: RandomAccessConfig) -> float:
    """Closed-form time for the bucketed hypercube routing."""
    ctx = macro.MacroContext.from_machine(machine, nprocs)
    cluster = Cluster(machine, nprocs)
    my_updates = cfg.local_table_words * cfg.updates_per_word
    rounds = math.ceil(my_updates / cfg.bucket)
    dims = max(1, math.ceil(math.log2(max(nprocs, 2))))
    t_round = 0.0
    dist = 1
    for _k in range(dims):
        # on average half the held updates move each dimension
        t_round += ctx.exchange_step(8.0 * cfg.bucket / 2.0, dist)
        dist <<= 1
    t_round += cluster.compute_time(
        flops=cfg.bucket, nbytes=8.0 * cfg.bucket, kernel="random_access"
    )
    return rounds * t_round
