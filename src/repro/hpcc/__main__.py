"""Command-line HPCC runner: an ``hpccoutf.txt`` for simulated machines.

Examples::

    python -m repro.hpcc --machine sx8 -p 64
    python -m repro.hpcc --machine opteron -p 64 --hpl-only
"""

from __future__ import annotations

import argparse
import sys
import time

from ..machine import MACHINES, get_machine
from .hpl import hpl_model_time
from .suite import run_hpcc


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.hpcc",
        description="Run the HPC Challenge suite on a simulated machine.",
    )
    ap.add_argument("--machine", default="sx8",
                    help=f"one of: {', '.join(sorted(MACHINES))}")
    ap.add_argument("-p", "--nprocs", type=int, default=16)
    ap.add_argument("--hpl-only", action="store_true")
    ap.add_argument("--verify", action="store_true",
                    help="run the numeric verification battery instead")
    args = ap.parse_args(argv)

    machine = get_machine(args.machine)
    p = args.nprocs
    t0 = time.time()
    if args.verify:
        from .verification import run_verification

        report = run_verification(machine, p)
        print(report)
        return 0 if report.all_passed else 1
    if args.hpl_only:
        hpl = hpl_model_time(machine, p)
        print(f"G-HPL: {hpl.tflops * 1e3:.2f} GFlop/s "
              f"(N={hpl.n}, {hpl.efficiency * 100:.1f}% of peak)")
        return 0

    r = run_hpcc(machine, p)
    print(f"HPC Challenge on {machine.label}, {p} CPUs "
          f"(simulated in {time.time() - t0:.1f}s host time)")
    print("-" * 60)
    rows = [
        ("G-HPL", f"{r.g_hpl_tflops * 1e3:.2f} GFlop/s"),
        ("G-PTRANS", f"{r.g_ptrans_gbs:.2f} GB/s"),
        ("G-RandomAccess", f"{r.g_randomaccess_gups:.5f} GUP/s"),
        ("G-FFTE", f"{r.g_ffte_gflops:.2f} GFlop/s"),
        ("EP-STREAM Copy", f"{r.ep_stream_copy_gbs:.2f} GB/s per process"),
        ("EP-STREAM Triad", f"{r.ep_stream_triad_gbs:.2f} GB/s per process"),
        ("EP-DGEMM", f"{r.ep_dgemm_gflops:.2f} GFlop/s per process"),
        ("RandomRing bandwidth", f"{r.ring_bandwidth_gbs:.4f} GB/s per process"),
        ("RandomRing latency", f"{r.ring_latency_us:.2f} us"),
    ]
    for k, v in rows:
        print(f"{k:<22s} {v}")
    print("-" * 60)
    print(f"{'ring B/KFlop':<22s} {r.ring_bw_b_per_kflop:.1f}")
    print(f"{'STREAM Byte/Flop':<22s} {r.stream_over_hpl:.3f}")
    print(f"{'EP-DGEMM / G-HPL':<22s} {r.dgemm_over_hpl:.3f}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
