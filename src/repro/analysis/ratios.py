"""The paper's ratio-based analysis (§4.1.2).

Absolute HPL numbers cannot compare the *balance* of systems of different
sizes, so the paper normalises every HPCC result twice:

1. divide by the system's G-HPL (flops-relative balance), then
2. divide each column by the column maximum (best system = 1.0).

:func:`kiviat_normalise` implements exactly that for Fig 5;
:func:`table3_maxima` extracts the per-column absolute maxima that the
paper prints as Table 3.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from ..hpcc.suite import HPCCResult

#: Fig 5 column order, as in the paper.
KIVIAT_COLUMNS = (
    "G-HPL",
    "G-EP DGEMM/G-HPL",
    "G-FFTE/G-HPL",
    "G-Ptrans/G-HPL",
    "G-StreamCopy/G-HPL",
    "RandRingBW/PP-HPL",
    "1/RandRingLatency",
    "G-RandomAccess/G-HPL",
)

#: Units for Table 3, matching the paper's rendering.
TABLE3_UNITS = {
    "G-HPL": "TF/s",
    "G-EP DGEMM/G-HPL": "",
    "G-FFTE/G-HPL": "",
    "G-Ptrans/G-HPL": "B/F",
    "G-StreamCopy/G-HPL": "B/F",
    "RandRingBW/PP-HPL": "B/F",
    "1/RandRingLatency": "1/us",
    "G-RandomAccess/G-HPL": "Update/F",
}

#: Columns built on *global* benchmarks; the paper only reports them for
#: systems whose HPL exceeds 1 TFlop/s ("the small systems have an undue
#: advantage ... because of better scaling").
GLOBAL_COLUMNS = frozenset(
    {"G-FFTE/G-HPL", "G-Ptrans/G-HPL", "G-RandomAccess/G-HPL"}
)

ONE_TFLOPS = 1.0  # threshold on g_hpl_tflops


def ratio_row(result: HPCCResult) -> dict[str, float | None]:
    """One machine's raw ratio values (before column normalisation)."""
    big = result.g_hpl_tflops > ONE_TFLOPS
    return {
        "G-HPL": result.g_hpl_tflops,
        "G-EP DGEMM/G-HPL": result.dgemm_over_hpl,
        "G-FFTE/G-HPL": result.ffte_over_hpl if big else None,
        "G-Ptrans/G-HPL": result.ptrans_over_hpl if big else None,
        "G-StreamCopy/G-HPL": result.stream_over_hpl,
        "RandRingBW/PP-HPL": result.ring_bw_over_hpl,
        "1/RandRingLatency": result.inv_ring_latency,
        "G-RandomAccess/G-HPL": result.randomaccess_over_hpl if big else None,
    }


@dataclass(frozen=True)
class KiviatData:
    """Fig 5 data: normalised values per machine plus column maxima."""

    machines: tuple[str, ...]
    columns: tuple[str, ...]
    raw: dict[str, dict[str, float | None]]        # machine -> column -> value
    normalised: dict[str, dict[str, float | None]]  # best system = 1.0
    maxima: dict[str, float]                        # Table 3


def kiviat_normalise(results: Sequence[HPCCResult]) -> KiviatData:
    """Build the Fig 5 / Table 3 data from one suite result per machine."""
    raw = {r.machine: ratio_row(r) for r in results}
    maxima: dict[str, float] = {}
    for col in KIVIAT_COLUMNS:
        vals = [row[col] for row in raw.values() if row[col] is not None]
        maxima[col] = max(vals) if vals else float("nan")
    normalised = {
        m: {
            col: (row[col] / maxima[col] if row[col] is not None else None)
            for col in KIVIAT_COLUMNS
        }
        for m, row in raw.items()
    }
    return KiviatData(
        machines=tuple(raw),
        columns=KIVIAT_COLUMNS,
        raw=raw,
        normalised=normalised,
        maxima=maxima,
    )


def table3_maxima(results: Sequence[HPCCResult]) -> dict[str, float]:
    """The paper's Table 3: the absolute value behind each Fig 5 '1.0'."""
    return kiviat_normalise(results).maxima


def kiviat_violations(data: KiviatData, tol: float = 1e-12) -> list[str]:
    """Normalisation defects in Fig 5 data (empty list = well-formed).

    Ratio-normalised columns must satisfy, by construction: every value
    lies in (0, 1 + tol], and exactly one machine sits at the column
    maximum 1.0 (the system that defines it).  Any violation means the
    normalisation pipeline — not the calibration — is broken.
    """
    bad: list[str] = []
    for col in data.columns:
        ones = values = 0
        for m in data.machines:
            v = data.normalised[m].get(col)
            if v is None:
                continue
            values += 1
            if not math.isfinite(v) or v <= 0 or v > 1 + tol:
                bad.append(f"{col}[{m}]: normalised value {v!r} outside (0, 1]")
            elif abs(v - 1.0) <= tol:
                ones += 1
        # Global-benchmark columns are empty below the paper's 1 TFlop/s
        # reporting cutoff; an absent column is not a defect.
        if values and ones != 1:
            bad.append(f"{col}: {ones} machines at the column maximum "
                       f"(expected exactly 1)")
    return bad


def best_machine(data: KiviatData, column: str) -> str:
    """Which machine attains the column maximum (Fig 5 winner)."""
    for m, row in data.raw.items():
        v = row[column]
        if v is not None and v == data.maxima[column]:
            return m
    raise KeyError(column)
