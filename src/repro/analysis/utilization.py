"""Post-run analysis of traced executions.

Turns a :class:`~repro.core.trace.Tracer` into the quantities a
performance engineer asks for after a run: per-resource utilisation, the
rank-to-rank communication matrix, message-size histograms and
inter-/intra-node traffic splits.  Used by the topology ablation bench
and handy for interactive work::

    cluster = Cluster(machine, 64, trace=True)
    cluster.run(program)
    report = utilization_report(cluster)
    print(format_report(report))
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.trace import Tracer
from ..mpi.cluster import Cluster


@dataclass(frozen=True)
class UtilizationReport:
    elapsed: float
    message_count: int
    total_bytes: int
    inter_node_bytes: int
    intra_node_fraction: float          # of bytes
    egress_utilization: dict[int, float]   # node -> busy/elapsed
    core_utilization: dict[int, float]     # level -> busy/elapsed
    compute_fraction: dict[int, float]     # rank -> compute busy/elapsed
    comm_matrix: np.ndarray                # bytes sent [src][dst]


def comm_matrix(tracer: Tracer, nprocs: int) -> np.ndarray:
    """Bytes sent from each rank to each rank."""
    mat = np.zeros((nprocs, nprocs))
    for m in tracer.messages:
        mat[m.src, m.dst] += m.nbytes
    return mat


def message_size_histogram(tracer: Tracer) -> dict[int, int]:
    """Message count per power-of-two size bucket (key = bucket floor)."""
    hist: dict[int, int] = {}
    for m in tracer.messages:
        bucket = 0 if m.nbytes == 0 else 1 << (int(m.nbytes).bit_length() - 1)
        hist[bucket] = hist.get(bucket, 0) + 1
    return dict(sorted(hist.items()))


def utilization_report(cluster: Cluster) -> UtilizationReport:
    """Build the full report from a traced cluster run."""
    tracer = cluster.tracer
    fabric = cluster.fabric
    elapsed = cluster.engine.now if cluster.engine else 0.0
    if elapsed <= 0:
        elapsed = 1e-30
    total = tracer.total_bytes
    inter = tracer.inter_node_bytes
    egress = {
        node: fabric.egress_resource(node).busy_time / elapsed
        for node in range(fabric.n_nodes)
    }
    core = {
        level: fabric.core_resource(level).busy_time / elapsed
        for level in range(1, fabric.topology.n_levels + 1)
    }
    compute = {
        rank: tracer.compute_time(rank) / elapsed
        for rank in range(cluster.nprocs)
    }
    return UtilizationReport(
        elapsed=elapsed,
        message_count=tracer.message_count,
        total_bytes=total,
        inter_node_bytes=inter,
        intra_node_fraction=(1.0 - inter / total) if total else 0.0,
        egress_utilization=egress,
        core_utilization=core,
        compute_fraction=compute,
        comm_matrix=comm_matrix(tracer, cluster.nprocs),
    )


def format_report(report: UtilizationReport, top: int = 4) -> str:
    """Human-readable rendering of a :class:`UtilizationReport`."""
    lines = [
        f"elapsed:            {report.elapsed * 1e6:.1f} us",
        f"messages:           {report.message_count}",
        f"bytes on the wire:  {report.total_bytes / 1e6:.2f} MB "
        f"({report.intra_node_fraction * 100:.0f}% intra-node)",
    ]
    busiest = sorted(report.egress_utilization.items(),
                     key=lambda kv: -kv[1])[:top]
    lines.append("busiest NICs:       " + ", ".join(
        f"node {n}: {u * 100:.0f}%" for n, u in busiest))
    for level, u in report.core_utilization.items():
        lines.append(f"core level {level}:       {u * 100:.1f}% busy")
    if report.compute_fraction:
        avg = float(np.mean(list(report.compute_fraction.values())))
        lines.append(f"compute fraction:   {avg * 100:.1f}% (mean over ranks)")
    return "\n".join(lines)
