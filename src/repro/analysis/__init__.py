"""The paper's ratio-based analysis utilities."""

from .ratios import (
    GLOBAL_COLUMNS,
    KIVIAT_COLUMNS,
    TABLE3_UNITS,
    KiviatData,
    best_machine,
    kiviat_normalise,
    ratio_row,
    table3_maxima,
)
# Chrome-trace export lives in repro.obs.exporters now; re-exported here
# (bypassing the deprecated .chrome_trace shim) for backward compatibility.
from ..obs.exporters import chrome_trace_events, write_chrome_trace
from .energy import (
    RANKED_MACHINES,
    EnergyProfile,
    energy_ranking,
    hpl_energy_profile,
    hpl_power_w,
)
from .fitting import LogGPFit, fit_loggp, fit_report, measure_one_way
from .scaling import ScalingPoint, ScalingSeries, build_series, ratio_series
from .utilization import (
    UtilizationReport,
    comm_matrix,
    format_report,
    message_size_histogram,
    utilization_report,
)

__all__ = [
    "KiviatData",
    "kiviat_normalise",
    "table3_maxima",
    "ratio_row",
    "best_machine",
    "KIVIAT_COLUMNS",
    "TABLE3_UNITS",
    "GLOBAL_COLUMNS",
    "ScalingPoint",
    "ScalingSeries",
    "build_series",
    "ratio_series",
    "LogGPFit",
    "fit_loggp",
    "fit_report",
    "measure_one_way",
    "chrome_trace_events",
    "write_chrome_trace",
    "EnergyProfile",
    "RANKED_MACHINES",
    "energy_ranking",
    "hpl_energy_profile",
    "hpl_power_w",
    "UtilizationReport",
    "utilization_report",
    "comm_matrix",
    "message_size_histogram",
    "format_report",
]
