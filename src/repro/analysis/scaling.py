"""Scaling-series helpers for the balance figures (Figs 1-4).

A *balance series* pairs each CPU count with the system's HPL performance
(x-axis) and an accumulated quantity or its HPL ratio (y-axis) — the
paper plots everything against HPL Tflop/s rather than CPU count so
differently-sized systems land on one chart.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class ScalingPoint:
    cpus: int
    hpl_tflops: float
    value: float


@dataclass(frozen=True)
class ScalingSeries:
    machine: str
    label: str
    points: tuple[ScalingPoint, ...]

    def xy(self, x: str = "hpl_tflops") -> tuple[list[float], list[float]]:
        xs = [getattr(p, x) for p in self.points]
        ys = [p.value for p in self.points]
        return xs, ys

    @property
    def final(self) -> ScalingPoint:
        return self.points[-1]


def build_series(
    machine_label: str,
    machine_name: str,
    cpu_counts: Sequence[int],
    hpl_fn: Callable[[int], float],
    value_fn: Callable[[int, float], float],
) -> ScalingSeries:
    """Evaluate ``value_fn(cpus, hpl_tflops)`` over a CPU sweep."""
    pts = []
    for p in cpu_counts:
        hpl = hpl_fn(p)
        pts.append(ScalingPoint(cpus=p, hpl_tflops=hpl,
                                value=value_fn(p, hpl)))
    return ScalingSeries(machine=machine_name, label=machine_label,
                         points=tuple(pts))


def ratio_series(series: ScalingSeries, scale: float = 1.0,
                 label_suffix: str = " (ratio)") -> ScalingSeries:
    """Divide each value by its HPL Gflop/s (the Figs 2/4 transform)."""
    pts = tuple(
        ScalingPoint(
            cpus=p.cpus,
            hpl_tflops=p.hpl_tflops,
            value=scale * p.value / (p.hpl_tflops * 1e3)
            if p.hpl_tflops else float("nan"),
        )
        for p in series.points
    )
    return ScalingSeries(machine=series.machine,
                         label=series.label + label_suffix, points=pts)
