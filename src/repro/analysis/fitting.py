"""Fit LogGP-style parameters from measured ping-pong sweeps.

Closes the loop on the model: treat the simulator the way a performance
engineer treats a real machine — run a message-size ladder, regress

    t(n) = L_eff + n / B_eff

and compare the fitted latency/bandwidth against the machine's
configured constants.  ``tests/test_fitting.py`` asserts the round trip
recovers the catalog values, which is a strong end-to-end check that no
hidden cost leaks into the transport.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.system import MachineSpec
from ..mpi.cluster import Cluster


@dataclass(frozen=True)
class LogGPFit:
    machine: str
    intra_node: bool
    latency_us: float        # fitted zero-byte one-way time
    bandwidth_gbs: float     # fitted asymptotic bandwidth
    r_squared: float
    sizes: tuple[int, ...]
    times_us: tuple[float, ...]

    @property
    def n_half(self) -> float:
        """Half-performance message size: n where t = 2 * latency."""
        return self.latency_us * 1e-6 * self.bandwidth_gbs * 1e9


def measure_one_way(machine: MachineSpec, nbytes: int,
                    intra_node: bool = False) -> float:
    """One-way transfer time between two ranks (seconds)."""
    partner = 1 if intra_node else machine.node.cpus  # first off-node rank
    nprocs = max(2, partner + 1)

    def prog(comm):
        if comm.rank == 0:
            yield from comm.send(partner, nbytes=nbytes)
        elif comm.rank == partner:
            yield from comm.recv(0)
            return comm.now

    return Cluster(machine, nprocs).run(prog).results[partner]


def fit_loggp(machine: MachineSpec, intra_node: bool = False,
              sizes: tuple[int, ...] = (0, 64, 1024, 16384, 262144,
                                        1 << 20, 4 << 20)) -> LogGPFit:
    """Regress t(n) = L + n/B over a size ladder."""
    times = np.array([measure_one_way(machine, s, intra_node)
                      for s in sizes])
    n = np.array(sizes, dtype=float)
    # least squares for [L, 1/B]
    a = np.stack([np.ones_like(n), n], axis=1)
    (lat, inv_bw), res, _rank, _sv = np.linalg.lstsq(a, times, rcond=None)
    pred = a @ np.array([lat, inv_bw])
    ss_tot = float(np.sum((times - times.mean()) ** 2))
    r2 = 1.0 - float(np.sum((times - pred) ** 2)) / ss_tot if ss_tot else 1.0
    return LogGPFit(
        machine=machine.name,
        intra_node=intra_node,
        latency_us=float(lat) * 1e6,
        bandwidth_gbs=(1.0 / float(inv_bw)) / 1e9 if inv_bw > 0 else float("inf"),
        r_squared=r2,
        sizes=tuple(sizes),
        times_us=tuple(float(t) * 1e6 for t in times),
    )


def fit_report(machine: MachineSpec) -> str:
    """Human-readable inter/intra fits next to the configured constants."""
    inter = fit_loggp(machine, intra_node=False)
    intra = fit_loggp(machine, intra_node=True)
    params = machine.fabric_params()
    lines = [
        f"LogGP fit for {machine.label}",
        f"  inter-node: L = {inter.latency_us:.2f} us, "
        f"B = {inter.bandwidth_gbs:.2f} GB/s (R^2 {inter.r_squared:.4f}); "
        f"configured burst {params.effective_point_bw / 1e9:.2f} GB/s",
        f"  intra-node: L = {intra.latency_us:.2f} us, "
        f"B = {intra.bandwidth_gbs:.2f} GB/s (R^2 {intra.r_squared:.4f}); "
        f"configured flow {params.shm_flow_bw / 1e9:.2f} GB/s",
        f"  n_1/2 (inter) = {inter.n_half / 1024:.1f} KiB",
    ]
    return "\n".join(lines)
