"""Energy-efficiency ranking of the simulated machines (Green500 style).

The 2006 paper compares its systems on performance and balance ratios;
energy is the dimension it could not measure.  With a
:class:`~repro.obs.energy.PowerModel` on every
:class:`~repro.machine.system.MachineSpec`, this module derives each
machine's *analytic* energy profile for a sustained HPL run — the same
closed-form :func:`~repro.hpcc.hpl.hpl_model_time` the figures use, so a
full ranking costs milliseconds and needs no simulation sweep.

The power accounting during HPL is deliberately simple and stated:

* every rank's core draws its busy wattage for the whole run (HPL keeps
  the cores pinned on DGEMM between short exchanges);
* every node pays the constant memory draw and the NIC idle floor;
* NIC/link *transfer* power is omitted — for HPL its time share is small
  against the always-on floors, and including it would require a traced
  run per machine where this profile is meant to be closed-form.  The
  traced accounting in :mod:`repro.obs.energy` (``--energy``) does price
  it.

The headline metric is sustained Mflop/s per watt — the Green500 metric
— alongside total energy-to-solution and the energy-delay product.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hpcc.hpl import hpl_model_time
from ..machine import ALL_MACHINES
from ..machine.future import FUTURE_MACHINES
from ..machine.system import MachineSpec

#: Every machine the ranking covers: the paper's systems (with the
#: NUMALINK3 Altix and X1 SSP variants) plus the future-work projections.
RANKED_MACHINES: tuple[MachineSpec, ...] = (
    tuple(ALL_MACHINES) + tuple(FUTURE_MACHINES)
)


@dataclass(frozen=True)
class EnergyProfile:
    """Analytic energy profile of one machine's sustained HPL run."""

    machine: str            # registry name
    label: str              # human label
    nprocs: int             # ranks in the profiled run
    n_nodes: int
    hpl_gflops: float       # sustained HPL rate
    elapsed_s: float        # virtual time-to-solution
    power_w: float          # modelled sustained system draw
    mflops_per_w: float     # Green500 metric
    energy_j: float         # energy-to-solution
    edp_js: float           # energy-delay product

    @property
    def power_kw(self) -> float:
        return self.power_w / 1e3


def hpl_power_w(machine: MachineSpec, nprocs: int) -> float:
    """Modelled sustained system draw (W) during an HPL run.

    All ``nprocs`` cores busy; every occupied node pays its memory and
    NIC idle floors (see the module docstring for what is omitted).
    """
    power = machine.power
    if power is None:
        raise ValueError(f"machine {machine.name!r} has no power model")
    n_nodes = machine.n_nodes(nprocs)
    return (power.cpu_busy_w * nprocs
            + (power.mem_w + power.nic_idle_w) * n_nodes)


def hpl_energy_profile(machine: MachineSpec,
                       nprocs: int | None = None) -> EnergyProfile:
    """Energy profile at ``nprocs`` ranks (default: the machine's max)."""
    p = machine.max_cpus if nprocs is None else min(nprocs, machine.max_cpus)
    p = max(1, p)
    res = hpl_model_time(machine, p)
    watts = hpl_power_w(machine, p)
    energy_j = watts * res.elapsed
    return EnergyProfile(
        machine=machine.name,
        label=machine.label,
        nprocs=p,
        n_nodes=machine.n_nodes(p),
        hpl_gflops=res.gflops,
        elapsed_s=res.elapsed,
        power_w=watts,
        mflops_per_w=res.gflops * 1e3 / watts,
        energy_j=energy_j,
        edp_js=energy_j * res.elapsed,
    )


def energy_ranking(machines: tuple[MachineSpec, ...] = RANKED_MACHINES,
                   nprocs: int | None = None) -> list[EnergyProfile]:
    """Profiles for every machine with a power model, best Mflop/s/W first.

    Ties (same efficiency) order by machine name so the ranking is
    reproducible byte for byte.
    """
    profiles = [hpl_energy_profile(m, nprocs)
                for m in machines if m.power is not None]
    return sorted(profiles, key=lambda e: (-e.mflops_per_w, e.machine))
