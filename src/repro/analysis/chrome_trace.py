"""Export traced runs to the Chrome trace-event format.

Open the produced JSON in ``chrome://tracing`` / Perfetto to inspect a
simulated run visually: one row per rank, compute phases as duration
events, messages as flow arrows between ranks.

Usage::

    cluster = Cluster(machine, 16, trace=True)
    cluster.run(program)
    write_chrome_trace(cluster, "run.json")
"""

from __future__ import annotations

import json
from pathlib import Path

from ..mpi.cluster import Cluster

#: Trace timestamps are microseconds in the Chrome format.
_US = 1e6


def chrome_trace_events(cluster: Cluster) -> list[dict]:
    """Build the trace-event list from a traced cluster run."""
    tracer = cluster.tracer
    events: list[dict] = []
    for rank in range(cluster.nprocs):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": rank,
            "args": {"name": f"rank {rank} (node "
                             f"{cluster.placement[rank]})"},
        })
    for c in tracer.computes:
        events.append({
            "name": c.kernel,
            "cat": "compute",
            "ph": "X",
            "pid": 0,
            "tid": c.rank,
            "ts": c.t_start * _US,
            "dur": max((c.t_end - c.t_start) * _US, 0.001),
            "args": {"flops": c.flops, "bytes": c.bytes_moved},
        })
    for i, m in enumerate(tracer.messages):
        common = {
            "name": f"msg {m.nbytes}B",
            "cat": "message",
            "id": i,
            "pid": 0,
        }
        events.append({**common, "ph": "s", "tid": m.src,
                       "ts": m.t_inject * _US})
        events.append({**common, "ph": "f", "bp": "e", "tid": m.dst,
                       "ts": m.t_deliver * _US})
        # a visible sliver on the receiving row for each delivery
        events.append({
            "name": f"recv {m.nbytes}B from {m.src}",
            "cat": "message",
            "ph": "X",
            "pid": 0,
            "tid": m.dst,
            "ts": m.t_deliver * _US,
            "dur": 0.1,
            "args": {"tag": m.tag, "intra_node": m.intra_node},
        })
    return events


def write_chrome_trace(cluster: Cluster, path: str | Path) -> Path:
    """Serialise the trace to ``path`` (Chrome trace JSON)."""
    path = Path(path)
    payload = {"traceEvents": chrome_trace_events(cluster),
               "displayTimeUnit": "ms"}
    path.write_text(json.dumps(payload))
    return path
