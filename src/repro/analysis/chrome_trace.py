"""Deprecated shim: Chrome-trace export moved to :mod:`repro.obs.exporters`.

This module re-exports :func:`chrome_trace_events` and
:func:`write_chrome_trace` for backward compatibility and will be
removed in a future release; import from ``repro.obs`` (or
``repro.analysis``, which forwards) instead.
"""

from __future__ import annotations

import warnings

from ..obs.exporters import chrome_trace_events, write_chrome_trace

__all__ = ["chrome_trace_events", "write_chrome_trace"]

warnings.warn(
    "repro.analysis.chrome_trace is deprecated; use repro.obs.exporters "
    "(chrome_trace_events / write_chrome_trace)",
    DeprecationWarning,
    stacklevel=2,
)
