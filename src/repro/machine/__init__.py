"""Machine models: processors, SMP nodes, interconnects, and the catalog
of the paper's five platforms."""

from .catalog import (
    ALL_MACHINES,
    ALTIX_NL3,
    ALTIX_NL4,
    MACHINES,
    OPTERON,
    PAPER_FIVE,
    SX8,
    X1_MSP,
    X1_SSP,
    XEON,
    get_machine,
)
from .node import NodeSpec
from .processor import KERNELS, ProcessorSpec
from .system import MachineSpec, NetworkSpec

__all__ = [
    "ProcessorSpec",
    "NodeSpec",
    "NetworkSpec",
    "MachineSpec",
    "KERNELS",
    "get_machine",
    "MACHINES",
    "PAPER_FIVE",
    "ALL_MACHINES",
    "ALTIX_NL4",
    "ALTIX_NL3",
    "X1_MSP",
    "X1_SSP",
    "OPTERON",
    "XEON",
    "SX8",
]
