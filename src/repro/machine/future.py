"""Projections of the paper's future-work systems (§5.2).

"In the future we plan to ... include five more architectures — Linux
clusters with different networks, IBM Blue Gene/P, Cray XT4, Cray X1E
and a cluster of IBM POWER5+."  The authors never published that sequel;
these specs execute it inside the simulator.

Unlike :mod:`repro.machine.catalog`, nothing here is calibrated against
measured anchors from the paper — the constants are projections from the
public architecture documents of each system (clock rates, link speeds,
published MPI latencies), clearly labelled as such.  They are exercised
by ``tests/test_future_machines.py`` and the
``examples/future_systems.py`` sequel study.
"""

from __future__ import annotations

from ..obs.energy import PowerModel
from .node import NodeSpec
from .processor import ProcessorSpec
from .system import MachineSpec, NetworkSpec

# Power models follow the same per-component scheme as the catalog
# (see docs/MODEL.md §13); like everything else in this module they are
# projections from public architecture documents, not paper anchors.

# ---------------------------------------------------------------------------
# IBM Blue Gene/P — 3-D torus, modest cores, extreme scale-out
# ---------------------------------------------------------------------------

_BGP_PROC = ProcessorSpec(
    name="PowerPC 450 (850 MHz)",
    clock_ghz=0.85,
    peak_gflops=3.4,
    is_vector=False,
    dgemm_eff=0.90,
    hpl_eff=0.78,          # BG/P Linpack runs sustained ~78-82%
    fft_eff=0.05,
    stream_copy_gbs=2.9,
    stream_triad_gbs=2.6,
    random_update_gups=0.01,
)

_BGP_NODE = NodeSpec(
    cpus=4,
    memory_gb=2.0,
    shm_flow_gbs=2.0,
    shm_node_gbs=5.0,
    shm_latency_us=0.8,
    memcpy_gbs=4.0,
)

_BGP_NET = NetworkSpec(
    name="BG/P 3D torus",
    topology_kind="torus3d",
    link_gbs=0.425,          # 3.4 Gb/s per torus link
    nic_gbs=2.4,             # six links feed one node
    base_latency_us=2.5,
    per_hop_latency_us=0.1,
    send_overhead_us=0.8,
    recv_overhead_us=0.8,
    eager_threshold=1200,
    bw_efficiency=0.85,
)

# Blue Gene/P was the efficiency landmark: ~31 kW per 1024-node rack
# including the torus, ~30 W per 4-core node.  ~6 W per core busy at
# 850 MHz, ~3.5 W idle; DDR2 + link chips make up the rest.
_BGP_POWER = PowerModel(
    cpu_busy_w=6.0, cpu_idle_w=3.5,
    nic_active_w=2.5, nic_idle_w=1.5,
    link_active_w=1.0, mem_w=6.0,
    provenance="IBM BG/P rack power (~31 kW / 1024 nodes, IBM Journal "
               "of R&D 52(1/2)) apportioned per component.",
)

BLUEGENE_P = MachineSpec(
    name="bluegene_p",
    label="IBM Blue Gene/P (projection)",
    system_type="Scalar",
    processor=_BGP_PROC,
    node=_BGP_NODE,
    network=_BGP_NET,
    max_cpus=4096,
    topology_label="3D-torus",
    operating_system="CNK/Linux",
    location="(projection)",
    processor_vendor="IBM",
    system_vendor="IBM",
    notes="Future-work projection; not calibrated against the paper.",
    power=_BGP_POWER,
)

# ---------------------------------------------------------------------------
# Cray XT4 — SeaStar2 3-D torus, dual-core Opterons
# ---------------------------------------------------------------------------

_XT4_PROC = ProcessorSpec(
    name="AMD Opteron dual-core (2.6 GHz)",
    clock_ghz=2.6,
    peak_gflops=5.2,
    is_vector=False,
    dgemm_eff=0.90,
    hpl_eff=0.75,
    fft_eff=0.04,
    stream_copy_gbs=2.8,
    stream_triad_gbs=2.5,
    random_update_gups=0.015,
)

_XT4_NODE = NodeSpec(
    cpus=2,
    memory_gb=4.0,
    shm_flow_gbs=1.8,
    shm_node_gbs=3.5,
    shm_latency_us=0.7,
    memcpy_gbs=3.5,
)

_XT4_NET = NetworkSpec(
    name="SeaStar2 3D torus",
    topology_kind="torus3d",
    link_gbs=3.8,
    nic_gbs=2.0,
    base_latency_us=4.5,
    per_hop_latency_us=0.06,
    send_overhead_us=1.0,
    recv_overhead_us=1.0,
    eager_threshold=16 * 1024,
    bw_efficiency=0.80,
)

# Opteron 2218-class dual-core: 95 W TDP per socket -> ~47 W per core
# busy, ~20 W idle with PowerNow!.  SeaStar2 + router ~15 W; 4 GB
# DDR2 ~20 W per node.
_XT4_POWER = PowerModel(
    cpu_busy_w=47.0, cpu_idle_w=20.0,
    nic_active_w=15.0, nic_idle_w=10.0,
    link_active_w=5.0, mem_w=20.0,
    provenance="Opteron dual-core 95 W TDP (AMD datasheet) split per "
               "core; SeaStar2 power from Cray XT4 site planning.",
)

CRAY_XT4 = MachineSpec(
    name="cray_xt4",
    label="Cray XT4 (projection)",
    system_type="Scalar",
    processor=_XT4_PROC,
    node=_XT4_NODE,
    network=_XT4_NET,
    max_cpus=2048,
    topology_label="3D-torus",
    operating_system="CNL",
    location="(projection)",
    processor_vendor="AMD",
    system_vendor="Cray",
    notes="Future-work projection; not calibrated against the paper.",
    power=_XT4_POWER,
)

# ---------------------------------------------------------------------------
# Cray X1E — the doubled X1: same network, 2x denser MSPs
# ---------------------------------------------------------------------------

_X1E_PROC = ProcessorSpec(
    name="Cray X1E MSP (1.13 GHz)",
    clock_ghz=1.13,
    peak_gflops=18.0,
    is_vector=True,
    dgemm_eff=0.94,
    hpl_eff=0.88,
    fft_eff=0.45,
    stream_copy_gbs=22.0,    # same memory system feeds 2x the peak
    stream_triad_gbs=20.0,
    random_update_gups=0.002,
    scalar_gflops=1.6,
)

_X1E_NODE = NodeSpec(
    cpus=8,                  # two MSP modules per node board
    memory_gb=32.0,
    shm_flow_gbs=9.0,
    shm_node_gbs=32.0,
    shm_latency_us=4.0,
    memcpy_gbs=16.0,
    stream_node_scale=0.85,  # denser boards share the memory ports
)

_X1E_NET = NetworkSpec(
    name="Cray X1E network",
    topology_kind="hypercube",
    link_gbs=8.0,
    nic_gbs=8.0,
    base_latency_us=6.0,
    per_hop_latency_us=0.5,
    send_overhead_us=1.2,
    recv_overhead_us=1.2,
    eager_threshold=64 * 1024,
    bw_efficiency=0.80,
    duplex_factor=1.3,
)

# X1E doubled compute density on the X1 power envelope: ~340 W per
# MSP busy at 1.13 GHz, idle fraction as the X1 (no vector clock
# gating); node memory/network budgets carry over per board.
_X1E_POWER = PowerModel(
    cpu_busy_w=340.0, cpu_idle_w=250.0,
    nic_active_w=25.0, nic_idle_w=18.0,
    link_active_w=25.0, mem_w=300.0,
    provenance="Scaled from the X1 cabinet apportionment (same "
               "network, 2x denser MSP modules per board).",
)

CRAY_X1E = MachineSpec(
    name="cray_x1e",
    label="Cray X1E (projection)",
    system_type="Vector",
    processor=_X1E_PROC,
    node=_X1E_NODE,
    network=_X1E_NET,
    max_cpus=128,
    topology_label="4D-hypercube",
    operating_system="UNICOS",
    location="(projection)",
    processor_vendor="Cray",
    system_vendor="Cray",
    notes="Future-work projection; the X1 with doubled compute density.",
    power=_X1E_POWER,
)

# ---------------------------------------------------------------------------
# IBM POWER5+ cluster — fat SMP nodes on the HPS federation switch
# ---------------------------------------------------------------------------

_P5_PROC = ProcessorSpec(
    name="IBM POWER5+ (1.9 GHz)",
    clock_ghz=1.9,
    peak_gflops=7.6,
    is_vector=False,
    dgemm_eff=0.92,
    hpl_eff=0.80,
    fft_eff=0.05,
    stream_copy_gbs=5.0,
    stream_triad_gbs=4.5,
    random_update_gups=0.012,
)

_P5_NODE = NodeSpec(
    cpus=16,
    memory_gb=64.0,
    shm_flow_gbs=3.5,
    shm_node_gbs=25.0,
    shm_latency_us=1.2,
    memcpy_gbs=6.0,
    stream_node_scale=0.9,
)

_P5_NET = NetworkSpec(
    name="HPS federation",
    topology_kind="fattree",
    link_gbs=2.0,
    nic_gbs=4.0,             # two links per node
    base_latency_us=4.0,
    per_hop_latency_us=0.3,
    send_overhead_us=1.0,
    recv_overhead_us=1.0,
    eager_threshold=64 * 1024,
    bw_efficiency=0.85,
    group_sizes=(16, 16),
    level_blocking=(1.0, 2.0),
)

# POWER5+ p575 node: ~5.5 kW for 16 cores + 64 GB + two HPS links ->
# ~180 W per core busy (module + its memory controller share), ~110 W
# idle; 64 GB DDR2 ~900 W; HPS adapter ~40 W.
_P5_POWER = PowerModel(
    cpu_busy_w=180.0, cpu_idle_w=110.0,
    nic_active_w=40.0, nic_idle_w=28.0,
    link_active_w=20.0, mem_w=900.0,
    provenance="IBM p5-575 site planning (~5.5 kW/node) apportioned "
               "per component.",
)

POWER5_CLUSTER = MachineSpec(
    name="power5",
    label="IBM POWER5+ cluster (projection)",
    system_type="Scalar",
    processor=_P5_PROC,
    node=_P5_NODE,
    network=_P5_NET,
    max_cpus=1024,
    topology_label="Fat-tree",
    operating_system="AIX",
    location="(projection)",
    processor_vendor="IBM",
    system_vendor="IBM",
    notes="Future-work projection; not calibrated against the paper.",
    power=_P5_POWER,
)

# ---------------------------------------------------------------------------
# Gigabit-Ethernet Linux cluster — the "different networks" data point
# ---------------------------------------------------------------------------

_GIGE_NET = NetworkSpec(
    name="Gigabit Ethernet",
    topology_kind="fattree",
    link_gbs=0.125,
    nic_gbs=0.125,
    base_latency_us=35.0,    # TCP stack latency
    per_hop_latency_us=2.0,
    send_overhead_us=8.0,    # kernel copies
    recv_overhead_us=8.0,
    eager_threshold=64 * 1024,
    bw_efficiency=0.9,
    duplex_factor=1.6,
    group_sizes=(24, 16),
    level_blocking=(1.0, 4.0),
)

# Same commodity nodes as the XT4 projection, but a ~4 W copper GigE
# NIC and shallow store-and-forward switches.
_GIGE_POWER = PowerModel(
    cpu_busy_w=47.0, cpu_idle_w=20.0,
    nic_active_w=4.0, nic_idle_w=2.0,
    link_active_w=3.0, mem_w=20.0,
    provenance="XT4 node budget with a commodity copper GigE NIC "
               "(~4 W, typical PHY+MAC datasheet figure).",
)

GIGE_CLUSTER = MachineSpec(
    name="gige",
    label="GigE Linux cluster (projection)",
    system_type="Scalar",
    processor=_XT4_PROC,     # same commodity Opterons
    node=_XT4_NODE,
    network=_GIGE_NET,
    max_cpus=512,
    topology_label="Flat-tree",
    operating_system="Linux",
    location="(projection)",
    processor_vendor="AMD",
    system_vendor="whitebox",
    notes="Future-work projection: commodity nodes on a TCP network.",
    power=_GIGE_POWER,
)

FUTURE_MACHINES = (BLUEGENE_P, CRAY_XT4, CRAY_X1E, POWER5_CLUSTER,
                   GIGE_CLUSTER)

FUTURE_BY_NAME = {m.name: m for m in FUTURE_MACHINES}
