"""SMP node model: CPU count, memory, intra-node communication."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigError
from ..core.units import GB_S, GIB, US


@dataclass(frozen=True)
class NodeSpec:
    """One SMP node (the unit attached to the interconnect)."""

    cpus: int                   # CPUs per node (paper Table 2)
    memory_gb: float            # usable memory per node
    shm_flow_gbs: float         # one intra-node MPI stream (GB/s)
    shm_node_gbs: float         # aggregate intra-node MPI bandwidth (GB/s)
    shm_latency_us: float       # intra-node zero-byte latency (us)
    memcpy_gbs: float           # local buffer copy bandwidth (GB/s)
    stream_node_scale: float = 1.0  # per-CPU STREAM multiplier, full node

    def __post_init__(self) -> None:
        if self.cpus < 1:
            raise ConfigError("node needs at least one CPU")
        if self.memory_gb <= 0:
            raise ConfigError("node memory must be positive")
        for attr in ("shm_flow_gbs", "shm_node_gbs", "memcpy_gbs"):
            if getattr(self, attr) <= 0:
                raise ConfigError(f"{attr} must be positive")
        if self.shm_latency_us < 0:
            raise ConfigError("shm_latency_us must be >= 0")
        if not (0.0 < self.stream_node_scale <= 1.0):
            raise ConfigError("stream_node_scale must be in (0, 1]")
        if self.shm_flow_gbs > self.shm_node_gbs:
            raise ConfigError("per-flow shm bandwidth exceeds node aggregate")

    @property
    def shm_flow_bw(self) -> float:
        return self.shm_flow_gbs * GB_S

    @property
    def shm_node_bw(self) -> float:
        return self.shm_node_gbs * GB_S

    @property
    def shm_latency(self) -> float:
        return self.shm_latency_us * US

    @property
    def memcpy_bw(self) -> float:
        return self.memcpy_gbs * GB_S

    @property
    def memory_bytes(self) -> float:
        return self.memory_gb * GIB
