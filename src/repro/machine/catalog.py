"""Catalog of the five platforms evaluated in the paper (plus variants).

Every constant is calibrated from either (a) the architectural description
in §2 of the paper (clock rates, peaks, CPUs/node, link bandwidths), or
(b) a measured anchor the paper itself reports, noted inline.  We are
reproducing *relative shapes*, so parameters were tuned so that the
harness's regenerated tables/figures preserve the paper's orderings and
approximate its ratio anchors (see EXPERIMENTS.md).

Variants:

* ``altix_nl4`` / ``altix_nl3`` — same box, NUMALINK4 vs NUMALINK3
  (the paper's Figs 1-5 plot both).
* ``x1_msp`` / ``x1_ssp`` — Cray X1 in multi-streaming (4 CPUs/node) vs
  single-streaming (16 CPUs/node) mode.
"""

from __future__ import annotations

from ..core.errors import ConfigError
from ..io.filesystem import HLRS_FILESYSTEM as _HLRS_FS
from ..obs.energy import PowerModel
from .node import NodeSpec
from .processor import ProcessorSpec
from .system import MachineSpec, NetworkSpec

# ---------------------------------------------------------------------------
# Power models
# ---------------------------------------------------------------------------
# The 2006 paper measured no power.  These per-component watt estimates
# come from vendor TDP sheets and contemporary installation power
# reports, documented per machine in the ``provenance`` field (and in
# docs/MODEL.md §13).  They exist so ``--energy`` runs can integrate
# energy-to-solution over the simulated busy intervals — treat absolute
# joules as order-of-magnitude estimates; the *relative* ranking is the
# deliverable.

# Itanium 2 Madison 9M @ 1.6 GHz: 122 W TDP; no deep idle states in the
# 2004 steppings, idle draw ~half of TDP.  SHUB + 4 GB DDR per 2-CPU
# node ~45 W; NUMALINK4 port ~8 W moving data, ~5 W quiet; router link
# draw amortised to ~10 W per busy link-second.
_ALTIX_POWER = PowerModel(
    cpu_busy_w=122.0, cpu_idle_w=60.0,
    nic_active_w=8.0, nic_idle_w=5.0,
    link_active_w=10.0, mem_w=45.0,
    provenance="Itanium2 Madison 122 W TDP (Intel datasheet); SHUB+DDR "
               "estimate; NUMALINK port power from SGI NUMAlink white "
               "paper class figures.",
)

# Cray X1 node board (4 MSPs + 16 GB + router ports) drew ~1.6 kW of a
# ~92 kW 64-MSP liquid-cooled cabinet.  Apportioned: ~300 W per MSP
# busy (vector pipes lit), ~220 W idle (clocks never gate), ~260 W
# memory per node, ~25 W per active router port.
_X1_MSP_POWER = PowerModel(
    cpu_busy_w=300.0, cpu_idle_w=220.0,
    nic_active_w=25.0, nic_idle_w=18.0,
    link_active_w=25.0, mem_w=260.0,
    provenance="Apportioned from Cray X1 cabinet power (~92 kW / 64 "
               "MSPs, Cray site-prep guide); vector units do not "
               "clock-gate, hence the high idle fraction.",
)

# SSP mode addresses the same silicon as 16 quarter-width CPUs: a
# quarter of an MSP's draw per SSP, same node memory and network.
_X1_SSP_POWER = PowerModel(
    cpu_busy_w=75.0, cpu_idle_w=55.0,
    nic_active_w=25.0, nic_idle_w=18.0,
    link_active_w=25.0, mem_w=260.0,
    provenance="X1 MSP budget divided by the 4 SSPs per MSP (same "
               "silicon, same node board).",
)

# Opteron 246 @ 2.0 GHz: 89 W TDP, PowerNow! idles near 30 W.  2 GB
# DDR + chipset ~30 W per node; Myrinet Lanai-XP NIC ~7 W under load.
_OPTERON_POWER = PowerModel(
    cpu_busy_w=89.0, cpu_idle_w=30.0,
    nic_active_w=7.0, nic_idle_w=5.0,
    link_active_w=6.0, mem_w=30.0,
    provenance="Opteron 246 89 W TDP (AMD power/thermal datasheet), "
               "PowerNow! idle; Myrinet M3F-PCIXD-2 card ~7 W (Myricom "
               "spec sheet).",
)

# Xeon Nocona @ 3.6 GHz: 103 W TDP and a notoriously high NetBurst
# idle (~55 W).  6 GB DDR2 + chipset ~40 W; InfiniBand 4x HCA ~10 W.
_XEON_POWER = PowerModel(
    cpu_busy_w=103.0, cpu_idle_w=55.0,
    nic_active_w=10.0, nic_idle_w=7.0,
    link_active_w=8.0, mem_w=40.0,
    provenance="Xeon Nocona 103 W TDP (Intel datasheet), NetBurst idle "
               "draw; Mellanox InfiniHost 4x HCA ~10 W.",
)

# NEC SX-8: ~10 kW per 8-CPU node including 128 GB FCRAM (NEC quotes
# ~90 kVA for a 72-node installation).  Apportioned: ~700 W per vector
# CPU busy, ~520 W idle (no clock gating on the vector pipes), ~3.3 kW
# node memory, RCU/IXS port ~120 W active.
_SX8_POWER = PowerModel(
    cpu_busy_w=700.0, cpu_idle_w=520.0,
    nic_active_w=120.0, nic_idle_w=90.0,
    link_active_w=100.0, mem_w=3300.0,
    provenance="Apportioned from NEC SX-8 installation power (~90 kVA "
               "/ 72 nodes at HLRS class sites); FCRAM banks dominate "
               "the node budget.",
)

# ---------------------------------------------------------------------------
# SGI Altix BX2
# ---------------------------------------------------------------------------
# Itanium 2, 1.6 GHz, two MADDs/clock -> 6.4 GF/s per CPU.  Anchors:
# best random-ring latency of all systems (~5 us, Table 3: 1/0.197),
# random-ring B/KFlop 203 in one NUMALINK4 box collapsing to 23 across
# four boxes (Fig 2), EP-STREAM Byte/Flop > 0.36 (Fig 4).

_ITANIUM2 = ProcessorSpec(
    name="Intel Itanium 2 (1.6 GHz)",
    clock_ghz=1.6,
    peak_gflops=6.4,
    is_vector=False,
    dgemm_eff=0.92,
    hpl_eff=0.85,
    fft_eff=0.018,
    stream_copy_gbs=2.0,
    stream_triad_gbs=2.0,
    random_update_gups=0.009,
)

_ALTIX_NODE = NodeSpec(
    cpus=2,                    # an FSB pair shares one SHUB attachment
    memory_gb=4.0,             # 1 TB / 512 CPUs (Table 1)
    shm_flow_gbs=3.8,          # shared-memory MPI beats the NUMALINK hop
    shm_node_gbs=6.4,
    shm_latency_us=1.0,
    memcpy_gbs=2.5,
    stream_node_scale=0.98,
)

# Hierarchy: 4 nodes per C-brick (8 CPUs), 8 C-bricks per router group,
# 8 groups per 512-CPU box, 4 boxes. Inter-box blocking reproduces the
# Fig 2 bandwidth collapse above 512 CPUs.
_ALTIX_NL4_NET = NetworkSpec(
    name="NUMALINK4",
    topology_kind="fattree",
    link_gbs=3.2,
    nic_gbs=3.6,               # dual NUMALINK4 ports per SHUB pair
    base_latency_us=1.3,
    per_hop_latency_us=0.1,
    send_overhead_us=0.3,
    recv_overhead_us=0.3,
    eager_threshold=16 * 1024,
    bw_efficiency=0.95,
    duplex_factor=1.3,         # NUMALINK bidirectional degradation
    group_sizes=(4, 8, 8, 4),
    level_blocking=(1.0, 1.0, 1.0, 35.0),
)

ALTIX_NL4 = MachineSpec(
    name="altix_nl4",
    label="SGI Altix BX2 (NUMALINK4)",
    system_type="Scalar",
    processor=_ITANIUM2,
    node=_ALTIX_NODE,
    network=_ALTIX_NL4_NET,
    max_cpus=2024,
    topology_label="Fat-tree",
    operating_system="Linux (Suse)",
    location="NASA (USA)",
    processor_vendor="Intel",
    system_vendor="SGI",
    notes="Four 512-CPU boxes; paper runs up to 2024 CPUs.",
    extra={
        # Paper Table 1 architecture parameters.
        "table1": {
            "Clock (GHz)": 1.6,
            "C-Bricks": 64,
            "IX-Bricks": 4,
            "Routers": 128,
            "Meta Routers": 48,
            "CPUs": 512,
            "L3-cache (MB)": 9,
            "Memory (Tb)": 1,
            "R-bricks": 48,
        }
    },
    power=_ALTIX_POWER,
)

# NUMALINK3 variant of the same box: half the link bandwidth and a less
# efficient transport; random-ring B/KFlop anchor 93.8 at 440 CPUs.
_ALTIX_NL3_NET = NetworkSpec(
    name="NUMALINK3",
    topology_kind="fattree",
    link_gbs=1.6,
    nic_gbs=1.6,
    base_latency_us=1.4,
    per_hop_latency_us=0.1,
    send_overhead_us=0.35,
    recv_overhead_us=0.35,
    eager_threshold=16 * 1024,
    bw_efficiency=0.95,
    duplex_factor=1.3,
    group_sizes=(4, 8, 8, 4),
    level_blocking=(1.0, 1.0, 1.0, 35.0),
)

ALTIX_NL3 = MachineSpec(
    name="altix_nl3",
    label="SGI Altix BX2 (NUMALINK3)",
    system_type="Scalar",
    processor=_ITANIUM2,
    node=_ALTIX_NODE,
    network=_ALTIX_NL3_NET,
    max_cpus=440,
    topology_label="Fat-tree",
    operating_system="Linux (Suse)",
    location="NASA (USA)",
    processor_vendor="Intel",
    system_vendor="SGI",
    notes="Same box measured with the older NUMALINK3 interconnect.",
    power=_ALTIX_POWER,
)

# ---------------------------------------------------------------------------
# Cray X1 (MSP and SSP modes)
# ---------------------------------------------------------------------------
# MSP: 4 SSPs ganged, 12.8 GF/s; scalar core runs at 1/8 of vector speed.
# NASA's machine: 4 nodes, one reserved for the system -> 12 MSPs / 48
# SSPs usable.  Anchor: IMB Sendrecv 7.6 GB/s for 2 SSPs (Fig 13 text).

_X1_MSP_PROC = ProcessorSpec(
    name="Cray X1 MSP (800 MHz)",
    clock_ghz=0.8,
    peak_gflops=12.8,
    is_vector=True,
    dgemm_eff=0.94,
    hpl_eff=0.88,
    fft_eff=0.45,
    stream_copy_gbs=20.0,
    stream_triad_gbs=18.0,
    random_update_gups=0.002,
    scalar_gflops=1.2,
)

_X1_SSP_PROC = ProcessorSpec(
    name="Cray X1 SSP (800 MHz)",
    clock_ghz=0.8,
    peak_gflops=3.2,
    is_vector=True,
    dgemm_eff=0.94,
    hpl_eff=0.88,
    fft_eff=0.45,
    stream_copy_gbs=5.0,
    stream_triad_gbs=4.5,
    random_update_gups=0.0012,
    scalar_gflops=0.4,
)

_X1_MSP_NODE = NodeSpec(
    cpus=4,
    memory_gb=16.0,
    shm_flow_gbs=10.0,
    shm_node_gbs=32.0,
    shm_latency_us=4.0,
    memcpy_gbs=16.0,
    stream_node_scale=0.9,
)

_X1_SSP_NODE = NodeSpec(
    cpus=16,
    memory_gb=16.0,
    shm_flow_gbs=5.0,          # tuned: 7.6 GB/s IMB Sendrecv for an SSP pair
    shm_node_gbs=16.0,         # one flat-memory port set shared by 16 SSPs
    shm_latency_us=4.0,
    memcpy_gbs=8.0,
    stream_node_scale=0.9,
)

_X1_NET = NetworkSpec(
    name="Cray X1 network",
    topology_kind="hypercube",
    link_gbs=8.0,
    nic_gbs=8.0,
    base_latency_us=6.0,
    per_hop_latency_us=0.5,
    send_overhead_us=1.2,
    recv_overhead_us=1.2,
    eager_threshold=64 * 1024,
    bw_efficiency=0.80,
    duplex_factor=1.3,
)

X1_MSP = MachineSpec(
    name="x1_msp",
    label="Cray X1 (MSP)",
    system_type="Vector",
    processor=_X1_MSP_PROC,
    node=_X1_MSP_NODE,
    network=_X1_NET,
    max_cpus=12,
    topology_label="4D-hypercube",
    operating_system="UNICOS",
    location="NASA (USA)",
    processor_vendor="Cray",
    system_vendor="Cray",
    notes="3 compute nodes x 4 MSPs (one node reserved for the system).",
    power=_X1_MSP_POWER,
)

X1_SSP = MachineSpec(
    name="x1_ssp",
    label="Cray X1 (SSP)",
    system_type="Vector",
    processor=_X1_SSP_PROC,
    node=_X1_SSP_NODE,
    network=_X1_NET,
    max_cpus=48,
    topology_label="4D-hypercube",
    operating_system="UNICOS",
    location="NASA (USA)",
    processor_vendor="Cray",
    system_vendor="Cray",
    notes="Same hardware addressed as 16 single-streaming CPUs per node.",
    power=_X1_SSP_POWER,
)

# ---------------------------------------------------------------------------
# Cray Opteron Cluster (Myrinet)
# ---------------------------------------------------------------------------
# 2.0 GHz Opterons, 2/node, 63 compute nodes, Myrinet over PCI-X.
# Anchors: MPI peak bandwidth 771 MB/s and min latency 6.7 us (paper
# §2.4); random-ring B/KFlop ~24 at 64 CPUs with a steep 32->64 drop
# (Fig 2); best EP-DGEMM/HPL ratio 1.925 (Table 3, low HPL efficiency).

_OPTERON_PROC = ProcessorSpec(
    name="AMD Opteron (2.0 GHz)",
    clock_ghz=2.0,
    peak_gflops=4.0,
    is_vector=False,
    dgemm_eff=0.90,
    hpl_eff=0.5,
    fft_eff=0.03,
    stream_copy_gbs=2.2,
    stream_triad_gbs=2.0,
    random_update_gups=0.012,
)

_OPTERON_NODE = NodeSpec(
    cpus=2,
    memory_gb=2.0,
    shm_flow_gbs=1.0,
    shm_node_gbs=1.6,
    shm_latency_us=0.9,
    memcpy_gbs=2.2,
    stream_node_scale=1.0,     # on-chip memory controllers
)

_MYRINET = NetworkSpec(
    name="Myrinet (PCI-X)",
    topology_kind="fattree",
    link_gbs=0.9,              # 771 MB/s single-stream burst anchor
    nic_gbs=0.45,              # sustained multi-stream PCI-X throughput
    base_latency_us=5.8,
    per_hop_latency_us=0.4,
    send_overhead_us=0.6,
    recv_overhead_us=0.6,
    eager_threshold=32 * 1024,
    bw_efficiency=0.86,        # 771 MB/s of the 900 MB/s PCI-X NIC
    duplex_factor=1.0,         # Lanai card shares one PCI-X bus
    group_sizes=(16, 8),       # 16-node leaf switches: one switch at 32 CPUs
    level_blocking=(1.0, 30.0),  # effective core oversubscription (Fig 2 anchor)
)

OPTERON = MachineSpec(
    name="opteron",
    label="Cray Opteron Cluster",
    system_type="Scalar",
    processor=_OPTERON_PROC,
    node=_OPTERON_NODE,
    network=_MYRINET,
    max_cpus=126,
    topology_label="Flat-tree",
    operating_system="Linux (Redhat)",
    location="NASA (USA)",
    processor_vendor="AMD",
    system_vendor="Cray",
    notes="63 compute nodes; the paper's plots stop at 64 CPUs.",
    power=_OPTERON_POWER,
)

# ---------------------------------------------------------------------------
# Dell Xeon Cluster "Tungsten" (InfiniBand)
# ---------------------------------------------------------------------------
# 3.6 GHz Nocona Xeons, 2/node, InfiniBand in 18-node 1:1 groups with 3:1
# core blocking (paper §2.4).  Anchors: 841 MB/s peak MPI bandwidth,
# 6.8 us min latency.

_XEON_PROC = ProcessorSpec(
    name="Intel Xeon Nocona (3.6 GHz)",
    clock_ghz=3.6,
    peak_gflops=7.2,
    is_vector=False,
    dgemm_eff=0.82,
    hpl_eff=0.6,
    fft_eff=0.02,
    stream_copy_gbs=1.5,
    stream_triad_gbs=1.4,
    random_update_gups=0.006,
)

_XEON_NODE = NodeSpec(
    cpus=2,
    memory_gb=6.0,
    shm_flow_gbs=1.4,          # shared-memory path ahead of the IB loopback
    shm_node_gbs=2.4,
    shm_latency_us=1.2,
    memcpy_gbs=2.0,
    stream_node_scale=0.85,    # two CPUs share the front-side bus
)

_INFINIBAND = NetworkSpec(
    name="InfiniBand",
    topology_kind="fattree",
    link_gbs=1.0,
    nic_gbs=1.0,
    base_latency_us=5.5,
    per_hop_latency_us=0.3,
    send_overhead_us=0.7,
    recv_overhead_us=0.7,
    eager_threshold=16 * 1024,
    bw_efficiency=0.84,        # 841 MB/s anchor
    duplex_factor=2.0,         # InfiniBand's full-duplex strength (Fig 14)
    group_sizes=(18, 72),
    level_blocking=(1.0, 3.0),
)

XEON = MachineSpec(
    name="xeon",
    label="Dell Xeon Cluster",
    system_type="Scalar",
    processor=_XEON_PROC,
    node=_XEON_NODE,
    network=_INFINIBAND,
    max_cpus=512,
    topology_label="Flat-tree",
    operating_system="Linux (Redhat)",
    location="NCSA (USA)",
    processor_vendor="Intel",
    system_vendor="Dell",
    notes="1280-node system; the paper's plots stop at 512 CPUs.",
    power=_XEON_POWER,
)

# ---------------------------------------------------------------------------
# NEC SX-8 (IXS)
# ---------------------------------------------------------------------------
# 2 GHz vector CPUs, 16 GF/s peak, 64 GB/s memory bandwidth per CPU,
# 8 CPUs/node sharing one 16 GB/s IXS crossbar link, 72 nodes at HLRS.
# Anchors: IMB Sendrecv 47.4 GB/s for 2 CPUs (Fig 13 text); EP-STREAM
# Byte/Flop > 2.67 (Fig 4); random-ring B/KFlop ~60 flat from 128 to
# 576 CPUs (Fig 2); G-HPL 8.729 TF/s at 576 CPUs (Table 3).

_SX8_PROC = ProcessorSpec(
    name="NEC SX-8 (2.0 GHz)",
    clock_ghz=2.0,
    peak_gflops=16.0,
    is_vector=True,
    dgemm_eff=0.96,
    hpl_eff=0.945,
    fft_eff=0.45,
    stream_copy_gbs=41.0,
    stream_triad_gbs=40.0,
    random_update_gups=0.004,
    scalar_gflops=2.0,
)

_SX8_NODE = NodeSpec(
    cpus=8,
    memory_gb=124.0,
    shm_flow_gbs=46.0,         # tuned: 47.4 GB/s IMB Sendrecv for a pair
    shm_node_gbs=190.0,
    shm_latency_us=2.0,
    memcpy_gbs=32.0,
    stream_node_scale=1.0,
)

_IXS = NetworkSpec(
    name="IXS",
    topology_kind="multistage",
    link_gbs=16.0,
    nic_gbs=11.0,
    base_latency_us=4.5,
    per_hop_latency_us=0.5,
    send_overhead_us=1.0,
    recv_overhead_us=1.0,
    eager_threshold=256 * 1024,  # MPI_Alloc_mem global-memory path
    bw_efficiency=0.85,
    duplex_factor=1.5,
    ports=128,
    stage_hops=2,
)

SX8 = MachineSpec(
    name="sx8",
    label="NEC SX-8",
    system_type="Vector",
    processor=_SX8_PROC,
    node=_SX8_NODE,
    network=_IXS,
    max_cpus=576,
    topology_label="Multi-stage Crossbar",
    operating_system="Super-UX",
    location="HLRS (Germany)",
    processor_vendor="NEC",
    system_vendor="NEC",
    notes="72-node cluster at HLRS; 576 CPUs.",
    extra={"filesystem": _HLRS_FS},
    power=_SX8_POWER,
)

# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: The five systems of the paper's Table 2 (primary configurations).
PAPER_FIVE = (ALTIX_NL4, X1_MSP, OPTERON, XEON, SX8)

#: All configurations, including interconnect/mode variants.
ALL_MACHINES = (ALTIX_NL4, ALTIX_NL3, X1_MSP, X1_SSP, OPTERON, XEON, SX8)

MACHINES: dict[str, MachineSpec] = {m.name: m for m in ALL_MACHINES}


def get_machine(name: str) -> MachineSpec:
    """Look up a machine by short name (``sx8``, ``altix_nl4``, ...).

    Falls back to the future-work projections (``bluegene_p``,
    ``cray_xt4``, ``cray_x1e``, ``power5``, ``gige``) so the CLIs can
    drive them too.
    """
    if name in MACHINES:
        return MACHINES[name]
    from .future import FUTURE_BY_NAME  # late import: future builds on us

    if name in FUTURE_BY_NAME:
        return FUTURE_BY_NAME[name]
    known = ", ".join(sorted(MACHINES) + sorted(FUTURE_BY_NAME))
    raise ConfigError(f"unknown machine {name!r}; known: {known}")
