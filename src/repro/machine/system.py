"""Whole-machine specification: node + processor + interconnect.

A :class:`MachineSpec` is a frozen description of one of the paper's five
platforms (plus variants).  It knows how to instantiate a live
:class:`~repro.network.netmodel.Fabric` for a given CPU count, mapping MPI
ranks onto SMP nodes block-wise (rank ``r`` lives on node ``r // cpus``),
which is how the real systems were scheduled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.errors import ConfigError
from ..core.units import GB_S, US
from ..obs.energy import PowerModel
from ..network import (
    CrossbarSwitch,
    Fabric,
    FabricParams,
    FatTree,
    Hypercube,
    MultistageCrossbar,
    Topology,
    Torus3D,
)
from .node import NodeSpec
from .processor import ProcessorSpec

TOPOLOGY_KINDS = ("fattree", "hypercube", "crossbar", "multistage", "torus3d")


@dataclass(frozen=True)
class NetworkSpec:
    """Interconnect description sufficient to build a fabric."""

    name: str                    # e.g. "NUMALINK4", "IXS"
    topology_kind: str           # one of TOPOLOGY_KINDS
    link_gbs: float              # per-link per-direction bandwidth (GB/s)
    nic_gbs: float               # per-node injection bandwidth (GB/s)
    base_latency_us: float       # zero-byte latency excluding hops
    per_hop_latency_us: float
    send_overhead_us: float
    recv_overhead_us: float
    eager_threshold: int
    bw_efficiency: float
    duplex_factor: float = 2.0   # NIC send+recv capacity / one direction
    # fat-tree structure (ignored by other kinds)
    group_sizes: tuple[int, ...] = ()
    level_blocking: tuple[float, ...] = ()
    # multistage crossbar structure
    ports: int = 128
    stage_hops: int = 2

    def __post_init__(self) -> None:
        if self.topology_kind not in TOPOLOGY_KINDS:
            raise ConfigError(f"unknown topology kind {self.topology_kind!r}")
        if self.topology_kind == "fattree" and not self.group_sizes:
            raise ConfigError("fat tree requires group_sizes")

    def build_topology(self, n_nodes: int) -> Topology:
        kind = self.topology_kind
        if kind == "fattree":
            blocking = self.level_blocking or None
            return FatTree(n_nodes, self.group_sizes, blocking)
        if kind == "hypercube":
            return Hypercube(n_nodes)
        if kind == "crossbar":
            return CrossbarSwitch(n_nodes)
        if kind == "torus3d":
            return Torus3D(n_nodes)
        return MultistageCrossbar(n_nodes, ports=self.ports,
                                  stage_hops=self.stage_hops)

    def max_nodes(self) -> int:
        """Largest node count this network can attach (inf-ish for others)."""
        if self.topology_kind == "fattree":
            return math.prod(self.group_sizes)
        if self.topology_kind == "multistage":
            return self.ports
        return 1 << 30


@dataclass(frozen=True)
class MachineSpec:
    """One platform from the paper's Table 2 (or a variant)."""

    name: str                    # short id, e.g. "sx8"
    label: str                   # display name, e.g. "NEC SX-8"
    system_type: str             # "Scalar" | "Vector"
    processor: ProcessorSpec
    node: NodeSpec
    network: NetworkSpec
    max_cpus: int                # largest configuration measured in the paper
    topology_label: str = ""     # paper's topology name for Table 2
    operating_system: str = ""
    location: str = ""
    processor_vendor: str = ""
    system_vendor: str = ""
    notes: str = ""
    extra: dict = field(default_factory=dict)
    #: Per-component power states for energy accounting (``--energy``);
    #: ``None`` means the machine has no power model and energy is not
    #: recorded for its runs.
    power: PowerModel | None = None

    def __post_init__(self) -> None:
        if self.max_cpus < 1:
            raise ConfigError("max_cpus must be >= 1")
        cap = self.network.max_nodes() * self.node.cpus
        if self.max_cpus > cap:
            raise ConfigError(
                f"{self.name}: max_cpus={self.max_cpus} exceeds network "
                f"capacity {cap}"
            )

    # -- placement ---------------------------------------------------------------

    def n_nodes(self, nprocs: int) -> int:
        """Nodes needed for ``nprocs`` ranks (block placement, full packing)."""
        if nprocs < 1:
            raise ConfigError("need at least one process")
        if nprocs > self.max_cpus:
            raise ConfigError(
                f"{self.label} has {self.max_cpus} CPUs, asked for {nprocs}"
            )
        return -(-nprocs // self.node.cpus)

    def rank_to_node(self, rank: int) -> int:
        return rank // self.node.cpus

    def placement(self, nprocs: int, strategy: str = "block") -> list[int]:
        """Node id of every rank.

        * ``block`` (default, how the paper's systems were scheduled):
          ranks fill node 0, then node 1, ...
        * ``roundrobin``: rank ``r`` lands on node ``r % n_nodes`` —
          scatters neighbours across nodes, which the placement ablation
          bench shows is hostile to ring/neighbour patterns.
        """
        n = self.n_nodes(nprocs)
        if strategy == "block":
            return [self.rank_to_node(r) for r in range(nprocs)]
        if strategy == "roundrobin":
            return [r % n for r in range(nprocs)]
        raise ConfigError(f"unknown placement strategy {strategy!r}")

    def scaled(self, max_cpus: int, name: str | None = None) -> "MachineSpec":
        """A hypothetical larger installation of this platform.

        Node and link parameters are untouched; the topology is widened
        (doubling the top fat-tree group / switch port count) until it
        can attach enough nodes.  The macro fast-path scale studies use
        this to ask what a fabric would look like at 100k+ ranks — the
        paper's measured configurations never need it.
        """
        from dataclasses import replace
        need_nodes = -(-max_cpus // self.node.cpus)
        net = self.network
        if net.max_nodes() < need_nodes:
            if net.topology_kind == "fattree":
                groups = list(net.group_sizes)
                while math.prod(groups) < need_nodes:
                    groups[-1] *= 2
                net = replace(net, group_sizes=tuple(groups))
            elif net.topology_kind == "multistage":
                ports = net.ports
                while ports < need_nodes:
                    ports *= 2
                net = replace(net, ports=ports)
        return replace(self, name=name or f"{self.name}@{max_cpus}",
                       network=net, max_cpus=max_cpus)

    # -- live model ----------------------------------------------------------------

    def fabric_params(self) -> FabricParams:
        net, node = self.network, self.node
        return FabricParams(
            link_bw=net.link_gbs * GB_S,
            nic_bw=net.nic_gbs * GB_S,
            base_latency=net.base_latency_us * US,
            per_hop_latency=net.per_hop_latency_us * US,
            send_overhead=net.send_overhead_us * US,
            recv_overhead=net.recv_overhead_us * US,
            eager_threshold=net.eager_threshold,
            bw_efficiency=net.bw_efficiency,
            duplex_factor=net.duplex_factor,
            shm_bw=node.shm_node_bw,
            shm_flow_bw=node.shm_flow_bw,
            shm_latency=node.shm_latency,
            memcpy_bw=node.memcpy_bw,
        )

    def build_fabric(self, nprocs: int) -> Fabric:
        topo = self.network.build_topology(self.n_nodes(nprocs))
        return Fabric(topo, self.fabric_params())

    # -- paper-facing derived numbers --------------------------------------------

    @property
    def peak_node_gflops(self) -> float:
        return self.processor.peak_gflops * self.node.cpus

    def peak_gflops(self, nprocs: int) -> float:
        return self.processor.peak_gflops * nprocs

    def cpu_counts(self, start: int = 2, maximum: int | None = None) -> list[int]:
        """Power-of-two sweep up to the machine's largest measured size.

        Mirrors the paper's plots: powers of two, plus the machine's true
        maximum when it is not itself a power of two (e.g. 576 on SX-8,
        2024 on the four-box Altix).
        """
        cap = self.max_cpus if maximum is None else min(maximum, self.max_cpus)
        counts = []
        p = start
        while p <= cap:
            counts.append(p)
            p *= 2
        if counts and counts[-1] != cap:
            counts.append(cap)
        return counts
