"""Performance-fault injection: stragglers and degraded links.

Measurement papers of this era fought "system noise": one slow node (bad
DIMM timings, a daemon, a flaky NIC) drags every synchronising collective
down.  These helpers degrade a live fabric after construction, so tests
and studies can quantify how much of a benchmark's time is hostage to the
slowest participant.

Usage::

    cluster = Cluster(machine, 64)
    cluster.run(program, fabric_setup=lambda f: slow_node(f, node=3,
                                                          factor=4.0))
    # or degrade only the node's CPU via Cluster(compute_derate=...)
"""

from __future__ import annotations

from ..core.errors import ConfigError
from ..network.netmodel import Fabric


def slow_node(fabric: Fabric, node: int, factor: float) -> Fabric:
    """Divide one node's NIC (and bus/shm) bandwidth by ``factor``."""
    if factor < 1.0:
        raise ConfigError("slow-down factor must be >= 1")
    if not (0 <= node < fabric.n_nodes):
        raise ConfigError(f"node {node} out of range")
    fabric._egress[node].bandwidth /= factor
    fabric._ingress[node].bandwidth /= factor
    if fabric._bus is not None:
        fabric._bus[node].bandwidth /= factor
    fabric._shm[node].bandwidth /= factor
    return fabric


def degrade_core(fabric: Fabric, level: int, factor: float) -> Fabric:
    """Divide one core tier's aggregate capacity by ``factor`` (e.g. a
    failed spine switch leaving the tree oversubscribed)."""
    if factor < 1.0:
        raise ConfigError("slow-down factor must be >= 1")
    fabric.core_resource(level).bandwidth /= factor
    return fabric


def add_latency(fabric: Fabric, extra_seconds: float) -> Fabric:
    """Add a fixed latency penalty to every inter-node message (e.g. a
    misconfigured adaptive-routing fallback)."""
    if extra_seconds < 0:
        raise ConfigError("extra latency must be >= 0")
    params = fabric.params
    object.__setattr__(params, "base_latency",
                       params.base_latency + extra_seconds)
    # Latency is memoised per node pair; mutating base_latency would
    # otherwise leave stale entries serving the pre-fault value.
    fabric.invalidate_route_cache()
    return fabric
