"""Processor and memory-subsystem model.

A :class:`ProcessorSpec` holds per-CPU peak rates plus per-kernel-class
efficiency factors, and converts a ``(flops, bytes, kernel)`` work item
into virtual time with a roofline rule::

    time = max(flops / rate(kernel), bytes / mem_bw(kernel))

The kernel classes follow the locality taxonomy the paper uses (§1):
``dgemm``/``hpl`` (high temporal+spatial locality), ``stream_*``/``ptrans``
(low temporal, high spatial), ``random_access`` (low/low), ``fft`` (high
temporal, low spatial) plus ``reduction`` for MPI reduce operators and
``generic`` as a conservative default.

Vector machines get a separate ``scalar_gflops`` rate: code that does not
vectorise (the paper calls out HPCC's FFT and RandomAccess) pays the
scalar-unit penalty, which on the Cray X1 is 1/8 of the vector rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigError
from ..core.units import GB_S, GFLOP

#: Kernel classes accepted by :meth:`ProcessorSpec.compute_time`.
KERNELS = (
    "generic",
    "dgemm",
    "hpl",
    "fft",
    "stream_copy",
    "stream_scale",
    "stream_add",
    "stream_triad",
    "ptrans",
    "random_access",
    "reduction",
)


@dataclass(frozen=True)
class ProcessorSpec:
    """Per-CPU compute and memory-subsystem parameters."""

    name: str
    clock_ghz: float
    peak_gflops: float          # per-CPU peak (paper Table 2 "Peak/node" / CPUs)
    is_vector: bool
    dgemm_eff: float            # fraction of peak achieved by DGEMM
    hpl_eff: float              # fraction of peak for HPL *local* compute
    fft_eff: float              # fraction of peak for FFT butterflies
    stream_copy_gbs: float      # sustainable STREAM Copy per CPU (GB/s)
    stream_triad_gbs: float     # sustainable STREAM Triad per CPU (GB/s)
    random_update_gups: float   # local GUP/s per CPU (table in cache-miss regime)
    scalar_gflops: float | None = None  # non-vectorised rate (vector CPUs only)

    def __post_init__(self) -> None:
        if self.peak_gflops <= 0 or self.clock_ghz <= 0:
            raise ConfigError(f"{self.name}: peak/clock must be positive")
        for attr in ("dgemm_eff", "hpl_eff", "fft_eff"):
            v = getattr(self, attr)
            if not (0.0 < v <= 1.0):
                raise ConfigError(f"{self.name}: {attr}={v} outside (0, 1]")
        if self.stream_copy_gbs <= 0 or self.stream_triad_gbs <= 0:
            raise ConfigError(f"{self.name}: stream rates must be positive")
        if self.random_update_gups <= 0:
            raise ConfigError(f"{self.name}: random_update_gups must be positive")
        if self.is_vector and self.scalar_gflops is None:
            raise ConfigError(
                f"{self.name}: vector processors need a scalar_gflops rate"
            )

    # -- derived rates (SI units) --------------------------------------------

    @property
    def peak_flops(self) -> float:
        return self.peak_gflops * GFLOP

    @property
    def scalar_flops(self) -> float:
        if self.scalar_gflops is not None:
            return self.scalar_gflops * GFLOP
        return self.peak_flops

    @property
    def stream_copy_bw(self) -> float:
        return self.stream_copy_gbs * GB_S

    @property
    def stream_triad_bw(self) -> float:
        return self.stream_triad_gbs * GB_S

    def kernel_flops(self, kernel: str) -> float:
        """Achievable flop rate for a kernel class (flop/s)."""
        if kernel in ("dgemm",):
            return self.peak_flops * self.dgemm_eff
        if kernel in ("hpl",):
            return self.peak_flops * self.hpl_eff
        if kernel == "fft":
            # The paper notes HPCC's FFT "does not completely vectorize";
            # on vector CPUs the butterflies run near the scalar unit.
            base = self.scalar_flops if self.is_vector else self.peak_flops
            return max(base * self.fft_eff, self.peak_flops * self.fft_eff * 0.1)
        if kernel == "random_access":
            return self.scalar_flops if self.is_vector else self.peak_flops
        if kernel in ("reduction", "stream_copy", "stream_scale",
                      "stream_add", "stream_triad", "ptrans"):
            return self.peak_flops  # bandwidth bound; flops rarely binding
        return 0.25 * self.peak_flops  # generic scalar-ish code

    def kernel_mem_bw(self, kernel: str) -> float:
        """Achievable memory bandwidth for a kernel class (bytes/s)."""
        if kernel in ("stream_copy", "stream_scale"):
            return self.stream_copy_bw
        if kernel in ("stream_add", "stream_triad", "reduction", "ptrans"):
            return self.stream_triad_bw
        if kernel == "random_access":
            # 8-byte updates at the random-update rate (read+modify+write).
            return self.random_update_gups * 1e9 * 8.0
        if kernel == "fft":
            # Strided passes; vector machines still stream well, scalar
            # caches take roughly half of STREAM.
            return self.stream_triad_bw if self.is_vector else 0.5 * self.stream_triad_bw
        # dgemm/hpl/generic: cache-blocked, memory rarely binding.
        return self.stream_triad_bw

    def compute_time(self, flops: float, nbytes: float = 0.0,
                     kernel: str = "generic") -> float:
        """Roofline time for a work item on one CPU (seconds)."""
        if kernel not in KERNELS:
            raise ConfigError(f"unknown kernel class {kernel!r}")
        if flops < 0 or nbytes < 0:
            raise ConfigError("flops and nbytes must be non-negative")
        t = 0.0
        if flops:
            t = flops / self.kernel_flops(kernel)
        if nbytes:
            tm = nbytes / self.kernel_mem_bw(kernel)
            if tm > t:
                t = tm
        return t
