"""Time-resolved resource utilisation and per-rank straggler profiles.

:class:`TimelineSeries` turns the ``(start, end)`` busy intervals that
:class:`~repro.network.resources.BandwidthResource` reserves into a
bounded-memory, time-bucketed occupancy series: each bucket holds the
busy virtual-seconds that fell inside it, summed over every resource
instance of the kind.  Bucket width is an exact power of two seconds and
doubles (folding pairs of buckets) whenever the run outgrows
``RESOLUTION`` buckets — the HdrHistogram auto-ranging trick.  Because
folds are exact halvings and merges fold both sides to the coarser
width before adding cells in sorted index order, serial, ``--jobs N``,
and cache-warm sweeps produce byte-identical series.

:func:`straggler_profile` answers the imbalance question from the other
side: group a traced run's messages by collective call (the transport
tag encodes the collective sequence number) and compare per-rank exit
times — the max/mean skew per collective and which rank straggled.

Like every module in :mod:`repro.obs`, nothing here imports the model
layers; the recorder is wired in by :mod:`repro.network.resources`
fetching the active series once per fabric construction.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # avoid importing the model layers at module level
    from ..core.trace import Tracer

#: Phase used when nothing more specific has been set.
DEFAULT_PHASE = "default"

#: Maximum buckets a series holds before its width doubles.
RESOLUTION = 256

#: Initial bucket width exponent: 2**-20 s ~ 1 microsecond.
_START_EXP = -20

#: Tag span per collective call — must equal
#: ``repro.mpi.collectives._TAGSPAN`` (cross-checked by the test suite;
#: obs modules do not import the model layers).
COLL_TAGSPAN = 8192


class TimelineSeries:
    """Busy-time occupancy in power-of-two-width time buckets."""

    __slots__ = ("exp", "buckets", "count", "busy_s", "bytes")

    def __init__(self) -> None:
        self.exp = _START_EXP
        self.buckets: dict[int, float] = {}
        self.count = 0
        self.busy_s = 0.0
        self.bytes = 0.0

    @property
    def width(self) -> float:
        """Current bucket width in seconds (exact power of two)."""
        return 2.0 ** self.exp

    def _rescale(self) -> None:
        """Double the bucket width, folding bucket pairs exactly."""
        self.exp += 1
        folded: dict[int, float] = {}
        for i, v in sorted(self.buckets.items()):
            j = i >> 1
            folded[j] = folded.get(j, 0.0) + v
        self.buckets = folded

    def add(self, start: float, end: float, nbytes: float = 0.0) -> None:
        """Record one busy interval ``[start, end)``."""
        self.count += 1
        self.bytes += nbytes
        dur = end - start
        if dur <= 0:
            return
        self.busy_s += dur
        while end >= RESOLUTION * 2.0 ** self.exp:
            self._rescale()
        w = 2.0 ** self.exp
        i0 = int(start / w)
        i1 = int(end / w)
        for i in range(i0, i1 + 1):
            lo = start if start > i * w else i * w
            hi = end if end < (i + 1) * w else (i + 1) * w
            if hi > lo:
                self.buckets[i] = self.buckets.get(i, 0.0) + (hi - lo)

    # -- views ---------------------------------------------------------------

    def series(self) -> list[tuple[float, float]]:
        """``(bucket_start_s, busy_s)`` pairs, sorted by time."""
        w = 2.0 ** self.exp
        return [(i * w, v) for i, v in sorted(self.buckets.items())]

    def to_dict(self) -> dict:
        return {
            "exp": self.exp,
            "width_s": 2.0 ** self.exp,
            "count": self.count,
            "busy_s": self.busy_s,
            "bytes": self.bytes,
            "buckets": {str(i): v for i, v in sorted(self.buckets.items())},
        }

    def merge(self, snap: dict) -> None:
        """Fold one :meth:`to_dict` snapshot into this series.

        Both sides are first folded to the coarser of the two widths
        (exact halvings), then cells add in sorted index order, so a
        fixed fan-in order gives bit-identical results.
        """
        self.count += snap["count"]
        self.busy_s += snap["busy_s"]
        self.bytes += snap["bytes"]
        while self.exp < snap["exp"]:
            self._rescale()
        shift = self.exp - snap["exp"]
        incoming: dict[int, float] = {}
        for k, v in sorted(snap["buckets"].items(), key=lambda kv: int(kv[0])):
            j = int(k) >> shift
            incoming[j] = incoming.get(j, 0.0) + v
        for j, v in incoming.items():
            self.buckets[j] = self.buckets.get(j, 0.0) + v


class TimelineRecorder:
    """Per-phase, per-resource-kind timeline series."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._phases: dict[str, dict[str, TimelineSeries]] = {}
        self._phase_name = DEFAULT_PHASE

    # -- phase management ----------------------------------------------------

    def set_phase(self, name: str) -> str:
        """Route subsequent series lookups to ``name``; returns the old."""
        previous, self._phase_name = self._phase_name, name
        return previous

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Scope a phase for a ``with`` block."""
        previous = self.set_phase(name)
        try:
            yield
        finally:
            self.set_phase(previous)

    @property
    def current_phase(self) -> str:
        return self._phase_name

    # -- recording -----------------------------------------------------------

    def series(self, kind: str) -> TimelineSeries:
        """Create-or-get the series for ``kind`` in the current phase.

        Fetched once per fabric construction; the per-reserve cost is a
        single ``add`` on the returned series.
        """
        phase = self._phases.get(self._phase_name)
        if phase is None:
            phase = self._phases[self._phase_name] = {}
        s = phase.get(kind)
        if s is None:
            s = phase[kind] = TimelineSeries()
        return s

    # -- views ---------------------------------------------------------------

    def phases(self) -> list[str]:
        return sorted(self._phases)

    def kinds(self, phase: str = DEFAULT_PHASE) -> list[str]:
        return sorted(self._phases.get(phase, ()))

    def get(self, phase: str, kind: str) -> TimelineSeries | None:
        return self._phases.get(phase, {}).get(kind)

    def snapshot(self) -> dict:
        """JSON-able state: ``{"phases": {name: {kind: series_dict}}}``."""
        return {
            "phases": {
                name: {kind: s.to_dict() for kind, s in sorted(kinds.items())}
                for name, kinds in sorted(self._phases.items())
            }
        }

    def merge(self, snap: dict) -> None:
        """Fold one :meth:`snapshot` in (fixed fan-in order -> identical)."""
        if not self.enabled:
            return
        for name, kinds in snap.get("phases", {}).items():
            phase = self._phases.get(name)
            if phase is None:
                phase = self._phases[name] = {}
            for kind, sdict in kinds.items():
                s = phase.get(kind)
                if s is None:
                    s = phase[kind] = TimelineSeries()
                s.merge(sdict)


def merge_timeline_snapshots(snaps: list[dict]) -> dict:
    """Merge several snapshots into one (for worker fan-in)."""
    rec = TimelineRecorder(enabled=True)
    for s in snaps:
        rec.merge(s)
    return rec.snapshot()


# -- straggler / imbalance profiles -------------------------------------------


def straggler_profile(tracer: "Tracer", nprocs: int) -> dict:
    """Per-collective exit-time skew and per-rank straggler counts.

    Messages are grouped by ``tag // COLL_TAGSPAN`` — each collective
    call owns one tag window, so on collective benchmarks every group is
    one call (point-to-point traffic with small user tags all lands in
    group 0, which is what a pure pt2pt program should report anyway).
    A rank's *exit time* for a group is the last instant it touched the
    network (sent or received); the skew ``max - mean`` over ranks is
    the imbalance the paper's Barrier/Alltoall discussions turn on.
    """
    groups: dict[int, dict[int, float]] = {}
    for m in tracer.messages:
        g = groups.get(m.tag // COLL_TAGSPAN)
        if g is None:
            g = groups[m.tag // COLL_TAGSPAN] = {}
        if m.t_inject > g.get(m.src, 0.0):
            g[m.src] = m.t_inject
        if m.t_deliver > g.get(m.dst, 0.0):
            g[m.dst] = m.t_deliver

    collectives: list[dict] = []
    slowest_count = [0] * nprocs
    lag_sum = [0.0] * nprocs
    lag_n = [0] * nprocs
    for seq in sorted(groups):
        exits = groups[seq]
        if not exits:
            continue
        mean = sum(exits[r] for r in sorted(exits)) / len(exits)
        slowest = max(sorted(exits), key=lambda r: (exits[r], r))
        collectives.append({
            "seq": seq,
            "ranks": len(exits),
            "t_exit_max": exits[slowest],
            "t_exit_mean": mean,
            "skew": exits[slowest] - mean,
            "slowest_rank": slowest,
        })
        if slowest < nprocs:
            slowest_count[slowest] += 1
        for r, t in exits.items():
            if r < nprocs:
                lag_sum[r] += t - mean
                lag_n[r] += 1

    ranks = {
        str(r): {
            "slowest": slowest_count[r],
            "mean_lag_s": lag_sum[r] / lag_n[r] if lag_n[r] else 0.0,
        }
        for r in range(nprocs)
    }
    max_skew = max((c["skew"] for c in collectives), default=0.0)
    mean_skew = (sum(c["skew"] for c in collectives) / len(collectives)
                 if collectives else 0.0)
    return {
        "collectives": collectives,
        "ranks": ranks,
        "max_skew_s": max_skew,
        "mean_skew_s": mean_skew,
    }


# -- process-global recorder ---------------------------------------------------

#: Shared disabled recorder: the default when nothing is installed.
_NULL_RECORDER = TimelineRecorder(enabled=False)

_current: TimelineRecorder | None = None


def get_timeline() -> TimelineRecorder:
    """The active recorder (a shared disabled one if none installed)."""
    return _current if _current is not None else _NULL_RECORDER


def set_timeline(recorder: TimelineRecorder | None) -> TimelineRecorder | None:
    """Install ``recorder`` as the process-global one; returns the old."""
    global _current
    previous, _current = _current, recorder
    return previous


@contextlib.contextmanager
def using_timeline(recorder: TimelineRecorder) -> Iterator[TimelineRecorder]:
    """Scope ``recorder`` as the active one for a ``with`` block."""
    previous = set_timeline(recorder)
    try:
        yield recorder
    finally:
        set_timeline(previous)
