"""Critical-path analysis of a traced cluster run.

Answers the paper's "why is Alltoall slow on this machine" questions:
starting from the record that finishes last, walk backwards through the
message/compute records of a traced run, chaining each record to the
latest record that finished before it began on the relevant rank.  The
walk yields a chain of :class:`PathSegment`\\ s whose durations are
attributed to a resource kind:

* ``compute`` — roofline compute phases,
* ``nic``     — per-node injection/ejection bandwidth,
* ``bisection`` — the shared network-core capacity of the level crossed,
* ``link``    — the single-stream link burst bandwidth,
* ``shm``     — intra-node shared-memory transfers,
* ``latency`` — zero-byte wire latency,
* ``wait``    — dependency gaps (the rank was blocked on a peer).

Inter-node message time is attributed to whichever component's ideal
service time is largest — queueing on a FIFO resource stretches the
observed duration, but the *identity* of the bottleneck is the resource
with the largest service demand, which is what the paper's per-machine
explanations (NIC sharing, bisection collapse) turn on.

The per-kind totals along the path plus the fabric's busy-time counters
give a one-line verdict: the dominant resource and its share of
end-to-end time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid importing the model layers at module level
    from ..mpi.cluster import Cluster

#: Tolerance when chaining records (floating-point slack, seconds).
_EPS = 1e-12

#: Hard cap on walk length — a safety net, not a truncation that should
#: ever trigger on real collectives (they have O(P log P) records).
_MAX_SEGMENTS = 100_000


@dataclass(frozen=True)
class PathSegment:
    """One hop of the critical path."""

    kind: str        # compute | nic | bisection | link | shm | latency | wait
    rank: int        # rank whose timeline the segment lies on
    t_start: float
    t_end: float
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass(frozen=True)
class CriticalPathReport:
    """Where the end-to-end time of a traced run went."""

    machine: str
    nprocs: int
    elapsed: float                      # virtual seconds
    dominant: str                       # resource kind with the largest share
    breakdown: dict[str, float]         # kind -> seconds along the path
    utilisation: dict[str, float]       # kind -> max busy/elapsed over instances
    segments: tuple[PathSegment, ...]   # the walked chain, latest first

    @property
    def covered(self) -> float:
        """Fraction of end-to-end time the walked path explains."""
        if self.elapsed <= 0:
            return 0.0
        return sum(self.breakdown.values()) / self.elapsed

    def dominant_share(self) -> float:
        total = sum(v for k, v in self.breakdown.items()) or 1.0
        return self.breakdown.get(self.dominant, 0.0) / total

    def kind_windows(self) -> dict[str, tuple[float, float]]:
        """Per kind: the ``(first_start, last_end)`` span of its path
        segments — *when* along the run each resource sat on the path."""
        windows: dict[str, tuple[float, float]] = {}
        for seg in self.segments:
            w = windows.get(seg.kind)
            if w is None:
                windows[seg.kind] = (seg.t_start, seg.t_end)
            else:
                windows[seg.kind] = (min(w[0], seg.t_start),
                                     max(w[1], seg.t_end))
        return windows

    def dominant_window(self) -> tuple[float, float] | None:
        """When the dominant resource bound the run, or None if it never
        appeared on the walked path (utilisation-only verdicts)."""
        return self.kind_windows().get(self.dominant)

    def to_dict(self) -> dict:
        win = self.dominant_window()
        return {
            "machine": self.machine,
            "nprocs": self.nprocs,
            "elapsed_us": self.elapsed * 1e6,
            "dominant": self.dominant,
            "dominant_share": round(self.dominant_share(), 4),
            "dominant_window_us": (None if win is None
                                   else [win[0] * 1e6, win[1] * 1e6]),
            "breakdown_us": {k: v * 1e6
                             for k, v in sorted(self.breakdown.items())},
            "utilisation": {k: round(v, 4)
                            for k, v in sorted(self.utilisation.items())},
            "path_segments": len(self.segments),
        }


def _classify_message(fabric, src_node: int, dst_node: int,
                      nbytes: float) -> tuple[str, str]:
    """(kind, detail) for one inter-node message's dominant component."""
    params = fabric.params
    hops = fabric.topology.hops(src_node, dst_node)
    level = fabric.topology.path_level(src_node, dst_node)
    candidates = {
        "nic": nbytes / params.effective_nic_bw,
        "bisection": nbytes / fabric.core_resource(level).bandwidth,
        "link": nbytes / params.effective_point_bw,
        "latency": params.latency(hops),
    }
    kind = max(candidates, key=lambda k: (candidates[k], k))
    return kind, f"level {level}, {int(nbytes)}B {src_node}->{dst_node}"


def critical_path_report(cluster: "Cluster") -> CriticalPathReport:
    """Walk a traced run's records back from the last finisher.

    ``cluster`` must have been run with ``trace=True``; the fabric's
    per-resource busy counters from the same run provide the
    utilisation side of the report.
    """
    tracer = cluster.tracer
    fabric = cluster.fabric
    placement = cluster.placement
    elapsed = cluster.engine.now if cluster.engine is not None else 0.0

    # (end, start, end_rank, prev_rank, kind resolver) per record
    records: list[tuple[float, float, int, int, object]] = []
    for c in tracer.computes:
        records.append((c.t_end, c.t_start, c.rank, c.rank, c))
    for m in tracer.messages:
        records.append((m.t_deliver, m.t_inject, m.dst, m.src, m))
    records.sort(key=lambda r: r[0])

    segments: list[PathSegment] = []
    breakdown: dict[str, float] = {}

    def add(kind: str, rank: int, t0: float, t1: float, detail: str = "") -> None:
        if t1 - t0 <= 0:
            return
        segments.append(PathSegment(kind, rank, t0, t1, detail))
        breakdown[kind] = breakdown.get(kind, 0.0) + (t1 - t0)

    if records:
        # Per-rank index of records *ending* on that rank, sorted by end.
        by_rank: dict[int, list[tuple[float, float, int, int, object]]] = {}
        for rec in records:
            by_rank.setdefault(rec[2], []).append(rec)

        cur = records[-1]
        while cur is not None and len(segments) < _MAX_SEGMENTS:
            end, start, rank, prev_rank, payload = cur
            if hasattr(payload, "kernel"):  # ComputeRecord
                add("compute", rank, start, end, payload.kernel)
            else:  # MessageRecord
                if payload.intra_node:
                    kind, detail = "shm", f"{int(payload.nbytes)}B intra-node"
                else:
                    kind, detail = _classify_message(
                        fabric, placement[payload.src],
                        placement[payload.dst], payload.nbytes,
                    )
                add(kind, rank, start, end, detail)
            # Latest record finishing on prev_rank at or before our start.
            nxt = None
            for cand in reversed(by_rank.get(prev_rank, ())):
                if cand[0] <= start + _EPS and cand is not cur:
                    nxt = cand
                    break
            if nxt is not None and start - nxt[0] > _EPS:
                add("wait", prev_rank, nxt[0], start)
            cur = nxt

    # Resource-utilisation side: busiest instance per kind.
    utilisation: dict[str, float] = {}
    if elapsed > 0 and fabric is not None:
        n = fabric.n_nodes
        nic = max(
            (max(fabric.egress_resource(i).busy_time,
                 fabric.ingress_resource(i).busy_time) for i in range(n)),
            default=0.0,
        )
        utilisation["nic"] = nic / elapsed
        levels = range(1, fabric.topology.n_levels + 1)
        core = max((fabric.core_resource(lv).busy_time for lv in levels),
                   default=0.0)
        utilisation["bisection"] = core / elapsed
        shm = max((fabric.shm_resource(i).busy_time for i in range(n)),
                  default=0.0)
        utilisation["shm"] = shm / elapsed
        comp = max((tracer.compute_time(r) for r in range(cluster.nprocs)),
                   default=0.0)
        utilisation["compute"] = comp / elapsed

    productive = {k: v for k, v in breakdown.items() if k != "wait"}
    if productive:
        dominant = max(productive, key=lambda k: (productive[k], k))
    elif utilisation:
        dominant = max(utilisation, key=lambda k: (utilisation[k], k))
    else:
        dominant = "compute"

    return CriticalPathReport(
        machine=cluster.machine.name,
        nprocs=cluster.nprocs,
        elapsed=elapsed,
        dominant=dominant,
        breakdown=breakdown,
        utilisation=utilisation,
        segments=tuple(segments),
    )


def format_critical_path(report: CriticalPathReport) -> str:
    """One-paragraph human rendering of a :class:`CriticalPathReport`."""
    total = sum(report.breakdown.values()) or 1.0
    parts = ", ".join(
        f"{k} {v / total * 100:.0f}%"
        for k, v in sorted(report.breakdown.items(), key=lambda kv: -kv[1])
    )
    util = ", ".join(
        f"{k} {v * 100:.0f}%"
        for k, v in sorted(report.utilisation.items(), key=lambda kv: -kv[1])
    )
    win = report.dominant_window()
    when = ("" if win is None else
            f", binding from {win[0] * 1e6:.1f} to {win[1] * 1e6:.1f} us")
    lines = [
        f"{report.machine} P={report.nprocs}: "
        f"{report.dominant} dominates the critical path "
        f"({report.dominant_share() * 100:.0f}% of "
        f"{report.elapsed * 1e6:.1f} us end-to-end{when})",
        f"  path breakdown: {parts or 'n/a'}",
        f"  busiest instances: {util or 'n/a'}",
    ]
    return "\n".join(lines)
