"""Energy-to-solution accounting over traced busy intervals.

The machine models describe *when* components are busy (the per-rank CPU
clocks in :mod:`repro.mpi.pt2pt`, the per-resource busy time in
:mod:`repro.network.resources`); a :class:`PowerModel` prices those
states in watts, and an :class:`EnergyRecorder` integrates the product
over a run's virtual time:

* **CPU**: every rank pays its idle floor for the whole run, plus the
  busy-idle delta over the seconds its CPU clock actually advanced
  (compute kernels, send/recv software overheads, staging copies).
* **NIC**: every node pays the NIC idle floor for the whole run, plus
  the active delta over the egress/ingress/nic-bus busy seconds the
  fabric's bandwidth servers recorded.
* **Links**: the switch-core levels draw power only while transferring
  (per busy second of core occupancy); idle link power is folded into
  the NIC/node floors.
* **Memory**: a constant per-node draw (DRAM background + refresh);
  shared-memory traffic energy is considered part of the CPU busy
  delta, as the same cores drive the copies.

The recorder follows the twin-path discipline of
:mod:`repro.obs.metrics`: a shared *disabled* recorder is installed by
default, model code tests one pre-fetched flag on the hot path, and the
harness swaps in an enabled instance under ``--energy``.  Accounting is
merged exactly like comm matrices and timelines — per-point child
recorders snapshot, snapshots ride back on the
:class:`~repro.exec.worker.PointRecord`, and the executor folds them in
input order — so serial, ``--jobs N``, every exec backend, and
cache-warm sweeps produce byte-identical joule totals.

Like every module in :mod:`repro.obs`, nothing here imports the model
layers; :mod:`repro.mpi.cluster` calls :meth:`EnergyRecorder.record_run`
at the end of each simulated run.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass
from typing import Iterator

#: Phase used when nothing more specific has been set.
DEFAULT_PHASE = "default"

#: Per-component joule keys, in the fixed order they are summed and
#: serialised (fixed order = byte-identical float totals).
COMPONENT_KEYS = ("cpu_j", "mem_j", "nic_j", "link_j")

#: Every per-phase numeric field, in merge order.
_SUM_KEYS = ("runs", "ranks_s", "nodes_s", "elapsed_s", "cpu_busy_s",
             "nic_busy_s", "link_busy_s", "shm_busy_s",
             "cpu_j", "mem_j", "nic_j", "link_j", "total_j")


@dataclass(frozen=True)
class PowerModel:
    """Per-component power states of one machine, in watts.

    All CPU figures are per *core* (per rank at full packing), NIC and
    memory figures per *node*, and ``link_active_w`` per busy second of
    switch-core occupancy.  ``provenance`` documents where the estimate
    comes from (vendor TDP sheets, installation power reports, ...);
    none of these numbers are measured by the 2006 paper.
    """

    cpu_busy_w: float            # one core, pinned at 100% busy
    cpu_idle_w: float            # one core, idling in the OS/run-time
    nic_active_w: float          # one NIC while moving bytes
    nic_idle_w: float            # one NIC, link up but quiet
    link_active_w: float         # switch-core draw per busy second
    mem_w: float                 # per-node memory subsystem, constant
    provenance: str = ""

    def __post_init__(self) -> None:
        for name in ("cpu_busy_w", "cpu_idle_w", "nic_active_w",
                     "nic_idle_w", "link_active_w", "mem_w"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.cpu_busy_w < self.cpu_idle_w:
            raise ValueError("cpu_busy_w must be >= cpu_idle_w")
        if self.nic_active_w < self.nic_idle_w:
            raise ValueError("nic_active_w must be >= nic_idle_w")

    def to_dict(self) -> dict:
        return {
            "cpu_busy_w": self.cpu_busy_w,
            "cpu_idle_w": self.cpu_idle_w,
            "nic_active_w": self.nic_active_w,
            "nic_idle_w": self.nic_idle_w,
            "link_active_w": self.link_active_w,
            "mem_w": self.mem_w,
            "provenance": self.provenance,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "PowerModel":
        return cls(cpu_busy_w=doc["cpu_busy_w"],
                   cpu_idle_w=doc["cpu_idle_w"],
                   nic_active_w=doc["nic_active_w"],
                   nic_idle_w=doc["nic_idle_w"],
                   link_active_w=doc["link_active_w"],
                   mem_w=doc["mem_w"],
                   provenance=doc.get("provenance", ""))

    # -- steady-state views (used by the analytic ranking) -------------------

    def node_busy_w(self, cpus_per_node: int) -> float:
        """One fully-busy node: all cores busy + memory + quiet NIC."""
        return (self.cpu_busy_w * cpus_per_node + self.mem_w
                + self.nic_idle_w)

    def node_idle_w(self, cpus_per_node: int) -> float:
        """One idle node: idle cores + memory + quiet NIC."""
        return (self.cpu_idle_w * cpus_per_node + self.mem_w
                + self.nic_idle_w)


def integrate_energy(power: PowerModel, *, nprocs: int, n_nodes: int,
                     elapsed_s: float, cpu_busy_s: float,
                     busy: dict) -> dict:
    """Price one run's busy intervals; returns the per-component joules.

    ``busy`` is :meth:`repro.network.netmodel.Fabric.busy_by_kind`
    output: ``{kind: {"busy_s": float, "bytes": float}}``.  Additions
    follow a fixed order so two identical runs produce bit-identical
    floats.
    """
    def busy_s(kind: str) -> float:
        entry = busy.get(kind)
        return entry["busy_s"] if entry else 0.0

    nic_busy = busy_s("egress") + busy_s("ingress") + busy_s("nicbus")
    link_busy = busy_s("core")
    shm_busy = busy_s("shm")
    cpu_j = (power.cpu_idle_w * nprocs * elapsed_s
             + (power.cpu_busy_w - power.cpu_idle_w) * cpu_busy_s)
    mem_j = power.mem_w * n_nodes * elapsed_s
    nic_j = (power.nic_idle_w * n_nodes * elapsed_s
             + (power.nic_active_w - power.nic_idle_w) * nic_busy)
    link_j = power.link_active_w * link_busy
    total_j = cpu_j + mem_j + nic_j + link_j
    return {
        "runs": 1,
        "ranks_s": nprocs * elapsed_s,
        "nodes_s": n_nodes * elapsed_s,
        "elapsed_s": elapsed_s,
        "cpu_busy_s": cpu_busy_s,
        "nic_busy_s": nic_busy,
        "link_busy_s": link_busy,
        "shm_busy_s": shm_busy,
        "cpu_j": cpu_j,
        "mem_j": mem_j,
        "nic_j": nic_j,
        "link_j": link_j,
        "total_j": total_j,
    }


def _empty_phase() -> dict:
    doc = {k: 0 if k == "runs" else 0.0 for k in _SUM_KEYS}
    doc["machine"] = None
    doc["power"] = None
    return doc


class EnergyRecorder:
    """Per-phase joule accounting with deterministic merge.

    Mirrors :class:`~repro.obs.timeline.TimelineRecorder`: phases are
    created on first touch, snapshots are plain JSON-able dicts, and
    merging adds the numeric fields of each phase in a fixed key order.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._phases: dict[str, dict] = {}
        self._phase_name = DEFAULT_PHASE

    # -- phase management ----------------------------------------------------

    def set_phase(self, name: str) -> str:
        """Route subsequent runs to ``name``; returns the old phase."""
        previous, self._phase_name = self._phase_name, name
        return previous

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Scope a phase for a ``with`` block."""
        previous = self.set_phase(name)
        try:
            yield
        finally:
            self.set_phase(previous)

    @property
    def current_phase(self) -> str:
        return self._phase_name

    # -- recording -----------------------------------------------------------

    def record_run(self, power: PowerModel, *, machine: str, nprocs: int,
                   n_nodes: int, elapsed_s: float, cpu_busy_s: float,
                   busy: dict) -> None:
        """Integrate one finished simulated run into the current phase."""
        if not self.enabled:
            return
        run = integrate_energy(power, nprocs=nprocs, n_nodes=n_nodes,
                               elapsed_s=elapsed_s, cpu_busy_s=cpu_busy_s,
                               busy=busy)
        doc = self._phases.get(self._phase_name)
        if doc is None:
            doc = self._phases[self._phase_name] = _empty_phase()
        if doc["machine"] is None:
            doc["machine"] = machine
            doc["power"] = power.to_dict()
        for k in _SUM_KEYS:
            doc[k] += run[k]

    # -- views ---------------------------------------------------------------

    def phases(self) -> list[str]:
        return sorted(self._phases)

    def get(self, phase: str) -> dict | None:
        return self._phases.get(phase)

    def snapshot(self) -> dict:
        """JSON-able state: ``{"phases": {name: phase_doc}}``."""
        return {
            "phases": {
                name: dict(doc)
                for name, doc in sorted(self._phases.items())
            }
        }

    def merge(self, snap: dict) -> None:
        """Fold one :meth:`snapshot` in (fixed fan-in order -> identical)."""
        if not self.enabled:
            return
        for name, incoming in sorted(snap.get("phases", {}).items()):
            doc = self._phases.get(name)
            if doc is None:
                doc = self._phases[name] = _empty_phase()
            if doc["machine"] is None:
                doc["machine"] = incoming.get("machine")
                doc["power"] = incoming.get("power")
            for k in _SUM_KEYS:
                doc[k] += incoming.get(k, 0)

    def totals(self) -> dict:
        """Whole-recorder energy summary: joules, average power, EDP.

        Phases fold in sorted-name order (the same order
        :meth:`snapshot` serialises them), so the summary is as
        deterministic as the per-phase accounting.  ``elapsed_s`` is
        summed virtual run time across phases; average power and the
        energy-delay product are derived from the summed totals.
        """
        out = {k: 0 if k == "runs" else 0.0 for k in _SUM_KEYS}
        for name in sorted(self._phases):
            doc = self._phases[name]
            for k in _SUM_KEYS:
                out[k] += doc[k]
        elapsed = out["elapsed_s"]
        out["avg_power_w"] = out["total_j"] / elapsed if elapsed > 0 else 0.0
        out["edp_js"] = out["total_j"] * elapsed
        return out


def merge_energy_snapshots(snaps: list[dict]) -> dict:
    """Merge several snapshots into one (for worker fan-in)."""
    rec = EnergyRecorder(enabled=True)
    for s in snaps:
        rec.merge(s)
    return rec.snapshot()


# -- ambient recorder ----------------------------------------------------------
#
# Unlike metrics/commviz/timeline (process-global, enabled by exactly one
# harness run at a time), energy accounting is also switched on per *job*
# by the sweep service, whose worker threads run concurrently in one
# process.  The ambient lookup therefore checks a thread-local slot
# first and falls back to the process-global one: ``using_energy`` (the
# harness main thread, per-point child recorders, service jobs) scopes
# the thread-local slot, while ``set_energy`` installs the process-global
# fallback (worker-process initialisation, where every task thread must
# see it).

#: Shared disabled recorder: the default when nothing is installed.
_NULL_RECORDER = EnergyRecorder(enabled=False)

_tls = threading.local()
_global: EnergyRecorder | None = None


def get_energy() -> EnergyRecorder:
    """The active recorder (a shared disabled one if none installed)."""
    current = getattr(_tls, "current", None)
    if current is not None:
        return current
    return _global if _global is not None else _NULL_RECORDER


def set_energy(recorder: EnergyRecorder | None) -> EnergyRecorder | None:
    """Install ``recorder`` process-globally; returns the old one."""
    global _global
    previous, _global = _global, recorder
    return previous


@contextlib.contextmanager
def using_energy(recorder: EnergyRecorder) -> Iterator[EnergyRecorder]:
    """Scope ``recorder`` as this thread's active one for a ``with`` block."""
    previous = getattr(_tls, "current", None)
    _tls.current = recorder
    try:
        yield recorder
    finally:
        _tls.current = previous
