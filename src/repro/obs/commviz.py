"""Communication matrices: rank×rank traffic, tagged by benchmark phase.

The transport (:mod:`repro.mpi.pt2pt`) records every delivered message
into the active :class:`CommRecorder` — who sent to whom, how many
bytes, and whether the pair shared a node.  Matrices are grouped by
*phase*, a free-form string the harness sets per sweep point or observed
figure (``"fig12:xeon"``, ``"imb:altix_nl4:Alltoall"``), so each paper
figure can be explained as a traffic pattern.

Cost model mirrors :mod:`repro.obs.metrics`: instrumented code fetches
the recorder **once** at transport construction and keeps ``None`` when
it is disabled — the metrics-off hot path pays nothing.  Snapshots are
plain JSON-able dicts with deterministically sorted keys; merges add
integer cells and are commutative, so serial, ``--jobs N``, and
cache-warm sweeps produce byte-identical matrices.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

#: Phase used when nothing more specific has been set.
DEFAULT_PHASE = "default"


class PhaseMatrix:
    """Traffic totals for one phase: sparse rank×rank cells + splits.

    Cells are ``(src, dst) -> [messages, bytes]`` with integer counts;
    intra/inter-node splits are kept alongside so the node boundary
    survives into snapshots without needing the placement map.
    """

    __slots__ = ("cells", "nprocs", "intra_msgs", "intra_bytes",
                 "inter_msgs", "inter_bytes")

    def __init__(self) -> None:
        self.cells: dict[tuple[int, int], list[int]] = {}
        self.nprocs = 0
        self.intra_msgs = 0
        self.intra_bytes = 0
        self.inter_msgs = 0
        self.inter_bytes = 0

    def record(self, src: int, dst: int, nbytes: int, inter: bool) -> None:
        cell = self.cells.get((src, dst))
        if cell is None:
            cell = self.cells[(src, dst)] = [0, 0]
        cell[0] += 1
        cell[1] += nbytes
        hi = src if src > dst else dst
        if hi >= self.nprocs:
            self.nprocs = hi + 1
        if inter:
            self.inter_msgs += 1
            self.inter_bytes += nbytes
        else:
            self.intra_msgs += 1
            self.intra_bytes += nbytes

    # -- views ---------------------------------------------------------------

    @property
    def total_msgs(self) -> int:
        return self.intra_msgs + self.inter_msgs

    @property
    def total_bytes(self) -> int:
        return self.intra_bytes + self.inter_bytes

    def dense_bytes(self) -> list[list[int]]:
        """Bytes as a dense ``nprocs × nprocs`` row-major matrix."""
        n = self.nprocs
        m = [[0] * n for _ in range(n)]
        for (src, dst), (_, nbytes) in self.cells.items():
            m[src][dst] = nbytes
        return m

    def row_bytes(self) -> list[int]:
        """Bytes sent per source rank (matrix row sums)."""
        out = [0] * self.nprocs
        for (src, _), (_, nbytes) in self.cells.items():
            out[src] += nbytes
        return out

    def to_dict(self) -> dict:
        return {
            "nprocs": self.nprocs,
            "intra": {"msgs": self.intra_msgs, "bytes": self.intra_bytes},
            "inter": {"msgs": self.inter_msgs, "bytes": self.inter_bytes},
            "cells": {f"{src},{dst}": list(v)
                      for (src, dst), v in sorted(self.cells.items())},
        }

    def merge(self, snap: dict) -> None:
        """Fold one :meth:`to_dict` snapshot into this matrix (additive)."""
        if snap["nprocs"] > self.nprocs:
            self.nprocs = snap["nprocs"]
        self.intra_msgs += snap["intra"]["msgs"]
        self.intra_bytes += snap["intra"]["bytes"]
        self.inter_msgs += snap["inter"]["msgs"]
        self.inter_bytes += snap["inter"]["bytes"]
        for key, (msgs, nbytes) in snap["cells"].items():
            s, d = key.split(",")
            cell = self.cells.get((int(s), int(d)))
            if cell is None:
                cell = self.cells[(int(s), int(d))] = [0, 0]
            cell[0] += msgs
            cell[1] += nbytes


class CommRecorder:
    """Per-phase communication matrices with a current-phase cursor."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._phases: dict[str, PhaseMatrix] = {}
        self._phase_name = DEFAULT_PHASE
        self._phase_matrix: PhaseMatrix | None = None

    # -- phase management ----------------------------------------------------

    def set_phase(self, name: str) -> str:
        """Route subsequent records to ``name``; returns the old phase."""
        previous, self._phase_name = self._phase_name, name
        self._phase_matrix = None
        return previous

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Scope a phase for a ``with`` block."""
        previous = self.set_phase(name)
        try:
            yield
        finally:
            self.set_phase(previous)

    @property
    def current_phase(self) -> str:
        return self._phase_name

    # -- recording -----------------------------------------------------------

    def record(self, src: int, dst: int, nbytes: int, inter: bool) -> None:
        if not self.enabled:
            return
        pm = self._phase_matrix
        if pm is None:
            pm = self._phases.get(self._phase_name)
            if pm is None:
                pm = self._phases[self._phase_name] = PhaseMatrix()
            self._phase_matrix = pm
        pm.record(src, dst, nbytes, inter)

    # -- views ---------------------------------------------------------------

    def phases(self) -> list[str]:
        return sorted(self._phases)

    def matrix(self, phase: str = DEFAULT_PHASE) -> PhaseMatrix | None:
        return self._phases.get(phase)

    def total_bytes(self) -> int:
        return sum(p.total_bytes for p in self._phases.values())

    def snapshot(self) -> dict:
        """JSON-able state: ``{"phases": {name: matrix_dict}}``."""
        return {"phases": {name: pm.to_dict()
                           for name, pm in sorted(self._phases.items())}}

    def merge(self, snap: dict) -> None:
        """Fold one :meth:`snapshot` in.  Commutative: cells add, so the
        fan-in order of worker snapshots cannot change the result."""
        if not self.enabled:
            return
        for name, pdict in snap.get("phases", {}).items():
            pm = self._phases.get(name)
            if pm is None:
                pm = self._phases[name] = PhaseMatrix()
            pm.merge(pdict)


def merge_comm_snapshots(snaps: list[dict]) -> dict:
    """Merge several snapshots into one (for worker fan-in)."""
    rec = CommRecorder(enabled=True)
    for s in snaps:
        rec.merge(s)
    return rec.snapshot()


# -- process-global recorder ---------------------------------------------------

#: Shared disabled recorder: the default when nothing is installed.
_NULL_RECORDER = CommRecorder(enabled=False)

_current: CommRecorder | None = None


def get_commviz() -> CommRecorder:
    """The active recorder (a shared disabled one if none installed)."""
    return _current if _current is not None else _NULL_RECORDER


def set_commviz(recorder: CommRecorder | None) -> CommRecorder | None:
    """Install ``recorder`` as the process-global one; returns the old."""
    global _current
    previous, _current = _current, recorder
    return previous


@contextlib.contextmanager
def using_commviz(recorder: CommRecorder) -> Iterator[CommRecorder]:
    """Scope ``recorder`` as the active one for a ``with`` block."""
    previous = set_commviz(recorder)
    try:
        yield recorder
    finally:
        set_commviz(previous)
