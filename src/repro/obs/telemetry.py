"""Distributed tracing for the serving path: jobs, sweeps, workers.

Where :mod:`repro.obs.spans` times the *harness* (a single process, a
single thread, a strict stack of phases), this module traces the *sweep
service*: one submitted job fans out through queue worker threads, an
executor, and — under the ``subprocess`` backend — a fleet of worker
processes speaking line-delimited JSON.  A trace must therefore survive
three boundaries the span recorder never crosses:

* **concurrency** — several jobs trace simultaneously through one
  shared :class:`TelemetryRecorder`; the open-span stack is
  thread-local, the finished-span list is shared under a lock;
* **causality without a stack** — a queue-wait or a worker-side compute
  happens on a different thread (or in a different process) than its
  logical parent, so spans carry explicit ``trace_id`` / ``span_id`` /
  ``parent_id`` fields and a parent can be named directly;
* **process hops** — :meth:`TelemetryRecorder.inject` produces the
  plain-JSON *trace context* dict (``{"trace_id", "parent_span_id"}``)
  that rides inside the fleet's job messages; the worker opens its
  spans under that remote parent and ships them back in the reply,
  where :meth:`TelemetryRecorder.adopt` folds them into the parent's
  record.  A future HTTP/remote worker inherits exactly this contract —
  the context dict and the span dicts are the whole wire format.

Timestamps are ``time.time()`` (shared epoch) so spans from different
processes land on one comparable timeline; a trace reassembles into a
tree with :func:`assemble_traces` and exports to Chrome ``traceEvents``
through the existing :mod:`repro.obs.exporters` machinery
(:meth:`TraceSpan.to_span` lifts telemetry spans into the exporter's
:class:`~repro.obs.spans.Span` type).

The module follows the ``repro.obs`` no-op discipline: a shared
*disabled* recorder is ambient by default, every recording entry point
checks ``enabled`` first, and :func:`get_telemetry` mirrors the
thread-local-then-global lookup of :mod:`repro.obs.energy` so
concurrent service jobs scope their spans without interfering.
Telemetry never touches simulation state or results — traced and
untraced runs are byte-identical by construction (and by test).
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from typing import Iterator

from .spans import Span

#: Bump when the span-dict layout changes incompatibly.
TRACE_SCHEMA_VERSION = 1

_ids_lock = threading.Lock()
_ids_counter = 0


def _mint(nbytes: int) -> str:
    """Random hex id, suffixed with a process-local counter.

    ``os.urandom`` gives cross-process uniqueness, the counter makes
    collisions impossible within one process even under a starved
    entropy pool.
    """
    global _ids_counter
    with _ids_lock:
        _ids_counter += 1
        n = _ids_counter
    return f"{os.urandom(nbytes).hex()}{n:04x}"


def mint_trace_id() -> str:
    """A fresh 128-bit-ish trace id (one per submitted job / run)."""
    return _mint(12)


def mint_span_id() -> str:
    """A fresh 64-bit-ish span id."""
    return _mint(6)


class TraceSpan:
    """One timed operation within a trace.

    Mutable while open (the recorder stamps ``t_end`` on exit), then
    treated as frozen.  ``children`` is populated only by
    :func:`assemble_traces` — on the wire and in the event log, spans
    are flat and linked by ``parent_id``.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "cat",
                 "t_start", "t_end", "pid", "attrs", "status", "children")

    def __init__(self, trace_id: str, span_id: str, parent_id: str | None,
                 name: str, cat: str = "service", *,
                 t_start: float, t_end: float | None = None,
                 pid: int | None = None, attrs: dict | None = None,
                 status: str = "ok") -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.t_start = t_start
        self.t_end = t_end
        self.pid = os.getpid() if pid is None else pid
        self.attrs = attrs or {}
        self.status = status
        self.children: list["TraceSpan"] = []

    @property
    def duration(self) -> float:
        return 0.0 if self.t_end is None else self.t_end - self.t_start

    def to_dict(self) -> dict:
        """Flat JSON-able form — the wire/event-log representation."""
        d = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "cat": self.cat,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "pid": self.pid,
            "status": self.status,
        }
        if self.attrs:
            d["attrs"] = self.attrs
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "TraceSpan":
        return cls(d["trace_id"], d["span_id"], d.get("parent_id"),
                   d.get("name", "?"), d.get("cat", "service"),
                   t_start=float(d.get("t_start", 0.0)),
                   t_end=d.get("t_end"),
                   pid=d.get("pid", 0),
                   attrs=d.get("attrs") or {},
                   status=d.get("status", "ok"))

    def to_span(self, t0: float = 0.0) -> Span:
        """Lift into the exporter :class:`~repro.obs.spans.Span` type.

        ``t0`` rebases the epoch timestamps (pass the trace's earliest
        start so exports begin at zero); children convert recursively,
        so an assembled tree exports as one waterfall.
        """
        s = Span(name=self.name, cat=self.cat, clock="wall",
                 t_start=self.t_start - t0,
                 t_end=None if self.t_end is None else self.t_end - t0,
                 tid=self.pid,
                 args={"trace_id": self.trace_id, "span_id": self.span_id,
                       "status": self.status, **self.attrs})
        s.children = [c.to_span(t0) for c in self.children]
        return s


class TelemetryRecorder:
    """Shared, thread-safe recorder of :class:`TraceSpan` trees.

    One recorder serves every concurrent job of a service (or one whole
    harness run): each thread keeps its own open-span stack, finished
    spans collect in one shared list.  ``context`` seeds a *remote*
    parent — a worker process constructs its recorder from the trace
    context found in the job message, so its root-level spans are
    children of the dispatching span in the parent process.
    """

    def __init__(self, enabled: bool = True,
                 context: dict | None = None) -> None:
        self.enabled = enabled
        self._ctx_trace = (context or {}).get("trace_id")
        self._ctx_parent = (context or {}).get("parent_span_id")
        self._lock = threading.Lock()
        self._tls = threading.local()
        self.spans: list[TraceSpan] = []

    # -- recording -----------------------------------------------------------

    def _stack(self) -> list[TraceSpan]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def begin(self, name: str, cat: str = "service", *,
              trace_id: str | None = None,
              parent: dict | None = None, **attrs) -> TraceSpan | None:
        """Open a span; returns None (recording nothing) when disabled.

        Parentage, most specific wins: an explicit ``parent`` trace
        context, else the innermost open span on *this thread*, else
        the recorder's remote context, else a fresh root (minting
        ``trace_id`` unless one is given).
        """
        if not self.enabled:
            return None
        stack = self._stack()
        if parent is not None:
            tid = parent.get("trace_id") or trace_id or mint_trace_id()
            pid = parent.get("parent_span_id") or parent.get("span_id")
        elif stack:
            tid = stack[-1].trace_id
            pid = stack[-1].span_id
        elif self._ctx_trace is not None:
            tid = self._ctx_trace
            pid = self._ctx_parent
        else:
            tid = trace_id or mint_trace_id()
            pid = None
        span = TraceSpan(tid, mint_span_id(), pid, name, cat,
                         t_start=time.time(), attrs=attrs)
        stack.append(span)
        return span

    def end(self, span: TraceSpan | None, status: str = "ok") -> None:
        """Close ``span`` (a no-op for the disabled-recorder None)."""
        if span is None or not self.enabled:
            return
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # pragma: no cover - misnested close, keep the data anyway
            try:
                stack.remove(span)
            except ValueError:
                pass
        span.t_end = time.time()
        span.status = status
        with self._lock:
            self.spans.append(span)

    @contextlib.contextmanager
    def span(self, name: str, cat: str = "service", *,
             parent: dict | None = None, **attrs) -> Iterator[TraceSpan | None]:
        """Context-manager span; yields None when the recorder is off."""
        s = self.begin(name, cat, parent=parent, **attrs)
        try:
            yield s
        except BaseException:
            self.end(s, status="error")
            raise
        else:
            self.end(s)

    def record(self, name: str, cat: str = "service", *,
               t_start: float, t_end: float,
               parent: dict | None = None,
               span_id: str | None = None,
               status: str = "ok", **attrs) -> TraceSpan | None:
        """Record a span retroactively with explicit epoch timestamps.

        For phases whose boundaries were observed rather than lived —
        e.g. queue wait, known only once a worker picks the job up.
        ``span_id`` lets the caller pre-mint the id (the service mints a
        job's root span id at submit time so children recorded *during*
        the job can name it as parent before it is written at the end).
        """
        if not self.enabled:
            return None
        stack = self._stack()
        if parent is not None:
            tid = parent.get("trace_id") or mint_trace_id()
            pid = parent.get("parent_span_id") or parent.get("span_id")
        elif stack:
            tid, pid = stack[-1].trace_id, stack[-1].span_id
        elif self._ctx_trace is not None:
            tid, pid = self._ctx_trace, self._ctx_parent
        else:
            tid, pid = mint_trace_id(), None
        span = TraceSpan(tid, span_id or mint_span_id(), pid, name, cat,
                         t_start=t_start, t_end=t_end, attrs=attrs,
                         status=status)
        with self._lock:
            self.spans.append(span)
        return span

    # -- propagation ---------------------------------------------------------

    def inject(self, span: TraceSpan | None = None) -> dict | None:
        """Trace context for a child in another thread/process.

        Serialises the causal position of ``span`` (default: this
        thread's innermost open span) as the plain-JSON dict the fleet
        protocol carries.  Returns None when there is nothing to
        propagate (disabled, or no open span).
        """
        if not self.enabled:
            return None
        if span is None:
            stack = self._stack()
            if not stack:
                if self._ctx_trace is not None:
                    return {"trace_id": self._ctx_trace,
                            "parent_span_id": self._ctx_parent}
                return None
            span = stack[-1]
        return {"trace_id": span.trace_id, "parent_span_id": span.span_id}

    def adopt(self, span_dicts: list[dict] | None) -> int:
        """Fold spans recorded elsewhere (worker replies) into this record.

        The dicts already carry their trace/parent ids — adoption is
        collection, not re-parenting.  Returns the number adopted.
        """
        if not self.enabled or not span_dicts:
            return 0
        adopted = [TraceSpan.from_dict(d) for d in span_dicts]
        with self._lock:
            self.spans.extend(adopted)
        return len(adopted)

    # -- views ---------------------------------------------------------------

    def drain(self) -> list[dict]:
        """Remove and return every finished span as dicts (wire form)."""
        with self._lock:
            out, self.spans = self.spans, []
        return [s.to_dict() for s in out]

    def snapshot(self) -> list[dict]:
        """Finished spans as dicts, without clearing."""
        with self._lock:
            return [s.to_dict() for s in self.spans]

    def trace_spans(self, trace_id: str) -> list[dict]:
        """Finished spans belonging to one trace, as dicts."""
        with self._lock:
            return [s.to_dict() for s in self.spans
                    if s.trace_id == trace_id]

    def take_trace(self, trace_id: str) -> list[dict]:
        """Remove and return one trace's finished spans as dicts.

        The service calls this when a job goes terminal: the trace is
        complete at that point, and moving it off the shared recorder
        keeps a long-lived queue's span list from growing without bound.
        """
        with self._lock:
            mine = [s for s in self.spans if s.trace_id == trace_id]
            self.spans = [s for s in self.spans if s.trace_id != trace_id]
        return [s.to_dict() for s in mine]


# -- reassembly ---------------------------------------------------------------


def assemble_traces(span_dicts: list[dict]) -> dict[str, list[TraceSpan]]:
    """Rebuild span trees: ``{trace_id: [root spans]}``.

    Children attach to their parent (sorted by start time); a span
    whose parent never arrived (a lost worker reply) is kept as an
    extra root rather than dropped — incomplete traces should be
    *visibly* incomplete.
    """
    spans = [TraceSpan.from_dict(d) for d in span_dicts]
    by_id = {s.span_id: s for s in spans}
    out: dict[str, list[TraceSpan]] = {}
    for s in spans:
        parent = by_id.get(s.parent_id) if s.parent_id else None
        if parent is not None and parent.trace_id == s.trace_id:
            parent.children.append(s)
        else:
            out.setdefault(s.trace_id, []).append(s)
    for roots in out.values():
        roots.sort(key=lambda s: (s.t_start, s.span_id))
        stack = list(roots)
        while stack:
            node = stack.pop()
            node.children.sort(key=lambda s: (s.t_start, s.span_id))
            stack.extend(node.children)
    return out


def trace_summary(span_dicts: list[dict]) -> dict:
    """Per-trace roll-up for bench/ledger rows and status documents.

    ``{"traces": {trace_id: {"roots", "spans", "wall_s", "root_name",
    "errors", "by_cat"}}, "spans": total}`` — small enough to embed
    anywhere, precise enough for the "one root per job" CI assertion.
    """
    trees = assemble_traces(span_dicts)
    doc: dict = {"spans": len(span_dicts), "traces": {}}
    for trace_id, roots in sorted(trees.items()):
        flat: list[TraceSpan] = []
        stack = list(roots)
        while stack:
            s = stack.pop()
            flat.append(s)
            stack.extend(s.children)
        t0 = min(s.t_start for s in flat)
        t1 = max(s.t_end if s.t_end is not None else s.t_start for s in flat)
        by_cat: dict[str, int] = {}
        for s in flat:
            by_cat[s.cat] = by_cat.get(s.cat, 0) + 1
        doc["traces"][trace_id] = {
            "roots": len(roots),
            "root_name": roots[0].name,
            "spans": len(flat),
            "wall_s": round(t1 - t0, 6),
            "errors": sum(1 for s in flat if s.status != "ok"),
            "by_cat": dict(sorted(by_cat.items())),
        }
    return doc


def traces_to_spans(span_dicts: list[dict]) -> list[Span]:
    """Assembled trace trees as exporter spans, rebased to t=0.

    Feed the result straight to
    :func:`repro.obs.exporters.write_spans_chrome_trace`.
    """
    trees = assemble_traces(span_dicts)
    all_roots = [r for roots in trees.values() for r in roots]
    if not all_roots:
        return []
    t0 = min(r.t_start for r in all_roots)
    return [r.to_span(t0) for r in all_roots]


# -- ambient recorder ---------------------------------------------------------
#
# Same two-level lookup as repro.obs.energy: a thread-local slot first
# (service job threads, harness main thread), then a process-global
# fallback (worker-process initialisation), then the shared disabled
# recorder.

#: Shared disabled recorder: the default when nothing is installed.
_NULL_RECORDER = TelemetryRecorder(enabled=False)

_tls = threading.local()
_global: TelemetryRecorder | None = None


def get_telemetry() -> TelemetryRecorder:
    """The active recorder (a shared disabled one if none installed)."""
    current = getattr(_tls, "current", None)
    if current is not None:
        return current
    return _global if _global is not None else _NULL_RECORDER


def set_telemetry(recorder: TelemetryRecorder | None,
                  ) -> TelemetryRecorder | None:
    """Install ``recorder`` process-globally; returns the old one."""
    global _global
    previous, _global = _global, recorder
    return previous


@contextlib.contextmanager
def using_telemetry(recorder: TelemetryRecorder,
                    ) -> Iterator[TelemetryRecorder]:
    """Scope ``recorder`` as this thread's active one for a ``with`` block."""
    previous = getattr(_tls, "current", None)
    _tls.current = recorder
    try:
        yield recorder
    finally:
        _tls.current = previous
