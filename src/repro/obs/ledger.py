"""Append-only JSONL run ledger: performance history across commits.

Every harness run appends one JSON line describing what ran (item
names, CPU cap), where the code stood (git SHA, source fingerprint from
the exec cache), and how fast it went (wall seconds, engine events/s,
cache hits).  The file is append-only and schema-versioned, so the
bench trajectory of the repository accumulates run over run and trend
queries stay cheap — read, filter by ``run_key``, plot.

Regression flagging compares a fresh entry against the **trailing
median** of earlier entries with the same ``run_key`` (same work, same
cap); the median makes a single noisy CI runner harmless, and nothing
is flagged until :data:`MIN_HISTORY` comparable runs exist.  Host wall
time is inherently noisy, so the default tolerance is generous and the
validation gate treats a flag as a warning unless strict mode is on.

Malformed lines (truncated writes, merge scars) are skipped and
counted, never fatal — history files outlive bugs.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from pathlib import Path

#: Bump when the entry layout changes incompatibly.
#: v2: entries carry ``engine_backend`` and it joins ``run_key`` — runs
#: under different scheduler backends are different work, so their
#: events/s never compete in the same trailing-median window.
#: v4: energy-accounted runs carry ``energy_total_j`` /
#: ``energy_avg_power_w`` / ``energy_edp_js``; energy-off rows omit the
#: fields entirely rather than null-padding them.  (v3 was never used
#: for the ledger — the number jumps to stay aligned with
#: ``BENCH_SCHEMA_VERSION``.)  Readers stay version-lenient: any
#: well-formed row with a ``schema_version`` parses, whatever its
#: vintage, and trend/regression queries simply skip fields a row does
#: not have.
#: v5: traced runs carry ``trace_id`` (and, for harness rows,
#: ``trace_spans``) linking the row to its distributed job trace;
#: telemetry-off rows omit the fields entirely.
LEDGER_SCHEMA_VERSION = 5

#: Comparable runs required before regression flagging switches on.
MIN_HISTORY = 3

#: Default drift tolerance vs the trailing median (0.5 = 50% slower).
DEFAULT_TOLERANCE = 0.5


def git_sha(repo_dir: str | Path | None = None) -> str:
    """Short git SHA of ``repo_dir`` (or cwd); ``"unknown"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(repo_dir) if repo_dir is not None else None,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def run_key(items: list[str], max_cpus: int | None,
            engine_backend: str | None = None) -> str:
    """Stable key for "the same work": items + CPU cap + engine backend."""
    blob = json.dumps({"items": sorted(items), "max_cpus": max_cpus,
                       "engine_backend": engine_backend},
                      sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


def _median(values: list[float]) -> float:
    s = sorted(values)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else (s[mid - 1] + s[mid]) / 2.0


class RunLedger:
    """One append-only JSONL history file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.skipped = 0  # malformed lines seen by the last entries() call

    def append(self, entry: dict) -> dict:
        """Stamp ``schema_version`` and append one line; returns the line."""
        stamped = {"schema_version": LEDGER_SCHEMA_VERSION, **entry}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(stamped, sort_keys=True) + "\n")
        return stamped

    def entries(self) -> list[dict]:
        """All well-formed entries, oldest first; malformed lines skipped."""
        self.skipped = 0
        out: list[dict] = []
        if not self.path.exists():
            return out
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                self.skipped += 1
                continue
            if not isinstance(entry, dict) or "schema_version" not in entry:
                self.skipped += 1
                continue
            out.append(entry)
        return out

    # -- trend queries --------------------------------------------------------

    def trend(self, key: str, field: str = "wall_s",
              limit: int | None = None) -> list[tuple[str, float]]:
        """``(git_sha, value)`` pairs for one run_key, oldest first."""
        rows = [
            (e.get("git_sha", "unknown"), float(e[field]))
            for e in self.entries()
            if e.get("run_key") == key and isinstance(e.get(field), (int, float))
        ]
        return rows[-limit:] if limit else rows

    def check_regression(self, entry: dict, *,
                         tolerance: float = DEFAULT_TOLERANCE) -> dict:
        """Compare ``entry`` against the trailing median of its run_key.

        Flags ``wall_s`` drifting *slower* and ``events_per_s`` drifting
        *lower* beyond ``tolerance``; improvements never flag.  Returns
        ``{"checked", "history", "regressions", "ok"}`` — ``checked`` is
        False (and ``ok`` True) until :data:`MIN_HISTORY` prior entries
        with the same key exist.
        """
        key = entry.get("run_key")
        prior = [e for e in self.entries()
                 if e.get("run_key") == key and e is not entry]
        # The entry under test may already be appended; drop one identical
        # trailing line so a run never competes with itself.
        if prior and prior[-1] == {"schema_version": LEDGER_SCHEMA_VERSION,
                                   **entry}:
            prior = prior[:-1]
        verdict: dict = {"checked": False, "history": len(prior),
                         "regressions": [], "ok": True}
        if len(prior) < MIN_HISTORY:
            return verdict
        verdict["checked"] = True
        for field, worse_is_bigger in (("wall_s", True),
                                       ("events_per_s", False)):
            value = entry.get(field)
            hist = [float(e[field]) for e in prior
                    if isinstance(e.get(field), (int, float))]
            if not isinstance(value, (int, float)) or len(hist) < MIN_HISTORY:
                continue
            med = _median(hist)
            if med <= 0:
                continue
            ratio = float(value) / med
            bad = ratio > 1 + tolerance if worse_is_bigger \
                else ratio < 1 / (1 + tolerance)
            if bad:
                verdict["regressions"].append({
                    "field": field, "value": float(value),
                    "median": med, "ratio": round(ratio, 4),
                })
        verdict["ok"] = not verdict["regressions"]
        return verdict
