"""Zero-dependency metrics registry: counters, gauges, histograms.

Metric names are hierarchical dotted strings (``engine.events``,
``net.egress.queue_wait``, ``cache.hits``).  Three instrument kinds:

* :class:`Counter` — monotonically increasing total (int or float).
* :class:`Gauge` — a last-written value with a ``set_max`` convenience
  for high-water marks; gauges merge by ``max``.
* :class:`Histogram` — fixed log2 buckets keyed by the base-2 exponent
  of the observation (``2**(e-1) < v <= 2**e``), plus count/sum/min/max.
  Log2 buckets make virtual-time distributions (nanoseconds to seconds)
  and byte sizes equally representable without configuration.

Cost model: instrumented code fetches its instruments **once** (at
engine/fabric/transport construction) via :func:`get_metrics`.  When no
registry is installed — the default everywhere outside the harness —
the shared disabled registry hands out no-op instruments, so the steady
state cost is at most one attribute access per already-infrequent call
site, and hot loops can skip instrumentation entirely by checking
``registry.enabled`` once.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-able dicts
with deterministically sorted keys; :func:`merge_snapshots` /
:meth:`MetricsRegistry.merge` combine worker-process snapshots into a
parent registry.  All merge operations are commutative, so serial and
parallel sweeps produce identical merged metrics.
"""

from __future__ import annotations

import contextlib
import math
from typing import Iterator


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        self.value += n


class Gauge:
    """A last-written value; ``set_max`` keeps high-water marks."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, v: float) -> None:
        self.value = v

    def set_max(self, v: float) -> None:
        if v > self.value:
            self.value = v


#: Observations below 2**_MIN_EXP collapse into the lowest bucket.
_MIN_EXP = -64
#: Observations above 2**_MAX_EXP collapse into the highest bucket.
_MAX_EXP = 64


def log2_bucket(value: float) -> int:
    """Bucket exponent ``e`` such that ``2**(e-1) < value <= 2**e``.

    Zero and negative observations land in the dedicated ``_MIN_EXP``
    bucket; extremes are clipped so the bucket keyspace stays bounded.
    """
    if value <= 0:
        return _MIN_EXP
    e = math.frexp(value)[1]  # value = m * 2**e with 0.5 <= m < 1
    if value == math.ldexp(0.5, e):  # exact power of two: 2**(e-1)
        e -= 1
    return min(max(e, _MIN_EXP), _MAX_EXP)


class Histogram:
    """Fixed log2-bucket histogram with count/sum/min/max."""

    __slots__ = ("name", "buckets", "count", "sum", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        b = log2_bucket(value)
        self.buckets[b] = self.buckets.get(b, 0) + 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class _NullCounter:
    __slots__ = ()

    def inc(self, n: float = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, v: float) -> None:
        pass

    def set_max(self, v: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Create-or-get instrument store with hierarchical dotted names."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument accessors ------------------------------------------------

    def counter(self, name: str) -> Counter | _NullCounter:
        if not self.enabled:
            return _NULL_COUNTER
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge | _NullGauge:
        if not self.enabled:
            return _NULL_GAUGE
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram | _NullHistogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    # -- views ---------------------------------------------------------------

    def value(self, name: str, default: float = 0) -> float:
        """Current value of a counter or gauge by name."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        return default

    def snapshot(self) -> dict:
        """JSON-able state: ``{"counters": .., "gauges": .., "histograms": ..}``."""
        return {
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.to_dict()
                           for n, h in sorted(self._histograms.items())},
        }

    def flat(self) -> dict[str, float]:
        """Counters and gauges as one sorted ``name -> value`` map."""
        out = {n: c.value for n, c in self._counters.items()}
        out.update((n, g.value) for n, g in self._gauges.items())
        return dict(sorted(out.items()))

    # -- merging -------------------------------------------------------------

    def merge(self, snap: dict) -> None:
        """Fold one :meth:`snapshot` into this registry.

        Counters and histogram buckets add; gauges keep the max (they
        are used for high-water marks).  Commutative, so merge order
        does not affect the result.
        """
        if not self.enabled:
            return
        for name, v in snap.get("counters", {}).items():
            self.counter(name).inc(v)
        for name, v in snap.get("gauges", {}).items():
            self.gauge(name).set_max(v)
        for name, d in snap.get("histograms", {}).items():
            h = self.histogram(name)
            h.count += d["count"]
            h.sum += d["sum"]
            if d["min"] is not None and d["min"] < h.min:
                h.min = d["min"]
            if d["max"] is not None and d["max"] > h.max:
                h.max = d["max"]
            for k, n in d["buckets"].items():
                k = int(k)
                h.buckets[k] = h.buckets.get(k, 0) + n


def merge_snapshots(snaps: list[dict]) -> dict:
    """Merge several snapshots into one (for worker fan-in)."""
    reg = MetricsRegistry(enabled=True)
    for s in snaps:
        reg.merge(s)
    return reg.snapshot()


# -- process-global registry --------------------------------------------------

#: Shared disabled registry: the default when nothing is installed.
_NULL_REGISTRY = MetricsRegistry(enabled=False)

_current: MetricsRegistry | None = None


def get_metrics() -> MetricsRegistry:
    """The active registry (a shared disabled one if none installed)."""
    return _current if _current is not None else _NULL_REGISTRY


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install ``registry`` as the process-global one; returns the old."""
    global _current
    previous, _current = _current, registry
    return previous


@contextlib.contextmanager
def using_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope ``registry`` as the active one for a ``with`` block."""
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
