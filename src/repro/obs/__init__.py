"""Unified observability: metrics, span tracing, critical-path analysis.

This package is the single place the simulator reports *why* a run took
the time it did:

* :mod:`repro.obs.metrics` — a zero-dependency metrics registry
  (counters, gauges, log2-bucket histograms) with hierarchical names
  like ``engine.events`` or ``net.egress.queue_wait``.  Near-zero cost
  when disabled (the default outside the harness).
* :mod:`repro.obs.spans` — span tracing: wall-time spans for harness
  stages, virtual-time spans derived from a traced cluster run.
* :mod:`repro.obs.exporters` — Chrome ``traceEvents`` JSON (view in
  ``chrome://tracing`` / Perfetto), newline-delimited JSON, and
  human-readable summary tables.
* :mod:`repro.obs.critical_path` — walks the message/compute records of
  a traced run and reports which resource (compute, NIC, bisection,
  shared memory, wire latency) dominates end-to-end time, and when.
* :mod:`repro.obs.commviz` — rank×rank message/byte matrices with
  intra/inter-node splits, tagged by benchmark phase.
* :mod:`repro.obs.timeline` — time-bucketed busy/occupancy series per
  resource kind and per-rank straggler profiles.
* :mod:`repro.obs.ledger` — append-only JSONL run history with trend
  queries and trailing-median regression flagging.

Nothing in this package imports the model layers at module level, so the
core engine can import :mod:`repro.obs.metrics` without cycles.
"""

from .commviz import (
    CommRecorder,
    PhaseMatrix,
    get_commviz,
    merge_comm_snapshots,
    set_commviz,
    using_commviz,
)
from .critical_path import (
    CriticalPathReport,
    PathSegment,
    critical_path_report,
    format_critical_path,
)
from .energy import (
    EnergyRecorder,
    PowerModel,
    get_energy,
    integrate_energy,
    merge_energy_snapshots,
    set_energy,
    using_energy,
)
from .exporters import (
    chrome_trace_events,
    spans_to_chrome_events,
    summary_table,
    write_chrome_trace,
    write_ndjson,
    write_spans_chrome_trace,
    write_trace_chrome_trace,
)
from .ledger import LEDGER_SCHEMA_VERSION, RunLedger, git_sha, run_key
from .telemetry import (
    TRACE_SCHEMA_VERSION,
    TelemetryRecorder,
    TraceSpan,
    assemble_traces,
    get_telemetry,
    mint_span_id,
    mint_trace_id,
    set_telemetry,
    trace_summary,
    traces_to_spans,
    using_telemetry,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    merge_snapshots,
    set_metrics,
    using_metrics,
)
from .spans import Span, SpanRecorder, spans_from_tracer
from .timeline import (
    TimelineRecorder,
    TimelineSeries,
    get_timeline,
    merge_timeline_snapshots,
    set_timeline,
    straggler_profile,
    using_timeline,
)

__all__ = [
    "CommRecorder",
    "Counter",
    "CriticalPathReport",
    "EnergyRecorder",
    "Gauge",
    "Histogram",
    "LEDGER_SCHEMA_VERSION",
    "MetricsRegistry",
    "PathSegment",
    "PhaseMatrix",
    "PowerModel",
    "RunLedger",
    "Span",
    "SpanRecorder",
    "TRACE_SCHEMA_VERSION",
    "TelemetryRecorder",
    "TimelineRecorder",
    "TimelineSeries",
    "TraceSpan",
    "assemble_traces",
    "chrome_trace_events",
    "critical_path_report",
    "format_critical_path",
    "get_commviz",
    "get_energy",
    "get_metrics",
    "get_telemetry",
    "get_timeline",
    "git_sha",
    "mint_span_id",
    "mint_trace_id",
    "integrate_energy",
    "merge_comm_snapshots",
    "merge_energy_snapshots",
    "merge_snapshots",
    "merge_timeline_snapshots",
    "run_key",
    "set_commviz",
    "set_energy",
    "set_metrics",
    "set_telemetry",
    "set_timeline",
    "spans_from_tracer",
    "spans_to_chrome_events",
    "straggler_profile",
    "summary_table",
    "trace_summary",
    "traces_to_spans",
    "using_commviz",
    "using_energy",
    "using_metrics",
    "using_telemetry",
    "using_timeline",
    "write_chrome_trace",
    "write_ndjson",
    "write_spans_chrome_trace",
    "write_trace_chrome_trace",
]
