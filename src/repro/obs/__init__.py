"""Unified observability: metrics, span tracing, critical-path analysis.

This package is the single place the simulator reports *why* a run took
the time it did:

* :mod:`repro.obs.metrics` — a zero-dependency metrics registry
  (counters, gauges, log2-bucket histograms) with hierarchical names
  like ``engine.events`` or ``net.egress.queue_wait``.  Near-zero cost
  when disabled (the default outside the harness).
* :mod:`repro.obs.spans` — span tracing: wall-time spans for harness
  stages, virtual-time spans derived from a traced cluster run.
* :mod:`repro.obs.exporters` — Chrome ``traceEvents`` JSON (view in
  ``chrome://tracing`` / Perfetto), newline-delimited JSON, and
  human-readable summary tables.
* :mod:`repro.obs.critical_path` — walks the message/compute records of
  a traced run and reports which resource (compute, NIC, bisection,
  shared memory, wire latency) dominates end-to-end time.

Nothing in this package imports the model layers at module level, so the
core engine can import :mod:`repro.obs.metrics` without cycles.
"""

from .critical_path import (
    CriticalPathReport,
    PathSegment,
    critical_path_report,
    format_critical_path,
)
from .exporters import (
    chrome_trace_events,
    spans_to_chrome_events,
    summary_table,
    write_chrome_trace,
    write_ndjson,
    write_spans_chrome_trace,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    merge_snapshots,
    set_metrics,
    using_metrics,
)
from .spans import Span, SpanRecorder, spans_from_tracer

__all__ = [
    "Counter",
    "CriticalPathReport",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PathSegment",
    "Span",
    "SpanRecorder",
    "chrome_trace_events",
    "critical_path_report",
    "format_critical_path",
    "get_metrics",
    "merge_snapshots",
    "set_metrics",
    "spans_from_tracer",
    "spans_to_chrome_events",
    "summary_table",
    "using_metrics",
    "write_chrome_trace",
    "write_ndjson",
    "write_spans_chrome_trace",
]
