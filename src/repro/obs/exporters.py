"""Exporters: Chrome trace JSON, newline-delimited JSON, summary tables.

Chrome ``traceEvents`` files open in ``chrome://tracing`` or
https://ui.perfetto.dev: one row per rank, compute phases as duration
(``X``) events, messages as flow arrows between ranks.  Wall-time span
trees from the harness export the same way, one row per nesting depth.

Usage::

    cluster = Cluster(machine, 16, trace=True)
    cluster.run(program)
    write_chrome_trace(cluster, "run.json")
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from .spans import Span

if TYPE_CHECKING:  # avoid importing the model layers at module level
    from ..mpi.cluster import Cluster

#: Trace timestamps are microseconds in the Chrome format.
_US = 1e6


def chrome_trace_events(cluster: "Cluster") -> list[dict]:
    """Build the trace-event list from a traced cluster run."""
    tracer = cluster.tracer
    events: list[dict] = []
    for rank in range(cluster.nprocs):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": rank,
            "args": {"name": f"rank {rank} (node "
                             f"{cluster.placement[rank]})"},
        })
    for c in tracer.computes:
        events.append({
            "name": c.kernel,
            "cat": "compute",
            "ph": "X",
            "pid": 0,
            "tid": c.rank,
            "ts": c.t_start * _US,
            "dur": max((c.t_end - c.t_start) * _US, 0.001),
            "args": {"flops": c.flops, "bytes": c.bytes_moved},
        })
    for i, m in enumerate(tracer.messages):
        common = {
            "name": f"msg {m.nbytes}B",
            "cat": "message",
            "id": i,
            "pid": 0,
        }
        events.append({**common, "ph": "s", "tid": m.src,
                       "ts": m.t_inject * _US})
        events.append({**common, "ph": "f", "bp": "e", "tid": m.dst,
                       "ts": m.t_deliver * _US})
        # a visible sliver on the receiving row for each delivery
        events.append({
            "name": f"recv {m.nbytes}B from {m.src}",
            "cat": "message",
            "ph": "X",
            "pid": 0,
            "tid": m.dst,
            "ts": m.t_deliver * _US,
            "dur": 0.1,
            "args": {"tag": m.tag, "intra_node": m.intra_node},
        })
    return events


def write_chrome_trace(cluster: "Cluster", path: str | Path) -> Path:
    """Serialise a traced cluster run to ``path`` (Chrome trace JSON)."""
    path = Path(path)
    payload = {"traceEvents": chrome_trace_events(cluster),
               "displayTimeUnit": "ms"}
    path.write_text(json.dumps(payload))
    return path


# -- span export --------------------------------------------------------------

def spans_to_chrome_events(spans: Iterable[Span]) -> list[dict]:
    """Chrome ``X`` (complete) events for a list or tree of spans.

    Wall spans are assumed to be seconds from an arbitrary epoch;
    virtual spans are virtual seconds from t=0.  Children are emitted
    recursively, so passing ``recorder.roots`` exports a whole tree.
    """
    events: list[dict] = []

    def emit(span: Span) -> None:
        end = span.t_start if span.t_end is None else span.t_end
        events.append({
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "pid": 0,
            "tid": span.tid,
            "ts": span.t_start * _US,
            "dur": max((end - span.t_start) * _US, 0.001),
            "args": span.args,
        })
        for child in span.children:
            emit(child)

    for s in spans:
        emit(s)
    return events


def write_spans_chrome_trace(spans: Iterable[Span], path: str | Path) -> Path:
    """Serialise spans (trees allowed) to a Chrome trace JSON file."""
    path = Path(path)
    # Rebase wall timestamps so the trace starts at t=0.
    spans = list(spans)
    events = spans_to_chrome_events(spans)
    if events:
        t0 = min(e["ts"] for e in events)
        for e in events:
            e["ts"] -= t0
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    path.write_text(json.dumps(payload))
    return path


def write_trace_chrome_trace(span_dicts: Iterable[dict],
                             path: str | Path) -> Path:
    """Serialise telemetry span dicts (wire form) to a Chrome trace file.

    Reassembles the flat spans into per-trace trees first, so parent /
    child causality shows up as nesting in Perfetto.
    """
    from .telemetry import traces_to_spans

    return write_spans_chrome_trace(traces_to_spans(list(span_dicts)), path)


def write_ndjson(records: Iterable[dict], path: str | Path) -> Path:
    """Write one JSON object per line (for log shippers / jq pipelines)."""
    path = Path(path)
    with path.open("w") as fh:
        for rec in records:
            fh.write(json.dumps(rec, sort_keys=True))
            fh.write("\n")
    return path


def summary_table(spans: Iterable[Span], indent: int = 2) -> str:
    """Human-readable nested span summary with durations and shares."""
    lines = [f"{'span':<44} {'time':>12} {'share':>7}"]
    spans = list(spans)
    total = sum(s.duration for s in spans) or 1.0

    def fmt_time(seconds: float) -> str:
        if seconds >= 1.0:
            return f"{seconds:.2f} s"
        return f"{seconds * 1e3:.2f} ms"

    def emit(span: Span, depth: int, parent_total: float) -> None:
        share = span.duration / parent_total if parent_total else 0.0
        label = " " * (indent * depth) + span.name
        lines.append(f"{label:<44} {fmt_time(span.duration):>12} "
                     f"{share * 100:>6.1f}%")
        for child in span.children:
            emit(child, depth + 1, span.duration or parent_total)

    for s in spans:
        emit(s, 0, total)
    return "\n".join(lines)
