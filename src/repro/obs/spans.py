"""Span tracing: timed, nested phases of a run.

Two clock domains share one :class:`Span` type:

* **wall** spans time harness stages (figure builds, rendering, cache
  I/O) with ``time.perf_counter``;
* **virtual** spans describe simulated activity — compute phases and
  message transfers lifted out of a :class:`~repro.core.trace.Tracer`
  by :func:`spans_from_tracer`.

A :class:`SpanRecorder` builds a tree of wall spans via a context
manager; the tree serialises to plain dicts (for ``BENCH_harness.json``)
and to Chrome trace events (see :mod:`repro.obs.exporters`).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Iterator

from ..core.trace import Tracer


@dataclass
class Span:
    """One timed phase; ``clock`` is ``"wall"`` or ``"virtual"``."""

    name: str
    cat: str = "harness"
    clock: str = "wall"
    t_start: float = 0.0
    t_end: float | None = None
    tid: int = 0
    args: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return 0.0 if self.t_end is None else self.t_end - self.t_start

    def to_dict(self) -> dict:
        d = {
            "name": self.name,
            "cat": self.cat,
            "clock": self.clock,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "duration_s": self.duration,
        }
        if self.args:
            d["args"] = self.args
        if self.children:
            d["children"] = [c.to_dict() for c in self.children]
        return d


class SpanRecorder:
    """Builds a tree of wall-time spans around harness stages.

    The recorder is always safe to use — it costs two clock reads per
    span — and keeps every root span for later export::

        rec = SpanRecorder()
        with rec.span("fig12"):
            with rec.span("compute", cat="sweep"):
                ...
        rec.roots[0].children[0].duration
    """

    def __init__(self, clock: Callable[[], float] = perf_counter) -> None:
        self._clock = clock
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def begin(self, name: str, cat: str = "harness", **args) -> Span:
        span = Span(name=name, cat=cat, clock="wall",
                    t_start=self._clock(), args=dict(args))
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span) -> Span:
        if not self._stack or self._stack[-1] is not span:
            raise ValueError(
                f"span {span.name!r} is not the innermost open span"
            )
        self._stack.pop()
        span.t_end = self._clock()
        return span

    @contextlib.contextmanager
    def span(self, name: str, cat: str = "harness", **args) -> Iterator[Span]:
        s = self.begin(name, cat=cat, **args)
        try:
            yield s
        finally:
            self.end(s)

    @property
    def depth(self) -> int:
        return len(self._stack)

    def to_dicts(self) -> list[dict]:
        return [r.to_dict() for r in self.roots]


def spans_from_tracer(tracer: Tracer) -> list[Span]:
    """Virtual-time spans for every record of a traced cluster run.

    Compute records become per-rank spans (``tid`` = rank); message
    records become spans on the *destination* rank's timeline covering
    inject-to-deliver, tagged with source and size.  The flat list is
    ordered by start time, ready for the exporters.
    """
    spans = [
        Span(
            name=c.kernel,
            cat="compute",
            clock="virtual",
            t_start=c.t_start,
            t_end=c.t_end,
            tid=c.rank,
            args={"flops": c.flops, "bytes": c.bytes_moved},
        )
        for c in tracer.computes
    ]
    spans.extend(
        Span(
            name=f"msg {m.nbytes}B from {m.src}",
            cat="message",
            clock="virtual",
            t_start=m.t_inject,
            t_end=m.t_deliver,
            tid=m.dst,
            args={"src": m.src, "dst": m.dst, "nbytes": m.nbytes,
                  "tag": m.tag, "intra_node": m.intra_node},
        )
        for m in tracer.messages
    )
    spans.sort(key=lambda s: (s.t_start, s.tid, s.name))
    return spans
