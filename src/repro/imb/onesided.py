"""IMB-EXT one-sided benchmarks: Unidir_Put and Unidir_Get.

IMB 2.x part (b) covers MPI-2 one-sided communication; the paper lists
measuring GET/PUT as future work (§5.2).  These two benchmarks mirror
IMB-EXT's unidirectional mode: rank 0 drives RMA traffic at rank 1 inside
a fence epoch; time is per complete epoch.
"""

from __future__ import annotations

import numpy as np

from ..mpi.onesided import win_create
from .framework import IMBBenchmark, register


class UnidirPut(IMBBenchmark):
    name = "Unidir_Put"
    bytes_per_iteration = 1.0

    def program(self, comm, nbytes: int, iterations: int):
        n = max(nbytes // 8, 1)
        win = yield from win_create(comm, n)
        data = np.ones(n)
        yield from comm.barrier()
        t0 = comm.now
        for _ in range(iterations):
            if comm.rank == 0:
                win.put(1 % comm.size, data)
            yield from win.fence()
        return comm.now - t0


class UnidirGet(IMBBenchmark):
    name = "Unidir_Get"
    bytes_per_iteration = 1.0

    def program(self, comm, nbytes: int, iterations: int):
        n = max(nbytes // 8, 1)
        win = yield from win_create(comm, n)
        yield from comm.barrier()
        t0 = comm.now
        for _ in range(iterations):
            if comm.rank == 0:
                req = win.get(1 % comm.size, n)
                yield req
            yield from win.fence()
        return comm.now - t0


register(UnidirPut())
register(UnidirGet())
