"""IMB-IO benchmarks: the third part of the IMB suite (§3.2).

The paper notes IMB has "(a) IMB for MPI-1, (b) MPI-2 one sided
communication, and (c) MPI-2 I/O" and evaluates part (a); parts (b) and
(c) were future work.  This module implements the core IMB-IO write/read
family over the simulated parallel filesystem:

* ``S_Write_indv`` / ``S_Read_indv`` — single active process;
* ``P_Write_indv`` / ``P_Read_indv`` — all processes, disjoint file
  regions, independent I/O;
* ``C_Write_expl`` / ``C_Read_expl`` — collective I/O with explicit
  offsets (two-phase node aggregation).
"""

from __future__ import annotations

from ..io.mpiio import file_open
from .framework import IMBBenchmark, register


class _IOBenchmark(IMBBenchmark):
    bytes_per_iteration = 1.0

    #: "single" | "parallel" | "collective"
    mode = "parallel"
    #: "write" | "read"
    direction = "write"

    def program(self, comm, nbytes: int, iterations: int):
        f = yield from file_open(comm, name=self.name)
        offset = comm.rank * max(nbytes, 1)
        yield from comm.barrier()
        t0 = comm.now
        for _ in range(iterations):
            if self.mode == "single":
                if comm.rank == 0:
                    yield from self._op(f, 0, nbytes)
            elif self.mode == "parallel":
                yield from self._op(f, offset, nbytes)
            else:
                yield from self._op_collective(f, offset, nbytes)
        elapsed = comm.now - t0
        yield from f.close()
        return elapsed

    def _op(self, f, offset, nbytes):
        if self.direction == "write":
            yield from f.write_at(offset, nbytes=nbytes)
        else:
            yield from f.read_at(offset, nbytes)

    def _op_collective(self, f, offset, nbytes):
        if self.direction == "write":
            yield from f.write_at_all(offset, nbytes=nbytes)
        else:
            yield from f.read_at_all(offset, nbytes)


def _make(name: str, mode: str, direction: str) -> _IOBenchmark:
    bench = _IOBenchmark()
    bench.name = name
    bench.mode = mode
    bench.direction = direction
    return bench


S_WRITE = register(_make("S_Write_indv", "single", "write"))
S_READ = register(_make("S_Read_indv", "single", "read"))
P_WRITE = register(_make("P_Write_indv", "parallel", "write"))
P_READ = register(_make("P_Read_indv", "parallel", "read"))
C_WRITE = register(_make("C_Write_expl", "collective", "write"))
C_READ = register(_make("C_Read_expl", "collective", "read"))

IO_BENCHMARKS = ("S_Write_indv", "S_Read_indv", "P_Write_indv",
                 "P_Read_indv", "C_Write_expl", "C_Read_expl")
