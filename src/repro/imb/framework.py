"""IMB measurement methodology.

Follows the Intel MPI Benchmarks conventions the paper relies on:

* the reported time is the **maximum over ranks** of the per-iteration
  average (IMB's ``t_max``), in microseconds;
* message sizes follow the standard schedule 0, 1, 2, 4, ... 4194304
  bytes (:func:`imb_message_sizes`), though the paper only plots 1 MB;
* transfer benchmarks also report a bandwidth figure with IMB's
  per-benchmark byte-count conventions (Sendrecv counts 2x, Exchange 4x
  the message size per iteration; MB here is ``2**20`` bytes, as in IMB).

Because the simulator is deterministic there is no statistical noise;
``iterations`` exists to capture steady-state pipelining effects, not to
average out jitter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import BenchmarkError
from ..machine.system import MachineSpec
from ..mpi.cluster import Cluster

#: IMB standard message-size schedule upper bound (4 MiB).
IMB_MAX_MSG = 4 * 1024 * 1024

#: The paper reports results at 1 MB ("average size of the message is
#: about 1 MB in many real world applications", §1).
PAPER_MSG_BYTES = 1024 * 1024


def imb_message_sizes(max_bytes: int = IMB_MAX_MSG) -> list[int]:
    """The IMB standard-mode schedule: 0, 1, 2, 4, ..., max."""
    sizes = [0]
    b = 1
    while b <= max_bytes:
        sizes.append(b)
        b *= 2
    return sizes


@dataclass(frozen=True)
class IMBResult:
    """One (benchmark, machine, nprocs, msgsize) measurement."""

    benchmark: str
    machine: str
    nprocs: int
    msg_bytes: int
    time_us: float               # IMB t_max, us per call/iteration
    bandwidth_mbs: float | None  # MB/s (2**20), transfer benchmarks only

    def __str__(self) -> str:  # pragma: no cover - display helper
        bw = f", {self.bandwidth_mbs:.1f} MB/s" if self.bandwidth_mbs else ""
        return (
            f"{self.benchmark}[{self.machine}, P={self.nprocs}, "
            f"{self.msg_bytes} B] = {self.time_us:.2f} us{bw}"
        )

    def check(self) -> list[str]:
        """Physical-sanity violations in this measurement (empty = ok).

        Any simulated machine, however degraded, must produce a finite
        positive time and (for transfer benchmarks) a finite positive
        bandwidth — used by the validation fuzzer.
        """
        bad: list[str] = []
        if not (math.isfinite(self.time_us) and self.time_us > 0):
            bad.append(f"{self.benchmark}: non-positive time {self.time_us!r}")
        if self.bandwidth_mbs is not None and not (
                math.isfinite(self.bandwidth_mbs) and self.bandwidth_mbs > 0):
            bad.append(f"{self.benchmark}: invalid bandwidth "
                       f"{self.bandwidth_mbs!r}")
        return bad


class IMBBenchmark:
    """Base class: subclasses provide a rank program and byte accounting."""

    #: Benchmark name as IMB spells it.
    name: str = "?"
    #: Bytes counted per iteration for the bandwidth figure (0 = no bw).
    bytes_per_iteration: float = 0.0
    #: Minimum rank count.
    min_procs: int = 2

    def program(self, comm, nbytes: int, iterations: int):
        """Rank program measuring ``iterations`` calls; returns seconds."""
        raise NotImplementedError

    def run(
        self,
        machine: MachineSpec,
        nprocs: int,
        msg_bytes: int = PAPER_MSG_BYTES,
        iterations: int = 1,
        warmup: int = 1,
        fabric_setup=None,
    ) -> IMBResult:
        if nprocs < self.min_procs:
            raise BenchmarkError(
                f"{self.name} needs >= {self.min_procs} ranks, got {nprocs}"
            )
        if iterations < 1:
            raise BenchmarkError("iterations must be >= 1")
        # A fault-injected fabric invalidates the analytic steady-state
        # price, so fault runs always go through the full simulation.
        t_max = (None if fabric_setup is not None
                 else self._steady_state_time(machine, nprocs, msg_bytes))
        if t_max is None:
            cluster = Cluster(machine, nprocs)

            def driver(comm):
                if warmup:
                    yield from self.program(comm, msg_bytes, warmup)
                yield from comm.barrier()
                t = yield from self.program(comm, msg_bytes, iterations)
                return t / iterations

            res = cluster.run(driver, fabric_setup=fabric_setup)
            t_max = max(res.results)
        bw = None
        if self.bytes_per_iteration:
            per_iter = self.bytes_per_iteration * self._bw_scale(msg_bytes, nprocs)
            bw = per_iter / t_max / (1024.0 * 1024.0) if t_max > 0 else 0.0
        return IMBResult(
            benchmark=self.name,
            machine=machine.name,
            nprocs=nprocs,
            msg_bytes=msg_bytes,
            time_us=t_max * 1e6,
            bandwidth_mbs=bw,
        )

    def _bw_scale(self, msg_bytes: int, nprocs: int) -> float:
        return float(msg_bytes)

    def _steady_state_time(self, machine: MachineSpec, nprocs: int,
                           msg_bytes: int) -> float | None:
        """Analytic per-call time when the macro fast-path is licensed.

        Returns ``None`` (simulate at message level) unless the active
        scheduler backend enables the fast-path AND ``nprocs`` exceeds the
        configured threshold AND a closed-form pricer exists for this
        benchmark.  See :mod:`repro.imb.fastpath`.
        """
        from . import fastpath

        if not fastpath.fastpath_active(nprocs):
            return None
        return fastpath.price(self.name, machine, nprocs, msg_bytes)


#: Registry populated by the benchmark modules.
BENCHMARKS: dict[str, IMBBenchmark] = {}


def register(bench: IMBBenchmark) -> IMBBenchmark:
    BENCHMARKS[bench.name] = bench
    return bench


def get_benchmark(name: str) -> IMBBenchmark:
    try:
        return BENCHMARKS[name]
    except KeyError:
        known = ", ".join(sorted(BENCHMARKS))
        raise BenchmarkError(f"unknown IMB benchmark {name!r}; known: {known}")
