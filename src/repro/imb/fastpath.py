"""Analytic macro fast-path for steady-state IMB collective phases.

The IMB collective benchmarks are *steady state by construction*: every
measured iteration performs the identical collective on the identical
message size, so the per-iteration time the message-level simulation
converges to is exactly what the closed forms in
:mod:`repro.network.macro` price.  When the active scheduler backend
licenses the fast-path (``--engine-backend macro``) **and** the rank
count is strictly above :func:`repro.core.sched.macro_fastpath_threshold`,
:meth:`repro.imb.framework.IMBBenchmark.run` short-circuits the whole
cluster simulation with one pricer call — this is what makes 100k–1M-rank
scale studies tractable (the message-level path would schedule ~P log P
events per collective call).

Correctness discipline (mirrors the golden oracle's expectations):

* The pricer table mirrors the *algorithm selection rules* of
  :mod:`repro.mpi.collectives` — size thresholds, power-of-two splits,
  small-communicator special cases — so the closed form always prices
  the same algorithm the message-level path would have scheduled.
* The default threshold sits above the paper's largest configuration,
  so every figure/table in the paper range is produced by the exact
  message-level simulation under every backend; ``repro.validate``
  proves that byte-for-byte.
* Fast-pathed results are never cache-compatible with exact results:
  :func:`repro.core.sched.backend_result_tag` salts the result-cache key
  whenever the fast-path is live.
"""

from __future__ import annotations

from ..core import sched
from ..machine.system import MachineSpec
from ..mpi.collectives import (
    ALLGATHER_TOTAL_SHORT,
    ALLREDUCE_SHORT,
    ALLTOALL_SHORT,
    BCAST_SHORT,
    REDUCE_SHORT,
    _is_pow2,
)
from ..network import macro


def fastpath_active(nprocs: int) -> bool:
    """Whether the macro fast-path may replace a simulation at ``nprocs``.

    Both gates must pass: the process-default scheduler backend carries
    the ``macro_fastpath`` capability, and the rank count is strictly
    above the configured threshold (`REPRO_MACRO_THRESHOLD`).
    """
    return (nprocs > sched.macro_fastpath_threshold()
            and sched.macro_fastpath_active())


# -- per-benchmark pricers, mirroring mpi.collectives selection rules -------

def _barrier(ctx: macro.MacroContext, n: float) -> float:
    return macro.barrier_dissemination_time(ctx)


def _bcast(ctx: macro.MacroContext, n: float) -> float:
    if n < BCAST_SHORT or ctx.nprocs < 8:
        return macro.bcast_binomial_time(ctx, n)
    return macro.bcast_scatter_ring_time(ctx, n)


def _reduce(ctx: macro.MacroContext, n: float) -> float:
    if n < REDUCE_SHORT:
        return macro.reduce_binomial_time(ctx, n)
    return macro.reduce_rabenseifner_time(ctx, n)


def _allreduce(ctx: macro.MacroContext, n: float) -> float:
    if n < ALLREDUCE_SHORT:
        return macro.allreduce_recursive_doubling_time(ctx, n)
    return macro.allreduce_rabenseifner_time(ctx, n)


def _reduce_scatter(ctx: macro.MacroContext, n: float) -> float:
    if _is_pow2(ctx.nprocs):
        return macro.reduce_scatter_halving_time(ctx, n)
    # reduce_scatterv: Rabenseifner reduce to root + binomial scatterv.
    return (macro.reduce_rabenseifner_time(ctx, n)
            + macro.scatter_binomial_time(ctx, n))


def _allgather(ctx: macro.MacroContext, n: float) -> float:
    if n * ctx.nprocs <= ALLGATHER_TOTAL_SHORT:
        if _is_pow2(ctx.nprocs):
            return macro.allgather_recursive_doubling_time(ctx, n)
        return macro.allgather_bruck_time(ctx, n)
    return macro.allgather_ring_time(ctx, n)


def _alltoall(ctx: macro.MacroContext, n: float) -> float:
    if n <= ALLTOALL_SHORT:
        # Bruck ships log2(P) aggregated slices of ~n*P/2 bytes.
        return macro.allgather_bruck_time(ctx, n)
    return macro.alltoall_time(ctx, n)


#: Benchmark name (IMB spelling) -> pricer(ctx, msg_bytes) -> seconds/call.
PRICERS = {
    "Barrier": _barrier,
    "Bcast": _bcast,
    "Reduce": _reduce,
    "Allreduce": _allreduce,
    "Reduce_scatter": _reduce_scatter,
    "Allgather": _allgather,
    "Allgatherv": _allgather,  # equal counts: same schedule as Allgather
    "Alltoall": _alltoall,
}


def price(benchmark: str, machine: MachineSpec, nprocs: int,
          msg_bytes: int) -> float | None:
    """Closed-form seconds per call, or ``None`` if no pricer covers
    ``benchmark`` (transfer/one-sided benchmarks always simulate)."""
    fn = PRICERS.get(benchmark)
    if fn is None:
        return None
    if nprocs == 1:
        return 0.0
    ctx = macro.MacroContext.from_machine(machine, nprocs)
    return fn(ctx, float(msg_bytes))
