"""IMB Collective Benchmarks (§3.2.3).

Barrier, Bcast, Allgather, Allgatherv, Alltoall, Reduce, Reduce_scatter,
Allreduce — the eight collectives whose 1 MB curves are the paper's
Figures 6-12 and 15.

Message-size semantics follow the paper's own wording:

* Bcast/Reduce/Allreduce: ``msg_bytes`` is the full buffer.
* Allgather(v): every process *inputs* ``msg_bytes`` and receives
  ``msg_bytes * N``.
* Alltoall: every process sends ``msg_bytes`` *to each* process
  ("A bytes for each process", §3.2.3.2d).
* Reduce_scatter: every process provides ``msg_bytes``; the result is
  scattered in ``msg_bytes / N`` pieces.
"""

from __future__ import annotations

from .framework import IMBBenchmark, register


class Barrier(IMBBenchmark):
    name = "Barrier"

    def program(self, comm, nbytes: int, iterations: int):
        t0 = comm.now
        for _ in range(iterations):
            yield from comm.barrier()
        return comm.now - t0


class Bcast(IMBBenchmark):
    name = "Bcast"

    def program(self, comm, nbytes: int, iterations: int):
        t0 = comm.now
        for i in range(iterations):
            # IMB rotates the root; with deterministic timing the rotation
            # only matters for asymmetric topologies, which we keep.
            root = i % comm.size
            yield from comm.bcast(nbytes=nbytes, root=root)
        return comm.now - t0


class Reduce(IMBBenchmark):
    name = "Reduce"

    def program(self, comm, nbytes: int, iterations: int):
        t0 = comm.now
        for i in range(iterations):
            yield from comm.reduce(nbytes=nbytes, root=i % comm.size)
        return comm.now - t0


class Allreduce(IMBBenchmark):
    name = "Allreduce"

    def program(self, comm, nbytes: int, iterations: int):
        t0 = comm.now
        for _ in range(iterations):
            yield from comm.allreduce(nbytes=nbytes)
        return comm.now - t0


class ReduceScatter(IMBBenchmark):
    name = "Reduce_scatter"

    def program(self, comm, nbytes: int, iterations: int):
        t0 = comm.now
        for _ in range(iterations):
            yield from comm.reduce_scatter(nbytes=nbytes)
        return comm.now - t0


class Allgather(IMBBenchmark):
    name = "Allgather"

    def program(self, comm, nbytes: int, iterations: int):
        t0 = comm.now
        for _ in range(iterations):
            yield from comm.allgather(nbytes=nbytes)
        return comm.now - t0


class Allgatherv(IMBBenchmark):
    """Vector variant: same sizes, passed per rank — measures the extra
    bookkeeping path (the paper notes it behaves like Allgather)."""

    name = "Allgatherv"

    def program(self, comm, nbytes: int, iterations: int):
        counts = [nbytes] * comm.size
        t0 = comm.now
        for _ in range(iterations):
            yield from comm.allgatherv(counts=counts)
        return comm.now - t0


class Alltoall(IMBBenchmark):
    name = "Alltoall"

    def program(self, comm, nbytes: int, iterations: int):
        t0 = comm.now
        for _ in range(iterations):
            yield from comm.alltoall(nbytes=nbytes)
        return comm.now - t0


register(Barrier())
register(Bcast())
register(Reduce())
register(Allreduce())
register(ReduceScatter())
register(Allgather())
register(Allgatherv())
register(Alltoall())
