"""IMB Parallel Transfer Benchmarks: Sendrecv and Exchange (§3.2.2).

* **Sendrecv**: the processes form a periodic chain; each sends to the
  right and receives from the left.  Bandwidth counts 2 x msg per
  iteration.
* **Exchange**: each process exchanges with *both* neighbours (the
  boundary-exchange pattern of adaptive-mesh CFD codes the paper cites).
  Bandwidth counts 4 x msg per iteration.
"""

from __future__ import annotations

from .framework import IMBBenchmark, register


class Sendrecv(IMBBenchmark):
    name = "Sendrecv"
    bytes_per_iteration = 2.0

    def program(self, comm, nbytes: int, iterations: int):
        size = comm.size
        right = (comm.rank + 1) % size
        left = (comm.rank - 1) % size
        t0 = comm.now
        for i in range(iterations):
            yield from comm.sendrecv(right, left, nbytes=nbytes, sendtag=i)
        return comm.now - t0


class Exchange(IMBBenchmark):
    name = "Exchange"
    bytes_per_iteration = 4.0

    def program(self, comm, nbytes: int, iterations: int):
        size = comm.size
        right = (comm.rank + 1) % size
        left = (comm.rank - 1) % size
        t0 = comm.now
        for i in range(iterations):
            rreqs = [
                comm.irecv(left, tag=2 * i),
                comm.irecv(right, tag=2 * i + 1),
            ]
            sreqs = [
                comm.isend(right, nbytes=nbytes, tag=2 * i),
                comm.isend(left, nbytes=nbytes, tag=2 * i + 1),
            ]
            yield from comm.waitall(rreqs + sreqs)
        return comm.now - t0


register(Sendrecv())
register(Exchange())
