"""IMB Single Transfer Benchmarks: PingPong and PingPing (§3.2.1).

Both involve exactly two active processes; with more ranks the rest idle
(as in IMB, which runs single-transfer benchmarks on a 2-process subset).
"""

from __future__ import annotations

from .framework import IMBBenchmark, register


class PingPong(IMBBenchmark):
    """A message bounces between two processes; time is half round trip."""

    name = "PingPong"
    bytes_per_iteration = 1.0  # x msg_bytes

    def program(self, comm, nbytes: int, iterations: int):
        t0 = comm.now
        if comm.rank == 0:
            for i in range(iterations):
                yield from comm.send(1, nbytes=nbytes, tag=i)
                yield from comm.recv(1, tag=i)
        elif comm.rank == 1:
            for i in range(iterations):
                yield from comm.recv(0, tag=i)
                yield from comm.send(0, nbytes=nbytes, tag=i)
        # IMB reports half the round-trip time.
        return (comm.now - t0) / 2.0


class PingPing(IMBBenchmark):
    """Both processes send simultaneously — messages obstruct each other."""

    name = "PingPing"
    bytes_per_iteration = 1.0

    def program(self, comm, nbytes: int, iterations: int):
        t0 = comm.now
        if comm.rank in (0, 1):
            other = 1 - comm.rank
            for i in range(iterations):
                rreq = comm.irecv(other, tag=i)
                sreq = comm.isend(other, nbytes=nbytes, tag=i)
                yield from comm.waitall([sreq, rreq])
        return comm.now - t0


register(PingPong())
register(PingPing())
