"""The Intel MPI Benchmarks (IMB 2.3 subset the paper uses)."""

from .framework import (
    BENCHMARKS,
    IMB_MAX_MSG,
    PAPER_MSG_BYTES,
    IMBBenchmark,
    IMBResult,
    get_benchmark,
    imb_message_sizes,
)
from .suite import (
    PAPER_BENCHMARKS,
    IMBSweep,
    run_benchmark,
    run_suite,
    sweep_benchmark,
)

__all__ = [
    "IMBBenchmark",
    "IMBResult",
    "IMBSweep",
    "BENCHMARKS",
    "PAPER_BENCHMARKS",
    "PAPER_MSG_BYTES",
    "IMB_MAX_MSG",
    "imb_message_sizes",
    "get_benchmark",
    "run_benchmark",
    "run_suite",
    "sweep_benchmark",
]
