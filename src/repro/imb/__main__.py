"""Command-line IMB runner, mirroring the real IMB invocation style.

Examples::

    python -m repro.imb Alltoall --machine sx8 -p 64
    python -m repro.imb Sendrecv --machine xeon -p 16 --sizes
    python -m repro.imb --list
"""

from __future__ import annotations

import argparse
import sys

from ..machine import MACHINES, get_machine
from .framework import BENCHMARKS, PAPER_MSG_BYTES, imb_message_sizes
from .suite import run_benchmark


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.imb",
        description="Run an Intel MPI Benchmark on a simulated machine.",
    )
    ap.add_argument("benchmark", nargs="?", help="benchmark name")
    ap.add_argument("--machine", default="sx8",
                    help=f"one of: {', '.join(sorted(MACHINES))}")
    ap.add_argument("-p", "--nprocs", type=int, default=16)
    ap.add_argument("--msg", type=int, default=PAPER_MSG_BYTES,
                    help="message size in bytes (default 1 MiB)")
    ap.add_argument("--sizes", action="store_true",
                    help="run the full IMB size schedule instead of --msg")
    ap.add_argument("--max-size", type=int, default=4 * 1024 * 1024)
    ap.add_argument("--list", action="store_true",
                    help="list available benchmarks")
    args = ap.parse_args(argv)

    if args.list or not args.benchmark:
        for name in sorted(BENCHMARKS):
            print(name)
        return 0 if args.list else 2

    machine = get_machine(args.machine)
    print(f"# {args.benchmark} on {machine.label}, {args.nprocs} CPUs")
    header = f"{'bytes':>10s} {'t[us]':>14s} {'MB/s':>12s}"
    print(header)
    sizes = (imb_message_sizes(args.max_size) if args.sizes
             else [args.msg])
    for nbytes in sizes:
        res = run_benchmark(machine, args.benchmark, args.nprocs, nbytes)
        bw = f"{res.bandwidth_mbs:12.1f}" if res.bandwidth_mbs else " " * 12
        print(f"{nbytes:>10d} {res.time_us:14.2f} {bw}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
