"""IMB suite driver: run any benchmark over machines / rank counts."""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..machine.system import MachineSpec
from .framework import BENCHMARKS, PAPER_MSG_BYTES, IMBResult, get_benchmark

# Import for registration side effects.
from . import collective as _collective  # noqa: F401
from . import io_benchmarks as _io  # noqa: F401
from . import onesided as _onesided  # noqa: F401
from . import parallel_transfer as _parallel  # noqa: F401
from . import single_transfer as _single  # noqa: F401

#: The 12 benchmarks the paper uses (11 communication functions + Barrier).
PAPER_BENCHMARKS = (
    "PingPong",
    "PingPing",
    "Sendrecv",
    "Exchange",
    "Barrier",
    "Bcast",
    "Allgather",
    "Allgatherv",
    "Alltoall",
    "Reduce",
    "Reduce_scatter",
    "Allreduce",
)


@dataclass(frozen=True)
class IMBSweep:
    """Results of one benchmark across rank counts on one machine."""

    benchmark: str
    machine: str
    msg_bytes: int
    points: tuple[IMBResult, ...]

    def series(self, field: str = "time_us") -> list[tuple[int, float]]:
        return [(p.nprocs, getattr(p, field)) for p in self.points]


def run_benchmark(
    machine: MachineSpec,
    benchmark: str,
    nprocs: int,
    msg_bytes: int = PAPER_MSG_BYTES,
    iterations: int = 1,
    fabric_setup=None,
) -> IMBResult:
    return get_benchmark(benchmark).run(
        machine, nprocs, msg_bytes, iterations=iterations,
        fabric_setup=fabric_setup,
    )


def sweep_benchmark(
    machine: MachineSpec,
    benchmark: str,
    cpu_counts: Sequence[int] | None = None,
    msg_bytes: int = PAPER_MSG_BYTES,
    iterations: int = 1,
    max_cpus: int | None = None,
) -> IMBSweep:
    """Run one benchmark over a CPU-count sweep (the paper's x-axes)."""
    bench = get_benchmark(benchmark)
    if cpu_counts is None:
        cpu_counts = machine.cpu_counts(start=bench.min_procs, maximum=max_cpus)
    points = tuple(
        bench.run(machine, p, msg_bytes, iterations=iterations)
        for p in cpu_counts
        if p <= machine.max_cpus
    )
    return IMBSweep(
        benchmark=benchmark,
        machine=machine.name,
        msg_bytes=msg_bytes,
        points=points,
    )


def run_suite(
    machine: MachineSpec,
    nprocs: int,
    benchmarks: Iterable[str] = PAPER_BENCHMARKS,
    msg_bytes: int = PAPER_MSG_BYTES,
) -> dict[str, IMBResult]:
    """Run a set of benchmarks at one size/rank count."""
    return {
        name: run_benchmark(machine, name, nprocs, msg_bytes)
        for name in benchmarks
        if nprocs >= BENCHMARKS[name].min_procs
    }
